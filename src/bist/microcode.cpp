#include "bist/microcode.h"

#include <map>
#include <stdexcept>

namespace twm {

BistProgram compile_program(const MarchTest& transparent, unsigned width) {
  if (transparent.op_count() == 0)
    throw std::invalid_argument("compile_program: empty test");
  if (!transparent.is_transparent())
    throw std::invalid_argument("compile_program: test must be transparent");
  if (!transparent.every_element_begins_with_read())
    throw std::invalid_argument("compile_program: elements must begin with a Read");

  BistProgram prog;
  prog.width = width;
  std::map<BitVec, std::uint16_t> mask_index;
  auto intern = [&](const BitVec& m) {
    auto [it, inserted] = mask_index.try_emplace(m, static_cast<std::uint16_t>(prog.masks.size()));
    if (inserted) prog.masks.push_back(m);
    return it->second;
  };

  for (const auto& e : transparent.elements) {
    if (e.ops.empty()) continue;
    ElementDescriptor desc;
    desc.descending = (e.order == AddrOrder::Down);
    desc.pause_before = e.pause_before;
    desc.first_op = static_cast<std::uint16_t>(prog.ops.size());
    desc.op_count = static_cast<std::uint16_t>(e.ops.size());
    for (std::size_t i = 0; i < e.ops.size(); ++i) {
      MicroOp u;
      u.write = e.ops[i].is_write();
      u.mask_index = intern(e.ops[i].data.mask(width));
      u.element_start = (i == 0);
      u.last_in_element = (i + 1 == e.ops.size());
      prog.ops.push_back(u);
    }
    prog.elements.push_back(desc);
  }
  return prog;
}

BistProgram prediction_program(const BistProgram& prog) {
  BistProgram p;
  p.width = prog.width;
  p.masks = prog.masks;
  for (const auto& e : prog.elements) {
    ElementDescriptor desc;
    desc.descending = e.descending;
    desc.pause_before = e.pause_before;
    desc.first_op = static_cast<std::uint16_t>(p.ops.size());
    std::uint16_t count = 0;
    for (std::uint16_t i = 0; i < e.op_count; ++i) {
      const MicroOp& u = prog.ops[e.first_op + i];
      if (u.write) continue;
      MicroOp r = u;
      r.element_start = (count == 0);
      r.last_in_element = false;
      p.ops.push_back(r);
      ++count;
    }
    if (count == 0) continue;
    p.ops.back().last_in_element = true;
    desc.op_count = count;
    p.elements.push_back(desc);
  }
  return p;
}

}  // namespace twm
