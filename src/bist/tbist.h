// Transparent-BIST controller.
//
// Models the hardware a transparent word-oriented march scheme needs in an
// SoC: a cycle-stepped FSM that, during system idle time, runs the
// signature-prediction pass and then the transparent test pass, one memory
// operation per step, and compares MISR signatures at the end.
//
// The paper's motivation (Sec. 1/4) is that shorter transparent tests
// reduce interference with normal operation, because a session occupies the
// memory port.  The controller makes that concrete:
//
//  * functional READS are serviced at any time: during the test pass the
//    controller knows each word's current XOR displacement from its
//    functional content (the mask of the last write applied to it), so it
//    returns read-value XOR mask — the functional data;
//  * functional WRITES invalidate the predicted signature, so they abort
//    the session: the controller first sweeps test-displaced words back to
//    their functional content, then services the write.  Aborted sessions
//    are counted; the test reruns at the next idle window.
//
// Session cost in steps is exactly TCP + TCM (+1 compare), which is what
// Tables 2/3 compare across schemes.
#ifndef TWM_BIST_TBIST_H
#define TWM_BIST_TBIST_H

#include <cstdint>
#include <vector>

#include "bist/misr.h"
#include "march/test.h"
#include "memsim/memory.h"

namespace twm {

class TbistController {
 public:
  enum class State { Idle, Predict, Test, Compare, Done };

  struct Config {
    MarchTest test;        // transparent word-oriented march (TWMarch)
    MarchTest prediction;  // its signature-prediction test
    unsigned misr_width = 0;  // 0: use the memory word width
    // Record the predicted signature at every element boundary and compare
    // during the test pass: a failing session then stops at the first
    // mismatching element (earlier detection, element-level localization)
    // instead of running to the final compare.  Requires the prediction
    // test to have one element per test element (true for every TWMarch).
    bool element_checkpoints = false;
  };

  struct Stats {
    std::uint64_t sessions_started = 0;
    std::uint64_t sessions_completed = 0;
    std::uint64_t sessions_aborted = 0;
    std::uint64_t failures_detected = 0;
    std::uint64_t steps = 0;
    std::uint64_t functional_reads = 0;
    std::uint64_t functional_writes = 0;
  };

  TbistController(Memory& mem, Config cfg);

  // Begins a session (Predict phase).  Only legal from Idle or Done.
  void start_session();

  // Executes one memory operation (or the final compare).  Returns true
  // while the session is still running.  No-op in Idle/Done.
  bool step();

  // Runs the current session to completion; returns the fault verdict.
  bool run_session_to_completion();

  State state() const { return state_; }
  // Valid in Done: true if the signatures mismatched (fault detected).
  bool last_session_failed() const { return last_failed_; }
  // With element_checkpoints: index of the first test element whose
  // boundary signature mismatched.  Valid when a failed session recorded a
  // boundary mismatch (first_failing_element_known()); the session still
  // runs to completion so the test's own writes restore the contents.
  std::size_t failing_element() const { return failing_element_; }
  bool first_failing_element_known() const { return boundary_mismatch_; }
  const Stats& stats() const { return stats_; }
  const BitVec& predicted_signature() const { return pred_.signature(); }
  const BitVec& observed_signature() const { return obs_.signature(); }

  // System-side port: always legal; see file comment for semantics.
  BitVec functional_read(std::size_t addr);
  void functional_write(std::size_t addr, const BitVec& data);

 private:
  const MarchTest& active_test() const { return state_ == State::Predict ? cfg_.prediction : cfg_.test; }
  void enter_phase(State s);
  bool advance_cursor();  // moves to the next op/addr/element; false at phase end
  // XOR displacement of `addr` from functional content, in the current state.
  BitVec displacement(std::size_t addr) const;
  void restore_all();  // sweep every displaced word back to functional content
  bool word_done_in_current_element(std::size_t addr) const;

  Memory& mem_;
  Config cfg_;
  State state_ = State::Idle;
  bool last_failed_ = false;
  Stats stats_;

  Misr pred_;
  Misr obs_;

  // Cursor within the active phase's test.
  std::size_t elem_ = 0;
  std::size_t op_ = 0;
  std::size_t addr_ = 0;

  void on_element_boundary();

  // Element-boundary signature checkpoints (element_checkpoints mode).
  std::vector<BitVec> checkpoints_;
  std::size_t failing_element_ = 0;
  bool boundary_mismatch_ = false;

  // Test-phase transparency bookkeeping.
  BitVec cur_base_;        // initial-content estimate of the word in flight
  bool cur_base_valid_ = false;
  BitVec cur_mask_;        // displacement of the word in flight
  std::vector<BitVec> elem_exit_mask_;  // displacement after each test element
};

}  // namespace twm

#endif  // TWM_BIST_TBIST_H
