// Multiple-input signature register (MISR).
//
// Galois-style MISR over GF(2): each step shifts the state left by one, adds
// the feedback polynomial when the bit shifted out is 1, and XORs in the
// input word.  Used by transparent BIST to compact the read-data stream of
// the prediction pass and of the test pass; the two signatures are equal in
// a fault-free memory and differ (up to the usual 2^-W aliasing probability)
// when a fault distorts the test-pass stream.
#ifndef TWM_BIST_MISR_H
#define TWM_BIST_MISR_H

#include <vector>

#include "util/bitvec.h"

namespace twm {

class Misr {
 public:
  // Uses a built-in feedback polynomial (primitive for widths 2, 3, 4, 8,
  // 16, 32, 64; irreducible for 128; x^W + x + 1 fallback otherwise, which
  // still compacts correctly but with unscreened aliasing structure).
  explicit Misr(unsigned width);
  // Explicit feedback taps: exponents of the polynomial x^W + .. + 1,
  // excluding W and including the listed intermediate terms (the +1 term is
  // implied by tap 0 being present or not; pass tap 0 explicitly).
  Misr(unsigned width, const std::vector<unsigned>& taps);

  unsigned width() const { return state_.width(); }

  // Folds `input` into the signature.  Inputs wider than the MISR are
  // XOR-folded in width-sized chunks; narrower inputs are zero-extended.
  void feed(const BitVec& input);

  void reset() { state_ = BitVec::zeros(state_.width()); }
  const BitVec& signature() const { return state_; }

  // Default feedback taps for a width (see constructor).
  static std::vector<unsigned> default_taps(unsigned width);

 private:
  void step();  // one shift of the underlying LFSR

  BitVec state_;
  BitVec poly_;  // feedback pattern XORed in when the MSB shifts out
};

}  // namespace twm

#endif  // TWM_BIST_MISR_H
