// Lane-parallel march test execution over PackedMemoryT: the batched
// counterpart of bist/engine.h, evaluating one fault universe per lane of
// the Block it is templated over (64, 256 or 512 per pass; see
// memsim/lane_block.h).
//
// Execution styles mirror MarchRunner operation-for-operation:
//
//  * run_direct()     — nontransparent tests; returns the lane mask of
//                       lanes in which at least one Read mismatched its
//                       absolute expected value.
//  * run_test()       — transparent test pass; Write data is derived
//                       per lane from the most recent Read of the same word
//                       (base-estimate XOR operation mask).
//  * run_prediction() — read-only signature-prediction pass feeding
//                       read-value XOR operation-mask per lane.
//
// run_transparent_session() bundles both passes and reports, per lane, the
// exact stream comparison and the MISR signature comparison.  PackedMisrT
// runs one Galois MISR per lane at once by keeping each signature bit as a
// lane block; it reproduces Misr (bist/misr.h) exactly, including the input
// folding rule, so lane verdicts match the scalar engine's.
//
// Like the packed memory, the implementation is header-only so each SIMD
// width compiles in its own arch-flagged translation unit; the 64-lane
// aliases (PackedReadSink, PackedMisr, PackedMarchRunner) keep the PR 1
// spelling and are pinned in packed_engine.cpp.
#ifndef TWM_BIST_PACKED_ENGINE_H
#define TWM_BIST_PACKED_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bist/address_gen.h"
#include "bist/misr.h"
#include "march/test.h"
#include "memsim/packed_memory.h"

namespace twm {

// Receives the lane blocks of every Read operation.  `value` spans the
// word width and is only valid for the duration of the call.
template <class Block>
class PackedReadSinkT {
 public:
  virtual ~PackedReadSinkT() = default;
  virtual void on_read(std::size_t addr, const Block* value) = 0;
};

// One Galois MISR per lane with the same feedback polynomial; signature bit
// i across all lanes is state()[i].
template <class Block>
class PackedMisrT {
 public:
  explicit PackedMisrT(unsigned width) : state_(width), taps_(Misr::default_taps(width)) {
    if (width == 0) throw std::invalid_argument("PackedMisr: zero width");
  }

  unsigned width() const { return static_cast<unsigned>(state_.size()); }

  // Folds one packed input word (input_width lane blocks) into all lane
  // signatures; replicates Misr::feed (shift, conditional feedback, XOR of
  // the width-folded input).
  void feed(const Block* input, unsigned input_width) {
    const unsigned w = width();
    step();
    // Fold the input into width-sized chunks (Misr::feed's rule, per lane).
    for (unsigned i = 0; i < input_width; ++i) state_[i % w] ^= input[i];
  }

  const std::vector<Block>& state() const { return state_; }

  // Lanes whose signature differs from `other`'s.
  Block diff(const PackedMisrT& other) const {
    if (width() != other.width())
      throw std::invalid_argument("PackedMisr::diff: width mismatch");
    Block m{};
    for (unsigned i = 0; i < width(); ++i) m |= state_[i] ^ other.state_[i];
    return m;
  }

 private:
  void step() {
    const unsigned w = width();
    const Block carry = state_[w - 1];  // lanes whose MSB shifts out
    for (unsigned i = w; i-- > 1;) state_[i] = state_[i - 1];
    state_[0] = Block{};
    for (unsigned t : taps_) state_[t] ^= carry;
  }

  std::vector<Block> state_;    // [bit] -> lane block
  std::vector<unsigned> taps_;  // set bits of the feedback pattern
};

template <class Block>
struct PackedTransparentOutcomeT {
  Block detected_exact{};  // prediction/test read streams differ
  Block detected_misr{};   // MISR signatures differ
};

template <class Block>
class PackedMarchRunnerT {
 public:
  explicit PackedMarchRunnerT(PackedMemoryT<Block>& mem) : mem_(mem) {}

  Block run_direct(const MarchTest& test) {
    const unsigned w = mem_.word_width();
    Block mismatch{};
    sweep(test, [&](std::size_t addr, const Op& op, const Block* mask) {
      if (op.data.relative)
        throw std::invalid_argument("run_direct: test contains transparent (relative) operations");
      // For absolute specs, mask(w) == value(w, ·): the expected read value /
      // the write data, broadcast over lanes.
      if (op.is_write()) {
        mem_.write(addr, mask);
        return;
      }
      const Block* actual = mem_.read(addr);
      for (unsigned j = 0; j < w; ++j) mismatch |= actual[j] ^ mask[j];
    });
    return mismatch;
  }

  void run_test(const MarchTest& test, PackedReadSinkT<Block>& sink) {
    const unsigned w = mem_.word_width();
    // Per-lane base estimate of each word's initial content (the transparent
    // BIST's word register, one copy per universe).
    std::vector<Block> base(mem_.num_words() * w);
    std::vector<bool> valid(mem_.num_words(), false);
    std::vector<Block> data(w);

    sweep(test, [&](std::size_t addr, const Op& op, const Block* mask) {
      Block* b = &base[addr * w];
      if (op.is_read()) {
        const Block* v = mem_.read(addr);
        sink.on_read(addr, v);
        for (unsigned j = 0; j < w; ++j) b[j] = v[j] ^ mask[j];
        valid[addr] = true;
        return;
      }
      if (op.data.relative) {
        if (!valid[addr])
          throw std::logic_error("run_test: transparent write before any read of word");
        for (unsigned j = 0; j < w; ++j) data[j] = b[j] ^ mask[j];
        mem_.write(addr, data.data());
      } else {
        // Absolute write: mask(w) == value(w, ·), lane-uniform.
        mem_.write(addr, mask);
      }
    });
  }

  void run_prediction(const MarchTest& prediction, PackedReadSinkT<Block>& sink) {
    const unsigned w = mem_.word_width();
    std::vector<Block> predicted(w);
    sweep(prediction, [&](std::size_t addr, const Op& op, const Block* mask) {
      if (op.is_write())
        throw std::invalid_argument("run_prediction: prediction test must be read-only");
      const Block* raw = mem_.read(addr);
      for (unsigned j = 0; j < w; ++j) predicted[j] = raw[j] ^ mask[j];
      sink.on_read(addr, predicted.data());
    });
  }

  PackedTransparentOutcomeT<Block> run_transparent_session(const MarchTest& test,
                                                           const MarchTest& prediction,
                                                           unsigned misr_width);

 private:
  // Per-op broadcast masks of a test, flattened as [element][op].
  static std::vector<std::vector<std::vector<Block>>> op_masks(const MarchTest& test,
                                                               unsigned w) {
    std::vector<std::vector<std::vector<Block>>> masks(test.elements.size());
    for (std::size_t e = 0; e < test.elements.size(); ++e) {
      masks[e].reserve(test.elements[e].ops.size());
      for (const Op& op : test.elements[e].ops)
        masks[e].push_back(broadcast_block<Block>(op.data.mask(w)));
    }
    return masks;
  }

  // Visits every (element, op, address) in march order, precomputing the
  // broadcast data mask of each op once per element.
  template <typename PerOp>
  void sweep(const MarchTest& test, PerOp&& per_op) {
    const unsigned w = mem_.word_width();
    const auto masks = op_masks(test, w);
    for (std::size_t e = 0; e < test.elements.size(); ++e) {
      const MarchElement& elem = test.elements[e];
      if (elem.pause_before) mem_.elapse(1);
      if (elem.ops.empty()) continue;
      for (AddressGen gen(elem.order, mem_.num_words()); !gen.done(); gen.advance()) {
        const std::size_t addr = gen.current();
        for (std::size_t i = 0; i < elem.ops.size(); ++i)
          per_op(addr, elem.ops[i], masks[e][i].data());
      }
    }
  }

  PackedMemoryT<Block>& mem_;
};

namespace packed_detail {

// Records the full packed read stream (flattened lane blocks).
template <class Block>
class StreamRecorder final : public PackedReadSinkT<Block> {
 public:
  explicit StreamRecorder(unsigned width) : width_(width) {}
  void reserve_reads(std::size_t reads) { stream_.reserve(reads * width_); }
  void on_read(std::size_t, const Block* value) override {
    stream_.insert(stream_.end(), value, value + width_);
  }
  std::size_t reads() const { return stream_.size() / width_; }
  const Block* at(std::size_t i) const { return &stream_[i * width_]; }

 private:
  unsigned width_;
  std::vector<Block> stream_;
};

// Feeds reads into a packed MISR and diffs them against a recorded
// prediction stream position-by-position.
template <class Block>
class SessionTestSink final : public PackedReadSinkT<Block> {
 public:
  SessionTestSink(unsigned width, const StreamRecorder<Block>& prediction,
                  PackedMisrT<Block>& misr)
      : width_(width), prediction_(prediction), misr_(misr) {}

  void on_read(std::size_t, const Block* value) override {
    misr_.feed(value, width_);
    if (pos_ < prediction_.reads()) {
      const Block* p = prediction_.at(pos_);
      for (unsigned j = 0; j < width_; ++j) stream_diff_ |= value[j] ^ p[j];
    }
    ++pos_;
  }

  std::size_t reads() const { return pos_; }
  Block stream_diff() const { return stream_diff_; }

 private:
  unsigned width_;
  const StreamRecorder<Block>& prediction_;
  PackedMisrT<Block>& misr_;
  std::size_t pos_ = 0;
  Block stream_diff_{};
};

template <class Block>
class MisrFeedSink final : public PackedReadSinkT<Block> {
 public:
  MisrFeedSink(unsigned width, PackedMisrT<Block>& misr, StreamRecorder<Block>& rec)
      : width_(width), misr_(misr), rec_(rec) {}
  void on_read(std::size_t addr, const Block* value) override {
    misr_.feed(value, width_);
    rec_.on_read(addr, value);
  }

 private:
  unsigned width_;
  PackedMisrT<Block>& misr_;
  StreamRecorder<Block>& rec_;
};

}  // namespace packed_detail

template <class Block>
PackedTransparentOutcomeT<Block> PackedMarchRunnerT<Block>::run_transparent_session(
    const MarchTest& test, const MarchTest& prediction, unsigned misr_width) {
  const unsigned w = mem_.word_width();
  PackedTransparentOutcomeT<Block> out;

  packed_detail::StreamRecorder<Block> pred_stream(w);
  // The prediction is read-only, so its exact read count is known up front;
  // reserving avoids reallocating the (lanes x width)-sized stream as it
  // grows.
  pred_stream.reserve_reads(prediction.op_count() * mem_.num_words());
  PackedMisrT<Block> pred_misr(misr_width);
  packed_detail::MisrFeedSink<Block> pred_sink(w, pred_misr, pred_stream);
  run_prediction(prediction, pred_sink);

  PackedMisrT<Block> test_misr(misr_width);
  packed_detail::SessionTestSink<Block> test_sink(w, pred_stream, test_misr);
  run_test(test, test_sink);

  out.detected_exact = test_sink.stream_diff();
  // A read-count mismatch makes the scalar stream comparison fail outright,
  // in every lane.
  if (test_sink.reads() != pred_stream.reads()) out.detected_exact = block_ones<Block>();
  out.detected_misr = pred_misr.diff(test_misr);
  return out;
}

// The PR 1 64-lane spellings.
using PackedReadSink = PackedReadSinkT<std::uint64_t>;
using PackedMisr = PackedMisrT<std::uint64_t>;
using PackedTransparentOutcome = PackedTransparentOutcomeT<std::uint64_t>;
using PackedMarchRunner = PackedMarchRunnerT<std::uint64_t>;

extern template class PackedMisrT<std::uint64_t>;
extern template class PackedMarchRunnerT<std::uint64_t>;

}  // namespace twm

#endif  // TWM_BIST_PACKED_ENGINE_H
