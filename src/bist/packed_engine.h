// Lane-parallel march test execution over PackedMemoryT: the batched
// counterpart of bist/engine.h, evaluating one fault universe per lane of
// the Block it is templated over (64, 256 or 512 per pass; see
// memsim/lane_block.h).
//
// Execution styles mirror MarchRunner operation-for-operation:
//
//  * run_direct()     — nontransparent tests; returns the lane mask of
//                       lanes in which at least one Read mismatched its
//                       absolute expected value.
//  * run_test()       — transparent test pass; Write data is derived
//                       per lane from the most recent Read of the same word
//                       (base-estimate XOR operation mask).
//  * run_prediction() — read-only signature-prediction pass feeding
//                       read-value XOR operation-mask per lane.
//
// run_transparent_session() bundles both passes and reports, per lane, the
// exact stream comparison and the MISR signature comparison.  PackedMisrT
// runs one Galois MISR per lane at once by keeping each signature bit as a
// lane block; it reproduces Misr (bist/misr.h) exactly, including the input
// folding rule, so lane verdicts match the scalar engine's.
//
// Like the packed memory, the implementation is header-only so each SIMD
// width compiles in its own arch-flagged translation unit; the 64-lane
// aliases (PackedReadSink, PackedMisr, PackedMarchRunner) keep the PR 1
// spelling and are pinned in packed_engine.cpp.
#ifndef TWM_BIST_PACKED_ENGINE_H
#define TWM_BIST_PACKED_ENGINE_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bist/address_gen.h"
#include "bist/misr.h"
#include "march/test.h"
#include "memsim/packed_memory.h"

namespace twm {

// Receives the lane blocks of every Read operation.  `value` spans the
// word width and is only valid for the duration of the call.
template <class Block>
class PackedReadSinkT {
 public:
  virtual ~PackedReadSinkT() = default;
  virtual void on_read(std::size_t addr, const Block* value) = 0;
};

// One Galois MISR per lane with the same feedback polynomial; signature bit
// i across all lanes is state()[i].
template <class Block>
class PackedMisrT {
 public:
  explicit PackedMisrT(unsigned width) : state_(width), taps_(Misr::default_taps(width)) {
    if (width == 0) throw std::invalid_argument("PackedMisr: zero width");
  }

  unsigned width() const { return static_cast<unsigned>(state_.size()); }

  // Folds one packed input word (input_width lane blocks) into all lane
  // signatures; replicates Misr::feed (shift, conditional feedback, XOR of
  // the width-folded input).
  void feed(const Block* input, unsigned input_width) {
    const unsigned w = width();
    step();
    // Fold the input into width-sized chunks (Misr::feed's rule, per lane).
    for (unsigned i = 0; i < input_width; ++i) state_[i % w] ^= input[i];
  }

  const std::vector<Block>& state() const { return state_; }

  // Lanes whose signature differs from `other`'s.
  Block diff(const PackedMisrT& other) const {
    if (width() != other.width())
      throw std::invalid_argument("PackedMisr::diff: width mismatch");
    Block m{};
    for (unsigned i = 0; i < width(); ++i) m |= state_[i] ^ other.state_[i];
    return m;
  }

 private:
  void step() {
    const unsigned w = width();
    const Block carry = state_[w - 1];  // lanes whose MSB shifts out
    for (unsigned i = w; i-- > 1;) state_[i] = state_[i - 1];
    state_[0] = Block{};
    for (unsigned t : taps_) state_[t] ^= carry;
  }

  std::vector<Block> state_;    // [bit] -> lane block
  std::vector<unsigned> taps_;  // set bits of the feedback pattern
};

template <class Block>
struct PackedTransparentOutcomeT {
  Block detected_exact{};  // prediction/test read streams differ
  Block detected_misr{};   // MISR signatures differ
};

// Cooperative mid-session brake for sessions whose per-lane verdict is
// MONOTONE (exact stream/value comparison: a lane's bit, once set, is
// final).  The repack scheduler (analysis/campaign_exec.h) arms one per
// unit so a session can
//
//   * abort the remaining march work once every lane in `target` has a
//     final verdict (settle-exit — checked after each address's ops), and
//   * drop the faults of lanes that settled mid-session from the packed
//     memory's index buckets (retire_lanes, at element boundaries), so the
//     write path stops paying for universes whose verdict is already known.
//
// Both actions are verdict-preserving only for monotone verdicts; sessions
// with order-insensitive compaction (XOR accumulator) or signature
// compression (MISR) must not arm `exit_enabled` — their lanes' verdicts
// are not final until the session ends (aliasing can cancel a mismatch).
// With exit_enabled false the brake still counts march elements entered,
// which is what the scheduler's occupancy/forward-progress counters read.
template <class Block>
struct SessionBrakeT {
  Block target{};    // lanes whose verdicts the caller needs (fault lanes)
  Block already{};   // verdict contribution of earlier passes (e.g. SMarch)
  bool exit_enabled = false;
  PackedMemoryT<Block>* retire_from = nullptr;  // optional fault dropping
  Block retired{};                              // lanes already dropped
  std::uint64_t elements_entered = 0;           // march elements started

  // Every target lane's verdict is final -> abort the rest of the session.
  bool should_stop(const Block& verdict) const {
    if (!exit_enabled || !block_any(target)) return false;
    return ((verdict | already) & target) == target;
  }

  // Element boundary: drop the faults of lanes that settled since the last
  // boundary (only meaningful for monotone sessions, hence the exit gate).
  void on_element_end(const Block& verdict) {
    if (!exit_enabled || !retire_from) return;
    const Block settled = (verdict | already) & target & ~retired;
    if (!block_any(settled)) return;
    retired |= settled;
    retire_from->retire_lanes(retired);
  }
};

template <class Block>
class PackedMarchRunnerT {
 public:
  explicit PackedMarchRunnerT(PackedMemoryT<Block>& mem) : mem_(mem) {}

  // `brake`, when non-null, is polled after each address's ops: the sweep
  // aborts once every brake-target lane's mismatch bit is set (the verdict
  // is monotone — an abort returns exactly the final verdict of the target
  // lanes), and lanes that settle mid-march have their faults dropped from
  // the memory at element boundaries.
  Block run_direct(const MarchTest& test, SessionBrakeT<Block>* brake = nullptr) {
    const unsigned w = mem_.word_width();
    Block mismatch{};
    sweep_braked(
        test,
        [&](std::size_t addr, const Op& op, const Block* mask) {
          if (op.data.relative)
            throw std::invalid_argument(
                "run_direct: test contains transparent (relative) operations");
          // For absolute specs, mask(w) == value(w, ·): the expected read
          // value / the write data, broadcast over lanes.
          if (op.is_write()) {
            mem_.write(addr, mask);
            return;
          }
          const Block* actual = mem_.read(addr);
          for (unsigned j = 0; j < w; ++j) mismatch |= actual[j] ^ mask[j];
        },
        brake, [&] { return mismatch; });
    return mismatch;
  }

  void run_test(const MarchTest& test, PackedReadSinkT<Block>& sink) {
    run_test_braked(test, sink, nullptr, [] { return Block{}; });
  }

  // run_test with an armed brake: `verdict` reports the caller's current
  // (monotone) detection state — here that is the exact stream comparison
  // accumulated by the sink, which the runner itself cannot see.
  template <typename VerdictFn>
  void run_test_braked(const MarchTest& test, PackedReadSinkT<Block>& sink,
                       SessionBrakeT<Block>* brake, VerdictFn&& verdict) {
    const unsigned w = mem_.word_width();
    std::vector<Block> data(w);

    if (history_free_relative(test)) {
      // Every relative write is preceded by a read of the same word earlier
      // in its element's op list, so by the time the write fires the "most
      // recent read of this word" is the one just performed at the current
      // address: the base estimate register shrinks to O(width) instead of
      // an O(words x width) shadow copy of the memory.
      std::vector<Block> cur(w);
      std::size_t cur_addr = static_cast<std::size_t>(-1);
      sweep_braked(
          test,
          [&](std::size_t addr, const Op& op, const Block* mask) {
            if (op.is_read()) {
              const Block* v = mem_.read(addr);
              sink.on_read(addr, v);
              for (unsigned j = 0; j < w; ++j) cur[j] = v[j] ^ mask[j];
              cur_addr = addr;
              return;
            }
            if (op.data.relative) {
              if (cur_addr != addr)
                throw std::logic_error("run_test: transparent write before any read of word");
              for (unsigned j = 0; j < w; ++j) data[j] = cur[j] ^ mask[j];
              mem_.write(addr, data.data());
            } else {
              // Absolute write: mask(w) == value(w, ·), lane-uniform.
              mem_.write(addr, mask);
            }
          },
          brake, std::forward<VerdictFn>(verdict));
      return;
    }

    // General fallback for tests whose relative writes consume a read from
    // an earlier element: the full per-lane base estimate of each word's
    // initial content (the transparent BIST's word register, one copy per
    // universe).
    std::vector<Block> base(mem_.num_words() * w);
    std::vector<bool> valid(mem_.num_words(), false);

    sweep_braked(
        test,
        [&](std::size_t addr, const Op& op, const Block* mask) {
          Block* b = &base[addr * w];
          if (op.is_read()) {
            const Block* v = mem_.read(addr);
            sink.on_read(addr, v);
            for (unsigned j = 0; j < w; ++j) b[j] = v[j] ^ mask[j];
            valid[addr] = true;
            return;
          }
          if (op.data.relative) {
            if (!valid[addr])
              throw std::logic_error("run_test: transparent write before any read of word");
            for (unsigned j = 0; j < w; ++j) data[j] = b[j] ^ mask[j];
            mem_.write(addr, data.data());
          } else {
            // Absolute write: mask(w) == value(w, ·), lane-uniform.
            mem_.write(addr, mask);
          }
        },
        brake, std::forward<VerdictFn>(verdict));
  }

  void run_prediction(const MarchTest& prediction, PackedReadSinkT<Block>& sink) {
    const unsigned w = mem_.word_width();
    std::vector<Block> predicted(w);
    sweep(prediction, [&](std::size_t addr, const Op& op, const Block* mask) {
      if (op.is_write())
        throw std::invalid_argument("run_prediction: prediction test must be read-only");
      const Block* raw = mem_.read(addr);
      for (unsigned j = 0; j < w; ++j) predicted[j] = raw[j] ^ mask[j];
      sink.on_read(addr, predicted.data());
    });
  }

  // `want_exact` / `want_misr` select which verdicts the caller will
  // consume; the unused checker's work (stream recording + comparison, or
  // the per-read MISR folds) is skipped and its outcome member is
  // meaningless.  A brake may only arm exit_enabled when want_misr is
  // false (the exact stream comparison is monotone; MISR signatures are
  // not final until the session ends).
  PackedTransparentOutcomeT<Block> run_transparent_session(const MarchTest& test,
                                                           const MarchTest& prediction,
                                                           unsigned misr_width,
                                                           SessionBrakeT<Block>* brake = nullptr,
                                                           bool want_exact = true,
                                                           bool want_misr = true);

 private:
  // True when every relative write is preceded by a read somewhere earlier
  // in the SAME element's op list — the transparent-march normal form.  The
  // ops of one element run back-to-back at each address, so the read that
  // precedes the write in the op list is also the most recent read of that
  // word, and the per-word base history is unnecessary.
  static bool history_free_relative(const MarchTest& test) {
    for (const MarchElement& e : test.elements) {
      bool read_seen = false;
      for (const Op& op : e.ops) {
        if (op.is_read())
          read_seen = true;
        else if (op.data.relative && !read_seen)
          return false;
      }
    }
    return true;
  }

  // A pass that runs to completion regardless of the brake (the prediction
  // pass) still reports its march elements to the progress counters.
  static void sweep_count_only(const MarchTest& test, SessionBrakeT<Block>* brake) {
    if (brake) brake->elements_entered += test.elements.size();
  }

  // Per-op broadcast masks of a test, flattened as [element][op].
  static std::vector<std::vector<std::vector<Block>>> op_masks(const MarchTest& test,
                                                               unsigned w) {
    std::vector<std::vector<std::vector<Block>>> masks(test.elements.size());
    for (std::size_t e = 0; e < test.elements.size(); ++e) {
      masks[e].reserve(test.elements[e].ops.size());
      for (const Op& op : test.elements[e].ops)
        masks[e].push_back(broadcast_block<Block>(op.data.mask(w)));
    }
    return masks;
  }

  // Visits every (element, op, address) in march order, precomputing the
  // broadcast data mask of each op once per element.
  template <typename PerOp>
  void sweep(const MarchTest& test, PerOp&& per_op) {
    sweep_braked(test, std::forward<PerOp>(per_op), nullptr, [] { return Block{}; });
  }

  // sweep with an optional SessionBrake: counts elements entered, polls the
  // settle predicate after each address, drops settled lanes' faults at
  // element boundaries.  `verdict` yields the caller's current monotone
  // detection state.
  template <typename PerOp, typename VerdictFn>
  void sweep_braked(const MarchTest& test, PerOp&& per_op, SessionBrakeT<Block>* brake,
                    VerdictFn&& verdict) {
    const unsigned w = mem_.word_width();
    const auto masks = op_masks(test, w);
    for (std::size_t e = 0; e < test.elements.size(); ++e) {
      const MarchElement& elem = test.elements[e];
      if (brake) ++brake->elements_entered;
      if (elem.pause_before) mem_.elapse(1);
      if (elem.ops.empty()) continue;
      // Software-pipelined address loop: the generator runs one address
      // ahead of the ops, and the NEXT address's cell span is prefetched
      // while the CURRENT address's ops execute — with tile-sized lane
      // blocks (memsim/lane_tile.h) each span is KiBs, so starting the
      // stream an op early hides most of its memory latency.
      AddressGen gen(elem.order, mem_.num_words());
      std::size_t addr = gen.current();
      for (;;) {
        gen.advance();
        const bool last = gen.done();
        if (!last) mem_.prefetch(gen.current());
        for (std::size_t i = 0; i < elem.ops.size(); ++i)
          per_op(addr, elem.ops[i], masks[e][i].data());
        if (brake && brake->should_stop(verdict())) return;
        if (last) break;
        addr = gen.current();
      }
      if (brake) brake->on_element_end(verdict());
    }
  }

  PackedMemoryT<Block>& mem_;
};

namespace packed_detail {

// Records the packed read stream, compressed.  Reads of unfaulted words are
// lane-uniform (every lane holds the golden value), so the common case
// stores one bit per bit-plane; only reads whose lanes diverge — a bounded
// set, proportional to the fault footprint, not the geometry — keep their
// full lane blocks in a position-sorted side table.  This turns the
// prediction stream of a W-word march from O(W x width x sizeof(Block))
// into O(W x width / 8) bytes plus the divergent tail.
template <class Block>
class StreamRecorder final : public PackedReadSinkT<Block> {
 public:
  explicit StreamRecorder(unsigned width) : width_(width), scratch_(width) {}
  void reserve_reads(std::size_t reads) { bits_.reserve((reads * width_ + 63) / 64); }

  void on_read(std::size_t, const Block* value) override {
    bool divergent = false;
    for (unsigned j = 0; j < width_ && !divergent; ++j)
      divergent = block_any(value[j]) && block_any(~value[j]);
    const std::size_t base = count_ * width_;
    bits_.resize((base + width_ + 63) / 64, 0);
    if (divergent) {
      divergent_.push_back({count_, blocks_.size()});
      blocks_.insert(blocks_.end(), value, value + width_);
    } else {
      for (unsigned j = 0; j < width_; ++j)
        if (block_any(value[j]))
          bits_[(base + j) >> 6] |= std::uint64_t{1} << ((base + j) & 63);
    }
    ++count_;
  }

  std::size_t reads() const { return count_; }

  // The returned pointer is valid until the next at() call.
  const Block* at(std::size_t i) const {
    const auto it = std::lower_bound(
        divergent_.begin(), divergent_.end(), i,
        [](const Entry& e, std::size_t pos) { return e.pos < pos; });
    if (it != divergent_.end() && it->pos == i) return &blocks_[it->offset];
    const std::size_t base = i * width_;
    for (unsigned j = 0; j < width_; ++j)
      scratch_[j] = ((bits_[(base + j) >> 6] >> ((base + j) & 63)) & 1u)
                        ? block_ones<Block>()
                        : Block{};
    return scratch_.data();
  }

 private:
  struct Entry {
    std::size_t pos;     // read index in the stream
    std::size_t offset;  // into blocks_ (width_ lane blocks per entry)
  };

  unsigned width_;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> bits_;  // [pos * width + j] -> uniform lane bit
  std::vector<Entry> divergent_;     // appended in stream order => sorted
  std::vector<Block> blocks_;
  mutable std::vector<Block> scratch_;
};

// Feeds reads into a packed MISR and/or diffs them against a recorded
// prediction stream position-by-position; either checker may be absent
// (nullptr) when its verdict is not wanted.
template <class Block>
class SessionTestSink final : public PackedReadSinkT<Block> {
 public:
  SessionTestSink(unsigned width, const StreamRecorder<Block>* prediction,
                  PackedMisrT<Block>* misr)
      : width_(width), prediction_(prediction), misr_(misr) {}

  void on_read(std::size_t, const Block* value) override {
    if (misr_) misr_->feed(value, width_);
    if (prediction_ && pos_ < prediction_->reads()) {
      const Block* p = prediction_->at(pos_);
      for (unsigned j = 0; j < width_; ++j) stream_diff_ |= value[j] ^ p[j];
    }
    ++pos_;
  }

  std::size_t reads() const { return pos_; }
  Block stream_diff() const { return stream_diff_; }

 private:
  unsigned width_;
  const StreamRecorder<Block>* prediction_;
  PackedMisrT<Block>* misr_;
  std::size_t pos_ = 0;
  Block stream_diff_{};
};

// Feeds reads into a packed MISR and optionally records them (the
// recorder is skipped when the exact comparison is not wanted).
template <class Block>
class MisrFeedSink final : public PackedReadSinkT<Block> {
 public:
  MisrFeedSink(unsigned width, PackedMisrT<Block>& misr, StreamRecorder<Block>* rec)
      : width_(width), misr_(misr), rec_(rec) {}
  void on_read(std::size_t addr, const Block* value) override {
    misr_.feed(value, width_);
    if (rec_) rec_->on_read(addr, value);
  }

 private:
  unsigned width_;
  PackedMisrT<Block>& misr_;
  StreamRecorder<Block>* rec_;
};

}  // namespace packed_detail

template <class Block>
PackedTransparentOutcomeT<Block> PackedMarchRunnerT<Block>::run_transparent_session(
    const MarchTest& test, const MarchTest& prediction, unsigned misr_width,
    SessionBrakeT<Block>* brake, bool want_exact, bool want_misr) {
  const unsigned w = mem_.word_width();
  PackedTransparentOutcomeT<Block> out;

  packed_detail::StreamRecorder<Block> pred_stream(w);
  // The prediction is read-only, so its exact read count is known up front;
  // reserving avoids reallocating the (lanes x width)-sized stream as it
  // grows.
  if (want_exact) pred_stream.reserve_reads(prediction.op_count() * mem_.num_words());
  PackedMisrT<Block> pred_misr(want_misr ? misr_width : 1);
  if (want_misr) {
    packed_detail::MisrFeedSink<Block> pred_sink(w, pred_misr,
                                                 want_exact ? &pred_stream : nullptr);
    // The prediction pass has no comparison yet, so the brake only counts
    // its elements; the settle predicate cannot fire before the test pass.
    sweep_count_only(prediction, brake);
    run_prediction(prediction, pred_sink);
  } else {
    sweep_count_only(prediction, brake);
    run_prediction(prediction, pred_stream);
  }

  PackedMisrT<Block> test_misr(want_misr ? misr_width : 1);
  packed_detail::SessionTestSink<Block> test_sink(w, want_exact ? &pred_stream : nullptr,
                                                  want_misr ? &test_misr : nullptr);
  run_test_braked(test, test_sink, brake, [&] { return test_sink.stream_diff(); });

  out.detected_exact = test_sink.stream_diff();
  // A read-count mismatch makes the scalar stream comparison fail outright,
  // in every lane — unless the brake aborted the test pass, in which case
  // every target lane's bit is already (finally) set and the short count is
  // expected.
  const bool aborted = brake && brake->should_stop(test_sink.stream_diff());
  if (want_exact && !aborted && test_sink.reads() != pred_stream.reads())
    out.detected_exact = block_ones<Block>();
  if (want_misr) out.detected_misr = pred_misr.diff(test_misr);
  return out;
}

// The PR 1 64-lane spellings.
using PackedReadSink = PackedReadSinkT<std::uint64_t>;
using PackedMisr = PackedMisrT<std::uint64_t>;
using PackedTransparentOutcome = PackedTransparentOutcomeT<std::uint64_t>;
using PackedMarchRunner = PackedMarchRunnerT<std::uint64_t>;

extern template class PackedMisrT<std::uint64_t>;
extern template class PackedMarchRunnerT<std::uint64_t>;

}  // namespace twm

#endif  // TWM_BIST_PACKED_ENGINE_H
