// Lane-parallel march test execution over PackedMemory: the batched
// counterpart of bist/engine.h, evaluating 64 fault universes per pass.
//
// Execution styles mirror MarchRunner operation-for-operation:
//
//  * run_direct()     — nontransparent tests; returns the LaneMask of lanes
//                       in which at least one Read mismatched its absolute
//                       expected value.
//  * run_test()       — transparent test pass; Write data is derived
//                       per lane from the most recent Read of the same word
//                       (base-estimate XOR operation mask).
//  * run_prediction() — read-only signature-prediction pass feeding
//                       read-value XOR operation-mask per lane.
//
// run_transparent_session() bundles both passes and reports, per lane, the
// exact stream comparison and the MISR signature comparison.  PackedMisr
// runs 64 Galois MISRs at once by keeping each signature bit as a lane
// vector; it reproduces Misr (bist/misr.h) exactly, including the input
// folding rule, so lane verdicts match the scalar engine's.
#ifndef TWM_BIST_PACKED_ENGINE_H
#define TWM_BIST_PACKED_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "march/test.h"
#include "memsim/packed_memory.h"

namespace twm {

// Receives the lane vectors of every Read operation.  `value` spans the
// word width and is only valid for the duration of the call.
class PackedReadSink {
 public:
  virtual ~PackedReadSink() = default;
  virtual void on_read(std::size_t addr, const std::uint64_t* value) = 0;
};

// 64 parallel Galois MISRs with the same feedback polynomial; signature bit
// i across all lanes is state()[i].
class PackedMisr {
 public:
  explicit PackedMisr(unsigned width);

  unsigned width() const { return static_cast<unsigned>(state_.size()); }

  // Folds one packed input word (input_width lane vectors) into all lane
  // signatures; replicates Misr::feed (shift, conditional feedback, XOR of
  // the width-folded input).
  void feed(const std::uint64_t* input, unsigned input_width);

  const std::vector<std::uint64_t>& state() const { return state_; }

  // Lanes whose signature differs from `other`'s.
  LaneMask diff(const PackedMisr& other) const;

 private:
  void step();

  std::vector<std::uint64_t> state_;  // [bit] -> lane vector
  std::vector<unsigned> taps_;        // set bits of the feedback pattern
};

struct PackedTransparentOutcome {
  LaneMask detected_exact = 0;  // prediction/test read streams differ
  LaneMask detected_misr = 0;   // MISR signatures differ
};

class PackedMarchRunner {
 public:
  explicit PackedMarchRunner(PackedMemory& mem) : mem_(mem) {}

  LaneMask run_direct(const MarchTest& test);
  void run_test(const MarchTest& test, PackedReadSink& sink);
  void run_prediction(const MarchTest& prediction, PackedReadSink& sink);

  PackedTransparentOutcome run_transparent_session(const MarchTest& test,
                                                   const MarchTest& prediction,
                                                   unsigned misr_width);

 private:
  template <typename PerOp>
  void sweep(const MarchTest& test, PerOp&& per_op);

  PackedMemory& mem_;
};

}  // namespace twm

#endif  // TWM_BIST_PACKED_ENGINE_H
