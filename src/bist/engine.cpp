#include "bist/engine.h"

#include <stdexcept>

#include "bist/address_gen.h"

namespace twm {

// Visits every (element, op, address) in march order and calls
// per_op(element_index, op_index, addr, op).
template <typename PerOp>
void MarchRunner::sweep(const MarchTest& test, PerOp&& per_op) {
  for (std::size_t e = 0; e < test.elements.size(); ++e) {
    const MarchElement& elem = test.elements[e];
    if (elem.pause_before) mem_.elapse(1);
    if (elem.ops.empty()) continue;
    for (AddressGen gen(elem.order, mem_.num_words()); !gen.done(); gen.advance()) {
      const std::size_t addr = gen.current();
      for (std::size_t i = 0; i < elem.ops.size(); ++i) per_op(e, i, addr, elem.ops[i]);
    }
  }
}

DirectRunResult MarchRunner::run_direct(const MarchTest& test) {
  const unsigned w = mem_.word_width();
  const BitVec zero = BitVec::zeros(w);
  DirectRunResult res;
  sweep(test, [&](std::size_t e, std::size_t i, std::size_t addr, const Op& op) {
    if (op.data.relative)
      throw std::invalid_argument("run_direct: test contains transparent (relative) operations");
    if (op.is_write()) {
      const BitVec data = op.data.value(w, zero);
      mem_.write(addr, data);
      if (observer_) observer_->on_op(e, i, addr, op, data);
      return;
    }
    const BitVec actual = mem_.read(addr);
    const BitVec expected = op.data.value(w, zero);
    if (actual != expected) {
      ++res.mismatch_count;
      if (!res.mismatch) {
        res.mismatch = true;
        res.fail_element = e;
        res.fail_op = i;
        res.fail_addr = addr;
        res.expected = expected;
        res.actual = actual;
      }
    }
    if (observer_) observer_->on_op(e, i, addr, op, actual);
  });
  return res;
}

void MarchRunner::run_test(const MarchTest& test, ReadSink& sink) {
  const unsigned w = mem_.word_width();
  // Base estimate of each word's initial content, derived from reads; a
  // transparent BIST keeps (the equivalent of) this in its word register.
  std::vector<BitVec> base(mem_.num_words(), BitVec::zeros(w));
  std::vector<bool> valid(mem_.num_words(), false);

  sweep(test, [&](std::size_t e, std::size_t i, std::size_t addr, const Op& op) {
    const BitVec mask = op.data.mask(w);
    if (op.is_read()) {
      const BitVec v = mem_.read(addr);
      sink.on_read(addr, v);
      base[addr] = v ^ mask;
      valid[addr] = true;
      if (observer_) observer_->on_op(e, i, addr, op, v);
      return;
    }
    BitVec data;
    if (op.data.relative) {
      if (!valid[addr])
        throw std::logic_error("run_test: transparent write before any read of word");
      data = base[addr] ^ mask;
    } else {
      data = op.data.value(w, base[addr]);
    }
    mem_.write(addr, data);
    if (observer_) observer_->on_op(e, i, addr, op, data);
  });
}

void MarchRunner::run_prediction(const MarchTest& prediction, ReadSink& sink) {
  const unsigned w = mem_.word_width();
  sweep(prediction, [&](std::size_t e, std::size_t i, std::size_t addr, const Op& op) {
    if (op.is_write())
      throw std::invalid_argument("run_prediction: prediction test must be read-only");
    const BitVec raw = mem_.read(addr);
    const BitVec predicted = raw ^ op.data.mask(w);
    sink.on_read(addr, predicted);
    if (observer_) observer_->on_op(e, i, addr, op, predicted);
  });
}

namespace {

// Diffs the test pass against a recorded prediction stream position by
// position, without storing a second stream — the scalar counterpart of the
// packed engine's SessionTestSink.
class CompareSink final : public ReadSink {
 public:
  explicit CompareSink(const std::vector<BitVec>& prediction) : prediction_(prediction) {}

  void on_read(std::size_t, const BitVec& value) override {
    if (pos_ < prediction_.size() && value != prediction_[pos_]) diff_ = true;
    ++pos_;
  }

  // Streams differ when any position mismatched or the lengths disagree.
  bool stream_diff() const { return diff_ || pos_ != prediction_.size(); }

 private:
  const std::vector<BitVec>& prediction_;
  std::size_t pos_ = 0;
  bool diff_ = false;
};

}  // namespace

TransparentOutcome MarchRunner::run_transparent_session(const MarchTest& test,
                                                        const MarchTest& prediction,
                                                        unsigned misr_width) {
  TransparentOutcome out;

  StreamRecorder pred_stream;
  MisrSink pred_misr(misr_width);
  TeeSink pred_tee({&pred_stream, &pred_misr});
  run_prediction(prediction, pred_tee);

  CompareSink test_stream(pred_stream.stream());
  MisrSink test_misr(misr_width);
  TeeSink test_tee({&test_stream, &test_misr});
  run_test(test, test_tee);

  out.signature_predicted = pred_misr.signature();
  out.signature_observed = test_misr.signature();
  out.detected_exact = test_stream.stream_diff();
  out.detected_misr = out.signature_predicted != out.signature_observed;
  return out;
}

}  // namespace twm
