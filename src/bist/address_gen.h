// Address sequence generator for march elements.
//
// AddrOrder::Any is executed ascending by convention (any consistent order
// is permitted by march semantics; using the same one keeps prediction and
// test passes aligned).
#ifndef TWM_BIST_ADDRESS_GEN_H
#define TWM_BIST_ADDRESS_GEN_H

#include <cstddef>
#include <vector>

#include "march/op.h"

namespace twm {

class AddressGen {
 public:
  AddressGen(AddrOrder order, std::size_t num_words);

  bool done() const { return remaining_ == 0; }
  std::size_t current() const { return cur_; }
  void advance();
  void reset();

  std::size_t num_words() const { return n_; }

  // Convenience: the full sequence as a vector.
  static std::vector<std::size_t> sequence(AddrOrder order, std::size_t num_words);

 private:
  AddrOrder order_;
  std::size_t n_;
  std::size_t cur_ = 0;
  std::size_t remaining_ = 0;
};

}  // namespace twm

#endif  // TWM_BIST_ADDRESS_GEN_H
