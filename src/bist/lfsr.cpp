#include "bist/lfsr.h"

#include <stdexcept>

#include "bist/misr.h"

namespace twm {

Lfsr::Lfsr(unsigned width, std::uint64_t seed) : Lfsr(width, seed, Misr::default_taps(width)) {}

Lfsr::Lfsr(unsigned width, std::uint64_t seed, const std::vector<unsigned>& taps)
    : state_(BitVec::from_uint(width, seed)), poly_(BitVec::zeros(width)) {
  if (width == 0) throw std::invalid_argument("Lfsr: zero width");
  if (state_.all_zero()) throw std::invalid_argument("Lfsr: seed must be non-zero");
  for (unsigned t : taps) {
    if (t >= width) throw std::invalid_argument("Lfsr: tap exponent >= width");
    poly_.set(t, true);
  }
  // The x^0 term is what reinjects the shifted-out bit; without it the
  // register drains to zero.
  if (!poly_.get(0)) throw std::invalid_argument("Lfsr: taps must include 0");
}

const BitVec& Lfsr::next() {
  const unsigned w = state_.width();
  const bool out = state_.get(w - 1);
  BitVec next_state = BitVec::zeros(w);
  for (unsigned i = w; i-- > 1;) next_state.set(i, state_.get(i - 1));
  if (out) next_state ^= poly_;
  state_ = next_state;
  return state_;
}

}  // namespace twm
