// March test execution engine.
//
// Three execution styles:
//
//  * run_direct()     — nontransparent tests: every Read is compared against
//                       its absolute expected value; Writes store absolute
//                       data.  Returns the comparison outcome (with first-
//                       failure diagnosis info).
//  * run_test()       — transparent test pass: Reads feed the *raw* read
//                       value to a ReadSink; Write data is derived from the
//                       most recent read of the same word, exactly as a
//                       transparent BIST datapath does (write data =
//                       base-estimate XOR operation mask, where the base
//                       estimate is updated to read-value XOR read-mask at
//                       every Read).  No stored golden data is consulted.
//  * run_prediction() — signature-prediction pass: the test's Read-only
//                       skeleton is executed on the unmodified memory; each
//                       Read feeds read-value XOR operation-mask, which in a
//                       fault-free memory equals the value the test pass
//                       will later read at the corresponding operation.
//
// run_transparent_session() bundles prediction pass + test pass and reports
// both the exact stream comparison (no aliasing) and the MISR comparison
// (realistic hardware, 2^-W aliasing).
#ifndef TWM_BIST_ENGINE_H
#define TWM_BIST_ENGINE_H

#include <cstdint>
#include <vector>

#include "bist/misr.h"
#include "march/test.h"
#include "memsim/memory.h"

namespace twm {

// Receives the value of every Read operation (after any transparency
// correction appropriate to the pass).
class ReadSink {
 public:
  virtual ~ReadSink() = default;
  virtual void on_read(std::size_t addr, const BitVec& value) = 0;
};

// Records the full read stream for exact (aliasing-free) comparison.
class StreamRecorder final : public ReadSink {
 public:
  void on_read(std::size_t, const BitVec& value) override { stream_.push_back(value); }
  const std::vector<BitVec>& stream() const { return stream_; }
  bool operator==(const StreamRecorder& o) const { return stream_ == o.stream_; }

 private:
  std::vector<BitVec> stream_;
};

// Feeds reads into a MISR.
class MisrSink final : public ReadSink {
 public:
  explicit MisrSink(unsigned width) : misr_(width) {}
  void on_read(std::size_t, const BitVec& value) override { misr_.feed(value); }
  const BitVec& signature() const { return misr_.signature(); }

 private:
  Misr misr_;
};

// Fans a read out to several sinks.
class TeeSink final : public ReadSink {
 public:
  explicit TeeSink(std::vector<ReadSink*> sinks) : sinks_(std::move(sinks)) {}
  void on_read(std::size_t addr, const BitVec& value) override {
    for (auto* s : sinks_) s->on_read(addr, value);
  }

 private:
  std::vector<ReadSink*> sinks_;
};

// Analysis hook: called after each executed operation with the concrete
// value read or written.  `element` / `op_index` locate the operation.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_op(std::size_t element, std::size_t op_index, std::size_t addr, const Op& op,
                     const BitVec& value) = 0;
};

struct DirectRunResult {
  bool mismatch = false;
  std::uint64_t mismatch_count = 0;
  // First failing operation (valid when mismatch).
  std::size_t fail_element = 0;
  std::size_t fail_op = 0;
  std::size_t fail_addr = 0;
  BitVec expected;
  BitVec actual;
};

struct TransparentOutcome {
  bool detected_exact = false;  // prediction/test read streams differ
  bool detected_misr = false;   // MISR signatures differ
  BitVec signature_predicted;
  BitVec signature_observed;
};

class MarchRunner {
 public:
  explicit MarchRunner(MemoryIf& mem) : mem_(mem) {}

  void set_observer(EngineObserver* obs) { observer_ = obs; }

  DirectRunResult run_direct(const MarchTest& test);
  void run_test(const MarchTest& test, ReadSink& sink);
  void run_prediction(const MarchTest& prediction, ReadSink& sink);

  TransparentOutcome run_transparent_session(const MarchTest& test, const MarchTest& prediction,
                                             unsigned misr_width);

 private:
  template <typename PerOp>
  void sweep(const MarchTest& test, PerOp&& per_op);

  MemoryIf& mem_;
  EngineObserver* observer_ = nullptr;
};

}  // namespace twm

#endif  // TWM_BIST_ENGINE_H
