// Galois LFSR: pseudo-random pattern source for BIST-style stimulus
// (background selection, address scrambling in the examples).
#ifndef TWM_BIST_LFSR_H
#define TWM_BIST_LFSR_H

#include <vector>

#include "util/bitvec.h"

namespace twm {

class Lfsr {
 public:
  // Seed must be non-zero (all-zero is the LFSR's fixed point); the
  // polynomial defaults to the MISR table for the width.
  Lfsr(unsigned width, std::uint64_t seed);
  Lfsr(unsigned width, std::uint64_t seed, const std::vector<unsigned>& taps);

  unsigned width() const { return state_.width(); }

  // Advances one step and returns the new state.
  const BitVec& next();
  const BitVec& state() const { return state_; }

 private:
  BitVec state_;
  BitVec poly_;
};

}  // namespace twm

#endif  // TWM_BIST_LFSR_H
