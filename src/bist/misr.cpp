#include "bist/misr.h"

#include <stdexcept>

namespace twm {

std::vector<unsigned> Misr::default_taps(unsigned width) {
  switch (width) {
    case 1: return {0};
    case 2: return {1, 0};
    case 3: return {1, 0};
    case 4: return {1, 0};
    case 8: return {4, 3, 2, 0};
    case 16: return {12, 3, 1, 0};
    case 32: return {22, 2, 1, 0};
    case 64: return {4, 3, 1, 0};
    case 128: return {7, 2, 1, 0};
    default: return {1, 0};
  }
}

Misr::Misr(unsigned width) : Misr(width, default_taps(width)) {}

Misr::Misr(unsigned width, const std::vector<unsigned>& taps)
    : state_(BitVec::zeros(width)), poly_(BitVec::zeros(width)) {
  if (width == 0) throw std::invalid_argument("Misr: zero width");
  for (unsigned t : taps) {
    if (t >= width) throw std::invalid_argument("Misr: tap exponent >= width");
    poly_.set(t, true);
  }
}

void Misr::step() {
  const unsigned w = state_.width();
  const bool out = state_.get(w - 1);
  BitVec next = BitVec::zeros(w);
  for (unsigned i = w; i-- > 1;) next.set(i, state_.get(i - 1));
  if (out) next ^= poly_;
  state_ = next;
}

void Misr::feed(const BitVec& input) {
  const unsigned w = state_.width();
  step();
  // Fold the input into width-sized chunks.
  BitVec folded = BitVec::zeros(w);
  for (unsigned i = 0; i < input.width(); ++i)
    if (input.get(i)) folded.flip(i % w);
  state_ ^= folded;
}

}  // namespace twm
