// March-test microcode: the program representation a hardware BIST engine
// actually stores.
//
// A march test compiles to a small ROM of micro-instructions, one per
// operation, each carrying: the port action (read/write), an index into a
// mask ROM (the XOR distance of the operation's data from the word's
// initial content), the element's address direction, and loop-boundary
// flags.  The datapath (bist/datapath.h) interprets this ROM with exactly
// the registers a synthesized engine would have; compile() is the software
// that a test engineer runs at integration time, not silicon.
//
// Masks are deduplicated: TWMarch(March C-) at B = 32 needs only 7 mask
// words (0, ~0, D1..D5) regardless of test length — this is the hardware
// cost the paper's log2(B)-sized ATMarch keeps small, and mask_rom_size()
// exposes it for the area comparison in bench_catalog.
#ifndef TWM_BIST_MICROCODE_H
#define TWM_BIST_MICROCODE_H

#include <cstdint>
#include <vector>

#include "march/test.h"

namespace twm {

struct MicroOp {
  bool write = false;        // port action
  std::uint16_t mask_index = 0;  // index into the mask ROM
  bool last_in_element = false;  // advance the address counter after this op
  bool element_start = false;    // first op of an element (word-register load point)
};

struct ElementDescriptor {
  bool descending = false;   // address counter direction
  bool pause_before = false;  // march Del: one elapse() unit before the sweep
  std::uint16_t first_op = 0;  // index of the element's first MicroOp
  std::uint16_t op_count = 0;
};

struct BistProgram {
  std::vector<MicroOp> ops;               // operation ROM
  std::vector<ElementDescriptor> elements;  // element sequencing ROM
  std::vector<BitVec> masks;              // mask ROM (deduplicated)
  unsigned width = 0;

  std::size_t mask_rom_size() const { return masks.size(); }
  std::size_t op_rom_size() const { return ops.size(); }
};

// Compiles a *transparent* march test into a BIST program.  Throws
// std::invalid_argument for nontransparent input (a hardware transparent
// BIST has no absolute-data source) or empty tests.
BistProgram compile_program(const MarchTest& transparent, unsigned width);

// The read-only program of the signature-prediction pass: same masks, the
// Write micro-ops dropped.
BistProgram prediction_program(const BistProgram& prog);

}  // namespace twm

#endif  // TWM_BIST_MICROCODE_H
