#include "bist/tbist.h"

#include <stdexcept>

#include "bist/address_gen.h"

namespace twm {

TbistController::TbistController(Memory& mem, Config cfg)
    : mem_(mem),
      cfg_(std::move(cfg)),
      pred_(cfg_.misr_width ? cfg_.misr_width : mem.word_width()),
      obs_(cfg_.misr_width ? cfg_.misr_width : mem.word_width()),
      cur_base_(BitVec::zeros(mem.word_width())),
      cur_mask_(BitVec::zeros(mem.word_width())) {
  if (!cfg_.test.is_transparent())
    throw std::invalid_argument("TbistController: test must be transparent");
  if (cfg_.prediction.write_count() != 0)
    throw std::invalid_argument("TbistController: prediction test must be read-only");
  if (!cfg_.test.every_element_begins_with_read())
    throw std::invalid_argument("TbistController: every test element must begin with a Read");

  // Displacement after each test element = mask of its last write (carried
  // forward when an element writes nothing).
  const unsigned w = mem_.word_width();
  BitVec m = BitVec::zeros(w);
  for (const auto& e : cfg_.test.elements) {
    for (const auto& op : e.ops)
      if (op.is_write()) m = op.data.mask(w);
    elem_exit_mask_.push_back(m);
  }
}

void TbistController::enter_phase(State s) {
  state_ = s;
  elem_ = 0;
  op_ = 0;
  const MarchTest& t = active_test();
  if (!t.elements.empty() && t.elements[0].pause_before) mem_.elapse(1);
  addr_ = (!t.elements.empty() && t.elements[0].order == AddrOrder::Down)
              ? mem_.num_words() - 1
              : 0;
  cur_base_valid_ = false;
  cur_mask_ = (s == State::Test && elem_ != 0) ? elem_exit_mask_[elem_ - 1]
                                               : BitVec::zeros(mem_.word_width());
}

void TbistController::start_session() {
  if (state_ != State::Idle && state_ != State::Done)
    throw std::logic_error("TbistController::start_session: session already active");
  pred_.reset();
  obs_.reset();
  checkpoints_.clear();
  boundary_mismatch_ = false;
  failing_element_ = 0;
  ++stats_.sessions_started;
  enter_phase(State::Predict);
}

void TbistController::on_element_boundary() {
  if (!cfg_.element_checkpoints) return;
  if (state_ == State::Predict) {
    checkpoints_.push_back(pred_.signature());
  } else if (state_ == State::Test && !boundary_mismatch_ && elem_ < checkpoints_.size() &&
             obs_.signature() != checkpoints_[elem_]) {
    // First mismatching boundary: localize.  The session still runs to the
    // end so the transparent test restores the memory contents itself.
    boundary_mismatch_ = true;
    failing_element_ = elem_;
  }
}

bool TbistController::advance_cursor() {
  const MarchTest& t = active_test();
  const MarchElement& e = t.elements[elem_];
  if (++op_ < e.ops.size()) return true;
  op_ = 0;
  cur_base_valid_ = false;
  // Next address in this element's order.
  const bool down = e.order == AddrOrder::Down;
  const bool last_addr = down ? (addr_ == 0) : (addr_ + 1 == mem_.num_words());
  if (!last_addr) {
    addr_ = down ? addr_ - 1 : addr_ + 1;
    // The next word has not been touched by this element yet: its
    // displacement is the element's entry mask.
    if (state_ == State::Test)
      cur_mask_ = elem_ == 0 ? BitVec::zeros(mem_.word_width()) : elem_exit_mask_[elem_ - 1];
    return true;
  }
  // Next element.
  on_element_boundary();
  if (state_ == State::Test) cur_mask_ = elem_exit_mask_[elem_];
  while (++elem_ < t.elements.size()) {
    if (t.elements[elem_].pause_before) mem_.elapse(1);
    if (!t.elements[elem_].ops.empty()) break;
  }
  if (elem_ >= t.elements.size()) return false;
  addr_ = (t.elements[elem_].order == AddrOrder::Down) ? mem_.num_words() - 1 : 0;
  return true;
}

bool TbistController::step() {
  if (state_ == State::Idle || state_ == State::Done) return false;
  ++stats_.steps;

  if (state_ == State::Compare) {
    last_failed_ = pred_.signature() != obs_.signature();
    if (last_failed_) ++stats_.failures_detected;
    ++stats_.sessions_completed;
    state_ = State::Done;
    return false;
  }

  const MarchTest& t = active_test();
  if (t.elements.empty()) {
    state_ = State::Compare;
    return true;
  }
  const Op& op = t.elements[elem_].ops[op_];
  const unsigned w = mem_.word_width();
  const BitVec mask = op.data.mask(w);

  if (state_ == State::Predict) {
    const BitVec raw = mem_.read(addr_);
    pred_.feed(raw ^ mask);
  } else {  // Test
    if (op.is_read()) {
      const BitVec v = mem_.read(addr_);
      obs_.feed(v);
      cur_base_ = v ^ mask;
      cur_base_valid_ = true;
      cur_mask_ = mask;  // fault-free content is now base ^ mask
    } else {
      if (!cur_base_valid_)
        throw std::logic_error("TbistController: write before read within element");
      mem_.write(addr_, cur_base_ ^ mask);
      cur_mask_ = mask;
    }
  }

  if (!advance_cursor()) {
    // Phase finished.
    if (state_ == State::Predict) {
      enter_phase(State::Test);
      cur_mask_ = BitVec::zeros(w);
    } else {
      state_ = State::Compare;
    }
  }
  return true;
}

bool TbistController::run_session_to_completion() {
  if (state_ == State::Idle || state_ == State::Done) start_session();
  while (step()) {
  }
  return last_session_failed();
}

bool TbistController::word_done_in_current_element(std::size_t addr) const {
  const MarchTest& t = active_test();
  if (elem_ >= t.elements.size()) return true;
  const bool down = t.elements[elem_].order == AddrOrder::Down;
  return down ? addr > addr_ : addr < addr_;
}

BitVec TbistController::displacement(std::size_t addr) const {
  const unsigned w = mem_.word_width();
  if (state_ != State::Test) return BitVec::zeros(w);
  if (addr == addr_) return cur_mask_;
  if (word_done_in_current_element(addr)) return elem_exit_mask_[elem_];
  return elem_ == 0 ? BitVec::zeros(w) : elem_exit_mask_[elem_ - 1];
}

void TbistController::restore_all() {
  for (std::size_t a = 0; a < mem_.num_words(); ++a) {
    const BitVec m = displacement(a);
    if (m.all_zero()) continue;
    const BitVec v = mem_.read(a);
    mem_.write(a, v ^ m);
  }
}

BitVec TbistController::functional_read(std::size_t addr) {
  ++stats_.functional_reads;
  return mem_.read(addr) ^ displacement(addr);
}

void TbistController::functional_write(std::size_t addr, const BitVec& data) {
  ++stats_.functional_writes;
  if (state_ == State::Predict || state_ == State::Test || state_ == State::Compare) {
    restore_all();
    ++stats_.sessions_aborted;
    state_ = State::Idle;
  }
  mem_.write(addr, data);
}

}  // namespace twm
