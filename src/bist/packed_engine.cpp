#include "bist/packed_engine.h"

#include <stdexcept>

#include "bist/address_gen.h"
#include "bist/misr.h"

namespace twm {

namespace {

// Per-op broadcast masks of a test, flattened as [element][op].
std::vector<std::vector<std::vector<std::uint64_t>>> op_masks(const MarchTest& test, unsigned w) {
  std::vector<std::vector<std::vector<std::uint64_t>>> masks(test.elements.size());
  for (std::size_t e = 0; e < test.elements.size(); ++e) {
    masks[e].reserve(test.elements[e].ops.size());
    for (const Op& op : test.elements[e].ops) masks[e].push_back(broadcast_word(op.data.mask(w)));
  }
  return masks;
}

}  // namespace

PackedMisr::PackedMisr(unsigned width) : state_(width, 0), taps_(Misr::default_taps(width)) {
  if (width == 0) throw std::invalid_argument("PackedMisr: zero width");
}

void PackedMisr::step() {
  const unsigned w = width();
  const std::uint64_t carry = state_[w - 1];  // lanes whose MSB shifts out
  for (unsigned i = w; i-- > 1;) state_[i] = state_[i - 1];
  state_[0] = 0;
  for (unsigned t : taps_) state_[t] ^= carry;
}

void PackedMisr::feed(const std::uint64_t* input, unsigned input_width) {
  const unsigned w = width();
  step();
  // Fold the input into width-sized chunks (Misr::feed's rule, per lane).
  for (unsigned i = 0; i < input_width; ++i) state_[i % w] ^= input[i];
}

LaneMask PackedMisr::diff(const PackedMisr& other) const {
  if (width() != other.width()) throw std::invalid_argument("PackedMisr::diff: width mismatch");
  LaneMask m = 0;
  for (unsigned i = 0; i < width(); ++i) m |= state_[i] ^ other.state_[i];
  return m;
}

// Visits every (element, op, address) in march order, precomputing the
// broadcast data mask of each op once per element.
template <typename PerOp>
void PackedMarchRunner::sweep(const MarchTest& test, PerOp&& per_op) {
  const unsigned w = mem_.word_width();
  const auto masks = op_masks(test, w);
  for (std::size_t e = 0; e < test.elements.size(); ++e) {
    const MarchElement& elem = test.elements[e];
    if (elem.pause_before) mem_.elapse(1);
    if (elem.ops.empty()) continue;
    for (AddressGen gen(elem.order, mem_.num_words()); !gen.done(); gen.advance()) {
      const std::size_t addr = gen.current();
      for (std::size_t i = 0; i < elem.ops.size(); ++i)
        per_op(addr, elem.ops[i], masks[e][i].data());
    }
  }
}

LaneMask PackedMarchRunner::run_direct(const MarchTest& test) {
  const unsigned w = mem_.word_width();
  LaneMask mismatch = 0;
  sweep(test, [&](std::size_t addr, const Op& op, const std::uint64_t* mask) {
    if (op.data.relative)
      throw std::invalid_argument("run_direct: test contains transparent (relative) operations");
    // For absolute specs, mask(w) == value(w, ·): the expected read value /
    // the write data, broadcast over lanes.
    if (op.is_write()) {
      mem_.write(addr, mask);
      return;
    }
    const std::uint64_t* actual = mem_.read(addr);
    for (unsigned j = 0; j < w; ++j) mismatch |= actual[j] ^ mask[j];
  });
  return mismatch;
}

void PackedMarchRunner::run_test(const MarchTest& test, PackedReadSink& sink) {
  const unsigned w = mem_.word_width();
  // Per-lane base estimate of each word's initial content (the transparent
  // BIST's word register, one copy per universe).
  std::vector<std::uint64_t> base(mem_.num_words() * w, 0);
  std::vector<bool> valid(mem_.num_words(), false);
  std::vector<std::uint64_t> data(w, 0);

  sweep(test, [&](std::size_t addr, const Op& op, const std::uint64_t* mask) {
    std::uint64_t* b = &base[addr * w];
    if (op.is_read()) {
      const std::uint64_t* v = mem_.read(addr);
      sink.on_read(addr, v);
      for (unsigned j = 0; j < w; ++j) b[j] = v[j] ^ mask[j];
      valid[addr] = true;
      return;
    }
    if (op.data.relative) {
      if (!valid[addr])
        throw std::logic_error("run_test: transparent write before any read of word");
      for (unsigned j = 0; j < w; ++j) data[j] = b[j] ^ mask[j];
      mem_.write(addr, data.data());
    } else {
      // Absolute write: mask(w) == value(w, ·), lane-uniform.
      mem_.write(addr, mask);
    }
  });
}

void PackedMarchRunner::run_prediction(const MarchTest& prediction, PackedReadSink& sink) {
  const unsigned w = mem_.word_width();
  std::vector<std::uint64_t> predicted(w, 0);
  sweep(prediction, [&](std::size_t addr, const Op& op, const std::uint64_t* mask) {
    if (op.is_write())
      throw std::invalid_argument("run_prediction: prediction test must be read-only");
    const std::uint64_t* raw = mem_.read(addr);
    for (unsigned j = 0; j < w; ++j) predicted[j] = raw[j] ^ mask[j];
    sink.on_read(addr, predicted.data());
  });
}

namespace {

// Records the full packed read stream (flattened lane vectors).
class PackedStreamRecorder final : public PackedReadSink {
 public:
  explicit PackedStreamRecorder(unsigned width) : width_(width) {}
  void on_read(std::size_t, const std::uint64_t* value) override {
    stream_.insert(stream_.end(), value, value + width_);
  }
  std::size_t reads() const { return stream_.size() / width_; }
  const std::uint64_t* at(std::size_t i) const { return &stream_[i * width_]; }

 private:
  unsigned width_;
  std::vector<std::uint64_t> stream_;
};

// Feeds reads into a packed MISR and diffs them against a recorded
// prediction stream position-by-position.
class SessionTestSink final : public PackedReadSink {
 public:
  SessionTestSink(unsigned width, const PackedStreamRecorder& prediction, PackedMisr& misr)
      : width_(width), prediction_(prediction), misr_(misr) {}

  void on_read(std::size_t, const std::uint64_t* value) override {
    misr_.feed(value, width_);
    if (pos_ < prediction_.reads()) {
      const std::uint64_t* p = prediction_.at(pos_);
      for (unsigned j = 0; j < width_; ++j) stream_diff_ |= value[j] ^ p[j];
    }
    ++pos_;
  }

  std::size_t reads() const { return pos_; }
  LaneMask stream_diff() const { return stream_diff_; }

 private:
  unsigned width_;
  const PackedStreamRecorder& prediction_;
  PackedMisr& misr_;
  std::size_t pos_ = 0;
  LaneMask stream_diff_ = 0;
};

class MisrFeedSink final : public PackedReadSink {
 public:
  MisrFeedSink(unsigned width, PackedMisr& misr, PackedStreamRecorder& rec)
      : width_(width), misr_(misr), rec_(rec) {}
  void on_read(std::size_t addr, const std::uint64_t* value) override {
    misr_.feed(value, width_);
    rec_.on_read(addr, value);
  }

 private:
  unsigned width_;
  PackedMisr& misr_;
  PackedStreamRecorder& rec_;
};

}  // namespace

PackedTransparentOutcome PackedMarchRunner::run_transparent_session(const MarchTest& test,
                                                                    const MarchTest& prediction,
                                                                    unsigned misr_width) {
  const unsigned w = mem_.word_width();
  PackedTransparentOutcome out;

  PackedStreamRecorder pred_stream(w);
  PackedMisr pred_misr(misr_width);
  MisrFeedSink pred_sink(w, pred_misr, pred_stream);
  run_prediction(prediction, pred_sink);

  PackedMisr test_misr(misr_width);
  SessionTestSink test_sink(w, pred_stream, test_misr);
  run_test(test, test_sink);

  out.detected_exact = test_sink.stream_diff();
  // A read-count mismatch makes the scalar stream comparison fail outright,
  // in every lane.
  if (test_sink.reads() != pred_stream.reads()) out.detected_exact = ~0ull;
  out.detected_misr = pred_misr.diff(test_misr);
  return out;
}

}  // namespace twm
