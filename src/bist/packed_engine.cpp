// Pins the 64-lane instantiations of the packed march engine into the base
// library (no extra arch flags); the wide instantiations are compiled in
// src/analysis/campaign_w256.cpp / campaign_w512.cpp with -mavx2/-mavx512f.
#include "bist/packed_engine.h"

namespace twm {

template class PackedMisrT<std::uint64_t>;
template class PackedMarchRunnerT<std::uint64_t>;

}  // namespace twm
