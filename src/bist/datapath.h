// Register-level transparent-BIST datapath.
//
// Interprets a BistProgram with exactly the state a synthesized engine
// carries — nothing scales with memory size:
//
//   PC        micro-op index within the current element
//   ELEM      element index
//   ADDR      address up/down counter
//   WREG      word register: initial-content estimate of the word in flight
//             (loaded at each element-start Read as data XOR mask)
//   MISR      signature register
//   PHASE     predict / test
//
// Write data is formed as WREG XOR mask — the paper's transparent
// operations are all of this shape, which is why the datapath needs no
// adder and no golden-data storage.  One cycle per memory operation.
//
// tests/datapath_test.cpp proves cycle-level equivalence with the
// behavioural MarchRunner on the whole catalog (same signatures, same
// final memory state) — the standard RTL-vs-reference-model check.
#ifndef TWM_BIST_DATAPATH_H
#define TWM_BIST_DATAPATH_H

#include "bist/microcode.h"
#include "bist/misr.h"
#include "memsim/memory.h"

namespace twm {

class BistDatapath {
 public:
  // `misr_width` 0 selects the memory word width.
  BistDatapath(MemoryIf& mem, BistProgram test_program, unsigned misr_width = 0);

  // Runs the prediction pass then the test pass to completion and returns
  // the fault verdict (signature mismatch).  Cycle count available after.
  bool run_session();

  std::uint64_t cycles() const { return cycles_; }
  const BitVec& predicted_signature() const { return predicted_; }
  const BitVec& observed_signature() const { return observed_; }

 private:
  // Executes one program over the memory, feeding `misr`; `predict` mode
  // XORs the mask into read data instead of deriving write data.
  void run_program(const BistProgram& prog, bool predict, Misr& misr);

  MemoryIf& mem_;
  BistProgram test_;
  BistProgram pred_;
  unsigned misr_width_;
  std::uint64_t cycles_ = 0;
  BitVec predicted_;
  BitVec observed_;
};

}  // namespace twm

#endif  // TWM_BIST_DATAPATH_H
