#include "bist/address_gen.h"

#include <stdexcept>

namespace twm {

AddressGen::AddressGen(AddrOrder order, std::size_t num_words) : order_(order), n_(num_words) {
  if (num_words == 0) throw std::invalid_argument("AddressGen: empty memory");
  reset();
}

void AddressGen::reset() {
  remaining_ = n_;
  cur_ = (order_ == AddrOrder::Down) ? n_ - 1 : 0;
}

void AddressGen::advance() {
  if (done()) throw std::logic_error("AddressGen::advance past end");
  --remaining_;
  if (remaining_ == 0) return;
  if (order_ == AddrOrder::Down)
    --cur_;
  else
    ++cur_;
}

std::vector<std::size_t> AddressGen::sequence(AddrOrder order, std::size_t num_words) {
  AddressGen g(order, num_words);
  std::vector<std::size_t> out;
  out.reserve(num_words);
  while (!g.done()) {
    out.push_back(g.current());
    g.advance();
  }
  return out;
}

}  // namespace twm
