#include "bist/datapath.h"

#include <stdexcept>

namespace twm {

BistDatapath::BistDatapath(MemoryIf& mem, BistProgram test_program, unsigned misr_width)
    : mem_(mem),
      test_(std::move(test_program)),
      pred_(prediction_program(test_)),
      misr_width_(misr_width ? misr_width : mem.word_width()) {
  if (test_.width != mem_.word_width())
    throw std::invalid_argument("BistDatapath: program/memory width mismatch");
}

void BistDatapath::run_program(const BistProgram& prog, bool predict, Misr& misr) {
  const std::size_t n = mem_.num_words();
  BitVec wreg = BitVec::zeros(prog.width);

  for (const ElementDescriptor& elem : prog.elements) {
    if (elem.pause_before) mem_.elapse(1);
    // ADDR counter sweeps the element's direction; all ops of the element
    // run on one word before the counter steps.
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t addr = elem.descending ? n - 1 - step : step;
      for (std::uint16_t i = 0; i < elem.op_count; ++i) {
        const MicroOp& u = prog.ops[elem.first_op + i];
        const BitVec& mask = prog.masks[u.mask_index];
        ++cycles_;
        if (u.write) {
          mem_.write(addr, wreg ^ mask);
          continue;
        }
        const BitVec data = mem_.read(addr);
        misr.feed(predict ? data ^ mask : data);
        wreg = data ^ mask;  // WREG load: estimate of the word's `a`
      }
    }
  }
}

bool BistDatapath::run_session() {
  cycles_ = 0;
  Misr pred_misr(misr_width_);
  run_program(pred_, /*predict=*/true, pred_misr);
  predicted_ = pred_misr.signature();

  Misr obs_misr(misr_width_);
  run_program(test_, /*predict=*/false, obs_misr);
  observed_ = obs_misr.signature();

  ++cycles_;  // compare cycle
  return predicted_ != observed_;
}

}  // namespace twm
