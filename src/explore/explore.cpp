#include "explore/explore.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/json.h"
#include "api/runner.h"
#include "core/symmetric.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "march/parser.h"
#include "march/printer.h"
#include "march/word_expand.h"
#include "service/cache.h"
#include "util/rng.h"

namespace twm::explore {

using api::JsonValue;

namespace {

// ---- candidates ---------------------------------------------------------

std::vector<std::string> canonical_ops(const MarchTest& t) {
  std::vector<std::string> out;
  out.reserve(t.elements.size());
  for (const MarchElement& e : t.elements) out.push_back(twm::to_string(e));
  return out;
}

// Dedup / tie-break key: the canonical march body.
std::string ops_key(const std::vector<std::string>& ops) {
  std::string out;
  for (const std::string& op : ops) {
    if (!out.empty()) out += "; ";
    out += op;
  }
  return out;
}

// Measured complexity of one candidate under the objective scheme.  The
// reference schemes have no transparent/prediction split — their cost is
// the march itself.
SchemeComplexity complexity_for(SchemeKind scheme, const MarchTest& march, unsigned width) {
  switch (scheme) {
    case SchemeKind::ProposedExact:
    case SchemeKind::ProposedMisr:
    case SchemeKind::TsmarchOnly:
      return measured_proposed(march, width);
    case SchemeKind::ProposedSymmetricXor: {
      const TwmResult r = twm_transform(march, width);
      return {symmetrize(r.twmarch, width).test.op_count(), 0};
    }
    case SchemeKind::Scheme1Exact:
      return measured_scheme1(march, width);
    case SchemeKind::NontransparentReference:
      return {march.op_count(), 0};
    case SchemeKind::WordOrientedMarch:
      return {word_oriented_march(march, width).op_count(), 0};
    case SchemeKind::TomtModel:
      return measured_tomt(width);  // validate() rejects; keep total anyway
  }
  return {};
}

// The scoring campaign a candidate denotes: one inline-march spec over the
// objective's scheme x class cells.  Identical candidates produce identical
// specs, hence identical PR 6 cell identities — the shared result cache
// makes re-encounters free.
api::CampaignSpec scoring_spec(const ExploreSpec& spec, const std::vector<std::string>& ops) {
  api::CampaignSpec cs;
  cs.words = spec.words;
  cs.width = spec.width;
  cs.march_ops = ops;
  cs.schemes = {spec.scheme};
  for (const ObjectiveClass& oc : spec.objective) cs.classes.push_back(oc.sel);
  cs.seeds = spec.seeds;
  cs.backend = spec.backend;
  cs.threads = spec.threads;
  cs.simd = spec.simd;
  cs.schedule = spec.schedule;
  cs.collapse = spec.collapse;
  return cs;
}

struct EvalCounters {
  std::size_t evaluations = 0;
  std::size_t cells_simulated = 0;
  std::size_t cells_cached = 0;
};

Candidate evaluate(const ExploreSpec& spec, const MarchTest& march, std::string origin,
                   api::CellCache& cache, EvalCounters& counters) {
  Candidate c;
  c.ops = canonical_ops(march);
  c.origin = std::move(origin);
  c.complexity = complexity_for(spec.scheme, march, spec.width);
  c.weighted = std::size_t{spec.tcm_weight} * c.complexity.tcm +
               std::size_t{spec.tcp_weight} * c.complexity.tcp;

  api::CacheStats stats;
  const api::CampaignSummary summary =
      api::run_campaign(scoring_spec(spec, c.ops), nullptr, &cache, &stats);
  counters.evaluations += 1;
  counters.cells_simulated += stats.cells_simulated;
  counters.cells_cached += stats.cells_cached;

  c.feasible = true;
  for (std::size_t i = 0; i < spec.objective.size(); ++i) {
    const CoverageOutcome& outcome = summary.cells[i].outcome;
    c.detected.push_back(outcome.detected_all);
    c.totals.push_back(outcome.total);
    // Integer floor check: detected/total >= floor/100.
    if (outcome.detected_all * 100 < std::size_t{spec.objective[i].floor_pct} * outcome.total)
      c.feasible = false;
  }
  return c;
}

// Scaled shortfall below the coverage floors (0 = feasible): the
// coverage-guided selection pressure.
std::size_t floor_deficit(const ExploreSpec& spec, const Candidate& c) {
  std::size_t deficit = 0;
  for (std::size_t i = 0; i < c.detected.size(); ++i) {
    const std::size_t need = std::size_t{spec.objective[i].floor_pct} * c.totals[i];
    const std::size_t have = c.detected[i] * 100;
    if (have < need) deficit += need - have;
  }
  return deficit;
}

// ---- Pareto archive -----------------------------------------------------

bool equal_objectives(const Candidate& a, const Candidate& b) {
  return a.weighted == b.weighted && a.detected == b.detected;
}

// Folds one scored candidate into the nondominated archive.  Ties on every
// axis keep the lexicographically smaller canonical body — the
// deterministic tie-break that makes fronts byte-comparable across runs.
void fold_into_front(std::vector<Candidate>& front, const Candidate& c) {
  const std::string key = ops_key(c.ops);
  for (const Candidate& f : front) {
    if (ops_key(f.ops) == key) return;  // already archived
    if (dominates(f, c)) return;
    if (equal_objectives(f, c) && ops_key(f.ops) <= key) return;
  }
  front.erase(std::remove_if(front.begin(), front.end(),
                             [&](const Candidate& f) {
                               return dominates(c, f) ||
                                      (equal_objectives(c, f) && key < ops_key(f.ops));
                             }),
              front.end());
  front.push_back(c);
}

void sort_front(std::vector<Candidate>& front) {
  std::sort(front.begin(), front.end(), [](const Candidate& a, const Candidate& b) {
    if (a.weighted != b.weighted) return a.weighted < b.weighted;
    std::size_t cov_a = 0, cov_b = 0;
    for (std::size_t d : a.detected) cov_a += d;
    for (std::size_t d : b.detected) cov_b += d;
    if (cov_a != cov_b) return cov_a > cov_b;
    return ops_key(a.ops) < ops_key(b.ops);
  });
}

// ---- search state (checkpoint) ------------------------------------------

struct SearchState {
  unsigned round = 0;  // rounds completed
  Rng rng{0};
  std::vector<Candidate> population;
  std::vector<Candidate> front;
  std::vector<Candidate> baselines;
  EvalCounters counters;
};

JsonValue candidate_to_value(const Candidate& c) {
  JsonValue v = JsonValue::object();
  JsonValue ops = JsonValue::array();
  for (const std::string& op : c.ops) ops.push_back(JsonValue::string(op));
  v.set("ops", std::move(ops));
  v.set("origin", JsonValue::string(c.origin));
  v.set("tcm", JsonValue::number(c.complexity.tcm));
  v.set("tcp", JsonValue::number(c.complexity.tcp));
  v.set("weighted", JsonValue::number(c.weighted));
  JsonValue detected = JsonValue::array();
  for (std::size_t d : c.detected) detected.push_back(JsonValue::number(d));
  v.set("detected", std::move(detected));
  JsonValue totals = JsonValue::array();
  for (std::size_t t : c.totals) totals.push_back(JsonValue::number(t));
  v.set("totals", std::move(totals));
  v.set("feasible", JsonValue::boolean(c.feasible));
  return v;
}

[[noreturn]] void reject_state(const std::string& path, const std::string& why) {
  throw std::runtime_error("explore: " + path + ": " + why +
                           " (not a search state for this spec — delete the file or "
                           "fix --resume)");
}

Candidate candidate_from_value(const std::string& path, const JsonValue& v) {
  if (!v.is_object()) reject_state(path, "malformed candidate");
  Candidate c;
  const JsonValue* ops = v.find("ops");
  const JsonValue* origin = v.find("origin");
  const JsonValue* tcm = v.find("tcm");
  const JsonValue* tcp = v.find("tcp");
  const JsonValue* weighted = v.find("weighted");
  const JsonValue* detected = v.find("detected");
  const JsonValue* totals = v.find("totals");
  const JsonValue* feasible = v.find("feasible");
  if (!ops || !ops->is_array() || !origin || !origin->is_string() || !tcm || !tcp ||
      !weighted || !detected || !detected->is_array() || !totals || !totals->is_array() ||
      !feasible || !feasible->is_bool())
    reject_state(path, "malformed candidate");
  for (const JsonValue& op : ops->items()) {
    if (!op.is_string()) reject_state(path, "malformed candidate");
    c.ops.push_back(op.as_string());
  }
  c.origin = origin->as_string();
  const auto u = [&](const JsonValue* n) {
    const auto value = n->as_u64();
    if (!value) reject_state(path, "malformed candidate");
    return static_cast<std::size_t>(*value);
  };
  c.complexity.tcm = u(tcm);
  c.complexity.tcp = u(tcp);
  c.weighted = u(weighted);
  for (const JsonValue& d : detected->items()) c.detected.push_back(u(&d));
  for (const JsonValue& t : totals->items()) c.totals.push_back(u(&t));
  c.feasible = feasible->as_bool();
  return c;
}

void save_state(const std::string& path, const ExploreSpec& spec, const SearchState& st) {
  JsonValue v = JsonValue::object();
  v.set("explore_state", JsonValue::number(1));
  v.set("identity", JsonValue::string(explore_identity_json(spec)));
  v.set("round", JsonValue::number(st.round));
  v.set("rng", JsonValue::string(st.rng.state()));
  v.set("evaluations", JsonValue::number(st.counters.evaluations));
  v.set("cells_simulated", JsonValue::number(st.counters.cells_simulated));
  v.set("cells_cached", JsonValue::number(st.counters.cells_cached));
  JsonValue population = JsonValue::array();
  for (const Candidate& c : st.population) population.push_back(candidate_to_value(c));
  v.set("population", std::move(population));
  JsonValue front = JsonValue::array();
  for (const Candidate& c : st.front) front.push_back(candidate_to_value(c));
  v.set("front", std::move(front));
  JsonValue baselines = JsonValue::array();
  for (const Candidate& c : st.baselines) baselines.push_back(candidate_to_value(c));
  v.set("baselines", std::move(baselines));

  // Atomic publish (api/checkpoint.h idiom): a kill mid-write leaves the
  // previous state intact, never a torn file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << api::json_write(v, /*pretty=*/false) << "\n";
    if (!out) throw std::runtime_error("explore: cannot write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("explore: cannot rename " + tmp + " to " + path);
}

// Loads a search state.  Missing file = fresh start (false).  Anything
// else that is not a bit-exact match for this spec and engine revision is
// rejected loudly — unlike campaign checkpoints (which silently degrade to
// a fresh run), resuming the wrong SEARCH would silently explore a
// different trajectory, so the foreign-file contract here is an error.
bool load_state(const std::string& path, const ExploreSpec& spec, SearchState& st) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue v;
  try {
    v = api::json_parse(buffer.str());
  } catch (const std::exception&) {
    reject_state(path, "malformed JSON");
  }
  if (!v.is_object()) reject_state(path, "malformed JSON");
  const JsonValue* version = v.find("explore_state");
  if (!version || !version->as_u64()) reject_state(path, "missing explore_state version");
  if (*version->as_u64() != 1)
    reject_state(path, "unsupported explore_state version " +
                           std::to_string(*version->as_u64()));
  const JsonValue* identity = v.find("identity");
  if (!identity || !identity->is_string()) reject_state(path, "missing identity");
  if (identity->as_string() != explore_identity_json(spec))
    reject_state(path, "identity mismatch (different spec, seed or engine revision)");

  const JsonValue* round = v.find("round");
  const JsonValue* rng = v.find("rng");
  if (!round || !round->as_u64() || !rng || !rng->is_string())
    reject_state(path, "missing round/rng");
  st.round = static_cast<unsigned>(*round->as_u64());
  if (!st.rng.set_state(rng->as_string())) reject_state(path, "malformed rng state");

  const auto read_counter = [&](const char* key, std::size_t& out) {
    const JsonValue* n = v.find(key);
    if (!n || !n->as_u64()) reject_state(path, std::string("missing ") + key);
    out = static_cast<std::size_t>(*n->as_u64());
  };
  read_counter("evaluations", st.counters.evaluations);
  read_counter("cells_simulated", st.counters.cells_simulated);
  read_counter("cells_cached", st.counters.cells_cached);

  const auto read_candidates = [&](const char* key, std::vector<Candidate>& out) {
    const JsonValue* list = v.find(key);
    if (!list || !list->is_array()) reject_state(path, std::string("missing ") + key);
    for (const JsonValue& item : list->items())
      out.push_back(candidate_from_value(path, item));
  };
  read_candidates("population", st.population);
  read_candidates("front", st.front);
  read_candidates("baselines", st.baselines);
  if (st.population.empty()) reject_state(path, "empty population");
  return true;
}

// ---- the search loop ----------------------------------------------------

// Draws one offspring operator index: 0..kMutationKinds-1 = mutation,
// kMutationKinds = splice.
std::size_t draw_operator(Rng& rng, const ExploreSpec& spec) {
  std::uint64_t total = spec.splice_weight;
  for (unsigned w : spec.mutation_weights) total += w;
  std::uint64_t pick = rng.next_below(total);
  for (std::size_t i = 0; i < spec.mutation_weights.size(); ++i) {
    if (pick < spec.mutation_weights[i]) return i;
    pick -= spec.mutation_weights[i];
  }
  return kMutationKinds;
}

MarchTest march_of(const Candidate& c) {
  return parse_march("{ " + ops_key(c.ops) + " }");
}

// Next generation: pool = population + offspring, deduplicated on the
// canonical body (first occurrence wins), ranked coverage-deficit first,
// then cheapest weighted complexity, then canonical text — all total
// orders, so selection is deterministic.
std::vector<Candidate> select_population(const ExploreSpec& spec,
                                         const std::vector<Candidate>& population,
                                         const std::vector<Candidate>& offspring) {
  std::vector<Candidate> pool;
  std::vector<std::string> seen;
  for (const auto* source : {&population, &offspring})
    for (const Candidate& c : *source) {
      const std::string key = ops_key(c.ops);
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
      seen.push_back(key);
      pool.push_back(c);
    }
  std::stable_sort(pool.begin(), pool.end(), [&](const Candidate& a, const Candidate& b) {
    const std::size_t da = floor_deficit(spec, a), db = floor_deficit(spec, b);
    if (da != db) return da < db;
    if (a.weighted != b.weighted) return a.weighted < b.weighted;
    return ops_key(a.ops) < ops_key(b.ops);
  });
  if (pool.size() > spec.population) pool.resize(spec.population);
  return pool;
}

}  // namespace

bool dominates(const Candidate& a, const Candidate& b) {
  if (a.weighted > b.weighted) return false;
  bool strict = a.weighted < b.weighted;
  for (std::size_t i = 0; i < a.detected.size() && i < b.detected.size(); ++i) {
    if (a.detected[i] < b.detected[i]) return false;
    if (a.detected[i] > b.detected[i]) strict = true;
  }
  return strict;
}

ExploreResult run_explore(const ExploreSpec& spec, ExploreObserver* observer,
                          const std::string& state_path) {
  require_valid(spec);

  // One shared scoring cache for the whole search, keyed by the inline-
  // march cell identity: every candidate re-encountered across rounds (or
  // after a resume with a warm disk cache) replays instead of simulating.
  service::ResultCache cache({/*dir=*/"", /*memory_entries=*/4096});

  SearchState st;
  bool resumed = false;
  if (!state_path.empty()) resumed = load_state(state_path, spec, st);
  if (!resumed) {
    st.rng = Rng(spec.search_seed);
    // Round 0: every catalog march is scored as a baseline; the first
    // `population` of them seed the population, random marches fill the
    // rest.  Everything scored — baselines included — feeds the front.
    for (const std::string& name : march_names()) {
      const Candidate c =
          evaluate(spec, march_by_name(name), "catalog:" + name, cache, st.counters);
      st.baselines.push_back(c);
      fold_into_front(st.front, c);
      if (st.population.size() < spec.population) st.population.push_back(c);
    }
    while (st.population.size() < spec.population) {
      const MarchTest m = random_march(st.rng);
      const Candidate c = evaluate(spec, m, "random", cache, st.counters);
      fold_into_front(st.front, c);
      st.population.push_back(c);
    }
    sort_front(st.front);
    if (!state_path.empty()) save_state(state_path, spec, st);
  }

  if (observer) observer->on_search_begin(spec, resumed);

  ExploreResult result;
  unsigned round = st.round;
  while (round < spec.rounds) {
    if (observer && observer->cancelled()) {
      result.cancelled = true;
      break;
    }
    const EvalCounters before = st.counters;

    std::vector<Candidate> offspring;
    for (unsigned i = 0; i < spec.population; ++i) {
      const std::size_t op = draw_operator(st.rng, spec);
      MarchTest child;
      std::string origin;
      if (op == kMutationKinds) {
        const Candidate& a = st.population[st.rng.next_below(st.population.size())];
        const Candidate& b = st.population[st.rng.next_below(st.population.size())];
        child = splice_marches(st.rng, march_of(a), march_of(b));
        origin = "splice";
      } else {
        const MarchMutation m = kAllMarchMutations[op];
        const Candidate& parent = st.population[st.rng.next_below(st.population.size())];
        child = mutate_march(st.rng, march_of(parent), m);
        origin = "mutate:" + twm::to_string(m);
      }
      const Candidate c = evaluate(spec, child, origin, cache, st.counters);
      fold_into_front(st.front, c);
      offspring.push_back(c);
    }

    st.population = select_population(spec, st.population, offspring);
    sort_front(st.front);
    st.round = ++round;
    if (!state_path.empty()) save_state(state_path, spec, st);

    if (observer) {
      RoundSummary summary;
      summary.round = round;
      summary.rounds = spec.rounds;
      summary.evaluations = st.counters.evaluations - before.evaluations;
      summary.cells_cached = st.counters.cells_cached - before.cells_cached;
      summary.front_size = st.front.size();
      for (const Candidate& c : st.front)
        if (c.feasible && (summary.best_feasible == 0 || c.weighted < summary.best_feasible))
          summary.best_feasible = c.weighted;
      observer->on_round(summary);
    }
  }

  result.front = st.front;
  result.baselines = st.baselines;
  result.rounds_run = st.round;
  result.evaluations = st.counters.evaluations;
  result.cells_simulated = st.counters.cells_simulated;
  result.cells_cached = st.counters.cells_cached;
  if (observer) observer->on_search_end(result);
  return result;
}

std::string result_to_json(const ExploreSpec& spec, const ExploreResult& result,
                           bool pretty) {
  JsonValue v = JsonValue::object();
  v.set("name", JsonValue::string(spec.name));
  v.set("identity", JsonValue::string(explore_identity_json(spec)));
  // Cache-effectiveness counters are deliberately NOT in the report: a
  // resumed run restarts with a cold memory cache, and the report must be
  // byte-identical across threads and kill/resume (the determinism the CI
  // explore-gate diffs for).  They stream on stdout instead.
  v.set("rounds_run", JsonValue::number(result.rounds_run));
  v.set("evaluations", JsonValue::number(result.evaluations));
  v.set("cancelled", JsonValue::boolean(result.cancelled));

  const auto render = [&](const std::vector<Candidate>& list) {
    JsonValue out = JsonValue::array();
    for (const Candidate& c : list) {
      JsonValue item = candidate_to_value(c);
      // Display extras on top of the state shape: the pasteable march body
      // and the per-class labels.
      item.set("march", JsonValue::string("{ " + ops_key(c.ops) + " }"));
      JsonValue coverage = JsonValue::array();
      for (std::size_t i = 0; i < c.detected.size(); ++i) {
        JsonValue cls = JsonValue::object();
        cls.set("class", JsonValue::string(i < spec.objective.size()
                                               ? api::to_string(spec.objective[i].sel)
                                               : std::string("?")));
        cls.set("detected", JsonValue::number(c.detected[i]));
        cls.set("total", JsonValue::number(c.totals[i]));
        coverage.push_back(std::move(cls));
      }
      item.set("coverage", std::move(coverage));
      out.push_back(std::move(item));
    }
    return out;
  };
  v.set("front", render(result.front));
  v.set("baselines", render(result.baselines));
  return api::json_write(v, pretty);
}

}  // namespace twm::explore
