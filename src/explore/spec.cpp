#include "explore/spec.h"

#include <algorithm>

#include "api/json.h"

namespace twm::explore {

using api::SpecError;
using api::SpecValidationError;

std::vector<SpecError> validate(const ExploreSpec& spec) {
  std::vector<SpecError> errors;
  if (spec.words == 0) errors.push_back({"memory.words", "must be at least 1"});
  if (spec.width == 0) {
    errors.push_back({"memory.width", "must be at least 1"});
  } else if ((spec.width & (spec.width - 1)) != 0) {
    // The TWM transformation scoring runs through requires it.
    errors.push_back({"memory.width", "must be a power of two"});
  }
  if (spec.scheme == SchemeKind::TomtModel)
    errors.push_back({"objective.scheme",
                      "tomt complexity is march-independent — nothing to search"});
  if (spec.objective.empty()) {
    errors.push_back({"objective.classes", "at least one fault class is required"});
  } else {
    for (std::size_t i = 0; i < spec.objective.size(); ++i) {
      const ObjectiveClass& oc = spec.objective[i];
      const std::string path = "objective.classes[" + std::to_string(i) + "]";
      if (oc.floor_pct > 100) errors.push_back({path + ".floor", "must be 0..100"});
      for (std::size_t j = 0; j < i; ++j)
        if (spec.objective[j].sel == oc.sel) {
          errors.push_back({path, "duplicate fault class '" + to_string(oc.sel) + "'"});
          break;
        }
    }
  }
  if (spec.tcm_weight == 0 && spec.tcp_weight == 0)
    errors.push_back({"objective.weights", "tcm and tcp weights cannot both be zero"});
  if (spec.seeds.empty()) errors.push_back({"seeds", "at least one content seed is required"});
  if (spec.population < 2)
    errors.push_back({"search.population", "must be at least 2 (splice needs two parents)"});
  if (spec.rounds == 0) errors.push_back({"search.rounds", "must be at least 1"});
  if (spec.mutation_weights.size() != kMutationKinds) {
    errors.push_back({"search.mutations", "must weight each of the " +
                                              std::to_string(kMutationKinds) +
                                              " mutation operators"});
  } else {
    unsigned total = spec.splice_weight;
    for (unsigned w : spec.mutation_weights) total += w;
    if (total == 0)
      errors.push_back({"search.mutations", "at least one operator weight must be non-zero"});
  }
  if (spec.threads == 0) errors.push_back({"run.threads", "must be at least 1"});
  if (spec.backend == CoverageBackend::Packed && spec.simd != simd::Request::Auto) {
    try {
      simd::resolve(spec.simd);
    } catch (const std::runtime_error& e) {
      errors.push_back({"run.simd", e.what()});
    }
  }
  return errors;
}

void require_valid(const ExploreSpec& spec) {
  auto errors = validate(spec);
  if (!errors.empty()) throw SpecValidationError(std::move(errors));
}

// ---- JSON ---------------------------------------------------------------

namespace {

using api::JsonValue;

bool default_mutation_mix(const ExploreSpec& s) {
  if (s.splice_weight != 1) return false;
  return std::all_of(s.mutation_weights.begin(), s.mutation_weights.end(),
                     [](unsigned w) { return w == 1; });
}

JsonValue spec_to_value(const ExploreSpec& s) {
  JsonValue memory = JsonValue::object();
  memory.set("words", JsonValue::number(s.words));
  memory.set("width", JsonValue::number(s.width));

  JsonValue classes = JsonValue::array();
  for (const ObjectiveClass& oc : s.objective) {
    if (oc.floor_pct == 100) {
      classes.push_back(JsonValue::string(api::to_string(oc.sel)));
    } else {
      JsonValue item = JsonValue::object();
      item.set("class", JsonValue::string(api::to_string(oc.sel)));
      item.set("floor", JsonValue::number(oc.floor_pct));
      classes.push_back(std::move(item));
    }
  }
  JsonValue objective = JsonValue::object();
  objective.set("scheme", JsonValue::string(api::scheme_id(s.scheme)));
  objective.set("classes", std::move(classes));
  // All-default weights are the canonical omission, like run.regions == 1.
  if (s.tcm_weight != 1 || s.tcp_weight != 1) {
    JsonValue weights = JsonValue::object();
    weights.set("tcm", JsonValue::number(s.tcm_weight));
    weights.set("tcp", JsonValue::number(s.tcp_weight));
    objective.set("weights", std::move(weights));
  }

  JsonValue seeds = JsonValue::array();
  for (std::uint64_t seed : s.seeds) seeds.push_back(JsonValue::number(seed));

  JsonValue search = JsonValue::object();
  search.set("population", JsonValue::number(s.population));
  search.set("rounds", JsonValue::number(s.rounds));
  search.set("seed", JsonValue::number(s.search_seed));
  if (!default_mutation_mix(s) && s.mutation_weights.size() == kMutationKinds) {
    JsonValue mix = JsonValue::object();
    for (std::size_t i = 0; i < kMutationKinds; ++i)
      mix.set(twm::to_string(kAllMarchMutations[i]), JsonValue::number(s.mutation_weights[i]));
    mix.set("splice", JsonValue::number(s.splice_weight));
    search.set("mutations", std::move(mix));
  }

  JsonValue run = JsonValue::object();
  run.set("backend", JsonValue::string(to_string(s.backend)));
  run.set("threads", JsonValue::number(s.threads));
  run.set("simd", JsonValue::string(simd::to_string(s.simd)));
  run.set("schedule", JsonValue::string(to_string(s.schedule)));
  run.set("collapse", JsonValue::boolean(s.collapse));

  JsonValue v = JsonValue::object();
  v.set("name", JsonValue::string(s.name));
  v.set("memory", std::move(memory));
  v.set("objective", std::move(objective));
  v.set("seeds", std::move(seeds));
  v.set("search", std::move(search));
  v.set("run", std::move(run));
  return v;
}

// Collects structural errors instead of stopping at the first, the
// api::SpecReader contract.
class ExploreReader {
 public:
  ExploreSpec read(const JsonValue& v) {
    ExploreSpec s;
    if (!v.is_object()) {
      fail("", "explore spec must be a JSON object");
      throw SpecValidationError(std::move(errors_));
    }
    require_known(v, "", {"name", "memory", "objective", "seeds", "search", "run"});

    if (const JsonValue* name = v.find("name")) {
      if (name->is_string())
        s.name = name->as_string();
      else
        fail("name", "must be a string");
    }
    if (const JsonValue* memory = v.find("memory")) {
      if (memory->is_object()) {
        require_known(*memory, "memory.", {"words", "width"});
        s.words = read_count(*memory, "memory", "words");
        const std::size_t width = read_count(*memory, "memory", "width");
        if (width > UINT32_MAX)
          fail("memory.width", "must fit an unsigned 32-bit integer");
        else
          s.width = static_cast<unsigned>(width);
      } else {
        fail("memory", "must be an object {\"words\": N, \"width\": B}");
      }
    } else {
      fail("memory", "is required");
    }

    if (const JsonValue* objective = v.find("objective")) {
      if (objective->is_object())
        read_objective(*objective, s);
      else
        fail("objective", "must be an object {\"scheme\": ..., \"classes\": [...]}");
    } else {
      fail("objective", "is required");
    }

    if (const JsonValue* seeds = v.find("seeds")) {
      if (seeds->is_array()) {
        std::size_t i = 0;
        for (const JsonValue& item : seeds->items()) {
          const auto seed = item.as_u64();
          if (seed)
            s.seeds.push_back(*seed);
          else
            fail("seeds[" + std::to_string(i) + "]", "must be an unsigned 64-bit integer");
          ++i;
        }
      } else {
        fail("seeds", "must be an array");
      }
    } else {
      fail("seeds", "is required");
    }

    if (const JsonValue* search = v.find("search")) {
      if (search->is_object())
        read_search(*search, s);
      else
        fail("search", "must be an object");
    }
    if (const JsonValue* run = v.find("run")) {
      if (run->is_object())
        read_run(*run, s);
      else
        fail("run", "must be an object");
    }

    if (!errors_.empty()) throw SpecValidationError(std::move(errors_));
    return s;
  }

 private:
  void read_objective(const JsonValue& v, ExploreSpec& s) {
    require_known(v, "objective.", {"scheme", "classes", "weights"});
    if (const JsonValue* scheme = v.find("scheme")) {
      const auto k =
          scheme->is_string() ? api::parse_scheme(scheme->as_string()) : std::nullopt;
      if (k)
        s.scheme = *k;
      else
        fail("objective.scheme",
             "unknown scheme (want ref|womarch|twm|twm-misr|sym|tsmarch|s1|tomt)");
    }
    if (const JsonValue* classes = v.find("classes")) {
      if (classes->is_array()) {
        std::size_t i = 0;
        for (const JsonValue& item : classes->items())
          read_objective_class(item, "objective.classes[" + std::to_string(i++) + "]", s);
      } else {
        fail("objective.classes", "must be an array");
      }
    } else {
      fail("objective.classes", "is required");
    }
    if (const JsonValue* weights = v.find("weights")) {
      if (weights->is_object()) {
        require_known(*weights, "objective.weights.", {"tcm", "tcp"});
        read_unsigned(*weights, "objective.weights", "tcm", s.tcm_weight);
        read_unsigned(*weights, "objective.weights", "tcp", s.tcp_weight);
      } else {
        fail("objective.weights", "must be an object {\"tcm\": W, \"tcp\": W}");
      }
    }
  }

  void read_objective_class(const JsonValue& item, const std::string& path, ExploreSpec& s) {
    ObjectiveClass oc;
    const JsonValue* cls = &item;
    if (item.is_object()) {
      require_known(item, path + ".", {"class", "floor"});
      cls = item.find("class");
      if (!cls) return fail(path + ".class", "is required");
      if (const JsonValue* floor = item.find("floor")) {
        const auto f = floor->as_u64();
        if (f && *f <= 100)
          oc.floor_pct = static_cast<unsigned>(*f);
        else
          return fail(path + ".floor", "must be an integer percentage 0..100");
      }
    }
    if (!cls->is_string())
      return fail(path, "must be a fault-class string or {\"class\": ..., \"floor\": P}");
    const auto sel = api::parse_class(cls->as_string());
    if (!sel)
      return fail(path, "unknown fault class '" + cls->as_string() +
                            "' (want saf|tf|ret|cfst|cfid|cfin|af, CFs optionally "
                            ":inter|:intra)");
    oc.sel = *sel;
    s.objective.push_back(oc);
  }

  void read_search(const JsonValue& v, ExploreSpec& s) {
    require_known(v, "search.", {"population", "rounds", "seed", "mutations"});
    read_unsigned(v, "search", "population", s.population);
    read_unsigned(v, "search", "rounds", s.rounds);
    if (const JsonValue* seed = v.find("seed")) {
      const auto n = seed->as_u64();
      if (n)
        s.search_seed = *n;
      else
        fail("search.seed", "must be an unsigned 64-bit integer");
    }
    if (const JsonValue* mix = v.find("mutations")) {
      if (!mix->is_object()) return fail("search.mutations", "must be an object");
      for (const auto& [key, member] : mix->members()) {
        const auto n = member.as_u64();
        unsigned* slot = nullptr;
        if (key == "splice") {
          slot = &s.splice_weight;
        } else if (const auto m = parse_mutation(key)) {
          slot = &s.mutation_weights[static_cast<std::size_t>(*m)];
        } else {
          fail("search.mutations." + key,
               "unknown operator (want insert-element|delete-element|clone-element|"
               "flip-order|append-read|insert-op|delete-op|splice)");
          continue;
        }
        if (n && *n <= UINT32_MAX)
          *slot = static_cast<unsigned>(*n);
        else
          fail("search.mutations." + key, "must be an unsigned integer weight");
      }
    }
  }

  void read_run(const JsonValue& v, ExploreSpec& s) {
    require_known(v, "run.", {"backend", "threads", "simd", "schedule", "collapse"});
    if (const JsonValue* backend = v.find("backend")) {
      const auto b =
          backend->is_string() ? api::parse_backend(backend->as_string()) : std::nullopt;
      if (b)
        s.backend = *b;
      else
        fail("run.backend", "must be \"scalar\" or \"packed\"");
    }
    read_unsigned(v, "run", "threads", s.threads);
    if (const JsonValue* simd = v.find("simd")) {
      const auto r =
          simd->is_string() ? simd::parse_request(simd->as_string()) : std::nullopt;
      if (r)
        s.simd = *r;
      else
        fail("run.simd",
             "must be \"auto\", \"64\", \"256\", \"512\" or \"tiled[:4096|:32768]\"");
    }
    if (const JsonValue* schedule = v.find("schedule")) {
      const auto m =
          schedule->is_string() ? api::parse_schedule(schedule->as_string()) : std::nullopt;
      if (m)
        s.schedule = *m;
      else
        fail("run.schedule", "must be \"dense\" or \"repack\"");
    }
    if (const JsonValue* collapse = v.find("collapse")) {
      if (collapse->is_bool())
        s.collapse = collapse->as_bool();
      else
        fail("run.collapse", "must be a boolean");
    }
  }

  void require_known(const JsonValue& v, const std::string& prefix,
                     std::initializer_list<const char*> known) {
    for (const auto& [key, member] : v.members()) {
      (void)member;
      if (std::find_if(known.begin(), known.end(),
                       [&key = key](const char* k) { return key == k; }) == known.end())
        fail(prefix + key, "unknown field");
    }
  }

  void read_unsigned(const JsonValue& obj, const std::string& parent, const char* key,
                     unsigned& out) {
    const JsonValue* member = obj.find(key);
    if (!member) return;
    const auto n = member->as_u64();
    if (n && *n <= UINT32_MAX)
      out = static_cast<unsigned>(*n);
    else
      fail(parent + "." + key, "must be an unsigned integer");
  }

  std::size_t read_count(const JsonValue& obj, const std::string& parent, const char* key) {
    const JsonValue* member = obj.find(key);
    const std::string path = parent + "." + key;
    if (!member) {
      fail(path, "is required");
      return 0;
    }
    const auto n = member->as_u64();
    if (!n) {
      fail(path, "must be an unsigned integer");
      return 0;
    }
    return *n;
  }

  void fail(const std::string& path, const std::string& message) {
    errors_.push_back({path, message});
  }

  std::vector<SpecError> errors_;
};

}  // namespace

std::string to_json(const ExploreSpec& spec, bool pretty) {
  return api::json_write(spec_to_value(spec), pretty);
}

ExploreSpec explore_from_json(const std::string& text) {
  return ExploreReader().read(api::json_parse(text));
}

std::string explore_identity_json(const ExploreSpec& spec) {
  JsonValue v = JsonValue::object();
  v.set("engine", JsonValue::string(std::string(api::engine_revision())));
  v.set("words", JsonValue::number(spec.words));
  v.set("width", JsonValue::number(spec.width));
  v.set("scheme", JsonValue::string(api::scheme_id(spec.scheme)));
  JsonValue classes = JsonValue::array();
  for (const ObjectiveClass& oc : spec.objective) {
    JsonValue item = JsonValue::object();
    item.set("class", JsonValue::string(api::to_string(oc.sel)));
    item.set("floor", JsonValue::number(oc.floor_pct));
    classes.push_back(std::move(item));
  }
  v.set("classes", std::move(classes));
  JsonValue weights = JsonValue::array();
  weights.push_back(JsonValue::number(spec.tcm_weight));
  weights.push_back(JsonValue::number(spec.tcp_weight));
  v.set("weights", std::move(weights));
  JsonValue seeds = JsonValue::array();
  for (std::uint64_t seed : spec.seeds) seeds.push_back(JsonValue::number(seed));
  v.set("seeds", std::move(seeds));
  v.set("population", JsonValue::number(spec.population));
  v.set("seed", JsonValue::number(spec.search_seed));
  JsonValue mix = JsonValue::array();
  for (unsigned w : spec.mutation_weights) mix.push_back(JsonValue::number(w));
  mix.push_back(JsonValue::number(spec.splice_weight));
  v.set("mutations", std::move(mix));
  return api::json_write(v, /*pretty=*/false);
}

}  // namespace twm::explore
