// The coverage-guided evolutionary search loop (ROADMAP item 3).
//
// run_explore seeds a population from the march catalog plus random
// marches, then repeats for the spec's round budget: draw offspring with
// the validity-preserving operators from march/generator.h, score each
// candidate by running the campaign engine over the objective's
// scheme x class cells (an inline-march CampaignSpec through
// api::run_campaign, so scoring inherits every engine optimization), fold
// every scored candidate into a Pareto archive over
// (weighted complexity DOWN, per-class coverage UP), and select the next
// population coverage-deficit first.  Re-encountered candidates cost zero
// simulation: scoring shares one content-addressed result cache
// (service::ResultCache) keyed by the PR 6 cell identity, which for inline
// marches is derived from the canonical printed march body.
//
// Determinism: verdicts are thread-count-independent by engine
// construction, candidates are drawn and folded in a fixed order, and no
// wall-clock feeds any decision — the same spec and seed produce the same
// front whether run with 1 thread or N, straight through or killed and
// resumed (tests/explore_test.cpp pins both).
#ifndef TWM_EXPLORE_EXPLORE_H
#define TWM_EXPLORE_EXPLORE_H

#include <cstddef>
#include <string>
#include <vector>

#include "core/complexity.h"
#include "explore/spec.h"

namespace twm::explore {

// One scored candidate.  `ops` is the canonical printed element list — the
// same strings CampaignSpec accepts as inline "march_ops", so any front
// entry can be pasted straight into a campaign.
struct Candidate {
  std::vector<std::string> ops;
  // Provenance: "catalog:<name>", "random", "mutate:<operator>", "splice".
  std::string origin;
  SchemeComplexity complexity;   // measured under the objective scheme
  std::size_t weighted = 0;      // tcm_weight*tcm + tcp_weight*tcp
  std::vector<std::size_t> detected;  // detected_all per objective class
  std::vector<std::size_t> totals;    // fault total per objective class
  bool feasible = false;         // every coverage floor met

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

// a dominates b: no worse on every axis (weighted complexity, each class's
// coverage), strictly better on at least one.
bool dominates(const Candidate& a, const Candidate& b);

struct RoundSummary {
  unsigned round = 0;            // just-completed round (1-based; 0 = seeding)
  unsigned rounds = 0;           // the spec's budget
  std::size_t evaluations = 0;   // candidates scored this round
  std::size_t cells_cached = 0;  // scheme x class cells replayed, this round
  std::size_t front_size = 0;
  // Lowest weighted complexity among feasible front members (0: none yet).
  std::size_t best_feasible = 0;
};

struct ExploreResult {
  // The Pareto archive over every candidate scored, sorted by (weighted
  // complexity, total coverage desc, canonical text).
  std::vector<Candidate> front;
  // Every catalog march scored under the same objective — the reference
  // row the front is judged against (reports and the CI gate).
  std::vector<Candidate> baselines;
  unsigned rounds_run = 0;
  std::size_t evaluations = 0;      // candidates scored, seeding included
  std::size_t cells_simulated = 0;  // scheme x class cells run live
  std::size_t cells_cached = 0;     // ... vs replayed from the result cache
  bool cancelled = false;           // observer stopped the search early
};

// Streaming observer, the ResultSink idiom of api/sink.h: round summaries
// arrive as they settle, and cancelled() is polled between rounds —
// returning true ends the search after the checkpoint of the round that
// just completed (--stop-after and Ctrl-C both ride on it).
class ExploreObserver {
 public:
  virtual ~ExploreObserver() = default;

  virtual void on_search_begin(const ExploreSpec& spec, bool resumed) {
    (void)spec;
    (void)resumed;
  }
  virtual void on_round(const RoundSummary& summary) { (void)summary; }
  virtual void on_search_end(const ExploreResult& result) { (void)result; }
  virtual bool cancelled() const { return false; }
};

// Runs the search a spec denotes.  With a non-empty `state_path` the full
// search state (round counter, RNG state, population, front, baselines) is
// persisted there after seeding and after every round (atomic tmp +
// rename, api/checkpoint.h style), and an existing file resumes: the
// interrupted trajectory continues bit-identically, so kill + resume ends
// on the same front as an uninterrupted run.  A state file written by a
// different spec, engine revision or tool is rejected with
// std::runtime_error — search state is too easy to cross-wire silently.
// Throws api::SpecValidationError on an invalid spec.
ExploreResult run_explore(const ExploreSpec& spec, ExploreObserver* observer = nullptr,
                          const std::string& state_path = {});

// Canonical report of a finished search (the CLI's --out file): spec name,
// budget counters, the front and the catalog baselines.  Integer-only, so
// byte-identical fronts produce byte-identical reports.
std::string result_to_json(const ExploreSpec& spec, const ExploreResult& result,
                           bool pretty = true);

}  // namespace twm::explore

#endif  // TWM_EXPLORE_EXPLORE_H
