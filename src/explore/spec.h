// twm::explore — coverage-guided design-space exploration over march tests.
//
// An ExploreSpec is a *value* describing one search, the way a CampaignSpec
// describes one campaign: memory geometry, the objective (one scheme, per
// fault-class coverage floors, complexity weights), the content seeds the
// coverage is measured under, and the search budget (population size, round
// count, RNG seed, mutation operator mix).  Specs are validated field by
// field (structured SpecErrors, same contract as api::validate), serialized
// to JSON round-trip exact, and executed by explore::run_explore
// (explore/explore.h).
//
// JSON grammar (examples/specs/dse_demo.json):
//   {
//     "name": "demo",
//     "memory": {"words": 8, "width": 8},
//     "objective": {
//       "scheme": "twm",                    // default "twm"
//       "classes": ["saf", {"class": "tf", "floor": 95}],  // floor % (def 100)
//       "weights": {"tcm": 1, "tcp": 1}     // weighted complexity (def 1/1)
//     },
//     "seeds": [0, 1],
//     "search": {
//       "population": 12, "rounds": 6, "seed": 1,
//       "mutations": {"insert-op": 2, "splice": 1}   // relative weights (def 1)
//     },
//     "run": {"backend": "packed", "threads": 4}     // scoring execution
//   }
#ifndef TWM_EXPLORE_SPEC_H
#define TWM_EXPLORE_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "api/spec.h"
#include "march/generator.h"

namespace twm::explore {

// One coverage objective: a fault-class selector plus the minimum
// detected-under-every-content percentage (integer 0..100) a candidate
// must reach on it to count as feasible.
struct ObjectiveClass {
  api::ClassSel sel;
  unsigned floor_pct = 100;

  friend bool operator==(const ObjectiveClass&, const ObjectiveClass&) = default;
};

inline constexpr std::size_t kMutationKinds =
    sizeof(kAllMarchMutations) / sizeof(kAllMarchMutations[0]);

struct ExploreSpec {
  std::string name;  // optional label, carried into reports

  // Memory geometry (JSON: "memory").  Width must be a power of two — the
  // TWM transformation the objective scheme scores under requires it.
  std::size_t words = 0;
  unsigned width = 0;

  // Objective (JSON: "objective").  One scheme; candidates are scored as
  //   weighted = tcm_weight * TCM + tcp_weight * TCP   (minimize)
  // subject to per-class coverage floors (maximize coverage; the Pareto
  // front keeps every nondominated trade-off, floors decide feasibility).
  SchemeKind scheme = SchemeKind::ProposedExact;
  std::vector<ObjectiveClass> objective;
  unsigned tcm_weight = 1;
  unsigned tcp_weight = 1;

  std::vector<std::uint64_t> seeds;  // contents coverage is measured under

  // Search budget (JSON: "search").
  unsigned population = 12;
  unsigned rounds = 6;
  std::uint64_t search_seed = 1;
  // Relative draw weight per mutation operator (parallel to
  // kAllMarchMutations) plus the splice crossover; all-1 by default.
  std::vector<unsigned> mutation_weights = std::vector<unsigned>(kMutationKinds, 1);
  unsigned splice_weight = 1;

  // Execution of the scoring campaigns (JSON: "run", CampaignSpec grammar).
  // Deliberately NOT part of the search identity: verdicts are thread- and
  // backend-independent, so these only move wall-clock time.
  CoverageBackend backend = CoverageBackend::Packed;
  unsigned threads = 1;
  simd::Request simd = simd::Request::Auto;
  ScheduleMode schedule = ScheduleMode::Repack;
  bool collapse = true;

  friend bool operator==(const ExploreSpec&, const ExploreSpec&) = default;
};

// Field-by-field validation (api::SpecError paths in the JSON grammar's
// coordinates); empty result means the search is runnable on this host.
std::vector<api::SpecError> validate(const ExploreSpec& spec);

// Throws api::SpecValidationError when validate() is non-empty.
void require_valid(const ExploreSpec& spec);

// Canonical serialization (member order fixed; round-trip exact:
// explore_from_json(to_json(s)) == s).
std::string to_json(const ExploreSpec& spec, bool pretty = true);

// Parses one ExploreSpec object.  Malformed JSON throws JsonParseError;
// structural problems throw SpecValidationError naming the offending
// paths.  Parsing does NOT run validate().
ExploreSpec explore_from_json(const std::string& text);

// Canonical compact JSON of exactly the fields that determine the search
// TRAJECTORY (engine revision, geometry, scheme, objective, weights,
// seeds, population, search seed, mutation mix).  The round budget and the
// whole run request are deliberately excluded: a checkpoint can resume
// with more rounds or different threads and still continue the same
// deterministic trajectory.
std::string explore_identity_json(const ExploreSpec& spec);

}  // namespace twm::explore

#endif  // TWM_EXPLORE_SPEC_H
