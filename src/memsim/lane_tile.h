// Lane tiles: an array-of-lane-blocks execution unit for the many-thousand-
// lane regime (4096 – 32768 fault universes per machine pass).
//
// The lane-block stack went 64 -> 512 lanes purely by widening the Block
// type the packed engine is templated over (memsim/lane_block.h).  This
// header takes the same step again: LaneTile<Inner, T> is a tile of T inner
// blocks — block_lanes_v<Inner> * T lanes total — that itself satisfies the
// Block concept, so PackedMemoryT<LaneTile<...>>, PackedMarchRunnerT,
// PackedMisrT, SessionBrakeT, the engine traits and every traits-templated
// scheme session run on it UNCHANGED.  One simulated march operation then
// advances up to 32768 fault universes.
//
// Why a tile instead of an ever-wider LaneBlock<K>?  The inner block stays
// the width the CPU's vector unit natively executes (std::uint64_t
// portable, LaneBlock<4> under -mavx2, LaneBlock<8> under -mavx512f), and
// the tile dimension T turns each per-cell operation into a short,
// trip-count-constant loop of full-width vector ops — a software-pipelined
// stream the hardware prefetchers and the explicit prefetch hook
// (PackedMemoryT::prefetch, issued one address ahead by the march sweep)
// keep fed from L2 instead of stalling per block.  Runtime selection of
// the inner width lives with the other arch dispatching in core/simd.h /
// analysis/campaign.cpp; the shipped tile sizes are 4096 and 32768 lanes
// (src/analysis/campaign_tiled*.cpp).
//
// Lane numbering is global and row-major over the tile: lane L lives in
// inner block L / block_lanes_v<Inner>, inner lane L % block_lanes_v<Inner>.
// Lane 0 is the golden (fault-free) universe, as in every packed backend.
#ifndef TWM_MEMSIM_LANE_TILE_H
#define TWM_MEMSIM_LANE_TILE_H

#include <array>
#include <cstdint>

#include "memsim/lane_block.h"

namespace twm {

template <class Inner, unsigned T>
struct LaneTile {
  static_assert(T >= 1, "LaneTile needs at least one inner block");
  static constexpr unsigned kInnerLanes = block_lanes_v<Inner>;

  std::array<Inner, T> b{};

  friend LaneTile operator&(const LaneTile& a, const LaneTile& o) {
    LaneTile r;
    for (unsigned i = 0; i < T; ++i) r.b[i] = a.b[i] & o.b[i];
    return r;
  }
  friend LaneTile operator|(const LaneTile& a, const LaneTile& o) {
    LaneTile r;
    for (unsigned i = 0; i < T; ++i) r.b[i] = a.b[i] | o.b[i];
    return r;
  }
  friend LaneTile operator^(const LaneTile& a, const LaneTile& o) {
    LaneTile r;
    for (unsigned i = 0; i < T; ++i) r.b[i] = a.b[i] ^ o.b[i];
    return r;
  }
  friend LaneTile operator~(const LaneTile& a) {
    LaneTile r;
    for (unsigned i = 0; i < T; ++i) r.b[i] = ~a.b[i];
    return r;
  }
  LaneTile& operator&=(const LaneTile& o) {
    for (unsigned i = 0; i < T; ++i) b[i] &= o.b[i];
    return *this;
  }
  LaneTile& operator|=(const LaneTile& o) {
    for (unsigned i = 0; i < T; ++i) b[i] |= o.b[i];
    return *this;
  }
  LaneTile& operator^=(const LaneTile& o) {
    for (unsigned i = 0; i < T; ++i) b[i] ^= o.b[i];
    return *this;
  }
  friend bool operator==(const LaneTile& a, const LaneTile& o) { return a.b == o.b; }
  friend bool operator!=(const LaneTile& a, const LaneTile& o) { return a.b != o.b; }
};

// --- Block-concept vocabulary (see lane_block.h) -------------------------

template <class Inner, unsigned T>
inline constexpr unsigned block_lanes_v<LaneTile<Inner, T>> = block_lanes_v<Inner> * T;

template <class Inner, unsigned T>
LaneTile<Inner, T> block_ones(LaneTile<Inner, T>*) {
  LaneTile<Inner, T> r;
  for (unsigned i = 0; i < T; ++i) r.b[i] = block_ones<Inner>();
  return r;
}

template <class Inner, unsigned T>
bool block_any(const LaneTile<Inner, T>& t) {
  for (unsigned i = 0; i < T; ++i)
    if (block_any(t.b[i])) return true;
  return false;
}

template <class Inner, unsigned T>
bool block_bit(const LaneTile<Inner, T>& t, unsigned lane) {
  constexpr unsigned kIn = block_lanes_v<Inner>;
  return block_bit(t.b[lane / kIn], lane % kIn);
}

template <class Inner, unsigned T>
void block_set_bit(LaneTile<Inner, T>& t, unsigned lane) {
  constexpr unsigned kIn = block_lanes_v<Inner>;
  block_set_bit(t.b[lane / kIn], lane % kIn);
}

// First 64-lane word of a Block of any nesting depth — the word that holds
// the golden lane (bit 0), which the campaign's golden-lane self-check
// inspects (analysis/campaign_exec.h).
inline std::uint64_t block_word0(std::uint64_t b) { return b; }
template <unsigned K>
std::uint64_t block_word0(const LaneBlock<K>& b) {
  return b.w[0];
}
template <class Inner, unsigned T>
std::uint64_t block_word0(const LaneTile<Inner, T>& t) {
  return block_word0(t.b[0]);
}

// --- the shipped tile configurations -------------------------------------
//
// Both runtime tile sizes (4096 and 32768 lanes) exist for each compiled
// inner width; which inner width executes is a cpuid decision made by the
// campaign dispatcher, exactly like the 256/512-lane lane-block widths.
//
//   portable    Tile4096  = LaneTile<std::uint64_t, 64>
//               Tile32768 = LaneTile<std::uint64_t, 512>
//   -mavx2      LaneTile<LaneBlock<4>, 16 / 128>   (campaign_tiled_w256.cpp)
//   -mavx512f   LaneTile<LaneBlock<8>, 8 / 64>     (campaign_tiled_w512.cpp)
inline constexpr unsigned kTileLanesSmall = 4096;
inline constexpr unsigned kTileLanesLarge = 32768;

}  // namespace twm

#endif  // TWM_MEMSIM_LANE_TILE_H
