// Word-oriented functional memory simulator with fault injection.
//
// The simulator models an N x B RAM at the functional level used by march
// test theory: a write presents a full word, faults distort how the stored
// state evolves, and a read returns the stored state.  Read-disturb faults
// are not part of the paper's model and are not simulated.
//
// Semantics of a write of `data` to word `addr`:
//   0. an AFna decoder fault on the address loses the write (the word keeps
//      its old value; retention clocks still refresh — the row strobe
//      happens);
//   1. per-bit transition faults may suppress 0->1 / 1->0 transitions;
//   2. the word state is committed;
//   3. CFid/CFin faults whose aggressor bit transitioned fire on their
//      victims (no recursive re-triggering — the standard first-order
//      simplification of march test analysis);
//   3.5. an AFaw decoder fault raw-copies the committed word to its alias
//      target (no TF/coupling interplay there);
//   4. CFst faults whose aggressor is in the activating state force their
//      victims;
//   5. stuck-at cells are re-forced to the stuck value (a SAF dominates any
//      other effect on the same cell).
// A read returns the stored word, distorted by any AF decoder fault on the
// address (AFna: floating bus zeros; AFaw: wired-AND of the decoded words).
#ifndef TWM_MEMSIM_MEMORY_H
#define TWM_MEMSIM_MEMORY_H

#include <cstddef>
#include <vector>

#include "memsim/fault.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace twm {

// Abstract single-port memory used by the march execution engine.
class MemoryIf {
 public:
  virtual ~MemoryIf() = default;
  virtual unsigned word_width() const = 0;
  virtual std::size_t num_words() const = 0;
  virtual BitVec read(std::size_t addr) = 0;
  virtual void write(std::size_t addr, const BitVec& data) = 0;
  // Advances simulated idle time (march "Del" pauses).  Only memories with
  // time-dependent defects (data-retention faults) react; default no-op.
  virtual void elapse(unsigned /*units*/) {}
};

class Memory : public MemoryIf {
 public:
  Memory(std::size_t num_words, unsigned word_width);

  unsigned word_width() const override { return width_; }
  std::size_t num_words() const override { return state_.size(); }

  BitVec read(std::size_t addr) override;
  void write(std::size_t addr, const BitVec& data) override;
  void elapse(unsigned units) override;

  // --- fault management ------------------------------------------------
  void inject(const Fault& f);
  void clear_faults() {
    faults_.clear();
    ret_age_.clear();
    has_af_ = false;
  }
  const std::vector<Fault>& faults() const { return faults_; }

  // --- backdoor access (test/benchmark set-up, not a memory port) ------
  // Loads raw contents, then enforces static fault conditions (SAF, CFst)
  // so the state is consistent with the injected defects.
  void load(const std::vector<BitVec>& contents);
  void fill(const BitVec& pattern);
  void fill_random(Rng& rng);

  const BitVec& peek(std::size_t addr) const { return state_.at(addr); }
  std::vector<BitVec> snapshot() const { return state_; }
  bool equals(const std::vector<BitVec>& snap) const { return state_ == snap; }

  // Number of read + write port operations performed (test-length metering).
  std::uint64_t op_count() const { return ops_; }
  void reset_op_count() { ops_ = 0; }

 private:
  bool get_bit(const CellAddr& c) const { return state_[c.word].get(c.bit); }
  void set_bit(const CellAddr& c, bool v) { state_[c.word].set(c.bit, v); }
  // Steps 4 and 5 of the write semantics; also run after load().
  void enforce_static_faults();

  unsigned width_;
  std::vector<BitVec> state_;
  std::vector<Fault> faults_;
  // Pause units since the last write of each retention fault's cell;
  // parallel to the RET entries' order of appearance in faults_.
  std::vector<unsigned> ret_age_;
  bool has_af_ = false;  // any decoder fault injected (AF port distortion)
  std::uint64_t ops_ = 0;
};

}  // namespace twm

#endif  // TWM_MEMSIM_MEMORY_H
