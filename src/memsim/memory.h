// Word-oriented functional memory simulator with fault injection.
//
// The simulator models an N x B RAM at the functional level used by march
// test theory: a write presents a full word, faults distort how the stored
// state evolves, and a read returns the stored state.  Read-disturb faults
// are not part of the paper's model and are not simulated.
//
// Semantics of a write of `data` to word `addr`:
//   0. an AFna decoder fault on the address loses the write (the word keeps
//      its old value; retention clocks still refresh — the row strobe
//      happens);
//   1. per-bit transition faults may suppress 0->1 / 1->0 transitions;
//   2. the word state is committed;
//   3. CFid/CFin faults whose aggressor bit transitioned fire on their
//      victims (no recursive re-triggering — the standard first-order
//      simplification of march test analysis);
//   3.5. an AFaw decoder fault raw-copies the committed word to its alias
//      target (no TF/coupling interplay there);
//   4. CFst faults whose aggressor is in the activating state force their
//      victims;
//   5. stuck-at cells are re-forced to the stuck value (a SAF dominates any
//      other effect on the same cell).
// A read returns the stored word, distorted by any AF decoder fault on the
// address (AFna: floating bus zeros; AFaw: wired-AND of the decoded words).
//
// Storage is paged like PackedMemoryT's (64-word pages over a lazy
// background — a broadcast pattern or a seeded/loaded per-word baseline),
// so a huge-geometry memory only allocates the pages a test actually
// touches instead of an O(words) vector<BitVec>; fill()/fill_seeded()
// reset in O(live pages) and recycle freed pages through a free-list.
#ifndef TWM_MEMSIM_MEMORY_H
#define TWM_MEMSIM_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "memsim/fault.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace twm {

// Abstract single-port memory used by the march execution engine.
class MemoryIf {
 public:
  virtual ~MemoryIf() = default;
  virtual unsigned word_width() const = 0;
  virtual std::size_t num_words() const = 0;
  virtual BitVec read(std::size_t addr) = 0;
  virtual void write(std::size_t addr, const BitVec& data) = 0;
  // Advances simulated idle time (march "Del" pauses).  Only memories with
  // time-dependent defects (data-retention faults) react; default no-op.
  virtual void elapse(unsigned /*units*/) {}
};

class Memory : public MemoryIf {
 public:
  Memory(std::size_t num_words, unsigned word_width);

  unsigned word_width() const override { return width_; }
  std::size_t num_words() const override { return words_; }

  BitVec read(std::size_t addr) override;
  void write(std::size_t addr, const BitVec& data) override;
  void elapse(unsigned units) override;

  // --- fault management ------------------------------------------------
  void inject(const Fault& f);
  void clear_faults() {
    faults_.clear();
    ret_age_.clear();
    has_af_ = false;
  }
  const std::vector<Fault>& faults() const { return faults_; }

  // --- backdoor access (test/benchmark set-up, not a memory port) ------
  // Loads raw contents, then enforces static fault conditions (SAF, CFst)
  // so the state is consistent with the injected defects.
  void load(const std::vector<BitVec>& contents);
  void fill(const BitVec& pattern);
  void fill_random(Rng& rng);
  // Contents of fill_random(Rng(seed)) for seed != 0, fill(zeros) for seed
  // 0 — the campaign unit contract — with the generated baseline cached
  // per seed so repeated refills don't regenerate it.
  void fill_seeded(std::uint64_t seed);

  BitVec peek(std::size_t addr) const;
  std::vector<BitVec> snapshot() const;
  bool equals(const std::vector<BitVec>& snap) const;

  // Number of read + write port operations performed (test-length metering).
  std::uint64_t op_count() const { return ops_; }
  void reset_op_count() { ops_ = 0; }

  // --- page accounting (bench/stats surface) ----------------------------
  std::size_t pages_live() const { return materialized_.size(); }
  std::size_t pages_peak() const { return pages_peak_; }
  // The scalar simulator has no lane-block representation; its pages are
  // all the cheap limb form.  Mirrors PackedMemoryT's accounting surface so
  // the campaign executor can report either backend.
  std::size_t packed_pages_live() const { return 0; }
  std::size_t packed_pages_peak() const { return 0; }
  std::uint64_t page_allocations() const { return page_allocs_; }

 private:
  // One page: 64 words x width bits, i.e. width_ limbs.
  struct Page {
    std::vector<std::uint64_t> bits;
  };
  using Baseline = std::shared_ptr<const std::vector<std::uint64_t>>;

  static bool get_limb_bit(const std::uint64_t* limbs, std::size_t pos) {
    return (limbs[pos >> 6] >> (pos & 63)) & 1u;
  }
  static void set_limb_bit(std::uint64_t* limbs, std::size_t pos, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (pos & 63);
    if (v)
      limbs[pos >> 6] |= m;
    else
      limbs[pos >> 6] &= ~m;
  }

  bool cell_bit(std::size_t addr, unsigned j) const;
  bool get_bit(const CellAddr& c) const { return cell_bit(c.word, c.bit); }
  void set_bit(const CellAddr& c, bool v);
  BitVec word_at(std::size_t addr) const;
  void set_word(std::size_t addr, const BitVec& v);

  Page& page_for_write(std::size_t addr);
  void drop_pages();
  void set_background_bits(Baseline bits);
  Baseline generate_bits(Rng& rng) const;

  // Steps 4 and 5 of the write semantics; also run after load().
  void enforce_static_faults();

  std::size_t words_;
  unsigned width_;

  // [addr >> kMemPageShift (packed_memory.h)] -> page, or null while the
  // page reads as the background.
  std::vector<std::unique_ptr<Page>> table_;
  std::vector<std::unique_ptr<Page>> free_;
  std::vector<std::size_t> materialized_;
  std::size_t pages_peak_ = 0;
  std::uint64_t page_allocs_ = 0;

  // Background of unmaterialized pages: a broadcast pattern (one page of it
  // pre-expanded into pattern_limbs_) or a shared per-word bit baseline.
  std::vector<std::uint64_t> pattern_limbs_;
  BitVec bg_pattern_;
  Baseline bg_bits_;  // null -> pattern background
  std::map<std::uint64_t, Baseline> baselines_;

  std::vector<Fault> faults_;
  // Pause units since the last write of each retention fault's cell;
  // parallel to the RET entries' order of appearance in faults_.
  std::vector<unsigned> ret_age_;
  bool has_af_ = false;  // any decoder fault injected (AF port distortion)
  std::uint64_t ops_ = 0;
};

}  // namespace twm

#endif  // TWM_MEMSIM_MEMORY_H
