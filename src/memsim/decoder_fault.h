// Address-decoder faults (AFs) — the classical four decoder defect types,
// modelled as an address-mapping layer over any memory:
//
//   AF1  an address accesses no cell: writes are lost, reads return the
//        floating-bus value (all zeros here);
//   AF2  an address accesses multiple cells: writes hit all of them, reads
//        merge them (wired-AND or wired-OR, technology dependent);
//   AF3/AF4 (a cell reached by several / by no address) arise as the duals
//        of AF1/AF2 when injected from the cell's perspective and are
//        covered by the same mapping layer.
//
// The paper's fault model stops at SAF/TF/CF; AFs are the standard
// companion model (van de Goor), included because any march with the
// (r, w-inv) element pairs of March C- detects them, and the transparent
// transforms must preserve that — tests/decoder_fault_test.cpp checks it.
#ifndef TWM_MEMSIM_DECODER_FAULT_H
#define TWM_MEMSIM_DECODER_FAULT_H

#include <vector>

#include "memsim/memory.h"

namespace twm {

class DecoderFaultMemory : public MemoryIf {
 public:
  enum class ReadMerge { And, Or };

  explicit DecoderFaultMemory(MemoryIf& inner, ReadMerge merge = ReadMerge::And);

  unsigned word_width() const override { return inner_.word_width(); }
  std::size_t num_words() const override { return inner_.num_words(); }

  BitVec read(std::size_t addr) override;
  void write(std::size_t addr, const BitVec& data) override;
  void elapse(unsigned units) override { inner_.elapse(units); }

  // AF1: `addr` decodes to no cell.
  void inject_no_access(std::size_t addr);
  // AF2: `addr` additionally decodes to the cell of `also`.
  void inject_alias(std::size_t addr, std::size_t also);

  bool is_faulted(std::size_t addr) const { return !targets_.at(addr).empty() || dead_.at(addr); }

 private:
  MemoryIf& inner_;
  ReadMerge merge_;
  std::vector<bool> dead_;
  std::vector<std::vector<std::size_t>> targets_;  // extra cells per address
};

}  // namespace twm

#endif  // TWM_MEMSIM_DECODER_FAULT_H
