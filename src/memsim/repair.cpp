#include "memsim/repair.h"

#include <stdexcept>

namespace twm {

RepairableMemory::RepairableMemory(std::size_t logical_words, std::size_t spare_words,
                                   unsigned word_width)
    : logical_(logical_words),
      phys_(logical_words + spare_words, word_width),
      map_(logical_words),
      next_spare_(logical_words),
      spares_left_(spare_words) {
  if (logical_words == 0) throw std::invalid_argument("RepairableMemory: no logical words");
  for (std::size_t i = 0; i < logical_words; ++i) map_[i] = i;
}

bool RepairableMemory::repair(std::size_t addr) {
  if (addr >= logical_) throw std::out_of_range("RepairableMemory::repair");
  if (spares_left_ == 0) return false;
  const BitVec data = phys_.read(map_[addr]);  // salvage current content
  map_[addr] = next_spare_++;
  --spares_left_;
  phys_.write(map_[addr], data);
  return true;
}

}  // namespace twm
