// Segment view: exposes a contiguous address window [base, base+length) of
// an underlying memory as a memory of its own.
//
// Used for *segmented transparent scrubbing*: testing one segment per idle
// window shortens each session by the segment ratio — an exponential win in
// completion probability (see analysis/interference.h) — while faults
// coupling cells of different segments can no longer be excited-and-
// observed inside one session, so inter-segment CF coverage degrades.
// bench_segmented quantifies both sides.
#ifndef TWM_MEMSIM_SEGMENT_H
#define TWM_MEMSIM_SEGMENT_H

#include "memsim/memory.h"

namespace twm {

class SegmentView : public MemoryIf {
 public:
  SegmentView(MemoryIf& inner, std::size_t base, std::size_t length);

  unsigned word_width() const override { return inner_.word_width(); }
  std::size_t num_words() const override { return length_; }

  BitVec read(std::size_t addr) override { return inner_.read(translate(addr)); }
  void write(std::size_t addr, const BitVec& data) override {
    inner_.write(translate(addr), data);
  }
  void elapse(unsigned units) override { inner_.elapse(units); }

  std::size_t base() const { return base_; }

 private:
  std::size_t translate(std::size_t addr) const;

  MemoryIf& inner_;
  std::size_t base_;
  std::size_t length_;
};

}  // namespace twm

#endif  // TWM_MEMSIM_SEGMENT_H
