// Bit-parallel batched fault simulator: 64 independent fault universes per
// machine word.
//
// PackedMemory models the same N x B functional RAM as Memory (memory.h),
// but stores each cell (word, bit) as a 64-bit lane vector: bit k of the
// stored uint64_t is the cell's value in universe (lane) k.  Faults are
// injected with a LaneMask restricting them to a subset of lanes, so one
// PackedMemory simulates up to 64 different fault configurations — by
// convention lane 0 is kept fault-free (the golden universe batched
// coverage evaluation uses as a self-check).
//
// The write semantics are the documented five steps of Memory::write
// (transition suppression, commit, CFid/CFin aggressor-fire, CFst
// enforcement, SAF dominance) plus RET aging, each implemented as
// lane-masked bitwise operations instead of per-fault branches; faults are
// applied in injection order, so every lane observes exactly the effect
// sequence the scalar simulator would produce for its fault subset
// (tests/packed_memory_test.cpp proves this differentially).
//
// A packed word is passed around as `const uint64_t*` / `uint64_t*`
// spanning word_width() entries; entry j is bit j of the word across all
// lanes.  Data identical in every lane ("broadcast") represents fault-free
// inputs, e.g. absolute march write data.
#ifndef TWM_MEMSIM_PACKED_MEMORY_H
#define TWM_MEMSIM_PACKED_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "memsim/fault.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace twm {

inline constexpr unsigned kPackedLanes = 64;

// Bit k set = the fault / event applies to (happened in) lane k.
using LaneMask = std::uint64_t;

// Broadcasts a lane-uniform (fault-free) word into packed form: entry j is
// the all-ones or all-zero lane vector of the word's bit j.
std::vector<std::uint64_t> broadcast_word(const BitVec& word);

class PackedMemory {
 public:
  PackedMemory(std::size_t num_words, unsigned word_width);

  unsigned word_width() const { return width_; }
  std::size_t num_words() const { return words_; }

  // --- the memory port -------------------------------------------------
  // Returned pointer spans word_width() lane vectors and stays valid until
  // the next write/elapse/load to the memory.
  const std::uint64_t* read(std::size_t addr);
  // `data` spans word_width() lane vectors (per-lane write data).
  void write(std::size_t addr, const std::uint64_t* data);
  void elapse(unsigned units);

  // --- fault management ------------------------------------------------
  void inject(const Fault& f, LaneMask lanes);
  void clear_faults();

  // --- backdoor access (broadcast: every lane gets the same contents) --
  void load(const std::vector<BitVec>& contents);
  void fill(const BitVec& pattern);
  void fill_random(Rng& rng);

  // Lane extraction for differential checking against the scalar Memory.
  bool lane_bit(unsigned lane, std::size_t addr, unsigned bit) const;
  BitVec lane_word(unsigned lane, std::size_t addr) const;

  // Direct cell access (no port-op accounting).
  const std::uint64_t* peek(std::size_t addr) const { return &state_[addr * width_]; }

  std::uint64_t op_count() const { return ops_; }
  void reset_op_count() { ops_ = 0; }

 private:
  std::uint64_t& cell(const CellAddr& c) { return state_[c.word * width_ + c.bit]; }
  const std::uint64_t& cell(const CellAddr& c) const { return state_[c.word * width_ + c.bit]; }
  // Forces `value` into the cell for the lanes in `mask`, leaving the other
  // lanes untouched.
  static void force(std::uint64_t& cell, bool value, LaneMask mask) {
    cell = value ? (cell | mask) : (cell & ~mask);
  }
  void enforce_static_faults();

  struct LaneFault {
    Fault fault;
    LaneMask lanes = 0;
  };

  std::size_t words_;
  unsigned width_;
  std::vector<std::uint64_t> state_;  // [addr * width_ + bit] -> lane vector
  std::vector<LaneFault> faults_;
  std::vector<unsigned> ret_age_;  // parallel to RET entries in faults_
  std::vector<std::uint64_t> old_, next_;  // write-path scratch (one word each)
  std::uint64_t ops_ = 0;
};

}  // namespace twm

#endif  // TWM_MEMSIM_PACKED_MEMORY_H
