// Bit-parallel batched fault simulator: one fault universe per lane of a
// lane block (64, 256 or 512 universes per machine pass).
//
// PackedMemoryT<Block> models the same N x B functional RAM as Memory
// (memory.h), but stores each cell (word, bit) as a lane block: lane k of
// the stored Block is the cell's value in universe k.  Block is any type
// satisfying the concept in memsim/lane_block.h — std::uint64_t (the
// original 64-lane layout; PackedMemory aliases it) or LaneBlock<K> for
// K x 64 lanes.  Faults are injected with a Block-typed lane mask
// restricting them to a subset of lanes, so one memory simulates up to
// block_lanes_v<Block> different fault configurations — by convention lane
// 0 is kept fault-free (the golden universe batched coverage evaluation
// uses as a self-check).
//
// The write semantics are the documented five steps of Memory::write
// (transition suppression, commit, CFid/CFin aggressor-fire, CFst
// enforcement, SAF dominance) plus RET aging and the AF decoder-fault
// port distortions, each implemented as lane-masked bitwise operations
// instead of per-fault branches; faults are applied in injection order, so
// every lane observes exactly the effect sequence the scalar simulator
// would produce for its fault subset (tests/packed_memory_test.cpp proves
// this differentially).
//
// Storage is PAGED, not dense.  A dense [addr * width + bit] lane-block
// array costs words x width x sizeof(Block) — ~8 GiB for 16M words at
// width 8 on the 512-lane backend — which caps workloads at toy
// geometries.  Instead the address space is split into fixed 64-word
// pages, each in one of three states:
//
//   * background — no page object at all; every cell reads as the fill
//     background (a broadcast pattern, or one word of a seeded/loaded
//     per-word bit baseline).  This is what fill()/fill_seeded() leave
//     behind: an O(live pages) reset instead of an O(words) rewrite.
//   * scalar — the page has been written, but only with lane-uniform
//     (broadcast) data and holds no fault; it stores one bit per cell
//     (64 x width bits), a ~sizeof(Block)*8 compression.  March sweeps
//     over fault-free regions stay in this representation.
//   * packed — full lane blocks plus the per-word fault index buckets.
//     Every word in any injected fault's footprint (victim, aggressor,
//     alias target) is materialized packed at inject() time and stays
//     packed until the faults are cleared; a lane-divergent write to a
//     fault-free page also promotes it.
//
// The invariant that fault footprints are always packed is what keeps the
// port fast paths sound: an operation on a non-packed page can touch no
// fault (its buckets are empty by construction) and lane-uniform state,
// so it skips the fault machinery entirely.  Pages freed by a refill go
// to a free-list and are reused, so the repack scheduler's
// clear_faults()/fill() round rebuild allocates nothing in steady state.
//
// Wide batches carry proportionally more faults per memory, so the port
// operations must not scan the whole fault list: faults are indexed by
// class and address at injection time (in per-page buckets), and
// static-fault enforcement after a write walks only the CFst/SAF faults
// whose aggressor or victim lives in a word the write disturbed.  Entries
// the walk skips are idempotent no-ops: statics were already enforced
// after the previous operation, nothing in their words changed since, and
// — the load-bearing condition — no *other* fault's effect can
// re-activate them, because every injected lane mask is pairwise disjoint
// (one fault per universe, the campaign contract), so cross-fault CFst
// chains cannot exist.  The moment two faults share a lane (multi-fault
// universes, as the differential tests build) the simulator detects the
// overlap at inject time and falls back to the global two-pass
// enforcement the scalar Memory performs.
//
// A packed word is passed around as `const Block*` / `Block*` spanning
// word_width() entries; entry j is bit j of the word across all lanes.
// Data identical in every lane ("broadcast") represents fault-free inputs,
// e.g. absolute march write data.
//
// The whole implementation lives in this header: each SIMD width is
// compiled in its own translation unit with the matching arch flags (see
// src/analysis/campaign_w256.cpp / campaign_w512.cpp) so the per-block
// loops auto-vectorize; packed_memory.cpp pins the 64-lane instantiation.
#ifndef TWM_MEMSIM_PACKED_MEMORY_H
#define TWM_MEMSIM_PACKED_MEMORY_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

#include "memsim/fault.h"
#include "memsim/lane_block.h"
#include "util/bitvec.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace twm {

inline constexpr unsigned kPackedLanes = 64;

// Bit k set = the fault / event applies to (happened in) lane k.  The
// 64-lane backend's mask type; wide backends use their Block as the mask.
using LaneMask = std::uint64_t;

// Page geometry shared by the packed and scalar paged simulators: 64 words
// per page keeps a packed page (64 x width lane blocks + fault buckets)
// tens of KiB even at 512 lanes, while the page table stays words/64
// pointers.
inline constexpr unsigned kMemPageShift = 6;
inline constexpr std::size_t kMemPageWords = std::size_t{1} << kMemPageShift;
inline constexpr std::size_t kMemPageMask = kMemPageWords - 1;

// Broadcasts a lane-uniform (fault-free) word into packed form: entry j is
// the all-ones or all-zero lane block of the word's bit j.
template <class Block>
std::vector<Block> broadcast_block(const BitVec& word) {
  std::vector<Block> out(word.width());
  for (unsigned j = 0; j < word.width(); ++j)
    out[j] = word.get(j) ? block_ones<Block>() : Block{};
  return out;
}

inline std::vector<std::uint64_t> broadcast_word(const BitVec& word) {
  return broadcast_block<std::uint64_t>(word);
}

template <class Block>
class PackedMemoryT {
 public:
  PackedMemoryT(std::size_t num_words, unsigned word_width)
      : words_(num_words),
        width_(word_width),
        old_(word_width),
        next_(word_width),
        read_buf_(word_width),
        peek_buf_(word_width) {
    if (num_words == 0 || word_width == 0)
      throw std::invalid_argument("PackedMemory: empty geometry");
    table_.resize((num_words + kMemPageWords - 1) / kMemPageWords);
    bg_pattern_ = BitVec::zeros(width_);
    pattern_limbs_.assign(width_, 0);  // 64 copies of the all-zero pattern
  }

  // The background baseline pointers reference this object's own storage;
  // copying would leave the copy aliasing the original.  Nothing copies a
  // packed memory (workers construct their own), so forbid it outright.
  PackedMemoryT(const PackedMemoryT&) = delete;
  PackedMemoryT& operator=(const PackedMemoryT&) = delete;
  PackedMemoryT(PackedMemoryT&&) = default;
  PackedMemoryT& operator=(PackedMemoryT&&) = default;

  unsigned word_width() const { return width_; }
  std::size_t num_words() const { return words_; }

  // --- the memory port -------------------------------------------------
  // Returned pointer spans word_width() lane blocks and stays valid until
  // the next port operation (read/write/elapse) or load to the memory.
  const Block* read(std::size_t addr) {
    ++ops_;
    if (addr >= words_) throw std::out_of_range("PackedMemory::read");
    const Page* p = table_[addr >> kMemPageShift].get();
    if (!p || !p->packed) {
      // Fault footprints are always packed, so no decoder fault can
      // distort this port read — broadcast the scalar value.
      expand_word(addr, p, read_buf_.data());
      return read_buf_.data();
    }
    const std::size_t rd_local = addr & kMemPageMask;
    const Block* word = &p->cells[rd_local * width_];
    if (!bucket_nonempty(*p, kAf, rd_local)) return word;
    // AF port distortion, per fault in injection order: AFna lanes see the
    // floating bus (zeros), AFaw lanes the wired-AND of every decoded cell.
    std::copy(word, word + width_, read_buf_.begin());
    for (const std::uint32_t i : p->buckets[kAf * kMemPageWords + rd_local]) {
      const LaneFault& lf = faults_[i];
      const Block keep = ~lf.lanes;
      if (lf.fault.cls == FaultClass::AFna) {
        for (unsigned j = 0; j < width_; ++j) read_buf_[j] &= keep;
      } else {
        for (unsigned j = 0; j < width_; ++j)
          read_buf_[j] &= keep | cell({lf.fault.aggressor.word, j});
      }
    }
    return read_buf_.data();
  }

  // `data` spans word_width() lane blocks (per-lane write data).
  void write(std::size_t addr, const Block* data) {
    ++ops_;
    if (addr >= words_) throw std::out_of_range("PackedMemory::write");
    const std::size_t pi = addr >> kMemPageShift;
    Page* p = table_[pi].get();
    if (!p || !p->packed) {
      // No fault lives anywhere on this page (footprints are packed), so
      // the write cannot trigger, suppress or disturb anything: store the
      // scalar value — unless the data itself is lane-divergent, which
      // forces the full lane-block representation.
      bool uniform = true;
      for (unsigned j = 0; j < width_; ++j) {
        const Block& b = data[j];
        if (block_any(b) && block_any(~b)) {
          uniform = false;
          break;
        }
      }
      if (uniform) {
        Page& sp = p ? *p : materialize_scalar(pi);
        const std::size_t base = (addr & kMemPageMask) * width_;
        for (unsigned j = 0; j < width_; ++j)
          set_limb_bit(sp.bits.data(), base + j, block_any(data[j]));
        return;
      }
      p = &materialize_packed(pi);
    }
    const std::size_t local = addr & kMemPageMask;
    Block* word = &p->cells[local * width_];
    std::copy(word, word + width_, old_.begin());
    std::copy(data, data + width_, next_.begin());
    touched_.clear();
    touched_.push_back(addr);

    // Step 0: an AFna address decodes to no cell — the write is lost in the
    // faulted lanes (the cells keep their old value, so the later steps see
    // no transitions there).
    const bool has_af = bucket_nonempty(*p, kAf, local);
    if (has_af)
      for (const std::uint32_t i : p->buckets[kAf * kMemPageWords + local]) {
        const LaneFault& lf = faults_[i];
        if (lf.fault.cls != FaultClass::AFna) continue;
        for (unsigned j = 0; j < width_; ++j)
          next_[j] = (next_[j] & ~lf.lanes) | (old_[j] & lf.lanes);
      }

    // Step 1: transition faults suppress the failing transition (per lane).
    if (bucket_nonempty(*p, kTf, local))
      for (const std::uint32_t i : p->buckets[kTf * kMemPageWords + local]) {
        const LaneFault& lf = faults_[i];
        const Fault& f = lf.fault;
        const Block o = old_[f.victim.bit];
        const Block n = next_[f.victim.bit];
        const Block transitioning = f.trans == Transition::Up ? (~o & n) : (o & ~n);
        const Block suppressed = transitioning & lf.lanes;
        next_[f.victim.bit] = (n & ~suppressed) | (o & suppressed);
      }

    // Step 2: commit.
    std::copy(next_.begin(), next_.end(), word);

    // Step 3: dynamic coupling faults triggered by aggressor transitions
    // caused by this write.  The aggressor is sampled from the live state,
    // so earlier coupling effects on the same word are seen — matching the
    // scalar simulator's fault-by-fault ordering per lane.
    if (bucket_nonempty(*p, kDyn, local))
      for (const std::uint32_t i : p->buckets[kDyn * kMemPageWords + local]) {
        const LaneFault& lf = faults_[i];
        const Fault& f = lf.fault;
        const Block o = old_[f.aggressor.bit];
        const Block n = cell(f.aggressor);
        const Block transitioning = f.trans == Transition::Up ? (~o & n) : (o & ~n);
        const Block fired = transitioning & lf.lanes;
        if (f.cls == FaultClass::CFid)
          force(cell(f.victim), f.value, fired);
        else
          cell(f.victim) ^= fired;
        touch(f.victim.word);
      }

    // Step 3.5: an AFaw address additionally decodes to the alias word —
    // the committed value is raw-copied there in the faulted lanes (no
    // TF/coupling interplay at the target; statics are re-enforced below).
    if (has_af)
      for (const std::uint32_t i : p->buckets[kAf * kMemPageWords + local]) {
        const LaneFault& lf = faults_[i];
        if (lf.fault.cls != FaultClass::AFaw) continue;
        const Block keep = ~lf.lanes;
        for (unsigned j = 0; j < width_; ++j) {
          Block& target = cell({lf.fault.aggressor.word, j});
          target = (target & keep) | (cell({addr, j}) & lf.lanes);
        }
        touch(lf.fault.aggressor.word);
      }

    // A write refreshes the retention clock of any leaky cell it targets
    // (the row strobe happens even when a decoder fault loses the data).
    // The refresh is lane-independent: every lane performs the same write.
    if (bucket_nonempty(*p, kRet, local))
      for (const std::uint32_t e : p->buckets[kRet * kMemPageWords + local])
        ret_entries_[e].age = 0;

    // Steps 4 and 5, over the candidates the touched words can reach.
    enforce_statics_touched();
  }

  // Prefetch hint for the cell span of `addr`.  The march sweep issues
  // this one address ahead of the operation it is about to execute
  // (bist/packed_engine.h), so a tile-sized lane-block span starts
  // streaming toward L1 while the current address's ops still run.  Only
  // the head of the span is touched — the hardware streamer follows the
  // sequential access; the hint's job is to start the stream early.
  // Non-packed pages need no hint (a scalar word is a few resident limbs).
  void prefetch(std::size_t addr) const {
#if defined(__GNUC__) || defined(__clang__)
    if (addr >= words_) return;
    const Page* p = table_[addr >> kMemPageShift].get();
    if (!p || !p->packed) return;
    const Block* word = &p->cells[(addr & kMemPageMask) * width_];
    const char* c = reinterpret_cast<const char*>(word);
    const char* end = reinterpret_cast<const char*>(word + width_);
    constexpr std::ptrdiff_t kLine = 64, kMaxLines = 8;
    if (end - c > kLine * kMaxLines) end = c + kLine * kMaxLines;
    for (; c < end; c += kLine) __builtin_prefetch(c, 1, 3);
#else
    (void)addr;
#endif
  }

  void elapse(unsigned units) {
    if (ret_entries_.empty()) return;
    touched_.clear();
    for (RetEntry& e : ret_entries_) {
      if (e.dead) continue;
      const LaneFault& lf = faults_[e.idx];
      e.age += units;
      if (e.age >= lf.fault.retention) force(cell(lf.fault.victim), lf.fault.value, lf.lanes);
      touch(lf.fault.victim.word);
    }
    // Decay may expose cells to static coupling conditions.
    enforce_statics_touched();
  }

  // --- fault management ------------------------------------------------
  void inject(const Fault& f, Block lanes) {
    auto check = [this](const CellAddr& c) {
      if (c.word >= words_ || c.bit >= width_)
        throw std::out_of_range("PackedMemory::inject: cell outside memory");
    };
    if (f.is_decoder()) {
      if (f.victim.word >= words_ || (f.cls == FaultClass::AFaw && f.aggressor.word >= words_))
        throw std::out_of_range("PackedMemory::inject: address outside memory");
      if (f.cls == FaultClass::AFaw && f.aggressor.word == f.victim.word)
        throw std::invalid_argument("PackedMemory::inject: alias == address");
    } else {
      check(f.victim);
      if (f.is_coupling()) {
        check(f.aggressor);
        if (f.aggressor == f.victim)
          throw std::invalid_argument("PackedMemory::inject: aggressor == victim");
      }
    }
    const std::uint32_t idx = static_cast<std::uint32_t>(faults_.size());
    // Lane overlap disables the disjoint-lanes fast path for statics.
    if (block_any(lanes & lanes_union_)) lanes_overlap_ = true;
    lanes_union_ |= lanes;
    // Re-injecting into a previously retired lane revives it: the new
    // fault's lanes leave the retired set, or a later retire_lanes call
    // would silently drop the live fault.
    retired_union_ &= ~lanes;
    faults_.push_back({f, lanes});
    seen_.push_back(0);
    retired_.push_back(0);
    // The fault's whole footprint must live in packed pages before any of
    // its effects (or any port op near it) can be applied.
    materialize_footprint(f);
    switch (f.cls) {
      case FaultClass::SAF: saf_all_.push_back(idx); break;
      case FaultClass::CFst: cfst_all_.push_back(idx); break;
      default: break;
    }
    if (f.cls == FaultClass::RET) {
      bucket_push(f.victim.word, kRet, static_cast<std::uint32_t>(ret_entries_.size()));
      ret_entries_.push_back({idx, 0});
    } else {
      index_fault_buckets(idx);
    }
    // Enforce the new fault's static condition.  With pairwise-disjoint
    // lane masks only the new fault itself can be newly active (its lanes
    // hold no other fault to chain with, and it cannot disturb other
    // lanes), so batch construction stays O(faults) instead of the
    // O(faults^2) a global re-enforcement per inject would cost.  Any lane
    // overlap falls back to the scalar Memory's global walk.
    if (lanes_overlap_) {
      enforce_static_faults();
    } else if (f.cls == FaultClass::SAF) {
      force(cell(f.victim), f.value, lanes);
    } else if (f.cls == FaultClass::CFst) {
      apply_cfst(idx);
    }
  }

  void clear_faults() {
    faults_.clear();
    seen_.clear();
    retired_.clear();
    saf_all_.clear();
    cfst_all_.clear();
    ret_entries_.clear();
    for (const std::size_t pi : materialized_) {
      Page& p = *table_[pi];
      if (!p.packed) continue;
      for (auto& b : p.buckets) b.clear();
      p.nonempty.fill(0);
    }
    lanes_union_ = Block{};
    lanes_overlap_ = false;
    retired_union_ = Block{};
  }

  // Retires (drops) every fault whose lane mask lies entirely inside the
  // accumulated `lanes` set: its index-bucket entries are removed, so the
  // port operations stop paying for it — classic fault dropping, per lane.
  //
  // Retiring is only sound when the caller no longer cares how the retired
  // lanes evolve (their verdicts are final and monotone — the repack
  // scheduler's settle-exit contract): from this call on the retired lanes
  // behave as if their fault was never injected, while the other lanes are
  // unaffected (lane masks are pairwise disjoint in campaign use).  The
  // batch stays live: inject() keeps working afterwards, so a freed lane
  // can be reused for a new fault (lane reuse is detected as an overlap
  // with lanes_union_, which conservatively re-enables the global
  // static-enforcement walk — correct, just slower).
  void retire_lanes(Block lanes) {
    retired_union_ |= lanes;
    if (retired_.size() < faults_.size()) retired_.resize(faults_.size(), 0);
    for (std::uint32_t i = 0; i < faults_.size(); ++i) {
      if (retired_[i]) continue;
      const LaneFault& lf = faults_[i];
      if (block_any(lf.lanes & ~retired_union_)) continue;  // still-live lanes
      retired_[i] = 1;
      const Fault& f = lf.fault;
      switch (f.cls) {
        case FaultClass::SAF:
          unindex(saf_all_, i);
          bucket_unindex(f.victim.word, kSaf, i);
          break;
        case FaultClass::TF: bucket_unindex(f.victim.word, kTf, i); break;
        case FaultClass::CFst:
          unindex(cfst_all_, i);
          bucket_unindex(f.aggressor.word, kCfst, i);
          if (f.victim.word != f.aggressor.word) bucket_unindex(f.victim.word, kCfst, i);
          break;
        case FaultClass::CFid:
        case FaultClass::CFin: bucket_unindex(f.aggressor.word, kDyn, i); break;
        case FaultClass::RET:
          for (std::size_t e = 0; e < ret_entries_.size(); ++e)
            if (ret_entries_[e].idx == i) {
              ret_entries_[e].dead = true;
              bucket_unindex(f.victim.word, kRet, static_cast<std::uint32_t>(e));
            }
          break;
        case FaultClass::AFna:
        case FaultClass::AFaw: bucket_unindex(f.victim.word, kAf, i); break;
      }
    }
  }

  // --- backdoor access (broadcast: every lane gets the same contents) --
  void load(const std::vector<BitVec>& contents) {
    if (contents.size() != words_)
      throw std::invalid_argument("PackedMemory::load: word count mismatch");
    for (const auto& w : contents)
      if (w.width() != width_) throw std::invalid_argument("PackedMemory::load: width mismatch");
    loaded_bits_.assign(table_.size() * width_, 0);
    for (std::size_t a = 0; a < words_; ++a)
      for (unsigned j = 0; j < width_; ++j)
        set_limb_bit(loaded_bits_.data(), a * width_ + j, contents[a].get(j));
    set_background_bits(loaded_bits_.data());
  }

  void fill(const BitVec& pattern) {
    if (pattern.width() != width_)
      throw std::invalid_argument("PackedMemory::fill: width mismatch");
    bg_pattern_ = pattern;
    bg_bits_ = nullptr;
    pattern_limbs_.assign(width_, 0);
    for (std::size_t w = 0; w < kMemPageWords; ++w)
      for (unsigned j = 0; j < width_; ++j)
        set_limb_bit(pattern_limbs_.data(), w * width_ + j, pattern.get(j));
    reset_to_background();
  }

  void fill_random(Rng& rng) {
    // Consumes the generator exactly like Memory::fill_random, so the same
    // seed broadcasts the same contents the scalar evaluation path sees.
    generate_bits(rng, loaded_bits_);
    set_background_bits(loaded_bits_.data());
  }

  // Contents of fill_random(Rng(seed)) for seed != 0, fill(zeros) for seed
  // 0 — the campaign unit contract — but with the generated baseline
  // cached per seed, so the repack scheduler's seed-major rounds pay the
  // O(words) generation once per (worker, seed) instead of once per unit.
  void fill_seeded(std::uint64_t seed) {
    if (seed == 0) {
      fill(BitVec::zeros(width_));
      return;
    }
    auto& bits = baselines_[seed];
    if (bits.empty()) {
      Rng rng(seed);
      generate_bits(rng, bits);
    }
    set_background_bits(bits.data());
  }

  // Lane extraction for differential checking against the scalar Memory.
  bool lane_bit(unsigned lane, std::size_t addr, unsigned bit) const {
    if (lane >= block_lanes_v<Block>) throw std::out_of_range("PackedMemory::lane_bit");
    if (addr >= words_ || bit >= width_) throw std::out_of_range("PackedMemory::lane_bit");
    const Page* p = table_[addr >> kMemPageShift].get();
    if (p && p->packed)
      return block_bit(p->cells[(addr & kMemPageMask) * width_ + bit], lane);
    return scalar_bit(addr, p, bit);
  }
  BitVec lane_word(unsigned lane, std::size_t addr) const {
    BitVec v(width_);
    for (unsigned j = 0; j < width_; ++j) v.set(j, lane_bit(lane, addr, j));
    return v;
  }

  // Direct cell access (no port-op accounting, no AF port distortion).
  // Non-packed words are expanded into an internal buffer, valid until the
  // next peek or port operation.
  const Block* peek(std::size_t addr) const {
    if (addr >= words_) throw std::out_of_range("PackedMemory::peek");
    const Page* p = table_[addr >> kMemPageShift].get();
    if (p && p->packed) return &p->cells[(addr & kMemPageMask) * width_];
    expand_word(addr, p, peek_buf_.data());
    return peek_buf_.data();
  }

  std::uint64_t op_count() const { return ops_; }
  void reset_op_count() { ops_ = 0; }

  // --- page accounting (bench/stats surface) ----------------------------
  std::size_t pages_live() const { return materialized_.size(); }
  std::size_t pages_peak() const { return pages_peak_; }
  // Pages holding full lane blocks — the expensive representation (64 x
  // width lane blocks vs a scalar page's width limbs).  Bounded by the
  // batch's fault footprint plus lane-divergent write spill, not by
  // `words`: this is the memory-budget claim for huge geometries in one
  // number.
  std::size_t packed_pages_live() const { return packed_pages_; }
  std::size_t packed_pages_peak() const { return packed_pages_peak_; }
  // Fresh heap allocations; stays flat across refill rounds once the
  // free-list is warm (the allocation-free repack contract).
  std::uint64_t page_allocations() const { return page_allocs_; }

 private:
  struct LaneFault {
    Fault fault;
    Block lanes{};
  };
  struct RetEntry {
    std::uint32_t idx;  // into faults_
    unsigned age;       // pause units since the cell's last write
    bool dead = false;  // retired via retire_lanes; skipped by elapse()
  };
  // Per-page fault buckets, one per class kind per local word.
  static constexpr unsigned kTf = 0, kDyn = 1, kAf = 2, kRet = 3, kCfst = 4, kSaf = 5;
  static constexpr unsigned kBucketKinds = 6;

  struct Page {
    bool packed = false;
    // scalar representation: bit (local * width + j); width limbs total.
    std::vector<std::uint64_t> bits;
    // packed representation: [local * width + bit] lane blocks.
    std::vector<Block> cells;
    // [kind * kMemPageWords + local] -> fault indexes, injection order.
    // Sized only for packed pages.
    std::vector<std::vector<std::uint32_t>> buckets;
    // nonempty[kind] bit `local` set <=> the bucket above is non-empty.
    // The port hot paths test one resident bit per kind instead of chasing
    // the bucket vector's heap header — on a packed page whose words carry
    // few faults (the common repack case) that indirection was the single
    // hottest cache miss of the write path.  kMemPageWords == 64, so one
    // word per kind covers the page exactly.
    std::array<std::uint64_t, kBucketKinds> nonempty{};
  };

  static bool bucket_nonempty(const Page& p, unsigned kind, std::size_t local) {
    return (p.nonempty[kind] >> local) & 1u;
  }

  static bool get_limb_bit(const std::uint64_t* limbs, std::size_t pos) {
    return (limbs[pos >> 6] >> (pos & 63)) & 1u;
  }
  static void set_limb_bit(std::uint64_t* limbs, std::size_t pos, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (pos & 63);
    if (v)
      limbs[pos >> 6] |= m;
    else
      limbs[pos >> 6] &= ~m;
  }

  // Scalar value of bit j of a word on a non-packed page.
  bool scalar_bit(std::size_t addr, const Page* p, unsigned j) const {
    if (p) return get_limb_bit(p->bits.data(), (addr & kMemPageMask) * width_ + j);
    if (bg_bits_) return get_limb_bit(bg_bits_, addr * width_ + j);
    return bg_pattern_.get(j);
  }

  // Broadcasts a non-packed word into `dst` (width_ blocks).
  void expand_word(std::size_t addr, const Page* p, Block* dst) const {
    for (unsigned j = 0; j < width_; ++j)
      dst[j] = scalar_bit(addr, p, j) ? block_ones<Block>() : Block{};
  }

  // --- page lifecycle ----------------------------------------------------
  Page& acquire_page(std::size_t pi) {
    std::unique_ptr<Page>& slot = table_[pi];
    if (!free_.empty()) {
      slot = std::move(free_.back());
      free_.pop_back();
    } else {
      // Chaos hook for allocation exhaustion, same bad_alloc a genuine OOM
      // raises here.  (Note the wide backends run inside twm_wide.so with
      // its own failpoint registry — it self-configures from TWM_FAILPOINTS,
      // so env-activated runs cover every width; in-process configure_
      // calls only reach backends living in this image, e.g. --simd 64.)
      if (TWM_FAILPOINT("page.alloc")) throw std::bad_alloc();
      slot = std::make_unique<Page>();
      ++page_allocs_;
    }
    materialized_.push_back(pi);
    pages_peak_ = std::max(pages_peak_, materialized_.size());
    return *slot;
  }

  // Materializes a background page in scalar form.
  Page& materialize_scalar(std::size_t pi) {
    Page& p = acquire_page(pi);
    p.packed = false;
    p.bits.assign(width_, 0);
    if (bg_bits_)
      std::copy(bg_bits_ + pi * width_, bg_bits_ + (pi + 1) * width_, p.bits.begin());
    else
      std::copy(pattern_limbs_.begin(), pattern_limbs_.end(), p.bits.begin());
    return p;
  }

  // Materializes (or promotes) a page to the full lane-block form.
  Page& materialize_packed(std::size_t pi) {
    Page* p = table_[pi].get();
    if (p && p->packed) return *p;
    const bool from_scalar = p != nullptr;
    if (!p) p = &acquire_page(pi);
    p->cells.resize(kMemPageWords * width_);
    const std::size_t base_bit = pi * kMemPageWords * width_;
    for (std::size_t pos = 0; pos < kMemPageWords * width_; ++pos) {
      bool bit;
      if (from_scalar)
        bit = get_limb_bit(p->bits.data(), pos);
      else if (bg_bits_)
        bit = get_limb_bit(bg_bits_, base_bit + pos);
      else
        bit = get_limb_bit(pattern_limbs_.data(), pos);
      p->cells[pos] = bit ? block_ones<Block>() : Block{};
    }
    p->bits.clear();
    if (p->buckets.size() != kBucketKinds * kMemPageWords)
      p->buckets.resize(kBucketKinds * kMemPageWords);
    p->packed = true;
    ++packed_pages_;
    packed_pages_peak_ = std::max(packed_pages_peak_, packed_pages_);
    return *p;
  }

  // Releases every materialized page to the free-list; the whole memory
  // reads as the background afterwards.  Bucket entries are cleared here so
  // recycled pages come back empty (capacity retained — no allocation).
  void drop_pages() {
    for (const std::size_t pi : materialized_) {
      std::unique_ptr<Page>& slot = table_[pi];
      Page& p = *slot;
      if (p.packed) {
        for (auto& b : p.buckets) b.clear();
        p.nonempty.fill(0);
        p.cells.clear();
        p.packed = false;
      }
      p.bits.clear();
      free_.push_back(std::move(slot));
    }
    materialized_.clear();
    packed_pages_ = 0;
  }

  // After a background switch: every live fault footprint is re-packed and
  // re-indexed (injection order preserved), then statics re-enforced — the
  // same result as the dense simulator's O(words) broadcast fill.
  void reset_to_background() {
    drop_pages();
    for (std::uint32_t i = 0; i < faults_.size(); ++i) {
      if (retired_[i]) continue;
      const Fault& f = faults_[i].fault;
      materialize_footprint(f);
      if (f.cls != FaultClass::RET) index_fault_buckets(i);
    }
    for (std::size_t e = 0; e < ret_entries_.size(); ++e) {
      if (ret_entries_[e].dead) continue;
      const Fault& f = faults_[ret_entries_[e].idx].fault;
      bucket_push(f.victim.word, kRet, static_cast<std::uint32_t>(e));
    }
    enforce_static_faults();
  }

  void set_background_bits(const std::uint64_t* bits) {
    bg_bits_ = bits;
    reset_to_background();
  }

  // Per-word baseline bits, padded to whole pages; consumes the generator
  // exactly like the scalar Memory::fill_random (next_word per word).
  void generate_bits(Rng& rng, std::vector<std::uint64_t>& bits) {
    bits.assign(table_.size() * width_, 0);
    for (std::size_t a = 0; a < words_; ++a)
      for (unsigned j = 0; j < width_; ++j)
        set_limb_bit(bits.data(), a * width_ + j, rng.next_bool());
  }

  void materialize_footprint(const Fault& f) {
    materialize_packed(f.victim.word >> kMemPageShift);
    if (f.is_coupling() || f.cls == FaultClass::AFaw)
      materialize_packed(f.aggressor.word >> kMemPageShift);
  }

  // Registers a non-RET fault in its page buckets (RET buckets hold
  // ret_entries_ positions and are handled by the callers).
  void index_fault_buckets(std::uint32_t idx) {
    const Fault& f = faults_[idx].fault;
    switch (f.cls) {
      case FaultClass::SAF: bucket_push(f.victim.word, kSaf, idx); break;
      case FaultClass::TF: bucket_push(f.victim.word, kTf, idx); break;
      case FaultClass::CFst:
        bucket_push(f.aggressor.word, kCfst, idx);
        if (f.victim.word != f.aggressor.word) bucket_push(f.victim.word, kCfst, idx);
        break;
      case FaultClass::CFid:
      case FaultClass::CFin: bucket_push(f.aggressor.word, kDyn, idx); break;
      case FaultClass::RET: break;
      case FaultClass::AFna:
      case FaultClass::AFaw: bucket_push(f.victim.word, kAf, idx); break;
    }
  }

  // Appends to the bucket of a word known to live on a packed page (fault
  // footprints), keeping the page's nonempty bitmap in sync.
  void bucket_push(std::size_t word, unsigned kind, std::uint32_t value) {
    Page& p = *table_[word >> kMemPageShift];
    const std::size_t local = word & kMemPageMask;
    p.buckets[kind * kMemPageWords + local].push_back(value);
    p.nonempty[kind] |= std::uint64_t{1} << local;
  }
  // Removes one index from a word's bucket (bitmap kept in sync).
  void bucket_unindex(std::size_t word, unsigned kind, std::uint32_t idx) {
    Page& p = *table_[word >> kMemPageShift];
    const std::size_t local = word & kMemPageMask;
    std::vector<std::uint32_t>& b = p.buckets[kind * kMemPageWords + local];
    unindex(b, idx);
    if (b.empty()) p.nonempty[kind] &= ~(std::uint64_t{1} << local);
  }
  const std::vector<std::uint32_t>& bucket_or_empty(std::size_t word, unsigned kind) const {
    static const std::vector<std::uint32_t> kEmpty;
    const Page* p = table_[word >> kMemPageShift].get();
    if (!p || !p->packed || !bucket_nonempty(*p, kind, word & kMemPageMask)) return kEmpty;
    return p->buckets[kind * kMemPageWords + (word & kMemPageMask)];
  }

  // Cell of a word known to live on a packed page (fault footprints are
  // materialized packed at inject time and stay packed).
  Block& cell(const CellAddr& c) {
    return table_[c.word >> kMemPageShift]->cells[(c.word & kMemPageMask) * width_ + c.bit];
  }
  // Forces `value` into the cell for the lanes in `mask`, leaving the other
  // lanes untouched.
  static void force(Block& cell, bool value, const Block& mask) {
    cell = value ? (cell | mask) : (cell & ~mask);
  }

  void touch(std::size_t w) {
    for (const std::size_t t : touched_)
      if (t == w) return;
    touched_.push_back(w);
  }

  // Removes one index from a bucket, preserving the injection order of the
  // remaining entries (the order static enforcement must apply in).
  static void unindex(std::vector<std::uint32_t>& bucket, std::uint32_t idx) {
    for (std::size_t i = 0; i < bucket.size(); ++i)
      if (bucket[i] == idx) {
        bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
  }

  // One CFst application (lane-masked); `i` indexes faults_.
  void apply_cfst(std::uint32_t i) {
    const LaneFault& lf = faults_[i];
    const Fault& f = lf.fault;
    const Block agg = cell(f.aggressor);
    const Block active = (f.state ? agg : ~agg) & lf.lanes;
    force(cell(f.victim), f.value, active);
  }

  // CFst chains are resolved in injection order; two passes give a fixpoint
  // for all single-fault and non-cyclic multi-fault configurations (the
  // same contract as the scalar Memory).  Then SAF dominance.
  void apply_statics(const std::vector<std::uint32_t>& cfst,
                     const std::vector<std::uint32_t>& saf) {
    for (int pass = 0; pass < 2; ++pass)
      for (const std::uint32_t i : cfst) apply_cfst(i);
    for (const std::uint32_t i : saf)
      force(cell(faults_[i].fault.victim), faults_[i].fault.value, faults_[i].lanes);
  }

  // Global enforcement — inject/load/fill disturb arbitrary state.
  void enforce_static_faults() { apply_statics(cfst_all_, saf_all_); }

  // Enforcement restricted to the statics whose aggressor or victim lives
  // in a word the current operation disturbed.  Correct only under the
  // pairwise-disjoint lane masks the campaign injects (no cross-fault
  // chains possible — see the header comment); any overlap falls back to
  // the global two-pass walk.
  void enforce_statics_touched() {
    if (cfst_all_.empty() && saf_all_.empty()) return;
    if (lanes_overlap_) {
      enforce_static_faults();
      return;
    }
    if (touched_.size() == 1) {
      const std::size_t w = touched_.front();
      apply_statics(bucket_or_empty(w, kCfst), bucket_or_empty(w, kSaf));
      return;
    }
    merge_cfst_.clear();
    merge_saf_.clear();
    for (const std::size_t w : touched_) {
      for (const std::uint32_t i : bucket_or_empty(w, kCfst))
        if (!seen_[i]) {
          seen_[i] = 1;
          merge_cfst_.push_back(i);
        }
      for (const std::uint32_t i : bucket_or_empty(w, kSaf))
        if (!seen_[i]) {
          seen_[i] = 1;
          merge_saf_.push_back(i);
        }
    }
    // Index order == injection order, the order the passes must apply in.
    std::sort(merge_cfst_.begin(), merge_cfst_.end());
    std::sort(merge_saf_.begin(), merge_saf_.end());
    apply_statics(merge_cfst_, merge_saf_);
    for (const std::uint32_t i : merge_cfst_) seen_[i] = 0;
    for (const std::uint32_t i : merge_saf_) seen_[i] = 0;
  }

  std::size_t words_;
  unsigned width_;

  // [addr >> kMemPageShift] -> page, or null while the page still reads as
  // the background.  O(words / 64) pointers — the only per-word-scaling
  // allocation left.
  std::vector<std::unique_ptr<Page>> table_;
  std::vector<std::unique_ptr<Page>> free_;  // recycled pages (capacity kept)
  std::vector<std::size_t> materialized_;    // page indexes with a live page
  std::size_t pages_peak_ = 0;
  std::size_t packed_pages_ = 0;  // subset of materialized_ in lane-block form
  std::size_t packed_pages_peak_ = 0;
  std::uint64_t page_allocs_ = 0;

  // Background: what an unmaterialized page reads as.  Either a broadcast
  // pattern (pattern_limbs_ caches one page worth of it) or a per-word bit
  // baseline (seeded/loaded; bg_bits_ points into baselines_ or
  // loaded_bits_ — this object's own storage, hence no copying).
  BitVec bg_pattern_;
  std::vector<std::uint64_t> pattern_limbs_;
  const std::uint64_t* bg_bits_ = nullptr;
  std::vector<std::uint64_t> loaded_bits_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> baselines_;

  std::vector<LaneFault> faults_;
  std::vector<std::uint32_t> cfst_all_, saf_all_;  // statics, injection order
  std::vector<RetEntry> ret_entries_;
  Block lanes_union_{};          // OR of every injected lane mask
  bool lanes_overlap_ = false;   // two faults share a lane -> global statics
  Block retired_union_{};        // lanes handed to retire_lanes so far
  std::vector<char> retired_;    // [fault idx] dropped via retire_lanes

  std::vector<Block> old_, next_;  // write-path scratch (one word each)
  std::vector<Block> read_buf_;    // AF-merged / broadcast read scratch
  mutable std::vector<Block> peek_buf_;             // peek() expansion scratch
  std::vector<std::size_t> touched_;                // words disturbed by the current op
  std::vector<std::uint32_t> merge_cfst_, merge_saf_;  // candidate-merge scratch
  std::vector<char> seen_;                          // [fault idx] merge dedup flag
  std::uint64_t ops_ = 0;
};

// The PR 1 backend: 64 universes per std::uint64_t lane vector.
using PackedMemory = PackedMemoryT<std::uint64_t>;

extern template class PackedMemoryT<std::uint64_t>;

}  // namespace twm

#endif  // TWM_MEMSIM_PACKED_MEMORY_H
