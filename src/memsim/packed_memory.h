// Bit-parallel batched fault simulator: one fault universe per lane of a
// lane block (64, 256 or 512 universes per machine pass).
//
// PackedMemoryT<Block> models the same N x B functional RAM as Memory
// (memory.h), but stores each cell (word, bit) as a lane block: lane k of
// the stored Block is the cell's value in universe k.  Block is any type
// satisfying the concept in memsim/lane_block.h — std::uint64_t (the
// original 64-lane layout; PackedMemory aliases it) or LaneBlock<K> for
// K x 64 lanes.  Faults are injected with a Block-typed lane mask
// restricting them to a subset of lanes, so one memory simulates up to
// block_lanes_v<Block> different fault configurations — by convention lane
// 0 is kept fault-free (the golden universe batched coverage evaluation
// uses as a self-check).
//
// The write semantics are the documented five steps of Memory::write
// (transition suppression, commit, CFid/CFin aggressor-fire, CFst
// enforcement, SAF dominance) plus RET aging and the AF decoder-fault
// port distortions, each implemented as lane-masked bitwise operations
// instead of per-fault branches; faults are applied in injection order, so
// every lane observes exactly the effect sequence the scalar simulator
// would produce for its fault subset (tests/packed_memory_test.cpp proves
// this differentially).
//
// Wide batches carry proportionally more faults per memory, so the port
// operations must not scan the whole fault list: faults are indexed by
// class and address at injection time, and static-fault enforcement after
// a write walks only the CFst/SAF faults whose aggressor or victim lives
// in a word the write disturbed.  Entries the walk skips are idempotent
// no-ops: statics were already enforced after the previous operation,
// nothing in their words changed since, and — the load-bearing condition —
// no *other* fault's effect can re-activate them, because every injected
// lane mask is pairwise disjoint (one fault per universe, the campaign
// contract), so cross-fault CFst chains cannot exist.  The moment two
// faults share a lane (multi-fault universes, as the differential tests
// build) the simulator detects the overlap at inject time and falls back
// to the global two-pass enforcement the scalar Memory performs.  This
// keeps per-write fault work proportional to the faults the write can
// actually disturb, which is what lets 256/512-lane blocks turn into real
// throughput instead of longer fault scans.
//
// A packed word is passed around as `const Block*` / `Block*` spanning
// word_width() entries; entry j is bit j of the word across all lanes.
// Data identical in every lane ("broadcast") represents fault-free inputs,
// e.g. absolute march write data.
//
// The whole implementation lives in this header: each SIMD width is
// compiled in its own translation unit with the matching arch flags (see
// src/analysis/campaign_w256.cpp / campaign_w512.cpp) so the per-block
// loops auto-vectorize; packed_memory.cpp pins the 64-lane instantiation.
#ifndef TWM_MEMSIM_PACKED_MEMORY_H
#define TWM_MEMSIM_PACKED_MEMORY_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "memsim/fault.h"
#include "memsim/lane_block.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace twm {

inline constexpr unsigned kPackedLanes = 64;

// Bit k set = the fault / event applies to (happened in) lane k.  The
// 64-lane backend's mask type; wide backends use their Block as the mask.
using LaneMask = std::uint64_t;

// Broadcasts a lane-uniform (fault-free) word into packed form: entry j is
// the all-ones or all-zero lane block of the word's bit j.
template <class Block>
std::vector<Block> broadcast_block(const BitVec& word) {
  std::vector<Block> out(word.width());
  for (unsigned j = 0; j < word.width(); ++j)
    out[j] = word.get(j) ? block_ones<Block>() : Block{};
  return out;
}

inline std::vector<std::uint64_t> broadcast_word(const BitVec& word) {
  return broadcast_block<std::uint64_t>(word);
}

template <class Block>
class PackedMemoryT {
 public:
  PackedMemoryT(std::size_t num_words, unsigned word_width)
      : words_(num_words),
        width_(word_width),
        state_(num_words * word_width),
        tf_at_(num_words),
        dyn_at_(num_words),
        af_at_(num_words),
        ret_at_(num_words),
        cfst_at_(num_words),
        saf_at_(num_words),
        old_(word_width),
        next_(word_width),
        read_buf_(word_width) {
    if (num_words == 0 || word_width == 0)
      throw std::invalid_argument("PackedMemory: empty geometry");
  }

  unsigned word_width() const { return width_; }
  std::size_t num_words() const { return words_; }

  // --- the memory port -------------------------------------------------
  // Returned pointer spans word_width() lane blocks and stays valid until
  // the next port operation (read/write/elapse) or load to the memory.
  const Block* read(std::size_t addr) {
    ++ops_;
    if (addr >= words_) throw std::out_of_range("PackedMemory::read");
    const Block* word = &state_[addr * width_];
    if (af_at_[addr].empty()) return word;
    // AF port distortion, per fault in injection order: AFna lanes see the
    // floating bus (zeros), AFaw lanes the wired-AND of every decoded cell.
    std::copy(word, word + width_, read_buf_.begin());
    for (const std::uint32_t i : af_at_[addr]) {
      const LaneFault& lf = faults_[i];
      const Block keep = ~lf.lanes;
      if (lf.fault.cls == FaultClass::AFna) {
        for (unsigned j = 0; j < width_; ++j) read_buf_[j] &= keep;
      } else {
        for (unsigned j = 0; j < width_; ++j)
          read_buf_[j] &= keep | cell({lf.fault.aggressor.word, j});
      }
    }
    return read_buf_.data();
  }

  // `data` spans word_width() lane blocks (per-lane write data).
  void write(std::size_t addr, const Block* data) {
    ++ops_;
    if (addr >= words_) throw std::out_of_range("PackedMemory::write");
    Block* word = &state_[addr * width_];
    std::copy(word, word + width_, old_.begin());
    std::copy(data, data + width_, next_.begin());
    touched_.clear();
    touched_.push_back(addr);

    // Step 0: an AFna address decodes to no cell — the write is lost in the
    // faulted lanes (the cells keep their old value, so the later steps see
    // no transitions there).
    for (const std::uint32_t i : af_at_[addr]) {
      const LaneFault& lf = faults_[i];
      if (lf.fault.cls != FaultClass::AFna) continue;
      for (unsigned j = 0; j < width_; ++j)
        next_[j] = (next_[j] & ~lf.lanes) | (old_[j] & lf.lanes);
    }

    // Step 1: transition faults suppress the failing transition (per lane).
    for (const std::uint32_t i : tf_at_[addr]) {
      const LaneFault& lf = faults_[i];
      const Fault& f = lf.fault;
      const Block o = old_[f.victim.bit];
      const Block n = next_[f.victim.bit];
      const Block transitioning = f.trans == Transition::Up ? (~o & n) : (o & ~n);
      const Block suppressed = transitioning & lf.lanes;
      next_[f.victim.bit] = (n & ~suppressed) | (o & suppressed);
    }

    // Step 2: commit.
    std::copy(next_.begin(), next_.end(), word);

    // Step 3: dynamic coupling faults triggered by aggressor transitions
    // caused by this write.  The aggressor is sampled from the live state,
    // so earlier coupling effects on the same word are seen — matching the
    // scalar simulator's fault-by-fault ordering per lane.
    for (const std::uint32_t i : dyn_at_[addr]) {
      const LaneFault& lf = faults_[i];
      const Fault& f = lf.fault;
      const Block o = old_[f.aggressor.bit];
      const Block n = cell(f.aggressor);
      const Block transitioning = f.trans == Transition::Up ? (~o & n) : (o & ~n);
      const Block fired = transitioning & lf.lanes;
      if (f.cls == FaultClass::CFid)
        force(cell(f.victim), f.value, fired);
      else
        cell(f.victim) ^= fired;
      touch(f.victim.word);
    }

    // Step 3.5: an AFaw address additionally decodes to the alias word —
    // the committed value is raw-copied there in the faulted lanes (no
    // TF/coupling interplay at the target; statics are re-enforced below).
    for (const std::uint32_t i : af_at_[addr]) {
      const LaneFault& lf = faults_[i];
      if (lf.fault.cls != FaultClass::AFaw) continue;
      const Block keep = ~lf.lanes;
      for (unsigned j = 0; j < width_; ++j) {
        Block& target = cell({lf.fault.aggressor.word, j});
        target = (target & keep) | (cell({addr, j}) & lf.lanes);
      }
      touch(lf.fault.aggressor.word);
    }

    // A write refreshes the retention clock of any leaky cell it targets
    // (the row strobe happens even when a decoder fault loses the data).
    // The refresh is lane-independent: every lane performs the same write.
    for (const std::uint32_t p : ret_at_[addr]) ret_entries_[p].age = 0;

    // Steps 4 and 5, over the candidates the touched words can reach.
    enforce_statics_touched();
  }

  void elapse(unsigned units) {
    if (ret_entries_.empty()) return;
    touched_.clear();
    for (RetEntry& e : ret_entries_) {
      if (e.dead) continue;
      const LaneFault& lf = faults_[e.idx];
      e.age += units;
      if (e.age >= lf.fault.retention) force(cell(lf.fault.victim), lf.fault.value, lf.lanes);
      touch(lf.fault.victim.word);
    }
    // Decay may expose cells to static coupling conditions.
    enforce_statics_touched();
  }

  // --- fault management ------------------------------------------------
  void inject(const Fault& f, Block lanes) {
    auto check = [this](const CellAddr& c) {
      if (c.word >= words_ || c.bit >= width_)
        throw std::out_of_range("PackedMemory::inject: cell outside memory");
    };
    if (f.is_decoder()) {
      if (f.victim.word >= words_ || (f.cls == FaultClass::AFaw && f.aggressor.word >= words_))
        throw std::out_of_range("PackedMemory::inject: address outside memory");
      if (f.cls == FaultClass::AFaw && f.aggressor.word == f.victim.word)
        throw std::invalid_argument("PackedMemory::inject: alias == address");
    } else {
      check(f.victim);
      if (f.is_coupling()) {
        check(f.aggressor);
        if (f.aggressor == f.victim)
          throw std::invalid_argument("PackedMemory::inject: aggressor == victim");
      }
    }
    const std::uint32_t idx = static_cast<std::uint32_t>(faults_.size());
    // Lane overlap disables the disjoint-lanes fast path for statics.
    if (block_any(lanes & lanes_union_)) lanes_overlap_ = true;
    lanes_union_ |= lanes;
    // Re-injecting into a previously retired lane revives it: the new
    // fault's lanes leave the retired set, or a later retire_lanes call
    // would silently drop the live fault.
    retired_union_ &= ~lanes;
    faults_.push_back({f, lanes});
    seen_.push_back(0);
    retired_.push_back(0);
    switch (f.cls) {
      case FaultClass::SAF:
        saf_all_.push_back(idx);
        saf_at_[f.victim.word].push_back(idx);
        break;
      case FaultClass::TF: tf_at_[f.victim.word].push_back(idx); break;
      case FaultClass::CFst:
        cfst_all_.push_back(idx);
        cfst_at_[f.aggressor.word].push_back(idx);
        if (f.victim.word != f.aggressor.word) cfst_at_[f.victim.word].push_back(idx);
        break;
      case FaultClass::CFid:
      case FaultClass::CFin: dyn_at_[f.aggressor.word].push_back(idx); break;
      case FaultClass::RET:
        ret_at_[f.victim.word].push_back(static_cast<std::uint32_t>(ret_entries_.size()));
        ret_entries_.push_back({idx, 0});
        break;
      case FaultClass::AFna:
      case FaultClass::AFaw: af_at_[f.victim.word].push_back(idx); break;
    }
    // Enforce the new fault's static condition.  With pairwise-disjoint
    // lane masks only the new fault itself can be newly active (its lanes
    // hold no other fault to chain with, and it cannot disturb other
    // lanes), so batch construction stays O(faults) instead of the
    // O(faults^2) a global re-enforcement per inject would cost.  Any lane
    // overlap falls back to the scalar Memory's global walk.
    if (lanes_overlap_) {
      enforce_static_faults();
    } else if (f.cls == FaultClass::SAF) {
      force(cell(f.victim), f.value, lanes);
    } else if (f.cls == FaultClass::CFst) {
      apply_cfst(idx);
    }
  }

  void clear_faults() {
    faults_.clear();
    seen_.clear();
    retired_.clear();
    saf_all_.clear();
    cfst_all_.clear();
    ret_entries_.clear();
    for (auto& v : tf_at_) v.clear();
    for (auto& v : dyn_at_) v.clear();
    for (auto& v : af_at_) v.clear();
    for (auto& v : ret_at_) v.clear();
    for (auto& v : cfst_at_) v.clear();
    for (auto& v : saf_at_) v.clear();
    lanes_union_ = Block{};
    lanes_overlap_ = false;
    retired_union_ = Block{};
  }

  // Retires (drops) every fault whose lane mask lies entirely inside the
  // accumulated `lanes` set: its index-bucket entries are removed, so the
  // port operations stop paying for it — classic fault dropping, per lane.
  //
  // Retiring is only sound when the caller no longer cares how the retired
  // lanes evolve (their verdicts are final and monotone — the repack
  // scheduler's settle-exit contract): from this call on the retired lanes
  // behave as if their fault was never injected, while the other lanes are
  // unaffected (lane masks are pairwise disjoint in campaign use).  The
  // batch stays live: inject() keeps working afterwards, so a freed lane
  // can be reused for a new fault (lane reuse is detected as an overlap
  // with lanes_union_, which conservatively re-enables the global
  // static-enforcement walk — correct, just slower).
  void retire_lanes(Block lanes) {
    retired_union_ |= lanes;
    if (retired_.size() < faults_.size()) retired_.resize(faults_.size(), 0);
    for (std::uint32_t i = 0; i < faults_.size(); ++i) {
      if (retired_[i]) continue;
      const LaneFault& lf = faults_[i];
      if (block_any(lf.lanes & ~retired_union_)) continue;  // still-live lanes
      retired_[i] = 1;
      const Fault& f = lf.fault;
      switch (f.cls) {
        case FaultClass::SAF:
          unindex(saf_all_, i);
          unindex(saf_at_[f.victim.word], i);
          break;
        case FaultClass::TF: unindex(tf_at_[f.victim.word], i); break;
        case FaultClass::CFst:
          unindex(cfst_all_, i);
          unindex(cfst_at_[f.aggressor.word], i);
          if (f.victim.word != f.aggressor.word) unindex(cfst_at_[f.victim.word], i);
          break;
        case FaultClass::CFid:
        case FaultClass::CFin: unindex(dyn_at_[f.aggressor.word], i); break;
        case FaultClass::RET:
          for (std::size_t p = 0; p < ret_entries_.size(); ++p)
            if (ret_entries_[p].idx == i) {
              ret_entries_[p].dead = true;
              unindex(ret_at_[f.victim.word], static_cast<std::uint32_t>(p));
            }
          break;
        case FaultClass::AFna:
        case FaultClass::AFaw: unindex(af_at_[f.victim.word], i); break;
      }
    }
  }

  // --- backdoor access (broadcast: every lane gets the same contents) --
  void load(const std::vector<BitVec>& contents) {
    if (contents.size() != words_)
      throw std::invalid_argument("PackedMemory::load: word count mismatch");
    for (const auto& w : contents)
      if (w.width() != width_) throw std::invalid_argument("PackedMemory::load: width mismatch");
    for (std::size_t a = 0; a < words_; ++a) broadcast_into(contents[a], &state_[a * width_]);
    enforce_static_faults();
  }

  void fill(const BitVec& pattern) {
    if (pattern.width() != width_)
      throw std::invalid_argument("PackedMemory::fill: width mismatch");
    for (std::size_t a = 0; a < words_; ++a) broadcast_into(pattern, &state_[a * width_]);
    enforce_static_faults();
  }

  void fill_random(Rng& rng) {
    // Consumes the generator exactly like Memory::fill_random, so the same
    // seed broadcasts the same contents the scalar evaluation path sees.
    for (std::size_t a = 0; a < words_; ++a)
      broadcast_into(rng.next_word(width_), &state_[a * width_]);
    enforce_static_faults();
  }

  // Lane extraction for differential checking against the scalar Memory.
  bool lane_bit(unsigned lane, std::size_t addr, unsigned bit) const {
    if (lane >= block_lanes_v<Block>) throw std::out_of_range("PackedMemory::lane_bit");
    return block_bit(state_.at(addr * width_ + bit), lane);
  }
  BitVec lane_word(unsigned lane, std::size_t addr) const {
    BitVec v(width_);
    for (unsigned j = 0; j < width_; ++j) v.set(j, lane_bit(lane, addr, j));
    return v;
  }

  // Direct cell access (no port-op accounting, no AF port distortion).
  const Block* peek(std::size_t addr) const { return &state_[addr * width_]; }

  std::uint64_t op_count() const { return ops_; }
  void reset_op_count() { ops_ = 0; }

 private:
  struct LaneFault {
    Fault fault;
    Block lanes{};
  };
  struct RetEntry {
    std::uint32_t idx;  // into faults_
    unsigned age;       // pause units since the cell's last write
    bool dead = false;  // retired via retire_lanes; skipped by elapse()
  };

  Block& cell(const CellAddr& c) { return state_[c.word * width_ + c.bit]; }
  const Block& cell(const CellAddr& c) const { return state_[c.word * width_ + c.bit]; }
  // Broadcast without the temporary vector broadcast_block allocates.
  void broadcast_into(const BitVec& word, Block* dst) const {
    for (unsigned j = 0; j < width_; ++j) dst[j] = word.get(j) ? block_ones<Block>() : Block{};
  }
  // Forces `value` into the cell for the lanes in `mask`, leaving the other
  // lanes untouched.
  static void force(Block& cell, bool value, const Block& mask) {
    cell = value ? (cell | mask) : (cell & ~mask);
  }

  void touch(std::size_t w) {
    for (const std::size_t t : touched_)
      if (t == w) return;
    touched_.push_back(w);
  }

  // Removes one index from a bucket, preserving the injection order of the
  // remaining entries (the order static enforcement must apply in).
  static void unindex(std::vector<std::uint32_t>& bucket, std::uint32_t idx) {
    for (std::size_t i = 0; i < bucket.size(); ++i)
      if (bucket[i] == idx) {
        bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
  }

  // One CFst application (lane-masked); `i` indexes faults_.
  void apply_cfst(std::uint32_t i) {
    const LaneFault& lf = faults_[i];
    const Fault& f = lf.fault;
    const Block agg = cell(f.aggressor);
    const Block active = (f.state ? agg : ~agg) & lf.lanes;
    force(cell(f.victim), f.value, active);
  }

  // CFst chains are resolved in injection order; two passes give a fixpoint
  // for all single-fault and non-cyclic multi-fault configurations (the
  // same contract as the scalar Memory).  Then SAF dominance.
  void apply_statics(const std::vector<std::uint32_t>& cfst,
                     const std::vector<std::uint32_t>& saf) {
    for (int pass = 0; pass < 2; ++pass)
      for (const std::uint32_t i : cfst) apply_cfst(i);
    for (const std::uint32_t i : saf)
      force(cell(faults_[i].fault.victim), faults_[i].fault.value, faults_[i].lanes);
  }

  // Global enforcement — inject/load/fill disturb arbitrary state.
  void enforce_static_faults() { apply_statics(cfst_all_, saf_all_); }

  // Enforcement restricted to the statics whose aggressor or victim lives
  // in a word the current operation disturbed.  Correct only under the
  // pairwise-disjoint lane masks the campaign injects (no cross-fault
  // chains possible — see the header comment); any overlap falls back to
  // the global two-pass walk.
  void enforce_statics_touched() {
    if (cfst_all_.empty() && saf_all_.empty()) return;
    if (lanes_overlap_) {
      enforce_static_faults();
      return;
    }
    if (touched_.size() == 1) {
      const std::size_t w = touched_.front();
      apply_statics(cfst_at_[w], saf_at_[w]);
      return;
    }
    merge_cfst_.clear();
    merge_saf_.clear();
    for (const std::size_t w : touched_) {
      for (const std::uint32_t i : cfst_at_[w])
        if (!seen_[i]) {
          seen_[i] = 1;
          merge_cfst_.push_back(i);
        }
      for (const std::uint32_t i : saf_at_[w])
        if (!seen_[i]) {
          seen_[i] = 1;
          merge_saf_.push_back(i);
        }
    }
    // Index order == injection order, the order the passes must apply in.
    std::sort(merge_cfst_.begin(), merge_cfst_.end());
    std::sort(merge_saf_.begin(), merge_saf_.end());
    apply_statics(merge_cfst_, merge_saf_);
    for (const std::uint32_t i : merge_cfst_) seen_[i] = 0;
    for (const std::uint32_t i : merge_saf_) seen_[i] = 0;
  }

  std::size_t words_;
  unsigned width_;
  std::vector<Block> state_;  // [addr * width_ + bit] -> lane block
  std::vector<LaneFault> faults_;

  // Fault indexes (built incrementally at inject): per-address buckets of
  // indexes into faults_, in injection order.
  std::vector<std::vector<std::uint32_t>> tf_at_;   // TF by victim word
  std::vector<std::vector<std::uint32_t>> dyn_at_;  // CFid/CFin by aggressor word
  std::vector<std::vector<std::uint32_t>> af_at_;   // AFna/AFaw by faulty address
  std::vector<std::vector<std::uint32_t>> ret_at_;  // RET by victim word -> ret_entries_ pos
  std::vector<std::uint32_t> cfst_all_, saf_all_;   // statics, injection order
  std::vector<std::vector<std::uint32_t>> cfst_at_;  // CFst by aggressor/victim word
  std::vector<std::vector<std::uint32_t>> saf_at_;   // SAF by victim word
  std::vector<RetEntry> ret_entries_;
  Block lanes_union_{};          // OR of every injected lane mask
  bool lanes_overlap_ = false;   // two faults share a lane -> global statics
  Block retired_union_{};        // lanes handed to retire_lanes so far
  std::vector<char> retired_;    // [fault idx] dropped via retire_lanes

  std::vector<Block> old_, next_;  // write-path scratch (one word each)
  std::vector<Block> read_buf_;    // AF-merged read scratch
  std::vector<std::size_t> touched_;                // words disturbed by the current op
  std::vector<std::uint32_t> merge_cfst_, merge_saf_;  // candidate-merge scratch
  std::vector<char> seen_;                          // [fault idx] merge dedup flag
  std::uint64_t ops_ = 0;
};

// The PR 1 backend: 64 universes per std::uint64_t lane vector.
using PackedMemory = PackedMemoryT<std::uint64_t>;

extern template class PackedMemoryT<std::uint64_t>;

}  // namespace twm

#endif  // TWM_MEMSIM_PACKED_MEMORY_H
