// Pins the 64-lane instantiation of the packed simulator into the base
// library (compiled without extra arch flags — it must run on any x86-64).
// The 256/512-lane instantiations live in src/analysis/campaign_w256.cpp /
// campaign_w512.cpp, compiled with -mavx2 / -mavx512f.
#include "memsim/packed_memory.h"

namespace twm {

template class PackedMemoryT<std::uint64_t>;

}  // namespace twm
