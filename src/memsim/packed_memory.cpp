#include "memsim/packed_memory.h"

#include <algorithm>
#include <stdexcept>

namespace twm {

std::vector<std::uint64_t> broadcast_word(const BitVec& word) {
  std::vector<std::uint64_t> out(word.width());
  for (unsigned j = 0; j < word.width(); ++j) out[j] = word.get(j) ? ~0ull : 0ull;
  return out;
}

PackedMemory::PackedMemory(std::size_t num_words, unsigned word_width)
    : words_(num_words),
      width_(word_width),
      state_(num_words * word_width, 0),
      old_(word_width, 0),
      next_(word_width, 0) {
  if (num_words == 0 || word_width == 0)
    throw std::invalid_argument("PackedMemory: empty geometry");
}

const std::uint64_t* PackedMemory::read(std::size_t addr) {
  ++ops_;
  if (addr >= words_) throw std::out_of_range("PackedMemory::read");
  return &state_[addr * width_];
}

void PackedMemory::write(std::size_t addr, const std::uint64_t* data) {
  ++ops_;
  if (addr >= words_) throw std::out_of_range("PackedMemory::write");
  std::uint64_t* word = &state_[addr * width_];
  std::copy(word, word + width_, old_.begin());
  std::copy(data, data + width_, next_.begin());

  // Step 1: transition faults suppress the failing transition (per lane).
  for (const LaneFault& lf : faults_) {
    const Fault& f = lf.fault;
    if (f.cls != FaultClass::TF || f.victim.word != addr) continue;
    const std::uint64_t o = old_[f.victim.bit];
    const std::uint64_t n = next_[f.victim.bit];
    const std::uint64_t transitioning = f.trans == Transition::Up ? (~o & n) : (o & ~n);
    const std::uint64_t suppressed = transitioning & lf.lanes;
    next_[f.victim.bit] = (n & ~suppressed) | (o & suppressed);
  }

  // Step 2: commit.
  std::copy(next_.begin(), next_.end(), word);

  // Step 3: dynamic coupling faults triggered by aggressor transitions
  // caused by this write.  The aggressor is sampled from the live state, so
  // earlier coupling effects on the same word are seen — matching the
  // scalar simulator's fault-by-fault ordering per lane.
  for (const LaneFault& lf : faults_) {
    const Fault& f = lf.fault;
    if ((f.cls != FaultClass::CFid && f.cls != FaultClass::CFin) || f.aggressor.word != addr)
      continue;
    const std::uint64_t o = old_[f.aggressor.bit];
    const std::uint64_t n = cell(f.aggressor);
    const std::uint64_t transitioning = f.trans == Transition::Up ? (~o & n) : (o & ~n);
    const std::uint64_t fired = transitioning & lf.lanes;
    if (f.cls == FaultClass::CFid)
      force(cell(f.victim), f.value, fired);
    else
      cell(f.victim) ^= fired;
  }

  // A write refreshes the retention clock of any leaky cell it targets.
  // The refresh is lane-independent: every lane performs the same write.
  std::size_t ri = 0;
  for (const LaneFault& lf : faults_) {
    if (lf.fault.cls != FaultClass::RET) continue;
    if (lf.fault.victim.word == addr) ret_age_[ri] = 0;
    ++ri;
  }

  // Steps 4 and 5.
  enforce_static_faults();
}

void PackedMemory::elapse(unsigned units) {
  std::size_t ri = 0;
  for (const LaneFault& lf : faults_) {
    if (lf.fault.cls != FaultClass::RET) continue;
    ret_age_[ri] += units;
    if (ret_age_[ri] >= lf.fault.retention) force(cell(lf.fault.victim), lf.fault.value, lf.lanes);
    ++ri;
  }
  // Decay may expose cells to static coupling conditions.
  if (ri != 0) enforce_static_faults();
}

void PackedMemory::enforce_static_faults() {
  // CFst chains are resolved in injection order; two passes give a fixpoint
  // for all single-fault and non-cyclic multi-fault configurations (the
  // same contract as the scalar Memory).
  for (int pass = 0; pass < 2; ++pass) {
    for (const LaneFault& lf : faults_) {
      const Fault& f = lf.fault;
      if (f.cls != FaultClass::CFst) continue;
      const std::uint64_t agg = cell(f.aggressor);
      const std::uint64_t active = (f.state ? agg : ~agg) & lf.lanes;
      force(cell(f.victim), f.value, active);
    }
  }
  for (const LaneFault& lf : faults_) {
    if (lf.fault.cls == FaultClass::SAF) force(cell(lf.fault.victim), lf.fault.value, lf.lanes);
  }
}

void PackedMemory::inject(const Fault& f, LaneMask lanes) {
  auto check = [this](const CellAddr& c) {
    if (c.word >= words_ || c.bit >= width_)
      throw std::out_of_range("PackedMemory::inject: cell outside memory");
  };
  check(f.victim);
  if (f.is_coupling()) {
    check(f.aggressor);
    if (f.aggressor == f.victim)
      throw std::invalid_argument("PackedMemory::inject: aggressor == victim");
  }
  faults_.push_back({f, lanes});
  if (f.cls == FaultClass::RET) ret_age_.push_back(0);
  enforce_static_faults();
}

void PackedMemory::clear_faults() {
  faults_.clear();
  ret_age_.clear();
}

void PackedMemory::load(const std::vector<BitVec>& contents) {
  if (contents.size() != words_)
    throw std::invalid_argument("PackedMemory::load: word count mismatch");
  for (const auto& w : contents)
    if (w.width() != width_) throw std::invalid_argument("PackedMemory::load: width mismatch");
  for (std::size_t a = 0; a < words_; ++a) {
    const auto packed = broadcast_word(contents[a]);
    std::copy(packed.begin(), packed.end(), state_.begin() + a * width_);
  }
  enforce_static_faults();
}

void PackedMemory::fill(const BitVec& pattern) {
  if (pattern.width() != width_) throw std::invalid_argument("PackedMemory::fill: width mismatch");
  const auto packed = broadcast_word(pattern);
  for (std::size_t a = 0; a < words_; ++a)
    std::copy(packed.begin(), packed.end(), state_.begin() + a * width_);
  enforce_static_faults();
}

void PackedMemory::fill_random(Rng& rng) {
  // Consumes the generator exactly like Memory::fill_random, so the same
  // seed broadcasts the same contents the scalar evaluation path sees.
  for (std::size_t a = 0; a < words_; ++a) {
    const auto packed = broadcast_word(rng.next_word(width_));
    std::copy(packed.begin(), packed.end(), state_.begin() + a * width_);
  }
  enforce_static_faults();
}

bool PackedMemory::lane_bit(unsigned lane, std::size_t addr, unsigned bit) const {
  if (lane >= kPackedLanes) throw std::out_of_range("PackedMemory::lane_bit");
  return (state_.at(addr * width_ + bit) >> lane) & 1u;
}

BitVec PackedMemory::lane_word(unsigned lane, std::size_t addr) const {
  BitVec v(width_);
  for (unsigned j = 0; j < width_; ++j) v.set(j, lane_bit(lane, addr, j));
  return v;
}

}  // namespace twm
