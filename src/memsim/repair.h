// Word-level redundancy repair (built-in self-repair substrate).
//
// A RepairableMemory presents N logical words backed by N + S physical
// words; repair(addr) remaps a logical word onto the next free spare, as a
// row-redundancy fuse would.  Faults live in the *physical* memory, so
// remapping a defective word genuinely takes its defect out of service —
// unless the fault sits in the spare itself, which the retest after repair
// catches (and which tests/diagnosis_test.cpp exercises).
#ifndef TWM_MEMSIM_REPAIR_H
#define TWM_MEMSIM_REPAIR_H

#include <vector>

#include "memsim/memory.h"

namespace twm {

class RepairableMemory : public MemoryIf {
 public:
  // Physical geometry: logical_words + spare_words.
  RepairableMemory(std::size_t logical_words, std::size_t spare_words, unsigned word_width);

  unsigned word_width() const override { return phys_.word_width(); }
  std::size_t num_words() const override { return logical_; }

  BitVec read(std::size_t addr) override { return phys_.read(translate(addr)); }
  void write(std::size_t addr, const BitVec& data) override {
    phys_.write(translate(addr), data);
  }
  void elapse(unsigned units) override { phys_.elapse(units); }

  // Remaps `addr` onto the next free spare, preserving the logical content
  // (the spare is loaded with the current data through the port).  Returns
  // false when no spares remain.  Re-repairing an already remapped word
  // consumes a further spare.
  bool repair(std::size_t addr);

  std::size_t spares_left() const { return spares_left_; }
  bool is_remapped(std::size_t addr) const { return map_.at(addr) != addr; }

  // Access to the physical array (fault injection, inspection).
  Memory& physical() { return phys_; }
  const Memory& physical() const { return phys_; }

 private:
  std::size_t translate(std::size_t addr) const { return map_.at(addr); }

  std::size_t logical_;
  Memory phys_;
  std::vector<std::size_t> map_;
  std::size_t next_spare_;
  std::size_t spares_left_;
};

}  // namespace twm

#endif  // TWM_MEMSIM_REPAIR_H
