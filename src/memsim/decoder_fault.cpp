#include "memsim/decoder_fault.h"

#include <stdexcept>

namespace twm {

DecoderFaultMemory::DecoderFaultMemory(MemoryIf& inner, ReadMerge merge)
    : inner_(inner),
      merge_(merge),
      dead_(inner.num_words(), false),
      targets_(inner.num_words()) {}

void DecoderFaultMemory::inject_no_access(std::size_t addr) {
  if (addr >= num_words()) throw std::out_of_range("inject_no_access");
  dead_.at(addr) = true;
}

void DecoderFaultMemory::inject_alias(std::size_t addr, std::size_t also) {
  if (addr >= num_words() || also >= num_words()) throw std::out_of_range("inject_alias");
  if (addr == also) throw std::invalid_argument("inject_alias: self-alias");
  targets_.at(addr).push_back(also);
}

BitVec DecoderFaultMemory::read(std::size_t addr) {
  if (dead_.at(addr)) return BitVec::zeros(word_width());  // floating bus
  BitVec v = inner_.read(addr);
  for (std::size_t t : targets_.at(addr)) {
    const BitVec other = inner_.read(t);
    v = (merge_ == ReadMerge::And) ? (v & other) : (v | other);
  }
  return v;
}

void DecoderFaultMemory::write(std::size_t addr, const BitVec& data) {
  if (dead_.at(addr)) return;  // write lost
  inner_.write(addr, data);
  for (std::size_t t : targets_.at(addr)) inner_.write(t, data);
}

}  // namespace twm
