#include "memsim/memory.h"

#include <algorithm>
#include <new>
#include <stdexcept>

#include "memsim/packed_memory.h"  // kMemPageShift / kMemPageWords / kMemPageMask
#include "util/failpoint.h"

namespace twm {

Memory::Memory(std::size_t num_words, unsigned word_width)
    : words_(num_words), width_(word_width) {
  if (num_words == 0 || word_width == 0)
    throw std::invalid_argument("Memory: empty geometry");
  table_.resize((num_words + kMemPageWords - 1) / kMemPageWords);
  bg_pattern_ = BitVec::zeros(width_);
  pattern_limbs_.assign(width_, 0);
}

// --- paged state accessors -------------------------------------------------

bool Memory::cell_bit(std::size_t addr, unsigned j) const {
  const Page* p = table_[addr >> kMemPageShift].get();
  if (p) return get_limb_bit(p->bits.data(), (addr & kMemPageMask) * width_ + j);
  if (bg_bits_) return get_limb_bit(bg_bits_->data(), addr * width_ + j);
  return bg_pattern_.get(j);
}

Memory::Page& Memory::page_for_write(std::size_t addr) {
  const std::size_t pi = addr >> kMemPageShift;
  std::unique_ptr<Page>& slot = table_[pi];
  if (slot) return *slot;
  if (!free_.empty()) {
    slot = std::move(free_.back());
    free_.pop_back();
  } else {
    // Chaos hook for allocation exhaustion on the scalar path; the real
    // make_unique below throws the same bad_alloc when memory truly runs
    // out, so injected and genuine OOM take one code path upward.
    if (TWM_FAILPOINT("page.alloc")) throw std::bad_alloc();
    slot = std::make_unique<Page>();
    ++page_allocs_;
  }
  materialized_.push_back(pi);
  pages_peak_ = std::max(pages_peak_, materialized_.size());
  slot->bits.assign(width_, 0);
  if (bg_bits_)
    std::copy(bg_bits_->data() + pi * width_, bg_bits_->data() + (pi + 1) * width_,
              slot->bits.begin());
  else
    std::copy(pattern_limbs_.begin(), pattern_limbs_.end(), slot->bits.begin());
  return *slot;
}

void Memory::set_bit(const CellAddr& c, bool v) {
  Page& p = page_for_write(c.word);
  set_limb_bit(p.bits.data(), (c.word & kMemPageMask) * width_ + c.bit, v);
}

BitVec Memory::word_at(std::size_t addr) const {
  BitVec v(width_);
  const Page* p = table_[addr >> kMemPageShift].get();
  if (p) {
    const std::size_t base = (addr & kMemPageMask) * width_;
    for (unsigned j = 0; j < width_; ++j) v.set(j, get_limb_bit(p->bits.data(), base + j));
  } else if (bg_bits_) {
    for (unsigned j = 0; j < width_; ++j)
      v.set(j, get_limb_bit(bg_bits_->data(), addr * width_ + j));
  } else {
    v = bg_pattern_;
  }
  return v;
}

void Memory::set_word(std::size_t addr, const BitVec& v) {
  Page& p = page_for_write(addr);
  const std::size_t base = (addr & kMemPageMask) * width_;
  for (unsigned j = 0; j < width_; ++j) set_limb_bit(p.bits.data(), base + j, v.get(j));
}

void Memory::drop_pages() {
  for (const std::size_t pi : materialized_) {
    std::unique_ptr<Page>& slot = table_[pi];
    slot->bits.clear();
    free_.push_back(std::move(slot));
  }
  materialized_.clear();
}

void Memory::set_background_bits(Baseline bits) {
  bg_bits_ = std::move(bits);
  drop_pages();
  enforce_static_faults();
}

Memory::Baseline Memory::generate_bits(Rng& rng) const {
  auto bits = std::make_shared<std::vector<std::uint64_t>>(table_.size() * width_, 0);
  for (std::size_t a = 0; a < words_; ++a)
    for (unsigned j = 0; j < width_; ++j)
      set_limb_bit(bits->data(), a * width_ + j, rng.next_bool());
  return bits;
}

// --- the memory port ---------------------------------------------------------

BitVec Memory::read(std::size_t addr) {
  ++ops_;
  if (addr >= words_) throw std::out_of_range("Memory::read");
  BitVec v = word_at(addr);
  if (!has_af_) return v;
  // AF port distortion, per fault in injection order: an AFna address sees
  // the floating bus (zeros), an AFaw address the wired-AND of every cell
  // it decodes to.
  for (const Fault& f : faults_) {
    if (f.victim.word != addr) continue;
    if (f.cls == FaultClass::AFna)
      v = BitVec::zeros(width_);
    else if (f.cls == FaultClass::AFaw)
      v = v & word_at(f.aggressor.word);
  }
  return v;
}

void Memory::write(std::size_t addr, const BitVec& data) {
  ++ops_;
  if (addr >= words_) throw std::out_of_range("Memory::write");
  if (data.width() != width_) throw std::invalid_argument("Memory::write: width mismatch");
  const BitVec old = word_at(addr);
  BitVec next = data;

  // Step 0: an AFna address decodes to no cell — the write is lost (the
  // word keeps its old value, so the later steps see no transitions).
  if (has_af_) {
    for (const Fault& f : faults_)
      if (f.cls == FaultClass::AFna && f.victim.word == addr) next = old;
  }

  // Step 1: transition faults suppress the failing transition.
  for (const Fault& f : faults_) {
    if (f.cls != FaultClass::TF || f.victim.word != addr) continue;
    const bool o = old.get(f.victim.bit);
    const bool n = next.get(f.victim.bit);
    if (o == n) continue;
    const bool is_up = !o && n;
    if ((is_up && f.trans == Transition::Up) || (!is_up && f.trans == Transition::Down))
      next.set(f.victim.bit, o);  // transition fails, cell keeps old value
  }

  // Step 2: commit.
  set_word(addr, next);

  // Step 3: dynamic coupling faults triggered by aggressor transitions
  // caused by this write.
  for (const Fault& f : faults_) {
    if ((f.cls != FaultClass::CFid && f.cls != FaultClass::CFin) || f.aggressor.word != addr)
      continue;
    const bool o = old.get(f.aggressor.bit);
    const bool n = get_bit(f.aggressor);
    if (o == n) continue;
    const bool is_up = !o && n;
    const bool match =
        (is_up && f.trans == Transition::Up) || (!is_up && f.trans == Transition::Down);
    if (!match) continue;
    if (f.cls == FaultClass::CFid)
      set_bit(f.victim, f.value);
    else
      set_bit(f.victim, !get_bit(f.victim));
  }

  // Step 3.5: an AFaw address additionally decodes to the alias word — the
  // committed value is raw-copied there (no TF/coupling interplay at the
  // target; statics are re-enforced below).
  if (has_af_) {
    for (const Fault& f : faults_)
      if (f.cls == FaultClass::AFaw && f.victim.word == addr)
        set_word(f.aggressor.word, word_at(addr));
  }

  // A write refreshes the retention clock of any leaky cell it targets
  // (the row strobe happens even when a decoder fault loses the data).
  std::size_t ri = 0;
  for (const Fault& f : faults_) {
    if (f.cls != FaultClass::RET) continue;
    if (f.victim.word == addr) ret_age_[ri] = 0;
    ++ri;
  }

  // Steps 4 and 5.
  enforce_static_faults();
}

void Memory::elapse(unsigned units) {
  std::size_t ri = 0;
  for (const Fault& f : faults_) {
    if (f.cls != FaultClass::RET) continue;
    ret_age_[ri] += units;
    if (ret_age_[ri] >= f.retention) set_bit(f.victim, f.value);
    ++ri;
  }
  // Decay may expose cells to static coupling conditions.
  if (ri != 0) enforce_static_faults();
}

void Memory::enforce_static_faults() {
  // CFst chains are resolved in injection order; two passes give a fixpoint
  // for all single-fault and non-cyclic multi-fault configurations.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Fault& f : faults_) {
      if (f.cls != FaultClass::CFst) continue;
      if (get_bit(f.aggressor) == f.state) set_bit(f.victim, f.value);
    }
  }
  for (const Fault& f : faults_) {
    if (f.cls == FaultClass::SAF) set_bit(f.victim, f.value);
  }
}

void Memory::inject(const Fault& f) {
  auto check = [this](const CellAddr& c) {
    if (c.word >= words_ || c.bit >= width_)
      throw std::out_of_range("Memory::inject: cell outside memory");
  };
  if (f.is_decoder()) {
    if (f.victim.word >= words_ ||
        (f.cls == FaultClass::AFaw && f.aggressor.word >= words_))
      throw std::out_of_range("Memory::inject: address outside memory");
    if (f.cls == FaultClass::AFaw && f.aggressor.word == f.victim.word)
      throw std::invalid_argument("Memory::inject: alias == address");
    has_af_ = true;
  } else {
    check(f.victim);
    if (f.is_coupling()) {
      check(f.aggressor);
      if (f.aggressor == f.victim)
        throw std::invalid_argument("Memory::inject: aggressor == victim");
    }
  }
  faults_.push_back(f);
  if (f.cls == FaultClass::RET) ret_age_.push_back(0);
  enforce_static_faults();
}

void Memory::load(const std::vector<BitVec>& contents) {
  if (contents.size() != words_)
    throw std::invalid_argument("Memory::load: word count mismatch");
  for (const auto& w : contents)
    if (w.width() != width_) throw std::invalid_argument("Memory::load: width mismatch");
  auto bits = std::make_shared<std::vector<std::uint64_t>>(table_.size() * width_, 0);
  for (std::size_t a = 0; a < words_; ++a)
    for (unsigned j = 0; j < width_; ++j)
      set_limb_bit(bits->data(), a * width_ + j, contents[a].get(j));
  set_background_bits(std::move(bits));
}

void Memory::fill(const BitVec& pattern) {
  if (pattern.width() != width_) throw std::invalid_argument("Memory::fill: width mismatch");
  bg_pattern_ = pattern;
  pattern_limbs_.assign(width_, 0);
  for (std::size_t w = 0; w < kMemPageWords; ++w)
    for (unsigned j = 0; j < width_; ++j)
      set_limb_bit(pattern_limbs_.data(), w * width_ + j, pattern.get(j));
  set_background_bits(nullptr);
}

void Memory::fill_random(Rng& rng) { set_background_bits(generate_bits(rng)); }

void Memory::fill_seeded(std::uint64_t seed) {
  if (seed == 0) {
    fill(BitVec::zeros(width_));
    return;
  }
  Baseline& bits = baselines_[seed];
  if (!bits) {
    Rng rng(seed);
    bits = generate_bits(rng);
  }
  set_background_bits(bits);
}

BitVec Memory::peek(std::size_t addr) const {
  if (addr >= words_) throw std::out_of_range("Memory::peek");
  return word_at(addr);
}

std::vector<BitVec> Memory::snapshot() const {
  std::vector<BitVec> out;
  out.reserve(words_);
  for (std::size_t a = 0; a < words_; ++a) out.push_back(word_at(a));
  return out;
}

bool Memory::equals(const std::vector<BitVec>& snap) const {
  if (snap.size() != words_) return false;
  for (std::size_t a = 0; a < words_; ++a)
    if (word_at(a) != snap[a]) return false;
  return true;
}

}  // namespace twm
