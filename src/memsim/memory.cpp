#include "memsim/memory.h"

#include <stdexcept>

namespace twm {

Memory::Memory(std::size_t num_words, unsigned word_width)
    : width_(word_width), state_(num_words, BitVec::zeros(word_width)) {
  if (num_words == 0 || word_width == 0)
    throw std::invalid_argument("Memory: empty geometry");
}

BitVec Memory::read(std::size_t addr) {
  ++ops_;
  BitVec v = state_.at(addr);
  if (!has_af_) return v;
  // AF port distortion, per fault in injection order: an AFna address sees
  // the floating bus (zeros), an AFaw address the wired-AND of every cell
  // it decodes to.
  for (const Fault& f : faults_) {
    if (f.victim.word != addr) continue;
    if (f.cls == FaultClass::AFna)
      v = BitVec::zeros(width_);
    else if (f.cls == FaultClass::AFaw)
      v = v & state_[f.aggressor.word];
  }
  return v;
}

void Memory::write(std::size_t addr, const BitVec& data) {
  ++ops_;
  if (data.width() != width_) throw std::invalid_argument("Memory::write: width mismatch");
  const BitVec old = state_.at(addr);
  BitVec next = data;

  // Step 0: an AFna address decodes to no cell — the write is lost (the
  // word keeps its old value, so the later steps see no transitions).
  if (has_af_) {
    for (const Fault& f : faults_)
      if (f.cls == FaultClass::AFna && f.victim.word == addr) next = old;
  }

  // Step 1: transition faults suppress the failing transition.
  for (const Fault& f : faults_) {
    if (f.cls != FaultClass::TF || f.victim.word != addr) continue;
    const bool o = old.get(f.victim.bit);
    const bool n = next.get(f.victim.bit);
    if (o == n) continue;
    const bool is_up = !o && n;
    if ((is_up && f.trans == Transition::Up) || (!is_up && f.trans == Transition::Down))
      next.set(f.victim.bit, o);  // transition fails, cell keeps old value
  }

  // Step 2: commit.
  state_[addr] = next;

  // Step 3: dynamic coupling faults triggered by aggressor transitions
  // caused by this write.
  for (const Fault& f : faults_) {
    if ((f.cls != FaultClass::CFid && f.cls != FaultClass::CFin) || f.aggressor.word != addr)
      continue;
    const bool o = old.get(f.aggressor.bit);
    const bool n = state_[addr].get(f.aggressor.bit);
    if (o == n) continue;
    const bool is_up = !o && n;
    const bool match =
        (is_up && f.trans == Transition::Up) || (!is_up && f.trans == Transition::Down);
    if (!match) continue;
    if (f.cls == FaultClass::CFid)
      set_bit(f.victim, f.value);
    else
      set_bit(f.victim, !get_bit(f.victim));
  }

  // Step 3.5: an AFaw address additionally decodes to the alias word — the
  // committed value is raw-copied there (no TF/coupling interplay at the
  // target; statics are re-enforced below).
  if (has_af_) {
    for (const Fault& f : faults_)
      if (f.cls == FaultClass::AFaw && f.victim.word == addr)
        state_[f.aggressor.word] = state_[addr];
  }

  // A write refreshes the retention clock of any leaky cell it targets
  // (the row strobe happens even when a decoder fault loses the data).
  std::size_t ri = 0;
  for (const Fault& f : faults_) {
    if (f.cls != FaultClass::RET) continue;
    if (f.victim.word == addr) ret_age_[ri] = 0;
    ++ri;
  }

  // Steps 4 and 5.
  enforce_static_faults();
}

void Memory::elapse(unsigned units) {
  std::size_t ri = 0;
  for (const Fault& f : faults_) {
    if (f.cls != FaultClass::RET) continue;
    ret_age_[ri] += units;
    if (ret_age_[ri] >= f.retention) set_bit(f.victim, f.value);
    ++ri;
  }
  // Decay may expose cells to static coupling conditions.
  if (ri != 0) enforce_static_faults();
}

void Memory::enforce_static_faults() {
  // CFst chains are resolved in injection order; two passes give a fixpoint
  // for all single-fault and non-cyclic multi-fault configurations.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Fault& f : faults_) {
      if (f.cls != FaultClass::CFst) continue;
      if (get_bit(f.aggressor) == f.state) set_bit(f.victim, f.value);
    }
  }
  for (const Fault& f : faults_) {
    if (f.cls == FaultClass::SAF) set_bit(f.victim, f.value);
  }
}

void Memory::inject(const Fault& f) {
  auto check = [this](const CellAddr& c) {
    if (c.word >= state_.size() || c.bit >= width_)
      throw std::out_of_range("Memory::inject: cell outside memory");
  };
  if (f.is_decoder()) {
    if (f.victim.word >= state_.size() ||
        (f.cls == FaultClass::AFaw && f.aggressor.word >= state_.size()))
      throw std::out_of_range("Memory::inject: address outside memory");
    if (f.cls == FaultClass::AFaw && f.aggressor.word == f.victim.word)
      throw std::invalid_argument("Memory::inject: alias == address");
    has_af_ = true;
  } else {
    check(f.victim);
    if (f.is_coupling()) {
      check(f.aggressor);
      if (f.aggressor == f.victim)
        throw std::invalid_argument("Memory::inject: aggressor == victim");
    }
  }
  faults_.push_back(f);
  if (f.cls == FaultClass::RET) ret_age_.push_back(0);
  enforce_static_faults();
}

void Memory::load(const std::vector<BitVec>& contents) {
  if (contents.size() != state_.size())
    throw std::invalid_argument("Memory::load: word count mismatch");
  for (const auto& w : contents)
    if (w.width() != width_) throw std::invalid_argument("Memory::load: width mismatch");
  state_ = contents;
  enforce_static_faults();
}

void Memory::fill(const BitVec& pattern) {
  if (pattern.width() != width_) throw std::invalid_argument("Memory::fill: width mismatch");
  for (auto& w : state_) w = pattern;
  enforce_static_faults();
}

void Memory::fill_random(Rng& rng) {
  for (auto& w : state_) w = rng.next_word(width_);
  enforce_static_faults();
}

}  // namespace twm
