// Functional fault models for RAM cells (Sec. 2 of the paper):
//
//   SAF   stuck-at fault: the cell permanently holds 0 (SAF0) or 1 (SAF1).
//   TF    transition fault: the cell fails the 0->1 (TF_UP) or the 1->0
//         (TF_DOWN) transition; the opposite transition still works.
//   CFst  state coupling fault <s; v>: while the aggressor cell holds state
//         s, the victim cell is forced to value v.
//   CFid  idempotent coupling fault <t; v>: when the aggressor undergoes
//         transition t (up or down), the victim is forced to value v.
//   CFin  inversion coupling fault <t>: when the aggressor undergoes
//         transition t, the victim's content is inverted.
//
//   AFna  address-decoder fault, no access: the address decodes to no cell —
//         writes are lost, reads return the floating bus (all zeros).
//   AFaw  address-decoder fault, alias write: the address additionally
//         decodes to a second word — writes raw-commit there too, reads
//         wired-AND merge both words.
//
// A cell is addressed by (word index, bit index); coupling faults between
// cells of the same word are the paper's intra-word CFs, between cells of
// different words its inter-word CFs.  AF faults address whole words: the
// victim word is the faulty address, the aggressor word (AFaw only) the
// alias target.  The paper's fault model stops at SAF/TF/CF; AFs are the
// standard companion model (van de Goor) — memsim/decoder_fault.h keeps the
// address-mapping wrapper form, these Fault-level variants put the same
// defects through the batched campaign backends.
#ifndef TWM_MEMSIM_FAULT_H
#define TWM_MEMSIM_FAULT_H

#include <cstddef>
#include <string>

namespace twm {

struct CellAddr {
  std::size_t word = 0;
  unsigned bit = 0;

  bool operator==(const CellAddr& o) const { return word == o.word && bit == o.bit; }
};

enum class FaultClass { SAF, TF, CFst, CFid, CFin, RET, AFna, AFaw };

enum class Transition { Up, Down };  // 0->1 / 1->0

struct Fault {
  FaultClass cls = FaultClass::SAF;
  CellAddr victim;        // the affected cell
  CellAddr aggressor;     // coupling faults only
  bool value = false;     // SAF: stuck value; CFst/CFid: forced value; RET: decay value
  Transition trans = Transition::Up;  // TF: failing transition; CFid/CFin: trigger
  bool state = false;     // CFst: aggressor state that activates the fault
  unsigned retention = 0;  // RET: pause units the cell holds data for

  bool is_coupling() const {
    return cls == FaultClass::CFst || cls == FaultClass::CFid || cls == FaultClass::CFin;
  }
  // Intra-word coupling: aggressor and victim share a word.
  bool intra_word() const { return is_coupling() && aggressor.word == victim.word; }
  // Address-decoder fault (word-level port distortion, no cell defect).
  bool is_decoder() const { return cls == FaultClass::AFna || cls == FaultClass::AFaw; }

  std::string describe() const;

  // Convenience constructors.
  static Fault saf(CellAddr cell, bool stuck_value);
  static Fault tf(CellAddr cell, Transition failing);
  static Fault cfst(CellAddr aggressor, bool aggressor_state, CellAddr victim, bool forced);
  static Fault cfid(CellAddr aggressor, Transition trigger, CellAddr victim, bool forced);
  static Fault cfin(CellAddr aggressor, Transition trigger, CellAddr victim);
  // Data-retention fault: after `hold_units` pause units without a write to
  // the cell, its content decays to `decay_value` (a leaky DRAM-like cell).
  static Fault ret(CellAddr cell, bool decay_value, unsigned hold_units);
  // AF1: `word` decodes to no cell.
  static Fault af_no_access(std::size_t word);
  // AF2: `word` additionally decodes to (aliases) word `also`.
  static Fault af_alias(std::size_t word, std::size_t also);
};

std::string to_string(FaultClass c);

}  // namespace twm

#endif  // TWM_MEMSIM_FAULT_H
