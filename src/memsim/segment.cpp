#include "memsim/segment.h"

#include <stdexcept>

namespace twm {

SegmentView::SegmentView(MemoryIf& inner, std::size_t base, std::size_t length)
    : inner_(inner), base_(base), length_(length) {
  if (length == 0 || base + length > inner.num_words())
    throw std::invalid_argument("SegmentView: window outside memory");
}

std::size_t SegmentView::translate(std::size_t addr) const {
  if (addr >= length_) throw std::out_of_range("SegmentView: address outside segment");
  return base_ + addr;
}

}  // namespace twm
