// Lane blocks: the machine word the packed backend is templated over.
//
// PR 1 fixed the packed backend at 64 fault universes per pass — one
// std::uint64_t lane vector per cell.  This header generalizes that word to
// a *lane block* of K x 64 lanes (std::array<std::uint64_t, K>), so the
// same lane-masked bitwise write semantics evaluate 64, 256 or 512
// universes per pass.  The per-block loops are written as plain word-wise
// operations so that a translation unit compiled with -mavx2 (K = 4) or
// -mavx512f (K = 8) auto-vectorizes them into single vector instructions;
// runtime selection between the compiled widths lives in core/simd.h.
//
// The Block concept, satisfied by std::uint64_t (K = 1, the PR 1 layout —
// every existing call site keeps compiling) and by LaneBlock<K>:
//
//   * value-initialization yields the all-zero block,
//   * operators & | ^ ~ &= |= ^= == != operate lane-wise,
//   * the free functions below (block_lanes_v, block_ones, block_bit, ...)
//     provide the lane-indexed vocabulary.
//
// Lane numbering is global: lane L lives in array word L / 64, bit L % 64.
// Lane 0 is the golden (fault-free) universe by the same convention as the
// 64-lane backend.
#ifndef TWM_MEMSIM_LANE_BLOCK_H
#define TWM_MEMSIM_LANE_BLOCK_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace twm {

template <unsigned K>
struct LaneBlock {
  static_assert(K >= 1, "LaneBlock needs at least one word");
  std::array<std::uint64_t, K> w{};

  friend LaneBlock operator&(const LaneBlock& a, const LaneBlock& b) {
    LaneBlock r;
    for (unsigned i = 0; i < K; ++i) r.w[i] = a.w[i] & b.w[i];
    return r;
  }
  friend LaneBlock operator|(const LaneBlock& a, const LaneBlock& b) {
    LaneBlock r;
    for (unsigned i = 0; i < K; ++i) r.w[i] = a.w[i] | b.w[i];
    return r;
  }
  friend LaneBlock operator^(const LaneBlock& a, const LaneBlock& b) {
    LaneBlock r;
    for (unsigned i = 0; i < K; ++i) r.w[i] = a.w[i] ^ b.w[i];
    return r;
  }
  friend LaneBlock operator~(const LaneBlock& a) {
    LaneBlock r;
    for (unsigned i = 0; i < K; ++i) r.w[i] = ~a.w[i];
    return r;
  }
  LaneBlock& operator&=(const LaneBlock& o) {
    for (unsigned i = 0; i < K; ++i) w[i] &= o.w[i];
    return *this;
  }
  LaneBlock& operator|=(const LaneBlock& o) {
    for (unsigned i = 0; i < K; ++i) w[i] |= o.w[i];
    return *this;
  }
  LaneBlock& operator^=(const LaneBlock& o) {
    for (unsigned i = 0; i < K; ++i) w[i] ^= o.w[i];
    return *this;
  }
  friend bool operator==(const LaneBlock& a, const LaneBlock& b) { return a.w == b.w; }
  friend bool operator!=(const LaneBlock& a, const LaneBlock& b) { return a.w != b.w; }
};

// --- lane-indexed vocabulary over the Block concept ----------------------

template <class Block>
inline constexpr unsigned block_lanes_v = 64;
template <unsigned K>
inline constexpr unsigned block_lanes_v<LaneBlock<K>> = 64 * K;

inline std::uint64_t block_ones(std::uint64_t*) { return ~0ull; }
template <unsigned K>
LaneBlock<K> block_ones(LaneBlock<K>*) {
  LaneBlock<K> r;
  for (unsigned i = 0; i < K; ++i) r.w[i] = ~0ull;
  return r;
}
// All-lanes-set block, e.g. the "every universe failed" verdict.
template <class Block>
Block block_ones() {
  return block_ones(static_cast<Block*>(nullptr));
}

inline bool block_any(std::uint64_t b) { return b != 0; }
template <unsigned K>
bool block_any(const LaneBlock<K>& b) {
  std::uint64_t acc = 0;
  for (unsigned i = 0; i < K; ++i) acc |= b.w[i];
  return acc != 0;
}

inline bool block_bit(std::uint64_t b, unsigned lane) { return (b >> lane) & 1u; }
template <unsigned K>
bool block_bit(const LaneBlock<K>& b, unsigned lane) {
  return (b.w[lane / 64] >> (lane % 64)) & 1u;
}

inline void block_set_bit(std::uint64_t& b, unsigned lane) { b |= 1ull << lane; }
template <unsigned K>
void block_set_bit(LaneBlock<K>& b, unsigned lane) {
  b.w[lane / 64] |= 1ull << (lane % 64);
}

// Single-lane mask (the injection mask of fault slot -> lane slot+1).
template <class Block>
Block block_lane(unsigned lane) {
  Block b{};
  block_set_bit(b, lane);
  return b;
}

// Mask of lanes 1..count — the occupied fault lanes of a (possibly partial)
// batch.  Lane 0 (golden) and the lanes past `count` stay clear, so a
// partial final batch can neither report phantom universes nor hide a
// golden-lane detection.
template <class Block>
Block block_used_mask(unsigned count) {
  Block b{};
  for (unsigned lane = 1; lane <= count && lane < block_lanes_v<Block>; ++lane)
    block_set_bit(b, lane);
  return b;
}

}  // namespace twm

#endif  // TWM_MEMSIM_LANE_BLOCK_H
