#include "memsim/fault.h"

#include <sstream>

namespace twm {

std::string to_string(FaultClass c) {
  switch (c) {
    case FaultClass::SAF: return "SAF";
    case FaultClass::TF: return "TF";
    case FaultClass::CFst: return "CFst";
    case FaultClass::CFid: return "CFid";
    case FaultClass::CFin: return "CFin";
    case FaultClass::RET: return "RET";
    case FaultClass::AFna: return "AFna";
    case FaultClass::AFaw: return "AFaw";
  }
  return "?";
}

namespace {
std::string cell_str(const CellAddr& c) {
  std::ostringstream os;
  os << "w" << c.word << ".b" << c.bit;
  return os.str();
}
std::string trans_str(Transition t) { return t == Transition::Up ? "^" : "v"; }
}  // namespace

std::string Fault::describe() const {
  std::ostringstream os;
  os << to_string(cls);
  switch (cls) {
    case FaultClass::SAF:
      os << "(" << (value ? 1 : 0) << ") @" << cell_str(victim);
      break;
    case FaultClass::TF:
      os << "(" << trans_str(trans) << ") @" << cell_str(victim);
      break;
    case FaultClass::CFst:
      os << "<" << (state ? 1 : 0) << ";" << (value ? 1 : 0) << "> " << cell_str(aggressor)
         << "->" << cell_str(victim);
      break;
    case FaultClass::CFid:
      os << "<" << trans_str(trans) << ";" << (value ? 1 : 0) << "> " << cell_str(aggressor)
         << "->" << cell_str(victim);
      break;
    case FaultClass::CFin:
      os << "<" << trans_str(trans) << "> " << cell_str(aggressor) << "->" << cell_str(victim);
      break;
    case FaultClass::RET:
      os << "(" << (value ? 1 : 0) << "," << retention << "u) @" << cell_str(victim);
      break;
    case FaultClass::AFna:
      os << " @w" << victim.word;
      break;
    case FaultClass::AFaw:
      os << " w" << victim.word << "~w" << aggressor.word;
      break;
  }
  if (is_coupling()) os << (intra_word() ? " [intra]" : " [inter]");
  return os.str();
}

Fault Fault::saf(CellAddr cell, bool stuck_value) {
  Fault f;
  f.cls = FaultClass::SAF;
  f.victim = cell;
  f.value = stuck_value;
  return f;
}

Fault Fault::tf(CellAddr cell, Transition failing) {
  Fault f;
  f.cls = FaultClass::TF;
  f.victim = cell;
  f.trans = failing;
  return f;
}

Fault Fault::cfst(CellAddr aggressor, bool aggressor_state, CellAddr victim, bool forced) {
  Fault f;
  f.cls = FaultClass::CFst;
  f.aggressor = aggressor;
  f.state = aggressor_state;
  f.victim = victim;
  f.value = forced;
  return f;
}

Fault Fault::cfid(CellAddr aggressor, Transition trigger, CellAddr victim, bool forced) {
  Fault f;
  f.cls = FaultClass::CFid;
  f.aggressor = aggressor;
  f.trans = trigger;
  f.victim = victim;
  f.value = forced;
  return f;
}

Fault Fault::cfin(CellAddr aggressor, Transition trigger, CellAddr victim) {
  Fault f;
  f.cls = FaultClass::CFin;
  f.aggressor = aggressor;
  f.trans = trigger;
  f.victim = victim;
  return f;
}

Fault Fault::ret(CellAddr cell, bool decay_value, unsigned hold_units) {
  Fault f;
  f.cls = FaultClass::RET;
  f.victim = cell;
  f.value = decay_value;
  f.retention = hold_units;
  return f;
}

Fault Fault::af_no_access(std::size_t word) {
  Fault f;
  f.cls = FaultClass::AFna;
  f.victim = {word, 0};
  return f;
}

Fault Fault::af_alias(std::size_t word, std::size_t also) {
  Fault f;
  f.cls = FaultClass::AFaw;
  f.victim = {word, 0};
  f.aggressor = {also, 0};
  return f;
}

}  // namespace twm
