#include "service/protocol.h"

#include "api/json.h"

namespace twm::service {

ParsedFrame parse_frame(const std::string& line) {
  ParsedFrame out;
  if (line.size() > kMaxFrameBytes) {
    out.error = "frame exceeds " + std::to_string(kMaxFrameBytes) + " bytes";
    return out;
  }
  api::JsonValue doc;
  try {
    doc = api::json_parse(line);
  } catch (const api::JsonParseError& e) {
    out.error = e.what();
    return out;
  }
  if (!doc.is_object()) {
    out.error = "frame must be a JSON object";
    return out;
  }
  const api::JsonValue* type = doc.find("type");
  if (!type || !type->is_string()) {
    out.error = "frame needs a string \"type\" field";
    return out;
  }
  const std::string& t = type->as_string();
  Frame frame;
  if (t == "ping") {
    frame.kind = Frame::Kind::Ping;
  } else if (t == "stats") {
    frame.kind = Frame::Kind::Stats;
  } else if (t == "shutdown") {
    frame.kind = Frame::Kind::Shutdown;
  } else if (t == "submit") {
    frame.kind = Frame::Kind::Submit;
    const api::JsonValue* spec = doc.find("spec");
    if (!spec) {
      out.error = "submit frame needs a \"spec\" field";
      return out;
    }
    try {
      frame.spec = api::spec_from_json_value(*spec);
    } catch (const api::SpecValidationError& e) {
      out.error = "spec is structurally invalid";
      out.spec_errors = e.errors();
      return out;
    }
  } else {
    out.error = "unknown frame type '" + t + "'";
    return out;
  }
  out.frame = std::move(frame);
  return out;
}

std::string submit_frame(const api::CampaignSpec& spec) {
  return "{\"type\":\"submit\",\"spec\":" + api::to_json(spec, /*pretty=*/false) + "}";
}

std::string ping_frame() { return "{\"type\":\"ping\"}"; }
std::string stats_frame() { return "{\"type\":\"stats\"}"; }
std::string shutdown_frame() { return "{\"type\":\"shutdown\"}"; }

std::string error_frame(const std::string& scope, const std::string& message,
                        const std::vector<api::SpecError>& spec_errors, bool retryable) {
  std::string out = "{\"type\":\"error\",\"scope\":" + api::json_quote(scope) +
                    ",\"retryable\":" + (retryable ? "true" : "false") +
                    ",\"message\":" + api::json_quote(message);
  if (!spec_errors.empty()) {
    out += ",\"errors\":[";
    bool first = true;
    for (const api::SpecError& e : spec_errors) {
      if (!first) out += ",";
      first = false;
      out += "{\"path\":" + api::json_quote(e.path) +
             ",\"message\":" + api::json_quote(e.message) + "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string error_frame(const api::Error& e) {
  return error_frame(std::string(api::to_string(e.category)), e.detail, {}, e.retryable);
}

std::optional<ErrorInfo> parse_error_frame(const std::string& line) {
  api::JsonValue doc;
  try {
    doc = api::json_parse(line);
  } catch (const api::JsonParseError&) {
    return std::nullopt;
  }
  if (!doc.is_object()) return std::nullopt;
  const api::JsonValue* type = doc.find("type");
  if (!type || !type->is_string() || type->as_string() != "error") return std::nullopt;
  ErrorInfo info;
  if (const api::JsonValue* scope = doc.find("scope"); scope && scope->is_string())
    info.scope = scope->as_string();
  if (const api::JsonValue* r = doc.find("retryable"); r && r->is_bool())
    info.retryable = r->as_bool();
  if (const api::JsonValue* m = doc.find("message"); m && m->is_string())
    info.message = m->as_string();
  return info;
}

}  // namespace twm::service
