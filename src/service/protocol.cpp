#include "service/protocol.h"

#include "api/json.h"

namespace twm::service {

ParsedFrame parse_frame(const std::string& line) {
  ParsedFrame out;
  if (line.size() > kMaxFrameBytes) {
    out.error = "frame exceeds " + std::to_string(kMaxFrameBytes) + " bytes";
    return out;
  }
  api::JsonValue doc;
  try {
    doc = api::json_parse(line);
  } catch (const api::JsonParseError& e) {
    out.error = e.what();
    return out;
  }
  if (!doc.is_object()) {
    out.error = "frame must be a JSON object";
    return out;
  }
  const api::JsonValue* type = doc.find("type");
  if (!type || !type->is_string()) {
    out.error = "frame needs a string \"type\" field";
    return out;
  }
  const std::string& t = type->as_string();
  Frame frame;
  if (t == "ping") {
    frame.kind = Frame::Kind::Ping;
  } else if (t == "stats") {
    frame.kind = Frame::Kind::Stats;
  } else if (t == "shutdown") {
    frame.kind = Frame::Kind::Shutdown;
  } else if (t == "submit") {
    frame.kind = Frame::Kind::Submit;
    const api::JsonValue* spec = doc.find("spec");
    if (!spec) {
      out.error = "submit frame needs a \"spec\" field";
      return out;
    }
    try {
      frame.spec = api::spec_from_json_value(*spec);
    } catch (const api::SpecValidationError& e) {
      out.error = "spec is structurally invalid";
      out.spec_errors = e.errors();
      return out;
    }
  } else {
    out.error = "unknown frame type '" + t + "'";
    return out;
  }
  out.frame = std::move(frame);
  return out;
}

std::string submit_frame(const api::CampaignSpec& spec) {
  return "{\"type\":\"submit\",\"spec\":" + api::to_json(spec, /*pretty=*/false) + "}";
}

std::string ping_frame() { return "{\"type\":\"ping\"}"; }
std::string stats_frame() { return "{\"type\":\"stats\"}"; }
std::string shutdown_frame() { return "{\"type\":\"shutdown\"}"; }

std::string error_frame(const std::string& scope, const std::string& message,
                        const std::vector<api::SpecError>& spec_errors) {
  std::string out = "{\"type\":\"error\",\"scope\":" + api::json_quote(scope) +
                    ",\"message\":" + api::json_quote(message);
  if (!spec_errors.empty()) {
    out += ",\"errors\":[";
    bool first = true;
    for (const api::SpecError& e : spec_errors) {
      if (!first) out += ",";
      first = false;
      out += "{\"path\":" + api::json_quote(e.path) +
             ",\"message\":" + api::json_quote(e.message) + "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace twm::service
