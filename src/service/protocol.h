// Wire protocol of the campaign daemon (`twm_cli serve`).
//
// JSON-lines both ways over one TCP connection: every frame is exactly one
// '\n'-terminated JSON object.  Requests (client -> server):
//
//   {"type":"submit","spec":{...CampaignSpec...}}   run (or replay) a campaign
//   {"type":"ping"}                                 liveness probe
//   {"type":"stats"}                                service + cache counters
//   {"type":"shutdown"}                             stop the daemon
//
// Responses (server -> client):
//
//   submit    the campaign's JSON-lines record stream exactly as the
//             api::JsonLinesSink emits it — campaign_begin, unit*,
//             campaign_end — followed by one service-level
//             {"type":"campaign_stats","cells":M,"cached":K,"simulated":S,
//              "faults_replayed":F} frame whose counters prove how much of
//             the campaign was served from the result cache.
//   ping      {"type":"pong"}
//   stats     {"type":"stats","campaigns":..,"cancelled":..,
//              "frames_rejected":..,"cache":{...}}
//   shutdown  {"type":"bye"} and the daemon exits its accept loop.
//
// Errors come back typed (api/error.h taxonomy) as
// {"type":"error","scope":"frame"|"spec"|"io"|"resource"|"timeout"|"engine",
// "retryable":true|false,"message":...,
// "errors":[{"path":..,"message":..},...]?}.  `retryable` means the failure
// looks transient — resubmitting the identical spec is always idempotent
// (cached cells replay with simulated:0), so a client may retry exactly
// when that flag is set (`twm_cli submit --retries` does).  A FRAME error
// (malformed JSON, nesting bomb, oversized line, unknown type, missing
// spec) also closes the connection — a peer that cannot frame correctly is
// not negotiated with.  A SPEC error (well-formed frame, semantically
// invalid campaign) keeps the connection open for a corrected resubmit, and
// an idle client (ServerConfig.idle_timeout_ms) gets a retryable "timeout"
// error before the server hangs up.
//
// Input hardening, because the peer is untrusted: one frame is capped at
// kMaxFrameBytes, the JSON parser caps container nesting (api/json.h), and
// numbers/strings are validated by the same SpecReader every other spec
// surface uses.
#ifndef TWM_SERVICE_PROTOCOL_H
#define TWM_SERVICE_PROTOCOL_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "api/error.h"
#include "api/spec.h"

namespace twm::service {

// Upper bound on one request line (a submit frame carrying a spec with a
// large seed list fits comfortably; a gigabyte "line" never allocates).
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

struct Frame {
  enum class Kind { Submit, Ping, Stats, Shutdown };
  Kind kind = Kind::Ping;
  api::CampaignSpec spec;  // Submit only
};

// Outcome of parsing one request line.  `frame` is set on success;
// otherwise `error` carries the human-readable reason and, for structural
// spec problems, the offending field paths.
struct ParsedFrame {
  std::optional<Frame> frame;
  std::string error;
  std::vector<api::SpecError> spec_errors;

  bool ok() const { return frame.has_value(); }
};

// Parses one request line (without its trailing '\n').  Never throws:
// malformed JSON, over-deep nesting, unknown frame types and structurally
// broken specs all come back as ParsedFrame.error.
ParsedFrame parse_frame(const std::string& line);

// Request-frame assembly for clients (twm_cli submit, tests).
std::string submit_frame(const api::CampaignSpec& spec);
std::string ping_frame();
std::string stats_frame();
std::string shutdown_frame();

// Response-frame assembly for the server.  `spec_errors` may be empty.
// Frame/spec errors are never retryable (the request itself is wrong).
std::string error_frame(const std::string& scope, const std::string& message,
                        const std::vector<api::SpecError>& spec_errors = {},
                        bool retryable = false);

// Typed-error form: scope = to_string(e.category).
std::string error_frame(const api::Error& e);

// Parses an error frame's retryability on the client side; nullopt when
// `line` is not an error frame at all (callers then treat the response by
// its own type).  Tolerates pre-typed frames without "retryable" (false).
struct ErrorInfo {
  std::string scope;
  bool retryable = false;
  std::string message;
};
std::optional<ErrorInfo> parse_error_frame(const std::string& line);

}  // namespace twm::service

#endif  // TWM_SERVICE_PROTOCOL_H
