#include "service/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "api/json.h"

namespace twm::service {

namespace {

// {"identity":<identity object>,"units":[[fault,all,any],...]} — compact,
// one file per cell.  `identity` is embedded verbatim (it is already
// canonical compact JSON), so verification is a string compare after a
// deterministic re-serialization.
std::string entry_json(const std::string& identity, const api::CellRecords& records) {
  std::string out = "{\"identity\":" + identity + ",\"units\":[";
  bool first = true;
  for (const api::CachedUnit& u : records.units) {
    if (!first) out += ",";
    first = false;
    out += "[";
    out += std::to_string(u.fault_index);
    out += u.detected_all ? ",1" : ",0";
    out += u.detected_any ? ",1]" : ",0]";
  }
  out += "]}";
  return out;
}

}  // namespace

ResultCache::ResultCache(Config config) : config_(std::move(config)) {
  if (config_.memory_entries == 0) config_.memory_entries = 1;
  if (!config_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
    if (ec)
      throw std::runtime_error("cannot create cache directory '" + config_.dir +
                               "': " + ec.message());
  }
}

std::string ResultCache::path_for(const std::string& key) const {
  // Keys are 32 lowercase hex chars (api::content_key) — safe filenames by
  // construction, no escaping needed.
  return config_.dir + "/" + key + ".json";
}

std::optional<api::CellRecords> ResultCache::lookup(const std::string& key,
                                                    const std::string& identity) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_identity_.find(identity);
  if (it != by_identity_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    ++counters_.hits;
    return it->second->records;
  }
  if (!config_.dir.empty()) {
    if (auto from_disk = load_disk(key, identity)) {
      insert_locked(key, identity, *from_disk);
      ++counters_.hits;
      ++counters_.disk_hits;
      return from_disk;
    }
  }
  ++counters_.misses;
  return std::nullopt;
}

void ResultCache::store(const std::string& key, const std::string& identity,
                        const api::CellRecords& records) {
  const std::lock_guard<std::mutex> lock(mu_);
  insert_locked(key, identity, records);
  ++counters_.stores;
  if (!config_.dir.empty()) store_disk(key, identity, records);
}

void ResultCache::insert_locked(const std::string& key, const std::string& identity,
                                const api::CellRecords& records) {
  const auto it = by_identity_.find(identity);
  if (it != by_identity_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->records = records;
    return;
  }
  lru_.push_front({key, identity, records});
  by_identity_[identity] = lru_.begin();
  while (lru_.size() > config_.memory_entries) {
    by_identity_.erase(lru_.back().identity);
    lru_.pop_back();
    ++counters_.evictions;
  }
  counters_.entries = lru_.size();
}

std::optional<api::CellRecords> ResultCache::load_disk(const std::string& key,
                                                       const std::string& identity) const {
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const api::JsonValue doc = api::json_parse(text.str());
    if (!doc.is_object()) return std::nullopt;
    const api::JsonValue* stored_identity = doc.find("identity");
    // The whole point of storing the identity: a colliding key or a
    // foreign/corrupt file must read back as a miss, never as results.
    if (!stored_identity ||
        api::json_write(*stored_identity, /*pretty=*/false) != identity)
      return std::nullopt;
    const api::JsonValue* units = doc.find("units");
    if (!units || !units->is_array()) return std::nullopt;
    api::CellRecords records;
    records.units.reserve(units->items().size());
    for (const api::JsonValue& item : units->items()) {
      if (!item.is_array() || item.items().size() != 3) return std::nullopt;
      const auto fault = item.items()[0].as_u64();
      const auto all = item.items()[1].as_u64();
      const auto any = item.items()[2].as_u64();
      if (!fault || !all || !any || *all > 1 || *any > 1) return std::nullopt;
      records.units.push_back({*fault, *all == 1, *any == 1});
    }
    return records;
  } catch (const api::JsonParseError&) {
    return std::nullopt;
  }
}

void ResultCache::store_disk(const std::string& key, const std::string& identity,
                             const api::CellRecords& records) const {
  // tmp + rename: a reader (or a crashed writer) never sees a half-written
  // entry.  Disk failures are non-fatal — the cache is an accelerator, the
  // campaign result already streamed.
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << entry_json(identity, records);
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) std::remove(tmp.c_str());
}

ResultCache::Counters ResultCache::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace twm::service
