#include "service/cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "api/json.h"
#include "util/failpoint.h"
#include "util/fs.h"

namespace twm::service {

namespace {

// {"identity":<identity object>,"units":[[fault,all,any],...]} — compact,
// one file per cell.  `identity` is embedded verbatim (it is already
// canonical compact JSON), so verification is a string compare after a
// deterministic re-serialization.
std::string entry_json(const std::string& identity, const api::CellRecords& records) {
  std::string out = "{\"identity\":" + identity + ",\"units\":[";
  bool first = true;
  for (const api::CachedUnit& u : records.units) {
    if (!first) out += ",";
    first = false;
    out += "[";
    out += std::to_string(u.fault_index);
    out += u.detected_all ? ",1" : ",0";
    out += u.detected_any ? ",1]" : ",0]";
  }
  out += "]}";
  return out;
}

}  // namespace

ResultCache::ResultCache(Config config) : config_(std::move(config)) {
  if (config_.memory_entries == 0) config_.memory_entries = 1;
  if (!config_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
    if (ec)
      throw std::runtime_error("cannot create cache directory '" + config_.dir +
                               "': " + ec.message());
  }
}

std::string ResultCache::path_for(const std::string& key) const {
  // Keys are 32 lowercase hex chars (api::content_key) — safe filenames by
  // construction, no escaping needed.
  return config_.dir + "/" + key + ".json";
}

std::optional<api::CellRecords> ResultCache::lookup(const std::string& key,
                                                    const std::string& identity) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_identity_.find(identity);
  if (it != by_identity_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    ++counters_.hits;
    return it->second->records;
  }
  if (disk_usable_locked()) {
    if (auto from_disk = load_disk(key, identity)) {
      insert_locked(key, identity, *from_disk);
      ++counters_.hits;
      ++counters_.disk_hits;
      return from_disk;
    }
  }
  ++counters_.misses;
  return std::nullopt;
}

void ResultCache::store(const std::string& key, const std::string& identity,
                        const api::CellRecords& records) {
  const std::lock_guard<std::mutex> lock(mu_);
  insert_locked(key, identity, records);
  ++counters_.stores;
  if (disk_usable_locked()) store_disk(key, identity, records);
}

void ResultCache::insert_locked(const std::string& key, const std::string& identity,
                                const api::CellRecords& records) {
  const auto it = by_identity_.find(identity);
  if (it != by_identity_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->records = records;
    return;
  }
  lru_.push_front({key, identity, records});
  by_identity_[identity] = lru_.begin();
  while (lru_.size() > config_.memory_entries) {
    by_identity_.erase(lru_.back().identity);
    lru_.pop_back();
    ++counters_.evictions;
  }
  counters_.entries = lru_.size();
}

std::optional<api::CellRecords> ResultCache::load_disk(const std::string& key,
                                                       const std::string& identity) {
  if (TWM_FAILPOINT("cache.disk_read")) {
    note_disk_result_locked(false);
    return std::nullopt;
  }
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return std::nullopt;  // absent entry: a miss, not a disk failure
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {  // the file exists but the medium failed mid-read
    note_disk_result_locked(false);
    return std::nullopt;
  }
  note_disk_result_locked(true);
  try {
    const api::JsonValue doc = api::json_parse(text.str());
    if (!doc.is_object()) return std::nullopt;
    const api::JsonValue* stored_identity = doc.find("identity");
    // The whole point of storing the identity: a colliding key or a
    // foreign/corrupt file must read back as a miss, never as results.
    if (!stored_identity ||
        api::json_write(*stored_identity, /*pretty=*/false) != identity)
      return std::nullopt;
    const api::JsonValue* units = doc.find("units");
    if (!units || !units->is_array()) return std::nullopt;
    api::CellRecords records;
    records.units.reserve(units->items().size());
    for (const api::JsonValue& item : units->items()) {
      if (!item.is_array() || item.items().size() != 3) return std::nullopt;
      const auto fault = item.items()[0].as_u64();
      const auto all = item.items()[1].as_u64();
      const auto any = item.items()[2].as_u64();
      if (!fault || !all || !any || *all > 1 || *any > 1) return std::nullopt;
      records.units.push_back({*fault, *all == 1, *any == 1});
    }
    return records;
  } catch (const api::JsonParseError&) {
    return std::nullopt;
  }
}

void ResultCache::store_disk(const std::string& key, const std::string& identity,
                             const api::CellRecords& records) {
  // Crash-atomic (unique tmp + fsync + rename + dir fsync): a reader, a
  // crashed writer, or a concurrent writer of the same key never leaves a
  // torn entry under the final name.  Disk failures are non-fatal — the
  // cache is an accelerator, the campaign result already streamed.
  if (TWM_FAILPOINT("cache.disk_write")) {
    note_disk_result_locked(false);
    return;
  }
  note_disk_result_locked(
      util::atomic_write_file(path_for(key), entry_json(identity, records)));
}

void ResultCache::note_disk_result_locked(bool ok) {
  if (ok) {
    consecutive_disk_failures_ = 0;
    return;
  }
  ++counters_.disk_errors;
  if (++consecutive_disk_failures_ >= kMaxConsecutiveDiskFailures &&
      !counters_.disk_degraded) {
    counters_.disk_degraded = true;
    std::fprintf(stderr,
                 "twm: warning: result cache disk tier disabled after %d consecutive "
                 "failures; continuing memory-only\n",
                 kMaxConsecutiveDiskFailures);
  }
}

bool ResultCache::disk_usable_locked() const {
  return !config_.dir.empty() && !counters_.disk_degraded;
}

ResultCache::Counters ResultCache::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace twm::service
