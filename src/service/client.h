// Thin blocking line-client for the campaign daemon's protocol — what
// `twm_cli submit` and tests/service_test.cpp speak through.  One TCP
// connection, '\n'-delimited frames each way (service/protocol.h).
#ifndef TWM_SERVICE_CLIENT_H
#define TWM_SERVICE_CLIENT_H

#include <cstdint>
#include <optional>
#include <string>

namespace twm::service {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  // Connects to host:port; on failure returns false and, when `error` is
  // provided, fills in the reason.
  bool connect(const std::string& host, std::uint16_t port, std::string* error = nullptr);

  bool connected() const { return fd_ >= 0; }

  // Sends one frame ('\n' appended).  False when the peer is gone.
  bool send_line(const std::string& frame);

  // Receives one '\n'-terminated frame (terminator stripped); nullopt on
  // EOF or socket error.
  std::optional<std::string> recv_line();

  // Full close — mid-campaign this is the "client vanished" the server's
  // cooperative cancel reacts to.
  void close();

  // Half-close of the write side only; also read by the server as a
  // disconnect (POLLRDHUP), while this end can still drain responses.
  void shutdown_write();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace twm::service

#endif  // TWM_SERVICE_CLIENT_H
