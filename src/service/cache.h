// Content-addressed result cache: the api::CellCache the campaign daemon
// plugs into api::run_campaign.
//
// One entry is one completed (scheme, fault-class, seed-set) cell — the
// unit records of its original run, in emission order — addressed by
// api::cell_key (hash of the canonical cell identity JSON, which folds in
// the engine revision).  Two tiers:
//
//   memory   an LRU of the most recently touched cells (always on),
//   disk     one JSON file per cell under `dir` (optional: empty dir =
//            memory-only).  Files are written crash-atomically
//            (unique tmp + fsync + rename + directory fsync,
//            util/fs.h) and survive daemon restarts; a memory miss falls
//            through to disk and promotes the entry back into the LRU.
//
// The disk tier is an accelerator, never a dependency: every disk failure
// is counted (Counters::disk_errors) and swallowed, and after
// kMaxConsecutiveDiskFailures in a row the tier turns itself off
// (disk_degraded) and the cache runs memory-only — a full or dying disk
// cannot abort or stall a campaign.  Chaos coverage injects these paths
// via the cache.disk_write / cache.disk_read failpoints.
//
// Correctness over trust: every entry stores the full identity string and
// lookup() verifies it, so a hash collision, a truncated file or a foreign
// file dropped into the cache directory degrades to a miss.  The disk file
// is parsed with the same hardened JSON parser as every other input.
//
// Wipe the cache directory whenever api::engine_revision() is NOT bumped
// across a change that alters verdicts (it should be; the revision is part
// of the identity precisely so stale results never match) — or simply when
// reclaiming space.  All methods are thread-safe.
#ifndef TWM_SERVICE_CACHE_H
#define TWM_SERVICE_CACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "api/runner.h"

namespace twm::service {

class ResultCache : public api::CellCache {
 public:
  struct Config {
    std::string dir;                  // empty = memory-only
    std::size_t memory_entries = 256; // LRU capacity (>= 1)
  };

  // Monotonic effectiveness counters (returned by value: the cache is
  // shared across client threads).
  struct Counters {
    std::uint64_t hits = 0;        // lookup served (memory or disk)
    std::uint64_t disk_hits = 0;   // ... of which required the disk tier
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;   // LRU entries displaced from memory
    std::uint64_t entries = 0;     // current memory-tier size
    std::uint64_t disk_errors = 0; // failed disk reads/writes (non-fatal)
    bool disk_degraded = false;    // disk tier disabled after repeated errors
  };

  // Creates `dir` (and parents) when persistence is requested.  Throws
  // std::runtime_error when the directory cannot be created.
  explicit ResultCache(Config config);

  std::optional<api::CellRecords> lookup(const std::string& key,
                                         const std::string& identity) override;
  void store(const std::string& key, const std::string& identity,
             const api::CellRecords& records) override;

  Counters counters() const;

 private:
  struct Entry {
    std::string key;
    std::string identity;
    api::CellRecords records;
  };

  void insert_locked(const std::string& key, const std::string& identity,
                     const api::CellRecords& records);
  std::optional<api::CellRecords> load_disk(const std::string& key,
                                            const std::string& identity);
  void store_disk(const std::string& key, const std::string& identity,
                  const api::CellRecords& records);
  // Degradation ladder: a disk failure bumps disk_errors; after
  // kMaxConsecutiveDiskFailures in a row the disk tier is switched off and
  // the cache runs memory-only for the rest of the process — campaigns are
  // never aborted (or even slowed by retrying a dead disk) on behalf of an
  // accelerator.  A success before the threshold resets the run.
  void note_disk_result_locked(bool ok);
  bool disk_usable_locked() const;
  std::string path_for(const std::string& key) const;

  static constexpr int kMaxConsecutiveDiskFailures = 3;

  Config config_;
  int consecutive_disk_failures_ = 0;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> by_identity_;
  Counters counters_;
};

}  // namespace twm::service

#endif  // TWM_SERVICE_CACHE_H
