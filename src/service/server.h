// The campaign daemon behind `twm_cli serve`.
//
// One TCP listener (127.0.0.1 by default), one thread per connected
// client, ONE campaign executing at a time: submissions from concurrent
// clients queue on the shared engine lock, and the running campaign fans
// out over its own spec.threads through the engine's run_pool — the
// "shared pool" every front-end submission multiplexes onto.  Results
// stream back per client as the api::JsonLinesSink record stream while the
// campaign runs, so a client tails its own campaign only.
//
// In front of the engine sits the content-addressed ResultCache
// (service/cache.h): every (scheme, fault-class, seed-set) cell is served
// by replaying stored records when its cell_key hits, byte-identically to
// the original live run, and each submit's closing campaign_stats frame
// reports exactly how many cells replayed vs. simulated.
//
// Cancellation: a client that disconnects (or half-closes) mid-campaign is
// detected between units — the sink polls the socket for POLLRDHUP/HUP and
// write failures — and its campaign stops claiming work cooperatively.
// Completed cells stay cached, so the resubmitted campaign resumes from
// where the disconnect left it.
//
// The daemon binds loopback by default and is engineered for hostile
// input (frame caps, parser nesting caps, structural spec validation), but
// it carries no authentication — bind non-loopback addresses only on
// networks where every peer may submit work.
#ifndef TWM_SERVICE_SERVER_H
#define TWM_SERVICE_SERVER_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.h"

namespace twm::service {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; start() returns the bound port
  std::string cache_dir;   // empty = memory-only result cache
  std::size_t cache_entries = 256;
  unsigned max_clients = 32;  // concurrent connections; excess refused
  // Per-client idle timeout between frames (ms; 0 = never).  An idle
  // client gets one retryable "timeout" error frame, then the connection
  // closes — a stuck peer cannot pin a client slot forever.  Campaigns in
  // flight are unaffected: the clock only runs while waiting for the next
  // request frame.
  unsigned idle_timeout_ms = 0;
};

class ServiceServer {
 public:
  struct Counters {
    std::uint64_t clients_served = 0;
    std::uint64_t clients_refused = 0;
    std::uint64_t campaigns = 0;            // completed submit frames
    std::uint64_t campaigns_cancelled = 0;  // stopped by client disconnect
    std::uint64_t frames_rejected = 0;      // malformed frames (conn closed)
    std::uint64_t specs_rejected = 0;       // well-formed but invalid specs
    std::uint64_t campaigns_failed = 0;     // engine errors (typed frame sent)
    std::uint64_t clients_timed_out = 0;    // idle-timeout disconnects
  };

  explicit ServiceServer(ServerConfig config);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  // Binds and listens; returns the actually-bound port (resolves port 0).
  // Throws std::runtime_error on bind/listen failure.
  std::uint16_t start();

  // Accept loop on the calling thread; returns after stop() (which a
  // shutdown frame triggers) once every client thread is joined.
  void serve_forever();

  // Idempotent, callable from any thread and from signal-adjacent paths:
  // wakes the accept loop and shuts down every live client socket, which
  // cancels in-flight campaigns cooperatively.
  void stop();

  std::uint16_t port() const { return port_; }
  Counters counters() const;
  ResultCache::Counters cache_counters() const { return cache_.counters(); }

 private:
  void client_loop(int fd);
  bool handle_submit(int fd, const api::CampaignSpec& spec);
  std::string compose_stats_frame();

  ServerConfig config_;
  ResultCache cache_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::mutex engine_mu_;  // the one-campaign-at-a-time queue

  std::mutex clients_mu_;
  std::vector<int> client_fds_;
  std::atomic<unsigned> active_clients_{0};

  mutable std::mutex counters_mu_;
  Counters counters_;
};

}  // namespace twm::service

#endif  // TWM_SERVICE_SERVER_H
