// Shared socket primitives for the service layer: every raw send/recv/
// accept/poll goes through here so EINTR retry, MSG_NOSIGNAL, and the
// socket.* failpoints are applied uniformly on both the server and the
// client side.
//
// Failpoints (see util/failpoint.h):
//   socket.send    err -> the send reports failure (peer looks dead)
//                  drop -> the bytes vanish (reported as sent)
//                  eintr -> one synthetic EINTR, then the real send
//   socket.recv    err -> recv fails with ECONNRESET
//                  drop -> recv reports EOF (peer looks closed)
//                  eintr -> one synthetic EINTR, then the real recv
//   socket.accept  err -> the accepted connection is closed immediately
//                  (client sees an instant disconnect), eintr -> synthetic
//                  EINTR before the real accept
#ifndef TWM_SERVICE_NET_H
#define TWM_SERVICE_NET_H

#include <cstddef>
#include <sys/types.h>

struct pollfd;

namespace twm::service {

// Sends all of data[0..size); EINTR-retried, MSG_NOSIGNAL.  False when the
// peer is gone or a socket.send failpoint fires `err`.
bool net_send_all(int fd, const char* data, std::size_t size);

// recv() with EINTR retry.  Returns >0 bytes, 0 on EOF, <0 on error
// (errno set) — the raw recv contract, minus the EINTR case.
ssize_t net_recv(int fd, char* buf, std::size_t size);

// accept4(SOCK_CLOEXEC) with EINTR retry.  Returns the fd or <0.
int net_accept(int listen_fd);

// poll() with EINTR retry.  Retries restart the full timeout, which is
// acceptable for our two call sites (0-timeout disconnect probe, idle
// timeout where an occasionally-stretched deadline is harmless).
int net_poll(pollfd* fds, unsigned long nfds, int timeout_ms);

// Ignores SIGPIPE process-wide (idempotent).  MSG_NOSIGNAL covers send();
// this covers any write-shaped path that is not a send, so a dying client
// can never signal-kill the daemon.
void ignore_sigpipe();

}  // namespace twm::service

#endif  // TWM_SERVICE_NET_H
