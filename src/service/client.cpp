#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "service/net.h"

namespace twm::service {

LineClient::~LineClient() { close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

bool LineClient::connect(const std::string& host, std::uint16_t port, std::string* error) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "'" + host + "' is not an IPv4 address";
    return false;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // EINTR during connect does NOT abort the handshake — the kernel keeps
    // going; re-calling connect() would race it.  Wait for completion and
    // read the verdict from SO_ERROR.
    bool ok = false;
    if (errno == EINTR) {
      pollfd p{};
      p.fd = fd_;
      p.events = POLLOUT;
      if (net_poll(&p, 1, /*timeout_ms=*/-1) > 0) {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        ok = ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 && so_error == 0;
        if (!ok) errno = so_error;
      }
    }
    if (!ok) {
      if (error)
        *error = "connect(" + host + ":" + std::to_string(port) +
                 "): " + std::strerror(errno);
      close();
      return false;
    }
  }
  return true;
}

bool LineClient::send_line(const std::string& frame) {
  if (fd_ < 0) return false;
  const std::string line = frame + "\n";
  return net_send_all(fd_, line.data(), line.size());
}

std::optional<std::string> LineClient::recv_line() {
  if (fd_ < 0) return std::nullopt;
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = net_recv(fd_, chunk, sizeof(chunk));
    if (n <= 0) return std::nullopt;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void LineClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void LineClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace twm::service
