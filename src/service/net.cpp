#include "service/net.h"

#include <cerrno>
#include <csignal>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/failpoint.h"

namespace twm::service {

bool net_send_all(int fd, const char* data, std::size_t size) {
  if (auto fp = TWM_FAILPOINT("socket.send")) {
    switch (*fp) {
      case util::FailAction::Drop:
        return true;  // bytes vanish; the peer's framing sees a hole
      case util::FailAction::Eintr:
        break;  // a real send loop would just retry; fall through to it
      default:
        errno = EPIPE;
        return false;
    }
  }
  while (size > 0) {
    // MSG_NOSIGNAL: a vanished peer is a return value, not a SIGPIPE.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t net_recv(int fd, char* buf, std::size_t size) {
  if (auto fp = TWM_FAILPOINT("socket.recv")) {
    switch (*fp) {
      case util::FailAction::Drop:
        return 0;  // synthetic EOF
      case util::FailAction::Eintr:
        break;  // synthetic EINTR: retried below like the real thing
      default:
        errno = ECONNRESET;
        return -1;
    }
  }
  while (true) {
    const ssize_t n = ::recv(fd, buf, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

int net_accept(int listen_fd) {
  bool inject_err = false;
  if (auto fp = TWM_FAILPOINT("socket.accept"))
    inject_err = *fp != util::FailAction::Eintr;
  while (true) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0 && errno == EINTR) continue;
    if (fd >= 0 && inject_err) {
      // The connection was already completed by the kernel; failing the
      // accept means hanging up on it immediately.
      ::close(fd);
      errno = ECONNABORTED;
      return -1;
    }
    return fd;
  }
}

int net_poll(pollfd* fds, unsigned long nfds, int timeout_ms) {
  while (true) {
    const int rc = ::poll(fds, nfds, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace twm::service
