#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ostream>
#include <stdexcept>
#include <streambuf>

#include "api/error.h"
#include "api/json.h"
#include "api/runner.h"
#include "api/sink.h"
#include "service/net.h"
#include "service/protocol.h"

// Half-close detection; glibc gates the real constant behind _GNU_SOURCE
// (which libstdc++ builds define anyway — this is a belt for other libcs).
#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace twm::service {

namespace {

bool send_line(int fd, const std::string& frame) {
  const std::string line = frame + "\n";
  return net_send_all(fd, line.data(), line.size());
}

// std::streambuf over a socket so the existing JsonLinesSink can stream
// straight onto the wire.  Buffered per record (the sink flushes each
// line); a failed send latches `failed` instead of throwing mid-campaign.
class FdStreambuf : public std::streambuf {
 public:
  FdStreambuf(int fd, std::atomic<bool>& failed) : fd_(fd), failed_(failed) {
    setp(buffer_, buffer_ + sizeof(buffer_));
  }
  ~FdStreambuf() override { sync(); }

 protected:
  int overflow(int ch) override {
    if (flush_buffer() != 0) return traits_type::eof();
    if (ch != traits_type::eof()) {
      *pptr() = static_cast<char>(ch);
      pbump(1);
    }
    return ch;
  }

  int sync() override { return flush_buffer(); }

 private:
  int flush_buffer() {
    const std::size_t pending = static_cast<std::size_t>(pptr() - pbase());
    if (pending > 0 && !net_send_all(fd_, pbase(), pending))
      failed_.store(true, std::memory_order_relaxed);
    setp(buffer_, buffer_ + sizeof(buffer_));
    // Report success even after a send failure: the sink keeps formatting
    // into the void, cancellation (below) ends the campaign cooperatively.
    return 0;
  }

  int fd_;
  std::atomic<bool>& failed_;
  char buffer_[4096];
};

// JsonLinesSink whose cancelled() notices the client leaving: either a
// record failed to send, or the peer closed/half-closed its end
// (POLLRDHUP — deliberately not POLLIN, so pipelined follow-up frames
// sitting in the receive buffer don't read as a disconnect).
class SocketSink : public api::JsonLinesSink {
 public:
  SocketSink(std::ostream& out, int fd, std::atomic<bool>& send_failed)
      : JsonLinesSink(out), fd_(fd), send_failed_(send_failed) {}

  // The service reports failures as one protocol-level error frame (the
  // client's drain loop treats an error frame as the exchange terminator);
  // an additional in-stream record would desynchronize the next exchange.
  void on_error(const api::Error&) override {}

  bool cancelled() const override {
    if (send_failed_.load(std::memory_order_relaxed)) return true;
    pollfd p{};
    p.fd = fd_;
    p.events = POLLRDHUP;
    const int rc = net_poll(&p, 1, /*timeout_ms=*/0);
    return rc > 0 && (p.revents & (POLLRDHUP | POLLERR | POLLHUP | POLLNVAL)) != 0;
  }

 private:
  int fd_;
  std::atomic<bool>& send_failed_;
};

// Reads '\n'-delimited lines from a socket, refusing to buffer more than
// `cap` bytes of any single line (the frame-size ceiling enforced before
// any parsing happens).  With a nonzero idle timeout, waiting longer than
// `idle_timeout_ms` for the peer's next byte reports Timeout instead of
// blocking forever.
class LineReader {
 public:
  enum class Status { Line, Eof, Overflow, Error, Timeout };

  LineReader(int fd, std::size_t cap, unsigned idle_timeout_ms = 0)
      : fd_(fd), cap_(cap), idle_timeout_ms_(idle_timeout_ms) {}

  Status read_line(std::string& out) {
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        out.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        if (!out.empty() && out.back() == '\r') out.pop_back();
        return Status::Line;
      }
      if (buffer_.size() > cap_) return Status::Overflow;
      if (idle_timeout_ms_ > 0) {
        pollfd p{};
        p.fd = fd_;
        p.events = POLLIN;
        const int rc = net_poll(&p, 1, static_cast<int>(idle_timeout_ms_));
        if (rc == 0) return Status::Timeout;
        if (rc < 0) return Status::Error;
      }
      char chunk[4096];
      const ssize_t n = net_recv(fd_, chunk, sizeof(chunk));
      if (n == 0) return Status::Eof;
      if (n < 0) return Status::Error;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::size_t cap_;
  unsigned idle_timeout_ms_;
  std::string buffer_;
};

}  // namespace

ServiceServer::ServiceServer(ServerConfig config)
    : config_(std::move(config)),
      cache_({config_.cache_dir, config_.cache_entries}) {}

ServiceServer::~ServiceServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::uint16_t ServiceServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("serve: '" + config_.host + "' is not an IPv4 address");

  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error("bind(" + config_.host + ":" + std::to_string(config_.port) +
                             "): " + std::string(std::strerror(errno)));
  if (::listen(listen_fd_, 16) != 0)
    throw std::runtime_error("listen(): " + std::string(std::strerror(errno)));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    throw std::runtime_error("getsockname(): " + std::string(std::strerror(errno)));
  port_ = ntohs(bound.sin_port);
  return port_;
}

void ServiceServer::serve_forever() {
  // Belt to MSG_NOSIGNAL's suspenders: no write path anywhere in the
  // process may turn a dying client into a fatal signal.
  ignore_sigpipe();
  std::vector<std::thread> workers;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = net_accept(listen_fd_);
    if (fd < 0) {
      // Transient per-connection failures (the peer aborted the handshake,
      // fd pressure) must not take the whole daemon down with them.
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
          errno == ENOBUFS || errno == ENOMEM || errno == EPROTO)
        continue;
      break;  // listener shut down (stop()) or unrecoverable
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (active_clients_.load(std::memory_order_relaxed) >= config_.max_clients) {
      send_line(fd, error_frame("frame", "server at max_clients capacity"));
      ::close(fd);
      const std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.clients_refused;
      continue;
    }
    active_clients_.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(clients_mu_);
      client_fds_.push_back(fd);
    }
    workers.emplace_back([this, fd] { client_loop(fd); });
  }
  for (std::thread& t : workers) t.join();
}

void ServiceServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Wake the accept loop; on Linux shutdown() on a listening socket makes
  // the blocked accept return.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Shut down live clients: their reads hit EOF, their campaigns see a
  // dead socket and cancel cooperatively.
  const std::lock_guard<std::mutex> lock(clients_mu_);
  for (int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
}

ServiceServer::Counters ServiceServer::counters() const {
  const std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

std::string ServiceServer::compose_stats_frame() {
  const Counters c = counters();
  const ResultCache::Counters k = cache_.counters();
  std::string out = "{\"type\":\"stats\"";
  out += ",\"engine\":" + api::json_quote(std::string(api::engine_revision()));
  out += ",\"clients_served\":" + std::to_string(c.clients_served);
  out += ",\"clients_refused\":" + std::to_string(c.clients_refused);
  out += ",\"campaigns\":" + std::to_string(c.campaigns);
  out += ",\"campaigns_cancelled\":" + std::to_string(c.campaigns_cancelled);
  out += ",\"frames_rejected\":" + std::to_string(c.frames_rejected);
  out += ",\"specs_rejected\":" + std::to_string(c.specs_rejected);
  out += ",\"campaigns_failed\":" + std::to_string(c.campaigns_failed);
  out += ",\"clients_timed_out\":" + std::to_string(c.clients_timed_out);
  out += ",\"cache\":{";
  out += "\"entries\":" + std::to_string(k.entries);
  out += ",\"hits\":" + std::to_string(k.hits);
  out += ",\"disk_hits\":" + std::to_string(k.disk_hits);
  out += ",\"misses\":" + std::to_string(k.misses);
  out += ",\"stores\":" + std::to_string(k.stores);
  out += ",\"evictions\":" + std::to_string(k.evictions);
  out += ",\"disk_errors\":" + std::to_string(k.disk_errors);
  out += ",\"disk_degraded\":" + std::string(k.disk_degraded ? "true" : "false");
  out += "}}";
  return out;
}

// Returns false when the connection is no longer usable.
bool ServiceServer::handle_submit(int fd, const api::CampaignSpec& spec) {
  const std::vector<api::SpecError> errors = api::validate(spec);
  if (!errors.empty()) {
    {
      const std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.specs_rejected;
    }
    return send_line(fd, error_frame("spec", "spec failed validation", errors));
  }

  std::atomic<bool> send_failed{false};
  FdStreambuf buf(fd, send_failed);
  std::ostream out(&buf);
  SocketSink sink(out, fd, send_failed);
  api::CacheStats stats;
  bool cancelled = false;
  try {
    // THE queue: one campaign at a time on the shared engine; the running
    // campaign fans out over its own spec.threads internally.
    const std::lock_guard<std::mutex> engine(engine_mu_);
    const api::CampaignSummary summary = api::run_campaign(spec, &sink, &cache_, &stats);
    cancelled = summary.cancelled;
  } catch (const std::exception& e) {
    // The sink's own error record (if any) is suppressed on the socket
    // path — the protocol-level error frame below is the one terminator
    // the client's drain loop keys on.
    {
      const std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.campaigns_failed;
    }
    return send_line(fd, error_frame(api::classify_exception(e)));
  }
  out.flush();

  {
    const std::lock_guard<std::mutex> lock(counters_mu_);
    if (cancelled)
      ++counters_.campaigns_cancelled;
    else
      ++counters_.campaigns;
  }
  if (send_failed.load(std::memory_order_relaxed)) return false;

  const std::string frame = "{\"type\":\"campaign_stats\",\"cells\":" +
                            std::to_string(stats.cells_total) +
                            ",\"cached\":" + std::to_string(stats.cells_cached) +
                            ",\"simulated\":" + std::to_string(stats.cells_simulated) +
                            ",\"faults_replayed\":" + std::to_string(stats.faults_replayed) +
                            ",\"cancelled\":" + (cancelled ? "true" : "false") + "}";
  return send_line(fd, frame);
}

void ServiceServer::client_loop(int fd) {
  // +2: allow the cap-sized payload plus its terminator to buffer; the
  // parse-level check in parse_frame is the authoritative one.
  LineReader reader(fd, kMaxFrameBytes + 2, config_.idle_timeout_ms);
  std::string line;
  bool running = true;
  while (running) {
    const LineReader::Status status = reader.read_line(line);
    if (status == LineReader::Status::Eof || status == LineReader::Status::Error) break;
    if (status == LineReader::Status::Timeout) {
      send_line(fd, error_frame({api::ErrorCategory::Timeout, /*retryable=*/true,
                                 "idle timeout: no frame in " +
                                     std::to_string(config_.idle_timeout_ms) + " ms"}));
      const std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.clients_timed_out;
      break;
    }
    if (status == LineReader::Status::Overflow) {
      send_line(fd, error_frame("frame", "frame exceeds " + std::to_string(kMaxFrameBytes) +
                                             " bytes"));
      const std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.frames_rejected;
      break;
    }
    if (line.empty()) continue;  // bare keep-alive newline

    ParsedFrame parsed = parse_frame(line);
    if (!parsed.ok()) {
      if (!parsed.spec_errors.empty()) {
        // Well-formed frame, structurally broken spec: report and keep the
        // connection open for a corrected resubmit.
        send_line(fd, error_frame("spec", parsed.error, parsed.spec_errors));
        const std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.specs_rejected;
        continue;
      }
      // Malformed framing: not negotiated with — one error, then hang up.
      send_line(fd, error_frame("frame", parsed.error));
      {
        const std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.frames_rejected;
      }
      break;
    }

    switch (parsed.frame->kind) {
      case Frame::Kind::Ping:
        running = send_line(fd, "{\"type\":\"pong\"}");
        break;
      case Frame::Kind::Stats:
        running = send_line(fd, compose_stats_frame());
        break;
      case Frame::Kind::Shutdown:
        send_line(fd, "{\"type\":\"bye\"}");
        stop();
        running = false;
        break;
      case Frame::Kind::Submit:
        running = handle_submit(fd, parsed.frame->spec);
        break;
    }
  }

  ::close(fd);
  {
    const std::lock_guard<std::mutex> lock(clients_mu_);
    std::erase(client_fds_, fd);
  }
  active_clients_.fetch_sub(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.clients_served;
}

}  // namespace twm::service
