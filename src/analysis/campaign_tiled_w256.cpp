// Tiled campaign backend, AVX2 inner block: LaneTile<LaneBlock<4>, T> —
// every per-cell tile loop is T 256-bit vector operations (4096 lanes =
// 16 x LaneBlock<4>, 32768 lanes = 128 x LaneBlock<4>).
//
// Compiled with -mavx2 (see CMakeLists.txt).  Nothing in here may run
// before simd::supported(Width::W256) returned true — the dispatcher in
// analysis/campaign.cpp is the only caller and checks exactly that.
#include <stdexcept>

#include "analysis/campaign_exec.h"

namespace twm {

namespace {

template <class Tile>
void run_tiled(const CampaignJob& job) {
  if (job.schedule == ScheduleMode::Repack)
    run_campaign_engine_repack<PackedEngineT<Tile>>(job);
  else
    run_campaign_engine<PackedEngineT<Tile>>(job);
}

}  // namespace

void run_campaign_tiled_w256(const CampaignJob& job, unsigned lanes) {
  switch (lanes) {
    case kTileLanesSmall: return run_tiled<LaneTile<LaneBlock<4>, 16>>(job);
    case kTileLanesLarge: return run_tiled<LaneTile<LaneBlock<4>, 128>>(job);
  }
  throw std::logic_error("tiled backend: no tile compiled for " + std::to_string(lanes) +
                         " lanes");
}

}  // namespace twm
