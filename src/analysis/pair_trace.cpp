#include "analysis/pair_trace.h"

#include <sstream>

namespace twm {

std::string PairEventRecord::describe() const {
  std::ostringstream os;
  os << (kind == OpKind::Read ? "r" : "w") << " @w" << addr << "  (" << before_i << before_j
     << ")->(" << after_i << after_j << ")";
  return os.str();
}

PairStateTrace::PairStateTrace(const Memory& mem, CellAddr i, CellAddr j)
    : mem_(mem), i_(i), j_(j) {
  last_i_ = mem_.peek(i_.word).get(i_.bit);
  last_j_ = mem_.peek(j_.word).get(j_.bit);
}

void PairStateTrace::on_op(std::size_t element, std::size_t op_index, std::size_t addr,
                           const Op& op, const BitVec& /*value*/) {
  PairEventRecord ev;
  ev.element = element;
  ev.op_index = op_index;
  ev.kind = op.kind;
  ev.addr = addr;
  ev.touches_i = (addr == i_.word);
  ev.touches_j = (addr == j_.word);
  ev.before_i = last_i_;
  ev.before_j = last_j_;
  ev.after_i = mem_.peek(i_.word).get(i_.bit);
  ev.after_j = mem_.peek(j_.word).get(j_.bit);
  last_i_ = ev.after_i;
  last_j_ = ev.after_j;
  events_.push_back(ev);
}

std::set<std::pair<bool, bool>> PairStateTrace::states_visited() const {
  std::set<std::pair<bool, bool>> s;
  if (!events_.empty()) s.insert({events_.front().before_i, events_.front().before_j});
  for (const auto& e : events_) s.insert({e.after_i, e.after_j});
  return s;
}

IntraPairConditions analyze_intra_pair(const std::vector<PairEventRecord>& events) {
  IntraPairConditions cond;
  // Pending write events (direction, victim-flip) awaiting a confirming
  // read; a write of the victim's word cancels unconfirmed ones.
  struct Pending {
    int dir;
    int vic_flip;
  };
  std::vector<Pending> pending;

  for (const auto& ev : events) {
    if (!(ev.touches_i && ev.touches_j)) continue;  // same word for intra-pair
    if (ev.kind == OpKind::Write) {
      // Any write re-stores the victim: earlier unconfirmed activations are
      // overwritten before observation.
      pending.clear();
      if (ev.before_i != ev.after_i) {
        const int dir = (!ev.before_i && ev.after_i) ? 0 : 1;
        const int vic_flip = (ev.before_j != ev.after_j) ? 1 : 0;
        pending.push_back({dir, vic_flip});
      }
    } else {
      for (const auto& p : pending) cond.covered[p.dir][p.vic_flip] = true;
      pending.clear();
    }
  }
  return cond;
}

}  // namespace twm
