#include "analysis/interference.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace twm {

double InterferenceModel::completion_probability() const {
  if (write_prob_per_step < 0.0 || write_prob_per_step > 1.0)
    throw std::invalid_argument("InterferenceModel: p outside [0,1]");
  return std::pow(1.0 - write_prob_per_step, static_cast<double>(session_steps));
}

double InterferenceModel::expected_attempts() const {
  const double q = completion_probability();
  if (q <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / q;
}

double InterferenceModel::expected_total_steps() const {
  const double p = write_prob_per_step;
  const std::uint64_t L = session_steps;
  if (p == 0.0) return static_cast<double>(L);
  const double q = completion_probability();
  if (q <= 0.0) return std::numeric_limits<double>::infinity();
  // E[steps of one attempt | aborted] * E[# aborted attempts] + L.
  // An attempt aborts at step k (1-indexed) with prob (1-p)^(k-1) p, for
  // k = 1..L; conditional mean:
  const double one_minus = 1.0 - p;
  const double fail_prob = 1.0 - q;
  // Sum k (1-p)^(k-1) p for k=1..L  (unconditional partial expectation).
  const double partial =
      (1.0 - std::pow(one_minus, L) * (1.0 + L * p)) / p;
  const double mean_abort_len = partial / fail_prob;
  const double aborted_attempts = fail_prob / q;  // E[failures before success]
  return aborted_attempts * mean_abort_len + static_cast<double>(L);
}

InterferenceSim simulate_interference(const InterferenceModel& m, Rng& rng,
                                      std::uint64_t max_attempts) {
  InterferenceSim sim;
  const double p = m.write_prob_per_step;
  const std::uint64_t scale = 1ull << 32;
  const auto threshold = static_cast<std::uint64_t>(p * static_cast<double>(scale));
  while (sim.attempts < max_attempts) {
    ++sim.attempts;
    bool aborted = false;
    for (std::uint64_t s = 0; s < m.session_steps; ++s) {
      ++sim.total_steps;
      if ((rng.next_u64() & (scale - 1)) < threshold) {
        aborted = true;
        break;
      }
    }
    if (!aborted) {
      sim.completed = true;
      return sim;
    }
  }
  return sim;
}

}  // namespace twm
