// Tiled campaign backend, portable inner block: LaneTile<std::uint64_t, T>
// — T plain 64-bit words per lane operation, 4096 or 32768 fault universes
// per machine pass (memsim/lane_tile.h).
//
// This is the fallback tile instantiation: no arch flags, safe on every
// CPU.  The dispatcher (analysis/campaign.cpp) only lands here when the
// running CPU supports neither AVX2 nor AVX-512F; otherwise it calls the
// vector-inner-block twins in campaign_tiled_w256.cpp / _w512.cpp.
#include <stdexcept>

#include "analysis/campaign_exec.h"

namespace twm {

namespace {

template <class Tile>
void run_tiled(const CampaignJob& job) {
  if (job.schedule == ScheduleMode::Repack)
    run_campaign_engine_repack<PackedEngineT<Tile>>(job);
  else
    run_campaign_engine<PackedEngineT<Tile>>(job);
}

}  // namespace

void run_campaign_tiled_base(const CampaignJob& job, unsigned lanes) {
  switch (lanes) {
    case kTileLanesSmall: return run_tiled<LaneTile<std::uint64_t, 64>>(job);
    case kTileLanesLarge: return run_tiled<LaneTile<std::uint64_t, 512>>(job);
  }
  throw std::logic_error("tiled backend: no tile compiled for " + std::to_string(lanes) +
                         " lanes");
}

}  // namespace twm
