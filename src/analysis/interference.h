// Idle-time interference model.
//
// The paper's core motivation (Sec. 1/4): transparent tests run in system
// idle state, so a shorter test is less likely to be interrupted and
// re-run.  With functional writes arriving as a Bernoulli process of
// probability p per controller step, a session of L steps completes only
// if no write lands inside it:
//
//   P(complete) = (1-p)^L
//   E[attempts] = (1-p)^-L
//   E[wasted steps per success] ~ geometric restart cost (closed form below)
//
// This module provides the closed forms and a discrete-time simulator to
// validate them; bench_interference tabulates the three schemes' session
// lengths against write rates, which turns Table 3's op counts into the
// paper's actual argument — completion probability collapses exponentially
// in session length.
#ifndef TWM_ANALYSIS_INTERFERENCE_H
#define TWM_ANALYSIS_INTERFERENCE_H

#include <cstdint>

#include "util/rng.h"

namespace twm {

struct InterferenceModel {
  std::uint64_t session_steps = 0;  // L: TCP + TCM per word, times N (+1)
  double write_prob_per_step = 0.0;  // p

  // Probability a session runs to completion uninterrupted.
  double completion_probability() const;
  // Expected number of attempts until one completes (geometric).
  double expected_attempts() const;
  // Expected total steps spent (aborted attempts' partial cost + the final
  // full session).  Closed form for the geometric/truncated process.
  double expected_total_steps() const;
};

struct InterferenceSim {
  std::uint64_t attempts = 0;
  std::uint64_t total_steps = 0;
  bool completed = false;
};

// Monte-Carlo of the same process: repeat sessions until one completes (or
// `max_attempts` is hit), drawing a write in each step with probability p.
InterferenceSim simulate_interference(const InterferenceModel& m, Rng& rng,
                                      std::uint64_t max_attempts = 100000);

}  // namespace twm

#endif  // TWM_ANALYSIS_INTERFERENCE_H
