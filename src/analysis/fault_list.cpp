#include "analysis/fault_list.h"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>

#include "core/scheme_session.h"

namespace twm {
namespace {

bool scope_ok(const CellAddr& agg, const CellAddr& vic, CfScope scope) {
  switch (scope) {
    case CfScope::IntraWord: return agg.word == vic.word;
    case CfScope::InterWord: return agg.word != vic.word;
    case CfScope::Both: return true;
  }
  return false;
}

// All class variants of a coupling fault between a fixed cell pair.
void push_variants(std::vector<Fault>& out, FaultClass cls, CellAddr agg, CellAddr vic) {
  switch (cls) {
    case FaultClass::CFst:
      for (bool s : {false, true})
        for (bool v : {false, true}) out.push_back(Fault::cfst(agg, s, vic, v));
      break;
    case FaultClass::CFid:
      for (Transition t : {Transition::Up, Transition::Down})
        for (bool v : {false, true}) out.push_back(Fault::cfid(agg, t, vic, v));
      break;
    case FaultClass::CFin:
      for (Transition t : {Transition::Up, Transition::Down})
        out.push_back(Fault::cfin(agg, t, vic));
      break;
    default:
      throw std::invalid_argument("push_variants: not a coupling fault class");
  }
}

}  // namespace

std::vector<Fault> all_safs(std::size_t words, unsigned width) {
  std::vector<Fault> out;
  out.reserve(words * width * 2);
  for (std::size_t w = 0; w < words; ++w)
    for (unsigned b = 0; b < width; ++b)
      for (bool v : {false, true}) out.push_back(Fault::saf({w, b}, v));
  return out;
}

std::vector<Fault> all_tfs(std::size_t words, unsigned width) {
  std::vector<Fault> out;
  out.reserve(words * width * 2);
  for (std::size_t w = 0; w < words; ++w)
    for (unsigned b = 0; b < width; ++b)
      for (Transition t : {Transition::Up, Transition::Down})
        out.push_back(Fault::tf({w, b}, t));
  return out;
}

std::vector<Fault> all_rets(std::size_t words, unsigned width, unsigned hold_units) {
  std::vector<Fault> out;
  out.reserve(words * width * 2);
  for (std::size_t w = 0; w < words; ++w)
    for (unsigned b = 0; b < width; ++b)
      for (bool v : {false, true}) out.push_back(Fault::ret({w, b}, v, hold_units));
  return out;
}

std::vector<Fault> all_afs(std::size_t words) {
  std::vector<Fault> out;
  out.reserve(words * words);
  for (std::size_t w = 0; w < words; ++w) out.push_back(Fault::af_no_access(w));
  for (std::size_t w = 0; w < words; ++w)
    for (std::size_t also = 0; also < words; ++also)
      if (also != w) out.push_back(Fault::af_alias(w, also));
  return out;
}

std::vector<Fault> all_cfs(std::size_t words, unsigned width, FaultClass cls, CfScope scope) {
  std::vector<Fault> out;
  for (std::size_t aw = 0; aw < words; ++aw)
    for (unsigned ab = 0; ab < width; ++ab)
      for (std::size_t vw = 0; vw < words; ++vw)
        for (unsigned vb = 0; vb < width; ++vb) {
          const CellAddr agg{aw, ab};
          const CellAddr vic{vw, vb};
          if (agg == vic || !scope_ok(agg, vic, scope)) continue;
          push_variants(out, cls, agg, vic);
        }
  return out;
}

// ---- structural fault collapsing ----------------------------------------

namespace {

// All bits of the mask equal: the op writes (or expects) solid data.
bool solid_mask(const BitVec& mask) {
  for (unsigned j = 1; j < mask.width(); ++j)
    if (mask.get(j) != mask.get(0)) return false;
  return true;
}

bool all_ops_solid(const MarchTest& test, unsigned width) {
  for (const MarchElement& elem : test.elements)
    for (const Op& op : elem.ops)
      if (!solid_mask(op.data.mask(width))) return false;
  return true;
}

// The canonical bucket key: every field that can influence the verdict
// under the active collapsing rules.  kNoBit erases a bit index the rules
// proved irrelevant.
constexpr std::uint64_t kNoBit = ~0ull;
using BucketKey = std::array<std::uint64_t, 8>;

BucketKey bucket_key(const Fault& f, bool zero_contents, bool bit_symmetric) {
  Fault c = f;  // canonical form
  // SAF/TF equivalence: a cell that starts at 0 and cannot rise IS a cell
  // stuck at 0 (and, symmetrically in the model, a cell that cannot fall
  // from an initial 1 would be stuck at 1 — unreachable from all-zero
  // contents, so only the TF-up fold applies here).
  if (zero_contents && c.cls == FaultClass::TF && c.trans == Transition::Up) {
    c.cls = FaultClass::SAF;
    c.value = false;
    c.trans = Transition::Up;
  }
  std::uint64_t vbit = c.is_decoder() ? kNoBit : c.victim.bit;
  std::uint64_t abit = c.is_coupling() ? c.aggressor.bit : kNoBit;
  if (bit_symmetric && !c.is_decoder()) {
    vbit = kNoBit;
    abit = kNoBit;
  }
  return {static_cast<std::uint64_t>(c.cls),
          c.victim.word,
          vbit,
          c.is_coupling() || c.cls == FaultClass::AFaw ? c.aggressor.word : kNoBit,
          abit,
          static_cast<std::uint64_t>(c.value),
          (static_cast<std::uint64_t>(c.trans) << 1) | static_cast<std::uint64_t>(c.state),
          c.cls == FaultClass::RET ? c.retention : 0};
}

}  // namespace

bool plan_bit_symmetric(const SchemePlan& plan) {
  switch (plan.scheme) {
    case SchemeKind::ProposedMisr: return false;   // MISR folds bits by position
    case SchemeKind::TomtModel: return false;      // per-bit flip blocks
    case SchemeKind::NontransparentReference:
      return all_ops_solid(plan.direct_a, plan.width) &&
             all_ops_solid(plan.direct_b, plan.width);
    case SchemeKind::WordOrientedMarch:
      return all_ops_solid(plan.direct_a, plan.width);  // false: D backgrounds
    case SchemeKind::ProposedExact:
    case SchemeKind::TsmarchOnly:
    case SchemeKind::Scheme1Exact:
      return all_ops_solid(plan.trans, plan.width) &&
             all_ops_solid(plan.prediction, plan.width);
    case SchemeKind::ProposedSymmetricXor:
      return all_ops_solid(plan.sym.test, plan.width);
  }
  return false;
}

FaultCollapse collapse_faults(const std::vector<Fault>& faults, const SchemePlan& plan,
                              const std::vector<std::uint64_t>& seeds) {
  const bool zero_contents =
      std::all_of(seeds.begin(), seeds.end(), [](std::uint64_t s) { return s == 0; });
  const bool bit_symmetric = zero_contents && plan_bit_symmetric(plan);

  FaultCollapse fc;
  fc.bucket_of.resize(faults.size());
  std::map<BucketKey, std::uint32_t> buckets;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const BucketKey key = bucket_key(faults[i], zero_contents, bit_symmetric);
    const auto [it, inserted] =
        buckets.emplace(key, static_cast<std::uint32_t>(fc.representatives.size()));
    if (inserted) {
      fc.representatives.push_back(faults[i]);
      fc.members.emplace_back();
    }
    fc.bucket_of[i] = it->second;
    fc.members[it->second].push_back(static_cast<std::uint32_t>(i));
  }
  return fc;
}

std::vector<Fault> sampled_cfs(std::size_t words, unsigned width, FaultClass cls, CfScope scope,
                               std::size_t count, Rng& rng) {
  std::vector<Fault> out;
  out.reserve(count);
  while (out.size() < count) {
    const CellAddr agg{static_cast<std::size_t>(rng.next_below(words)),
                       static_cast<unsigned>(rng.next_below(width))};
    const CellAddr vic{static_cast<std::size_t>(rng.next_below(words)),
                       static_cast<unsigned>(rng.next_below(width))};
    if (agg == vic || !scope_ok(agg, vic, scope)) continue;
    std::vector<Fault> variants;
    push_variants(variants, cls, agg, vic);
    out.push_back(variants[rng.next_below(variants.size())]);
  }
  return out;
}

}  // namespace twm
