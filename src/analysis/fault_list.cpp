#include "analysis/fault_list.h"

#include <stdexcept>

namespace twm {
namespace {

bool scope_ok(const CellAddr& agg, const CellAddr& vic, CfScope scope) {
  switch (scope) {
    case CfScope::IntraWord: return agg.word == vic.word;
    case CfScope::InterWord: return agg.word != vic.word;
    case CfScope::Both: return true;
  }
  return false;
}

// All class variants of a coupling fault between a fixed cell pair.
void push_variants(std::vector<Fault>& out, FaultClass cls, CellAddr agg, CellAddr vic) {
  switch (cls) {
    case FaultClass::CFst:
      for (bool s : {false, true})
        for (bool v : {false, true}) out.push_back(Fault::cfst(agg, s, vic, v));
      break;
    case FaultClass::CFid:
      for (Transition t : {Transition::Up, Transition::Down})
        for (bool v : {false, true}) out.push_back(Fault::cfid(agg, t, vic, v));
      break;
    case FaultClass::CFin:
      for (Transition t : {Transition::Up, Transition::Down})
        out.push_back(Fault::cfin(agg, t, vic));
      break;
    default:
      throw std::invalid_argument("push_variants: not a coupling fault class");
  }
}

}  // namespace

std::vector<Fault> all_safs(std::size_t words, unsigned width) {
  std::vector<Fault> out;
  out.reserve(words * width * 2);
  for (std::size_t w = 0; w < words; ++w)
    for (unsigned b = 0; b < width; ++b)
      for (bool v : {false, true}) out.push_back(Fault::saf({w, b}, v));
  return out;
}

std::vector<Fault> all_tfs(std::size_t words, unsigned width) {
  std::vector<Fault> out;
  out.reserve(words * width * 2);
  for (std::size_t w = 0; w < words; ++w)
    for (unsigned b = 0; b < width; ++b)
      for (Transition t : {Transition::Up, Transition::Down})
        out.push_back(Fault::tf({w, b}, t));
  return out;
}

std::vector<Fault> all_rets(std::size_t words, unsigned width, unsigned hold_units) {
  std::vector<Fault> out;
  out.reserve(words * width * 2);
  for (std::size_t w = 0; w < words; ++w)
    for (unsigned b = 0; b < width; ++b)
      for (bool v : {false, true}) out.push_back(Fault::ret({w, b}, v, hold_units));
  return out;
}

std::vector<Fault> all_afs(std::size_t words) {
  std::vector<Fault> out;
  out.reserve(words * words);
  for (std::size_t w = 0; w < words; ++w) out.push_back(Fault::af_no_access(w));
  for (std::size_t w = 0; w < words; ++w)
    for (std::size_t also = 0; also < words; ++also)
      if (also != w) out.push_back(Fault::af_alias(w, also));
  return out;
}

std::vector<Fault> all_cfs(std::size_t words, unsigned width, FaultClass cls, CfScope scope) {
  std::vector<Fault> out;
  for (std::size_t aw = 0; aw < words; ++aw)
    for (unsigned ab = 0; ab < width; ++ab)
      for (std::size_t vw = 0; vw < words; ++vw)
        for (unsigned vb = 0; vb < width; ++vb) {
          const CellAddr agg{aw, ab};
          const CellAddr vic{vw, vb};
          if (agg == vic || !scope_ok(agg, vic, scope)) continue;
          push_variants(out, cls, agg, vic);
        }
  return out;
}

std::vector<Fault> sampled_cfs(std::size_t words, unsigned width, FaultClass cls, CfScope scope,
                               std::size_t count, Rng& rng) {
  std::vector<Fault> out;
  out.reserve(count);
  while (out.size() < count) {
    const CellAddr agg{static_cast<std::size_t>(rng.next_below(words)),
                       static_cast<unsigned>(rng.next_below(width))};
    const CellAddr vic{static_cast<std::size_t>(rng.next_below(words)),
                       static_cast<unsigned>(rng.next_below(width))};
    if (agg == vic || !scope_ok(agg, vic, scope)) continue;
    std::vector<Fault> variants;
    push_variants(variants, cls, agg, vic);
    out.push_back(variants[rng.next_below(variants.size())]);
  }
  return out;
}

}  // namespace twm
