#include "analysis/campaign.h"

#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "analysis/campaign_exec.h"
#include "analysis/fault_list.h"
#include "util/failpoint.h"

namespace twm {

std::string to_string(CoverageBackend b) {
  switch (b) {
    case CoverageBackend::Scalar: return "scalar";
    case CoverageBackend::Packed: return "packed";
  }
  return "?";
}

std::string to_string(ScheduleMode m) {
  switch (m) {
    case ScheduleMode::Dense: return "dense";
    case ScheduleMode::Repack: return "repack";
  }
  return "?";
}

void run_pool(unsigned threads, const std::function<void()>& worker) {
  std::mutex mu;
  std::exception_ptr err;
  auto guarded = [&] {
    try {
      // Chaos hook: an injected worker death exercises the same first-
      // exception-wins capture a genuine engine fault takes.
      if (TWM_FAILPOINT("campaign.worker"))
        throw std::runtime_error("injected worker failure (campaign.worker failpoint)");
      worker();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu);
      if (!err) err = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  if (threads > 1) pool.reserve(threads - 1);
  try {
    for (unsigned t = 1; t < threads; ++t) pool.emplace_back(guarded);
  } catch (const std::system_error&) {
    // Thread-creation limit hit; proceed with the threads already running.
  }
  guarded();
  for (auto& th : pool) th.join();
  if (err) std::rethrow_exception(err);
}

unsigned fault_region(const Fault& f, std::size_t words, unsigned regions) {
  if (regions <= 1) return 0;
  const std::size_t span = (words + regions - 1) / regions;
  return static_cast<unsigned>(f.victim.word / span);
}

void require_golden_lane_clear(LaneMask verdicts) {
  if (verdicts & 1ull)
    throw std::logic_error(
        "CampaignRunner: packed golden lane reported a detection (engine bug)");
}

bool VerdictMatrix::detected_all(std::size_t fault) const {
  for (std::size_t s = 0; s < num_seeds; ++s)
    if (!detected(fault, s)) return false;
  return true;
}

bool VerdictMatrix::detected_any(std::size_t fault) const {
  for (std::size_t s = 0; s < num_seeds; ++s)
    if (detected(fault, s)) return true;
  return false;
}

namespace {

// Translates the engine's per-REPRESENTATIVE events back to the original
// fault indices of a collapsed campaign, one record per bucket member.
// Invoked from worker threads; the inner observer is thread-safe by the
// UnitObserver contract and this wrapper only reads const state.
class ExpandingObserver final : public UnitObserver {
 public:
  ExpandingObserver(UnitObserver* inner, const FaultCollapse& fc) : inner_(inner), fc_(fc) {}

  void on_unit_settled(std::size_t first, unsigned count, const char* all,
                       const char* any) override {
    for (unsigned k = 0; k < count; ++k)
      for (const std::uint32_t orig : fc_.members[first + k])
        inner_->on_unit_settled(orig, 1, all + k, any + k);
  }

  void on_seed_verdict(std::size_t fault, std::size_t seed_index, bool detected) override {
    for (const std::uint32_t orig : fc_.members[fault])
      inner_->on_seed_verdict(orig, seed_index, detected);
  }

  bool want_seed_verdicts() const override { return inner_->want_seed_verdicts(); }
  bool cancelled() const override { return inner_->cancelled(); }

 private:
  UnitObserver* inner_;
  const FaultCollapse& fc_;
};

// Translates a region sub-campaign's fault indices back to the positions
// the faults hold in the original (unpartitioned) list.
class RemappingObserver final : public UnitObserver {
 public:
  RemappingObserver(UnitObserver* inner, const std::vector<std::uint32_t>& map)
      : inner_(inner), map_(map) {}

  void on_unit_settled(std::size_t first, unsigned count, const char* all,
                       const char* any) override {
    for (unsigned k = 0; k < count; ++k)
      inner_->on_unit_settled(map_[first + k], 1, all + k, any + k);
  }

  void on_seed_verdict(std::size_t fault, std::size_t seed_index, bool detected) override {
    inner_->on_seed_verdict(map_[fault], seed_index, detected);
  }

  bool want_seed_verdicts() const override { return inner_->want_seed_verdicts(); }
  bool cancelled() const override { return inner_->cancelled(); }

 private:
  UnitObserver* inner_;
  const std::vector<std::uint32_t>& map_;
};

}  // namespace

void CampaignRunner::dispatch(const CampaignJob& job, simd::Width simd_width) const {
  const bool repack = job.schedule == ScheduleMode::Repack;
  if (options_.backend == CoverageBackend::Scalar) {
    repack ? run_campaign_engine_repack<ScalarEngine>(job)
           : run_campaign_engine<ScalarEngine>(job);
    return;
  }
  // simd::resolve() in run() guaranteed the CPU executes the chosen width;
  // the wide entries dispatch on job.schedule internally.
  switch (simd_width) {
    case simd::Width::W64:
      repack ? run_campaign_engine_repack<PackedEngine>(job)
             : run_campaign_engine<PackedEngine>(job);
      break;
    case simd::Width::W256: run_campaign_w256(job); break;
    case simd::Width::W512: run_campaign_w512(job); break;
    case simd::Width::Tiled4096:
    case simd::Width::Tiled32768: {
      // Tiled widths name a lane COUNT, not an instruction set: pick the
      // widest inner block this CPU executes and let the tiled entry
      // instantiate the matching LaneTile (memsim/lane_tile.h).
      const unsigned lanes = simd::lanes(simd_width);
      if (simd::supported(simd::Width::W512))
        run_campaign_tiled_w512(job, lanes);
      else if (simd::supported(simd::Width::W256))
        run_campaign_tiled_w256(job, lanes);
      else
        run_campaign_tiled_base(job, lanes);
      break;
    }
  }
}

void CampaignRunner::run(SchemeKind scheme, const MarchTest& bit_march,
                         const std::vector<Fault>& faults,
                         const std::vector<std::uint64_t>& seeds, bool need_any,
                         std::vector<char>& all, std::vector<char>& any,
                         VerdictMatrix* out_matrix, UnitObserver* observer,
                         CampaignStats* stats, const RegionProgress* progress) const {
  if (seeds.empty()) throw std::invalid_argument("CampaignRunner: no seeds");
  // Resolve the lane-block width up front so a forced-but-unsupported
  // --simd request fails before any work is sharded.  The scalar backend
  // has no lanes and ignores the request.
  const simd::Width simd_width =
      options_.backend == CoverageBackend::Packed ? simd::resolve(options_.simd) : simd::Width::W64;
  const std::size_t n = faults.size();
  all.assign(n, 1);
  any.assign(n, 0);
  if (out_matrix) {
    out_matrix->num_faults = n;
    out_matrix->num_seeds = seeds.size();
    out_matrix->bits.assign(n * seeds.size(), 0);
  }
  if (n == 0) return;

  const SchemePlan plan = make_scheme_plan(scheme, bit_march, width_);
  const unsigned regions = std::max(1u, options_.regions);

  if (regions == 1 && !progress) {
    run_list(plan, simd_width, faults, seeds, need_any, all.data(), any.data(), out_matrix,
             observer, stats);
    return;
  }

  // Region-sharded execution: partition the fault list by the victim's
  // address slice (order preserved within a region) and run the slices as
  // independent sequential sub-campaigns.  Verdicts only depend on (fault,
  // seed) — batch composition is irrelevant — so the scattered merge is
  // identical to the unsharded run.
  std::vector<std::vector<std::uint32_t>> owned(regions);
  for (std::size_t i = 0; i < n; ++i)
    owned[fault_region(faults[i], words_, regions)].push_back(static_cast<std::uint32_t>(i));

  const std::size_t num_seeds = seeds.size();
  for (unsigned r = 0; r < regions; ++r) {
    if (observer && observer->cancelled()) return;
    if (progress && r < progress->done.size() && progress->done[r]) continue;
    const std::vector<std::uint32_t>& idx = owned[r];
    if (!idx.empty()) {
      std::vector<Fault> sub;
      sub.reserve(idx.size());
      for (const std::uint32_t g : idx) sub.push_back(faults[g]);
      std::vector<char> sub_all(idx.size(), 1), sub_any(idx.size(), 0);
      VerdictMatrix sub_matrix;
      if (out_matrix) {
        sub_matrix.num_faults = idx.size();
        sub_matrix.num_seeds = num_seeds;
        sub_matrix.bits.assign(idx.size() * num_seeds, 0);
      }
      RemappingObserver remap(observer, idx);
      run_list(plan, simd_width, sub, seeds, need_any, sub_all.data(), sub_any.data(),
               out_matrix ? &sub_matrix : nullptr, observer ? &remap : nullptr, stats);
      for (std::size_t k = 0; k < idx.size(); ++k) {
        all[idx[k]] = sub_all[k];
        any[idx[k]] = sub_any[k];
      }
      if (out_matrix)
        for (std::size_t k = 0; k < idx.size(); ++k)
          std::memcpy(&out_matrix->bits[idx[k] * num_seeds], &sub_matrix.bits[k * num_seeds],
                      num_seeds);
      // A cancellation mid-region leaves the region incomplete: do not
      // report it as done.
      if (observer && observer->cancelled()) return;
    }
    if (progress && progress->on_region_done) progress->on_region_done(r, idx);
  }
}

void CampaignRunner::run_list(const SchemePlan& plan, simd::Width simd_width,
                              const std::vector<Fault>& faults,
                              const std::vector<std::uint64_t>& seeds, bool need_any,
                              char* all, char* any, VerdictMatrix* out_matrix,
                              UnitObserver* observer, CampaignStats* stats) const {
  const std::size_t n = faults.size();
  if (n == 0) return;
  CampaignJob job;
  job.plan = &plan;
  job.words = words_;
  job.threads = options_.threads;
  job.seeds = seeds.data();
  job.num_seeds = seeds.size();
  job.need_any = need_any;
  job.matrix = out_matrix;
  job.observer = observer;
  job.schedule = options_.schedule;
  job.settle_exit = options_.schedule == ScheduleMode::Repack;
  job.stats = stats;

  // Structural collapsing (repack only): simulate one representative per
  // equivalence bucket, expand every verdict back to the full list.
  if (options_.schedule == ScheduleMode::Repack && options_.collapse && n > 1) {
    const FaultCollapse fc = collapse_faults(faults, plan, seeds);
    if (fc.collapsed()) {
      const std::size_t reps = fc.representatives.size();
      std::vector<char> rep_all(reps, 1), rep_any(reps, 0);
      VerdictMatrix rep_matrix;
      if (out_matrix) {
        rep_matrix.num_faults = reps;
        rep_matrix.num_seeds = seeds.size();
        rep_matrix.bits.assign(reps * seeds.size(), 0);
      }
      ExpandingObserver expander(observer, fc);
      if (stats) stats->faults_simulated.fetch_add(reps, std::memory_order_relaxed);
      job.faults = fc.representatives.data();
      job.num_faults = reps;
      job.all = rep_all.data();
      job.any = rep_any.data();
      job.matrix = out_matrix ? &rep_matrix : nullptr;
      job.observer = observer ? &expander : nullptr;
      dispatch(job, simd_width);
      for (std::size_t i = 0; i < n; ++i) {
        all[i] = rep_all[fc.bucket_of[i]];
        any[i] = rep_any[fc.bucket_of[i]];
      }
      if (out_matrix) {
        const std::size_t row = seeds.size();
        for (std::size_t i = 0; i < n; ++i)
          std::memcpy(&out_matrix->bits[i * row], &rep_matrix.bits[fc.bucket_of[i] * row],
                      row);
      }
      return;
    }
  }

  if (stats) stats->faults_simulated.fetch_add(n, std::memory_order_relaxed);
  job.faults = faults.data();
  job.num_faults = n;
  job.all = all;
  job.any = any;
  dispatch(job, simd_width);
}

CoverageOutcome CampaignRunner::evaluate(SchemeKind scheme, const MarchTest& bit_march,
                                         const std::vector<Fault>& faults,
                                         const std::vector<std::uint64_t>& seeds) const {
  std::vector<char> all, any;
  run(scheme, bit_march, faults, seeds, /*need_any=*/true, all, any);
  CoverageOutcome out;
  out.total = faults.size();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    out.detected_all += all[i];
    out.detected_any += any[i];
  }
  return out;
}

std::vector<bool> CampaignRunner::per_fault(SchemeKind scheme, const MarchTest& bit_march,
                                            const std::vector<Fault>& faults,
                                            const std::vector<std::uint64_t>& seeds,
                                            CampaignStats* stats) const {
  std::vector<char> all, any;
  run(scheme, bit_march, faults, seeds, /*need_any=*/false, all, any, nullptr, nullptr, stats);
  return std::vector<bool>(all.begin(), all.end());
}

VerdictMatrix CampaignRunner::matrix(SchemeKind scheme, const MarchTest& bit_march,
                                     const std::vector<Fault>& faults,
                                     const std::vector<std::uint64_t>& seeds) const {
  VerdictMatrix m;
  std::vector<char> all, any;
  run(scheme, bit_march, faults, seeds, /*need_any=*/true, all, any, &m);
  return m;
}

}  // namespace twm
