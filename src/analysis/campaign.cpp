#include "analysis/campaign.h"

#include <mutex>
#include <stdexcept>
#include <thread>

#include "analysis/campaign_exec.h"

namespace twm {

std::string to_string(CoverageBackend b) {
  switch (b) {
    case CoverageBackend::Scalar: return "scalar";
    case CoverageBackend::Packed: return "packed";
  }
  return "?";
}

void run_pool(unsigned threads, const std::function<void()>& worker) {
  std::mutex mu;
  std::exception_ptr err;
  auto guarded = [&] {
    try {
      worker();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu);
      if (!err) err = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  if (threads > 1) pool.reserve(threads - 1);
  try {
    for (unsigned t = 1; t < threads; ++t) pool.emplace_back(guarded);
  } catch (const std::system_error&) {
    // Thread-creation limit hit; proceed with the threads already running.
  }
  guarded();
  for (auto& th : pool) th.join();
  if (err) std::rethrow_exception(err);
}

void require_golden_lane_clear(LaneMask verdicts) {
  if (verdicts & 1ull)
    throw std::logic_error(
        "CampaignRunner: packed golden lane reported a detection (engine bug)");
}

bool VerdictMatrix::detected_all(std::size_t fault) const {
  for (std::size_t s = 0; s < num_seeds; ++s)
    if (!detected(fault, s)) return false;
  return true;
}

bool VerdictMatrix::detected_any(std::size_t fault) const {
  for (std::size_t s = 0; s < num_seeds; ++s)
    if (detected(fault, s)) return true;
  return false;
}

void CampaignRunner::run(SchemeKind scheme, const MarchTest& bit_march,
                         const std::vector<Fault>& faults,
                         const std::vector<std::uint64_t>& seeds, bool need_any,
                         std::vector<char>& all, std::vector<char>& any,
                         VerdictMatrix* out_matrix, UnitObserver* observer) const {
  if (seeds.empty()) throw std::invalid_argument("CampaignRunner: no seeds");
  // Resolve the lane-block width up front so a forced-but-unsupported
  // --simd request fails before any work is sharded.  The scalar backend
  // has no lanes and ignores the request.
  const simd::Width simd_width =
      options_.backend == CoverageBackend::Packed ? simd::resolve(options_.simd) : simd::Width::W64;
  const std::size_t n = faults.size();
  all.assign(n, 1);
  any.assign(n, 0);
  if (out_matrix) {
    out_matrix->num_faults = n;
    out_matrix->num_seeds = seeds.size();
    out_matrix->bits.assign(n * seeds.size(), 0);
  }
  if (n == 0) return;

  const SchemePlan plan = make_scheme_plan(scheme, bit_march, width_);
  CampaignJob job;
  job.plan = &plan;
  job.words = words_;
  job.threads = options_.threads;
  job.faults = faults.data();
  job.num_faults = n;
  job.seeds = seeds.data();
  job.num_seeds = seeds.size();
  job.need_any = need_any;
  job.all = all.data();
  job.any = any.data();
  job.matrix = out_matrix;
  job.observer = observer;

  if (options_.backend == CoverageBackend::Scalar) {
    run_campaign_engine<ScalarEngine>(job);
    return;
  }
  // simd::resolve() above guaranteed the CPU executes the chosen width.
  switch (simd_width) {
    case simd::Width::W64: run_campaign_engine<PackedEngine>(job); break;
    case simd::Width::W256: run_campaign_w256(job); break;
    case simd::Width::W512: run_campaign_w512(job); break;
  }
}

CoverageOutcome CampaignRunner::evaluate(SchemeKind scheme, const MarchTest& bit_march,
                                         const std::vector<Fault>& faults,
                                         const std::vector<std::uint64_t>& seeds) const {
  std::vector<char> all, any;
  run(scheme, bit_march, faults, seeds, /*need_any=*/true, all, any);
  CoverageOutcome out;
  out.total = faults.size();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    out.detected_all += all[i];
    out.detected_any += any[i];
  }
  return out;
}

std::vector<bool> CampaignRunner::per_fault(SchemeKind scheme, const MarchTest& bit_march,
                                            const std::vector<Fault>& faults,
                                            const std::vector<std::uint64_t>& seeds) const {
  std::vector<char> all, any;
  run(scheme, bit_march, faults, seeds, /*need_any=*/false, all, any);
  return std::vector<bool>(all.begin(), all.end());
}

VerdictMatrix CampaignRunner::matrix(SchemeKind scheme, const MarchTest& bit_march,
                                     const std::vector<Fault>& faults,
                                     const std::vector<std::uint64_t>& seeds) const {
  VerdictMatrix m;
  std::vector<char> all, any;
  run(scheme, bit_march, faults, seeds, /*need_any=*/true, all, any, &m);
  return m;
}

}  // namespace twm
