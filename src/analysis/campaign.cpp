#include "analysis/campaign.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace twm {

std::string to_string(CoverageBackend b) {
  switch (b) {
    case CoverageBackend::Scalar: return "scalar";
    case CoverageBackend::Packed: return "packed";
  }
  return "?";
}

void run_pool(unsigned threads, const std::function<void()>& worker) {
  std::mutex mu;
  std::exception_ptr err;
  auto guarded = [&] {
    try {
      worker();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu);
      if (!err) err = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  if (threads > 1) pool.reserve(threads - 1);
  try {
    for (unsigned t = 1; t < threads; ++t) pool.emplace_back(guarded);
  } catch (const std::system_error&) {
    // Thread-creation limit hit; proceed with the threads already running.
  }
  guarded();
  for (auto& th : pool) th.join();
  if (err) std::rethrow_exception(err);
}

void require_golden_lane_clear(LaneMask verdicts) {
  if (verdicts & 1ull)
    throw std::logic_error(
        "CampaignRunner: packed golden lane reported a detection (engine bug)");
}

bool VerdictMatrix::detected_all(std::size_t fault) const {
  for (std::size_t s = 0; s < num_seeds; ++s)
    if (!detected(fault, s)) return false;
  return true;
}

bool VerdictMatrix::detected_any(std::size_t fault) const {
  for (std::size_t s = 0; s < num_seeds; ++s)
    if (detected(fault, s)) return true;
  return false;
}

namespace {

// The packed verdict word carries the golden lane in bit 0; the scalar
// verdict (bool) has no golden lane.  Engine-dispatched.
inline void check_golden(bool /*verdict*/) {}
inline void check_golden(LaneMask verdicts) { require_golden_lane_clear(verdicts); }

}  // namespace

template <class Engine>
void CampaignRunner::run_typed(const SchemePlan& plan, const std::vector<Fault>& faults,
                               const std::vector<std::uint64_t>& seeds, bool need_any,
                               std::vector<char>& all, std::vector<char>& any,
                               VerdictMatrix* out_matrix) const {
  using Verdict = typename Engine::Verdict;
  constexpr unsigned kPerUnit = Engine::kFaultsPerUnit;
  const std::size_t n = faults.size();
  const std::size_t units = (n + kPerUnit - 1) / kPerUnit;
  const unsigned threads = std::max(1u, options_.threads);

  std::atomic<std::size_t> next{0};
  run_pool(threads, [&] {
    for (;;) {
      const std::size_t u = next.fetch_add(1);
      if (u >= units) break;
      const std::size_t lo = u * kPerUnit;
      const unsigned count = static_cast<unsigned>(std::min<std::size_t>(kPerUnit, n - lo));
      const Verdict used = Engine::used_mask(count);
      Verdict a = used, y = Verdict{};
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        const Verdict d = run_campaign_unit<Engine>(plan, words_, &faults[lo], count, seeds[s]);
        check_golden(d);
        a &= d;
        y |= d;
        if (out_matrix) {
          for (unsigned i = 0; i < count; ++i)
            out_matrix->bits[(lo + i) * seeds.size() + s] =
                static_cast<char>(Engine::bit(d, i));
        } else if (a == Verdict{} && (y == used || !need_any)) {
          break;  // requested verdicts settled for every fault in the unit
        }
      }
      for (unsigned i = 0; i < count; ++i) {
        all[lo + i] = static_cast<char>(Engine::bit(a, i));
        any[lo + i] = static_cast<char>(Engine::bit(y, i));
      }
    }
  });
}

void CampaignRunner::run(SchemeKind scheme, const MarchTest& bit_march,
                         const std::vector<Fault>& faults,
                         const std::vector<std::uint64_t>& seeds, bool need_any,
                         std::vector<char>& all, std::vector<char>& any,
                         VerdictMatrix* out_matrix) const {
  if (seeds.empty()) throw std::invalid_argument("CampaignRunner: no seeds");
  const std::size_t n = faults.size();
  all.assign(n, 1);
  any.assign(n, 0);
  if (out_matrix) {
    out_matrix->num_faults = n;
    out_matrix->num_seeds = seeds.size();
    out_matrix->bits.assign(n * seeds.size(), 0);
  }
  if (n == 0) return;

  const SchemePlan plan = make_scheme_plan(scheme, bit_march, width_);
  if (options_.backend == CoverageBackend::Scalar)
    run_typed<ScalarEngine>(plan, faults, seeds, need_any, all, any, out_matrix);
  else
    run_typed<PackedEngine>(plan, faults, seeds, need_any, all, any, out_matrix);
}

CoverageOutcome CampaignRunner::evaluate(SchemeKind scheme, const MarchTest& bit_march,
                                         const std::vector<Fault>& faults,
                                         const std::vector<std::uint64_t>& seeds) const {
  std::vector<char> all, any;
  run(scheme, bit_march, faults, seeds, /*need_any=*/true, all, any);
  CoverageOutcome out;
  out.total = faults.size();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    out.detected_all += all[i];
    out.detected_any += any[i];
  }
  return out;
}

std::vector<bool> CampaignRunner::per_fault(SchemeKind scheme, const MarchTest& bit_march,
                                            const std::vector<Fault>& faults,
                                            const std::vector<std::uint64_t>& seeds) const {
  std::vector<char> all, any;
  run(scheme, bit_march, faults, seeds, /*need_any=*/false, all, any);
  return std::vector<bool>(all.begin(), all.end());
}

VerdictMatrix CampaignRunner::matrix(SchemeKind scheme, const MarchTest& bit_march,
                                     const std::vector<Fault>& faults,
                                     const std::vector<std::uint64_t>& seeds) const {
  VerdictMatrix m;
  std::vector<char> all, any;
  run(scheme, bit_march, faults, seeds, /*need_any=*/true, all, any, &m);
  return m;
}

}  // namespace twm
