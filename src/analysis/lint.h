// Static capability analysis ("lint") of bit-oriented march tests.
//
// Classical march-test theory ties fault-detection capability to the
// presence of structural patterns in the element list; this module derives
// those predicates without executing anything:
//
//   SAF   — every cell is read at least once in each logic state;
//   TF    — each transition direction is written and the result is read
//           before the cell is rewritten;
//   AF    — van de Goor's condition: an ascending element reading x before
//           writing ~x, and a descending element doing the same (for some
//           x), so decoder aliasing in either address direction is caught;
//   CF    — the four read-verified neighbour conditions of Fig. 1(a)
//           (approximated: both orders traverse both states with reads).
//
// tests/lint_test.cpp cross-validates the predicates against the empirical
// coverage evaluator on the whole catalog — the lint must never claim a
// capability the simulator refutes.
#ifndef TWM_ANALYSIS_LINT_H
#define TWM_ANALYSIS_LINT_H

#include <string>

#include "march/test.h"

namespace twm {

struct MarchLint {
  bool initializes = false;     // starts with an all-write element
  bool consistent = false;      // reads expect the last written value
  bool detects_saf = false;
  bool detects_tf = false;
  bool detects_af = false;
  bool full_inter_cf = false;   // all 12 inter-cell excitation conditions

  std::string summary() const;
};

// Analyzes a plain (nontransparent, pattern-free) bit-oriented march.
// Throws std::invalid_argument on transparent or patterned input.
MarchLint lint_march(const MarchTest& bit_march);

}  // namespace twm

#endif  // TWM_ANALYSIS_LINT_H
