// Cell-pair state tracing (reproduces Figure 1).
//
// Figure 1(a): any two cells of a bit-oriented memory traverse all four
// joint states — with every transition direction under every neighbour
// state — when a 100%-CF march (e.g. March C-) runs; the transparent solid
// march inherits the traversal, so inter-word CF coverage is preserved.
//
// Figure 1(b): two bits *within* a word only see word-wide operations.  The
// detection conditions are write events classified by (aggressor
// transition, victim simultaneously written?, victim value), each followed
// by a read of the victim's word before the victim is rewritten.  Solid
// backgrounds can only produce both-bits-flip events; the checkerboard
// ATMarch adds the aggressor-flips/victim-holds events — that is exactly
// why TWM_TA appends it.
#ifndef TWM_ANALYSIS_PAIR_TRACE_H
#define TWM_ANALYSIS_PAIR_TRACE_H

#include <set>
#include <string>
#include <vector>

#include "bist/engine.h"
#include "memsim/memory.h"

namespace twm {

struct PairEventRecord {
  std::size_t element = 0;
  std::size_t op_index = 0;
  OpKind kind = OpKind::Read;
  std::size_t addr = 0;   // word the operation touched
  bool touches_i = false;  // operation's word contains cell i / j
  bool touches_j = false;
  bool before_i = false, before_j = false;  // pair state before the op
  bool after_i = false, after_j = false;    // pair state after the op

  std::string describe() const;
};

// EngineObserver that samples the two chosen cells around every operation.
class PairStateTrace final : public EngineObserver {
 public:
  PairStateTrace(const Memory& mem, CellAddr i, CellAddr j);

  void on_op(std::size_t element, std::size_t op_index, std::size_t addr, const Op& op,
             const BitVec& value) override;

  const std::vector<PairEventRecord>& events() const { return events_; }

  // Joint states (Di, Dj) occupied at any point of the trace.
  std::set<std::pair<bool, bool>> states_visited() const;

  // Number of recorded events (the paper's Fig. 1(a) walks 18 steps for
  // March C- on a two-cell memory).
  std::size_t step_count() const { return events_.size(); }

 private:
  const Memory& mem_;
  CellAddr i_, j_;
  bool last_i_, last_j_;
  std::vector<PairEventRecord> events_;
};

// Detection-condition bookkeeping for an ordered (aggressor, victim) bit
// pair inside one word, extracted from a PairStateTrace where cell i is the
// aggressor and cell j the victim.
struct IntraPairConditions {
  // covered[direction][victim_simultaneously_flips]
  //   direction: 0 = aggressor up, 1 = aggressor down.
  bool covered[2][2] = {{false, false}, {false, false}};

  bool aggressor_flip_victim_holds_both_dirs() const {
    return covered[0][0] && covered[1][0];
  }
  bool all() const {
    return covered[0][0] && covered[0][1] && covered[1][0] && covered[1][1];
  }
};

// A condition counts as covered only when the triggering write is followed
// by a read of the victim's word before the victim is written again.
IntraPairConditions analyze_intra_pair(const std::vector<PairEventRecord>& events);

}  // namespace twm

#endif  // TWM_ANALYSIS_PAIR_TRACE_H
