// 256-lane campaign backend: PackedEngineT<LaneBlock<4>>, four fault
// universes per bit of every lane operation.
//
// This translation unit is compiled with -mavx2 (see CMakeLists.txt) so the
// LaneBlock<4> word loops in the packed memory / march engine / scheme
// sessions become 256-bit vector operations.  Nothing in here may run
// before simd::supported(Width::W256) returned true — the dispatcher in
// analysis/campaign.cpp is the only caller and checks exactly that.
#include "analysis/campaign_exec.h"

namespace twm {

void run_campaign_w256(const CampaignJob& job) {
  if (job.schedule == ScheduleMode::Repack)
    run_campaign_engine_repack<PackedEngineT<LaneBlock<4>>>(job);
  else
    run_campaign_engine<PackedEngineT<LaneBlock<4>>>(job);
}

}  // namespace twm
