#include "analysis/diagnosis.h"

#include <atomic>
#include <stdexcept>

#include "analysis/campaign.h"
#include "bist/address_gen.h"
#include "bist/engine.h"
#include "util/rng.h"

namespace twm {

OpLocation locate_read(const MarchTest& test, std::size_t stream_index, std::size_t num_words) {
  std::size_t remaining = stream_index;
  for (std::size_t e = 0; e < test.elements.size(); ++e) {
    const MarchElement& elem = test.elements[e];
    const std::size_t reads_per_word = elem.read_count();
    if (reads_per_word == 0) continue;
    const std::size_t reads_in_element = reads_per_word * num_words;
    if (remaining >= reads_in_element) {
      remaining -= reads_in_element;
      continue;
    }
    const std::size_t word_pos = remaining / reads_per_word;
    const std::size_t read_in_word = remaining % reads_per_word;
    const auto seq = AddressGen::sequence(elem.order, num_words);
    // Map the read ordinal to the op index.
    std::size_t seen = 0;
    for (std::size_t i = 0; i < elem.ops.size(); ++i) {
      if (!elem.ops[i].is_read()) continue;
      if (seen == read_in_word)
        return {e, i, seq[word_pos], stream_index};
      ++seen;
    }
  }
  throw std::out_of_range("locate_read: stream index beyond test length");
}

Diagnosis diagnose_transparent(MemoryIf& mem, const MarchTest& test, const MarchTest& prediction) {
  MarchRunner runner(mem);

  StreamRecorder pred;
  runner.run_prediction(prediction, pred);
  StreamRecorder obs;
  runner.run_test(test, obs);

  Diagnosis d;
  if (pred.stream().size() != obs.stream().size())
    throw std::logic_error("diagnose_transparent: prediction/test read counts differ");

  for (std::size_t i = 0; i < pred.stream().size(); ++i) {
    if (pred.stream()[i] == obs.stream()[i]) continue;
    if (!d.fault_found) {
      d.fault_found = true;
      d.location = locate_read(test, i, mem.num_words());
      d.suspect_word = d.location.addr;
      d.bit_syndrome = pred.stream()[i] ^ obs.stream()[i];
    }
    ++d.mismatch_count;
  }
  return d;
}

std::vector<Diagnosis> diagnose_campaign(const MarchTest& bit_march, std::size_t words,
                                         unsigned width, const std::vector<Fault>& faults,
                                         std::uint64_t seed, unsigned threads) {
  // One plan for the whole campaign; only its transparent session passes
  // are consulted.
  const SchemePlan plan = make_scheme_plan(SchemeKind::ProposedExact, bit_march, width);

  std::vector<Diagnosis> out(faults.size());
  std::atomic<std::size_t> next{0};
  run_pool(std::max(1u, threads), [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= faults.size()) break;
      Memory mem(words, width);
      if (seed != 0) {
        Rng rng(seed);
        mem.fill_random(rng);
      }
      mem.inject(faults[i]);
      out[i] = diagnose_transparent(mem, plan.trans, plan.prediction);
    }
  });
  return out;
}

}  // namespace twm
