#include "analysis/lint.h"

#include <sstream>
#include <stdexcept>

#include "analysis/pair_trace.h"
#include "bist/engine.h"
#include "march/generator.h"
#include "memsim/memory.h"

namespace twm {
namespace {

// Looking ahead from `start`, is cell `vic` read before it is written?
bool read_confirms(const std::vector<PairEventRecord>& evs, std::size_t start, bool vic_is_i) {
  for (std::size_t k = start + 1; k < evs.size(); ++k) {
    const auto& ev = evs[k];
    const bool touches_vic = vic_is_i ? ev.touches_i : ev.touches_j;
    if (!touches_vic) continue;
    if (ev.kind == OpKind::Read) return true;
    return false;  // rewritten before observation
  }
  return false;
}

}  // namespace

std::string MarchLint::summary() const {
  std::ostringstream os;
  os << (initializes ? "init " : "") << (consistent ? "consistent " : "INCONSISTENT ")
     << "SAF:" << (detects_saf ? "y" : "n") << " TF:" << (detects_tf ? "y" : "n")
     << " AF:" << (detects_af ? "y" : "n") << " CF:" << (full_inter_cf ? "full" : "partial");
  return os.str();
}

MarchLint lint_march(const MarchTest& bit_march) {
  for (const auto& e : bit_march.elements)
    for (const auto& op : e.ops)
      if (op.data.relative || !op.data.pattern.empty())
        throw std::invalid_argument("lint_march: plain bit-oriented march required");

  MarchLint lint;
  lint.initializes = !bit_march.empty() && bit_march.elements.front().all_writes();
  lint.consistent = is_consistent_bit_march(bit_march);
  if (!lint.consistent) return lint;

  // Execute on a fault-free 2-cell memory and derive the capability
  // predicates from the observed event trace.
  Memory mem(2, 1);
  PairStateTrace trace(mem, {0, 0}, {1, 0});
  MarchRunner runner(mem);
  runner.set_observer(&trace);
  runner.run_direct(bit_march);
  const auto& evs = trace.events();

  // SAF: cell i is read in both logic states.
  bool read0 = false, read1 = false;
  // TF: each transition of cell i is read-confirmed.
  bool tf_up = false, tf_down = false;
  // Inter-cell CF conditions: confirmed[agg=i?0:1][dir up?0:1][neighbour v].
  bool confirmed[2][2][2] = {};

  for (std::size_t k = 0; k < evs.size(); ++k) {
    const auto& ev = evs[k];
    if (ev.kind == OpKind::Read) {
      if (ev.touches_i) (ev.after_i ? read1 : read0) = true;
      continue;
    }
    if (ev.touches_i && ev.before_i != ev.after_i) {
      const int dir = ev.after_i ? 0 : 1;
      if (read_confirms(evs, k, /*vic_is_i=*/true)) (dir == 0 ? tf_up : tf_down) = true;
      // Cell i as aggressor: victim j holds its value; detection needs a
      // read of j before j is rewritten.
      if (read_confirms(evs, k, /*vic_is_i=*/false)) confirmed[0][dir][ev.after_j] = true;
    }
    if (ev.touches_j && ev.before_j != ev.after_j) {
      const int dir = ev.after_j ? 0 : 1;
      if (read_confirms(evs, k, /*vic_is_i=*/true)) confirmed[1][dir][ev.after_i] = true;
    }
  }

  lint.detects_saf = read0 && read1;
  lint.detects_tf = tf_up && tf_down;

  lint.full_inter_cf = true;
  for (int a = 0; a < 2; ++a)
    for (int d = 0; d < 2; ++d)
      for (int v = 0; v < 2; ++v)
        if (!confirmed[a][d][v]) lint.full_inter_cf = false;

  // AF (van de Goor): an ascending element that reads the current value and
  // ends having inverted it, and a descending element doing the same.
  bool af_up = false, af_down = false;
  bool value = false;  // tracked cell value; init element has no reads
  for (const auto& e : bit_march.elements) {
    const bool entry = value;
    bool inverted_after_read = false;
    bool seen_read = false;
    for (const auto& op : e.ops) {
      if (op.is_read() && op.data.complement == entry) seen_read = true;
      if (op.is_write()) value = op.data.complement;
    }
    inverted_after_read = seen_read && value != entry;
    if (inverted_after_read) {
      if (e.order == AddrOrder::Down)
        af_down = true;
      else
        af_up = true;  // Up or Any (executed ascending)
    }
  }
  lint.detects_af = af_up && af_down;
  return lint;
}

}  // namespace twm
