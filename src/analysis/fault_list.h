// Fault-list generation for coverage campaigns.
//
// Exhaustive generators enumerate every single fault of a class in an
// N x B memory; the coupling-fault space is quadratic in the cell count, so
// sampled generators are provided for larger geometries.
#ifndef TWM_ANALYSIS_FAULT_LIST_H
#define TWM_ANALYSIS_FAULT_LIST_H

#include <cstddef>
#include <vector>

#include "memsim/fault.h"
#include "util/rng.h"

namespace twm {

enum class CfScope { IntraWord, InterWord, Both };

std::vector<Fault> all_safs(std::size_t words, unsigned width);
std::vector<Fault> all_tfs(std::size_t words, unsigned width);

// Every data-retention fault decaying to 0 and to 1 after `hold_units`
// pause units (detected only by marches with Del elements, e.g. March G).
std::vector<Fault> all_rets(std::size_t words, unsigned width, unsigned hold_units);

// Every address-decoder fault: one AFna per address plus one AFaw per
// ordered address pair (word-level; no bit dimension).
std::vector<Fault> all_afs(std::size_t words);

// Every coupling fault of class `cls` (CFst: 4 variants per ordered cell
// pair, CFid: 4, CFin: 2) whose aggressor/victim placement matches `scope`.
std::vector<Fault> all_cfs(std::size_t words, unsigned width, FaultClass cls, CfScope scope);

// `count` coupling faults of class `cls` drawn uniformly (with replacement)
// from the scope's ordered cell pairs and variants.
std::vector<Fault> sampled_cfs(std::size_t words, unsigned width, FaultClass cls, CfScope scope,
                               std::size_t count, Rng& rng);

}  // namespace twm

#endif  // TWM_ANALYSIS_FAULT_LIST_H
