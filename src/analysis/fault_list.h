// Fault-list generation for coverage campaigns.
//
// Exhaustive generators enumerate every single fault of a class in an
// N x B memory; the coupling-fault space is quadratic in the cell count, so
// sampled generators are provided for larger geometries.
#ifndef TWM_ANALYSIS_FAULT_LIST_H
#define TWM_ANALYSIS_FAULT_LIST_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "memsim/fault.h"
#include "util/rng.h"

namespace twm {

enum class CfScope { IntraWord, InterWord, Both };

std::vector<Fault> all_safs(std::size_t words, unsigned width);
std::vector<Fault> all_tfs(std::size_t words, unsigned width);

// Every data-retention fault decaying to 0 and to 1 after `hold_units`
// pause units (detected only by marches with Del elements, e.g. March G).
std::vector<Fault> all_rets(std::size_t words, unsigned width, unsigned hold_units);

// Every address-decoder fault: one AFna per address plus one AFaw per
// ordered address pair (word-level; no bit dimension).
std::vector<Fault> all_afs(std::size_t words);

// Every coupling fault of class `cls` (CFst: 4 variants per ordered cell
// pair, CFid: 4, CFin: 2) whose aggressor/victim placement matches `scope`.
std::vector<Fault> all_cfs(std::size_t words, unsigned width, FaultClass cls, CfScope scope);

// `count` coupling faults of class `cls` drawn uniformly (with replacement)
// from the scope's ordered cell pairs and variants.
std::vector<Fault> sampled_cfs(std::size_t words, unsigned width, FaultClass cls, CfScope scope,
                               std::size_t count, Rng& rng);

// ---- structural fault collapsing ----------------------------------------

struct SchemePlan;  // core/scheme_session.h

// A collapsed fault list: one representative per bucket of faults that are
// provably verdict-equivalent for THIS campaign (scheme plan + content
// seeds), plus the expansion maps back to the original list.
struct FaultCollapse {
  std::vector<Fault> representatives;              // one per bucket, stable order
  std::vector<std::uint32_t> bucket_of;            // [original index] -> rep index
  std::vector<std::vector<std::uint32_t>> members; // [rep index] -> original indices

  bool collapsed() const { return representatives.size() < bucket_of.size(); }
};

// True when every fault universe of this plan is invariant under bit
// relabeling: all march data the plan's sessions write is SOLID (every
// op's data mask is all-zeros or all-ones, so under lane-uniform solid
// contents every bit of a word sees the same waveform) and the scheme's
// checker is bit-symmetric (exact compare / XOR parity / TOMT's parity
// ledger — anything that only asks "does SOME bit differ".  The MISR
// folds read bits by position and the TOMT per-word block flips
// individual bits, so those schemes report false).
bool plan_bit_symmetric(const SchemePlan& plan);

// Buckets the faults of one campaign by structural equivalence and picks
// the first member of each bucket as its representative.  Applied rules,
// each only when its precondition provably holds:
//
//  * duplicate elimination — identical Fault values (always sound),
//  * SAF/TF equivalence under all-zero contents (every seed == 0): a cell
//    that starts at 0 and cannot rise (TF up) is exactly a cell stuck at 0
//    (SAF0) — the two universes' state trajectories are identical under
//    every operation sequence,
//  * bit-address collapsing when plan_bit_symmetric(plan) AND every seed
//    is 0: the verdict of a SAF/TF/RET/CF depends only on the word-level
//    address structure and the class variant, not on which bit inside the
//    word carries it (address-symmetric pairs under solid backgrounds), so
//    one (word, variant) — or (aggressor word, victim word, variant) —
//    representative covers every bit placement.
//
// Decoder faults (AFna/AFaw) address whole words and only deduplicate.
// With no rule applicable the result is the identity mapping.  The repack
// scheduler simulates representatives only and expands every verdict
// (all / any / matrix rows / streamed unit records) back through
// bucket_of; tests/scheduler_test.cpp proves expansion == uncollapsed run.
FaultCollapse collapse_faults(const std::vector<Fault>& faults, const SchemePlan& plan,
                              const std::vector<std::uint64_t>& seeds);

}  // namespace twm

#endif  // TWM_ANALYSIS_FAULT_LIST_H
