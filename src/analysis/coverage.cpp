#include "analysis/coverage.h"

#include <algorithm>
#include <stdexcept>

#include "bist/engine.h"
#include "core/nicolaidis.h"
#include "core/scheme1.h"
#include "core/symmetric.h"
#include "core/tomt.h"
#include "core/twm_ta.h"
#include "march/word_expand.h"
#include "memsim/memory.h"
#include "util/rng.h"

namespace twm {

std::string to_string(SchemeKind k) {
  switch (k) {
    case SchemeKind::NontransparentReference: return "SMarch+AMarch (nontransparent)";
    case SchemeKind::WordOrientedMarch: return "word-oriented march (nontransparent)";
    case SchemeKind::ProposedExact: return "TWMarch (exact compare)";
    case SchemeKind::ProposedMisr: return "TWMarch (MISR)";
    case SchemeKind::ProposedSymmetricXor: return "symmetric TWMarch (XOR acc, TCP=0)";
    case SchemeKind::TsmarchOnly: return "TSMarch only (no ATMarch)";
    case SchemeKind::Scheme1Exact: return "Scheme 1 [12] (exact compare)";
    case SchemeKind::TomtModel: return "TOMT model [13]";
  }
  return "?";
}

bool CoverageEvaluator::run_one(SchemeKind scheme, const MarchTest& bit_march, const Fault& fault,
                                std::uint64_t seed) const {
  Memory mem(words_, width_);
  if (seed != 0) {
    Rng rng(seed);
    mem.fill_random(rng);
  }  // seed 0: all-zero contents (the nontransparent reference's base)

  // TOMT's parity protection was established while the memory was healthy.
  std::vector<bool> ledger;
  if (scheme == SchemeKind::TomtModel) ledger = make_parity_ledger(mem);

  mem.inject(fault);

  MarchRunner runner(mem);
  switch (scheme) {
    case SchemeKind::NontransparentReference: {
      const MarchTest smarch = solid_march(bit_march);
      const auto final_spec = smarch.final_write_spec();
      const bool base_inv = final_spec.has_value() && final_spec->complement;
      const MarchTest amarch = nontransparent_amarch(width_, base_inv);
      const bool d1 = runner.run_direct(smarch).mismatch;
      const bool d2 = runner.run_direct(amarch).mismatch;
      return d1 || d2;
    }
    case SchemeKind::WordOrientedMarch:
      return runner.run_direct(word_oriented_march(bit_march, width_)).mismatch;
    case SchemeKind::ProposedExact:
    case SchemeKind::ProposedMisr: {
      const TwmResult t = twm_transform(bit_march, width_);
      // A practical transparent BIST sizes its MISR for a negligible
      // aliasing probability; 16 bits keeps aliasing (2^-16 per fault)
      // below this campaign's resolution even for narrow words.
      const auto out = runner.run_transparent_session(t.twmarch, t.prediction,
                                                      std::max(16u, width_));
      return scheme == SchemeKind::ProposedExact ? out.detected_exact : out.detected_misr;
    }
    case SchemeKind::ProposedSymmetricXor: {
      const TwmResult t = twm_transform(bit_march, width_);
      const SymmetricTest st = symmetrize(t.twmarch, width_);
      return run_symmetric_session(mem, st).detected;
    }
    case SchemeKind::TsmarchOnly: {
      const TwmResult t = twm_transform(bit_march, width_);
      const MarchTest pred = prediction_test(t.tsmarch);
      return runner.run_transparent_session(t.tsmarch, pred, width_).detected_exact;
    }
    case SchemeKind::Scheme1Exact: {
      const Scheme1Result s = scheme1_transform(bit_march, width_);
      return runner.run_transparent_session(s.transparent, s.prediction, width_).detected_exact;
    }
    case SchemeKind::TomtModel:
      return run_tomt(mem, ledger).detected;
  }
  throw std::logic_error("CoverageEvaluator: unknown scheme");
}

std::vector<bool> CoverageEvaluator::per_fault(SchemeKind scheme, const MarchTest& bit_march,
                                               const std::vector<Fault>& faults,
                                               const std::vector<std::uint64_t>& seeds) const {
  if (seeds.empty()) throw std::invalid_argument("CoverageEvaluator: no seeds");
  std::vector<bool> verdict(faults.size(), true);
  for (std::size_t i = 0; i < faults.size(); ++i)
    for (const auto seed : seeds)
      if (!run_one(scheme, bit_march, faults[i], seed)) {
        verdict[i] = false;
        break;
      }
  return verdict;
}

CoverageOutcome CoverageEvaluator::evaluate(SchemeKind scheme, const MarchTest& bit_march,
                                            const std::vector<Fault>& faults,
                                            const std::vector<std::uint64_t>& seeds) const {
  if (seeds.empty()) throw std::invalid_argument("CoverageEvaluator: no seeds");
  CoverageOutcome out;
  out.total = faults.size();
  for (const Fault& f : faults) {
    bool all = true;
    bool any = false;
    for (const auto seed : seeds) {
      const bool d = run_one(scheme, bit_march, f, seed);
      all = all && d;
      any = any || d;
      if (!all && any) break;  // verdicts settled
    }
    out.detected_all += all;
    out.detected_any += any;
  }
  return out;
}

}  // namespace twm
