#include "analysis/coverage.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "bist/engine.h"
#include "bist/packed_engine.h"
#include "core/nicolaidis.h"
#include "core/scheme1.h"
#include "core/symmetric.h"
#include "core/tomt.h"
#include "core/twm_ta.h"
#include "march/word_expand.h"
#include "memsim/memory.h"
#include "memsim/packed_memory.h"
#include "util/rng.h"

namespace twm {

std::string to_string(SchemeKind k) {
  switch (k) {
    case SchemeKind::NontransparentReference: return "SMarch+AMarch (nontransparent)";
    case SchemeKind::WordOrientedMarch: return "word-oriented march (nontransparent)";
    case SchemeKind::ProposedExact: return "TWMarch (exact compare)";
    case SchemeKind::ProposedMisr: return "TWMarch (MISR)";
    case SchemeKind::ProposedSymmetricXor: return "symmetric TWMarch (XOR acc, TCP=0)";
    case SchemeKind::TsmarchOnly: return "TSMarch only (no ATMarch)";
    case SchemeKind::Scheme1Exact: return "Scheme 1 [12] (exact compare)";
    case SchemeKind::TomtModel: return "TOMT model [13]";
  }
  return "?";
}

std::string to_string(CoverageBackend b) {
  switch (b) {
    case CoverageBackend::Scalar: return "scalar";
    case CoverageBackend::Packed: return "packed";
  }
  return "?";
}

bool CoverageEvaluator::run_one(SchemeKind scheme, const MarchTest& bit_march, const Fault& fault,
                                std::uint64_t seed) const {
  Memory mem(words_, width_);
  if (seed != 0) {
    Rng rng(seed);
    mem.fill_random(rng);
  }  // seed 0: all-zero contents (the nontransparent reference's base)

  // TOMT's parity protection was established while the memory was healthy.
  std::vector<bool> ledger;
  if (scheme == SchemeKind::TomtModel) ledger = make_parity_ledger(mem);

  mem.inject(fault);

  MarchRunner runner(mem);
  switch (scheme) {
    case SchemeKind::NontransparentReference: {
      const MarchTest smarch = solid_march(bit_march);
      const auto final_spec = smarch.final_write_spec();
      const bool base_inv = final_spec.has_value() && final_spec->complement;
      const MarchTest amarch = nontransparent_amarch(width_, base_inv);
      const bool d1 = runner.run_direct(smarch).mismatch;
      const bool d2 = runner.run_direct(amarch).mismatch;
      return d1 || d2;
    }
    case SchemeKind::WordOrientedMarch:
      return runner.run_direct(word_oriented_march(bit_march, width_)).mismatch;
    case SchemeKind::ProposedExact:
    case SchemeKind::ProposedMisr: {
      const TwmResult t = twm_transform(bit_march, width_);
      // A practical transparent BIST sizes its MISR for a negligible
      // aliasing probability; 16 bits keeps aliasing (2^-16 per fault)
      // below this campaign's resolution even for narrow words.
      const auto out = runner.run_transparent_session(t.twmarch, t.prediction,
                                                      std::max(16u, width_));
      return scheme == SchemeKind::ProposedExact ? out.detected_exact : out.detected_misr;
    }
    case SchemeKind::ProposedSymmetricXor: {
      const TwmResult t = twm_transform(bit_march, width_);
      const SymmetricTest st = symmetrize(t.twmarch, width_);
      return run_symmetric_session(mem, st).detected;
    }
    case SchemeKind::TsmarchOnly: {
      const TwmResult t = twm_transform(bit_march, width_);
      const MarchTest pred = prediction_test(t.tsmarch);
      return runner.run_transparent_session(t.tsmarch, pred, width_).detected_exact;
    }
    case SchemeKind::Scheme1Exact: {
      const Scheme1Result s = scheme1_transform(bit_march, width_);
      return runner.run_transparent_session(s.transparent, s.prediction, width_).detected_exact;
    }
    case SchemeKind::TomtModel:
      return run_tomt(mem, ledger).detected;
  }
  throw std::logic_error("CoverageEvaluator: unknown scheme");
}

namespace {

// Scheme artifacts computed once per packed campaign (run_one rebuilds them
// per fault x seed; a batch amortizes the transform over 63 faults and the
// plan amortizes it over the whole campaign).
struct PackedPlan {
  SchemeKind scheme;
  unsigned width;
  MarchTest direct_a, direct_b;  // nontransparent passes (b may be empty)
  MarchTest trans, prediction;   // transparent session passes
  unsigned misr_width = 0;
  SymmetricTest sym;
};

PackedPlan make_packed_plan(SchemeKind scheme, const MarchTest& bit_march, unsigned width) {
  PackedPlan p;
  p.scheme = scheme;
  p.width = width;
  switch (scheme) {
    case SchemeKind::NontransparentReference: {
      p.direct_a = solid_march(bit_march);
      const auto final_spec = p.direct_a.final_write_spec();
      const bool base_inv = final_spec.has_value() && final_spec->complement;
      p.direct_b = nontransparent_amarch(width, base_inv);
      break;
    }
    case SchemeKind::WordOrientedMarch:
      p.direct_a = word_oriented_march(bit_march, width);
      break;
    case SchemeKind::ProposedExact:
    case SchemeKind::ProposedMisr: {
      const TwmResult t = twm_transform(bit_march, width);
      p.trans = t.twmarch;
      p.prediction = t.prediction;
      p.misr_width = std::max(16u, width);
      break;
    }
    case SchemeKind::ProposedSymmetricXor: {
      const TwmResult t = twm_transform(bit_march, width);
      p.sym = symmetrize(t.twmarch, width);
      break;
    }
    case SchemeKind::TsmarchOnly: {
      const TwmResult t = twm_transform(bit_march, width);
      p.trans = t.tsmarch;
      p.prediction = prediction_test(t.tsmarch);
      p.misr_width = width;
      break;
    }
    case SchemeKind::Scheme1Exact: {
      const Scheme1Result s = scheme1_transform(bit_march, width);
      p.trans = s.transparent;
      p.prediction = s.prediction;
      p.misr_width = width;
      break;
    }
    case SchemeKind::TomtModel:
      break;
  }
  return p;
}

// One batch: up to 63 faults in lanes 1..63, lane 0 golden.  Returns the
// detection LaneMask of the whole batch under one seed.
LaneMask run_packed_batch(const PackedPlan& plan, std::size_t words, const Fault* faults,
                          unsigned count, std::uint64_t seed) {
  PackedMemory mem(words, plan.width);
  if (seed != 0) {
    Rng rng(seed);
    mem.fill_random(rng);
  }  // seed 0: all-zero contents

  std::vector<bool> ledger;
  if (plan.scheme == SchemeKind::TomtModel) ledger = make_parity_ledger(mem);

  for (unsigned i = 0; i < count; ++i) mem.inject(faults[i], 1ull << (i + 1));

  PackedMarchRunner runner(mem);
  switch (plan.scheme) {
    case SchemeKind::NontransparentReference: {
      // AMarch reads the solid base SMarch leaves behind: the two passes
      // must be sequenced, not folded into one (unsequenced) expression.
      const LaneMask d1 = runner.run_direct(plan.direct_a);
      const LaneMask d2 = runner.run_direct(plan.direct_b);
      return d1 | d2;
    }
    case SchemeKind::WordOrientedMarch:
      return runner.run_direct(plan.direct_a);
    case SchemeKind::ProposedExact:
      return runner.run_transparent_session(plan.trans, plan.prediction, plan.misr_width)
          .detected_exact;
    case SchemeKind::ProposedMisr:
      return runner.run_transparent_session(plan.trans, plan.prediction, plan.misr_width)
          .detected_misr;
    case SchemeKind::ProposedSymmetricXor:
      return run_symmetric_session_packed(mem, plan.sym);
    case SchemeKind::TsmarchOnly:
    case SchemeKind::Scheme1Exact:
      return runner.run_transparent_session(plan.trans, plan.prediction, plan.misr_width)
          .detected_exact;
    case SchemeKind::TomtModel:
      return run_tomt_packed(mem, ledger);
  }
  throw std::logic_error("CoverageEvaluator: unknown scheme");
}

// Runs `worker` on `threads` threads (including the calling one) and
// rethrows the first exception any of them raised.  If the OS refuses to
// spawn more threads, the pool simply runs with the ones it got.
void run_pool(unsigned threads, const std::function<void()>& worker) {
  std::mutex mu;
  std::exception_ptr err;
  auto guarded = [&] {
    try {
      worker();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu);
      if (!err) err = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  try {
    for (unsigned t = 1; t < threads; ++t) pool.emplace_back(guarded);
  } catch (const std::system_error&) {
    // Thread-creation limit hit; proceed with the threads already running.
  }
  guarded();
  for (auto& th : pool) th.join();
  if (err) std::rethrow_exception(err);
}

}  // namespace

void CoverageEvaluator::run_campaign(SchemeKind scheme, const MarchTest& bit_march,
                                     const std::vector<Fault>& faults,
                                     const std::vector<std::uint64_t>& seeds,
                                     const CoverageOptions& options, bool need_any,
                                     std::vector<char>& all, std::vector<char>& any) const {
  if (seeds.empty()) throw std::invalid_argument("CoverageEvaluator: no seeds");
  const std::size_t n = faults.size();
  all.assign(n, 1);
  any.assign(n, 0);
  if (n == 0) return;
  const unsigned threads = std::max(1u, options.threads);

  if (options.backend == CoverageBackend::Scalar) {
    std::atomic<std::size_t> next{0};
    run_pool(threads, [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) break;
        bool a = true, y = false;
        for (const auto seed : seeds) {
          const bool d = run_one(scheme, bit_march, faults[i], seed);
          a = a && d;
          y = y || d;
          if (!a && (y || !need_any)) break;  // requested verdicts settled
        }
        all[i] = a;
        any[i] = y;
      }
    });
    return;
  }

  const PackedPlan plan = make_packed_plan(scheme, bit_march, width_);
  constexpr unsigned kFaultsPerBatch = kPackedLanes - 1;  // lane 0 = golden
  const std::size_t batches = (n + kFaultsPerBatch - 1) / kFaultsPerBatch;
  std::atomic<std::size_t> next{0};
  run_pool(threads, [&] {
    for (;;) {
      const std::size_t b = next.fetch_add(1);
      if (b >= batches) break;
      const std::size_t lo = b * kFaultsPerBatch;
      const unsigned count =
          static_cast<unsigned>(std::min<std::size_t>(kFaultsPerBatch, n - lo));
      const LaneMask used = ((count == 63 ? ~0ull : (1ull << (count + 1)) - 1)) & ~1ull;
      LaneMask a = used, y = 0;
      for (const auto seed : seeds) {
        const LaneMask d = run_packed_batch(plan, words_, &faults[lo], count, seed);
        if (d & 1ull)
          throw std::logic_error(
              "CoverageEvaluator: packed golden lane reported a detection (engine bug)");
        a &= d;
        y |= d;
        if (a == 0 && (y == used || !need_any)) break;  // requested verdicts settled
      }
      for (unsigned i = 0; i < count; ++i) {
        all[lo + i] = static_cast<char>((a >> (i + 1)) & 1u);
        any[lo + i] = static_cast<char>((y >> (i + 1)) & 1u);
      }
    }
  });
}

std::vector<bool> CoverageEvaluator::per_fault(SchemeKind scheme, const MarchTest& bit_march,
                                               const std::vector<Fault>& faults,
                                               const std::vector<std::uint64_t>& seeds,
                                               const CoverageOptions& options) const {
  std::vector<char> all, any;
  run_campaign(scheme, bit_march, faults, seeds, options, /*need_any=*/false, all, any);
  return std::vector<bool>(all.begin(), all.end());
}

CoverageOutcome CoverageEvaluator::evaluate(SchemeKind scheme, const MarchTest& bit_march,
                                            const std::vector<Fault>& faults,
                                            const std::vector<std::uint64_t>& seeds,
                                            const CoverageOptions& options) const {
  std::vector<char> all, any;
  run_campaign(scheme, bit_march, faults, seeds, options, /*need_any=*/true, all, any);
  CoverageOutcome out;
  out.total = faults.size();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    out.detected_all += all[i];
    out.detected_any += any[i];
  }
  return out;
}

}  // namespace twm
