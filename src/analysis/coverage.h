// Fault-coverage evaluation (reproduces the Sec. 5 analysis empirically).
//
// For each fault in a list, a fresh memory is built, loaded with seeded
// random contents, the fault is injected, and the selected test scheme is
// run; the fault counts as detected when the scheme's checker fires.
//
// Schemes (SchemeKind, core/scheme_session.h):
//   NontransparentReference  SMarch then AMarch with absolute data and a
//                            direct comparator — the paper's coverage
//                            reference (SMarch + AMarch).
//   WordOrientedMarch        classical multi-background word-oriented march
//                            (Sec. 3), direct comparator.
//   ProposedExact            TWMarch, prediction/test read streams compared
//                            exactly (aliasing-free).
//   ProposedMisr             TWMarch with MISR signature comparison.
//   TsmarchOnly              ablation: the proposed test *without* ATMarch.
//   Scheme1Exact             baseline [12], exact stream comparison.
//   TomtModel                baseline [13] behavioural model (parity ledger
//                            + read-back comparator).
//
// Because transparent tests operate on live data, detection may in
// principle depend on the initial contents; evaluate() therefore runs every
// fault under each seed in `seeds` and reports both the number of faults
// detected under every content (detected_all — what the paper's theorem
// promises) and under at least one content (detected_any).
//
// Seed 0 is special: it loads all-zero contents, the base the
// nontransparent reference operates on.  With zero contents a transparent
// session performs operation-for-operation the same port traffic as the
// nontransparent reference, so per-fault verdicts must agree exactly — the
// sharpest checkable form of the paper's coverage-equality theorem.
//
// DEPRECATED: CoverageEvaluator survives only as a two-call compatibility
// shim over analysis/campaign.h.  New code should either
//
//   * describe the whole campaign declaratively — api::CampaignSpec +
//     api::run_campaign (src/api/spec.h, src/api/runner.h), which adds
//     validation, JSON round-trip, and streaming ResultSinks — or
//   * drive CampaignRunner directly for custom fault lists.
//
// Each shim call compiles one SchemePlan and hands the fault list to a
// CampaignRunner, which shards units across the thread pool and runs the
// lane-generic scheme sessions on the selected backend.
#ifndef TWM_ANALYSIS_COVERAGE_H
#define TWM_ANALYSIS_COVERAGE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/campaign.h"
#include "march/test.h"
#include "memsim/fault.h"

namespace twm {

class CoverageEvaluator {
 public:
  CoverageEvaluator(std::size_t words, unsigned width) : words_(words), width_(width) {}

  CoverageOutcome evaluate(SchemeKind scheme, const MarchTest& bit_march,
                           const std::vector<Fault>& faults,
                           const std::vector<std::uint64_t>& seeds,
                           const CoverageOptions& options = {}) const {
    return CampaignRunner(words_, width_, options).evaluate(scheme, bit_march, faults, seeds);
  }

  // Verdict per fault (detected under every seed); used to prove coverage
  // *equality* between schemes, not just equal percentages.
  std::vector<bool> per_fault(SchemeKind scheme, const MarchTest& bit_march,
                              const std::vector<Fault>& faults,
                              const std::vector<std::uint64_t>& seeds,
                              const CoverageOptions& options = {}) const {
    return CampaignRunner(words_, width_, options).per_fault(scheme, bit_march, faults, seeds);
  }

 private:
  std::size_t words_;
  unsigned width_;
};

}  // namespace twm

#endif  // TWM_ANALYSIS_COVERAGE_H
