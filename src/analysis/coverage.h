// Fault-coverage evaluation (reproduces the Sec. 5 analysis empirically).
//
// For each fault in a list, a fresh memory is built, loaded with seeded
// random contents, the fault is injected, and the selected test scheme is
// run; the fault counts as detected when the scheme's checker fires.
//
// Schemes:
//   NontransparentReference  SMarch then AMarch with absolute data and a
//                            direct comparator — the paper's coverage
//                            reference (SMarch + AMarch).
//   WordOrientedMarch        classical multi-background word-oriented march
//                            (Sec. 3), direct comparator.
//   ProposedExact            TWMarch, prediction/test read streams compared
//                            exactly (aliasing-free).
//   ProposedMisr             TWMarch with MISR signature comparison.
//   TsmarchOnly              ablation: the proposed test *without* ATMarch.
//   Scheme1Exact             baseline [12], exact stream comparison.
//   TomtModel                baseline [13] behavioural model (parity ledger
//                            + read-back comparator).
//
// Because transparent tests operate on live data, detection may in
// principle depend on the initial contents; evaluate() therefore runs every
// fault under each seed in `seeds` and reports both the number of faults
// detected under every content (detected_all — what the paper's theorem
// promises) and under at least one content (detected_any).
//
// Seed 0 is special: it loads all-zero contents, the base the
// nontransparent reference operates on.  With zero contents a transparent
// session performs operation-for-operation the same port traffic as the
// nontransparent reference, so per-fault verdicts must agree exactly — the
// sharpest checkable form of the paper's coverage-equality theorem.
#ifndef TWM_ANALYSIS_COVERAGE_H
#define TWM_ANALYSIS_COVERAGE_H

#include <cstdint>
#include <string>
#include <vector>

#include "march/test.h"
#include "memsim/fault.h"

namespace twm {

enum class SchemeKind {
  NontransparentReference,
  WordOrientedMarch,
  ProposedExact,
  ProposedMisr,
  ProposedSymmetricXor,  // symmetrized TWMarch, XOR accumulator, TCP = 0
  TsmarchOnly,
  Scheme1Exact,
  TomtModel,
};

std::string to_string(SchemeKind k);

// Simulation backend for a coverage campaign.
//
//   Scalar  one fault x one seed at a time through memsim::Memory — the
//           reference implementation.
//   Packed  bit-parallel batches of 63 faults + 1 golden lane per
//           PackedMemory pass (lane 0 stays fault-free and must report
//           "undetected"; a golden detection aborts the campaign as an
//           engine bug).  Verdicts are lane-for-lane identical to the
//           scalar backend (tests/coverage_backend_test.cpp).
enum class CoverageBackend { Scalar, Packed };

std::string to_string(CoverageBackend b);

struct CoverageOptions {
  CoverageBackend backend = CoverageBackend::Scalar;
  // Worker threads the campaign's fault batches are sharded across;
  // <= 1 runs everything on the calling thread.  Applies to both backends.
  unsigned threads = 1;
};

struct CoverageOutcome {
  std::size_t total = 0;
  std::size_t detected_all = 0;  // detected under every evaluated content
  std::size_t detected_any = 0;  // detected under at least one content

  double pct_all() const { return total ? 100.0 * detected_all / total : 0.0; }
  double pct_any() const { return total ? 100.0 * detected_any / total : 0.0; }
};

class CoverageEvaluator {
 public:
  CoverageEvaluator(std::size_t words, unsigned width) : words_(words), width_(width) {}

  CoverageOutcome evaluate(SchemeKind scheme, const MarchTest& bit_march,
                           const std::vector<Fault>& faults,
                           const std::vector<std::uint64_t>& seeds) const {
    return evaluate(scheme, bit_march, faults, seeds, CoverageOptions{});
  }
  CoverageOutcome evaluate(SchemeKind scheme, const MarchTest& bit_march,
                           const std::vector<Fault>& faults,
                           const std::vector<std::uint64_t>& seeds,
                           const CoverageOptions& options) const;

  // Verdict per fault (detected under every seed); used to prove coverage
  // *equality* between schemes, not just equal percentages.
  std::vector<bool> per_fault(SchemeKind scheme, const MarchTest& bit_march,
                              const std::vector<Fault>& faults,
                              const std::vector<std::uint64_t>& seeds) const {
    return per_fault(scheme, bit_march, faults, seeds, CoverageOptions{});
  }
  std::vector<bool> per_fault(SchemeKind scheme, const MarchTest& bit_march,
                              const std::vector<Fault>& faults,
                              const std::vector<std::uint64_t>& seeds,
                              const CoverageOptions& options) const;

 private:
  bool run_one(SchemeKind scheme, const MarchTest& bit_march, const Fault& fault,
               std::uint64_t seed) const;
  // Fills per-fault "detected under every seed" / "under at least one seed"
  // flags with the selected backend; the two public entry points derive
  // their results from these.  When `need_any` is false the seed loop stops
  // as soon as the "all" verdict settles (per_fault discards "any").
  void run_campaign(SchemeKind scheme, const MarchTest& bit_march,
                    const std::vector<Fault>& faults, const std::vector<std::uint64_t>& seeds,
                    const CoverageOptions& options, bool need_any, std::vector<char>& all,
                    std::vector<char>& any) const;

  std::size_t words_;
  unsigned width_;
};

}  // namespace twm

#endif  // TWM_ANALYSIS_COVERAGE_H
