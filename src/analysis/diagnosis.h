// Fault localization from transparent test sessions.
//
// A comparator-based transparent BIST (instead of — or alongside — the
// MISR) can record where the observed read stream first deviates from the
// prediction.  Because march execution order is deterministic, the stream
// index maps back to (element, operation, address), which localizes the
// fault to a word, and the XOR of predicted and observed data gives the
// failing bit syndrome.  Combined with spare words (memsim/repair.h) this
// yields the classic BIST + BISR flow: detect -> diagnose -> remap ->
// retest clean.
#ifndef TWM_ANALYSIS_DIAGNOSIS_H
#define TWM_ANALYSIS_DIAGNOSIS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "march/test.h"
#include "memsim/fault.h"
#include "memsim/memory.h"

namespace twm {

struct OpLocation {
  std::size_t element = 0;
  std::size_t op_index = 0;     // Read index *within* the element
  std::size_t addr = 0;
  std::size_t stream_index = 0;  // position in the read stream
};

struct Diagnosis {
  bool fault_found = false;
  std::size_t suspect_word = 0;  // address whose read first deviated
  BitVec bit_syndrome;           // predicted XOR observed at that read
  OpLocation location;
  std::size_t mismatch_count = 0;  // total deviating reads in the session
};

// Runs prediction + test on `mem` and maps the first stream mismatch back
// to its operation.  Uses the given transparent march and its prediction
// test (as produced by twm_transform()).
Diagnosis diagnose_transparent(MemoryIf& mem, const MarchTest& test, const MarchTest& prediction);

// Diagnosis campaign: one Diagnosis per fault, each obtained by injecting
// the fault into a fresh memory (seeded contents; seed 0 = all-zero) and
// running the TWMarch transparent session compiled once into a SchemePlan.
// Faults are sharded across `threads` workers with the same pool the
// coverage campaigns use (analysis/campaign.h).
std::vector<Diagnosis> diagnose_campaign(const MarchTest& bit_march, std::size_t words,
                                         unsigned width, const std::vector<Fault>& faults,
                                         std::uint64_t seed, unsigned threads = 1);

// Maps a read-stream position to (element, in-element read index, address)
// for a march executed on `num_words` words.  Throws std::out_of_range if
// the index exceeds the stream length.
OpLocation locate_read(const MarchTest& test, std::size_t stream_index, std::size_t num_words);

}  // namespace twm

#endif  // TWM_ANALYSIS_DIAGNOSIS_H
