// Small formatting helpers shared by the bench binaries and sinks.
#ifndef TWM_ANALYSIS_REPORT_H
#define TWM_ANALYSIS_REPORT_H

#include <string>

#include "analysis/coverage.h"

namespace twm {

// `value` with exactly `decimals` fraction digits and a '.' decimal point
// REGARDLESS of the process locale.  snprintf("%f") obeys LC_NUMERIC and
// emits "0,123456" under a comma-decimal locale — invalid JSON on every
// streamed surface — so anything that formats a float into JSON, CSV or a
// table goes through this instead.  Non-finite values format as "0".
std::string fixed_str(double value, unsigned decimals);

// "100.0%" style percentage (locale-independent).
std::string pct_str(double pct);

// "detected/total (pct)" summary of a coverage outcome (the detected-under-
// all-contents figure, which is what the paper's theorem claims).
std::string coverage_str(const CoverageOutcome& o);

}  // namespace twm

#endif  // TWM_ANALYSIS_REPORT_H
