// Small formatting helpers shared by the bench binaries.
#ifndef TWM_ANALYSIS_REPORT_H
#define TWM_ANALYSIS_REPORT_H

#include <string>

#include "analysis/coverage.h"

namespace twm {

// "100.0%" style percentage.
std::string pct_str(double pct);

// "detected/total (pct)" summary of a coverage outcome (the detected-under-
// all-contents figure, which is what the paper's theorem claims).
std::string coverage_str(const CoverageOutcome& o);

}  // namespace twm

#endif  // TWM_ANALYSIS_REPORT_H
