// Campaign orchestration: drives many scheme sessions over a fault list.
//
// A coverage/diagnosis campaign is embarrassingly parallel across faults:
// every unit (one fault on the scalar backend, a 63-fault batch + golden
// lane on the packed backend) is independent.  CampaignRunner owns the
// machinery every campaign needs —
//
//   * one SchemePlan compiled per campaign (march transforms amortized
//     over every fault x seed),
//   * sharding of units across a thread pool (run_pool),
//   * the per-seed early exit once the requested verdicts have settled,
//   * the packed golden-lane self-check (lane 0 carries no fault; a
//     detection there is an engine bug and aborts the campaign),
//
// — and exposes three result shapes: aggregate counts (evaluate), a
// per-fault verdict vector (per_fault), and the full per-fault x per-seed
// verdict matrix (matrix).  analysis/coverage.h keeps the classic
// CoverageEvaluator interface as a thin facade over this runner.
#ifndef TWM_ANALYSIS_CAMPAIGN_H
#define TWM_ANALYSIS_CAMPAIGN_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/scheme_session.h"
#include "core/simd.h"
#include "march/test.h"
#include "memsim/fault.h"

namespace twm {

// Simulation backend for a campaign.
//
//   Scalar  one fault x one seed at a time through memsim::Memory — the
//           reference implementation.
//   Packed  bit-parallel batches of (lanes - 1) faults + 1 golden lane per
//           packed-memory pass, where `lanes` is the resolved SIMD width
//           (a single lane block of 64 / 256 / 512 lanes, or a lane TILE
//           of 4096 / 32768 lanes — core/simd.h, memsim/lane_tile.h).
//           Verdicts are lane-for-lane identical to the scalar backend at
//           every width (tests/coverage_backend_test.cpp,
//           tests/tiled_engine_test.cpp).
enum class CoverageBackend { Scalar, Packed };

std::string to_string(CoverageBackend b);

// How the campaign's fault universes are scheduled onto units.
//
//   Dense   Static batch membership (the PR 3/4 scheduler, byte-identical
//           behavior): faults are sharded into fixed units up front, every
//           unit runs its full seed loop, every session runs full length.
//           The pristine debug/reference mode.
//   Repack  Dynamic scheduling: seed-major rounds rebuild batches from
//           still-undecided faults only (survivor repacking keeps SIMD
//           lanes dense as the tail shrinks), sessions with monotone
//           verdicts abort once every lane settled (mid-session
//           settle-exit + per-lane fault dropping), and — when
//           CoverageOptions.collapse is on — structurally equivalent
//           faults are simulated once per bucket with verdicts expanded
//           back to the full list.  Verdict-for-verdict identical to
//           Dense (tests/scheduler_test.cpp enforces it byte-for-byte).
enum class ScheduleMode { Dense, Repack };

std::string to_string(ScheduleMode m);

struct CoverageOptions {
  CoverageBackend backend = CoverageBackend::Scalar;
  // Worker threads the campaign's units are sharded across; <= 1 runs
  // everything on the calling thread.  Applies to both backends.
  unsigned threads = 1;
  // Lane-block width of the packed backend (ignored by the scalar one).
  // Auto picks the widest the CPU supports; a forced width throws
  // std::runtime_error at run() time when the CPU cannot execute it.
  simd::Request simd = simd::Request::Auto;
  // Fault-universe scheduling (see ScheduleMode).  Repack is the default;
  // Dense is the debug mode differential tests compare against.
  ScheduleMode schedule = ScheduleMode::Repack;
  // Structural fault collapsing (Repack only): pre-bucket equivalent
  // faults (analysis/fault_list.h collapse_faults) and simulate one
  // representative per bucket.  Off = every fault simulated individually,
  // for differential attribution of the collapsing win.
  bool collapse = true;
  // Address-region sharding, orthogonal to the fault sharding above: the
  // fault list is partitioned into `regions` slices of the address space
  // (a fault belongs to the region owning its victim word; inter-region
  // couplings follow their victim) and the slices run as independent
  // sequential sub-campaigns whose merged verdicts are identical to the
  // unsharded run.  Each sub-campaign's working set (pages + prediction
  // streams) is bounded by its slice's fault footprint, which is what
  // keeps huge-geometry campaigns inside a fixed memory budget and gives
  // checkpoint/resume its unit of progress.  1 = off (the byte-identical
  // legacy path).
  unsigned regions = 1;
};

// Scheduler forward-progress counters, accumulated across worker threads
// when a CampaignStats* is handed to CampaignRunner::run.  They attribute
// where a scheduler mode's speedup comes from:
//
//   lane occupancy   lane_slots / (units * kFaultsPerUnit) — how densely
//                    the executed unit-sessions were packed with
//                    still-undecided faults,
//   settle-exit      elements_executed / elements_total — the fraction of
//                    march elements a full-length run would execute that
//                    actually ran,
//   collapsing       faults_simulated vs the original list size.
struct CampaignStats {
  std::atomic<std::uint64_t> units{0};        // unit-sessions executed
  std::atomic<std::uint64_t> lane_slots{0};   // fault lanes across those units
  std::atomic<std::uint64_t> faults_simulated{0};  // faults after collapsing
  std::atomic<std::uint64_t> elements_total{0};     // full-length march elements
  std::atomic<std::uint64_t> elements_executed{0};  // march elements entered
  // Peak memory pages any worker materialized (repack scheduler only —
  // the dense scheduler's per-unit memories are not observable).  A
  // transparent march writes every word, so this tracks the pages the
  // march walk touched; most of them hold lane-uniform data in the cheap
  // scalar form (width limbs per page).
  std::atomic<std::uint64_t> pages_peak{0};
  // Peak pages in the expensive lane-block form.  The huge-memory claim in
  // one number: bounded by the batch's fault footprint (one region's slice
  // under address-region sharding), not by `words`.
  std::atomic<std::uint64_t> packed_pages_peak{0};
  // Fresh page heap allocations across every worker memory (repack
  // scheduler only).  The allocation-free round-rebuild contract in one
  // number: worker memories live for the whole campaign and recycle pages
  // through their free-lists, so this stays flat as seed rounds are added
  // instead of growing per round (tests/tiled_engine_test.cpp pins it).
  std::atomic<std::uint64_t> page_allocs{0};

  double mean_live_lanes() const {
    const std::uint64_t u = units.load();
    return u ? static_cast<double>(lane_slots.load()) / static_cast<double>(u) : 0.0;
  }
};

struct CoverageOutcome {
  std::size_t total = 0;
  std::size_t detected_all = 0;  // detected under every evaluated content
  std::size_t detected_any = 0;  // detected under at least one content

  double pct_all() const { return total ? 100.0 * detected_all / total : 0.0; }
  double pct_any() const { return total ? 100.0 * detected_any / total : 0.0; }
};

// Runs `worker` on `threads` threads (including the calling one), joins
// them all, and rethrows the first exception any of them raised.  If the OS
// refuses to spawn more threads, the pool simply runs with the ones it got.
void run_pool(unsigned threads, const std::function<void()>& worker);

// Packed campaigns keep lane 0 fault-free; a detection there means the
// engine corrupted the golden universe.  Throws std::logic_error when bit 0
// of `verdicts` is set.
void require_golden_lane_clear(LaneMask verdicts);

// Low-level streaming observer for one CampaignRunner call.  The engine
// invokes it from WORKER threads as units settle — implementations must be
// thread-safe (the api layer's sink adapter serializes with a mutex).
//
// cancelled() is polled before each unit is claimed: returning true makes
// every worker stop claiming new units (in-flight units still complete and
// are still reported), which is the cooperative-cancellation contract the
// api::ResultSink surface builds on.
class UnitObserver {
 public:
  virtual ~UnitObserver() = default;

  // Final verdicts for faults [first, first + count) — their unit finished
  // its seed loop.  `all` / `any` point at the per-fault flags of exactly
  // this range.
  virtual void on_unit_settled(std::size_t first, unsigned count, const char* all,
                               const char* any) = 0;

  // One (fault, seed) verdict, fired as each seed of a unit is evaluated.
  // Only called when want_seed_verdicts() is true — extracting per-lane
  // bits costs real work on the packed backends, so it is opt-in.
  virtual void on_seed_verdict(std::size_t fault, std::size_t seed_index, bool detected) {
    (void)fault;
    (void)seed_index;
    (void)detected;
  }
  virtual bool want_seed_verdicts() const { return false; }

  virtual bool cancelled() const { return false; }
};

struct CampaignJob;  // analysis/campaign_exec.h

// Region that owns a fault under a `regions`-way split of the address
// space: the victim word's slice (inter-region couplings follow their
// victim; decoder faults their decoded address).
unsigned fault_region(const Fault& f, std::size_t words, unsigned regions);

// Progress hooks for a region-sharded run (the checkpoint/resume surface).
// done[r] marks regions whose verdicts the caller already holds from a
// previous run — they are skipped wholesale and the caller is responsible
// for patching their all/any/matrix entries and replaying their records.
// on_region_done fires on the calling thread after each region's faults
// settle, with the original fault indices the region owns.
struct RegionProgress {
  std::vector<char> done;  // [region] -> already complete, skip
  std::function<void(unsigned region, const std::vector<std::uint32_t>& fault_indices)>
      on_region_done;
};

// Detection verdict of every (fault, seed) pair of a campaign.
struct VerdictMatrix {
  std::size_t num_faults = 0;
  std::size_t num_seeds = 0;
  std::vector<char> bits;  // [fault * num_seeds + seed] -> detected?

  bool detected(std::size_t fault, std::size_t seed) const {
    return bits[fault * num_seeds + seed] != 0;
  }
  bool detected_all(std::size_t fault) const;  // under every seed
  bool detected_any(std::size_t fault) const;  // under at least one seed
};

class CampaignRunner {
 public:
  CampaignRunner(std::size_t words, unsigned width, const CoverageOptions& options = {})
      : words_(words), width_(width), options_(options) {}

  std::size_t words() const { return words_; }
  unsigned width() const { return width_; }
  const CoverageOptions& options() const { return options_; }

  // Aggregate counts; the seed loop stops early per unit once both the
  // "all" and "any" verdicts have settled.
  CoverageOutcome evaluate(SchemeKind scheme, const MarchTest& bit_march,
                           const std::vector<Fault>& faults,
                           const std::vector<std::uint64_t>& seeds) const;

  // Verdict per fault (detected under every seed); used to prove coverage
  // *equality* between schemes/backends, not just equal percentages.
  // `stats`, when non-null, receives the scheduler's forward-progress
  // counters (what bench_coverage attributes its speedups with).
  std::vector<bool> per_fault(SchemeKind scheme, const MarchTest& bit_march,
                              const std::vector<Fault>& faults,
                              const std::vector<std::uint64_t>& seeds,
                              CampaignStats* stats = nullptr) const;

  // Full per-fault x per-seed verdict matrix (no early exit: every pair is
  // evaluated).
  VerdictMatrix matrix(SchemeKind scheme, const MarchTest& bit_march,
                       const std::vector<Fault>& faults,
                       const std::vector<std::uint64_t>& seeds) const;

  // Low-level entry point the result shapes above derive from: fills
  // per-fault "detected under every seed" / "under at least one seed"
  // flags.  When `need_any` is false the per-unit seed loop stops as soon
  // as the "all" verdict settles.  When `out_matrix` is non-null the early
  // exit is disabled and every (fault, seed) verdict is recorded into it.
  // When `observer` is non-null it is streamed unit-by-unit as verdicts
  // settle and may cancel the remainder of the run cooperatively.  When
  // `stats` is non-null the scheduler's forward-progress counters are
  // accumulated into it (occupancy / settle-exit / collapsing attribution).
  // When options().regions > 1 (or `progress` is non-null) the fault list
  // is partitioned by fault_region() and the regions run sequentially as
  // independent sub-campaigns; merged verdicts are identical to regions=1.
  void run(SchemeKind scheme, const MarchTest& bit_march, const std::vector<Fault>& faults,
           const std::vector<std::uint64_t>& seeds, bool need_any, std::vector<char>& all,
           std::vector<char>& any, VerdictMatrix* out_matrix = nullptr,
           UnitObserver* observer = nullptr, CampaignStats* stats = nullptr,
           const RegionProgress* progress = nullptr) const;

 private:
  // One fault list through collapse + dispatch; all/any point at (and a
  // non-null matrix is pre-sized for) exactly this list.
  void run_list(const SchemePlan& plan, simd::Width simd_width,
                const std::vector<Fault>& faults, const std::vector<std::uint64_t>& seeds,
                bool need_any, char* all, char* any, VerdictMatrix* out_matrix,
                UnitObserver* observer, CampaignStats* stats) const;
  void dispatch(const CampaignJob& job, simd::Width simd_width) const;

  std::size_t words_;
  unsigned width_;
  CoverageOptions options_;
};

}  // namespace twm

#endif  // TWM_ANALYSIS_CAMPAIGN_H
