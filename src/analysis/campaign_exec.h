// Engine-generic campaign execution: the sharding loop every backend and
// SIMD width runs.
//
// CampaignRunner::run (analysis/campaign.cpp) resolves backend + lane-block
// width and forwards a CampaignJob to run_campaign_engine<Engine>, which
// shards the fault list into units of Engine::kFaultsPerUnit across the
// thread pool.  The template lives in this header so each SIMD width can
// compile it in its own arch-flagged translation unit:
//
//   campaign.cpp        ScalarEngine + PackedEngineT<std::uint64_t>  (base)
//   campaign_w256.cpp   PackedEngineT<LaneBlock<4>>   built with -mavx2
//   campaign_w512.cpp   PackedEngineT<LaneBlock<8>>   built with -mavx512f
//
// The wide entry points (run_campaign_w256/w512) must only be called after
// core/simd.h confirmed the CPU supports the width — they contain vector
// instructions the dispatcher is the only guard for.
#ifndef TWM_ANALYSIS_CAMPAIGN_EXEC_H
#define TWM_ANALYSIS_CAMPAIGN_EXEC_H

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "analysis/campaign.h"
#include "core/scheme_session.h"

namespace twm {

// One campaign, flattened to raw pointers so the per-width translation
// units share a single ABI-stable entry signature.
struct CampaignJob {
  const SchemePlan* plan = nullptr;
  std::size_t words = 0;
  unsigned threads = 1;
  const Fault* faults = nullptr;
  std::size_t num_faults = 0;
  const std::uint64_t* seeds = nullptr;
  std::size_t num_seeds = 0;
  bool need_any = false;
  char* all = nullptr;            // [num_faults] detected under every seed
  char* any = nullptr;            // [num_faults] detected under some seed
  VerdictMatrix* matrix = nullptr;  // non-null disables the early exit
  // Optional streaming observer: notified per settled unit (and, opt-in,
  // per evaluated seed) and polled for cooperative cancellation before a
  // worker claims its next unit.
  UnitObserver* observer = nullptr;
};

// The packed verdict carries the golden lane in lane 0 (bit 0 of the first
// block word); the scalar verdict (bool) has no golden lane.
inline void check_golden_lane(bool /*verdict*/) {}
inline void check_golden_lane(std::uint64_t verdicts) { require_golden_lane_clear(verdicts); }
template <unsigned K>
void check_golden_lane(const LaneBlock<K>& verdicts) {
  require_golden_lane_clear(verdicts.w[0]);
}

template <class Engine>
void run_campaign_engine(const CampaignJob& job) {
  using Verdict = typename Engine::Verdict;
  constexpr unsigned kPerUnit = Engine::kFaultsPerUnit;
  const std::size_t n = job.num_faults;
  const std::size_t units = (n + kPerUnit - 1) / kPerUnit;
  const unsigned threads = std::max(1u, job.threads);

  const bool seed_events = job.observer && job.observer->want_seed_verdicts();
  std::atomic<std::size_t> next{0};
  run_pool(threads, [&] {
    for (;;) {
      if (job.observer && job.observer->cancelled()) break;
      const std::size_t u = next.fetch_add(1);
      if (u >= units) break;
      const std::size_t lo = u * kPerUnit;
      const unsigned count = static_cast<unsigned>(std::min<std::size_t>(kPerUnit, n - lo));
      const Verdict used = Engine::used_mask(count);
      Verdict a = used, y = Verdict{};
      for (std::size_t s = 0; s < job.num_seeds; ++s) {
        const Verdict d =
            run_campaign_unit<Engine>(*job.plan, job.words, &job.faults[lo], count, job.seeds[s]);
        check_golden_lane(d);
        a &= d;
        y |= d;
        if (seed_events)
          for (unsigned i = 0; i < count; ++i)
            job.observer->on_seed_verdict(lo + i, s, Engine::bit(d, i));
        if (job.matrix) {
          for (unsigned i = 0; i < count; ++i)
            job.matrix->bits[(lo + i) * job.num_seeds + s] = static_cast<char>(Engine::bit(d, i));
        } else if (!seed_events && a == Verdict{} && (y == used || !job.need_any)) {
          // Requested verdicts settled for every fault in the unit.  An
          // observer that asked for per-seed verdicts gets the COMPLETE
          // (fault, seed) stream instead — like the matrix path, the early
          // exit would silently drop the remaining seeds' records.
          break;
        }
      }
      for (unsigned i = 0; i < count; ++i) {
        job.all[lo + i] = static_cast<char>(Engine::bit(a, i));
        job.any[lo + i] = static_cast<char>(Engine::bit(y, i));
      }
      if (job.observer) job.observer->on_unit_settled(lo, count, job.all + lo, job.any + lo);
    }
  });
}

// Wide-width entry points, each defined in its arch-flagged translation
// unit inside the twm_wide shared library (built with -fvisibility=hidden;
// these are its only exports — see the CMakeLists note on why the wide
// objects must not share a static archive with portable code).  Call only
// after simd::supported() said the CPU can execute them.
#if defined(__GNUC__) || defined(__clang__)
#define TWM_WIDE_ENTRY __attribute__((visibility("default")))
#else
#define TWM_WIDE_ENTRY
#endif
TWM_WIDE_ENTRY void run_campaign_w256(const CampaignJob& job);
TWM_WIDE_ENTRY void run_campaign_w512(const CampaignJob& job);

}  // namespace twm

#endif  // TWM_ANALYSIS_CAMPAIGN_EXEC_H
