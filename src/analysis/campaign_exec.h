// Engine-generic campaign execution: the sharding loop every backend and
// SIMD width runs.
//
// CampaignRunner::run (analysis/campaign.cpp) resolves backend + lane-block
// width and forwards a CampaignJob to run_campaign_engine<Engine>, which
// shards the fault list into units of Engine::kFaultsPerUnit across the
// thread pool.  The template lives in this header so each SIMD width can
// compile it in its own arch-flagged translation unit:
//
//   campaign.cpp        ScalarEngine + PackedEngineT<std::uint64_t>  (base)
//   campaign_w256.cpp   PackedEngineT<LaneBlock<4>>   built with -mavx2
//   campaign_w512.cpp   PackedEngineT<LaneBlock<8>>   built with -mavx512f
//
// and the TILED backend (4096 / 32768 fault universes per pass) compiles
// the same templates over LaneTile<Inner, T> blocks, one translation unit
// per inner width:
//
//   campaign_tiled.cpp       LaneTile<std::uint64_t, 64|512>   (portable)
//   campaign_tiled_w256.cpp  LaneTile<LaneBlock<4>, 16|128>    -mavx2
//   campaign_tiled_w512.cpp  LaneTile<LaneBlock<8>, 8|64>      -mavx512f
//
// The wide entry points (run_campaign_w256/w512, run_campaign_tiled_*)
// must only be called after core/simd.h confirmed the CPU supports the
// width — they contain vector instructions the dispatcher is the only
// guard for.  (The tiled BASE entry is portable; the campaign dispatcher
// picks the widest-inner-block tiled entry the CPU executes.)
#ifndef TWM_ANALYSIS_CAMPAIGN_EXEC_H
#define TWM_ANALYSIS_CAMPAIGN_EXEC_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

#include "analysis/campaign.h"
#include "core/scheme_session.h"
#include "memsim/lane_tile.h"

namespace twm {

// One campaign, flattened to raw pointers so the per-width translation
// units share a single ABI-stable entry signature.
struct CampaignJob {
  const SchemePlan* plan = nullptr;
  std::size_t words = 0;
  unsigned threads = 1;
  const Fault* faults = nullptr;
  std::size_t num_faults = 0;
  const std::uint64_t* seeds = nullptr;
  std::size_t num_seeds = 0;
  bool need_any = false;
  char* all = nullptr;            // [num_faults] detected under every seed
  char* any = nullptr;            // [num_faults] detected under some seed
  VerdictMatrix* matrix = nullptr;  // non-null disables the early exit
  // Optional streaming observer: notified per settled unit (and, opt-in,
  // per evaluated seed) and polled for cooperative cancellation before a
  // worker claims its next unit.
  UnitObserver* observer = nullptr;
  // Scheduler selection + instrumentation (see analysis/campaign.h).  The
  // wide translation units dispatch on `schedule` internally so the
  // ABI-stable entry signature stays a single CampaignJob.
  ScheduleMode schedule = ScheduleMode::Dense;
  bool settle_exit = false;         // arm mid-session brakes (Repack only)
  CampaignStats* stats = nullptr;   // optional forward-progress counters
};

// The packed verdict carries the golden lane in lane 0 (bit 0 of the first
// block word); the scalar verdict (bool) has no golden lane.
inline void check_golden_lane(bool /*verdict*/) {}
inline void check_golden_lane(std::uint64_t verdicts) { require_golden_lane_clear(verdicts); }
template <unsigned K>
void check_golden_lane(const LaneBlock<K>& verdicts) {
  require_golden_lane_clear(verdicts.w[0]);
}
template <class Inner, unsigned T>
void check_golden_lane(const LaneTile<Inner, T>& verdicts) {
  require_golden_lane_clear(block_word0(verdicts));
}

template <class Engine>
void run_campaign_engine(const CampaignJob& job) {
  using Verdict = typename Engine::Verdict;
  constexpr unsigned kPerUnit = Engine::kFaultsPerUnit;
  const std::size_t n = job.num_faults;
  const std::size_t units = (n + kPerUnit - 1) / kPerUnit;
  const unsigned threads = std::max(1u, job.threads);
  const std::size_t plan_elems = plan_session_elements(*job.plan);

  const bool seed_events = job.observer && job.observer->want_seed_verdicts();
  std::atomic<std::size_t> next{0};
  run_pool(threads, [&] {
    for (;;) {
      if (job.observer && job.observer->cancelled()) break;
      const std::size_t u = next.fetch_add(1);
      if (u >= units) break;
      const std::size_t lo = u * kPerUnit;
      const unsigned count = static_cast<unsigned>(std::min<std::size_t>(kPerUnit, n - lo));
      const Verdict used = Engine::used_mask(count);
      Verdict a = used, y = Verdict{};
      for (std::size_t s = 0; s < job.num_seeds; ++s) {
        if (job.stats) {
          // Lanes whose verdicts this seed can still change — dense units
          // keep their founding members, so decided lanes ride along dead.
          unsigned live = 0;
          for (unsigned i = 0; i < count; ++i)
            live += !(!Engine::bit(a, i) && (Engine::bit(y, i) || !job.need_any));
          job.stats->units.fetch_add(1, std::memory_order_relaxed);
          job.stats->lane_slots.fetch_add(live, std::memory_order_relaxed);
          job.stats->elements_total.fetch_add(plan_elems, std::memory_order_relaxed);
          job.stats->elements_executed.fetch_add(plan_elems, std::memory_order_relaxed);
        }
        const Verdict d =
            run_campaign_unit<Engine>(*job.plan, job.words, &job.faults[lo], count, job.seeds[s]);
        check_golden_lane(d);
        a &= d;
        y |= d;
        if (seed_events)
          for (unsigned i = 0; i < count; ++i)
            job.observer->on_seed_verdict(lo + i, s, Engine::bit(d, i));
        if (job.matrix) {
          for (unsigned i = 0; i < count; ++i)
            job.matrix->bits[(lo + i) * job.num_seeds + s] = static_cast<char>(Engine::bit(d, i));
        } else if (!seed_events && a == Verdict{} && (y == used || !job.need_any)) {
          // Requested verdicts settled for every fault in the unit.  An
          // observer that asked for per-seed verdicts gets the COMPLETE
          // (fault, seed) stream instead — like the matrix path, the early
          // exit would silently drop the remaining seeds' records.
          break;
        }
      }
      for (unsigned i = 0; i < count; ++i) {
        job.all[lo + i] = static_cast<char>(Engine::bit(a, i));
        job.any[lo + i] = static_cast<char>(Engine::bit(y, i));
      }
      if (job.observer) job.observer->on_unit_settled(lo, count, job.all + lo, job.any + lo);
    }
  });
}

// The survivor-repacking scheduler: seed-major rounds over the shrinking
// set of still-undecided faults.
//
//   round s:  pack the live faults densely into units of kFaultsPerUnit,
//             shard the units across the pool, evaluate every unit under
//             seeds[s] with an armed session brake (mid-session settle-exit
//             + per-lane fault dropping for monotone schemes), then — on
//             the caller's thread — report every fault whose verdicts can
//             no longer change and rebuild the live list from the rest.
//
// A fault is decided once its "all" verdict dropped to 0 and (when the
// caller asked for it) its "any" verdict rose to 1; remaining seeds cannot
// change either, so the fault stops occupying a lane.  The verdicts are
// exactly the dense scheduler's: every evaluated (fault, seed) pair yields
// the same bit (lanes are independent, so batch composition is
// irrelevant), and skipped pairs are skipped only when provably
// irrelevant.  A matrix request or a per-seed-verdict observer needs the
// COMPLETE (fault, seed) stream, which disables dropping (every fault
// stays live to the last round) but keeps repacked batches + settle-exit.
//
// job.all/job.any must be preset by the caller (all = 1, any = 0), exactly
// as CampaignRunner::run does.
template <class Engine>
void run_campaign_engine_repack(const CampaignJob& job) {
  using Verdict = typename Engine::Verdict;
  constexpr unsigned kPerUnit = Engine::kFaultsPerUnit;
  const std::size_t n = job.num_faults;
  if (n == 0) return;
  const unsigned threads = std::max(1u, job.threads);
  const std::size_t plan_elems = plan_session_elements(*job.plan);
  const bool seed_events = job.observer && job.observer->want_seed_verdicts();
  const bool no_drop = job.matrix != nullptr || seed_events;
  // Armed for every scheme: run_scheme_session downgrades per scheme (the
  // MISR case turns the exit off and only keeps the skip of the unconsumed
  // stream compare; the symmetric session never sees the brake).
  const bool arm_exit = job.settle_exit;

  // Worker state lives for the WHOLE campaign, not one round: the memory's
  // page free-list, fault index buckets, baseline cache and the batch
  // scratch all keep their allocations across every seed round (run_pool
  // spawns fresh threads per round, so each round's workers re-claim the
  // states by slot — any state fits any worker, memories are fully reset
  // per unit).  This is what makes the round rebuild allocation-free;
  // stats->page_allocs stays flat as rounds are added.
  struct WorkerState {
    typename Engine::Memory mem;
    std::vector<Fault> batch;
    WorkerState(std::size_t words, unsigned width) : mem(words, width) {
      batch.reserve(kPerUnit);
    }
  };
  std::vector<std::unique_ptr<WorkerState>> states(threads);
  std::atomic<unsigned> state_slot{0};

  std::vector<std::uint32_t> live(n);
  for (std::size_t i = 0; i < n; ++i) live[i] = static_cast<std::uint32_t>(i);
  std::vector<std::uint32_t> survivors;  // reused across rounds

  bool cancelled = false;
  for (std::size_t s = 0; s < job.num_seeds && !live.empty() && !cancelled; ++s) {
    const std::size_t units = (live.size() + kPerUnit - 1) / kPerUnit;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};
    state_slot.store(0, std::memory_order_relaxed);
    run_pool(threads, [&] {
      std::unique_ptr<WorkerState>& st =
          states[state_slot.fetch_add(1, std::memory_order_relaxed)];
      if (!st) st = std::make_unique<WorkerState>(job.words, job.plan->width);
      typename Engine::Memory& mem = st->mem;
      std::vector<Fault>& batch = st->batch;
      for (;;) {
        if (job.observer && job.observer->cancelled()) {
          stop.store(true, std::memory_order_relaxed);
          break;
        }
        const std::size_t u = next.fetch_add(1);
        if (u >= units) break;
        const std::size_t lo = u * kPerUnit;
        const unsigned count =
            static_cast<unsigned>(std::min<std::size_t>(kPerUnit, live.size() - lo));
        batch.clear();
        for (unsigned i = 0; i < count; ++i) batch.push_back(job.faults[live[lo + i]]);
        typename Engine::Brake brake =
            Engine::make_brake(mem, Engine::used_mask(count), arm_exit);
        const Verdict d = run_campaign_unit_in<Engine>(mem, *job.plan, batch.data(), count,
                                                       job.seeds[s], &brake);
        check_golden_lane(d);
        if (job.stats) {
          job.stats->units.fetch_add(1, std::memory_order_relaxed);
          job.stats->lane_slots.fetch_add(count, std::memory_order_relaxed);
          job.stats->elements_total.fetch_add(plan_elems, std::memory_order_relaxed);
          job.stats->elements_executed.fetch_add(
              brake.elements_entered ? brake.elements_entered : plan_elems,
              std::memory_order_relaxed);
        }
        // Distinct faults -> disjoint result slots: no two units of a
        // round share a live entry, so these writes are race-free.
        for (unsigned i = 0; i < count; ++i) {
          const std::uint32_t g = live[lo + i];
          const bool bit = Engine::bit(d, i);
          if (!bit) job.all[g] = 0;
          if (bit) job.any[g] = 1;
          if (job.matrix) job.matrix->bits[g * job.num_seeds + s] = static_cast<char>(bit);
          if (seed_events) job.observer->on_seed_verdict(g, s, bit);
        }
      }
    });
    if (stop.load(std::memory_order_relaxed)) break;

    // Report + repack, on the calling thread: every decided fault streams
    // its final verdicts now and leaves the live set; the rest roll into
    // the next round's densely packed batches.
    const bool final_round = s + 1 == job.num_seeds;
    survivors.clear();
    if (!final_round) survivors.reserve(live.size());
    for (const std::uint32_t g : live) {
      const bool decided =
          !no_drop && job.all[g] == 0 && (!job.need_any || job.any[g] != 0);
      if ((decided || final_round) && job.observer) {
        if (job.observer->cancelled()) {
          cancelled = true;
          break;
        }
        job.observer->on_unit_settled(g, 1, job.all + g, job.any + g);
      }
      if (!decided && !final_round) survivors.push_back(g);
    }
    live.swap(survivors);
  }

  if (job.stats) {
    // High-water marks + allocation totals over every worker memory, once
    // the rounds are done (single-threaded here; fetch-max because several
    // region sub-campaigns may accumulate into the same stats).
    const auto fetch_max = [](std::atomic<std::uint64_t>& slot, std::uint64_t mine) {
      std::uint64_t cur = slot.load(std::memory_order_relaxed);
      while (mine > cur && !slot.compare_exchange_weak(cur, mine, std::memory_order_relaxed)) {
      }
    };
    for (const std::unique_ptr<WorkerState>& st : states) {
      if (!st) continue;
      fetch_max(job.stats->pages_peak, st->mem.pages_peak());
      fetch_max(job.stats->packed_pages_peak, st->mem.packed_pages_peak());
      job.stats->page_allocs.fetch_add(st->mem.page_allocations(), std::memory_order_relaxed);
    }
  }
}

// Wide-width entry points, each defined in its arch-flagged translation
// unit inside the twm_wide shared library (built with -fvisibility=hidden;
// these are its only exports — see the CMakeLists note on why the wide
// objects must not share a static archive with portable code).  Call only
// after simd::supported() said the CPU can execute them.
#if defined(__GNUC__) || defined(__clang__)
#define TWM_WIDE_ENTRY __attribute__((visibility("default")))
#else
#define TWM_WIDE_ENTRY
#endif
TWM_WIDE_ENTRY void run_campaign_w256(const CampaignJob& job);
TWM_WIDE_ENTRY void run_campaign_w512(const CampaignJob& job);

// Tiled entry points: one per compiled inner-block width, each dispatching
// internally on `lanes` (kTileLanesSmall / kTileLanesLarge).  The base
// entry is portable code — safe on any CPU; the _w256/_w512 ones carry the
// same cpuid contract as the single-block entries above.
TWM_WIDE_ENTRY void run_campaign_tiled_base(const CampaignJob& job, unsigned lanes);
TWM_WIDE_ENTRY void run_campaign_tiled_w256(const CampaignJob& job, unsigned lanes);
TWM_WIDE_ENTRY void run_campaign_tiled_w512(const CampaignJob& job, unsigned lanes);

}  // namespace twm

#endif  // TWM_ANALYSIS_CAMPAIGN_EXEC_H
