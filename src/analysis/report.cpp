#include "analysis/report.h"

#include <cmath>
#include <cstdint>

namespace twm {

std::string fixed_str(double value, unsigned decimals) {
  if (!std::isfinite(value)) return "0";
  const bool negative = value < 0;
  double magnitude = negative ? -value : value;
  // Integer-scaled round-trip: digits come from std::to_string(uint64),
  // which never consults LC_NUMERIC.  Values too large to scale into a
  // uint64 lose the guarantee, so fall back to the integer part alone.
  double scale = 1.0;
  for (unsigned i = 0; i < decimals; ++i) scale *= 10.0;
  const double scaled = std::round(magnitude * scale);
  if (scaled >= 18446744073709549568.0) {  // largest double below UINT64_MAX
    std::string whole = std::to_string(static_cast<std::uint64_t>(std::round(magnitude)));
    if (negative) whole.insert(whole.begin(), '-');
    return whole;
  }
  std::string digits = std::to_string(static_cast<std::uint64_t>(scaled));
  if (digits.size() <= decimals) digits.insert(0, decimals + 1 - digits.size(), '0');
  std::string out = negative ? "-" : "";
  out += digits.substr(0, digits.size() - decimals);
  if (decimals) {
    out += '.';
    out += digits.substr(digits.size() - decimals);
  }
  return out;
}

std::string pct_str(double pct) { return fixed_str(pct, 1) + "%"; }

std::string coverage_str(const CoverageOutcome& o) {
  return std::to_string(o.detected_all) + "/" + std::to_string(o.total) + " (" +
         pct_str(o.pct_all()) + ")";
}

}  // namespace twm
