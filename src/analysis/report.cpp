#include "analysis/report.h"

#include <cstdio>

namespace twm {

std::string pct_str(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", pct);
  return buf;
}

std::string coverage_str(const CoverageOutcome& o) {
  return std::to_string(o.detected_all) + "/" + std::to_string(o.total) + " (" +
         pct_str(o.pct_all()) + ")";
}

}  // namespace twm
