#include "march/generator.h"

#include <stdexcept>

namespace twm {

MarchTest random_march(Rng& rng, const GeneratorOptions& opts) {
  if (opts.min_elements < 2 || opts.max_elements < opts.min_elements ||
      opts.max_ops_per_element < 1 || opts.write_percent > 100)
    throw std::invalid_argument("random_march: contradictory options");

  MarchTest t;
  t.name = "random";

  auto order = [&rng] {
    switch (rng.next_below(3)) {
      case 0: return AddrOrder::Up;
      case 1: return AddrOrder::Down;
      default: return AddrOrder::Any;
    }
  };

  // Initialization element.
  bool value = rng.next_bool();
  {
    MarchElement init;
    init.order = AddrOrder::Any;
    init.ops = {value ? Op::w1() : Op::w0()};
    t.elements.push_back(std::move(init));
  }

  const std::size_t n_elements =
      opts.min_elements + rng.next_below(opts.max_elements - opts.min_elements + 1);
  for (std::size_t e = 1; e < n_elements; ++e) {
    MarchElement elem;
    elem.order = order();
    const std::size_t n_ops = 1 + rng.next_below(opts.max_ops_per_element);
    for (std::size_t i = 0; i < n_ops; ++i) {
      if (rng.next_below(100) < opts.write_percent) {
        value = rng.next_bool();
        elem.ops.push_back(value ? Op::w1() : Op::w0());
      } else {
        elem.ops.push_back(value ? Op::r1() : Op::r0());
      }
    }
    t.elements.push_back(std::move(elem));
  }
  return t;
}

bool is_consistent_bit_march(const MarchTest& t) {
  if (t.empty() || t.elements.front().ops.empty()) return false;
  const Op& first = t.elements.front().ops.front();
  if (!first.is_write() || first.data.relative) return false;

  bool value = first.data.complement;
  bool first_op = true;
  for (const auto& e : t.elements)
    for (const auto& op : e.ops) {
      if (op.data.relative || !op.data.pattern.empty()) return false;
      if (first_op) {
        first_op = false;
        continue;
      }
      if (op.is_write())
        value = op.data.complement;
      else if (op.data.complement != value)
        return false;  // read expects stale data
    }
  return true;
}

// ---- search operators ---------------------------------------------------

namespace {

AddrOrder random_order(Rng& rng) {
  switch (rng.next_below(3)) {
    case 0: return AddrOrder::Up;
    case 1: return AddrOrder::Down;
    default: return AddrOrder::Any;
  }
}

// Read expectations are placeholders here; repair_bit_march sets them.
Op random_solid_op(Rng& rng) {
  const bool write = rng.next_bool();
  const bool one = rng.next_bool();
  if (write) return one ? Op::w1() : Op::w0();
  return one ? Op::r1() : Op::r0();
}

}  // namespace

std::string to_string(MarchMutation m) {
  switch (m) {
    case MarchMutation::InsertElement: return "insert-element";
    case MarchMutation::DeleteElement: return "delete-element";
    case MarchMutation::CloneElement: return "clone-element";
    case MarchMutation::FlipOrder: return "flip-order";
    case MarchMutation::AppendReadBack: return "append-read";
    case MarchMutation::InsertOp: return "insert-op";
    case MarchMutation::DeleteOp: return "delete-op";
  }
  return "?";
}

std::optional<MarchMutation> parse_mutation(std::string_view s) {
  for (MarchMutation m : kAllMarchMutations)
    if (s == to_string(m)) return m;
  return std::nullopt;
}

void repair_bit_march(MarchTest& t) {
  for (auto it = t.elements.begin(); it != t.elements.end();)
    it = it->ops.empty() ? t.elements.erase(it) : it + 1;
  for (auto& e : t.elements)
    for (auto& op : e.ops) {
      op.data.relative = false;
      op.data.pattern = BitVec();
      op.data.label.clear();
    }
  if (t.elements.empty() || !t.elements.front().ops.front().is_write()) {
    MarchElement init;
    init.order = AddrOrder::Any;
    init.ops = {Op::w0()};
    t.elements.insert(t.elements.begin(), std::move(init));
  }
  bool value = t.elements.front().ops.front().data.complement;
  bool first = true;
  for (auto& e : t.elements)
    for (auto& op : e.ops) {
      if (first) {
        first = false;
        continue;
      }
      if (op.is_write())
        value = op.data.complement;
      else
        op.data.complement = value;
    }
  if (t.elements.size() < 2) {
    MarchElement verify;
    verify.order = AddrOrder::Any;
    verify.ops = {value ? Op::r1() : Op::r0()};
    t.elements.push_back(std::move(verify));
  }
}

MarchTest mutate_march(Rng& rng, const MarchTest& parent, MarchMutation op) {
  MarchTest t = parent;
  t.name.clear();
  auto& es = t.elements;
  switch (op) {
    case MarchMutation::InsertElement: {
      MarchElement e;
      e.order = random_order(rng);
      const std::size_t n_ops = 1 + rng.next_below(3);
      for (std::size_t i = 0; i < n_ops; ++i) e.ops.push_back(random_solid_op(rng));
      const std::size_t at = es.empty() ? 0 : 1 + rng.next_below(es.size());
      es.insert(es.begin() + static_cast<std::ptrdiff_t>(at), std::move(e));
      break;
    }
    case MarchMutation::DeleteElement:
      if (es.size() > 2)
        es.erase(es.begin() + static_cast<std::ptrdiff_t>(1 + rng.next_below(es.size() - 1)));
      break;
    case MarchMutation::CloneElement:
      if (!es.empty()) {
        const std::size_t at = rng.next_below(es.size());
        es.insert(es.begin() + static_cast<std::ptrdiff_t>(at) + 1, es[at]);
      }
      break;
    case MarchMutation::FlipOrder:
      if (!es.empty()) es[rng.next_below(es.size())].order = random_order(rng);
      break;
    case MarchMutation::AppendReadBack:
      if (!es.empty()) es[rng.next_below(es.size())].ops.push_back(Op::r0());
      break;
    case MarchMutation::InsertOp:
      if (!es.empty()) {
        auto& ops = es[rng.next_below(es.size())].ops;
        ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(rng.next_below(ops.size() + 1)),
                   random_solid_op(rng));
      }
      break;
    case MarchMutation::DeleteOp:
      if (!es.empty()) {
        auto& ops = es[rng.next_below(es.size())].ops;
        if (!ops.empty())
          ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(rng.next_below(ops.size())));
      }
      break;
  }
  repair_bit_march(t);
  return t;
}

MarchTest splice_marches(Rng& rng, const MarchTest& a, const MarchTest& b) {
  MarchTest t;
  const std::size_t cut_a = a.elements.empty() ? 0 : 1 + rng.next_below(a.elements.size());
  const std::size_t cut_b = b.elements.empty() ? 0 : rng.next_below(b.elements.size());
  t.elements.assign(a.elements.begin(),
                    a.elements.begin() + static_cast<std::ptrdiff_t>(cut_a));
  t.elements.insert(t.elements.end(),
                    b.elements.begin() + static_cast<std::ptrdiff_t>(cut_b),
                    b.elements.end());
  repair_bit_march(t);
  return t;
}

}  // namespace twm
