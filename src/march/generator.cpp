#include "march/generator.h"

#include <stdexcept>

namespace twm {

MarchTest random_march(Rng& rng, const GeneratorOptions& opts) {
  if (opts.min_elements < 2 || opts.max_elements < opts.min_elements ||
      opts.max_ops_per_element < 1 || opts.write_percent > 100)
    throw std::invalid_argument("random_march: contradictory options");

  MarchTest t;
  t.name = "random";

  auto order = [&rng] {
    switch (rng.next_below(3)) {
      case 0: return AddrOrder::Up;
      case 1: return AddrOrder::Down;
      default: return AddrOrder::Any;
    }
  };

  // Initialization element.
  bool value = rng.next_bool();
  {
    MarchElement init;
    init.order = AddrOrder::Any;
    init.ops = {value ? Op::w1() : Op::w0()};
    t.elements.push_back(std::move(init));
  }

  const std::size_t n_elements =
      opts.min_elements + rng.next_below(opts.max_elements - opts.min_elements + 1);
  for (std::size_t e = 1; e < n_elements; ++e) {
    MarchElement elem;
    elem.order = order();
    const std::size_t n_ops = 1 + rng.next_below(opts.max_ops_per_element);
    for (std::size_t i = 0; i < n_ops; ++i) {
      if (rng.next_below(100) < opts.write_percent) {
        value = rng.next_bool();
        elem.ops.push_back(value ? Op::w1() : Op::w0());
      } else {
        elem.ops.push_back(value ? Op::r1() : Op::r0());
      }
    }
    t.elements.push_back(std::move(elem));
  }
  return t;
}

bool is_consistent_bit_march(const MarchTest& t) {
  if (t.empty() || t.elements.front().ops.empty()) return false;
  const Op& first = t.elements.front().ops.front();
  if (!first.is_write() || first.data.relative) return false;

  bool value = first.data.complement;
  bool first_op = true;
  for (const auto& e : t.elements)
    for (const auto& op : e.ops) {
      if (op.data.relative || !op.data.pattern.empty()) return false;
      if (first_op) {
        first_op = false;
        continue;
      }
      if (op.is_write())
        value = op.data.complement;
      else if (op.data.complement != value)
        return false;  // read expects stale data
    }
  return true;
}

}  // namespace twm
