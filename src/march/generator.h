// Random generation of *valid* bit-oriented march tests, for property-based
// testing of the transformation pipeline.
//
// A generated march is always well-formed march-test prose: it starts with
// an initialization write element, every Read expects the value the
// preceding operations left in the cell, and address orders are drawn from
// {up, down, any}.  Such tests are exactly the universe TWM_TA's
// preconditions admit, so every pipeline invariant (transparency, content
// preservation, read-first elements, complexity bounds) must hold on all of
// them — the fuzz sweeps in tests/generator_test.cpp check that.
#ifndef TWM_MARCH_GENERATOR_H
#define TWM_MARCH_GENERATOR_H

#include <optional>
#include <string>
#include <string_view>

#include "march/test.h"
#include "util/rng.h"

namespace twm {

struct GeneratorOptions {
  std::size_t min_elements = 2;  // including the init element
  std::size_t max_elements = 7;
  std::size_t max_ops_per_element = 5;
  // Probability (percent) that a generated operation is a Write.
  unsigned write_percent = 50;
};

// Generates a valid bit-oriented march test.  Throws std::invalid_argument
// for contradictory options.
MarchTest random_march(Rng& rng, const GeneratorOptions& opts = {});

// Validity predicate used by the generator's own tests: reads expect what
// was last written (starting from the init element's value).
bool is_consistent_bit_march(const MarchTest& t);

// ---- search operators (src/explore) -------------------------------------
//
// Validity-preserving edits over the same universe random_march draws
// from: every operator returns a march satisfying is_consistent_bit_march
// (fuzz-checked in tests/generator_test.cpp).  Invalid intermediate states
// are repaired, not rejected — repair_bit_march rewrites read expectations
// after any structural edit, so the space stays closed under mutation and
// the search never wastes draws on dead candidates.

enum class MarchMutation {
  InsertElement,   // new random element at a random non-init position
  DeleteElement,   // drop a non-init element (keeps >= 2 elements)
  CloneElement,    // duplicate one element in place
  FlipOrder,       // redraw one element's address order (up/down/any)
  AppendReadBack,  // append a verifying read to one element
  InsertOp,        // insert a random op inside one element
  DeleteOp,        // remove one op (repair reinstates the init write)
};

inline constexpr MarchMutation kAllMarchMutations[] = {
    MarchMutation::InsertElement, MarchMutation::DeleteElement,
    MarchMutation::CloneElement,  MarchMutation::FlipOrder,
    MarchMutation::AppendReadBack, MarchMutation::InsertOp,
    MarchMutation::DeleteOp,
};

// Canonical operator id ("insert-element", ...) — the ExploreSpec JSON
// spelling; parse_mutation is its inverse (nullopt on unknown spellings).
std::string to_string(MarchMutation m);
std::optional<MarchMutation> parse_mutation(std::string_view s);

// Rewrites `t` in place into a consistent bit-oriented march: data specs
// are clamped to the absolute solid vocabulary, an initializing write is
// prepended when missing, every Read is rewritten to expect the last
// written value, empty elements are dropped, and a march shrunk below two
// elements gets a verifying read element appended.
void repair_bit_march(MarchTest& t);

// One mutated copy of `parent` (repaired; `parent` untouched, result name
// empty).
MarchTest mutate_march(Rng& rng, const MarchTest& parent, MarchMutation op);

// Crossover: a non-empty prefix of `a`'s elements spliced to a suffix of
// `b`'s, repaired.
MarchTest splice_marches(Rng& rng, const MarchTest& a, const MarchTest& b);

}  // namespace twm

#endif  // TWM_MARCH_GENERATOR_H
