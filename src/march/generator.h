// Random generation of *valid* bit-oriented march tests, for property-based
// testing of the transformation pipeline.
//
// A generated march is always well-formed march-test prose: it starts with
// an initialization write element, every Read expects the value the
// preceding operations left in the cell, and address orders are drawn from
// {up, down, any}.  Such tests are exactly the universe TWM_TA's
// preconditions admit, so every pipeline invariant (transparency, content
// preservation, read-first elements, complexity bounds) must hold on all of
// them — the fuzz sweeps in tests/generator_test.cpp check that.
#ifndef TWM_MARCH_GENERATOR_H
#define TWM_MARCH_GENERATOR_H

#include "march/test.h"
#include "util/rng.h"

namespace twm {

struct GeneratorOptions {
  std::size_t min_elements = 2;  // including the init element
  std::size_t max_elements = 7;
  std::size_t max_ops_per_element = 5;
  // Probability (percent) that a generated operation is a Write.
  unsigned write_percent = 50;
};

// Generates a valid bit-oriented march test.  Throws std::invalid_argument
// for contradictory options.
MarchTest random_march(Rng& rng, const GeneratorOptions& opts = {});

// Validity predicate used by the generator's own tests: reads expect what
// was last written (starting from the init element's value).
bool is_consistent_bit_march(const MarchTest& t);

}  // namespace twm

#endif  // TWM_MARCH_GENERATOR_H
