// Library of classical bit-oriented march tests.
//
// Each entry records the march in the conventional notation together with
// its operation counts (the paper's S and Q) and the fault classes it is
// known to cover at the bit level.
#ifndef TWM_MARCH_LIBRARY_H
#define TWM_MARCH_LIBRARY_H

#include <string>
#include <vector>

#include "march/test.h"

namespace twm {

struct MarchInfo {
  std::string name;
  std::string spec;          // DSL accepted by parse_march()
  std::size_t ops;           // S: read+write operations per word
  std::size_t reads;         // Q: read operations per word
  bool full_cf_coverage;     // detects 100% of CFst/CFid/CFin (unlinked)
  std::string reference;     // literature origin
};

// All library entries, in canonical order.
const std::vector<MarchInfo>& march_catalog();

// Parsed march test by name ("March C-", "March U", ...).  Throws
// std::out_of_range for unknown names.
MarchTest march_by_name(const std::string& name);

// Catalog metadata by name.
const MarchInfo& march_info(const std::string& name);

std::vector<std::string> march_names();

}  // namespace twm

#endif  // TWM_MARCH_LIBRARY_H
