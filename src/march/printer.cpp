#include "march/printer.h"

#include <sstream>

namespace twm {

std::string to_string(const MarchElement& e) {
  std::ostringstream os;
  if (e.pause_before) os << "del ";
  os << to_string(e.order) << "(";
  for (std::size_t i = 0; i < e.ops.size(); ++i) {
    if (i) os << ",";
    os << e.ops[i].to_string();
  }
  os << ")";
  return os.str();
}

std::string to_string(const MarchTest& t) {
  std::ostringstream os;
  if (!t.name.empty()) os << t.name << ": ";
  os << "{ ";
  for (std::size_t i = 0; i < t.elements.size(); ++i) {
    if (i) os << "; ";
    os << to_string(t.elements[i]);
  }
  os << " }";
  return os.str();
}

}  // namespace twm
