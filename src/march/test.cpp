#include "march/test.h"

namespace twm {

std::size_t MarchElement::read_count() const {
  std::size_t n = 0;
  for (const auto& op : ops) n += op.is_read();
  return n;
}

std::size_t MarchElement::write_count() const { return ops.size() - read_count(); }

bool MarchElement::all_writes() const {
  for (const auto& op : ops)
    if (op.is_read()) return false;
  return !ops.empty();
}

std::size_t MarchTest::op_count() const {
  std::size_t n = 0;
  for (const auto& e : elements) n += e.ops.size();
  return n;
}

std::size_t MarchTest::read_count() const {
  std::size_t n = 0;
  for (const auto& e : elements) n += e.read_count();
  return n;
}

std::size_t MarchTest::write_count() const { return op_count() - read_count(); }

bool MarchTest::is_transparent() const {
  for (const auto& e : elements)
    for (const auto& op : e.ops)
      if (!op.data.relative) return false;
  return op_count() > 0;
}

bool MarchTest::every_element_begins_with_read() const {
  for (const auto& e : elements)
    if (!e.begins_with_read()) return false;
  return true;
}

std::optional<DataSpec> MarchTest::final_write_spec() const {
  std::optional<DataSpec> last;
  for (const auto& e : elements)
    for (const auto& op : e.ops)
      if (op.is_write()) last = op.data;
  return last;
}

const Op* MarchTest::last_op() const {
  for (auto e = elements.rbegin(); e != elements.rend(); ++e)
    if (!e->ops.empty()) return &e->ops.back();
  return nullptr;
}

}  // namespace twm
