#include "march/word_expand.h"

#include <stdexcept>

#include "util/backgrounds.h"

namespace twm {

MarchTest solid_march(const MarchTest& bit_march) {
  MarchTest t = bit_march;
  t.name = "S" + bit_march.name;
  for (auto& e : t.elements)
    for (auto& op : e.ops)
      if (op.data.relative || !op.data.pattern.empty())
        throw std::invalid_argument("solid_march: input must be a plain bit-oriented march");
  return t;
}

MarchTest word_oriented_march(const MarchTest& bit_march, unsigned width) {
  const auto backgrounds = standard_backgrounds(width);
  MarchTest t;
  t.name = "WO-" + bit_march.name;
  for (std::size_t k = 0; k < backgrounds.size(); ++k) {
    const BitVec& d = backgrounds[k];
    const std::string label = "D" + std::to_string(k);
    for (const auto& e : bit_march.elements) {
      MarchElement we;
      we.order = e.order;
      we.pause_before = e.pause_before;
      for (const auto& op : e.ops) {
        DataSpec spec;
        spec.relative = false;
        spec.complement = op.data.complement;
        // D0 is all-zero: keep the spec pattern-free so pass 0 is exactly
        // the solid march.
        if (!d.all_zero()) {
          spec.pattern = d;
          spec.label = label;
        }
        we.ops.push_back(Op{op.kind, spec});
      }
      t.elements.push_back(std::move(we));
    }
  }
  return t;
}

MarchTest nontransparent_amarch(unsigned width, bool base_complement) {
  MarchTest t;
  t.name = "AMarch";
  const DataSpec base{false, base_complement, {}, {}};
  const auto ds = checkerboard_backgrounds(width);
  for (std::size_t k = 0; k < ds.size(); ++k) {
    DataSpec flipped{false, base_complement, ds[k], "D" + std::to_string(k + 1)};
    MarchElement e;
    e.order = AddrOrder::Any;
    e.ops = {Op::read(base), Op::write(flipped), Op::read(flipped), Op::write(base),
             Op::read(base)};
    t.elements.push_back(std::move(e));
  }
  MarchElement last;
  last.order = AddrOrder::Any;
  last.ops = {Op::read(base)};
  t.elements.push_back(std::move(last));
  return t;
}

}  // namespace twm
