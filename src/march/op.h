// March test operations.
//
// A march operation is a Read or Write whose data is described *symbolically*
// so the same representation covers nontransparent tests (absolute data) and
// transparent tests (data relative to the word's initial content `a`):
//
//   value(width, a) = (relative ? a : 0) ^ (complement ? 11..1 : 0) ^ pattern
//
// Examples:  w0  -> {relative=0, complement=0}
//            w1  -> {relative=0, complement=1}
//            w(D2)    -> {relative=0, pattern=D2}
//            w(a)     -> {relative=1, complement=0}
//            w(~a)    -> {relative=1, complement=1}
//            w(a^D2)  -> {relative=1, pattern=D2}
// For Read operations the data spec is the *expected* value.
#ifndef TWM_MARCH_OP_H
#define TWM_MARCH_OP_H

#include <string>

#include "util/bitvec.h"

namespace twm {

enum class OpKind { Read, Write };

enum class AddrOrder { Up, Down, Any };

struct DataSpec {
  bool relative = false;
  bool complement = false;
  BitVec pattern;      // empty width-0 BitVec means "no pattern"
  std::string label;   // optional pretty name for the pattern, e.g. "D1"

  // XOR distance from the word's initial content (relative specs) or from
  // zero (absolute specs).
  BitVec mask(unsigned width) const;
  // Concrete value given the word width and the initial content `a`
  // (`a` is only consulted when relative).
  BitVec value(unsigned width, const BitVec& initial) const;

  // Symbolic string, e.g. "0", "1", "a", "~a", "a^D1".
  std::string to_string() const;

  bool operator==(const DataSpec& o) const {
    return relative == o.relative && complement == o.complement && pattern == o.pattern;
  }
};

struct Op {
  OpKind kind = OpKind::Read;
  DataSpec data;

  bool is_read() const { return kind == OpKind::Read; }
  bool is_write() const { return kind == OpKind::Write; }

  std::string to_string() const;

  static Op read(DataSpec d) { return Op{OpKind::Read, std::move(d)}; }
  static Op write(DataSpec d) { return Op{OpKind::Write, std::move(d)}; }

  // Bit-oriented / solid-background shorthands.
  static Op r0() { return read({}); }
  static Op r1() { return read({false, true, {}, {}}); }
  static Op w0() { return write({}); }
  static Op w1() { return write({false, true, {}, {}}); }
};

std::string to_string(AddrOrder o);

}  // namespace twm

#endif  // TWM_MARCH_OP_H
