#include "march/op.h"

#include <stdexcept>

namespace twm {

BitVec DataSpec::mask(unsigned width) const {
  BitVec m = complement ? BitVec::ones(width) : BitVec::zeros(width);
  if (!pattern.empty()) {
    if (pattern.width() != width)
      throw std::invalid_argument("DataSpec::mask: pattern width mismatch");
    m ^= pattern;
  }
  return m;
}

BitVec DataSpec::value(unsigned width, const BitVec& initial) const {
  BitVec v = mask(width);
  if (relative) {
    if (initial.width() != width)
      throw std::invalid_argument("DataSpec::value: initial width mismatch");
    v ^= initial;
  }
  return v;
}

std::string DataSpec::to_string() const {
  const std::string pat = pattern.empty() ? std::string() : (label.empty() ? pattern.to_string() : label);
  if (relative) {
    std::string s = complement ? "~a" : "a";
    if (!pat.empty()) s += "^" + pat;
    return s;
  }
  if (pat.empty()) return complement ? "1" : "0";
  return (complement ? "~" : "") + pat;
}

std::string Op::to_string() const {
  return (kind == OpKind::Read ? "r" : "w") + std::string("(") + data.to_string() + ")";
}

std::string to_string(AddrOrder o) {
  switch (o) {
    case AddrOrder::Up: return "up";
    case AddrOrder::Down: return "down";
    case AddrOrder::Any: return "any";
  }
  return "?";
}

}  // namespace twm
