#include "march/library.h"

#include <stdexcept>

#include "march/parser.h"

namespace twm {

const std::vector<MarchInfo>& march_catalog() {
  static const std::vector<MarchInfo> catalog = {
      {"MATS", "{ any(w0); any(r0,w1); any(r1) }", 4, 2, false, "Nair 1979"},
      {"MATS+", "{ any(w0); up(r0,w1); down(r1,w0) }", 5, 2, false, "Abadir/Reghbati 1983"},
      {"MATS++", "{ any(w0); up(r0,w1); down(r1,w0,r0) }", 6, 3, false, "van de Goor 1991"},
      {"March X", "{ any(w0); up(r0,w1); down(r1,w0); any(r0) }", 6, 3, false,
       "van de Goor 1991"},
      {"March Y", "{ any(w0); up(r0,w1,r1); down(r1,w0,r0); any(r0) }", 8, 5, false,
       "van de Goor 1991"},
      {"March C-", "{ any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0) }", 10,
       5, true, "Marinescu 1982 / van de Goor 1993"},
      {"March C", "{ any(w0); up(r0,w1); up(r1,w0); any(r0); down(r0,w1); down(r1,w0); any(r0) }",
       11, 6, true, "Marinescu 1982"},
      {"March A", "{ any(w0); up(r0,w1,w0,w1); up(r1,w0,w1); down(r1,w0,w1,w0); down(r0,w1,w0) }",
       15, 4, true, "Suk/Reddy 1981"},
      {"March B",
       "{ any(w0); up(r0,w1,r1,w0,r0,w1); up(r1,w0,w1); down(r1,w0,w1,w0); down(r0,w1,w0) }", 17,
       6, true, "Suk/Reddy 1981"},
      {"March U", "{ any(w0); up(r0,w1,r1,w0); up(r0,w1); down(r1,w0,r0,w1); down(r1,w0) }", 13,
       6, true, "van de Goor/Gaydadjiev 1997"},
      {"March LR", "{ any(w0); down(r0,w1); up(r1,w0,r0,w1); up(r1,w0); up(r0,w1,r1,w0); up(r0) }",
       14, 7, true, "van de Goor et al. 1996"},
      {"March SS",
       "{ any(w0); up(r0,r0,w0,r0,w1); up(r1,r1,w1,r1,w0); down(r0,r0,w0,r0,w1); "
       "down(r1,r1,w1,r1,w0); any(r0) }",
       22, 13, true, "Hamdioui et al. 2002"},
      {"March LA",
       "{ any(w0); up(r0,w1,w0,w1,r1); up(r1,w0,w1,w0,r0); down(r0,w1,w0,w1,r1); "
       "down(r1,w0,w1,w0,r0); down(r0) }",
       22, 9, true, "van de Goor et al. 1999"},
      // March B extended with two delayed verify elements: the classic test
      // for data-retention faults ('del' = march Del pause).
      {"March G",
       "{ any(w0); up(r0,w1,r1,w0,r0,w1); up(r1,w0,w1); down(r1,w0,w1,w0); down(r0,w1,w0); "
       "del any(r0,w1,r1); del any(r1,w0,r0) }",
       23, 10, true, "van de Goor 1991"},
  };
  return catalog;
}

const MarchInfo& march_info(const std::string& name) {
  for (const auto& m : march_catalog())
    if (m.name == name) return m;
  throw std::out_of_range("march_info: unknown march '" + name + "'");
}

MarchTest march_by_name(const std::string& name) {
  return parse_march(march_info(name).spec, name);
}

std::vector<std::string> march_names() {
  std::vector<std::string> out;
  for (const auto& m : march_catalog()) out.push_back(m.name);
  return out;
}

}  // namespace twm
