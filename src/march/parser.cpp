#include "march/parser.h"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace twm {
namespace {

class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool done() {
    skip_ws();
    return pos_ >= s_.size();
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool accept(char c) {
    if (!done() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() && std::isalpha(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (start == pos_) fail("expected identifier");
    return s_.substr(start, pos_ - start);
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "march parse error at position " << pos_ << ": " << msg;
    throw std::invalid_argument(os.str());
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

Op parse_op(Cursor& c) {
  const char k = c.take();
  if (k != 'r' && k != 'w') c.fail("expected 'r' or 'w'");
  // Accept both the compact form (r0) and the printer's form (r(0)).
  const bool parenthesized = c.accept('(');
  const char v = c.take();
  if (v != '0' && v != '1') c.fail("expected '0' or '1'");
  if (parenthesized) c.expect(')');
  DataSpec d;
  d.complement = (v == '1');
  return Op{k == 'r' ? OpKind::Read : OpKind::Write, d};
}

MarchElement parse_element(Cursor& c) {
  MarchElement e;
  std::string ord = c.word();
  if (ord == "del") {
    e.pause_before = true;
    ord = c.word();
  }
  if (ord == "up")
    e.order = AddrOrder::Up;
  else if (ord == "down")
    e.order = AddrOrder::Down;
  else if (ord == "any")
    e.order = AddrOrder::Any;
  else
    c.fail("unknown address order '" + ord + "'");
  c.expect('(');
  e.ops.push_back(parse_op(c));
  while (c.accept(',')) e.ops.push_back(parse_op(c));
  c.expect(')');
  return e;
}

}  // namespace

MarchTest parse_march(const std::string& text, const std::string& name) {
  Cursor c(text);
  MarchTest t;
  t.name = name;
  c.expect('{');
  t.elements.push_back(parse_element(c));
  while (c.accept(';')) t.elements.push_back(parse_element(c));
  c.expect('}');
  if (!c.done()) c.fail("trailing characters after '}'");
  return t;
}

}  // namespace twm
