// Conventional (nontransparent) word-oriented march construction.
//
// Sec. 3 of the paper: a word-oriented march test is obtained by running the
// bit-oriented march once per data background.  With the standard family
// {D0=0..0, D1, .., Dlog2(B)} every pair of bit positions is distinguished,
// which is what intra-word coupling-fault detection requires.
//
// This module also provides:
//  * solid_march(): the bit-oriented test reinterpreted with solid all-0 /
//    all-1 word backgrounds (the paper's SMarch);
//  * nontransparent_amarch(): the nontransparent counterpart of the paper's
//    ATMarch (the AMarch of Sec. 5) used as the coverage reference.
#ifndef TWM_MARCH_WORD_EXPAND_H
#define TWM_MARCH_WORD_EXPAND_H

#include "march/test.h"

namespace twm {

// SMarch: w0/w1 (r0/r1) become solid all-0/all-1 word operations.  The
// representation is width-agnostic (complement flag only), so this is
// structurally the input test with a new name.
MarchTest solid_march(const MarchTest& bit_march);

// The classical word-oriented expansion: one pass of the bit-oriented march
// per background in {D0, .., Dlog2(B)}; pass k maps w0 -> w(Dk),
// w1 -> w(~Dk), r0 -> r(Dk), r1 -> r(~Dk).
MarchTest word_oriented_march(const MarchTest& bit_march, unsigned width);

// AMarch (Sec. 5): assuming every word currently holds `base` (all-0 when
// base_complement == false, all-1 otherwise), for each k = 1..log2(B):
//   any( r base, w base^Dk, r base^Dk, w base, r base )
// followed by a final any(r base).  Exercises, for every intra-word bit
// pair, the opposite-direction transitions the solid backgrounds miss.
MarchTest nontransparent_amarch(unsigned width, bool base_complement);

}  // namespace twm

#endif  // TWM_MARCH_WORD_EXPAND_H
