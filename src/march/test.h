// March elements and march tests.
//
// A march test is a sequence of march elements; each element applies its
// operations to every word in a prescribed address order, completing all
// operations on one word before moving to the next (the standard march
// execution semantics).
#ifndef TWM_MARCH_TEST_H
#define TWM_MARCH_TEST_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "march/op.h"

namespace twm {

struct MarchElement {
  AddrOrder order = AddrOrder::Any;
  // March "Del": one idle-time unit elapses before this element starts
  // (activates data-retention faults; see Memory::elapse()).
  bool pause_before = false;
  std::vector<Op> ops;

  std::size_t read_count() const;
  std::size_t write_count() const;
  bool begins_with_read() const { return !ops.empty() && ops.front().is_read(); }
  bool all_writes() const;
};

struct MarchTest {
  std::string name;
  std::vector<MarchElement> elements;

  // Number of operations applied per word (the paper's complexity
  // coefficient: total operations = op_count() * N).
  std::size_t op_count() const;
  std::size_t read_count() const;
  std::size_t write_count() const;

  bool empty() const { return elements.empty(); }

  // True iff every operation's data is relative to the initial content.
  bool is_transparent() const;
  // True iff every element starts with a Read (required of transparent
  // tests so the BIST can derive write data from read data).
  bool every_element_begins_with_read() const;

  // The data spec of the last Write operation in the test, i.e. the content
  // every word holds after the test completes (well-formed marches apply
  // the same final write to all words).  nullopt when the test has no Write.
  std::optional<DataSpec> final_write_spec() const;
  const Op* last_op() const;
};

}  // namespace twm

#endif  // TWM_MARCH_TEST_H
