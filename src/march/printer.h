// Text rendering of march tests in the conventional notation, e.g.
//   March C-: { any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0) }
#ifndef TWM_MARCH_PRINTER_H
#define TWM_MARCH_PRINTER_H

#include <string>

#include "march/test.h"

namespace twm {

std::string to_string(const MarchElement& e);
std::string to_string(const MarchTest& t);

}  // namespace twm

#endif  // TWM_MARCH_PRINTER_H
