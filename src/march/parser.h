// Parser for bit-oriented march test descriptions.
//
// Grammar (whitespace-insensitive):
//   test    := '{' element (';' element)* '}'
//   element := ['del'] order '(' op (',' op)* ')'
//   order   := 'up' | 'down' | 'any'
//   op      := ('r' | 'w') ('0' | '1')
//
// 'del' marks a march delay (pause) before the element — used by
// retention-fault tests such as March G.
//
// Example: "{ any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0) }"
// Throws std::invalid_argument with a position-annotated message on errors.
#ifndef TWM_MARCH_PARSER_H
#define TWM_MARCH_PARSER_H

#include <string>

#include "march/test.h"

namespace twm {

MarchTest parse_march(const std::string& text, const std::string& name = "");

}  // namespace twm

#endif  // TWM_MARCH_PARSER_H
