// BitVec: a fixed-width vector of bits used to model memory words of
// arbitrary width (the paper evaluates word widths 16..128; we support any
// width >= 1).  Bit 0 is the least-significant bit; to_string() prints the
// most-significant bit first, matching the paper's b_{B-1}..b_0 notation.
#ifndef TWM_UTIL_BITVEC_H
#define TWM_UTIL_BITVEC_H

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace twm {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(unsigned width, bool fill = false);

  static BitVec zeros(unsigned width) { return BitVec(width, false); }
  static BitVec ones(unsigned width) { return BitVec(width, true); }
  // Builds from a string of '0'/'1' characters, most-significant bit first.
  static BitVec from_string(const std::string& bits);
  // Builds from the low `width` bits of `value`.
  static BitVec from_uint(unsigned width, std::uint64_t value);

  unsigned width() const { return width_; }
  bool empty() const { return width_ == 0; }

  bool get(unsigned i) const;
  void set(unsigned i, bool v);
  void flip(unsigned i);

  BitVec operator~() const;
  BitVec operator^(const BitVec& o) const;
  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec& operator^=(const BitVec& o);
  bool operator==(const BitVec& o) const;
  bool operator!=(const BitVec& o) const { return !(*this == o); }
  // Lexicographic over (width, bits); enables use as std::map/set key.
  bool operator<(const BitVec& o) const;

  bool all_zero() const;
  bool all_one() const;
  unsigned popcount() const;

  // Parity (XOR) of all bits; used by the TOMT parity-checker model.
  bool parity() const;

  // Low 64 bits as an integer (bits above 64 ignored).
  std::uint64_t low64() const;

  std::string to_string() const;  // MSB-first '0'/'1' string.

  // Folds this word into a running hash; used by stream comparators.
  std::size_t hash_combine(std::size_t seed) const;

 private:
  void normalize();  // clears bits above width_ in the top limb
  static constexpr unsigned kBits = 64;
  unsigned width_ = 0;
  std::vector<std::uint64_t> limbs_;
};

}  // namespace twm

#endif  // TWM_UTIL_BITVEC_H
