#include "util/table.h"

#include <algorithm>

namespace twm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  Row r;
  r.cells = std::move(cells);
  r.cells.resize(header_.size());
  r.rule_before = pending_rule_;
  pending_rule_ = false;
  rows_.push_back(std::move(r));
}

void Table::add_rule() { pending_rule_ = true; }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c) w[c] = std::max(w[c], r.cells[c].size());

  auto print_rule = [&] {
    for (std::size_t c = 0; c < w.size(); ++c) {
      os << '+' << std::string(w[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < w.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << "| " << s << std::string(w[c] - s.size() + 1, ' ');
    }
    os << "|\n";
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& r : rows_) {
    if (r.rule_before) print_rule();
    print_cells(r.cells);
  }
  print_rule();
}

}  // namespace twm
