#include "util/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "util/rng.h"

namespace twm::util {

namespace {

// Uniform double in [0, 1) from the top 53 bits of one engine draw.
double uniform01(Rng& rng) {
  return static_cast<double>(rng.next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

struct Failpoint {
  std::string name;
  FailAction action = FailAction::Err;
  // Trigger: count > 0 fires exactly on the count-th hit (one-shot);
  // prob >= 0 fires each hit with that probability; neither set fires on
  // every hit.
  std::uint64_t count = 0;
  double prob = -1.0;
  Rng rng{1};
  std::uint64_t hits = 0;
  std::uint64_t trips = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Failpoint>> points;
  std::uint64_t seed = 1;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::optional<FailAction> parse_action(std::string_view s) {
  if (s == "err") return FailAction::Err;
  if (s == "oom") return FailAction::Oom;
  if (s == "drop") return FailAction::Drop;
  if (s == "eintr") return FailAction::Eintr;
  return std::nullopt;
}

bool parse_point(std::string_view item, std::uint64_t seed,
                 std::unique_ptr<Failpoint>& out, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = "failpoint \"" + std::string(item) + "\": " + msg;
    return false;
  };
  const std::size_t eq = item.find('=');
  if (eq == std::string_view::npos || eq == 0) return fail("expected name=action");
  auto fp = std::make_unique<Failpoint>();
  fp->name = std::string(item.substr(0, eq));
  std::string_view rhs = item.substr(eq + 1);
  std::string_view action = rhs;
  if (const std::size_t at = rhs.find('@'); at != std::string_view::npos) {
    action = rhs.substr(0, at);
    const std::string n(rhs.substr(at + 1));
    char* end = nullptr;
    const unsigned long long v = std::strtoull(n.c_str(), &end, 10);
    if (n.empty() || *end != '\0' || v == 0)
      return fail("count after '@' must be a positive integer");
    fp->count = v;
  } else if (const std::size_t colon = rhs.find(':'); colon != std::string_view::npos) {
    action = rhs.substr(0, colon);
    const std::string p(rhs.substr(colon + 1));
    char* end = nullptr;
    const double v = std::strtod(p.c_str(), &end);
    if (p.empty() || *end != '\0' || !(v > 0.0) || v > 1.0)
      return fail("probability after ':' must be in (0, 1]");
    fp->prob = v;
  }
  const auto a = parse_action(action);
  if (!a) return fail("unknown action \"" + std::string(action) + "\" (err|oom|drop|eintr)");
  fp->action = *a;
  fp->rng = Rng(seed ^ fnv1a(fp->name));
  out = std::move(fp);
  return true;
}

}  // namespace

namespace detail {

std::atomic<bool> g_failpoints_enabled{false};

std::optional<FailAction> failpoint_hit_slow(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& fp : r.points) {
    if (fp->name != name) continue;
    ++fp->hits;
    bool fire;
    if (fp->count > 0)
      fire = fp->hits == fp->count;
    else if (fp->prob >= 0.0)
      fire = uniform01(fp->rng) < fp->prob;
    else
      fire = true;
    if (!fire) return std::nullopt;
    ++fp->trips;
    return fp->action;
  }
  return std::nullopt;
}

}  // namespace detail

std::string_view to_string(FailAction a) {
  switch (a) {
    case FailAction::Err: return "err";
    case FailAction::Oom: return "oom";
    case FailAction::Drop: return "drop";
    case FailAction::Eintr: return "eintr";
  }
  return "?";
}

bool failpoints_configure(std::string_view spec, std::string* error) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::unique_ptr<Failpoint>> parsed;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view item =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{} : rest.substr(semi + 1);
    if (item.empty()) continue;  // tolerate "a=err;;b=err" and trailing ';'
    std::unique_ptr<Failpoint> fp;
    if (!parse_point(item, r.seed, fp, error)) return false;
    parsed.push_back(std::move(fp));
  }
  r.points = std::move(parsed);
  detail::g_failpoints_enabled.store(!r.points.empty(), std::memory_order_relaxed);
  return true;
}

void failpoints_clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
  detail::g_failpoints_enabled.store(false, std::memory_order_relaxed);
}

void failpoints_set_seed(std::uint64_t seed) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.seed = seed;
}

std::uint64_t failpoint_trips(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& fp : r.points)
    if (fp->name == name) return fp->trips;
  return 0;
}

std::vector<std::string> failpoint_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.points.size());
  for (const auto& fp : r.points) names.push_back(fp->name);
  return names;
}

namespace {

// Every copy of this translation unit (the static lib and the one absorbed
// into the twm_wide shared lib) self-configures from the environment at
// load time, so failpoints reach code on both sides of the .so boundary.
struct EnvInit {
  EnvInit() {
    if (const char* seed = std::getenv("TWM_FAILPOINTS_SEED")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(seed, &end, 10);
      if (end && *end == '\0') failpoints_set_seed(v);
    }
    if (const char* spec = std::getenv("TWM_FAILPOINTS")) {
      std::string error;
      if (!failpoints_configure(spec, &error))
        std::fprintf(stderr, "twm: ignoring TWM_FAILPOINTS: %s\n", error.c_str());
    }
  }
};
const EnvInit g_env_init;

}  // namespace

}  // namespace twm::util
