// Deterministic pseudo-random helpers for reproducible experiments.
#ifndef TWM_UTIL_RNG_H
#define TWM_UTIL_RNG_H

#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "util/bitvec.h"

namespace twm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : eng_(seed) {}

  std::uint64_t next_u64() { return eng_(); }

  // Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    std::uniform_int_distribution<std::uint64_t> d(0, n - 1);
    return d(eng_);
  }

  bool next_bool() { return (next_u64() & 1u) != 0; }

  BitVec next_word(unsigned width) {
    BitVec v(width);
    for (unsigned i = 0; i < width; ++i) v.set(i, next_bool());
    return v;
  }

  // Textual engine state (std::mt19937_64 stream form: space-separated
  // decimal words).  set_state(state()) reproduces the stream bit-
  // identically — how resumable searches checkpoint their randomness.
  std::string state() const {
    std::ostringstream os;
    os << eng_;
    return os.str();
  }

  // Restores a state captured by state(); returns false (engine untouched)
  // when the text is not a well-formed mt19937_64 state.
  bool set_state(const std::string& text) {
    std::istringstream is(text);
    std::mt19937_64 candidate;
    is >> candidate;
    if (is.fail()) return false;
    eng_ = candidate;
    return true;
  }

 private:
  std::mt19937_64 eng_;
};

}  // namespace twm

#endif  // TWM_UTIL_RNG_H
