// Data-background generators for word-oriented memory testing.
//
// The paper (Sec. 4) uses the standard checkerboard family: for a B-bit word
// (B a power of two), background D_k (k = 1..log2 B) has bit j equal to 1
// iff floor(j / 2^(k-1)) is even.  Example for B = 8:
//   D1 = 01010101, D2 = 00110011, D3 = 00001111.
// Together with the solid background D0 = 00..0 these 1+log2(B) patterns
// distinguish every pair of bit positions: for any i != j there is a k with
// D_k[i] != D_k[j] (tests/util_test.cpp proves this property by sweep).
#ifndef TWM_UTIL_BACKGROUNDS_H
#define TWM_UTIL_BACKGROUNDS_H

#include <vector>

#include "util/bitvec.h"

namespace twm {

// True iff x is a power of two (the paper assumes B is).
bool is_power_of_two(unsigned x);

// log2 of a power of two.
unsigned log2_exact(unsigned x);

// Checkerboard background D_k for a B-bit word, k in [1, log2 B].
BitVec checkerboard_background(unsigned width, unsigned k);

// The full family {D1, .., Dlog2(B)} (without the solid D0).
std::vector<BitVec> checkerboard_backgrounds(unsigned width);

// The family used by conventional word-oriented march conversion
// (Sec. 3 of the paper): {D0 = 0..0, D1, .., Dlog2(B)}.
std::vector<BitVec> standard_backgrounds(unsigned width);

}  // namespace twm

#endif  // TWM_UTIL_BACKGROUNDS_H
