#include "util/backgrounds.h"

#include <stdexcept>

namespace twm {

bool is_power_of_two(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

unsigned log2_exact(unsigned x) {
  if (!is_power_of_two(x)) throw std::invalid_argument("log2_exact: not a power of two");
  unsigned n = 0;
  while (x > 1) {
    x >>= 1;
    ++n;
  }
  return n;
}

BitVec checkerboard_background(unsigned width, unsigned k) {
  if (!is_power_of_two(width)) throw std::invalid_argument("checkerboard: width not 2^m");
  const unsigned m = log2_exact(width);
  if (k < 1 || k > m) throw std::invalid_argument("checkerboard: k out of range");
  BitVec d(width);
  for (unsigned j = 0; j < width; ++j) {
    const unsigned block = j >> (k - 1);  // floor(j / 2^(k-1))
    d.set(j, (block % 2) == 0);
  }
  return d;
}

std::vector<BitVec> checkerboard_backgrounds(unsigned width) {
  const unsigned m = log2_exact(width);
  std::vector<BitVec> out;
  out.reserve(m);
  for (unsigned k = 1; k <= m; ++k) out.push_back(checkerboard_background(width, k));
  return out;
}

std::vector<BitVec> standard_backgrounds(unsigned width) {
  std::vector<BitVec> out;
  out.push_back(BitVec::zeros(width));
  for (auto& d : checkerboard_backgrounds(width)) out.push_back(d);
  return out;
}

}  // namespace twm
