// Deterministic fault injection: named failpoints for chaos testing.
//
// A failpoint is a named site in a production code path (cache disk write,
// socket send, page allocation, worker-thread body, ...) where a test run
// can inject a failure.  Sites are instrumented once with the TWM_FAILPOINT
// macro and stay in release builds: when no failpoint is configured the
// macro costs one relaxed atomic load and branches straight past the
// registry — no lock, no string hashing, no allocation.
//
// Activation is a spec string, from the TWM_FAILPOINTS environment variable
// or `twm_cli --failpoints`:
//
//   name=action[@count|:prob][;name=action...]
//
//   cache.disk_write=err        every hit fails
//   cache.disk_write=err@3      exactly the 3rd hit fails (1-based, one-shot)
//   socket.send=drop:0.1        each hit fails with probability 0.1
//   page.alloc=oom@100          the 100th page allocation throws bad_alloc
//
// Actions are interpreted by the site: `err` = the operation reports
// failure, `oom` = allocation failure (std::bad_alloc), `drop` = data is
// silently discarded (sockets), `eintr` = one synthetic EINTR before the
// real call (retry-loop coverage).  Sites ignore actions that make no sense
// for them by treating any fired action as their natural failure mode.
//
// Both triggers are deterministic: `@count` counts hits per failpoint, and
// `:prob` draws from a per-failpoint RNG seeded from TWM_FAILPOINTS_SEED
// (default 1) xor the FNV-1a hash of the name — the same spec + seed + hit
// sequence always fires the same hits, so a chaos failure reproduces.
//
// The registry is process-wide and thread-safe.  Note for this repo: the
// arch-flagged wide backends live in a separate shared library (twm_wide)
// that absorbs its own copy of the static lib, so its registry instance is
// distinct.  Both copies self-configure from TWM_FAILPOINTS at load time,
// which happens before main() — so the environment variable reaches every
// site, while failpoints_configure() (and the CLI's --failpoints flag,
// which calls it) reaches only the static-lib copy: every service, cache,
// checkpoint and worker site, plus memsim sites on the scalar and
// --simd 64 paths.  Chaos runs that must hit wide-backend page allocation
// set the environment variable instead.
#ifndef TWM_UTIL_FAILPOINT_H
#define TWM_UTIL_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace twm::util {

enum class FailAction { Err, Oom, Drop, Eintr };

std::string_view to_string(FailAction a);

// Parses and installs a failpoint spec, replacing any previous
// configuration.  An empty spec deactivates everything.  Returns false and
// fills `error` (when non-null) on a malformed spec — the previous
// configuration is left untouched in that case.
bool failpoints_configure(std::string_view spec, std::string* error = nullptr);

// Deactivates all failpoints and resets hit/trip counters.
void failpoints_clear();

// Seed for `:prob` triggers (also read from TWM_FAILPOINTS_SEED at startup).
// Takes effect for failpoints configured *after* the call.
void failpoints_set_seed(std::uint64_t seed);

namespace detail {
extern std::atomic<bool> g_failpoints_enabled;
std::optional<FailAction> failpoint_hit_slow(std::string_view name);
}  // namespace detail

// True when any failpoint is configured — the macro's fast-path gate.
inline bool failpoints_enabled() {
  return detail::g_failpoints_enabled.load(std::memory_order_relaxed);
}

// Records a hit on `name` and returns the action when the trigger fires.
// Prefer the TWM_FAILPOINT macro, which skips the call entirely when no
// failpoint is configured.
inline std::optional<FailAction> failpoint_hit(std::string_view name) {
  if (!failpoints_enabled()) return std::nullopt;
  return detail::failpoint_hit_slow(name);
}

// Times `name` actually fired (not merely was hit) since configure/clear.
// Test observability and degradation counters.
std::uint64_t failpoint_trips(std::string_view name);

// Names of all configured failpoints (spec order).
std::vector<std::string> failpoint_names();

}  // namespace twm::util

// Evaluates to std::optional<FailAction>; empty unless a configured
// failpoint named `name` fires on this hit.  Usage:
//
//   if (auto fp = TWM_FAILPOINT("cache.disk_write")) return false;
#define TWM_FAILPOINT(name) (::twm::util::failpoint_hit(name))

#endif  // TWM_UTIL_FAILPOINT_H
