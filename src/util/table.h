// Minimal fixed-width ASCII table writer used by the bench binaries to print
// the paper's tables in a readable aligned form.
#ifndef TWM_UTIL_TABLE_H
#define TWM_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace twm {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Adds a horizontal separator before the next row.
  void add_rule();

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace twm

#endif  // TWM_UTIL_TABLE_H
