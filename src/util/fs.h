// Crash-atomic file writes: tmp -> write -> fsync(file) -> rename ->
// fsync(directory).
//
// The rename makes the update atomic against concurrent READERS; the two
// fsyncs make it atomic against CRASHES — without them a power cut can
// leave the final name pointing at a zero-length or partial file (the
// rename metadata can reach disk before the data).  Checkpoints and cache
// entries both promise "valid or absent", so they pay for the full
// sequence.
#ifndef TWM_UTIL_FS_H
#define TWM_UTIL_FS_H

#include <string>
#include <string_view>

namespace twm::util {

// Writes `contents` to `path` crash-atomically via a uniquely-named
// `path + tmp_suffix + <pid>.<seq>` sibling, so concurrent writers of the
// same path never share a tmp file.  Returns false (tmp file removed,
// final path untouched) on any failure.  All syscalls retry EINTR.
bool atomic_write_file(const std::string& path, std::string_view contents,
                       const char* tmp_suffix = ".tmp");

}  // namespace twm::util

#endif  // TWM_UTIL_FS_H
