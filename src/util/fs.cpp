#include "util/fs.h"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace twm::util {

namespace {

int open_retry(const char* path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool fsync_retry(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  return rc == 0;
}

// EINTR-safe close.  POSIX leaves the fd state unspecified after EINTR;
// on Linux the fd is closed regardless, so retrying would race a reuse.
void close_fd(int fd) { ::close(fd); }

bool fsync_dir(const std::string& file_path) {
  const std::size_t slash = file_path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : file_path.substr(0, slash);
  const int fd = open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = fsync_retry(fd);
  close_fd(fd);
  return ok;
}

}  // namespace

bool atomic_write_file(const std::string& path, std::string_view contents,
                       const char* tmp_suffix) {
  // Unique tmp name per write: two threads racing to store the SAME path
  // (concurrent cache writers on one cell key) must not interleave writes
  // into one tmp file — each writes its own and the renames serialize, so
  // the final name always holds one complete entry.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp = path + tmp_suffix + "." + std::to_string(::getpid()) + "." +
                          std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  const int fd = open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const bool wrote = write_all(fd, contents.data(), contents.size()) && fsync_retry(fd);
  close_fd(fd);
  if (!wrote || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Pin the rename itself: without the directory fsync a crash can forget
  // the new name while keeping the (already-synced) data.
  return fsync_dir(path);
}

}  // namespace twm::util
