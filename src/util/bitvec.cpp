#include "util/bitvec.h"

#include <bit>
#include <stdexcept>

namespace twm {

BitVec::BitVec(unsigned width, bool fill) : width_(width) {
  limbs_.assign((width + kBits - 1) / kBits, fill ? ~0ull : 0ull);
  normalize();
}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(static_cast<unsigned>(bits.size()));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    if (c != '0' && c != '1') throw std::invalid_argument("BitVec::from_string: bad char");
    // bits[0] is the most-significant bit.
    v.set(static_cast<unsigned>(bits.size() - 1 - i), c == '1');
  }
  return v;
}

BitVec BitVec::from_uint(unsigned width, std::uint64_t value) {
  BitVec v(width);
  for (unsigned i = 0; i < width && i < 64; ++i) v.set(i, (value >> i) & 1u);
  return v;
}

bool BitVec::get(unsigned i) const {
  if (i >= width_) throw std::out_of_range("BitVec::get");
  return (limbs_[i / kBits] >> (i % kBits)) & 1u;
}

void BitVec::set(unsigned i, bool v) {
  if (i >= width_) throw std::out_of_range("BitVec::set");
  const std::uint64_t mask = 1ull << (i % kBits);
  if (v)
    limbs_[i / kBits] |= mask;
  else
    limbs_[i / kBits] &= ~mask;
}

void BitVec::flip(unsigned i) { set(i, !get(i)); }

BitVec BitVec::operator~() const {
  BitVec r(*this);
  for (auto& l : r.limbs_) l = ~l;
  r.normalize();
  return r;
}

namespace {
void check_width(const BitVec& a, const BitVec& b) {
  if (a.width() != b.width()) throw std::invalid_argument("BitVec width mismatch");
}
}  // namespace

BitVec BitVec::operator^(const BitVec& o) const {
  BitVec r(*this);
  r ^= o;
  return r;
}

BitVec BitVec::operator&(const BitVec& o) const {
  check_width(*this, o);
  BitVec r(*this);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] &= o.limbs_[i];
  return r;
}

BitVec BitVec::operator|(const BitVec& o) const {
  check_width(*this, o);
  BitVec r(*this);
  for (std::size_t i = 0; i < limbs_.size(); ++i) r.limbs_[i] |= o.limbs_[i];
  return r;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  check_width(*this, o);
  for (std::size_t i = 0; i < limbs_.size(); ++i) limbs_[i] ^= o.limbs_[i];
  return *this;
}

bool BitVec::operator==(const BitVec& o) const {
  return width_ == o.width_ && limbs_ == o.limbs_;
}

bool BitVec::operator<(const BitVec& o) const {
  if (width_ != o.width_) return width_ < o.width_;
  for (std::size_t i = limbs_.size(); i-- > 0;)
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i];
  return false;
}

bool BitVec::all_zero() const {
  for (auto l : limbs_)
    if (l != 0) return false;
  return true;
}

bool BitVec::all_one() const { return popcount() == width_; }

unsigned BitVec::popcount() const {
  unsigned n = 0;
  for (auto l : limbs_) n += static_cast<unsigned>(std::popcount(l));
  return n;
}

bool BitVec::parity() const { return (popcount() & 1u) != 0; }

std::uint64_t BitVec::low64() const { return limbs_.empty() ? 0 : limbs_[0]; }

std::string BitVec::to_string() const {
  std::string s(width_, '0');
  for (unsigned i = 0; i < width_; ++i)
    if (get(i)) s[width_ - 1 - i] = '1';
  return s;
}

std::size_t BitVec::hash_combine(std::size_t seed) const {
  auto mix = [&seed](std::uint64_t v) {
    seed ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  };
  mix(width_);
  for (auto l : limbs_) mix(l);
  return seed;
}

void BitVec::normalize() {
  if (width_ % kBits != 0 && !limbs_.empty())
    limbs_.back() &= (~0ull >> (kBits - width_ % kBits));
}

}  // namespace twm
