// Symmetric transparent BIST (Yarmolik/Hellebrand, DATE 1999 — reference
// [18] of the paper under reproduction).
//
// The classical transparent flow needs two passes: a read-only prediction
// pass that computes the expected signature, then the test pass.  The
// symmetric idea removes the prediction pass: if the compactor is an
// order-insensitive XOR accumulator and every word is read an *even*
// number of times, the content-dependent part of the signature cancels —
// the fault-free signature is a constant computable at transform time, so
// TCP = 0.
//
// The price is aliasing: an error contributes to the XOR signature once per
// faulty read, so error effects that recur an even number of times at the
// same bit position cancel (the aliasing problem the paper's introduction
// attributes to this family of schemes).  bench_aliasing quantifies the
// loss against the MISR + prediction flow.
//
// symmetrize() takes any transparent march (e.g. a TWMarch) and appends a
// balancing read element when the per-word read count is odd; the returned
// descriptor carries the constant expected signature as a function of the
// word count N.
//
// The session is implemented once, templated over the engine traits
// (core/engine_traits.h): run_symmetric_session_t<ScalarEngine> runs one
// universe, run_symmetric_session_t<PackedEngine> 64 at once — the same
// code path, so the backends cannot drift.
#ifndef TWM_CORE_SYMMETRIC_H
#define TWM_CORE_SYMMETRIC_H

#include <cstddef>

#include "core/engine_traits.h"
#include "march/test.h"

namespace twm {

// True iff the content contribution to an XOR-accumulated signature
// cancels for every possible memory content: each word is read an even
// number of times.  (March semantics apply every element to every word, so
// this is a property of the op list alone.)
bool is_symmetric(const MarchTest& transparent);

struct SymmetricTest {
  MarchTest test;        // transparent march with even per-word read count
  BitVec mask_xor;       // XOR of all read-operation masks (one word's worth)

  // Constant fault-free signature of the XOR accumulator after running
  // `test` on an N-word memory: N copies of mask_xor fold to either zero
  // (N even) or mask_xor (N odd).
  BitVec expected_signature(std::size_t num_words) const;
};

// Balances the read count (appending any(r <final content>) if needed) and
// precomputes the signature constant.  The input must be a transparent
// march whose final content equals the initial content (true for every
// TWMarch) — otherwise the appended read's expectation would be wrong and
// the test would still displace data; throws std::invalid_argument.
SymmetricTest symmetrize(const MarchTest& transparent, unsigned width);

template <class Engine>
struct SymmetricSessionResult {
  typename Engine::Verdict detected{};
  typename Engine::Signature signature;  // observed accumulator value(s)
};

// Single-pass symmetric session: runs the test (transparent semantics),
// XOR-accumulates every read, compares against the precomputed constant.
template <class Engine>
SymmetricSessionResult<Engine> run_symmetric_session_t(typename Engine::Memory& mem,
                                                       const SymmetricTest& st) {
  typename Engine::Accumulator acc(mem.word_width());
  typename Engine::Runner runner(mem);
  runner.run_test(st.test, acc);

  SymmetricSessionResult<Engine> out;
  out.signature = Engine::signature(acc);
  out.detected = Engine::signature_mismatch(acc, st.expected_signature(mem.num_words()));
  return out;
}

// Classic scalar result shape.
struct SymmetricOutcome {
  bool detected = false;
  BitVec signature;  // observed accumulator value
};

// Scalar convenience wrapper over run_symmetric_session_t<ScalarEngine>.
SymmetricOutcome run_symmetric_session(Memory& mem, const SymmetricTest& st);

}  // namespace twm

#endif  // TWM_CORE_SYMMETRIC_H
