#include "core/symmetric.h"

#include <stdexcept>

namespace twm {

bool is_symmetric(const MarchTest& transparent) {
  return transparent.read_count() % 2 == 0;
}

BitVec SymmetricTest::expected_signature(std::size_t num_words) const {
  return (num_words % 2 == 0) ? BitVec::zeros(mask_xor.width()) : mask_xor;
}

SymmetricTest symmetrize(const MarchTest& transparent, unsigned width) {
  if (!transparent.is_transparent())
    throw std::invalid_argument("symmetrize: input must be a transparent march");
  const auto final_spec = transparent.final_write_spec();
  if (final_spec.has_value() && !final_spec->mask(width).all_zero())
    throw std::invalid_argument("symmetrize: test must restore the initial content");

  SymmetricTest st;
  st.test = transparent;
  st.test.name = "Sym-" + transparent.name;

  if (!is_symmetric(st.test)) {
    DataSpec initial;
    initial.relative = true;
    MarchElement balance;
    balance.order = AddrOrder::Any;
    balance.ops = {Op::read(initial)};
    st.test.elements.push_back(std::move(balance));
  }

  st.mask_xor = BitVec::zeros(width);
  for (const auto& e : st.test.elements)
    for (const auto& op : e.ops)
      if (op.is_read()) st.mask_xor ^= op.data.mask(width);
  return st;
}

SymmetricOutcome run_symmetric_session(Memory& mem, const SymmetricTest& st) {
  const auto s = run_symmetric_session_t<ScalarEngine>(mem, st);
  return {s.detected, s.signature};
}

}  // namespace twm
