#include "core/symmetric.h"

#include <stdexcept>

#include "bist/engine.h"
#include "bist/packed_engine.h"

namespace twm {

bool is_symmetric(const MarchTest& transparent) {
  return transparent.read_count() % 2 == 0;
}

BitVec SymmetricTest::expected_signature(std::size_t num_words) const {
  return (num_words % 2 == 0) ? BitVec::zeros(mask_xor.width()) : mask_xor;
}

SymmetricTest symmetrize(const MarchTest& transparent, unsigned width) {
  if (!transparent.is_transparent())
    throw std::invalid_argument("symmetrize: input must be a transparent march");
  const auto final_spec = transparent.final_write_spec();
  if (final_spec.has_value() && !final_spec->mask(width).all_zero())
    throw std::invalid_argument("symmetrize: test must restore the initial content");

  SymmetricTest st;
  st.test = transparent;
  st.test.name = "Sym-" + transparent.name;

  if (!is_symmetric(st.test)) {
    DataSpec initial;
    initial.relative = true;
    MarchElement balance;
    balance.order = AddrOrder::Any;
    balance.ops = {Op::read(initial)};
    st.test.elements.push_back(std::move(balance));
  }

  st.mask_xor = BitVec::zeros(width);
  for (const auto& e : st.test.elements)
    for (const auto& op : e.ops)
      if (op.is_read()) st.mask_xor ^= op.data.mask(width);
  return st;
}

namespace {

// Order-insensitive XOR compactor (the symmetric scheme's signature
// register).
class XorAccumulator final : public ReadSink {
 public:
  explicit XorAccumulator(unsigned width) : acc_(BitVec::zeros(width)) {}
  void on_read(std::size_t, const BitVec& value) override { acc_ ^= value; }
  const BitVec& value() const { return acc_; }

 private:
  BitVec acc_;
};

}  // namespace

SymmetricOutcome run_symmetric_session(Memory& mem, const SymmetricTest& st) {
  XorAccumulator acc(mem.word_width());
  MarchRunner runner(mem);
  runner.run_test(st.test, acc);

  SymmetricOutcome out;
  out.signature = acc.value();
  out.detected = out.signature != st.expected_signature(mem.num_words());
  return out;
}

namespace {

// 64 XOR accumulators at once: signature bit j across all lanes.
class PackedXorAccumulator final : public PackedReadSink {
 public:
  explicit PackedXorAccumulator(unsigned width) : acc_(width, 0) {}
  void on_read(std::size_t, const std::uint64_t* value) override {
    for (std::size_t j = 0; j < acc_.size(); ++j) acc_[j] ^= value[j];
  }
  const std::vector<std::uint64_t>& value() const { return acc_; }

 private:
  std::vector<std::uint64_t> acc_;
};

}  // namespace

LaneMask run_symmetric_session_packed(PackedMemory& mem, const SymmetricTest& st) {
  const unsigned w = mem.word_width();
  PackedXorAccumulator acc(w);
  PackedMarchRunner runner(mem);
  runner.run_test(st.test, acc);

  const auto expected = broadcast_word(st.expected_signature(mem.num_words()));
  LaneMask detected = 0;
  for (unsigned j = 0; j < w; ++j) detected |= acc.value()[j] ^ expected[j];
  return detected;
}

}  // namespace twm
