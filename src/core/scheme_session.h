// Lane-generic scheme execution core.
//
// The paper's Sec. 5 coverage analysis compares eight test schemes.  Each
// scheme's *session* — which marches run, in what order, and which checker
// fires the verdict — is implemented exactly once here, templated over the
// engine traits (core/engine_traits.h), so the scalar reference backend and
// the bit-parallel packed backend execute the same orchestration code and
// cannot drift.
//
// A session consumes a SchemePlan: every march transform the scheme needs
// (solid/word-oriented expansions, the TWM_TA transform, Scheme 1's
// T1'..T4', symmetrization, MISR widths) compiled ONCE per campaign by
// make_scheme_plan().  Plans are immutable and shared read-only across
// campaign worker threads; compiling them up front amortizes the transform
// cost over every fault x seed the campaign evaluates (the scalar backend
// previously rebuilt them per fault x seed).
//
//   SchemePlan plan = make_scheme_plan(scheme, bit_march, width);
//   Verdict v = run_campaign_unit<PackedEngine>(plan, words, faults, 63, seed);
//
// The sharding / thread-pool / golden-lane machinery that drives many units
// lives one layer up, in analysis/campaign.h.
#ifndef TWM_CORE_SCHEME_SESSION_H
#define TWM_CORE_SCHEME_SESSION_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine_traits.h"
#include "core/symmetric.h"
#include "core/tomt.h"
#include "march/test.h"
#include "memsim/fault.h"
#include "util/rng.h"

namespace twm {

enum class SchemeKind {
  NontransparentReference,
  WordOrientedMarch,
  ProposedExact,
  ProposedMisr,
  ProposedSymmetricXor,  // symmetrized TWMarch, XOR accumulator, TCP = 0
  TsmarchOnly,
  Scheme1Exact,
  TomtModel,
};

std::string to_string(SchemeKind k);

// Every SchemeKind, in the paper's presentation order (handy for sweeps).
inline constexpr SchemeKind kAllSchemes[] = {
    SchemeKind::NontransparentReference, SchemeKind::WordOrientedMarch,
    SchemeKind::ProposedExact,           SchemeKind::ProposedMisr,
    SchemeKind::ProposedSymmetricXor,    SchemeKind::TsmarchOnly,
    SchemeKind::Scheme1Exact,            SchemeKind::TomtModel,
};

// Scheme artifacts compiled once per campaign.  Which members are populated
// depends on the scheme; the others stay empty.
struct SchemePlan {
  SchemeKind scheme = SchemeKind::ProposedExact;
  unsigned width = 0;
  MarchTest direct_a, direct_b;  // nontransparent passes (b may be empty)
  MarchTest trans, prediction;   // transparent session passes
  unsigned misr_width = 0;
  SymmetricTest sym;
};

SchemePlan make_scheme_plan(SchemeKind scheme, const MarchTest& bit_march, unsigned width);

// Number of make_scheme_plan() calls since process start.  Campaign code is
// expected to compile one plan per campaign, not one per fault x seed;
// tests pin that amortization contract with this counter.
std::uint64_t scheme_plan_build_count();

// March elements a full-length session of this plan executes (the unit the
// settle-exit savings counters are denominated in; TOMT's single-element
// per-word sweep counts as 1).
std::size_t plan_session_elements(const SchemePlan& plan);

// Runs one scheme session on an already-prepared memory (contents loaded,
// faults injected) and returns the engine's detection verdict.  This is THE
// implementation of the Sec. 5 sessions — both backends dispatch through
// here.  `tomt_ledger` is consulted only by SchemeKind::TomtModel and must
// have been captured before fault injection.
template <class Engine>
typename Engine::Verdict run_scheme_session(typename Engine::Memory& mem, const SchemePlan& plan,
                                            const std::vector<bool>& tomt_ledger,
                                            typename Engine::Brake* brake = nullptr) {
  typename Engine::Runner runner(mem);
  switch (plan.scheme) {
    case SchemeKind::NontransparentReference: {
      // AMarch reads the solid base SMarch leaves behind: the two passes
      // must be sequenced, not folded into one (unsequenced) expression.
      const typename Engine::Verdict d1 = Engine::run_direct(runner, plan.direct_a, brake);
      // The second pass cannot change an already-settled batch verdict.
      if (brake && brake->should_stop(d1)) return d1;
      if (brake) brake->already = brake->already | d1;
      const typename Engine::Verdict d2 = Engine::run_direct(runner, plan.direct_b, brake);
      return d1 | d2;
    }
    case SchemeKind::WordOrientedMarch:
      return Engine::run_direct(runner, plan.direct_a, brake);
    case SchemeKind::ProposedExact:
    case SchemeKind::TsmarchOnly:
    case SchemeKind::Scheme1Exact: {
      // Exact-compare verdict only; an armed brake both aborts the test
      // pass once every lane mismatched and skips the (unconsumed) MISR
      // compaction entirely.
      const bool exact_only = brake && brake->exit_enabled;
      return Engine::run_transparent(runner, plan.trans, plan.prediction, plan.misr_width,
                                     brake, /*want_exact=*/true, /*want_misr=*/!exact_only)
          .exact;
    }
    case SchemeKind::ProposedMisr: {
      // MISR verdicts are not final until session end — never arm the exit;
      // an armed scheduler brake degrades to skipping the (unconsumed)
      // exact stream comparison.  The caller's arming is restored so a
      // reused brake keeps its configuration.
      const bool misr_only = brake && brake->exit_enabled;
      if (brake) brake->exit_enabled = false;
      const typename Engine::Verdict v =
          Engine::run_transparent(runner, plan.trans, plan.prediction, plan.misr_width, brake,
                                  /*want_exact=*/!misr_only, /*want_misr=*/true)
              .misr;
      if (brake) brake->exit_enabled = misr_only;
      return v;
    }
    case SchemeKind::ProposedSymmetricXor:
      // XOR-accumulator mismatches can cancel (aliasing): no settle-exit.
      return run_symmetric_session_t<Engine>(mem, plan.sym).detected;
    case SchemeKind::TomtModel:
      return run_tomt_session<Engine>(mem, tomt_ledger, brake).detected;
  }
  throw std::logic_error("run_scheme_session: unknown scheme");
}

// One campaign unit under one seed: builds a fresh memory (seed 0 = all-zero
// contents, the nontransparent reference's base), captures the TOMT parity
// ledger while the memory is healthy, injects `count` faults (scalar: the
// single fault; packed: lanes 1..count, lane 0 golden), and runs the
// session.
template <class Engine>
typename Engine::Verdict run_campaign_unit(const SchemePlan& plan, std::size_t words,
                                           const Fault* faults, unsigned count,
                                           std::uint64_t seed,
                                           typename Engine::Brake* brake = nullptr) {
  typename Engine::Memory mem(words, plan.width);
  if (seed != 0) mem.fill_seeded(seed);

  // TOMT's parity protection was established while the memory was healthy.
  std::vector<bool> ledger;
  if (plan.scheme == SchemeKind::TomtModel) ledger = make_parity_ledger(mem);

  for (unsigned i = 0; i < count; ++i) Engine::inject(mem, faults[i], i);

  return run_scheme_session<Engine>(mem, plan, ledger, brake);
}

// run_campaign_unit against a caller-owned memory, reset in place: the
// repack scheduler keeps one memory per worker thread and re-seeds it per
// unit (retire + reinject into a live batch), so the per-address fault
// index buckets keep their allocations across the thousands of units a
// campaign shards instead of being reallocated per (batch, seed).
template <class Engine>
typename Engine::Verdict run_campaign_unit_in(typename Engine::Memory& mem,
                                              const SchemePlan& plan, const Fault* faults,
                                              unsigned count, std::uint64_t seed,
                                              typename Engine::Brake* brake = nullptr) {
  mem.clear_faults();
  // Seed 0 = all-zero background; otherwise the cached per-seed baseline
  // (contents of fill_random(Rng(seed))).  Either way the refill is O(live
  // pages), not O(words), and repack rounds reuse freed pages.
  mem.fill_seeded(seed);

  std::vector<bool> ledger;
  if (plan.scheme == SchemeKind::TomtModel) ledger = make_parity_ledger(mem);

  for (unsigned i = 0; i < count; ++i) Engine::inject(mem, faults[i], i);

  return run_scheme_session<Engine>(mem, plan, ledger, brake);
}

}  // namespace twm

#endif  // TWM_CORE_SCHEME_SESSION_H
