#include "core/complexity.h"

#include "core/scheme1.h"
#include "core/tomt.h"
#include "core/twm_ta.h"
#include "util/backgrounds.h"

namespace twm {

SchemeComplexity formula_proposed(std::size_t s, std::size_t q, unsigned width) {
  const std::size_t m = log2_exact(width);
  return {s + 5 * m, q + 2 * m};
}

SchemeComplexity formula_scheme1(std::size_t s, std::size_t q, unsigned width) {
  const std::size_t m = log2_exact(width);
  return {s * (1 + m), q * (1 + m)};
}

SchemeComplexity formula_tomt(unsigned width) { return {7 + 8 * std::size_t{width}, 0}; }

SchemeComplexity measured_proposed(const MarchTest& bit_march, unsigned width) {
  const TwmResult r = twm_transform(bit_march, width);
  return {r.twmarch.op_count(), r.prediction.op_count()};
}

SchemeComplexity measured_scheme1(const MarchTest& bit_march, unsigned width) {
  const Scheme1Result r = scheme1_transform(bit_march, width);
  return {r.transparent.op_count(), r.prediction.op_count()};
}

SchemeComplexity measured_tomt(unsigned width) { return {tomt_test(width).op_count(), 0}; }

std::string coeff_str(std::size_t coeff) { return std::to_string(coeff) + "N"; }

}  // namespace twm
