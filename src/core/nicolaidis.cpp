#include "core/nicolaidis.h"

#include <stdexcept>

namespace twm {

MarchTest nicolaidis_transparent(const MarchTest& march, bool defer_restore) {
  if (march.empty() || march.op_count() == 0)
    throw std::invalid_argument("nicolaidis_transparent: empty march test");
  for (const auto& e : march.elements)
    for (const auto& op : e.ops)
      if (op.data.relative)
        throw std::invalid_argument("nicolaidis_transparent: input already transparent");

  MarchTest t;
  t.name = "T" + march.name;
  t.elements = march.elements;

  // Step 1 (part a): drop the initialization element, remembering the value
  // it establishes.  The transparency substitution identifies the memory's
  // arbitrary initial content `a` with the state *after* initialization, so
  // every datum must be taken relative to the init value: with any(w1) as
  // init, w1 becomes w(a) and w0 becomes w(~a).
  DataSpec init_value;  // absolute; defaults to 0 when there is no init element
  if (t.elements.front().all_writes()) {
    for (const auto& op : t.elements.front().ops) init_value = op.data;
    t.elements.erase(t.elements.begin());
  }
  if (t.elements.empty())
    throw std::invalid_argument("nicolaidis_transparent: march has only an init element");

  // Step 2: make every operation relative to the initial content.
  for (auto& e : t.elements)
    for (auto& op : e.ops) {
      op.data.relative = true;
      op.data.complement ^= init_value.complement;
      if (!init_value.pattern.empty()) {
        if (op.data.pattern.empty()) {
          op.data.pattern = init_value.pattern;
          op.data.label = init_value.label;
        } else {
          op.data.pattern ^= init_value.pattern;
          op.data.label.clear();
        }
      }
    }

  // Step 1 (part b): ensure every element begins with a Read.  The expected
  // data of an inserted Read is the content left by the previous element.
  DataSpec content;  // mask 0 relative: the initial content `a`
  content.relative = true;
  for (auto& e : t.elements) {
    if (!e.begins_with_read()) e.ops.insert(e.ops.begin(), Op::read(content));
    for (const auto& op : e.ops)
      if (op.is_write()) content = op.data;
  }

  // Step 3: restore the initial content if the test inverted it (or, for
  // pattern backgrounds, left any nonzero XOR distance from it).
  const bool displaced = content.complement || !content.pattern.empty();
  if (displaced && !defer_restore) {
    DataSpec initial;
    initial.relative = true;
    MarchElement restore;
    restore.order = AddrOrder::Any;
    restore.ops = {Op::read(content), Op::write(initial)};
    t.elements.push_back(std::move(restore));
  }
  return t;
}

MarchTest prediction_test(const MarchTest& transparent) {
  MarchTest p;
  p.name = transparent.name + "-pred";
  for (const auto& e : transparent.elements) {
    MarchElement pe;
    pe.order = e.order;
    pe.pause_before = e.pause_before;
    for (const auto& op : e.ops)
      if (op.is_read()) pe.ops.push_back(op);
    // Keep read-less elements only for their pause (the prediction pass
    // must age retention faults the same way the test pass does).
    if (!pe.ops.empty() || pe.pause_before) p.elements.push_back(std::move(pe));
  }
  return p;
}

}  // namespace twm
