// Scheme 1 baseline [12]: conventional transparent word-oriented march.
//
// Sec. 3 of the paper: the bit-oriented march is run once per data
// background D0..Dlog2(B) (pass k maps w0 -> w(a^Dk), w1 -> w(~(a^Dk)) ...
// after the transparency rules are applied per bit), each pass's leading
// initialization element is turned into a read-then-rewrite that moves the
// memory from the previous pass's final content to the new background, and
// a final T4' element restores the initial content.  This reproduces the
// paper's T1'/T2'/T3'/T4' construction exactly.
#ifndef TWM_CORE_SCHEME1_H
#define TWM_CORE_SCHEME1_H

#include "march/test.h"

namespace twm {

struct Scheme1Result {
  MarchTest transparent;  // T1'; T2'; ..; T4'
  MarchTest prediction;   // Writes removed
};

Scheme1Result scheme1_transform(const MarchTest& bit_march, unsigned width);

}  // namespace twm

#endif  // TWM_CORE_SCHEME1_H
