// Runtime SIMD width selection for the packed campaign backend.
//
// The packed stack is compiled three times — LaneBlock widths of 64, 256
// and 512 lanes, the wide two in their own translation units built with
// -mavx2 / -mavx512f (see src/analysis/campaign_w256.cpp, campaign_w512.cpp
// and CMakeLists.txt) so their block loops become vector instructions.
// Which of those translation units is safe to *execute* depends on the CPU
// the process landed on, so every campaign resolves its width at runtime:
//
//   best_width()                 widest width this CPU supports (cpuid)
//   resolve(Request::Auto)       best_width() — graceful downgrade
//   resolve(Request::W512) ...   exactly that width, or std::runtime_error
//                                when the CPU cannot execute it (the
//                                forced-width contract a CI matrix relies
//                                on: --simd 512 on a non-AVX-512 runner
//                                must error cleanly, never SIGILL)
//
// On non-x86 builds only the 64-lane width reports as supported; the wide
// code paths still compile (plain word loops) but are never dispatched.
#ifndef TWM_CORE_SIMD_H
#define TWM_CORE_SIMD_H

#include <optional>
#include <string>
#include <string_view>

namespace twm::simd {

// Lane count doubles as the enum value: static_cast<unsigned>(w) == lanes.
enum class Width : unsigned { W64 = 64, W256 = 256, W512 = 512 };

inline constexpr Width kAllWidths[] = {Width::W64, Width::W256, Width::W512};

inline constexpr unsigned lanes(Width w) { return static_cast<unsigned>(w); }

// True when the running CPU can execute the lane-block code compiled for
// `w` (W64: always; W256: AVX2; W512: AVX-512F).
bool supported(Width w);

// Widest supported width — the Auto choice.
Width best_width();

// A campaign's width request, as it comes in from --simd.
enum class Request { Auto, W64, W256, W512 };

// Parses "auto" | "64" | "256" | "512"; nullopt on anything else.
std::optional<Request> parse_request(std::string_view s);

// Auto -> best_width(); a forced width resolves to itself when supported
// and throws std::runtime_error otherwise.
Width resolve(Request r);

std::string to_string(Width w);
std::string to_string(Request r);

}  // namespace twm::simd

#endif  // TWM_CORE_SIMD_H
