// Runtime SIMD width selection for the packed campaign backend.
//
// The packed stack is compiled three times — LaneBlock widths of 64, 256
// and 512 lanes, the wide two in their own translation units built with
// -mavx2 / -mavx512f (see src/analysis/campaign_w256.cpp, campaign_w512.cpp
// and CMakeLists.txt) so their block loops become vector instructions.
// Which of those translation units is safe to *execute* depends on the CPU
// the process landed on, so every campaign resolves its width at runtime:
//
//   best_width()                 widest width this CPU supports (cpuid)
//   resolve(Request::Auto)       best_width() — graceful downgrade
//   resolve(Request::W512) ...   exactly that width, or std::runtime_error
//                                when the CPU cannot execute it (the
//                                forced-width contract a CI matrix relies
//                                on: --simd 512 on a non-AVX-512 runner
//                                must error cleanly, never SIGILL)
//
// On non-x86 builds only the 64-lane width reports as supported; the wide
// code paths still compile (plain word loops) but are never dispatched.
//
// The TILED widths (4096 / 32768 lanes; "--simd tiled[:<lanes>]") select
// the array-of-blocks backend (memsim/lane_tile.h) instead of a single
// lane block.  A tiled width is supported on every CPU: the tile's INNER
// block width is itself a cpuid decision the campaign dispatcher makes
// (analysis/campaign.cpp picks the AVX-512, AVX2 or portable tile
// instantiation), so forcing "tiled" can never SIGILL.  Auto never
// resolves to a tiled width — tiles trade per-batch latency for
// throughput and only pay off on fault lists large enough to fill them,
// which is a caller's judgement, not a cpuid fact.
#ifndef TWM_CORE_SIMD_H
#define TWM_CORE_SIMD_H

#include <optional>
#include <string>
#include <string_view>

namespace twm::simd {

// Lane count doubles as the enum value: static_cast<unsigned>(w) == lanes.
enum class Width : unsigned {
  W64 = 64,
  W256 = 256,
  W512 = 512,
  Tiled4096 = 4096,
  Tiled32768 = 32768,
};

// The single-lane-block widths (cpuid-gated; what Auto chooses between).
inline constexpr Width kAllWidths[] = {Width::W64, Width::W256, Width::W512};
// The tiled widths (always dispatchable; never chosen by Auto).
inline constexpr Width kTiledWidths[] = {Width::Tiled4096, Width::Tiled32768};

inline constexpr unsigned lanes(Width w) { return static_cast<unsigned>(w); }

// True when `w` names a tiled (array-of-blocks) backend width.
inline constexpr bool is_tiled(Width w) {
  return w == Width::Tiled4096 || w == Width::Tiled32768;
}

// True when the running CPU can execute the lane-block code compiled for
// `w` (W64: always; W256: AVX2; W512: AVX-512F; tiled widths: always —
// their inner block is cpuid-selected at dispatch).
bool supported(Width w);

// Widest supported single-block width — the Auto choice (never tiled).
Width best_width();

// A campaign's width request, as it comes in from --simd.  Tiled (the bare
// "tiled" spelling) defers the tile-size choice to resolve(), which picks
// Tiled4096.
enum class Request { Auto, W64, W256, W512, Tiled, Tiled4096, Tiled32768 };

// Parses "auto" | "64" | "256" | "512" | "tiled" | "tiled:4096" |
// "tiled:32768"; nullopt on anything else.
std::optional<Request> parse_request(std::string_view s);

// Auto -> best_width(); Tiled -> Tiled4096; a forced width resolves to
// itself when supported and throws std::runtime_error otherwise.
Width resolve(Request r);

std::string to_string(Width w);
std::string to_string(Request r);

}  // namespace twm::simd

#endif  // TWM_CORE_SIMD_H
