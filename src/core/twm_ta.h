// TWM_TA — the paper's transparent word-oriented march transformation
// algorithm (Algorithm 1, Sec. 4).
//
// Given a bit-oriented march test and a word width B (a power of two):
//
//  1. Reinterpret the bit operations with solid all-0/all-1 word data
//     backgrounds -> SMarch.
//  2. If the last operation of SMarch is a Write, append a Read.
//  3. Apply the Nicolaidis rules (Steps 1-2; Step 3 deferred) treating the
//     words like bits -> TSMarch.
//  4. Append ATMarch.  Let x be the content TSMarch leaves in every word
//     (either the initial content a or its inverse ~a) and D1..Dlog2(B) the
//     checkerboard backgrounds; ATMarch is, for each k:
//         any( r x, w x^Dk, r x^Dk, w x, r x )
//     closed by any(r a) when x == a, or by the restoring any(r ~a, w a)
//     when x == ~a.
//  5. TWMarch = TSMarch ; ATMarch.  The signature-prediction test is
//     TWMarch with the Writes removed (Step 4 of [12]).
//
// TSMarch preserves the bit-oriented test's SAF/TF and inter-word CF
// coverage; ATMarch adds the opposite-direction intra-word transitions that
// solid backgrounds cannot produce, restoring intra-word CF coverage
// (Sec. 5; reproduced empirically by bench_coverage and tests).
#ifndef TWM_CORE_TWM_TA_H
#define TWM_CORE_TWM_TA_H

#include "march/test.h"

namespace twm {

struct TwmResult {
  MarchTest smarch;      // solid-background reinterpretation (+ appended Read)
  MarchTest tsmarch;     // transparent solid part
  MarchTest atmarch;     // added transparent march (checkerboard sweeps)
  MarchTest twmarch;     // TSMarch ; ATMarch — the test to run
  MarchTest prediction;  // signature-prediction test (Writes removed)
  bool final_content_inverted = false;  // which ATMarch branch was taken
};

// Throws std::invalid_argument for an empty march or a non-power-of-two
// width (the paper assumes B = 2^m).
TwmResult twm_transform(const MarchTest& bit_march, unsigned width);

// The ATMarch alone (exposed for analysis/ablation).  `base_inverted`
// selects the x == ~a branch.
MarchTest atmarch(unsigned width, bool base_inverted);

}  // namespace twm

#endif  // TWM_CORE_TWM_TA_H
