#include "core/simd.h"

#include <stdexcept>

namespace twm::simd {

namespace {

bool cpu_has(Width w) {
  if (is_tiled(w)) return true;  // inner block is cpuid-selected at dispatch
#if defined(__x86_64__) || defined(__i386__)
  switch (w) {
    case Width::W64: return true;
    case Width::W256: return __builtin_cpu_supports("avx2");
    case Width::W512: return __builtin_cpu_supports("avx512f");
    default: break;
  }
  return false;
#else
  // Wide blocks compile to plain word loops everywhere, but without a
  // vector unit behind them they only amortize per-op overhead; keep the
  // conservative contract that only W64 is dispatchable off x86.
  return w == Width::W64;
#endif
}

}  // namespace

bool supported(Width w) { return cpu_has(w); }

Width best_width() {
  Width best = Width::W64;
  for (Width w : kAllWidths)
    if (supported(w)) best = w;
  return best;
}

std::optional<Request> parse_request(std::string_view s) {
  if (s == "auto") return Request::Auto;
  if (s == "64") return Request::W64;
  if (s == "256") return Request::W256;
  if (s == "512") return Request::W512;
  if (s == "tiled") return Request::Tiled;
  if (s == "tiled:4096") return Request::Tiled4096;
  if (s == "tiled:32768") return Request::Tiled32768;
  return std::nullopt;
}

Width resolve(Request r) {
  if (r == Request::Auto) return best_width();
  Width w = Width::W64;
  switch (r) {
    case Request::W64: w = Width::W64; break;
    case Request::W256: w = Width::W256; break;
    case Request::W512: w = Width::W512; break;
    case Request::Tiled:
    case Request::Tiled4096: w = Width::Tiled4096; break;
    case Request::Tiled32768: w = Width::Tiled32768; break;
    case Request::Auto: break;  // handled above
  }
  if (!supported(w))
    throw std::runtime_error("simd: width " + to_string(w) +
                             " is not supported by this CPU (best: " + to_string(best_width()) +
                             "; use --simd auto)");
  return w;
}

std::string to_string(Width w) {
  if (is_tiled(w)) return "tiled:" + std::to_string(lanes(w));
  return std::to_string(lanes(w));
}

std::string to_string(Request r) {
  switch (r) {
    case Request::Auto: return "auto";
    case Request::W64: return to_string(Width::W64);
    case Request::W256: return to_string(Width::W256);
    case Request::W512: return to_string(Width::W512);
    case Request::Tiled: return "tiled";
    case Request::Tiled4096: return to_string(Width::Tiled4096);
    case Request::Tiled32768: return to_string(Width::Tiled32768);
  }
  return "?";
}

}  // namespace twm::simd
