#include "core/simd.h"

#include <stdexcept>

namespace twm::simd {

namespace {

bool cpu_has(Width w) {
#if defined(__x86_64__) || defined(__i386__)
  switch (w) {
    case Width::W64: return true;
    case Width::W256: return __builtin_cpu_supports("avx2");
    case Width::W512: return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  // Wide blocks compile to plain word loops everywhere, but without a
  // vector unit behind them they only amortize per-op overhead; keep the
  // conservative contract that only W64 is dispatchable off x86.
  return w == Width::W64;
#endif
}

}  // namespace

bool supported(Width w) { return cpu_has(w); }

Width best_width() {
  Width best = Width::W64;
  for (Width w : kAllWidths)
    if (supported(w)) best = w;
  return best;
}

std::optional<Request> parse_request(std::string_view s) {
  if (s == "auto") return Request::Auto;
  if (s == "64") return Request::W64;
  if (s == "256") return Request::W256;
  if (s == "512") return Request::W512;
  return std::nullopt;
}

Width resolve(Request r) {
  if (r == Request::Auto) return best_width();
  const Width w = r == Request::W64 ? Width::W64 : r == Request::W256 ? Width::W256 : Width::W512;
  if (!supported(w))
    throw std::runtime_error("simd: width " + to_string(w) +
                             " is not supported by this CPU (best: " + to_string(best_width()) +
                             "; use --simd auto)");
  return w;
}

std::string to_string(Width w) { return std::to_string(lanes(w)); }

std::string to_string(Request r) {
  return r == Request::Auto ? "auto"
                            : to_string(r == Request::W64    ? Width::W64
                                        : r == Request::W256 ? Width::W256
                                                             : Width::W512);
}

}  // namespace twm::simd
