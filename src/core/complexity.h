// Time-complexity analytics (Sec. 5, Tables 2 and 3).
//
// All quantities are coefficients of N (operations per memory word) for an
// N x B memory and a bit-oriented march test with S operations, Q of them
// Reads.
//
// Closed forms as published:
//   proposed:    TCM = S + 5*log2(B)        TCP = Q + 2*log2(B)
//   scheme 1:    TCM = S * (1 + log2(B))    TCP = Q * (1 + log2(B))
//   scheme 2:    TCM = 7 + 8*B              TCP = 0
// The scheme-1 and scheme-2 coefficients are reconstructed from the paper's
// worked ratios (55.6% ~ "about 56%" and 19.0% ~ "about 19%" for March C-,
// B = 32); the garbled PDF hides the originals.  See DESIGN.md Sec. 4.
//
// measured_*() count operations in the tests this library actually
// generates, which is what a BIST built from them would execute; the paper
// formulas drop small additive terms (e.g. March U, B = 8 measures 29 ops
// while the formula gives 28 — the paper's own prose quotes 29).
#ifndef TWM_CORE_COMPLEXITY_H
#define TWM_CORE_COMPLEXITY_H

#include <cstddef>
#include <string>

#include "march/test.h"

namespace twm {

struct SchemeComplexity {
  std::size_t tcm = 0;  // transparent test length per word
  std::size_t tcp = 0;  // signature-prediction length per word
  std::size_t total() const { return tcm + tcp; }

  friend bool operator==(const SchemeComplexity&, const SchemeComplexity&) = default;
};

// Closed forms (paper).  S/Q are the bit-oriented march's op/read counts.
SchemeComplexity formula_proposed(std::size_t s, std::size_t q, unsigned width);
SchemeComplexity formula_scheme1(std::size_t s, std::size_t q, unsigned width);
SchemeComplexity formula_tomt(unsigned width);

// Operation counts of the generated tests.
SchemeComplexity measured_proposed(const MarchTest& bit_march, unsigned width);
SchemeComplexity measured_scheme1(const MarchTest& bit_march, unsigned width);
SchemeComplexity measured_tomt(unsigned width);

// "aN" / "aN + 0" pretty-printer used by the table benches.
std::string coeff_str(std::size_t coeff);

}  // namespace twm

#endif  // TWM_CORE_COMPLEXITY_H
