#include "core/twm_ta.h"

#include <stdexcept>

#include "core/nicolaidis.h"
#include "march/word_expand.h"
#include "util/backgrounds.h"

namespace twm {

MarchTest atmarch(unsigned width, bool base_inverted) {
  MarchTest t;
  t.name = "ATMarch";
  DataSpec base;
  base.relative = true;
  base.complement = base_inverted;

  const auto ds = checkerboard_backgrounds(width);
  for (std::size_t k = 0; k < ds.size(); ++k) {
    DataSpec flipped = base;
    flipped.pattern = ds[k];
    flipped.label = "D" + std::to_string(k + 1);
    MarchElement e;
    e.order = AddrOrder::Any;
    e.ops = {Op::read(base), Op::write(flipped), Op::read(flipped), Op::write(base),
             Op::read(base)};
    t.elements.push_back(std::move(e));
  }

  MarchElement closing;
  closing.order = AddrOrder::Any;
  if (base_inverted) {
    DataSpec initial;
    initial.relative = true;
    closing.ops = {Op::read(base), Op::write(initial)};  // restore a
  } else {
    closing.ops = {Op::read(base)};
  }
  t.elements.push_back(std::move(closing));
  return t;
}

TwmResult twm_transform(const MarchTest& bit_march, unsigned width) {
  if (bit_march.empty() || bit_march.op_count() == 0)
    throw std::invalid_argument("twm_transform: empty march test");  // Algorithm 1: Abort
  if (!is_power_of_two(width))
    throw std::invalid_argument("twm_transform: word width must be a power of two");

  TwmResult res;

  // Step 1: solid data backgrounds.
  res.smarch = solid_march(bit_march);

  // Step 2: a trailing Write would leave the final content unobserved.
  const Op* last = res.smarch.last_op();
  if (last != nullptr && last->is_write()) {
    Op read_back = Op::read(last->data);
    res.smarch.elements.back().ops.push_back(read_back);
  }

  // Step 3: transparency rules, restore deferred to ATMarch.
  res.tsmarch = nicolaidis_transparent(res.smarch, /*defer_restore=*/true);
  res.tsmarch.name = "TS" + bit_march.name;

  // Step 4: which content did TSMarch leave?
  const auto final_spec = res.tsmarch.final_write_spec();
  res.final_content_inverted = final_spec.has_value() && final_spec->complement;
  res.atmarch = atmarch(width, res.final_content_inverted);

  // Step 5: concatenate and derive the prediction test.
  res.twmarch.name = "TWM-" + bit_march.name + "-B" + std::to_string(width);
  res.twmarch.elements = res.tsmarch.elements;
  res.twmarch.elements.insert(res.twmarch.elements.end(), res.atmarch.elements.begin(),
                              res.atmarch.elements.end());
  res.prediction = prediction_test(res.twmarch);
  return res;
}

}  // namespace twm
