// Engine traits: the vocabulary that lets one scheme-session implementation
// run on either simulation backend.
//
// A coverage campaign executes the same march session logic whether it
// simulates one fault universe at a time (Memory + MarchRunner + Misr) or
// 64 bit-parallel universes per pass (PackedMemory + PackedMarchRunner +
// PackedMisr).  The two backends differ only in their *data plane*:
//
//   ScalarEngine          Verdict = bool     one universe per session
//   PackedEngineT<Block>  Verdict = Block    lane k of every value/verdict
//                                            belongs to universe k; Block is
//                                            std::uint64_t (64 lanes — the
//                                            PackedEngine alias), a wide
//                                            LaneBlock<K> (256/512 lanes,
//                                            compiled per width), or a
//                                            LaneTile<Inner, T> (4096/32768
//                                            lanes, memsim/lane_tile.h) —
//                                            selected at runtime via
//                                            core/simd.h
//
// Each trait struct maps the shared vocabulary — verdict algebra, fault
// injection, the engine entry points, and the word/mask/signature
// operations the TOMT and symmetric sessions are written in — onto its
// backend.  core/scheme_session.h instantiates the session templates with
// either engine; the Memory vs PackedMemory *write semantics* stay
// deliberately independent implementations so the differential check in
// tests/coverage_backend_test.cpp keeps its power — only the orchestration
// above the memory port is unified here.
//
// The contract a new backend (a new Block type, or a whole new Engine
// struct) must honour — docs/ARCHITECTURE.md walks through each rule with
// rationale; the short form:
//
//   * Verdict semantics: bit k of a Verdict is a latch for "universe k has
//     detected its fault".  Session code only ORs verdicts together;
//     nothing may ever clear a detection bit.
//   * Golden lane: lane 0 carries no fault and must read back the
//     fault-free memory image exactly.  `bit(v, slot)` therefore maps
//     fault slot s to lane s+1, and `used_mask(count)` covers lanes
//     1..count only — a partial final batch must neither report phantom
//     universes nor mask the golden lane.
//   * Brake monotonicity: SessionBrake::should_stop answers "are all used
//     lanes settled"; once true for a verdict v it must stay true for any
//     v' ⊇ v.  The settle-exit schedule relies on this to cut sessions
//     short without changing any verdict bit that the full run would set.
//   * Differential proof: a backend is correct when its VerdictMatrix is
//     byte-identical to ScalarEngine's across every scheme — that check
//     lives in tests/coverage_backend_test.cpp and
//     tests/tiled_engine_test.cpp and is the required template for
//     qualifying any new backend.
#ifndef TWM_CORE_ENGINE_TRAITS_H
#define TWM_CORE_ENGINE_TRAITS_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bist/engine.h"
#include "bist/misr.h"
#include "bist/packed_engine.h"
#include "memsim/fault.h"
#include "memsim/memory.h"
#include "memsim/packed_memory.h"
#include "util/bitvec.h"

namespace twm {

// Order-insensitive XOR compactor (the symmetric scheme's signature
// register), one universe.
class XorAccumulator final : public ReadSink {
 public:
  explicit XorAccumulator(unsigned width) : acc_(BitVec::zeros(width)) {}
  void on_read(std::size_t, const BitVec& value) override { acc_ ^= value; }
  const BitVec& value() const { return acc_; }

 private:
  BitVec acc_;
};

// One XOR accumulator per lane: signature bit j across all lanes is acc()[j].
template <class Block>
class PackedXorAccumulatorT final : public PackedReadSinkT<Block> {
 public:
  explicit PackedXorAccumulatorT(unsigned width) : acc_(width) {}
  void on_read(std::size_t, const Block* value) override {
    for (std::size_t j = 0; j < acc_.size(); ++j) acc_[j] ^= value[j];
  }
  const std::vector<Block>& value() const { return acc_; }

 private:
  std::vector<Block> acc_;
};

using PackedXorAccumulator = PackedXorAccumulatorT<std::uint64_t>;

// Scalar counterpart of SessionBrakeT (bist/packed_engine.h): one lane, so
// "every target lane settled" degenerates to "the fault was detected".
// The scalar reference engine does not abort sessions mid-march (it IS the
// reference); the brake still carries the settle predicate the TOMT
// session's stop-on-failure sweep and the scheduler's counters share.
struct ScalarSessionBrake {
  bool target = true;
  bool already = false;
  bool exit_enabled = false;
  std::uint64_t elements_entered = 0;

  bool should_stop(bool verdict) const { return exit_enabled && (verdict || already); }
  void on_element_end(bool /*verdict*/) {}
};

struct ScalarEngine {
  using Verdict = bool;  // detected?
  using Memory = twm::Memory;
  using Runner = MarchRunner;
  using Misr = twm::Misr;
  using Word = BitVec;       // one word's value
  using Mask = BitVec;       // a per-op data mask, precompiled
  using Signature = BitVec;  // an XOR-accumulator state
  using Accumulator = XorAccumulator;
  using Brake = ScalarSessionBrake;

  // One fault universe per session.
  static constexpr unsigned kFaultsPerUnit = 1;

  static Brake make_brake(Memory& /*mem*/, Verdict used, bool exit_enabled) {
    Brake b;
    b.target = used;
    b.exit_enabled = exit_enabled;
    return b;
  }

  // --- verdict algebra (Verdicts also combine with plain &, |, ==) ------
  static Verdict used_mask(unsigned /*count*/) { return true; }
  static bool bit(Verdict v, unsigned /*slot*/) { return v; }
  // Every universe has detected; nothing further can change the verdict.
  static bool saturated(Verdict v) { return v; }

  // --- fault injection --------------------------------------------------
  static void inject(Memory& mem, const Fault& f, unsigned /*slot*/) { mem.inject(f); }

  // --- engine entry points ----------------------------------------------
  // The scalar engine ignores the brake's exit (one universe, reference
  // semantics) but reports its elements for the progress counters.
  static Verdict run_direct(Runner& runner, const MarchTest& test, Brake* brake = nullptr) {
    if (brake) brake->elements_entered += test.elements.size();
    return runner.run_direct(test).mismatch;
  }
  struct TransparentVerdicts {
    Verdict exact;
    Verdict misr;
  };
  static TransparentVerdicts run_transparent(Runner& runner, const MarchTest& test,
                                             const MarchTest& prediction, unsigned misr_width,
                                             Brake* brake = nullptr, bool /*want_exact*/ = true,
                                             bool /*want_misr*/ = true) {
    if (brake) brake->elements_entered += test.elements.size() + prediction.elements.size();
    const TransparentOutcome out = runner.run_transparent_session(test, prediction, misr_width);
    return {out.detected_exact, out.detected_misr};
  }

  // --- word vocabulary (the TOMT session's working registers) -----------
  static Word make_word(unsigned width) { return BitVec::zeros(width); }
  static Mask make_mask(const BitVec& mask) { return mask; }
  static void read_word(Memory& mem, std::size_t addr, Word& out) { out = mem.read(addr); }
  static void write_word(Memory& mem, std::size_t addr, const Word& data) {
    mem.write(addr, data);
  }
  static void xor_word(Word& dst, const Word& src, const Mask& mask) { dst = src ^ mask; }
  static Verdict parity_mismatch(const Word& w, bool expected) { return w.parity() != expected; }
  static Verdict differs(const Word& a, const Word& b) { return a != b; }

  // --- signature vocabulary (the symmetric session's compactor) ---------
  static Signature signature(const Accumulator& acc) { return acc.value(); }
  static Verdict signature_mismatch(const Accumulator& acc, const BitVec& expected) {
    return acc.value() != expected;
  }
};

template <class Block>
struct PackedEngineT {
  using Verdict = Block;  // lane k: universe k detected
  using Memory = PackedMemoryT<Block>;
  using Runner = PackedMarchRunnerT<Block>;
  using Misr = PackedMisrT<Block>;
  using Word = std::vector<Block>;  // [bit] -> lane block
  using Mask = std::vector<Block>;  // broadcast op mask
  using Signature = std::vector<Block>;
  using Accumulator = PackedXorAccumulatorT<Block>;
  using Brake = SessionBrakeT<Block>;

  // Lane 0 stays fault-free (golden); faults occupy the remaining lanes.
  static constexpr unsigned kFaultsPerUnit = block_lanes_v<Block> - 1;

  // An armed brake also drops settled lanes' faults from the memory's
  // per-address index buckets (fault dropping inside a live batch).
  static Brake make_brake(Memory& mem, Verdict used, bool exit_enabled) {
    Brake b;
    b.target = used;
    b.exit_enabled = exit_enabled;
    b.retire_from = &mem;
    return b;
  }

  // Lanes 1..count — a partial final batch must neither report phantom
  // universes nor mask the golden lane (lane_block.h documents the rule).
  static Verdict used_mask(unsigned count) { return block_used_mask<Block>(count); }
  static bool bit(Verdict v, unsigned slot) { return block_bit(v, slot + 1); }
  static bool saturated(Verdict v) { return v == block_ones<Block>(); }

  static void inject(Memory& mem, const Fault& f, unsigned slot) {
    mem.inject(f, block_lane<Block>(slot + 1));
  }

  static Verdict run_direct(Runner& runner, const MarchTest& test, Brake* brake = nullptr) {
    return runner.run_direct(test, brake);
  }
  struct TransparentVerdicts {
    Verdict exact;
    Verdict misr;
  };
  static TransparentVerdicts run_transparent(Runner& runner, const MarchTest& test,
                                             const MarchTest& prediction, unsigned misr_width,
                                             Brake* brake = nullptr, bool want_exact = true,
                                             bool want_misr = true) {
    const PackedTransparentOutcomeT<Block> out =
        runner.run_transparent_session(test, prediction, misr_width, brake, want_exact,
                                       want_misr);
    return {out.detected_exact, out.detected_misr};
  }

  static Word make_word(unsigned width) { return Word(width); }
  static Mask make_mask(const BitVec& mask) { return broadcast_block<Block>(mask); }
  static void read_word(Memory& mem, std::size_t addr, Word& out) {
    // The port's pointer is invalidated by the next port op; take a copy.
    const Block* v = mem.read(addr);
    std::copy(v, v + out.size(), out.begin());
  }
  static void write_word(Memory& mem, std::size_t addr, const Word& data) {
    mem.write(addr, data.data());
  }
  static void xor_word(Word& dst, const Word& src, const Mask& mask) {
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] = src[j] ^ mask[j];
  }
  static Verdict parity_mismatch(const Word& w, bool expected) {
    Block parity{};
    for (const Block& lanes : w) parity ^= lanes;
    return expected ? parity ^ block_ones<Block>() : parity;
  }
  static Verdict differs(const Word& a, const Word& b) {
    Verdict d{};
    for (std::size_t j = 0; j < a.size(); ++j) d |= a[j] ^ b[j];
    return d;
  }

  static Signature signature(const Accumulator& acc) { return acc.value(); }
  static Verdict signature_mismatch(const Accumulator& acc, const BitVec& expected) {
    const Signature want = broadcast_block<Block>(expected);
    Verdict d{};
    for (std::size_t j = 0; j < want.size(); ++j) d |= acc.value()[j] ^ want[j];
    return d;
  }
};

// The PR 1 64-lane engine.
using PackedEngine = PackedEngineT<std::uint64_t>;

}  // namespace twm

#endif  // TWM_CORE_ENGINE_TRAITS_H
