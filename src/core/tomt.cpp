#include "core/tomt.h"

#include <stdexcept>

namespace twm {

MarchTest tomt_test(unsigned width) {
  if (width == 0) throw std::invalid_argument("tomt_test: zero width");
  MarchTest t;
  t.name = "TOMT-B" + std::to_string(width);

  DataSpec base;  // a
  base.relative = true;
  DataSpec inv;  // ~a
  inv.relative = true;
  inv.complement = true;

  MarchElement e;
  e.order = AddrOrder::Up;

  // Word-level prologue (5 ops): solid up/down transitions of all bits.
  e.ops = {Op::read(base), Op::write(inv), Op::read(inv), Op::write(base), Op::read(base)};

  // Per-bit block (8 ops): walk a single flipped bit against both solid
  // backgrounds; starts and ends at `a`.
  for (unsigned j = 0; j < width; ++j) {
    BitVec unit = BitVec::zeros(width);
    unit.set(j, true);
    DataSpec flip = base;
    flip.pattern = unit;
    flip.label = "e" + std::to_string(j);
    DataSpec flip_inv = inv;
    flip_inv.pattern = unit;
    flip_inv.label = flip.label;

    e.ops.push_back(Op::write(flip));
    e.ops.push_back(Op::read(flip));
    e.ops.push_back(Op::write(flip_inv));
    e.ops.push_back(Op::read(flip_inv));
    e.ops.push_back(Op::write(flip));
    e.ops.push_back(Op::read(flip));
    e.ops.push_back(Op::write(base));
    e.ops.push_back(Op::read(base));
  }

  // Epilogue (2 ops): parity re-verification reads.
  e.ops.push_back(Op::read(base));
  e.ops.push_back(Op::read(base));

  t.elements.push_back(std::move(e));
  return t;
}

std::vector<bool> make_parity_ledger(const Memory& mem) {
  std::vector<bool> ledger(mem.num_words());
  for (std::size_t i = 0; i < mem.num_words(); ++i) ledger[i] = mem.peek(i).parity();
  return ledger;
}

TomtResult run_tomt(Memory& mem, const std::vector<bool>& parity_ledger) {
  const auto s = run_tomt_session<ScalarEngine>(mem, parity_ledger);
  return {s.detected, s.fail_addr, s.operations};
}

}  // namespace twm
