#include "core/tomt.h"

#include <stdexcept>

namespace twm {

MarchTest tomt_test(unsigned width) {
  if (width == 0) throw std::invalid_argument("tomt_test: zero width");
  MarchTest t;
  t.name = "TOMT-B" + std::to_string(width);

  DataSpec base;  // a
  base.relative = true;
  DataSpec inv;  // ~a
  inv.relative = true;
  inv.complement = true;

  MarchElement e;
  e.order = AddrOrder::Up;

  // Word-level prologue (5 ops): solid up/down transitions of all bits.
  e.ops = {Op::read(base), Op::write(inv), Op::read(inv), Op::write(base), Op::read(base)};

  // Per-bit block (8 ops): walk a single flipped bit against both solid
  // backgrounds; starts and ends at `a`.
  for (unsigned j = 0; j < width; ++j) {
    BitVec unit = BitVec::zeros(width);
    unit.set(j, true);
    DataSpec flip = base;
    flip.pattern = unit;
    flip.label = "e" + std::to_string(j);
    DataSpec flip_inv = inv;
    flip_inv.pattern = unit;
    flip_inv.label = flip.label;

    e.ops.push_back(Op::write(flip));
    e.ops.push_back(Op::read(flip));
    e.ops.push_back(Op::write(flip_inv));
    e.ops.push_back(Op::read(flip_inv));
    e.ops.push_back(Op::write(flip));
    e.ops.push_back(Op::read(flip));
    e.ops.push_back(Op::write(base));
    e.ops.push_back(Op::read(base));
  }

  // Epilogue (2 ops): parity re-verification reads.
  e.ops.push_back(Op::read(base));
  e.ops.push_back(Op::read(base));

  t.elements.push_back(std::move(e));
  return t;
}

std::vector<bool> make_parity_ledger(const Memory& mem) {
  std::vector<bool> ledger(mem.num_words());
  for (std::size_t i = 0; i < mem.num_words(); ++i) ledger[i] = mem.peek(i).parity();
  return ledger;
}

TomtResult run_tomt(Memory& mem, const std::vector<bool>& parity_ledger) {
  if (parity_ledger.size() != mem.num_words())
    throw std::invalid_argument("run_tomt: ledger size mismatch");

  const unsigned w = mem.word_width();
  const MarchTest test = tomt_test(w);
  const MarchElement& elem = test.elements.front();

  TomtResult res;
  const std::uint64_t before = mem.op_count();

  for (std::size_t addr = 0; addr < mem.num_words() && !res.detected; ++addr) {
    BitVec base;
    bool have_base = false;
    for (const Op& op : elem.ops) {
      const BitVec mask = op.data.mask(w);
      if (op.is_write()) {
        mem.write(addr, base ^ mask);
        continue;
      }
      const BitVec v = mem.read(addr);
      if (!have_base) {
        base = v ^ mask;  // mask is zero for the leading r(a); keeps intent clear
        have_base = true;
        // Concurrent parity check on the word's first observation.
        if (base.parity() != parity_ledger[addr]) {
          res.detected = true;
          res.fail_addr = addr;
          break;
        }
        continue;
      }
      if (v != (base ^ mask)) {  // read-back comparator
        res.detected = true;
        res.fail_addr = addr;
        break;
      }
    }
  }

  res.operations = mem.op_count() - before;
  return res;
}

std::vector<bool> make_parity_ledger(const PackedMemory& mem) {
  std::vector<bool> ledger(mem.num_words());
  for (std::size_t i = 0; i < mem.num_words(); ++i)
    ledger[i] = mem.lane_word(0, i).parity();
  return ledger;
}

LaneMask run_tomt_packed(PackedMemory& mem, const std::vector<bool>& parity_ledger) {
  if (parity_ledger.size() != mem.num_words())
    throw std::invalid_argument("run_tomt_packed: ledger size mismatch");

  const unsigned w = mem.word_width();
  const MarchTest test = tomt_test(w);
  const MarchElement& elem = test.elements.front();

  // Broadcast masks of the per-word op block, computed once.
  std::vector<std::vector<std::uint64_t>> masks;
  masks.reserve(elem.ops.size());
  for (const Op& op : elem.ops) masks.push_back(broadcast_word(op.data.mask(w)));

  // Detection latches per lane; already-detected lanes keep executing (the
  // scalar runner stops instead), which cannot change a latched verdict.
  LaneMask detected = 0;
  std::vector<std::uint64_t> base(w, 0), data(w, 0);
  for (std::size_t addr = 0; addr < mem.num_words(); ++addr) {
    bool have_base = false;
    for (std::size_t i = 0; i < elem.ops.size(); ++i) {
      const Op& op = elem.ops[i];
      const std::uint64_t* mask = masks[i].data();
      if (op.is_write()) {
        for (unsigned j = 0; j < w; ++j) data[j] = base[j] ^ mask[j];
        mem.write(addr, data.data());
        continue;
      }
      const std::uint64_t* v = mem.read(addr);
      if (!have_base) {
        for (unsigned j = 0; j < w; ++j) base[j] = v[j] ^ mask[j];
        have_base = true;
        // Concurrent parity check on the word's first observation.
        std::uint64_t parity = 0;
        for (unsigned j = 0; j < w; ++j) parity ^= base[j];
        detected |= parity ^ (parity_ledger[addr] ? ~0ull : 0ull);
        continue;
      }
      for (unsigned j = 0; j < w; ++j) detected |= v[j] ^ (base[j] ^ mask[j]);  // read-back
    }
  }
  return detected;
}

}  // namespace twm
