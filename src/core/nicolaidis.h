// Classical transparent-march transformation rules (Nicolaidis [11, 12]),
// Sec. 3 of the paper:
//
//  Step 1  Remove the initialization march element (a leading all-Write
//          element — it cannot activate faults once data is arbitrary) and
//          prepend a Read to every element whose first operation is a Write
//          (the BIST needs the current content to derive write data).
//  Step 2  Make every operation's data relative to the word's initial
//          content: w0/w1 -> w(a)/w(~a), r0/r1 -> r(a)/r(~a) (and, for
//          pattern operations, w(D) -> w(a^D) etc.).
//  Step 3  If the final Write leaves the inverse of the initial content,
//          append a restoring element any(r <content>, w a).
//  Step 4  The signature-prediction test is the transparent test with all
//          Write operations removed.
//
// TWM_TA defers Step 3 to its ATMarch (whose closing element restores), so
// the transform takes a defer_restore flag.
#ifndef TWM_CORE_NICOLAIDIS_H
#define TWM_CORE_NICOLAIDIS_H

#include "march/test.h"

namespace twm {

// Steps 1-3.  The input must be a nontransparent march (bit-oriented, solid,
// or word-oriented with pattern backgrounds).
MarchTest nicolaidis_transparent(const MarchTest& march, bool defer_restore = false);

// Step 4.  Removes Writes (and then-empty elements) from a transparent test.
MarchTest prediction_test(const MarchTest& transparent);

}  // namespace twm

#endif  // TWM_CORE_NICOLAIDIS_H
