// Scheme 2 baseline: TOMT-style transparent online memory test [13].
//
// TOMT (Thaller/Steininger, IEEE Trans. Reliability 2003) tests one word at
// a time with bit-wise manipulations, detecting errors concurrently via the
// word's parity/Hamming protection instead of a signature — so it needs no
// prediction pass (TCP = 0) but pays a per-word cost proportional to the
// word width.
//
// Substitution note (see DESIGN.md): the authors' exact operation sequence
// depends on their ECC datapath, which the paper under reproduction only
// summarizes by its time complexity.  We build a behavioural stand-in with
// the same structure — a per-word prologue exercising solid transitions,
// an 8-operation read/flip/restore block per bit, and parity-ledger
// checking — calibrated to the complexity the paper attributes to [13]:
// TCM = (7 + 8·B)·N (which reproduces the paper's "about 19%" ratio for
// March C-, B = 32).
//
// The session is implemented once, templated over the engine traits
// (core/engine_traits.h): run_tomt_session<ScalarEngine> walks one fault
// universe with early exit at the first detection, and
// run_tomt_session<PackedEngine> latches per-lane verdicts across 64
// universes — the same code path, so the backends cannot drift.
#ifndef TWM_CORE_TOMT_H
#define TWM_CORE_TOMT_H

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/engine_traits.h"
#include "march/test.h"

namespace twm {

// The TOMT-style test as a march (single element, Up order, 7 + 8*B
// transparent operations per word).
MarchTest tomt_test(unsigned width);

// Parity ledger for the current (assumed fault-free) contents.
std::vector<bool> make_parity_ledger(const Memory& mem);

// Ledger from a packed memory (any lane-block width) whose lanes still hold
// identical (pre-fault) contents; reads lane 0.
template <class Block>
std::vector<bool> make_parity_ledger(const PackedMemoryT<Block>& mem) {
  std::vector<bool> ledger(mem.num_words());
  for (std::size_t i = 0; i < mem.num_words(); ++i) ledger[i] = mem.lane_word(0, i).parity();
  return ledger;
}

template <class Engine>
struct TomtSessionResult {
  typename Engine::Verdict detected{};
  // Address at which the verdict saturated (every universe detected); for
  // the scalar engine this is the classic first-failure address.
  std::size_t fail_addr = 0;
  std::uint64_t operations = 0;  // memory port operations consumed
};

// Runs the TOMT-style test with its concurrent checkers:
//  * parity ledger: expected per-word parity captured while the system was
//    fault-free (TOMT's parity protection), checked at each word's first
//    read;
//  * intra-session comparator: every later read of a word is checked
//    against the value implied by that word's first read and the operation
//    masks (TOMT's read-back verification).
// The sweep aborts once the verdict is saturated (scalar: first detection,
// reproducing TOMT's stop-on-failure behaviour).
template <class Engine>
TomtSessionResult<Engine> run_tomt_session(typename Engine::Memory& mem,
                                           const std::vector<bool>& parity_ledger,
                                           typename Engine::Brake* brake = nullptr) {
  if (parity_ledger.size() != mem.num_words())
    throw std::invalid_argument("run_tomt: ledger size mismatch");
  if (brake) ++brake->elements_entered;  // the single per-word sweep element

  const unsigned w = mem.word_width();
  const MarchTest test = tomt_test(w);
  const MarchElement& elem = test.elements.front();

  // Per-op data masks of the per-word block, compiled once.
  std::vector<typename Engine::Mask> masks;
  masks.reserve(elem.ops.size());
  for (const Op& op : elem.ops) masks.push_back(Engine::make_mask(op.data.mask(w)));

  TomtSessionResult<Engine> res;
  const std::uint64_t before = mem.op_count();
  typename Engine::Word base = Engine::make_word(w);
  typename Engine::Word value = Engine::make_word(w);
  typename Engine::Word scratch = Engine::make_word(w);

  bool done = false;
  for (std::size_t addr = 0; addr < mem.num_words() && !done; ++addr) {
    bool have_base = false;
    for (std::size_t i = 0; i < elem.ops.size(); ++i) {
      const Op& op = elem.ops[i];
      if (op.is_write()) {
        Engine::xor_word(scratch, base, masks[i]);
        Engine::write_word(mem, addr, scratch);
        continue;
      }
      Engine::read_word(mem, addr, value);
      if (!have_base) {
        // mask is zero for the leading r(a); keeps intent clear.
        Engine::xor_word(base, value, masks[i]);
        have_base = true;
        // Concurrent parity check on the word's first observation.
        res.detected |= Engine::parity_mismatch(base, parity_ledger[addr]);
      } else {
        Engine::xor_word(scratch, base, masks[i]);
        res.detected |= Engine::differs(value, scratch);  // read-back comparator
      }
      // Both checkers latch (the verdict is monotone), so the sweep aborts
      // once no lane the caller cares about can change: every universe
      // detected (the classic scalar stop-on-failure), or — with an armed
      // scheduler brake — every live fault lane of the batch settled.
      if (Engine::saturated(res.detected) || (brake && brake->should_stop(res.detected))) {
        res.fail_addr = addr;
        done = true;
        break;
      }
    }
  }

  res.operations = mem.op_count() - before;
  return res;
}

// Classic scalar result shape, kept for the diagnosis-style consumers.
struct TomtResult {
  bool detected = false;
  std::size_t fail_addr = 0;
  std::uint64_t operations = 0;  // memory port operations consumed
};

// Scalar convenience wrapper over run_tomt_session<ScalarEngine>.
TomtResult run_tomt(Memory& mem, const std::vector<bool>& parity_ledger);

}  // namespace twm

#endif  // TWM_CORE_TOMT_H
