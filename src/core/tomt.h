// Scheme 2 baseline: TOMT-style transparent online memory test [13].
//
// TOMT (Thaller/Steininger, IEEE Trans. Reliability 2003) tests one word at
// a time with bit-wise manipulations, detecting errors concurrently via the
// word's parity/Hamming protection instead of a signature — so it needs no
// prediction pass (TCP = 0) but pays a per-word cost proportional to the
// word width.
//
// Substitution note (see DESIGN.md): the authors' exact operation sequence
// depends on their ECC datapath, which the paper under reproduction only
// summarizes by its time complexity.  We build a behavioural stand-in with
// the same structure — a per-word prologue exercising solid transitions,
// an 8-operation read/flip/restore block per bit, and parity-ledger
// checking — calibrated to the complexity the paper attributes to [13]:
// TCM = (7 + 8·B)·N (which reproduces the paper's "about 19%" ratio for
// March C-, B = 32).
#ifndef TWM_CORE_TOMT_H
#define TWM_CORE_TOMT_H

#include <cstdint>
#include <vector>

#include "march/test.h"
#include "memsim/memory.h"
#include "memsim/packed_memory.h"

namespace twm {

// The TOMT-style test as a march (single element, Up order, 7 + 8*B
// transparent operations per word).
MarchTest tomt_test(unsigned width);

struct TomtResult {
  bool detected = false;
  std::size_t fail_addr = 0;
  std::uint64_t operations = 0;  // memory port operations consumed
};

// Runs the TOMT-style test with its concurrent checkers:
//  * parity ledger: expected per-word parity captured while the system was
//    fault-free (TOMT's parity protection), checked at each word's first
//    read;
//  * intra-session comparator: every later read of a word is checked
//    against the value implied by that word's first read and the operation
//    masks (TOMT's read-back verification).
TomtResult run_tomt(Memory& mem, const std::vector<bool>& parity_ledger);

// Parity ledger for the current (assumed fault-free) contents.
std::vector<bool> make_parity_ledger(const Memory& mem);

// Ledger from a PackedMemory whose lanes still hold identical (pre-fault)
// contents; reads lane 0.
std::vector<bool> make_parity_ledger(const PackedMemory& mem);

// Batched counterpart of run_tomt: runs the TOMT-style test across all 64
// lanes and returns the lanes whose parity check or read-back comparator
// fired (lane-for-lane equal to run_tomt verdicts).
LaneMask run_tomt_packed(PackedMemory& mem, const std::vector<bool>& parity_ledger);

}  // namespace twm

#endif  // TWM_CORE_TOMT_H
