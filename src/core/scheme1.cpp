#include "core/scheme1.h"

#include <stdexcept>

#include "core/nicolaidis.h"
#include "util/backgrounds.h"

namespace twm {

Scheme1Result scheme1_transform(const MarchTest& bit_march, unsigned width) {
  if (bit_march.empty() || bit_march.op_count() == 0)
    throw std::invalid_argument("scheme1_transform: empty march test");

  const auto backgrounds = standard_backgrounds(width);

  MarchTest t;
  t.name = "S1-" + bit_march.name + "-B" + std::to_string(width);

  // Content the memory holds entering the next pass, as an XOR mask from
  // the initial content.  Starts at `a` itself.
  DataSpec content;
  content.relative = true;

  for (std::size_t k = 0; k < backgrounds.size(); ++k) {
    const BitVec& d = backgrounds[k];
    const std::string label = "D" + std::to_string(k);

    // Per-bit transparency: bits where Dk = 1 run the test with inverted
    // data, so w0/r0 carry mask Dk and w1/r1 carry mask ~Dk.
    auto map_spec = [&](const DataSpec& in) {
      DataSpec out;
      out.relative = true;
      out.complement = in.complement;
      if (!d.all_zero()) {
        out.pattern = d;
        out.label = label;
      }
      return out;
    };

    for (std::size_t ei = 0; ei < bit_march.elements.size(); ++ei) {
      const MarchElement& e = bit_march.elements[ei];
      MarchElement te;
      te.order = e.order;
      te.pause_before = e.pause_before;
      for (const auto& op : e.ops) te.ops.push_back(Op{op.kind, map_spec(op.data)});

      const bool is_first_pass_init = (k == 0 && ei == 0 && e.all_writes());
      if (is_first_pass_init) continue;  // Step 1 of [12]: drop it entirely

      // Every element must begin with a Read of the *current* content.
      if (!te.begins_with_read()) te.ops.insert(te.ops.begin(), Op::read(content));
      for (const auto& op : te.ops)
        if (op.is_write()) content = op.data;
      t.elements.push_back(std::move(te));
    }
  }

  // T4': restore the initial content if the last pass displaced it.
  if (content.complement || !content.pattern.empty()) {
    DataSpec initial;
    initial.relative = true;
    MarchElement restore;
    restore.order = AddrOrder::Any;
    restore.ops = {Op::read(content), Op::write(initial)};
    t.elements.push_back(std::move(restore));
  }

  Scheme1Result res;
  res.prediction = prediction_test(t);
  res.transparent = std::move(t);
  return res;
}

}  // namespace twm
