#include "core/scheme_session.h"

#include <algorithm>
#include <atomic>

#include "core/nicolaidis.h"
#include "core/scheme1.h"
#include "core/twm_ta.h"
#include "march/word_expand.h"

namespace twm {

std::string to_string(SchemeKind k) {
  switch (k) {
    case SchemeKind::NontransparentReference: return "SMarch+AMarch (nontransparent)";
    case SchemeKind::WordOrientedMarch: return "word-oriented march (nontransparent)";
    case SchemeKind::ProposedExact: return "TWMarch (exact compare)";
    case SchemeKind::ProposedMisr: return "TWMarch (MISR)";
    case SchemeKind::ProposedSymmetricXor: return "symmetric TWMarch (XOR acc, TCP=0)";
    case SchemeKind::TsmarchOnly: return "TSMarch only (no ATMarch)";
    case SchemeKind::Scheme1Exact: return "Scheme 1 [12] (exact compare)";
    case SchemeKind::TomtModel: return "TOMT model [13]";
  }
  return "?";
}

namespace {
std::atomic<std::uint64_t> g_plan_builds{0};
}  // namespace

std::uint64_t scheme_plan_build_count() { return g_plan_builds.load(); }

std::size_t plan_session_elements(const SchemePlan& plan) {
  switch (plan.scheme) {
    case SchemeKind::NontransparentReference:
      return plan.direct_a.elements.size() + plan.direct_b.elements.size();
    case SchemeKind::WordOrientedMarch: return plan.direct_a.elements.size();
    case SchemeKind::ProposedExact:
    case SchemeKind::ProposedMisr:
    case SchemeKind::TsmarchOnly:
    case SchemeKind::Scheme1Exact:
      return plan.trans.elements.size() + plan.prediction.elements.size();
    case SchemeKind::ProposedSymmetricXor: return plan.sym.test.elements.size();
    case SchemeKind::TomtModel: return 1;  // single-element per-word sweep
  }
  return 0;
}

SchemePlan make_scheme_plan(SchemeKind scheme, const MarchTest& bit_march, unsigned width) {
  g_plan_builds.fetch_add(1, std::memory_order_relaxed);
  SchemePlan p;
  p.scheme = scheme;
  p.width = width;
  switch (scheme) {
    case SchemeKind::NontransparentReference: {
      p.direct_a = solid_march(bit_march);
      const auto final_spec = p.direct_a.final_write_spec();
      const bool base_inv = final_spec.has_value() && final_spec->complement;
      p.direct_b = nontransparent_amarch(width, base_inv);
      break;
    }
    case SchemeKind::WordOrientedMarch:
      p.direct_a = word_oriented_march(bit_march, width);
      break;
    case SchemeKind::ProposedExact:
    case SchemeKind::ProposedMisr: {
      const TwmResult t = twm_transform(bit_march, width);
      p.trans = t.twmarch;
      p.prediction = t.prediction;
      // A practical transparent BIST sizes its MISR for a negligible
      // aliasing probability; 16 bits keeps aliasing (2^-16 per fault)
      // below a campaign's resolution even for narrow words.
      p.misr_width = std::max(16u, width);
      break;
    }
    case SchemeKind::ProposedSymmetricXor: {
      const TwmResult t = twm_transform(bit_march, width);
      p.sym = symmetrize(t.twmarch, width);
      break;
    }
    case SchemeKind::TsmarchOnly: {
      const TwmResult t = twm_transform(bit_march, width);
      p.trans = t.tsmarch;
      p.prediction = prediction_test(t.tsmarch);
      p.misr_width = width;
      break;
    }
    case SchemeKind::Scheme1Exact: {
      const Scheme1Result s = scheme1_transform(bit_march, width);
      p.trans = s.transparent;
      p.prediction = s.prediction;
      p.misr_width = width;
      break;
    }
    case SchemeKind::TomtModel:
      break;
  }
  return p;
}

}  // namespace twm
