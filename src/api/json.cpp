#include "api/json.h"

#include <cctype>
#include <cstdio>

namespace twm::api {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(std::uint64_t n) { return number_raw(std::to_string(n)); }

JsonValue JsonValue::number_raw(std::string text) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.scalar_ = std::move(text);
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

bool JsonValue::as_bool() const {
  if (!is_bool()) throw std::logic_error("JsonValue: not a boolean");
  return bool_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw std::logic_error("JsonValue: not a string");
  return scalar_;
}

const std::string& JsonValue::number_text() const {
  if (!is_number()) throw std::logic_error("JsonValue: not a number");
  return scalar_;
}

std::optional<std::uint64_t> JsonValue::as_u64() const {
  if (!is_number()) return std::nullopt;
  const std::string& t = scalar_;
  if (t.empty() || t[0] == '-') return std::nullopt;
  std::uint64_t out = 0;
  for (char c : t) {
    if (c < '0' || c > '9') return std::nullopt;  // fraction or exponent
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    out = out * 10 + digit;
  }
  return out;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (!is_array()) throw std::logic_error("JsonValue: not an array");
  return items_;
}

std::vector<JsonValue>& JsonValue::items() {
  if (!is_array()) throw std::logic_error("JsonValue: not an array");
  return items_;
}

void JsonValue::push_back(JsonValue v) { items().push_back(std::move(v)); }

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (!is_object()) throw std::logic_error("JsonValue: not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : members())
    if (k == key) return &v;
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue v) {
  if (!is_object()) throw std::logic_error("JsonValue: not an object");
  members_.emplace_back(std::move(key), std::move(v));
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  // Containers may nest at most this deep.  parse_value recurses once per
  // level, so without a cap a hostile "[[[[..." document (one byte per
  // level — trivially cheap for a socket client to send) overflows the
  // stack instead of returning an error.
  static constexpr unsigned kMaxDepth = 256;

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonParseError("line " + std::to_string(line) + ", column " + std::to_string(col) +
                         ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(const char* kw) {
    const std::size_t len = std::string(kw).size();
    if (s_.compare(pos_, len, kw) != 0) return false;
    pos_ += len;
    return true;
  }

  // Bounds the container recursion; fail() throws out of the constructor,
  // unwinding every open level.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth)
        parser.fail("containers nested deeper than " + std::to_string(kMaxDepth) + " levels");
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  JsonValue parse_value() {
    switch (peek()) {
      case '{': {
        const DepthGuard guard(*this);
        return parse_object();
      }
      case '[': {
        const DepthGuard guard(*this);
        return parse_array();
      }
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (!consume_keyword("true")) fail("invalid literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_keyword("false")) fail("invalid literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_keyword("null")) fail("invalid literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v = JsonValue::object();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      expect(':');
      v.set(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v = JsonValue::array();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape digit");
          }
          // UTF-8 encode the BMP code point (spec files are ASCII in
          // practice; surrogate pairs are rejected rather than mis-merged).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes are not supported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t d0 = pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
      return pos_ > d0;
    };
    if (!digits()) fail("invalid number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("invalid number (missing fraction digits)");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) fail("invalid number (missing exponent digits)");
    }
    return JsonValue::number_raw(s_.substr(start, pos_ - start));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  unsigned depth_ = 0;
};

void write_value(const JsonValue& v, bool pretty, unsigned depth, std::string& out) {
  const auto indent = [&](unsigned d) {
    if (pretty) out.append(1, '\n').append(2 * d, ' ');
  };
  switch (v.kind()) {
    case JsonValue::Kind::Null: out += "null"; return;
    case JsonValue::Kind::Bool: out += v.as_bool() ? "true" : "false"; return;
    case JsonValue::Kind::Number: out += v.number_text(); return;
    case JsonValue::Kind::String: out += json_quote(v.as_string()); return;
    case JsonValue::Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out += pretty ? ", " : ",";
        first = false;
        // Arrays stay on one line: spec arrays (seeds, schemes, classes)
        // read best horizontally.
        write_value(item, /*pretty=*/false, depth, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out += ',';
        first = false;
        indent(depth + 1);
        out += json_quote(key);
        out += pretty ? ": " : ":";
        write_value(member, pretty, depth + 1, out);
      }
      if (!v.members().empty()) indent(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

JsonValue json_parse(const std::string& text) { return Parser(text).parse_document(); }

std::string json_write(const JsonValue& v, bool pretty) {
  std::string out;
  write_value(v, pretty, 0, out);
  return out;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace twm::api
