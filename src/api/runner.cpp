#include "api/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "api/checkpoint.h"
#include "api/error.h"
#include "march/library.h"

namespace twm::api {

namespace {

// run.deadline_ms as a poll: expired() is checked at exactly the
// cancellation points (between units / repack rounds), from worker threads
// — it latches, so one observation past the deadline stops every
// subsequent poll without re-reading the clock.
class DeadlineGate {
 public:
  explicit DeadlineGate(std::uint64_t deadline_ms)
      : deadline_(std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms)) {}

  bool expired() const {
    if (fired_.load(std::memory_order_relaxed)) return true;
    if (std::chrono::steady_clock::now() < deadline_) return false;
    fired_.store(true, std::memory_order_relaxed);
    return true;
  }

  bool fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  std::chrono::steady_clock::time_point deadline_;
  mutable std::atomic<bool> fired_{false};
};

// Bridges the engine's raw UnitObserver events (fault ranges + flag
// pointers, fired from worker threads) to the public ResultSink records
// (one per fault, serialized by a mutex, stamped with scheme/class).
// `sink` may be null (cache-recording runs without a consumer); `record`,
// when non-null, captures every unit in emission order for the cache.
class SinkAdapter : public UnitObserver {
 public:
  SinkAdapter(ResultSink* sink, std::mutex& mu, SchemeKind scheme, const ClassSel& cls,
              const std::vector<Fault>& faults, const std::vector<std::uint64_t>& seeds,
              std::size_t& units_emitted, std::vector<CachedUnit>* record,
              const DeadlineGate* gate)
      : sink_(sink),
        gate_(gate),
        mu_(mu),
        scheme_(scheme),
        cls_(cls),
        faults_(faults),
        seeds_(seeds),
        units_emitted_(units_emitted),
        record_(record) {}

  std::size_t units_seen() const { return units_seen_; }

  void on_unit_settled(std::size_t first, unsigned count, const char* all,
                       const char* any) override {
    const std::lock_guard<std::mutex> lock(mu_);
    for (unsigned i = 0; i < count; ++i) {
      const bool detected_all = all[i] != 0;
      const bool detected_any = any[i] != 0;
      if (record_) record_->push_back({first + i, detected_all, detected_any});
      if (sink_) {
        UnitRecord r;
        r.scheme = scheme_;
        r.cls = cls_;
        r.fault_index = first + i;
        r.fault = &faults_[first + i];
        r.detected_all = detected_all;
        r.detected_any = detected_any;
        sink_->on_unit(r);
        ++units_emitted_;
      }
      ++units_seen_;
    }
  }

  void on_seed_verdict(std::size_t fault, std::size_t seed_index, bool detected) override {
    const std::lock_guard<std::mutex> lock(mu_);
    SeedRecord r;
    r.scheme = scheme_;
    r.cls = cls_;
    r.fault_index = fault;
    r.seed = seeds_[seed_index];
    r.detected = detected;
    sink_->on_seed_settled(r);
  }

  bool want_seed_verdicts() const override { return sink_ && sink_->want_seed_records(); }
  bool cancelled() const override {
    return (gate_ && gate_->expired()) || (sink_ && sink_->cancelled());
  }

 private:
  ResultSink* sink_;
  const DeadlineGate* gate_;
  std::mutex& mu_;
  SchemeKind scheme_;
  ClassSel cls_;
  const std::vector<Fault>& faults_;
  const std::vector<std::uint64_t>& seeds_;
  std::size_t& units_emitted_;
  std::vector<CachedUnit>* record_;
  std::size_t units_seen_ = 0;
};

// A stored cell is replayable only if it is a complete permutation of the
// cell's fault list — one record per fault, every index in range.  A
// corrupted or foreign disk entry that slipped past the identity check
// must degrade to a miss, not to an out-of-bounds read.
bool replayable(const CellRecords& records, std::size_t num_faults) {
  if (records.units.size() != num_faults) return false;
  std::vector<char> seen(num_faults, 0);
  for (const CachedUnit& u : records.units) {
    if (u.fault_index >= num_faults || seen[u.fault_index]) return false;
    seen[u.fault_index] = 1;
  }
  return true;
}

}  // namespace

namespace {

CampaignSummary run_campaign_impl(const CampaignSpec& spec, ResultSink* sink,
                                  CellCache* cache, CacheStats* cache_stats,
                                  const std::string& checkpoint_path) {
  require_valid(spec);
  const MarchTest march = resolve_march(spec);

  // The deadline clock starts here, after validation: a spec with
  // run.deadline_ms budgets the simulation, not the request parsing.
  std::optional<DeadlineGate> gate_storage;
  if (spec.deadline_ms != 0) gate_storage.emplace(spec.deadline_ms);
  const DeadlineGate* gate = gate_storage ? &*gate_storage : nullptr;

  // Checkpoint/resume state: the loaded file (when it matches this engine
  // revision and region count) seeds the "already done" region set; the
  // file is rewritten after every region this run completes.
  const unsigned regions = std::max(1u, spec.regions);
  const bool ck_active = !checkpoint_path.empty();
  bool ck_save_warned = false;
  CheckpointFile ck;
  ck.regions = regions;
  if (ck_active) {
    if (auto loaded = load_checkpoint(checkpoint_path); loaded && loaded->regions == regions)
      ck = std::move(*loaded);
  }
  // Resolve the lane-block width up front (validate() already vetted a
  // forced width, so this cannot throw for a spec that passed it).
  const simd::Width resolved = spec.backend == CoverageBackend::Packed
                                   ? simd::resolve(spec.simd)
                                   : simd::Width::W64;

  // One fault list per distinct class selector, shared across schemes.
  std::vector<std::vector<Fault>> fault_lists;
  fault_lists.reserve(spec.classes.size());
  for (const ClassSel& cls : spec.classes)
    fault_lists.push_back(build_fault_list(cls, spec.words, spec.width));

  CampaignSummary summary;
  for (const auto& list : fault_lists) summary.total_faults += list.size();
  summary.total_faults *= spec.schemes.size();

  if (sink) {
    CampaignMeta meta;
    meta.spec = &spec;
    meta.resolved_simd = resolved;
    meta.total_faults = summary.total_faults;
    sink->on_campaign_begin(meta);
  }

  if (cache_stats) {
    *cache_stats = {};
    cache_stats->cells_total = spec.schemes.size() * spec.classes.size();
  }
  // Seed-record consumers bypass the replay path: cached cells carry no
  // per-seed stream.  Completed live cells are still offered to the store.
  const bool replay_ok = !(sink && sink->want_seed_records());

  const CampaignRunner runner(spec.words, spec.width, spec.options());
  std::mutex sink_mu;
  const auto t0 = std::chrono::steady_clock::now();
  for (SchemeKind scheme : spec.schemes) {
    for (std::size_t c = 0; c < spec.classes.size() && !summary.cancelled; ++c) {
      std::string identity, key;
      if (cache || ck_active) identity = cell_identity_json(spec, scheme, spec.classes[c]);
      if (cache) key = content_key(identity);

      if (cache && replay_ok) {
        const auto hit = cache->lookup(key, identity);
        if (hit && replayable(*hit, fault_lists[c].size())) {
          CellResult cell;
          cell.scheme = scheme;
          cell.cls = spec.classes[c];
          cell.outcome.total = fault_lists[c].size();
          for (const CachedUnit& u : hit->units) {
            cell.outcome.detected_all += u.detected_all;
            cell.outcome.detected_any += u.detected_any;
            if (sink) {
              UnitRecord r;
              r.scheme = scheme;
              r.cls = spec.classes[c];
              r.fault_index = u.fault_index;
              r.fault = &fault_lists[c][u.fault_index];
              r.detected_all = u.detected_all;
              r.detected_any = u.detected_any;
              sink->on_unit(r);
              ++summary.units_emitted;
            }
          }
          summary.cells.push_back(cell);
          if (cache_stats) {
            ++cache_stats->cells_cached;
            cache_stats->faults_replayed += hit->units.size();
          }
          if ((sink && sink->cancelled()) || (gate && gate->expired()))
            summary.cancelled = true;
          continue;
        }
      }

      const std::vector<Fault>& faults = fault_lists[c];

      // Region ownership of this cell's faults (identical to the split
      // CampaignRunner::run performs).
      std::vector<unsigned> region_of(faults.size());
      std::vector<std::size_t> owned_count(regions, 0);
      for (std::size_t i = 0; i < faults.size(); ++i) {
        region_of[i] = fault_region(faults[i], spec.words, regions);
        ++owned_count[region_of[i]];
      }

      // Regions this cell already completed in a previous run.  An entry is
      // trusted only on an exact identity match with a verified fault-index
      // permutation of its region; seed-record consumers skip resume the
      // same way they skip cache replay (checkpoints carry no seed stream).
      RegionProgress progress;
      progress.done.assign(regions, 0);
      // Copied, not pointed-to: on_region_done rewrites ck.cells mid-run.
      std::vector<std::vector<CachedUnit>> done_units(regions);
      if (ck_active && replay_ok) {
        for (const CheckpointEntry& e : ck.cells) {
          if (e.identity != identity || progress.done[e.region]) continue;
          if (e.units.size() != owned_count[e.region]) continue;
          std::vector<char> seen(faults.size(), 0);
          bool ok = true;
          for (const CachedUnit& u : e.units) {
            if (u.fault_index >= faults.size() || region_of[u.fault_index] != e.region ||
                seen[u.fault_index]) {
              ok = false;
              break;
            }
            seen[u.fault_index] = 1;
          }
          if (!ok) continue;
          progress.done[e.region] = 1;
          done_units[e.region] = e.units;
        }
      }

      std::vector<char> all, any;
      bool cell_complete = true;
      std::vector<CachedUnit> recorded;
      std::size_t replayed = 0;
      if (cache_stats) ++cache_stats->cells_simulated;
      if (sink || cache || ck_active || gate) {
        // Replay the resumed regions' records first (they settled first in
        // the interrupted run), then simulate the rest.
        for (unsigned r = 0; r < regions; ++r) {
          if (!progress.done[r]) continue;
          for (const CachedUnit& u : done_units[r]) {
            recorded.push_back(u);
            ++replayed;
            if (sink) {
              UnitRecord rec;
              rec.scheme = scheme;
              rec.cls = spec.classes[c];
              rec.fault_index = u.fault_index;
              rec.fault = &faults[u.fault_index];
              rec.detected_all = u.detected_all;
              rec.detected_any = u.detected_any;
              sink->on_unit(rec);
              ++summary.units_emitted;
            }
          }
        }
        if (ck_active) {
          progress.on_region_done = [&](unsigned r, const std::vector<std::uint32_t>&) {
            CheckpointEntry e;
            e.identity = identity;
            e.region = r;
            for (const CachedUnit& u : recorded)
              if (region_of[u.fault_index] == r) e.units.push_back(u);
            // Replace any stale entry for this (cell, region) — e.g. when a
            // seed-record sink forced a re-simulation.
            ck.cells.erase(std::remove_if(ck.cells.begin(), ck.cells.end(),
                                          [&](const CheckpointEntry& old) {
                                            return old.region == r && old.identity == identity;
                                          }),
                           ck.cells.end());
            ck.cells.push_back(std::move(e));
            // Best-effort persistence: a failed save costs resumability of
            // this region, never the campaign.  Warn once, keep trying —
            // the failure may be transient (disk pressure, injected).
            if (!save_checkpoint(checkpoint_path, ck) && !ck_save_warned) {
              ck_save_warned = true;
              std::fprintf(stderr,
                           "twm: warning: checkpoint save to '%s' failed; campaign "
                           "continues, an interrupted run may redo unsaved regions\n",
                           checkpoint_path.c_str());
            }
          };
        }
        SinkAdapter adapter(sink, sink_mu, scheme, spec.classes[c], faults, spec.seeds,
                            summary.units_emitted,
                            cache || ck_active ? &recorded : nullptr, gate);
        runner.run(scheme, march, faults, spec.seeds, /*need_any=*/true, all, any,
                   /*out_matrix=*/nullptr, &adapter, /*stats=*/nullptr,
                   ck_active ? &progress : nullptr);
        // The runner's all/any flags cover only the simulated regions;
        // patch the resumed regions' verdicts back in from the checkpoint.
        for (unsigned r = 0; r < regions; ++r) {
          if (!progress.done[r]) continue;
          for (const CachedUnit& u : done_units[r]) {
            all[u.fault_index] = static_cast<char>(u.detected_all);
            any[u.fault_index] = static_cast<char>(u.detected_any);
          }
        }
        if ((sink && sink->cancelled()) || (gate && gate->expired()))
          summary.cancelled = true;
        // The flag may flip only after the cell's last unit settled (or
        // every in-flight unit may still have completed): the aggregate of
        // a fully-streamed cell is valid and must not be dropped.
        cell_complete = adapter.units_seen() + replayed == faults.size();
      } else {
        runner.run(scheme, march, faults, spec.seeds, /*need_any=*/true, all, any);
      }
      if (!cell_complete) break;
      if (cache) cache->store(key, identity, {std::move(recorded)});
      CellResult cell;
      cell.scheme = scheme;
      cell.cls = spec.classes[c];
      cell.outcome.total = fault_lists[c].size();
      for (std::size_t i = 0; i < fault_lists[c].size(); ++i) {
        cell.outcome.detected_all += all[i];
        cell.outcome.detected_any += any[i];
      }
      summary.cells.push_back(cell);
    }
    if (summary.cancelled) break;
  }
  summary.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  // The deadline reports as a cancellation with a cause, mirroring the sink
  // contract: the stream is a truncated (possibly complete) prefix.
  if (gate && gate->fired()) {
    summary.timed_out = true;
    summary.cancelled = true;
  }

  if (sink) sink->on_campaign_end(summary);
  return summary;
}

}  // namespace

CampaignSummary run_campaign(const CampaignSpec& spec, ResultSink* sink, CellCache* cache,
                             CacheStats* cache_stats, const std::string& checkpoint_path) {
  try {
    return run_campaign_impl(spec, sink, cache, cache_stats, checkpoint_path);
  } catch (const SpecValidationError&) {
    throw;  // structured spec errors keep their own type (and field paths)
  } catch (const std::exception& e) {
    // Everything else aborted the campaign mid-flight: type it, tell the
    // sink (its stream would otherwise just stop), rethrow carrying the
    // taxonomy so the service can answer with a retryable-flagged frame.
    Error err = classify_exception(e);
    if (sink) sink->on_error(err);
    throw CampaignError(std::move(err));
  }
}

std::vector<Diagnosis> diagnose_campaign(const CampaignSpec& spec) {
  require_valid(spec);
  std::vector<Fault> faults;
  for (const ClassSel& cls : spec.classes)
    for (const Fault& f : build_fault_list(cls, spec.words, spec.width)) faults.push_back(f);
  const MarchTest march = resolve_march(spec);
  // Every requested seed is diagnosed (a fault can be invisible under one
  // content and localizable under another — e.g. RET to the value the cell
  // already holds); each fault keeps the diagnosis of the FIRST seed, in
  // spec order, that observed it.  Seeds past the first that found every
  // fault are skipped — nothing left to localize.
  std::vector<Diagnosis> merged;
  for (std::uint64_t seed : spec.seeds) {
    std::size_t missing = 0;
    if (!merged.empty()) {
      for (const Diagnosis& d : merged) missing += !d.fault_found;
      if (missing == 0) break;
    }
    auto pass = twm::diagnose_campaign(march, spec.words, spec.width, faults, seed,
                                       spec.threads);
    if (merged.empty()) {
      merged = std::move(pass);
      continue;
    }
    for (std::size_t i = 0; i < merged.size(); ++i)
      if (!merged[i].fault_found && pass[i].fault_found) merged[i] = pass[i];
  }
  return merged;
}

}  // namespace twm::api
