#include "api/runner.h"

#include <chrono>
#include <mutex>

#include "march/library.h"

namespace twm::api {

namespace {

// Bridges the engine's raw UnitObserver events (fault ranges + flag
// pointers, fired from worker threads) to the public ResultSink records
// (one per fault, serialized by a mutex, stamped with scheme/class).
class SinkAdapter : public UnitObserver {
 public:
  SinkAdapter(ResultSink& sink, std::mutex& mu, SchemeKind scheme, const ClassSel& cls,
              const std::vector<Fault>& faults, const std::vector<std::uint64_t>& seeds,
              std::size_t& units_emitted)
      : sink_(sink),
        mu_(mu),
        scheme_(scheme),
        cls_(cls),
        faults_(faults),
        seeds_(seeds),
        units_emitted_(units_emitted) {}

  void on_unit_settled(std::size_t first, unsigned count, const char* all,
                       const char* any) override {
    const std::lock_guard<std::mutex> lock(mu_);
    for (unsigned i = 0; i < count; ++i) {
      UnitRecord r;
      r.scheme = scheme_;
      r.cls = cls_;
      r.fault_index = first + i;
      r.fault = &faults_[first + i];
      r.detected_all = all[i] != 0;
      r.detected_any = any[i] != 0;
      sink_.on_unit(r);
      ++units_emitted_;
    }
  }

  void on_seed_verdict(std::size_t fault, std::size_t seed_index, bool detected) override {
    const std::lock_guard<std::mutex> lock(mu_);
    SeedRecord r;
    r.scheme = scheme_;
    r.cls = cls_;
    r.fault_index = fault;
    r.seed = seeds_[seed_index];
    r.detected = detected;
    sink_.on_seed_settled(r);
  }

  bool want_seed_verdicts() const override { return sink_.want_seed_records(); }
  bool cancelled() const override { return sink_.cancelled(); }

 private:
  ResultSink& sink_;
  std::mutex& mu_;
  SchemeKind scheme_;
  ClassSel cls_;
  const std::vector<Fault>& faults_;
  const std::vector<std::uint64_t>& seeds_;
  std::size_t& units_emitted_;
};

}  // namespace

CampaignSummary run_campaign(const CampaignSpec& spec, ResultSink* sink) {
  require_valid(spec);
  const MarchTest march = march_by_name(spec.march);
  // Resolve the lane-block width up front (validate() already vetted a
  // forced width, so this cannot throw for a spec that passed it).
  const simd::Width resolved = spec.backend == CoverageBackend::Packed
                                   ? simd::resolve(spec.simd)
                                   : simd::Width::W64;

  // One fault list per distinct class selector, shared across schemes.
  std::vector<std::vector<Fault>> fault_lists;
  fault_lists.reserve(spec.classes.size());
  for (const ClassSel& cls : spec.classes)
    fault_lists.push_back(build_fault_list(cls, spec.words, spec.width));

  CampaignSummary summary;
  for (const auto& list : fault_lists) summary.total_faults += list.size();
  summary.total_faults *= spec.schemes.size();

  if (sink) {
    CampaignMeta meta;
    meta.spec = &spec;
    meta.resolved_simd = resolved;
    meta.total_faults = summary.total_faults;
    sink->on_campaign_begin(meta);
  }

  const CampaignRunner runner(spec.words, spec.width, spec.options());
  std::mutex sink_mu;
  const auto t0 = std::chrono::steady_clock::now();
  for (SchemeKind scheme : spec.schemes) {
    for (std::size_t c = 0; c < spec.classes.size() && !summary.cancelled; ++c) {
      std::vector<char> all, any;
      bool cell_complete = true;
      if (sink) {
        const std::size_t units_before = summary.units_emitted;
        SinkAdapter adapter(*sink, sink_mu, scheme, spec.classes[c], fault_lists[c],
                            spec.seeds, summary.units_emitted);
        runner.run(scheme, march, fault_lists[c], spec.seeds, /*need_any=*/true, all, any,
                   /*out_matrix=*/nullptr, &adapter);
        if (sink->cancelled()) summary.cancelled = true;
        // The flag may flip only after the cell's last unit settled (or
        // every in-flight unit may still have completed): the aggregate of
        // a fully-streamed cell is valid and must not be dropped.
        cell_complete = summary.units_emitted - units_before == fault_lists[c].size();
      } else {
        runner.run(scheme, march, fault_lists[c], spec.seeds, /*need_any=*/true, all, any);
      }
      if (!cell_complete) break;
      CellResult cell;
      cell.scheme = scheme;
      cell.cls = spec.classes[c];
      cell.outcome.total = fault_lists[c].size();
      for (std::size_t i = 0; i < fault_lists[c].size(); ++i) {
        cell.outcome.detected_all += all[i];
        cell.outcome.detected_any += any[i];
      }
      summary.cells.push_back(cell);
    }
    if (summary.cancelled) break;
  }
  summary.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (sink) sink->on_campaign_end(summary);
  return summary;
}

std::vector<Diagnosis> diagnose_campaign(const CampaignSpec& spec) {
  require_valid(spec);
  std::vector<Fault> faults;
  for (const ClassSel& cls : spec.classes)
    for (const Fault& f : build_fault_list(cls, spec.words, spec.width)) faults.push_back(f);
  return twm::diagnose_campaign(march_by_name(spec.march), spec.words, spec.width, faults,
                                spec.seeds.front(), spec.threads);
}

}  // namespace twm::api
