#include "api/sink.h"

#include <ostream>

#include "api/json.h"
#include "analysis/report.h"
#include "util/table.h"

namespace twm::api {

namespace {

// Locale-independent (fixed_str, not "%.6f"): the JSON-lines stream must
// stay parseable under a comma-decimal LC_NUMERIC.
std::string seconds_str(double seconds) { return fixed_str(seconds, 6); }

const char* bool_str(bool b) { return b ? "true" : "false"; }

}  // namespace

// ---- JsonLinesSink ------------------------------------------------------

void JsonLinesSink::on_campaign_begin(const CampaignMeta& meta) {
  const CampaignSpec& s = *meta.spec;
  out_ << "{\"type\":\"campaign_begin\",\"name\":" << json_quote(s.name)
       << ",\"march\":" << json_quote(march_display(s)) << ",\"words\":" << s.words
       << ",\"width\":" << s.width << ",\"schemes\":[";
  bool first = true;
  for (SchemeKind k : s.schemes) {
    if (!first) out_ << ",";
    first = false;
    out_ << json_quote(scheme_id(k));
  }
  out_ << "],\"classes\":[";
  first = true;
  for (const ClassSel& c : s.classes) {
    if (!first) out_ << ",";
    first = false;
    out_ << json_quote(to_string(c));
  }
  out_ << "],\"seeds\":[";
  first = true;
  for (std::uint64_t seed : s.seeds) {
    if (!first) out_ << ",";
    first = false;
    out_ << seed;
  }
  out_ << "],\"backend\":" << json_quote(to_string(s.backend)) << ",\"threads\":" << s.threads
       << ",\"simd\":" << json_quote(simd::to_string(s.simd))
       << ",\"resolved_simd\":" << simd::lanes(meta.resolved_simd)
       << ",\"schedule\":" << json_quote(to_string(s.schedule))
       << ",\"collapse\":" << bool_str(s.collapse)
       << ",\"total_faults\":" << meta.total_faults << "}\n";
  out_.flush();
}

void JsonLinesSink::on_unit(const UnitRecord& r) {
  out_ << "{\"type\":\"unit\",\"scheme\":" << json_quote(scheme_id(r.scheme))
       << ",\"class\":" << json_quote(to_string(r.cls)) << ",\"fault\":" << r.fault_index
       << ",\"describe\":" << json_quote(r.fault ? r.fault->describe() : "")
       << ",\"detected_all\":" << bool_str(r.detected_all)
       << ",\"detected_any\":" << bool_str(r.detected_any) << "}\n";
  // The whole point of this sink is that a consumer can tail the stream
  // mid-campaign; records must not sit in the stream buffer until the end.
  out_.flush();
}

void JsonLinesSink::on_seed_settled(const SeedRecord& r) {
  out_ << "{\"type\":\"seed\",\"scheme\":" << json_quote(scheme_id(r.scheme))
       << ",\"class\":" << json_quote(to_string(r.cls)) << ",\"fault\":" << r.fault_index
       << ",\"seed\":" << r.seed << ",\"detected\":" << bool_str(r.detected) << "}\n";
  out_.flush();  // same mid-campaign tailing contract as unit records
}

void JsonLinesSink::on_campaign_end(const CampaignSummary& s) {
  out_ << "{\"type\":\"campaign_end\",\"cancelled\":" << bool_str(s.cancelled)
       << ",\"timed_out\":" << bool_str(s.timed_out)
       << ",\"units\":" << s.units_emitted << ",\"total_faults\":" << s.total_faults
       << ",\"seconds\":" << seconds_str(s.seconds) << ",\"cells\":[";
  bool first = true;
  for (const CellResult& cell : s.cells) {
    if (!first) out_ << ",";
    first = false;
    out_ << "{\"scheme\":" << json_quote(scheme_id(cell.scheme))
         << ",\"class\":" << json_quote(to_string(cell.cls))
         << ",\"total\":" << cell.outcome.total
         << ",\"detected_all\":" << cell.outcome.detected_all
         << ",\"detected_any\":" << cell.outcome.detected_any << "}";
  }
  out_ << "]}\n";
  out_.flush();
}

void JsonLinesSink::on_error(const Error& e) {
  out_ << "{\"type\":\"error\",\"scope\":" << json_quote(std::string(to_string(e.category)))
       << ",\"retryable\":" << bool_str(e.retryable)
       << ",\"message\":" << json_quote(e.detail) << "}\n";
  out_.flush();
}

// ---- CsvSink ------------------------------------------------------------

namespace {

// RET describes as "RET(1,1u) @..." — commas force quoting.
std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvSink::on_campaign_begin(const CampaignMeta& meta) {
  campaign_ = meta.spec->name;
  if (header_written_) return;
  out_ << "campaign,scheme,class,fault,describe,detected_all,detected_any\n";
  header_written_ = true;
}

void CsvSink::on_unit(const UnitRecord& r) {
  out_ << csv_quote(campaign_) << "," << scheme_id(r.scheme) << "," << to_string(r.cls) << ","
       << r.fault_index << "," << csv_quote(r.fault ? r.fault->describe() : "") << ","
       << (r.detected_all ? 1 : 0) << "," << (r.detected_any ? 1 : 0) << "\n";
}

// ---- TableSink ----------------------------------------------------------

void TableSink::on_campaign_begin(const CampaignMeta& meta) {
  spec_ = *meta.spec;
  const bool all_schemes =
      spec_.schemes == std::vector<SchemeKind>(std::begin(kAllSchemes), std::end(kAllSchemes));
  out_ << "coverage: " << march_display(spec_) << ", N=" << spec_.words << ", B=" << spec_.width
       << ", ";
  if (all_schemes) {
    out_ << "all schemes";
  } else {
    bool first = true;
    for (SchemeKind k : spec_.schemes) {
      if (!first) out_ << " + ";
      first = false;
      out_ << twm::to_string(k);
    }
  }
  out_ << ", backend=" << twm::to_string(spec_.backend);
  if (spec_.backend == CoverageBackend::Packed)
    out_ << " (simd " << simd::to_string(meta.resolved_simd) << ", "
         << (spec_.simd == simd::Request::Auto ? "auto" : "forced") << ")";
  out_ << ", schedule=" << twm::to_string(spec_.schedule);
  if (spec_.schedule == ScheduleMode::Repack && !spec_.collapse) out_ << " (no collapse)";
  out_ << ", threads=" << spec_.threads << ", " << spec_.seeds.size() << " contents\n";
}

void TableSink::on_campaign_end(const CampaignSummary& summary) {
  // A cell can be missing from the summary (cancelled campaign): render a
  // placeholder instead of silently dropping the scheme's whole row.
  const auto find_cell = [&summary](SchemeKind k, const ClassSel& cls) -> const CellResult* {
    for (const CellResult& cell : summary.cells)
      if (cell.scheme == k && cell.cls == cls) return &cell;
    return nullptr;
  };
  static constexpr const char* kMissing = "—";
  if (spec_.schemes.size() == 1) {
    Table t({"fault class", "faults", "coverage (all contents)", "any content"});
    for (const ClassSel& cls : spec_.classes) {
      const CellResult* cell = find_cell(spec_.schemes[0], cls);
      if (cell)
        t.add_row({class_label(cls), std::to_string(cell->outcome.total),
                   coverage_str(cell->outcome), pct_str(cell->outcome.pct_any())});
      else
        t.add_row({class_label(cls), kMissing, kMissing, kMissing});
    }
    t.print(out_);
  } else {
    // Scheme x fault-class matrix, one row per scheme (spec order).
    std::vector<std::string> header{"scheme"};
    for (const ClassSel& cls : spec_.classes) {
      std::size_t count = 0;
      for (const CellResult& cell : summary.cells)
        if (cell.cls == cls) {
          count = cell.outcome.total;
          break;
        }
      header.push_back(class_label(cls) + " (" + std::to_string(count) + ")");
    }
    Table t(header);
    for (SchemeKind k : spec_.schemes) {
      std::vector<std::string> row{twm::to_string(k)};
      for (const ClassSel& cls : spec_.classes) {
        const CellResult* cell = find_cell(k, cls);
        row.push_back(cell ? coverage_str(cell->outcome) : kMissing);
      }
      t.add_row(row);
    }
    t.print(out_);
  }
  // A cancelled campaign reports the work that actually ran, not the plan.
  const std::size_t faults_run = summary.cancelled ? summary.units_emitted
                                                   : summary.total_faults;
  if (summary.cancelled)
    out_ << "campaign " << (summary.timed_out ? "stopped by run.deadline_ms" : "cancelled by sink")
         << " after " << faults_run << "/" << summary.total_faults << " faults\n";
  out_ << faults_run << " faults in " << fixed_str(summary.seconds, 3) << "s ("
       << static_cast<std::uint64_t>(summary.seconds > 0 ? faults_run / summary.seconds : 0)
       << " faults/s)\n";
}

// ---- CollectingSink -----------------------------------------------------

void CollectingSink::on_campaign_begin(const CampaignMeta&) { ++begins; }

void CollectingSink::on_unit(const UnitRecord& r) {
  units.push_back({r.scheme, r.cls, r.fault_index, r.detected_all, r.detected_any});
  if (cancel_after_units_ && units.size() >= cancel_after_units_)
    cancelled_.store(true, std::memory_order_relaxed);
}

void CollectingSink::on_seed_settled(const SeedRecord& r) { seeds.push_back(r); }

void CollectingSink::on_campaign_end(const CampaignSummary& s) {
  ++ends;
  summary = s;
}

}  // namespace twm::api
