#include "api/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/json.h"
#include "util/failpoint.h"
#include "util/fs.h"

namespace twm::api {

std::optional<CheckpointFile> load_checkpoint(const std::string& path) {
  // An unreadable checkpoint is indistinguishable from an absent one by
  // contract ("valid or absent"): the campaign starts over.
  if (TWM_FAILPOINT("checkpoint.load")) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();

  JsonValue doc;
  try {
    doc = json_parse(buf.str());
  } catch (const JsonParseError&) {
    return std::nullopt;
  }
  if (!doc.is_object()) return std::nullopt;

  const JsonValue* version = doc.find("checkpoint");
  if (!version || version->as_u64() != std::optional<std::uint64_t>{1}) return std::nullopt;
  // A checkpoint from another engine revision may hold different verdicts;
  // resuming from it would mix runs.  Start over instead.
  const JsonValue* engine = doc.find("engine");
  if (!engine || !engine->is_string() || engine->as_string() != engine_revision())
    return std::nullopt;

  CheckpointFile file;
  const JsonValue* regions = doc.find("regions");
  if (!regions) return std::nullopt;
  const auto r = regions->as_u64();
  if (!r || *r == 0 || *r > UINT32_MAX) return std::nullopt;
  file.regions = static_cast<unsigned>(*r);

  const JsonValue* cells = doc.find("cells");
  if (!cells || !cells->is_array()) return std::nullopt;
  for (const JsonValue& item : cells->items()) {
    if (!item.is_object()) return std::nullopt;
    CheckpointEntry e;
    const JsonValue* identity = item.find("identity");
    const JsonValue* region = item.find("region");
    const JsonValue* units = item.find("units");
    if (!identity || !identity->is_string() || !region || !units || !units->is_array())
      return std::nullopt;
    const auto reg = region->as_u64();
    if (!reg || *reg >= file.regions) return std::nullopt;
    e.identity = identity->as_string();
    e.region = static_cast<unsigned>(*reg);
    for (const JsonValue& u : units->items()) {
      // [fault_index, detected_all, detected_any]
      if (!u.is_array() || u.items().size() != 3) return std::nullopt;
      const auto fi = u.items()[0].as_u64();
      const auto a = u.items()[1].as_u64();
      const auto y = u.items()[2].as_u64();
      if (!fi || !a || !y || *a > 1 || *y > 1) return std::nullopt;
      e.units.push_back({*fi, *a != 0, *y != 0});
    }
    file.cells.push_back(std::move(e));
  }
  return file;
}

bool save_checkpoint(const std::string& path, const CheckpointFile& file) {
  if (TWM_FAILPOINT("checkpoint.save")) return false;
  JsonValue doc = JsonValue::object();
  doc.set("checkpoint", JsonValue::number(1));
  doc.set("engine", JsonValue::string(std::string(engine_revision())));
  doc.set("regions", JsonValue::number(file.regions));
  JsonValue cells = JsonValue::array();
  for (const CheckpointEntry& e : file.cells) {
    JsonValue cell = JsonValue::object();
    cell.set("identity", JsonValue::string(e.identity));
    cell.set("region", JsonValue::number(e.region));
    JsonValue units = JsonValue::array();
    for (const CachedUnit& u : e.units) {
      JsonValue rec = JsonValue::array();
      rec.push_back(JsonValue::number(u.fault_index));
      rec.push_back(JsonValue::number(u.detected_all ? 1 : 0));
      rec.push_back(JsonValue::number(u.detected_any ? 1 : 0));
      units.push_back(std::move(rec));
    }
    cell.set("units", std::move(units));
    cells.push_back(std::move(cell));
  }
  doc.set("cells", std::move(cells));

  // Crash-atomic replace: unique tmp + fsync(file) + rename + fsync(dir),
  // so a reader, a crashed writer, or a power cut never sees a torn
  // checkpoint under the final name.
  return util::atomic_write_file(path, json_write(doc, /*pretty=*/false));
}

}  // namespace twm::api
