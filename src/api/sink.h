// Streaming result delivery for declarative campaigns.
//
// api::run_campaign (api/runner.h) feeds a ResultSink *during* the run —
// one record per fault as its unit's verdicts settle, not one aggregate
// after everything finished.  That turns a campaign from a batch job into
// a stream a scheduler can tail, persist, or abort:
//
//   on_campaign_begin   once, with the spec and the resolved SIMD width
//   on_seed_settled     one (fault, seed) verdict — opt-in via
//                       want_seed_records(), off by default (per-lane bit
//                       extraction costs real work on the packed backends)
//   on_unit             one fault's final all/any verdict
//   on_campaign_end     aggregate per scheme x class cells + wall time
//   on_error            once, when the campaign dies on an engine error —
//                       the typed api::Error, delivered right before
//                       run_campaign rethrows it as CampaignError; a
//                       failed campaign's stream ends in an error record,
//                       not a campaign_end
//   cancelled()         polled between units; returning true stops the
//                       campaign cooperatively (in-flight units finish,
//                       the record stream ends in a truncated prefix)
//
// A spec with run.deadline_ms set cancels ITSELF: the runner polls the
// deadline at the same between-units granularity, and the summary of a
// deadline-stopped campaign has cancelled:true AND timed_out:true — the
// record stream is the exact prefix of the fault-free stream that fit in
// the budget (the PR 4 cancellation contract, with a clock as the sink).
//
// Sink callbacks are SERIALIZED by the runner (a mutex around every event)
// — implementations need no locking of their own, but cancelled() is read
// from worker threads, so a cancelling sink flips an atomic.
//
// Three sinks ship: JSON-lines (machine tailing), CSV (spreadsheets), and
// the human tables the CLI always printed.
#ifndef TWM_API_SINK_H
#define TWM_API_SINK_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "api/error.h"
#include "api/spec.h"
#include "memsim/fault.h"

namespace twm::api {

// Resolved facts reported once at campaign start.
struct CampaignMeta {
  const CampaignSpec* spec = nullptr;
  // Lane-block width the packed backend resolved to (W64 for scalar).
  simd::Width resolved_simd = simd::Width::W64;
  // Faults the campaign will evaluate, across every scheme x class cell.
  std::size_t total_faults = 0;
};

// One fault's settled verdict within one scheme x class cell.
struct UnitRecord {
  SchemeKind scheme = SchemeKind::ProposedExact;
  ClassSel cls;
  std::size_t fault_index = 0;  // within the class's fault list
  const Fault* fault = nullptr;
  bool detected_all = false;  // under every evaluated content
  bool detected_any = false;  // under at least one content
};

// One (fault, seed) verdict (want_seed_records() sinks only).
struct SeedRecord {
  SchemeKind scheme = SchemeKind::ProposedExact;
  ClassSel cls;
  std::size_t fault_index = 0;
  std::uint64_t seed = 0;
  bool detected = false;
};

// Aggregate of one scheme x class cell.
struct CellResult {
  SchemeKind scheme = SchemeKind::ProposedExact;
  ClassSel cls;
  CoverageOutcome outcome;
};

struct CampaignSummary {
  std::vector<CellResult> cells;  // completed cells, spec order
  std::size_t total_faults = 0;   // planned, across all cells
  std::size_t units_emitted = 0;  // UnitRecords actually streamed
  bool cancelled = false;
  // Stopped by its own run.deadline_ms (implies cancelled).
  bool timed_out = false;
  double seconds = 0.0;
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void on_campaign_begin(const CampaignMeta& meta) { (void)meta; }
  virtual void on_unit(const UnitRecord& record) { (void)record; }
  virtual void on_seed_settled(const SeedRecord& record) { (void)record; }
  virtual void on_campaign_end(const CampaignSummary& summary) { (void)summary; }
  // Delivered once when the campaign aborts on an engine failure (after
  // which run_campaign throws CampaignError); never after on_campaign_end.
  virtual void on_error(const Error& error) { (void)error; }

  virtual bool want_seed_records() const { return false; }
  // Polled (possibly concurrently) between units.
  virtual bool cancelled() const { return false; }
};

// JSON-lines: one self-describing record per line, streamed as it happens.
// Line shapes: {"type":"campaign_begin",...}, {"type":"seed",...},
// {"type":"unit",...}, {"type":"campaign_end","cells":[...]}, and on
// abort {"type":"error","scope":...,"retryable":...,"message":...}.
class JsonLinesSink : public ResultSink {
 public:
  explicit JsonLinesSink(std::ostream& out, bool include_seed_records = false)
      : out_(out), include_seed_records_(include_seed_records) {}

  void on_campaign_begin(const CampaignMeta& meta) override;
  void on_unit(const UnitRecord& record) override;
  void on_seed_settled(const SeedRecord& record) override;
  void on_campaign_end(const CampaignSummary& summary) override;
  void on_error(const Error& error) override;
  bool want_seed_records() const override { return include_seed_records_; }

 private:
  std::ostream& out_;
  bool include_seed_records_;
};

// CSV: one header row (emitted at the first campaign's begin, never
// repeated — batch runs share one stream), then one row per unit.  The
// leading `campaign` column keeps rows of different batch entries apart.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}

  void on_campaign_begin(const CampaignMeta& meta) override;
  void on_unit(const UnitRecord& record) override;

 private:
  std::ostream& out_;
  std::string campaign_;  // current spec's name
  bool header_written_ = false;
};

// The human tables `twm_cli coverage` always printed: a header line at
// campaign start, then — once aggregates exist — either the per-class
// table (single scheme) or the scheme x class matrix, plus the faults/s
// footer.
class TableSink : public ResultSink {
 public:
  explicit TableSink(std::ostream& out) : out_(out) {}

  void on_campaign_begin(const CampaignMeta& meta) override;
  void on_campaign_end(const CampaignSummary& summary) override;

 private:
  std::ostream& out_;
  CampaignSpec spec_;  // copied at begin; needed to shape the end tables
};

// Test/tooling helper: records everything it sees and can cancel the
// campaign after a fixed number of unit records.
class CollectingSink : public ResultSink {
 public:
  explicit CollectingSink(std::size_t cancel_after_units = 0, bool seed_records = false)
      : cancel_after_units_(cancel_after_units), seed_records_(seed_records) {}

  void on_campaign_begin(const CampaignMeta& meta) override;
  void on_unit(const UnitRecord& record) override;
  void on_seed_settled(const SeedRecord& record) override;
  void on_campaign_end(const CampaignSummary& summary) override;
  void on_error(const Error& error) override { errors.push_back(error); }
  bool want_seed_records() const override { return seed_records_; }
  bool cancelled() const override { return cancelled_.load(std::memory_order_relaxed); }

  struct StoredUnit {
    SchemeKind scheme;
    ClassSel cls;
    std::size_t fault_index;
    bool detected_all, detected_any;
  };
  std::size_t begins = 0, ends = 0;
  std::vector<StoredUnit> units;
  std::vector<SeedRecord> seeds;
  std::vector<Error> errors;
  CampaignSummary summary;

 private:
  std::size_t cancel_after_units_;
  bool seed_records_;
  std::atomic<bool> cancelled_{false};
};

}  // namespace twm::api

#endif  // TWM_API_SINK_H
