// Structured campaign errors: category + retryability + detail.
//
// A production client deciding what to do with a failed campaign needs two
// bits the bare what() string cannot carry: WHAT failed (taxonomy below)
// and whether resubmitting the same spec can succeed.  Error is that value;
// it travels
//
//   * through ResultSink::on_error (a JSON-lines stream gains a typed
//     {"type":"error",...} record before the campaign aborts),
//   * inside CampaignError, the exception run_campaign wraps engine
//     failures in (existing catch(std::exception&) sites keep working),
//   * in the service protocol's error frames, which gain "retryable".
//
// Retrying is always safe on our side — specs are idempotent by
// construction (resubmission replays byte-identical cached cells with
// simulated:0) — so `retryable` means "the failure looks transient", not
// "retrying is permitted".
#ifndef TWM_API_ERROR_H
#define TWM_API_ERROR_H

#include <stdexcept>
#include <string>
#include <string_view>

namespace twm::api {

// The failure taxonomy.  Spec/Frame are request-shaped (the client sent
// something invalid — never retryable); Io/Resource/Timeout are
// environment-shaped (transient by default); Engine covers everything that
// escaped the engine itself.
enum class ErrorCategory { Frame, Spec, Io, Resource, Timeout, Engine };

std::string_view to_string(ErrorCategory c);

struct Error {
  ErrorCategory category = ErrorCategory::Engine;
  bool retryable = false;
  std::string detail;
};

// Maps an in-flight exception to a typed Error: CampaignError passes its
// payload through, SpecValidationError -> Spec (not retryable),
// std::bad_alloc -> Resource (retryable), std::logic_error -> Engine (an
// engine invariant broke; rerunning the same spec re-breaks it), anything
// else -> Engine retryable (assumed transient; retries are idempotent).
Error classify_exception(const std::exception& e);

// The exception form of Error.  what() is "category: detail".
class CampaignError : public std::runtime_error {
 public:
  explicit CampaignError(Error e);
  const Error& error() const { return error_; }

 private:
  Error error_;
};

}  // namespace twm::api

#endif  // TWM_API_ERROR_H
