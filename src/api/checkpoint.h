// Campaign checkpoint/resume (the persistence layer of region sharding).
//
// A region-sharded campaign makes progress in region-sized steps; a
// checkpoint file records, per scheme x class cell, the unit records of
// every completed region.  run_campaign (api/runner.h), when given a
// checkpoint path, rewrites the file after each region settles (atomic
// tmp + rename, like the service result cache) and, on a later run of the
// SAME spec, replays completed regions through the sink instead of
// re-simulating them — a preempted day-long campaign resumes where it
// stopped.
//
// Safety mirrors the content-addressed cache: every entry stores the
// verbatim cell identity JSON (engine revision, march, geometry, scheme,
// class, seeds) and is consulted only on an exact string match with a
// verified fault-index permutation for its region; anything else — a
// foreign file, a stale engine revision, a different region count, a
// truncated write — silently degrades to "not done yet".
#ifndef TWM_API_CHECKPOINT_H
#define TWM_API_CHECKPOINT_H

#include <optional>
#include <string>
#include <vector>

#include "api/runner.h"

namespace twm::api {

// Unit records of one completed region of one cell.
struct CheckpointEntry {
  std::string identity;  // verbatim cell_identity_json of the cell
  unsigned region = 0;
  std::vector<CachedUnit> units;  // emission order of the original run
};

struct CheckpointFile {
  unsigned regions = 1;  // region count the progress is denominated in
  std::vector<CheckpointEntry> cells;
};

// Parses a checkpoint file.  Returns nullopt when the file is missing,
// malformed, or was written by a different engine revision (entries of a
// resumable file are still validated per cell by the consumer).
std::optional<CheckpointFile> load_checkpoint(const std::string& path);

// Serializes and crash-atomically replaces `path` (unique tmp + fsync +
// rename + directory fsync, util/fs.h; a crashed writer or a power cut
// never leaves a half-written checkpoint under the final name).  Returns
// false on failure — the previous checkpoint, if any, is still intact, so
// callers warn and continue rather than abort (the campaign itself is
// unharmed; only resumability of not-yet-saved regions is lost).
bool save_checkpoint(const std::string& path, const CheckpointFile& file);

}  // namespace twm::api

#endif  // TWM_API_CHECKPOINT_H
