#include "api/error.h"

#include <new>

#include "api/spec.h"

namespace twm::api {

std::string_view to_string(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::Frame: return "frame";
    case ErrorCategory::Spec: return "spec";
    case ErrorCategory::Io: return "io";
    case ErrorCategory::Resource: return "resource";
    case ErrorCategory::Timeout: return "timeout";
    case ErrorCategory::Engine: return "engine";
  }
  return "engine";
}

CampaignError::CampaignError(Error e)
    : std::runtime_error(std::string(to_string(e.category)) + ": " + e.detail),
      error_(std::move(e)) {}

Error classify_exception(const std::exception& e) {
  if (const auto* ce = dynamic_cast<const CampaignError*>(&e)) return ce->error();
  if (dynamic_cast<const SpecValidationError*>(&e))
    return {ErrorCategory::Spec, false, e.what()};
  if (dynamic_cast<const std::bad_alloc*>(&e))
    return {ErrorCategory::Resource, true, "allocation failed"};
  if (dynamic_cast<const std::logic_error*>(&e))
    return {ErrorCategory::Engine, false, e.what()};
  return {ErrorCategory::Engine, true, e.what()};
}

}  // namespace twm::api
