// Executes a CampaignSpec: the one entry point every front-end drives.
//
//   CampaignSpec spec = api::spec_from_json(file_text);
//   api::JsonLinesSink sink(std::cout);
//   api::CampaignSummary summary = api::run_campaign(spec, &sink);
//
// run_campaign validates the spec (throwing SpecValidationError with the
// offending field paths), resolves the march and the SIMD width, builds
// each fault class's list once, then runs one CampaignRunner call per
// scheme x class cell, streaming per-unit records into the sink as worker
// threads settle them.  The sink can cancel cooperatively at any point;
// the summary then carries the completed prefix and cancelled = true.
#ifndef TWM_API_RUNNER_H
#define TWM_API_RUNNER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnosis.h"
#include "api/sink.h"
#include "api/spec.h"

namespace twm::api {

// ---- content-addressed result cache --------------------------------------
//
// run_campaign consults a CellCache (when given one) before simulating each
// scheme x fault-class cell.  A hit replays the stored unit records through
// the sink byte-identically to the original live run — same fault order,
// same verdicts, same describe() strings (the fault list is rebuilt
// deterministically from the spec).  A miss runs the cell live and offers
// the completed record stream back to the cache.

// One streamed unit record of a completed cell, in the emission order of
// the run that produced it.
struct CachedUnit {
  std::uint64_t fault_index = 0;  // within the cell's fault list
  bool detected_all = false;
  bool detected_any = false;

  friend bool operator==(const CachedUnit&, const CachedUnit&) = default;
};

struct CellRecords {
  std::vector<CachedUnit> units;
};

// Storage interface (implemented by service::ResultCache — memory LRU +
// disk).  Keys come from api::cell_key; `identity` is the canonical cell
// JSON the key was hashed from, and implementations MUST verify it on
// lookup so a hash collision or corrupted entry degrades to a miss, never
// to wrong results.  Calls arrive from whatever thread runs the campaign —
// implementations serialize internally.
class CellCache {
 public:
  virtual ~CellCache() = default;

  virtual std::optional<CellRecords> lookup(const std::string& key,
                                            const std::string& identity) = 0;
  virtual void store(const std::string& key, const std::string& identity,
                     const CellRecords& records) = 0;
};

// Cache effectiveness of one run_campaign call — the counters that PROVE a
// resubmitted spec re-simulated nothing (cells_simulated == 0).
struct CacheStats {
  std::size_t cells_total = 0;      // scheme x class cells the spec denotes
  std::size_t cells_cached = 0;     // served by replaying stored records
  std::size_t cells_simulated = 0;  // ran live (includes cancelled partials)
  std::size_t faults_replayed = 0;  // unit records replayed from the cache
};

// Runs the whole campaign a spec denotes.  `sink` may be null (aggregates
// only).  With a `cache`, each cell is served by replay when its content
// key hits (sinks that want seed records bypass the lookup — cached cells
// carry no per-seed stream — but completed live cells are still stored).
// With a non-empty `checkpoint_path`, per-region progress is persisted
// there after every region settles (crash-atomic replace; see
// api/checkpoint.h) and a matching file from an interrupted run of the
// same spec resumes it: completed regions replay through the sink instead
// of re-simulating.  A failed checkpoint save warns on stderr and the
// campaign continues — persistence is best-effort, results are not.
//
// A spec with run.deadline_ms != 0 stops itself at the first between-units
// cancellation point past the budget; the summary then has cancelled AND
// timed_out set and carries the exact prefix that fit (no exception — a
// deadline is an outcome, not an error).
//
// Throws SpecValidationError on an invalid spec.  Every other failure
// (golden-lane corruption, pool failures, allocation exhaustion) is
// classified into a typed api::Error, delivered to the sink via on_error,
// and rethrown as CampaignError — catch sites that only need the message
// keep catching std::exception, ones that route on retryability catch
// CampaignError.
CampaignSummary run_campaign(const CampaignSpec& spec, ResultSink* sink = nullptr,
                             CellCache* cache = nullptr, CacheStats* cache_stats = nullptr,
                             const std::string& checkpoint_path = {});

// Diagnosis front-end of the same surface: localizes every fault of the
// spec's class selection with the transparent TWMarch session, using the
// spec's geometry, march and thread count.  EVERY requested seed is
// diagnosed — a fault invisible under one content (e.g. RET to the value
// the cell already holds) can be localizable under another; each fault
// reports the diagnosis of the first seed, in spec order, that observed
// it.  (Diagnosis is scalar by construction — it replays read streams —
// so the spec's backend/simd request is not consulted.)
std::vector<Diagnosis> diagnose_campaign(const CampaignSpec& spec);

}  // namespace twm::api

#endif  // TWM_API_RUNNER_H
