// Executes a CampaignSpec: the one entry point every front-end drives.
//
//   CampaignSpec spec = api::spec_from_json(file_text);
//   api::JsonLinesSink sink(std::cout);
//   api::CampaignSummary summary = api::run_campaign(spec, &sink);
//
// run_campaign validates the spec (throwing SpecValidationError with the
// offending field paths), resolves the march and the SIMD width, builds
// each fault class's list once, then runs one CampaignRunner call per
// scheme x class cell, streaming per-unit records into the sink as worker
// threads settle them.  The sink can cancel cooperatively at any point;
// the summary then carries the completed prefix and cancelled = true.
#ifndef TWM_API_RUNNER_H
#define TWM_API_RUNNER_H

#include <cstdint>
#include <vector>

#include "analysis/diagnosis.h"
#include "api/sink.h"
#include "api/spec.h"

namespace twm::api {

// Runs the whole campaign a spec denotes.  `sink` may be null (aggregates
// only).  Throws SpecValidationError on an invalid spec; engine errors
// (golden-lane corruption, pool failures) propagate unchanged.
CampaignSummary run_campaign(const CampaignSpec& spec, ResultSink* sink = nullptr);

// Diagnosis front-end of the same surface: localizes every fault of the
// spec's class selection with the transparent TWMarch session, using the
// spec's geometry, march, thread count and first seed.  (Diagnosis is
// scalar by construction — it replays read streams — so the spec's
// backend/simd request is not consulted.)
std::vector<Diagnosis> diagnose_campaign(const CampaignSpec& spec);

}  // namespace twm::api

#endif  // TWM_API_RUNNER_H
