// Minimal JSON document model for the public campaign API.
//
// CampaignSpec files are plain JSON (RFC 8259 subset: objects, arrays,
// strings, integers, booleans, null).  The repo deliberately carries no
// third-party JSON dependency, so this header provides the little that the
// spec layer needs:
//
//   * parse()    text -> JsonValue tree, with line/column in parse errors;
//   * numbers keep their source text, so 64-bit seeds round-trip exactly
//     (a double would silently lose precision above 2^53);
//   * a Writer that emits deterministic, diffable output (fixed key order
//     is the caller's job — JsonValue objects preserve insertion order).
//
// This is a *document* model, not a general-purpose JSON library: no
// floating-point canonicalization, no \uXXXX emission beyond what escaping
// requires, no streaming parse.  Everything the spec grammar needs, nothing
// more.
#ifndef TWM_API_JSON_H
#define TWM_API_JSON_H

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace twm::api {

// Thrown by parse() with a "line L, column C: reason" message.
class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;  // null

  static JsonValue boolean(bool b);
  static JsonValue number(std::uint64_t v);
  static JsonValue number_raw(std::string text);  // verbatim numeric token
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const;
  const std::string& as_string() const;
  // Numeric token as an unsigned 64-bit integer; nullopt when the token is
  // negative, fractional, exponential, or out of range.
  std::optional<std::uint64_t> as_u64() const;
  const std::string& number_text() const;

  const std::vector<JsonValue>& items() const;  // array
  std::vector<JsonValue>& items();
  void push_back(JsonValue v);

  // Object members, in insertion order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  // First member named `key`, or nullptr.
  const JsonValue* find(const std::string& key) const;
  void set(std::string key, JsonValue v);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::string scalar_;  // Number: raw token; String: decoded text
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses exactly one JSON document (trailing whitespace allowed, trailing
// garbage is an error).  Containers may nest at most 256 levels deep —
// beyond that the parser throws instead of recursing off the stack, so a
// hostile "[[[[..." document from a socket cannot crash the process.
// Throws JsonParseError.
JsonValue json_parse(const std::string& text);

// Serializes with 2-space indentation when `pretty`, else compact one-line
// form.  Object members appear in insertion order.
std::string json_write(const JsonValue& v, bool pretty = false);

// "..." with JSON escaping — handy for hand-assembled writers.
std::string json_quote(const std::string& s);

}  // namespace twm::api

#endif  // TWM_API_JSON_H
