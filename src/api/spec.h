// twm::api — the stable public surface every front-end speaks.
//
// A coverage campaign is a *value*: CampaignSpec captures everything that
// defines one — memory geometry, the bit-oriented march, the scheme set,
// the fault-class selection, the content seeds, and the execution request
// (backend / threads / SIMD width).  Specs are
//
//   * validated field by field (validate() returns structured SpecErrors
//     naming the offending path instead of one scattered runtime_error),
//   * serialized to JSON and parsed back round-trip exact, singly or as a
//     batch ([spec, spec, ...]) so campaigns can be stored, diffed, queued
//     and replayed,
//   * executed by api::run_campaign (api/runner.h), which streams per-unit
//     results into a ResultSink (api/sink.h).
//
// The canonical spelling of every enum the spec serializes lives here too:
// parse_backend / parse_scheme / parse_class / simd::parse_request are THE
// parsers — the CLI, the benches and the JSON grammar all call them, and
// parse(to_string(x)) == x holds for every value (tests/api_spec_test.cpp).
#ifndef TWM_API_SPEC_H
#define TWM_API_SPEC_H

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "core/scheme_session.h"
#include "core/simd.h"
#include "march/test.h"

namespace twm::api {

// One validation finding: the dotted path of the offending field (JSON
// grammar coordinates, e.g. "memory.words", "schemes[2]", "run.threads")
// and a human-readable message.
struct SpecError {
  std::string path;
  std::string message;

  friend bool operator==(const SpecError&, const SpecError&) = default;
};

std::string to_string(const SpecError& e);  // "path: message"

// Carrier for one-or-many SpecErrors across a throwing boundary; what()
// joins them line by line.
class SpecValidationError : public std::runtime_error {
 public:
  explicit SpecValidationError(std::vector<SpecError> errors);
  const std::vector<SpecError>& errors() const { return errors_; }

 private:
  std::vector<SpecError> errors_;
};

// Fault-class selector: a generator class plus (for coupling faults) the
// aggressor/victim placement scope.  Canonical spellings: "saf", "tf",
// "ret", "af", "cfst", "cfid", "cfin" (scope Both), "cfid:inter",
// "cfid:intra" (and likewise for cfst/cfin).
enum class ClassKind { Saf, Tf, Ret, CFst, CFid, CFin, Af };

inline constexpr ClassKind kAllClassKinds[] = {
    ClassKind::Saf,  ClassKind::Tf,   ClassKind::Ret, ClassKind::CFst,
    ClassKind::CFid, ClassKind::CFin, ClassKind::Af,
};

struct ClassSel {
  ClassKind kind = ClassKind::Saf;
  CfScope scope = CfScope::Both;  // coupling-fault kinds only
  // Deterministic sample size, spelled "saf@2048" / "cfid:inter@1024";
  // 0 = exhaustive (the canonical spelling omits "@0", so every pre-sampling
  // spec and cache identity is unchanged).  Exhaustive fault spaces are
  // quadratic in the cell count for CFs/AFs and linear for the rest — at
  // huge geometries a bounded, reproducible sample is the only runnable
  // denominator.  Sampling is part of the cell identity: the same selector
  // always denotes the same fault list.
  std::uint32_t sample = 0;

  bool is_coupling() const {
    return kind == ClassKind::CFst || kind == ClassKind::CFid || kind == ClassKind::CFin;
  }

  friend bool operator==(const ClassSel&, const ClassSel&) = default;
};

// Everything that defines a campaign.  Defaults mirror the CLI's: packed
// backend, one thread, auto SIMD width.
struct CampaignSpec {
  std::string name;  // optional label, carried through sinks

  // Memory geometry (JSON: "memory": {"words": N, "width": B}).
  std::size_t words = 0;
  unsigned width = 0;

  // The march under test — exactly one of:
  //   march      library name ("March C-", ...; JSON: "march"), or
  //   march_ops  inline definition, one march element per string in the
  //              march DSL ("any(w0)", "up(r0,w1)"; JSON: "march_ops").
  //              The combined test must satisfy is_consistent_bit_march —
  //              the same universe the catalog and random_march draw from.
  std::string march;
  std::vector<std::string> march_ops;
  std::vector<SchemeKind> schemes;  // at least one; order preserved
  std::vector<ClassSel> classes;    // at least one; order preserved
  std::vector<std::uint64_t> seeds;  // at least one; 0 = all-zero contents

  // Execution request (JSON: "run": {...}).
  CoverageBackend backend = CoverageBackend::Packed;
  unsigned threads = 1;
  simd::Request simd = simd::Request::Auto;
  // Fault-universe scheduling: "repack" (default — survivor repacking,
  // mid-session settle-exit, structural collapsing) or "dense" (static
  // batches, the byte-identical debug/reference scheduler).
  ScheduleMode schedule = ScheduleMode::Repack;
  // Structural fault collapsing (repack only); off isolates the
  // repacking/settle-exit win for differential attribution.
  bool collapse = true;
  // Address-region sharding (power of two, <= words; 1 = off).  Execution-
  // transparent like schedule/collapse: verdicts, records and cache
  // identities are unchanged — only the working-set bound and the
  // checkpoint grain move.  Serialized only when != 1.
  unsigned regions = 1;
  // Wall-clock budget in milliseconds (0 = none).  Enforced cooperatively
  // at the between-units cancellation points: a campaign past its deadline
  // stops claiming work, emits the exact prefix of unit records that fit,
  // and ends with campaign_end{cancelled:true,timed_out:true} — the PR 4
  // cancellation contract with a clock as the sink.  Part of the run block
  // (not the cell identity), so a deadline never splits the result cache;
  // serialized only when != 0.
  std::uint64_t deadline_ms = 0;

  CoverageOptions options() const {
    return {backend, threads, simd, schedule, collapse, regions};
  }

  friend bool operator==(const CampaignSpec&, const CampaignSpec&) = default;
};

// Field-by-field validation; empty result means the spec is runnable on
// this host (forced SIMD widths are checked against the CPU).
std::vector<SpecError> validate(const CampaignSpec& spec);

// Throws SpecValidationError when validate() is non-empty.
void require_valid(const CampaignSpec& spec);

// ---- canonical enum spellings ------------------------------------------
//
// to_string(CoverageBackend) lives in analysis/campaign.h and
// simd::to_string(simd::Request) in core/simd.h; these are their inverse
// parsers plus the scheme/class vocabularies.  All return nullopt on any
// unknown spelling — no partial matches, no case folding.

std::optional<CoverageBackend> parse_backend(std::string_view s);

// "dense" | "repack" (to_string(ScheduleMode) is its inverse).
std::optional<ScheduleMode> parse_schedule(std::string_view s);

// "on" | "off" — the canonical spelling of boolean flags (--collapse) on
// every flag surface; nullopt on anything else.
std::optional<bool> parse_on_off(std::string_view s);

// Short scheme identifiers, the CLI's spellings: "ref", "womarch", "twm",
// "twm-misr", "sym", "tsmarch", "s1", "tomt".  (to_string(SchemeKind) is
// the human display name and is NOT parseable; scheme_id() is.)
std::string scheme_id(SchemeKind k);
std::optional<SchemeKind> parse_scheme(std::string_view s);

std::string to_string(const ClassSel& c);     // canonical spelling
std::string class_label(const ClassSel& c);   // table label ("CFid inter")
std::optional<ClassSel> parse_class(std::string_view s);

// Comma-separated list helpers the flag surfaces share.  parse_schemes
// additionally accepts the spelling "all" (every SchemeKind, paper order).
std::optional<std::vector<SchemeKind>> parse_schemes(std::string_view csv);
std::optional<std::vector<ClassSel>> parse_classes(std::string_view csv);

// Comma-separated seed list ("0,1,2"; empty pieces dropped).  Returns
// nullopt when any piece is not a pure-decimal uint64 ("x", "-1", " 1",
// "2x", "1.5", overflow); `bad_token`, when provided, receives the
// offending piece.  An all-empty input parses to an empty vector — the
// caller decides whether that is an error.
std::optional<std::vector<std::uint64_t>> parse_seeds(std::string_view csv,
                                                      std::string* bad_token = nullptr);

// The march a spec denotes: the library entry named by `march`, or the
// inline `march_ops` elements parsed through the march DSL.  Throws
// SpecValidationError when the march cannot be resolved (unknown name,
// unparseable element) — validate() reports the same problems without
// throwing.
MarchTest resolve_march(const CampaignSpec& spec);

// What to call the spec's march in human- and machine-readable output (and
// in cache identities): the library name, or for inline specs the canonical
// printed body (parse -> print normalizes whitespace, so every spelling of
// the same march shares cache cells; the leading '{' keeps bodies disjoint
// from catalog names).
std::string march_display(const CampaignSpec& spec);

// The faults a class selector denotes in an N x B memory (exhaustive
// generators from analysis/fault_list.h; RET uses hold_units = 1).  A
// selector with sample != 0 denotes a deterministic subset: an even stride
// over the exhaustive enumeration order for SAF/TF/RET/AF (decoded without
// materializing the full list) and a fixed-seed sampled_cfs draw for
// coupling classes — the same selector always denotes the same faults, so
// sampled cells stay content-addressable.
std::vector<Fault> build_fault_list(const ClassSel& c, std::size_t words, unsigned width);

// ---- content addressing ---------------------------------------------------
//
// A campaign's results are cacheable because the spec is a canonically
// serializable value: hash the verdict-relevant fields and the engine
// revision, and equal keys mean equal result streams.  The grain is one
// (scheme, fault-class, seed-set) CELL — a spec that adds one fault class
// re-simulates only the new cells, everything else replays.

// Folded into every cell identity; bump whenever a change can alter ANY
// verdict (fault semantics, scheme sessions, march library, fault-list
// generators).  Pure perf/scheduling work keeps the revision — dense and
// repack, scalar and packed, every SIMD width are verdict-identical by
// construction, so cached cells are shared across all of them.
std::string_view engine_revision();

// Canonical identity of one scheme x class cell: compact JSON of exactly
// the fields that determine its verdicts (engine revision, march,
// geometry, scheme, class, seeds — in that fixed key order).  `name` and
// the whole `run` request are deliberately excluded.  The march field is
// the library NAME for catalog specs (pre-inline identities stay
// byte-stable) and the canonical printed BODY ("{ any(w0); up(r0,w1) }")
// for inline specs — so formatting variants of the same march share cache
// cells, and a body can never collide with a catalog name.
std::string cell_identity_json(const CampaignSpec& spec, SchemeKind scheme,
                               const ClassSel& cls);

// Content address of an identity string: 32 lowercase hex chars (two
// chained 64-bit FNV-1a passes).  Collision-safe use requires storing the
// identity alongside the value and verifying on lookup — api::CellCache
// implementations do (src/service/cache.h).
std::string content_key(std::string_view identity);

// content_key(cell_identity_json(...)) — the cache key of one cell.
std::string cell_key(const CampaignSpec& spec, SchemeKind scheme, const ClassSel& cls);

// ---- JSON ---------------------------------------------------------------

// Canonical serialization (member order fixed; round-trip exact:
// spec_from_json(to_json(s)) == s).
std::string to_json(const CampaignSpec& spec, bool pretty = true);
std::string to_json(const std::vector<CampaignSpec>& batch, bool pretty = true);

// Parses one spec object.  Malformed JSON throws JsonParseError; structural
// or spelling problems throw SpecValidationError whose errors() name the
// offending paths.  Parsing does NOT run validate() — a parsed spec may
// still be semantically invalid (e.g. zero words).
CampaignSpec spec_from_json(const std::string& text);

// Same grammar, from an already-parsed document node (the service protocol
// embeds specs inside request frames and parses the frame once).
class JsonValue;
CampaignSpec spec_from_json_value(const JsonValue& v);

// Accepts either a single spec object or a batch array [spec, spec, ...].
std::vector<CampaignSpec> specs_from_json(const std::string& text);

}  // namespace twm::api

#endif  // TWM_API_SPEC_H
