#include "api/spec.h"

#include <algorithm>

#include "api/json.h"
#include "march/generator.h"
#include "march/library.h"
#include "march/parser.h"
#include "march/printer.h"

namespace twm::api {

namespace {

std::string join_errors(const std::vector<SpecError>& errors) {
  std::string out;
  for (const SpecError& e : errors) {
    if (!out.empty()) out += '\n';
    out += to_string(e);
  }
  return out;
}

// One inline march element ("up(r0,w1)") parsed through the march DSL.  A
// multi-element string ("up(r0); down(r1)") is rejected so march_ops
// entries stay one element each — the grain the round-trip and the cache
// identity are defined over.
std::optional<MarchElement> parse_inline_element(const std::string& text,
                                                 std::string* error) {
  try {
    MarchTest t = parse_march("{ " + text + " }");
    if (t.elements.size() != 1) {
      if (error) *error = "must be a single march element";
      return std::nullopt;
    }
    return std::move(t.elements.front());
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace

std::string to_string(const SpecError& e) { return e.path + ": " + e.message; }

SpecValidationError::SpecValidationError(std::vector<SpecError> errors)
    : std::runtime_error(join_errors(errors)), errors_(std::move(errors)) {}

std::vector<SpecError> validate(const CampaignSpec& spec) {
  std::vector<SpecError> errors;
  if (spec.words == 0) errors.push_back({"memory.words", "must be at least 1"});
  if (spec.width == 0) errors.push_back({"memory.width", "must be at least 1"});
  if (spec.march.empty() && spec.march_ops.empty()) {
    errors.push_back({"march", "is required (library name, or inline march_ops)"});
  } else if (!spec.march.empty() && !spec.march_ops.empty()) {
    errors.push_back({"march_ops", "cannot be combined with march (pick one)"});
  } else if (!spec.march.empty()) {
    const auto names = march_names();
    if (std::find(names.begin(), names.end(), spec.march) == names.end())
      errors.push_back({"march", "unknown march '" + spec.march + "' (see `twm_cli list`)"});
  } else {
    MarchTest t;
    bool parsed_all = true;
    for (std::size_t i = 0; i < spec.march_ops.size(); ++i) {
      std::string why;
      auto elem = parse_inline_element(spec.march_ops[i], &why);
      if (elem) {
        t.elements.push_back(std::move(*elem));
      } else {
        errors.push_back({"march_ops[" + std::to_string(i) + "]", why});
        parsed_all = false;
      }
    }
    if (parsed_all && !is_consistent_bit_march(t))
      errors.push_back({"march_ops",
                        "not a consistent bit-oriented march (must start with a "
                        "write; every read must expect the last written value)"});
  }
  if (spec.schemes.empty()) errors.push_back({"schemes", "at least one scheme is required"});
  if (spec.classes.empty())
    errors.push_back({"classes", "at least one fault class is required"});
  if (spec.seeds.empty()) errors.push_back({"seeds", "at least one content seed is required"});
  if (spec.threads == 0) errors.push_back({"run.threads", "must be at least 1"});
  if (spec.regions == 0) {
    errors.push_back({"run.regions", "must be at least 1"});
  } else if ((spec.regions & (spec.regions - 1)) != 0) {
    errors.push_back({"run.regions", "must be a power of two"});
  } else if (spec.words != 0 && spec.regions > spec.words) {
    errors.push_back({"run.regions", "must not exceed memory.words"});
  }
  if (spec.backend == CoverageBackend::Packed && spec.simd != simd::Request::Auto) {
    // A forced width must be executable here; Auto always resolves.
    try {
      simd::resolve(spec.simd);
    } catch (const std::runtime_error& e) {
      errors.push_back({"run.simd", e.what()});
    }
  }
  return errors;
}

void require_valid(const CampaignSpec& spec) {
  auto errors = validate(spec);
  if (!errors.empty()) throw SpecValidationError(std::move(errors));
}

// ---- canonical enum spellings ------------------------------------------

std::optional<CoverageBackend> parse_backend(std::string_view s) {
  if (s == "scalar") return CoverageBackend::Scalar;
  if (s == "packed") return CoverageBackend::Packed;
  return std::nullopt;
}

std::optional<ScheduleMode> parse_schedule(std::string_view s) {
  if (s == "dense") return ScheduleMode::Dense;
  if (s == "repack") return ScheduleMode::Repack;
  return std::nullopt;
}

std::optional<bool> parse_on_off(std::string_view s) {
  if (s == "on") return true;
  if (s == "off") return false;
  return std::nullopt;
}

std::string scheme_id(SchemeKind k) {
  switch (k) {
    case SchemeKind::NontransparentReference: return "ref";
    case SchemeKind::WordOrientedMarch: return "womarch";
    case SchemeKind::ProposedExact: return "twm";
    case SchemeKind::ProposedMisr: return "twm-misr";
    case SchemeKind::ProposedSymmetricXor: return "sym";
    case SchemeKind::TsmarchOnly: return "tsmarch";
    case SchemeKind::Scheme1Exact: return "s1";
    case SchemeKind::TomtModel: return "tomt";
  }
  return "?";
}

std::optional<SchemeKind> parse_scheme(std::string_view s) {
  for (SchemeKind k : kAllSchemes)
    if (s == scheme_id(k)) return k;
  return std::nullopt;
}

std::string to_string(const ClassSel& c) {
  std::string base;
  switch (c.kind) {
    case ClassKind::Saf: base = "saf"; break;
    case ClassKind::Tf: base = "tf"; break;
    case ClassKind::Ret: base = "ret"; break;
    case ClassKind::CFst: base = "cfst"; break;
    case ClassKind::CFid: base = "cfid"; break;
    case ClassKind::CFin: base = "cfin"; break;
    case ClassKind::Af: base = "af"; break;
  }
  if (c.is_coupling() && c.scope != CfScope::Both)
    base += c.scope == CfScope::InterWord ? ":inter" : ":intra";
  if (c.sample != 0) base += "@" + std::to_string(c.sample);
  return base;
}

std::string class_label(const ClassSel& c) {
  std::string base;
  switch (c.kind) {
    case ClassKind::Saf: base = "SAF"; break;
    case ClassKind::Tf: base = "TF"; break;
    case ClassKind::Ret: base = "RET"; break;
    case ClassKind::CFst: base = "CFst"; break;
    case ClassKind::CFid: base = "CFid"; break;
    case ClassKind::CFin: base = "CFin"; break;
    case ClassKind::Af: base = "AF"; break;
  }
  if (c.is_coupling() && c.scope != CfScope::Both)
    base += c.scope == CfScope::InterWord ? " inter" : " intra";
  if (c.sample != 0) base += " @" + std::to_string(c.sample);
  return base;
}

std::optional<ClassSel> parse_class(std::string_view s) {
  ClassSel sel;
  // Trailing "@N" = deterministic sample size (pure decimal, >= 1).
  const auto at = s.find('@');
  if (at != std::string_view::npos) {
    const std::string_view digits = s.substr(at + 1);
    if (digits.empty()) return std::nullopt;
    std::uint64_t n = 0;
    for (char c : digits) {
      if (c < '0' || c > '9') return std::nullopt;
      n = n * 10 + static_cast<std::uint64_t>(c - '0');
      if (n > UINT32_MAX) return std::nullopt;
    }
    if (n == 0) return std::nullopt;
    sel.sample = static_cast<std::uint32_t>(n);
    s = s.substr(0, at);
  }
  const auto colon = s.find(':');
  const std::string_view base = colon == std::string_view::npos ? s : s.substr(0, colon);
  if (base == "saf")
    sel.kind = ClassKind::Saf;
  else if (base == "tf")
    sel.kind = ClassKind::Tf;
  else if (base == "ret")
    sel.kind = ClassKind::Ret;
  else if (base == "cfst")
    sel.kind = ClassKind::CFst;
  else if (base == "cfid")
    sel.kind = ClassKind::CFid;
  else if (base == "cfin")
    sel.kind = ClassKind::CFin;
  else if (base == "af")
    sel.kind = ClassKind::Af;
  else
    return std::nullopt;
  if (colon != std::string_view::npos) {
    if (!sel.is_coupling()) return std::nullopt;  // scope only applies to CFs
    const std::string_view scope = s.substr(colon + 1);
    if (scope == "inter")
      sel.scope = CfScope::InterWord;
    else if (scope == "intra")
      sel.scope = CfScope::IntraWord;
    else
      return std::nullopt;
  }
  return sel;
}

namespace {

// Splits on commas, dropping empty pieces ("a,,b" == "a,b").
std::vector<std::string_view> split_csv(std::string_view s) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? s.size() : comma;
    if (end > start) parts.push_back(s.substr(start, end - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return parts;
}

}  // namespace

std::optional<std::vector<SchemeKind>> parse_schemes(std::string_view csv) {
  if (csv == "all")
    return std::vector<SchemeKind>(std::begin(kAllSchemes), std::end(kAllSchemes));
  std::vector<SchemeKind> out;
  for (std::string_view part : split_csv(csv)) {
    const auto k = parse_scheme(part);
    if (!k) return std::nullopt;
    out.push_back(*k);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

std::optional<std::vector<ClassSel>> parse_classes(std::string_view csv) {
  std::vector<ClassSel> out;
  for (std::string_view part : split_csv(csv)) {
    const auto c = parse_class(part);
    if (!c) return std::nullopt;
    out.push_back(*c);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

std::optional<std::vector<std::uint64_t>> parse_seeds(std::string_view csv,
                                                      std::string* bad_token) {
  std::vector<std::uint64_t> out;
  for (std::string_view part : split_csv(csv)) {
    // Pure decimal digits only: no sign, no whitespace, no trailing junk,
    // no overflow wrap-around (everything std::stoull would let through).
    std::uint64_t value = 0;
    bool ok = true;
    for (char c : part) {
      if (c < '0' || c > '9') {
        ok = false;
        break;
      }
      const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
      if (value > (UINT64_MAX - digit) / 10) {
        ok = false;
        break;
      }
      value = value * 10 + digit;
    }
    if (!ok) {
      if (bad_token) *bad_token = std::string(part);
      return std::nullopt;
    }
    out.push_back(value);
  }
  return out;
}

namespace {

std::vector<Fault> exhaustive_fault_list(const ClassSel& c, std::size_t words,
                                         unsigned width) {
  switch (c.kind) {
    case ClassKind::Saf: return all_safs(words, width);
    case ClassKind::Tf: return all_tfs(words, width);
    case ClassKind::Ret: return all_rets(words, width, 1);
    case ClassKind::CFst: return all_cfs(words, width, FaultClass::CFst, c.scope);
    case ClassKind::CFid: return all_cfs(words, width, FaultClass::CFid, c.scope);
    case ClassKind::CFin: return all_cfs(words, width, FaultClass::CFin, c.scope);
    case ClassKind::Af: return all_afs(words);
  }
  throw std::logic_error("build_fault_list: unknown class kind");
}

// Fault at position `i` of the exhaustive enumeration of a non-coupling
// class — the decode of all_safs/all_tfs/all_rets/all_afs' loop order,
// without materializing the list.
Fault decode_enumerated_fault(const ClassSel& c, std::size_t words, unsigned width,
                              std::uint64_t i) {
  if (c.kind == ClassKind::Af) {
    if (i < words) return Fault::af_no_access(static_cast<std::size_t>(i));
    const std::uint64_t k = i - words;
    const std::size_t w = static_cast<std::size_t>(k / (words - 1));
    std::size_t also = static_cast<std::size_t>(k % (words - 1));
    if (also >= w) ++also;
    return Fault::af_alias(w, also);
  }
  const CellAddr cell{static_cast<std::size_t>(i / (2ull * width)),
                      static_cast<unsigned>((i / 2) % width)};
  const bool second = (i & 1) != 0;
  switch (c.kind) {
    case ClassKind::Saf: return Fault::saf(cell, second);
    case ClassKind::Tf: return Fault::tf(cell, second ? Transition::Down : Transition::Up);
    case ClassKind::Ret: return Fault::ret(cell, second, 1);
    default: throw std::logic_error("decode_enumerated_fault: class not enumerable");
  }
}

}  // namespace

std::vector<Fault> build_fault_list(const ClassSel& c, std::size_t words, unsigned width) {
  if (c.sample == 0) return exhaustive_fault_list(c, words, width);

  if (c.is_coupling()) {
    // Fixed-seed draw: the sampled list is a pure function of the selector
    // and the geometry, as the cell identity requires.
    Rng rng(0x7477u * 2654435761ull + c.sample);
    const FaultClass cls = c.kind == ClassKind::CFst   ? FaultClass::CFst
                           : c.kind == ClassKind::CFid ? FaultClass::CFid
                                                       : FaultClass::CFin;
    return sampled_cfs(words, width, cls, c.scope, c.sample, rng);
  }

  const std::uint64_t total = c.kind == ClassKind::Af
                                  ? words + words * (words - 1)
                                  : 2ull * words * width;
  if (c.sample >= total) return exhaustive_fault_list(c, words, width);
  std::vector<Fault> out;
  out.reserve(c.sample);
  // Even stride over the enumeration: sample distinct faults spread across
  // the whole address space (so every region receives work).
  for (std::uint64_t k = 0; k < c.sample; ++k)
    out.push_back(decode_enumerated_fault(c, words, width, k * total / c.sample));
  return out;
}

MarchTest resolve_march(const CampaignSpec& spec) {
  if (spec.march_ops.empty()) {
    try {
      return march_by_name(spec.march);
    } catch (const std::out_of_range&) {
      throw SpecValidationError(
          {{"march", "unknown march '" + spec.march + "' (see `twm_cli list`)"}});
    }
  }
  MarchTest t;
  t.name = "inline";
  std::vector<SpecError> errors;
  for (std::size_t i = 0; i < spec.march_ops.size(); ++i) {
    std::string why;
    auto elem = parse_inline_element(spec.march_ops[i], &why);
    if (elem)
      t.elements.push_back(std::move(*elem));
    else
      errors.push_back({"march_ops[" + std::to_string(i) + "]", why});
  }
  if (!errors.empty()) throw SpecValidationError(std::move(errors));
  return t;
}

// ---- content addressing ---------------------------------------------------

std::string march_display(const CampaignSpec& spec) {
  if (spec.march_ops.empty()) return spec.march;
  MarchTest t = resolve_march(spec);
  t.name.clear();
  return twm::to_string(t);
}

std::string_view engine_revision() {
  // r6: the PR 5 scheduler generation (repack + settle-exit + collapsing,
  // all verdict-identical to dense).  Bump on any verdict-affecting change.
  return "twm-engine-r6";
}

std::string cell_identity_json(const CampaignSpec& spec, SchemeKind scheme,
                               const ClassSel& cls) {
  JsonValue v = JsonValue::object();
  v.set("engine", JsonValue::string(std::string(engine_revision())));
  v.set("march", JsonValue::string(march_display(spec)));
  v.set("words", JsonValue::number(spec.words));
  v.set("width", JsonValue::number(spec.width));
  v.set("scheme", JsonValue::string(scheme_id(scheme)));
  v.set("class", JsonValue::string(to_string(cls)));
  JsonValue seeds = JsonValue::array();
  for (std::uint64_t seed : spec.seeds) seeds.push_back(JsonValue::number(seed));
  v.set("seeds", std::move(seeds));
  return json_write(v, /*pretty=*/false);
}

namespace {

std::uint64_t fnv1a64(std::string_view s, std::uint64_t basis) {
  std::uint64_t h = basis;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string content_key(std::string_view identity) {
  // Two chained FNV-1a passes -> 128 address bits.  Not cryptographic;
  // CellCache implementations verify the stored identity on lookup, so a
  // collision degrades to a cache miss, never to wrong results.
  const std::uint64_t h1 = fnv1a64(identity, 14695981039346656037ull);
  const std::uint64_t h2 = fnv1a64(identity, h1 ^ 0x9e3779b97f4a7c15ull);
  static const char* hex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = hex[(h1 >> (4 * i)) & 0xF];
    out[31 - i] = hex[(h2 >> (4 * i)) & 0xF];
  }
  return out;
}

std::string cell_key(const CampaignSpec& spec, SchemeKind scheme, const ClassSel& cls) {
  return content_key(cell_identity_json(spec, scheme, cls));
}

// ---- JSON ---------------------------------------------------------------

namespace {

JsonValue spec_to_value(const CampaignSpec& s) {
  JsonValue memory = JsonValue::object();
  memory.set("words", JsonValue::number(s.words));
  memory.set("width", JsonValue::number(s.width));

  JsonValue schemes = JsonValue::array();
  for (SchemeKind k : s.schemes) schemes.push_back(JsonValue::string(scheme_id(k)));
  JsonValue classes = JsonValue::array();
  for (const ClassSel& c : s.classes) classes.push_back(JsonValue::string(to_string(c)));
  JsonValue seeds = JsonValue::array();
  for (std::uint64_t seed : s.seeds) seeds.push_back(JsonValue::number(seed));

  JsonValue run = JsonValue::object();
  run.set("backend", JsonValue::string(to_string(s.backend)));
  run.set("threads", JsonValue::number(s.threads));
  run.set("simd", JsonValue::string(simd::to_string(s.simd)));
  run.set("schedule", JsonValue::string(to_string(s.schedule)));
  run.set("collapse", JsonValue::boolean(s.collapse));
  // regions = 1 is the implicit default; omitting it keeps every pre-region
  // serialization (and the golden-serialization test) byte-identical.
  if (s.regions != 1) run.set("regions", JsonValue::number(s.regions));
  // Same contract for deadline_ms: 0 (no deadline) stays invisible.
  if (s.deadline_ms != 0) run.set("deadline_ms", JsonValue::number(s.deadline_ms));

  JsonValue v = JsonValue::object();
  v.set("name", JsonValue::string(s.name));
  v.set("memory", std::move(memory));
  // Library specs always carry "march" (every pre-inline serialization is
  // byte-identical); inline specs carry "march_ops" instead.  A spec that
  // (invalidly) sets both round-trips both so validate() can name the clash.
  if (s.march_ops.empty() || !s.march.empty()) v.set("march", JsonValue::string(s.march));
  if (!s.march_ops.empty()) {
    JsonValue ops = JsonValue::array();
    for (const std::string& op : s.march_ops) ops.push_back(JsonValue::string(op));
    v.set("march_ops", std::move(ops));
  }
  v.set("schemes", std::move(schemes));
  v.set("classes", std::move(classes));
  v.set("seeds", std::move(seeds));
  v.set("run", std::move(run));
  return v;
}

// Collects structural errors instead of stopping at the first: a queued
// spec that is wrong in three places should say so in one round.
class SpecReader {
 public:
  explicit SpecReader(std::string prefix) : prefix_(std::move(prefix)) {}

  CampaignSpec read(const JsonValue& v) {
    CampaignSpec s;
    if (!v.is_object()) {
      fail("", "spec must be a JSON object");
      throw SpecValidationError(std::move(errors_));
    }
    static const char* kKnown[] = {"name", "memory", "march", "march_ops",
                                   "schemes", "classes", "seeds", "run"};
    for (const auto& [key, member] : v.members()) {
      (void)member;
      if (std::find_if(std::begin(kKnown), std::end(kKnown),
                       [&key = key](const char* k) { return key == k; }) == std::end(kKnown))
        fail(key, "unknown field");
    }

    if (const JsonValue* name = v.find("name")) {
      if (name->is_string())
        s.name = name->as_string();
      else
        fail("name", "must be a string");
    }
    if (const JsonValue* memory = v.find("memory")) {
      if (memory->is_object()) {
        s.words = read_count(*memory, "memory", "words");
        const std::size_t width = read_count(*memory, "memory", "width");
        if (width > UINT32_MAX)
          fail("memory.width", "must fit an unsigned 32-bit integer");
        else
          s.width = static_cast<unsigned>(width);
      } else {
        fail("memory", "must be an object {\"words\": N, \"width\": B}");
      }
    } else {
      fail("memory", "is required");
    }
    if (const JsonValue* march = v.find("march")) {
      if (march->is_string())
        s.march = march->as_string();
      else
        fail("march", "must be a string");
    } else if (!v.find("march_ops")) {
      fail("march", "is required (or inline march_ops)");
    }
    if (v.find("march_ops")) {
      read_array(v, "march_ops", [&](const JsonValue& item, const std::string& path) {
        if (!item.is_string())
          return fail(path, "must be a march element string (e.g. \"up(r0,w1)\")");
        s.march_ops.push_back(item.as_string());
      });
    }

    read_array(v, "schemes", [&](const JsonValue& item, const std::string& path) {
      if (!item.is_string()) return fail(path, "must be a scheme id string");
      const auto k = parse_scheme(item.as_string());
      if (!k)
        return fail(path, "unknown scheme '" + item.as_string() +
                              "' (want ref|womarch|twm|twm-misr|sym|tsmarch|s1|tomt)");
      s.schemes.push_back(*k);
    });
    read_array(v, "classes", [&](const JsonValue& item, const std::string& path) {
      if (!item.is_string()) return fail(path, "must be a fault-class string");
      const auto c = parse_class(item.as_string());
      if (!c)
        return fail(path, "unknown fault class '" + item.as_string() +
                              "' (want saf|tf|ret|cfst|cfid|cfin|af, CFs optionally "
                              ":inter|:intra)");
      s.classes.push_back(*c);
    });
    read_array(v, "seeds", [&](const JsonValue& item, const std::string& path) {
      const auto seed = item.as_u64();
      if (!seed) return fail(path, "must be an unsigned 64-bit integer");
      s.seeds.push_back(*seed);
    });

    if (const JsonValue* run = v.find("run")) {
      if (run->is_object()) {
        for (const auto& [key, member] : run->members()) {
          (void)member;
          if (key != "backend" && key != "threads" && key != "simd" && key != "schedule" &&
              key != "collapse" && key != "regions" && key != "deadline_ms")
            fail("run." + key, "unknown field");
        }
        if (const JsonValue* backend = run->find("backend")) {
          const auto b = backend->is_string() ? parse_backend(backend->as_string())
                                              : std::nullopt;
          if (b)
            s.backend = *b;
          else
            fail("run.backend", "must be \"scalar\" or \"packed\"");
        }
        if (const JsonValue* threads = run->find("threads")) {
          const auto t = threads->as_u64();
          if (t && *t <= UINT32_MAX)
            s.threads = static_cast<unsigned>(*t);
          else
            fail("run.threads", "must be an unsigned integer");
        }
        if (const JsonValue* simd = run->find("simd")) {
          const auto r = simd->is_string() ? simd::parse_request(simd->as_string())
                                           : std::nullopt;
          if (r)
            s.simd = *r;
          else
            fail("run.simd",
                 "must be \"auto\", \"64\", \"256\", \"512\" or \"tiled[:4096|:32768]\"");
        }
        if (const JsonValue* schedule = run->find("schedule")) {
          const auto m = schedule->is_string() ? parse_schedule(schedule->as_string())
                                               : std::nullopt;
          if (m)
            s.schedule = *m;
          else
            fail("run.schedule", "must be \"dense\" or \"repack\"");
        }
        if (const JsonValue* collapse = run->find("collapse")) {
          if (collapse->is_bool())
            s.collapse = collapse->as_bool();
          else
            fail("run.collapse", "must be a boolean");
        }
        if (const JsonValue* regions = run->find("regions")) {
          const auto r = regions->as_u64();
          if (r && *r <= UINT32_MAX)
            s.regions = static_cast<unsigned>(*r);
          else
            fail("run.regions", "must be an unsigned integer");
        }
        if (const JsonValue* deadline = run->find("deadline_ms")) {
          const auto d = deadline->as_u64();
          if (d)
            s.deadline_ms = *d;
          else
            fail("run.deadline_ms", "must be an unsigned 64-bit integer");
        }
      } else {
        fail("run", "must be an object");
      }
    }

    if (!errors_.empty()) throw SpecValidationError(std::move(errors_));
    return s;
  }

 private:
  void fail(const std::string& path, const std::string& message) {
    errors_.push_back({prefix_ + path, message});
  }

  std::size_t read_count(const JsonValue& obj, const std::string& parent, const char* key) {
    const JsonValue* member = obj.find(key);
    const std::string path = parent + "." + key;
    if (!member) {
      fail(path, "is required");
      return 0;
    }
    const auto n = member->as_u64();
    if (!n) {
      fail(path, "must be an unsigned integer");
      return 0;
    }
    return *n;
  }

  template <typename Fn>
  void read_array(const JsonValue& v, const char* key, Fn&& per_item) {
    const JsonValue* member = v.find(key);
    if (!member) return fail(key, "is required");
    if (!member->is_array()) return fail(key, "must be an array");
    std::size_t i = 0;
    for (const JsonValue& item : member->items())
      per_item(item, std::string(key) + "[" + std::to_string(i++) + "]");
  }

  std::string prefix_;
  std::vector<SpecError> errors_;
};

}  // namespace

std::string to_json(const CampaignSpec& spec, bool pretty) {
  return json_write(spec_to_value(spec), pretty);
}

std::string to_json(const std::vector<CampaignSpec>& batch, bool pretty) {
  // The batch form keeps one spec per line even in pretty mode — diffable
  // and exactly the shape a queue would append to.
  std::string out = "[";
  bool first = true;
  for (const CampaignSpec& s : batch) {
    if (!first) out += ",";
    first = false;
    if (pretty) out += "\n";
    out += json_write(spec_to_value(s), /*pretty=*/false);
  }
  if (pretty && !batch.empty()) out += "\n";
  out += "]";
  return out;
}

CampaignSpec spec_from_json(const std::string& text) {
  return SpecReader("").read(json_parse(text));
}

CampaignSpec spec_from_json_value(const JsonValue& v) { return SpecReader("").read(v); }

std::vector<CampaignSpec> specs_from_json(const std::string& text) {
  const JsonValue doc = json_parse(text);
  std::vector<CampaignSpec> out;
  if (doc.is_array()) {
    // Collect every spec's structural errors before failing: a queued
    // batch that is wrong in three specs should say so in one round.
    std::vector<SpecError> errors;
    std::size_t i = 0;
    for (const JsonValue& item : doc.items()) {
      try {
        out.push_back(SpecReader("spec[" + std::to_string(i) + "].").read(item));
      } catch (const SpecValidationError& e) {
        errors.insert(errors.end(), e.errors().begin(), e.errors().end());
      }
      ++i;
    }
    if (!errors.empty()) throw SpecValidationError(std::move(errors));
  } else {
    out.push_back(SpecReader("").read(doc));
  }
  return out;
}

}  // namespace twm::api
