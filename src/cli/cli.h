// Command-line interface core (the `twm_cli` tool).
//
// Kept as a library function so the argument handling and output are unit
// tested; tools/twm_cli.cpp is a two-line wrapper.
//
// Commands:
//   list                                   catalog with lint capabilities
//   show <march>                           print a march and its lint
//   transform <march> --width B [--scheme twm|s1|sym]
//                                          print the transparent test(s),
//                                          prediction, and complexities
//   complexity <march> --width B           formula + measured costs, all schemes
//   simulate <march> --width B --words N [--seed S]
//            [--fault saf:W.B=V | tf:W.B=u | tf:W.B=d | ret:W.B=V]
//                                          run a transparent session and
//                                          report the verdict
//   coverage <march> --width B --words N [--scheme twm|twm-misr|sym|tsmarch|
//            s1|tomt|ref|womarch|all] [--classes saf,tf,cfst,cfid,cfin,ret,af]
//            [--seeds 0,1,2] [--backend scalar|packed] [--threads T]
//            [--simd auto|64|256|512] [--schedule dense|repack]
//            [--collapse on|off] [--regions N]
//                                          per-fault-class coverage campaign
//                                          on the selected simulation backend
//                                          (packed = one fault universe per
//                                          SIMD lane, 64/256/512 per
//                                          bit-parallel pass; --simd auto
//                                          picks the widest the CPU supports,
//                                          a forced width errors cleanly when
//                                          unsupported); --scheme all sweeps
//                                          every scheme and prints a scheme x
//                                          fault-class table; --schedule
//                                          repack (default) drops settled
//                                          fault universes between seed
//                                          rounds, aborts settled sessions
//                                          early and collapses equivalent
//                                          faults (--collapse off isolates
//                                          that), dense is the verdict-
//                                          identical static reference
//                                          scheduler; --regions N shards the
//                                          fault list by victim address slice
//                                          so a huge-memory campaign touches
//                                          one region's page working set at a
//                                          time (verdict-identical for any N)
//   simd [--json]                          lane-block width support table for
//                                          this CPU (cpuid probe) and the
//                                          width `auto` resolves to; --json
//                                          emits the probe machine-readable
//                                          so schedulers can place campaigns
//   spec <march> --width B --words N [coverage flags...]
//                                          print the CampaignSpec JSON the
//                                          coverage command line denotes —
//                                          the migration bridge from flags
//                                          to declarative spec files
//   run <spec.json> [--sink jsonl|csv|table] [--out F] [--regions N]
//       [--deadline-ms T] [--checkpoint F]
//                                          execute the campaign(s) in a spec
//                                          file (single object or batch
//                                          array), streaming per-unit
//                                          records into the selected sink;
//                                          --regions overrides run.regions;
//                                          --deadline-ms overrides
//                                          run.deadline_ms (cooperative
//                                          wall-clock budget — see
//                                          api/spec.h; the campaign_end
//                                          record reports timed_out);
//                                          --checkpoint (single spec only)
//                                          persists per-region progress after
//                                          every region settles and resumes
//                                          an interrupted run of the same
//                                          spec from the file
//   explore <dse.json> [--out F] [--resume F] [--threads T] [--rounds R]
//           [--stop-after K]
//                                          coverage-guided evolutionary
//                                          search over the march space
//                                          (src/explore): seeds a population
//                                          from the catalog plus random
//                                          marches, mutates/splices with the
//                                          validity-preserving operators,
//                                          scores candidates through
//                                          api::run_campaign (inline-march
//                                          specs, shared result cache) and
//                                          prints the Pareto front of
//                                          (weighted complexity, per-class
//                                          coverage); --resume persists the
//                                          full search state after every
//                                          round and continues an
//                                          interrupted search on the same
//                                          deterministic trajectory;
//                                          --stop-after K stops after K
//                                          rounds (pairs with --resume);
//                                          --out writes the JSON report
//   serve [--host A] [--port P] [--cache-dir D] [--cache-entries N]
//         [--max-clients M] [--idle-timeout-ms T]
//                                          campaign daemon: accepts submit
//                                          frames over TCP (JSON-lines
//                                          protocol, src/service/protocol.h),
//                                          queues campaigns onto the shared
//                                          engine and streams each client its
//                                          own record stream; completed
//                                          (scheme, class, seed-set) cells
//                                          land in a content-addressed result
//                                          cache (memory LRU + optional disk
//                                          dir) so a resubmitted or extended
//                                          spec replays instead of
//                                          re-simulating; --port 0 binds an
//                                          ephemeral port, reported in the
//                                          {"type":"serving",...} line;
//                                          --idle-timeout-ms drops clients
//                                          that send no frame for T ms
//                                          (typed timeout error frame; 0 =
//                                          never, the default)
//   submit <spec.json> [--host A] [--port P] [--retries N] [--backoff-ms B]
//          [--stats] [--shutdown]
//                                          send the spec(s) in a file to a
//                                          running daemon and tail the
//                                          JSON-lines result stream; exits 1
//                                          when the server reports an error;
//                                          --stats/--shutdown append the
//                                          control frames; --retries N
//                                          re-attempts an exchange up to N
//                                          extra times on connect failures,
//                                          dropped connections and error
//                                          frames marked retryable, with
//                                          jittered exponential backoff
//                                          starting at --backoff-ms
//                                          (default 100)
//
// Every command also accepts --failpoints "name=action[@N|:P];..." — the
// chaos-injection spec from util/failpoint.h, equivalent to setting
// TWM_FAILPOINTS for the in-process registry.
//
// coverage, spec and run all speak twm::api (src/api): the flag surface is
// parsed into a CampaignSpec, validated field by field, and executed by
// api::run_campaign with a ResultSink attached — `coverage` is `run` with
// a table sink and a spec assembled from flags.
//
// Returns 0 on success (for simulate: also when no fault is detected), 1 on
// usage errors, 2 when simulate detects a fault.
#ifndef TWM_CLI_CLI_H
#define TWM_CLI_CLI_H

#include <ostream>
#include <string>
#include <vector>

namespace twm {

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace twm

#endif  // TWM_CLI_CLI_H
