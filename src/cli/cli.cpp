#include "cli/cli.h"

#include <map>
#include <optional>
#include <sstream>

#include <algorithm>
#include <chrono>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "analysis/lint.h"
#include "analysis/report.h"
#include "bist/engine.h"
#include "core/complexity.h"
#include "core/scheme1.h"
#include "core/simd.h"
#include "core/symmetric.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "march/printer.h"
#include "memsim/memory.h"
#include "util/rng.h"
#include "util/table.h"

namespace twm {
namespace {

struct Options {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;      // --key value
  std::vector<std::string> faults;               // repeated --fault specs
};

std::optional<Options> parse_args(const std::vector<std::string>& args, std::ostream& err) {
  Options o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {
      o.positional.push_back(a);
      continue;
    }
    if (i + 1 >= args.size()) {
      err << "error: flag " << a << " needs a value\n";
      return std::nullopt;
    }
    const std::string value = args[++i];
    if (a == "--fault")
      o.faults.push_back(value);
    else
      o.flags[a.substr(2)] = value;
  }
  return o;
}

std::optional<unsigned> flag_unsigned(const Options& o, const std::string& key,
                                      std::optional<unsigned> fallback, std::ostream& err) {
  auto it = o.flags.find(key);
  if (it == o.flags.end()) {
    if (!fallback) err << "error: --" << key << " is required\n";
    return fallback;
  }
  try {
    return static_cast<unsigned>(std::stoul(it->second));
  } catch (const std::exception&) {
    err << "error: --" << key << " expects a number, got '" << it->second << "'\n";
    return std::nullopt;
  }
}

// Parses "saf:W.B=V", "tf:W.B=u|d", "ret:W.B=V".
std::optional<Fault> parse_fault(const std::string& spec, std::ostream& err) {
  const auto colon = spec.find(':');
  const auto dot = spec.find('.');
  const auto eq = spec.find('=');
  if (colon == std::string::npos || dot == std::string::npos || eq == std::string::npos ||
      !(colon < dot && dot < eq)) {
    err << "error: bad fault spec '" << spec << "' (want kind:word.bit=value)\n";
    return std::nullopt;
  }
  try {
    const std::string kind = spec.substr(0, colon);
    const std::size_t word = std::stoul(spec.substr(colon + 1, dot - colon - 1));
    const unsigned bit = static_cast<unsigned>(std::stoul(spec.substr(dot + 1, eq - dot - 1)));
    const std::string val = spec.substr(eq + 1);
    if (kind == "saf") return Fault::saf({word, bit}, val == "1");
    if (kind == "tf")
      return Fault::tf({word, bit}, val == "u" ? Transition::Up : Transition::Down);
    if (kind == "ret") return Fault::ret({word, bit}, val == "1", 1);
    err << "error: unknown fault kind '" << kind << "'\n";
    return std::nullopt;
  } catch (const std::exception&) {
    err << "error: bad fault spec '" << spec << "'\n";
    return std::nullopt;
  }
}

int cmd_list(std::ostream& out) {
  Table t({"march", "S", "Q", "capabilities", "origin"});
  for (const auto& info : march_catalog()) {
    const MarchLint lint = lint_march(march_by_name(info.name));
    t.add_row({info.name, std::to_string(info.ops), std::to_string(info.reads), lint.summary(),
               info.reference});
  }
  t.print(out);
  return 0;
}

int cmd_show(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: show <march>\n";
    return 1;
  }
  const MarchTest m = march_by_name(o.positional[1]);
  out << to_string(m) << "\n";
  out << "lint: " << lint_march(m).summary() << "\n";
  return 0;
}

int cmd_transform(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: transform <march> --width B [--scheme twm|s1|sym]\n";
    return 1;
  }
  const auto width = flag_unsigned(o, "width", std::nullopt, err);
  if (!width) return 1;
  const MarchTest m = march_by_name(o.positional[1]);
  const auto scheme_it = o.flags.find("scheme");
  const std::string scheme = scheme_it == o.flags.end() ? "twm" : scheme_it->second;

  if (scheme == "twm" || scheme == "sym") {
    const TwmResult r = twm_transform(m, *width);
    out << to_string(r.tsmarch) << "\n" << to_string(r.atmarch) << "\n";
    if (scheme == "sym") {
      const SymmetricTest st = symmetrize(r.twmarch, *width);
      out << to_string(st.test) << "\n";
      out << "expected signature constant (per odd N): " << st.mask_xor.to_string() << "\n";
      out << "TCM=" << st.test.op_count() << "N TCP=0\n";
    } else {
      out << "prediction: " << to_string(r.prediction) << "\n";
      out << "TCM=" << r.twmarch.op_count() << "N TCP=" << r.prediction.op_count() << "N\n";
    }
    return 0;
  }
  if (scheme == "s1") {
    const Scheme1Result r = scheme1_transform(m, *width);
    out << to_string(r.transparent) << "\n";
    out << "TCM=" << r.transparent.op_count() << "N TCP=" << r.prediction.op_count() << "N\n";
    return 0;
  }
  err << "error: unknown scheme '" << scheme << "'\n";
  return 1;
}

int cmd_complexity(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: complexity <march> --width B\n";
    return 1;
  }
  const auto width = flag_unsigned(o, "width", std::nullopt, err);
  if (!width) return 1;
  const auto& info = march_info(o.positional[1]);
  const MarchTest m = march_by_name(info.name);

  Table t({"scheme", "TCM (formula)", "TCP (formula)", "TCM (measured)", "TCP (measured)"});
  const auto p = formula_proposed(info.ops, info.reads, *width);
  const auto mp = measured_proposed(m, *width);
  t.add_row({"this work", coeff_str(p.tcm), coeff_str(p.tcp), coeff_str(mp.tcm),
             coeff_str(mp.tcp)});
  const auto s1 = formula_scheme1(info.ops, info.reads, *width);
  const auto ms1 = measured_scheme1(m, *width);
  t.add_row({"scheme 1 [12]", coeff_str(s1.tcm), coeff_str(s1.tcp), coeff_str(ms1.tcm),
             coeff_str(ms1.tcp)});
  const auto s2 = formula_tomt(*width);
  t.add_row({"scheme 2 [13]", coeff_str(s2.tcm), "0", coeff_str(measured_tomt(*width).tcm), "0"});
  t.print(out);
  return 0;
}

int cmd_simulate(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: simulate <march> --width B --words N [--seed S] [--fault kind:w.b=v]...\n";
    return 1;
  }
  const auto width = flag_unsigned(o, "width", std::nullopt, err);
  const auto words = flag_unsigned(o, "words", std::nullopt, err);
  if (!width || !words) return 1;
  const auto seed = flag_unsigned(o, "seed", 1u, err);
  if (!seed) return 1;

  Memory mem(*words, *width);
  Rng rng(*seed);
  mem.fill_random(rng);
  for (const auto& spec : o.faults) {
    const auto f = parse_fault(spec, err);
    if (!f) return 1;
    mem.inject(*f);
    out << "injected: " << f->describe() << "\n";
  }
  const auto snapshot = mem.snapshot();

  const TwmResult r = twm_transform(march_by_name(o.positional[1]), *width);
  MarchRunner runner(mem);
  const auto res = runner.run_transparent_session(r.twmarch, r.prediction, *width);
  out << "session: " << (r.twmarch.op_count() + r.prediction.op_count()) << " ops/word x "
      << *words << " words\n";
  out << "verdict: " << (res.detected_misr ? "FAULT DETECTED" : "clean") << "  (signatures "
      << res.signature_predicted.to_string() << " / " << res.signature_observed.to_string()
      << ")\n";
  out << "contents preserved: " << (mem.equals(snapshot) ? "yes" : "no (fault distorted them)")
      << "\n";
  return res.detected_misr ? 2 : 0;
}

// Splits "a,b,c" on commas (empty pieces dropped).
std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

std::optional<SchemeKind> parse_scheme(const std::string& s, std::ostream& err) {
  if (s == "twm") return SchemeKind::ProposedExact;
  if (s == "twm-misr") return SchemeKind::ProposedMisr;
  if (s == "sym") return SchemeKind::ProposedSymmetricXor;
  if (s == "tsmarch") return SchemeKind::TsmarchOnly;
  if (s == "s1") return SchemeKind::Scheme1Exact;
  if (s == "tomt") return SchemeKind::TomtModel;
  if (s == "ref") return SchemeKind::NontransparentReference;
  if (s == "womarch") return SchemeKind::WordOrientedMarch;
  err << "error: unknown scheme '" << s
      << "' (want twm|twm-misr|sym|tsmarch|s1|tomt|ref|womarch|all)\n";
  return std::nullopt;
}

// CPU / build support table for the packed backend's lane-block widths.
int cmd_simd(std::ostream& out) {
  Table t({"width", "lanes", "supported"});
  for (simd::Width w : simd::kAllWidths)
    t.add_row({simd::to_string(w), std::to_string(simd::lanes(w)),
               simd::supported(w) ? "yes" : "no"});
  t.print(out);
  out << "best: " << simd::to_string(simd::best_width()) << "\n";
  return 0;
}

int cmd_coverage(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: coverage <march> --width B --words N [--scheme S|all] [--classes C,..]\n"
           "                [--seeds 0,1,2] [--backend scalar|packed] [--threads T]\n"
           "                [--simd auto|64|256|512]\n";
    return 1;
  }
  const auto width = flag_unsigned(o, "width", std::nullopt, err);
  const auto words = flag_unsigned(o, "words", std::nullopt, err);
  if (!width || !words) return 1;
  const auto threads = flag_unsigned(o, "threads", 1u, err);
  if (!threads) return 1;
  if (*threads == 0) {
    err << "error: --threads must be at least 1\n";
    return 1;
  }

  CoverageOptions opts;
  opts.threads = *threads;
  if (auto it = o.flags.find("backend"); it != o.flags.end()) {
    if (it->second == "scalar")
      opts.backend = CoverageBackend::Scalar;
    else if (it->second == "packed")
      opts.backend = CoverageBackend::Packed;
    else {
      err << "error: unknown backend '" << it->second << "' (want scalar|packed)\n";
      return 1;
    }
  } else {
    opts.backend = CoverageBackend::Packed;
  }

  if (auto it = o.flags.find("simd"); it != o.flags.end()) {
    const auto req = simd::parse_request(it->second);
    if (!req) {
      err << "error: unknown simd width '" << it->second << "' (want auto|64|256|512)\n";
      return 1;
    }
    opts.simd = *req;
  }
  // Resolve now so a forced-but-unsupported width errors before any
  // campaign work (throws std::runtime_error, reported by run_cli).
  const simd::Width simd_width =
      opts.backend == CoverageBackend::Packed ? simd::resolve(opts.simd) : simd::Width::W64;

  const auto scheme_it = o.flags.find("scheme");
  const std::string scheme_name = scheme_it == o.flags.end() ? "twm" : scheme_it->second;
  const bool all_schemes = scheme_name == "all";
  std::optional<SchemeKind> scheme;
  if (!all_schemes) {
    scheme = parse_scheme(scheme_name, err);
    if (!scheme) return 1;
  }

  std::vector<std::uint64_t> seeds{0, 1, 2};
  if (auto it = o.flags.find("seeds"); it != o.flags.end()) {
    seeds.clear();
    for (const auto& p : split_csv(it->second)) {
      // stoull would accept "-1" (wrapping), " 1" and "2x" (ignoring the
      // tail); require pure digits.
      const bool digits = std::all_of(p.begin(), p.end(), [](unsigned char c) {
        return c >= '0' && c <= '9';
      });
      try {
        if (!digits) throw std::invalid_argument(p);
        seeds.push_back(std::stoull(p));
      } catch (const std::exception&) {
        err << "error: --seeds expects comma-separated numbers, got '" << p << "'\n";
        return 1;
      }
    }
    if (seeds.empty()) {
      err << "error: --seeds needs at least one seed\n";
      return 1;
    }
  }

  std::vector<std::string> class_names{"saf", "tf", "cfst", "cfid", "cfin"};
  if (auto it = o.flags.find("classes"); it != o.flags.end()) class_names = split_csv(it->second);

  struct ClassSpec {
    std::string name;
    std::vector<Fault> faults;
  };
  std::vector<ClassSpec> classes;
  for (const auto& name : class_names) {
    if (name == "saf")
      classes.push_back({"SAF", all_safs(*words, *width)});
    else if (name == "tf")
      classes.push_back({"TF", all_tfs(*words, *width)});
    else if (name == "ret")
      classes.push_back({"RET", all_rets(*words, *width, 1)});
    else if (name == "cfst")
      classes.push_back({"CFst", all_cfs(*words, *width, FaultClass::CFst, CfScope::Both)});
    else if (name == "cfid")
      classes.push_back({"CFid", all_cfs(*words, *width, FaultClass::CFid, CfScope::Both)});
    else if (name == "cfin")
      classes.push_back({"CFin", all_cfs(*words, *width, FaultClass::CFin, CfScope::Both)});
    else if (name == "af")
      classes.push_back({"AF", all_afs(*words)});
    else {
      err << "error: unknown fault class '" << name
          << "' (want saf|tf|ret|cfst|cfid|cfin|af)\n";
      return 1;
    }
  }

  const MarchTest march = march_by_name(o.positional[1]);
  const CampaignRunner runner(*words, *width, opts);
  out << "coverage: " << march.name << ", N=" << *words << ", B=" << *width << ", "
      << (all_schemes ? std::string("all schemes") : to_string(*scheme))
      << ", backend=" << to_string(opts.backend);
  if (opts.backend == CoverageBackend::Packed)
    out << " (simd " << simd::to_string(simd_width) << ", "
        << (opts.simd == simd::Request::Auto ? "auto" : "forced") << ")";
  out << ", threads=" << opts.threads << ", " << seeds.size() << " contents\n";

  std::size_t total_faults = 0;
  const auto t0 = std::chrono::steady_clock::now();
  if (all_schemes) {
    // Scheme x fault-class comparison: one campaign (and one compiled
    // SchemePlan) per scheme x class cell.
    std::vector<std::string> header{"scheme"};
    for (const auto& spec : classes)
      header.push_back(spec.name + " (" + std::to_string(spec.faults.size()) + ")");
    Table t(header);
    for (SchemeKind k : kAllSchemes) {
      std::vector<std::string> row{to_string(k)};
      for (const auto& spec : classes)
        row.push_back(coverage_str(runner.evaluate(k, march, spec.faults, seeds)));
      t.add_row(row);
    }
    for (const auto& spec : classes) total_faults += spec.faults.size();
    total_faults *= std::size(kAllSchemes);
    t.print(out);
  } else {
    Table t({"fault class", "faults", "coverage (all contents)", "any content"});
    for (const auto& spec : classes) {
      const auto res = runner.evaluate(*scheme, march, spec.faults, seeds);
      total_faults += spec.faults.size();
      t.add_row({spec.name, std::to_string(spec.faults.size()), coverage_str(res),
                 pct_str(res.pct_any())});
    }
    t.print(out);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out << total_faults << " faults in " << secs << "s ("
      << static_cast<std::uint64_t>(secs > 0 ? total_faults / secs : 0) << " faults/s)\n";
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  const auto usage = [&err] {
    err << "usage: twm_cli <list|show|transform|complexity|simulate|coverage|simd> ...\n"
           "see src/cli/cli.h for the full synopsis\n";
    return 1;
  };
  const auto opts = parse_args(args, err);
  if (!opts) return 1;
  if (opts->positional.empty()) return usage();
  const std::string& cmd = opts->positional[0];
  try {
    if (cmd == "list") return cmd_list(out);
    if (cmd == "show") return cmd_show(*opts, out, err);
    if (cmd == "transform") return cmd_transform(*opts, out, err);
    if (cmd == "complexity") return cmd_complexity(*opts, out, err);
    if (cmd == "simulate") return cmd_simulate(*opts, out, err);
    if (cmd == "coverage") return cmd_coverage(*opts, out, err);
    if (cmd == "simd") return cmd_simd(out);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}

}  // namespace twm
