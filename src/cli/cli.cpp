#include "cli/cli.h"

#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include <algorithm>
#include <chrono>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "analysis/lint.h"
#include "analysis/report.h"
#include "api/json.h"
#include "api/runner.h"
#include "api/sink.h"
#include "api/spec.h"
#include "bist/engine.h"
#include "core/complexity.h"
#include "core/scheme1.h"
#include "core/simd.h"
#include "core/symmetric.h"
#include "core/twm_ta.h"
#include "explore/explore.h"
#include "explore/spec.h"
#include "march/library.h"
#include "march/printer.h"
#include "memsim/memory.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/table.h"

namespace twm {
namespace {

struct Options {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;      // --key value
  std::vector<std::string> faults;               // repeated --fault specs
};

// Flags that take no value ("--json" on simd, "--stats"/"--shutdown" on
// submit).
bool is_bool_flag(const std::string& flag) {
  return flag == "--json" || flag == "--stats" || flag == "--shutdown";
}

std::optional<Options> parse_args(const std::vector<std::string>& args, std::ostream& err) {
  Options o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {
      o.positional.push_back(a);
      continue;
    }
    if (is_bool_flag(a)) {
      o.flags[a.substr(2)] = "";
      continue;
    }
    if (i + 1 >= args.size()) {
      err << "error: flag " << a << " needs a value\n";
      return std::nullopt;
    }
    const std::string value = args[++i];
    if (a == "--fault")
      o.faults.push_back(value);
    else
      o.flags[a.substr(2)] = value;
  }
  return o;
}

std::optional<unsigned> flag_unsigned(const Options& o, const std::string& key,
                                      std::optional<unsigned> fallback, std::ostream& err) {
  auto it = o.flags.find(key);
  if (it == o.flags.end()) {
    if (!fallback) err << "error: --" << key << " is required\n";
    return fallback;
  }
  try {
    return static_cast<unsigned>(std::stoul(it->second));
  } catch (const std::exception&) {
    err << "error: --" << key << " expects a number, got '" << it->second << "'\n";
    return std::nullopt;
  }
}

// Full-range variant for quantities that exceed 32 bits on huge-memory
// campaigns (--words on a 16M+-word geometry is routine).
std::optional<std::uint64_t> flag_u64(const Options& o, const std::string& key,
                                      std::optional<std::uint64_t> fallback,
                                      std::ostream& err) {
  auto it = o.flags.find(key);
  if (it == o.flags.end()) {
    if (!fallback) err << "error: --" << key << " is required\n";
    return fallback;
  }
  try {
    return static_cast<std::uint64_t>(std::stoull(it->second));
  } catch (const std::exception&) {
    err << "error: --" << key << " expects a number, got '" << it->second << "'\n";
    return std::nullopt;
  }
}

// Parses "saf:W.B=V", "tf:W.B=u|d", "ret:W.B=V".
std::optional<Fault> parse_fault(const std::string& spec, std::ostream& err) {
  const auto colon = spec.find(':');
  const auto dot = spec.find('.');
  const auto eq = spec.find('=');
  if (colon == std::string::npos || dot == std::string::npos || eq == std::string::npos ||
      !(colon < dot && dot < eq)) {
    err << "error: bad fault spec '" << spec << "' (want kind:word.bit=value)\n";
    return std::nullopt;
  }
  try {
    const std::string kind = spec.substr(0, colon);
    const std::size_t word = std::stoul(spec.substr(colon + 1, dot - colon - 1));
    const unsigned bit = static_cast<unsigned>(std::stoul(spec.substr(dot + 1, eq - dot - 1)));
    const std::string val = spec.substr(eq + 1);
    if (kind == "saf") return Fault::saf({word, bit}, val == "1");
    if (kind == "tf")
      return Fault::tf({word, bit}, val == "u" ? Transition::Up : Transition::Down);
    if (kind == "ret") return Fault::ret({word, bit}, val == "1", 1);
    err << "error: unknown fault kind '" << kind << "'\n";
    return std::nullopt;
  } catch (const std::exception&) {
    err << "error: bad fault spec '" << spec << "'\n";
    return std::nullopt;
  }
}

int cmd_list(std::ostream& out) {
  Table t({"march", "S", "Q", "capabilities", "origin"});
  for (const auto& info : march_catalog()) {
    const MarchLint lint = lint_march(march_by_name(info.name));
    t.add_row({info.name, std::to_string(info.ops), std::to_string(info.reads), lint.summary(),
               info.reference});
  }
  t.print(out);
  return 0;
}

int cmd_show(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: show <march>\n";
    return 1;
  }
  const MarchTest m = march_by_name(o.positional[1]);
  out << to_string(m) << "\n";
  out << "lint: " << lint_march(m).summary() << "\n";
  return 0;
}

int cmd_transform(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: transform <march> --width B [--scheme twm|s1|sym]\n";
    return 1;
  }
  const auto width = flag_unsigned(o, "width", std::nullopt, err);
  if (!width) return 1;
  const MarchTest m = march_by_name(o.positional[1]);
  const auto scheme_it = o.flags.find("scheme");
  const std::string scheme = scheme_it == o.flags.end() ? "twm" : scheme_it->second;

  if (scheme == "twm" || scheme == "sym") {
    const TwmResult r = twm_transform(m, *width);
    out << to_string(r.tsmarch) << "\n" << to_string(r.atmarch) << "\n";
    if (scheme == "sym") {
      const SymmetricTest st = symmetrize(r.twmarch, *width);
      out << to_string(st.test) << "\n";
      out << "expected signature constant (per odd N): " << st.mask_xor.to_string() << "\n";
      out << "TCM=" << st.test.op_count() << "N TCP=0\n";
    } else {
      out << "prediction: " << to_string(r.prediction) << "\n";
      out << "TCM=" << r.twmarch.op_count() << "N TCP=" << r.prediction.op_count() << "N\n";
    }
    return 0;
  }
  if (scheme == "s1") {
    const Scheme1Result r = scheme1_transform(m, *width);
    out << to_string(r.transparent) << "\n";
    out << "TCM=" << r.transparent.op_count() << "N TCP=" << r.prediction.op_count() << "N\n";
    return 0;
  }
  err << "error: unknown scheme '" << scheme << "'\n";
  return 1;
}

int cmd_complexity(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: complexity <march> --width B\n";
    return 1;
  }
  const auto width = flag_unsigned(o, "width", std::nullopt, err);
  if (!width) return 1;
  const auto& info = march_info(o.positional[1]);
  const MarchTest m = march_by_name(info.name);

  Table t({"scheme", "TCM (formula)", "TCP (formula)", "TCM (measured)", "TCP (measured)"});
  const auto p = formula_proposed(info.ops, info.reads, *width);
  const auto mp = measured_proposed(m, *width);
  t.add_row({"this work", coeff_str(p.tcm), coeff_str(p.tcp), coeff_str(mp.tcm),
             coeff_str(mp.tcp)});
  const auto s1 = formula_scheme1(info.ops, info.reads, *width);
  const auto ms1 = measured_scheme1(m, *width);
  t.add_row({"scheme 1 [12]", coeff_str(s1.tcm), coeff_str(s1.tcp), coeff_str(ms1.tcm),
             coeff_str(ms1.tcp)});
  const auto s2 = formula_tomt(*width);
  t.add_row({"scheme 2 [13]", coeff_str(s2.tcm), "0", coeff_str(measured_tomt(*width).tcm), "0"});
  t.print(out);
  return 0;
}

int cmd_simulate(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: simulate <march> --width B --words N [--seed S] [--fault kind:w.b=v]...\n";
    return 1;
  }
  const auto width = flag_unsigned(o, "width", std::nullopt, err);
  const auto words = flag_unsigned(o, "words", std::nullopt, err);
  if (!width || !words) return 1;
  const auto seed = flag_unsigned(o, "seed", 1u, err);
  if (!seed) return 1;

  Memory mem(*words, *width);
  Rng rng(*seed);
  mem.fill_random(rng);
  for (const auto& spec : o.faults) {
    const auto f = parse_fault(spec, err);
    if (!f) return 1;
    mem.inject(*f);
    out << "injected: " << f->describe() << "\n";
  }
  const auto snapshot = mem.snapshot();

  const TwmResult r = twm_transform(march_by_name(o.positional[1]), *width);
  MarchRunner runner(mem);
  const auto res = runner.run_transparent_session(r.twmarch, r.prediction, *width);
  out << "session: " << (r.twmarch.op_count() + r.prediction.op_count()) << " ops/word x "
      << *words << " words\n";
  out << "verdict: " << (res.detected_misr ? "FAULT DETECTED" : "clean") << "  (signatures "
      << res.signature_predicted.to_string() << " / " << res.signature_observed.to_string()
      << ")\n";
  out << "contents preserved: " << (mem.equals(snapshot) ? "yes" : "no (fault distorted them)")
      << "\n";
  return res.detected_misr ? 2 : 0;
}

// CPU / build support table for the packed backend's lane-block widths.
// --json emits the probe machine-readable so schedulers can decide
// placement without scraping the table.
int cmd_simd(const Options& o, std::ostream& out) {
  if (o.flags.count("json")) {
    // `width` is the value a scheduler passes back as --simd / run.simd.
    out << "{\"widths\":[";
    bool first = true;
    for (simd::Width w : simd::kAllWidths) {
      if (!first) out << ",";
      first = false;
      out << "{\"width\":" << simd::lanes(w)
          << ",\"supported\":" << (simd::supported(w) ? "true" : "false") << "}";
    }
    // Tiled widths separately: their run.simd spelling is a string
    // ("tiled:4096"), not the numeric width, and they are dispatchable on
    // every CPU (the inner block is cpuid-selected at dispatch).
    out << "],\"tiled\":[";
    first = true;
    for (simd::Width w : simd::kTiledWidths) {
      if (!first) out << ",";
      first = false;
      out << "{\"width\":\"" << simd::to_string(w) << "\",\"lanes\":" << simd::lanes(w)
          << ",\"supported\":" << (simd::supported(w) ? "true" : "false") << "}";
    }
    out << "],\"best\":" << simd::lanes(simd::best_width()) << "}\n";
    return 0;
  }
  Table t({"width", "lanes", "supported"});
  for (simd::Width w : simd::kAllWidths)
    t.add_row({simd::to_string(w), std::to_string(simd::lanes(w)),
               simd::supported(w) ? "yes" : "no"});
  for (simd::Width w : simd::kTiledWidths)
    t.add_row({simd::to_string(w), std::to_string(simd::lanes(w)),
               simd::supported(w) ? "yes" : "no"});
  t.print(out);
  out << "best: " << simd::to_string(simd::best_width()) << "\n";
  return 0;
}

// Assembles the CampaignSpec a coverage-style command line denotes.  Flag
// spelling errors are reported here with their flag names; semantic
// problems (unknown march, zero geometry, unsupported forced width) are
// left for api::validate().
std::optional<api::CampaignSpec> spec_from_flags(const Options& o, std::ostream& err) {
  api::CampaignSpec spec;
  if (o.positional.size() >= 2) spec.march = o.positional[1];
  const auto width = flag_unsigned(o, "width", std::nullopt, err);
  const auto words = flag_u64(o, "words", std::nullopt, err);
  if (!width || !words) return std::nullopt;
  spec.width = *width;
  spec.words = static_cast<std::size_t>(*words);

  const auto threads = flag_unsigned(o, "threads", 1u, err);
  if (!threads) return std::nullopt;
  if (*threads == 0) {
    err << "error: --threads must be at least 1\n";
    return std::nullopt;
  }
  spec.threads = *threads;

  if (auto it = o.flags.find("backend"); it != o.flags.end()) {
    const auto backend = api::parse_backend(it->second);
    if (!backend) {
      err << "error: unknown backend '" << it->second << "' (want scalar|packed)\n";
      return std::nullopt;
    }
    spec.backend = *backend;
  }

  if (auto it = o.flags.find("simd"); it != o.flags.end()) {
    const auto req = simd::parse_request(it->second);
    if (!req) {
      err << "error: unknown simd width '" << it->second
          << "' (want auto|64|256|512|tiled[:4096|:32768])\n";
      return std::nullopt;
    }
    spec.simd = *req;
  }

  if (auto it = o.flags.find("schedule"); it != o.flags.end()) {
    const auto mode = api::parse_schedule(it->second);
    if (!mode) {
      err << "error: unknown schedule '" << it->second << "' (want dense|repack)\n";
      return std::nullopt;
    }
    spec.schedule = *mode;
  }

  if (auto it = o.flags.find("collapse"); it != o.flags.end()) {
    const auto on = api::parse_on_off(it->second);
    if (!on) {
      err << "error: --collapse expects on|off, got '" << it->second << "'\n";
      return std::nullopt;
    }
    spec.collapse = *on;
  }

  if (o.flags.count("regions")) {
    const auto regions = flag_unsigned(o, "regions", std::nullopt, err);
    if (!regions) return std::nullopt;
    spec.regions = *regions;  // range/power-of-two vetting is validate()'s
  }

  const auto scheme_it = o.flags.find("scheme");
  const std::string scheme_name = scheme_it == o.flags.end() ? "twm" : scheme_it->second;
  const auto schemes = api::parse_schemes(scheme_name);
  if (!schemes) {
    err << "error: unknown scheme '" << scheme_name
        << "' (want twm|twm-misr|sym|tsmarch|s1|tomt|ref|womarch|all)\n";
    return std::nullopt;
  }
  spec.schemes = *schemes;

  spec.seeds = {0, 1, 2};
  if (auto it = o.flags.find("seeds"); it != o.flags.end()) {
    std::string bad_token;
    const auto seeds = api::parse_seeds(it->second, &bad_token);
    if (!seeds) {
      err << "error: --seeds expects comma-separated numbers, got '" << bad_token << "'\n";
      return std::nullopt;
    }
    if (seeds->empty()) {
      err << "error: --seeds needs at least one seed\n";
      return std::nullopt;
    }
    spec.seeds = *seeds;
  }

  std::string class_csv = "saf,tf,cfst,cfid,cfin";
  if (auto it = o.flags.find("classes"); it != o.flags.end()) class_csv = it->second;
  const auto classes = api::parse_classes(class_csv);
  if (!classes) {
    err << "error: unknown fault class in '" << class_csv
        << "' (want saf|tf|ret|cfst|cfid|cfin|af, CFs optionally :inter|:intra)\n";
    return std::nullopt;
  }
  spec.classes = *classes;
  return spec;
}

// Prints every validation finding as "error: path: message"; true when the
// spec is clean.
bool report_spec_errors(const api::CampaignSpec& spec, std::ostream& err) {
  const auto errors = api::validate(spec);
  for (const api::SpecError& e : errors) err << "error: " << api::to_string(e) << "\n";
  return errors.empty();
}

int cmd_coverage(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: coverage <march> --width B --words N [--scheme S|all] [--classes C,..]\n"
           "                [--seeds 0,1,2] [--backend scalar|packed] [--threads T]\n"
           "                [--simd auto|64|256|512|tiled[:N]] [--schedule dense|repack]\n"
           "                [--collapse on|off] [--regions N]\n";
    return 1;
  }
  const auto spec = spec_from_flags(o, err);
  if (!spec) return 1;
  if (!report_spec_errors(*spec, err)) return 1;
  api::TableSink sink(out);
  api::run_campaign(*spec, &sink);
  return 0;
}

// The migration bridge: print the CampaignSpec a coverage command line
// denotes, ready to be stored and replayed with `run`.
int cmd_spec(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: spec <march> --width B --words N [coverage flags...] [--name LABEL]\n";
    return 1;
  }
  auto spec = spec_from_flags(o, err);
  if (!spec) return 1;
  if (auto it = o.flags.find("name"); it != o.flags.end()) spec->name = it->second;
  if (!report_spec_errors(*spec, err)) return 1;
  out << api::to_json(*spec) << "\n";
  return 0;
}

int cmd_run(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: run <spec.json> [--sink jsonl|csv|table] [--out F]\n"
           "           [--regions N] [--deadline-ms T] [--checkpoint F]\n";
    return 1;
  }
  const std::string& path = o.positional[1];
  std::ifstream in(path);
  if (!in) {
    err << "error: cannot read spec file '" << path << "'\n";
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  std::vector<api::CampaignSpec> specs;
  try {
    specs = api::specs_from_json(text.str());
  } catch (const api::SpecValidationError& e) {
    for (const api::SpecError& se : e.errors())
      err << "error: " << path << ": " << api::to_string(se) << "\n";
    return 1;
  } catch (const api::JsonParseError& e) {
    err << "error: " << path << ": " << e.what() << "\n";
    return 1;
  }
  if (specs.empty()) {
    err << "error: " << path << ": batch contains no specs\n";
    return 1;
  }

  // --regions overrides the spec's run.regions (handy for sweeping the
  // shard count over a stored spec without editing it); --checkpoint
  // persists per-region progress and resumes an interrupted run.  A
  // checkpoint file tracks ONE campaign, so it rejects batches.
  std::string checkpoint_path;
  if (auto it = o.flags.find("checkpoint"); it != o.flags.end()) {
    if (specs.size() > 1) {
      err << "error: --checkpoint tracks a single campaign, got a batch of "
          << specs.size() << " specs\n";
      return 1;
    }
    checkpoint_path = it->second;
  }
  if (o.flags.count("regions")) {
    const auto regions = flag_unsigned(o, "regions", std::nullopt, err);
    if (!regions) return 1;
    for (api::CampaignSpec& spec : specs) spec.regions = *regions;
  }
  // --deadline-ms overrides run.deadline_ms the same way (0 clears it).
  if (o.flags.count("deadline-ms")) {
    const auto deadline = flag_u64(o, "deadline-ms", std::nullopt, err);
    if (!deadline) return 1;
    for (api::CampaignSpec& spec : specs) spec.deadline_ms = *deadline;
  }

  bool valid = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (const api::SpecError& e : api::validate(specs[i])) {
      err << "error: " << path << ": "
          << (specs.size() > 1 ? "spec[" + std::to_string(i) + "]." : "") << api::to_string(e)
          << "\n";
      valid = false;
    }
  }
  if (!valid) return 1;

  std::string sink_name = "table";
  if (auto it = o.flags.find("sink"); it != o.flags.end()) sink_name = it->second;
  if (sink_name != "jsonl" && sink_name != "csv" && sink_name != "table") {
    err << "error: unknown sink '" << sink_name << "' (want jsonl|csv|table)\n";
    return 1;
  }
  // Only open (and truncate) --out once the command line is fully vetted —
  // a rejected invocation must not clobber a previous run's output.
  std::ofstream file_out;
  std::ostream* dest = &out;
  if (auto it = o.flags.find("out"); it != o.flags.end()) {
    file_out.open(it->second);
    if (!file_out) {
      err << "error: cannot write '" << it->second << "'\n";
      return 1;
    }
    dest = &file_out;
  }

  std::unique_ptr<api::ResultSink> sink;
  if (sink_name == "jsonl")
    sink = std::make_unique<api::JsonLinesSink>(*dest);
  else if (sink_name == "csv")
    sink = std::make_unique<api::CsvSink>(*dest);
  else
    sink = std::make_unique<api::TableSink>(*dest);

  for (const api::CampaignSpec& spec : specs)
    api::run_campaign(spec, sink.get(), /*cache=*/nullptr, /*cache_stats=*/nullptr,
                      checkpoint_path);
  return 0;
}

// Streams one human-readable line per completed search round and carries
// the --stop-after budget: after K rounds have completed in THIS process,
// cancelled() flips and the search stops at the next round boundary — the
// checkpoint written for that round is exactly what --resume continues.
class CliExploreObserver : public explore::ExploreObserver {
 public:
  CliExploreObserver(std::ostream& out, unsigned stop_after)
      : out_(out), stop_after_(stop_after) {}

  void on_search_begin(const explore::ExploreSpec& spec, bool resumed) override {
    out_ << "exploring" << (spec.name.empty() ? "" : " '" + spec.name + "'")
         << ": population " << spec.population << ", rounds " << spec.rounds
         << (resumed ? " (resumed)" : "") << "\n";
  }
  void on_round(const explore::RoundSummary& s) override {
    out_ << "round " << s.round << "/" << s.rounds << ": evaluated " << s.evaluations
         << ", cells cached " << s.cells_cached << ", front " << s.front_size;
    if (s.best_feasible != 0) out_ << ", best feasible " << s.best_feasible << "N";
    out_ << "\n";
    ++rounds_seen_;
  }
  bool cancelled() const override {
    return stop_after_ != 0 && rounds_seen_ >= stop_after_;
  }

 private:
  std::ostream& out_;
  unsigned stop_after_;
  unsigned rounds_seen_ = 0;
};

int cmd_explore(const Options& o, std::ostream& out, std::ostream& err) {
  if (o.positional.size() < 2) {
    err << "usage: explore <dse.json> [--out F] [--resume F] [--threads T]\n"
           "               [--rounds R] [--stop-after K]\n";
    return 1;
  }
  const std::string& path = o.positional[1];
  std::ifstream in(path);
  if (!in) {
    err << "error: cannot read explore spec file '" << path << "'\n";
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  explore::ExploreSpec spec;
  try {
    spec = explore::explore_from_json(text.str());
  } catch (const api::SpecValidationError& e) {
    for (const api::SpecError& se : e.errors())
      err << "error: " << path << ": " << api::to_string(se) << "\n";
    return 1;
  } catch (const api::JsonParseError& e) {
    err << "error: " << path << ": " << e.what() << "\n";
    return 1;
  }

  // --threads and --rounds override the stored request; neither is part of
  // the search identity, so a checkpointed search can resume with more
  // rounds or a different thread count and stay on the same trajectory.
  if (o.flags.count("threads")) {
    const auto threads = flag_unsigned(o, "threads", std::nullopt, err);
    if (!threads) return 1;
    spec.threads = *threads;
  }
  if (o.flags.count("rounds")) {
    const auto rounds = flag_unsigned(o, "rounds", std::nullopt, err);
    if (!rounds) return 1;
    spec.rounds = *rounds;
  }
  unsigned stop_after = 0;
  if (o.flags.count("stop-after")) {
    const auto k = flag_unsigned(o, "stop-after", std::nullopt, err);
    if (!k) return 1;
    stop_after = *k;
  }

  bool valid = true;
  for (const api::SpecError& e : explore::validate(spec)) {
    err << "error: " << path << ": " << api::to_string(e) << "\n";
    valid = false;
  }
  if (!valid) return 1;

  std::string state_path;
  if (auto it = o.flags.find("resume"); it != o.flags.end()) state_path = it->second;

  CliExploreObserver observer(out, stop_after);
  const explore::ExploreResult result = explore::run_explore(spec, &observer, state_path);

  out << "\nPareto front (" << result.front.size() << " march"
      << (result.front.size() == 1 ? "" : "es") << ", " << result.evaluations
      << " evaluations, " << result.cells_simulated << " cells simulated / "
      << result.cells_cached << " cached):\n";
  std::vector<std::string> header = {"march", "TCM", "TCP", "weighted", "feasible"};
  for (const explore::ObjectiveClass& oc : spec.objective)
    header.push_back(api::class_label(oc.sel));
  Table t(header);
  for (const explore::Candidate& c : result.front) {
    std::vector<std::string> row;
    std::string body = "{ ";
    for (std::size_t i = 0; i < c.ops.size(); ++i)
      body += (i ? "; " : "") + c.ops[i];
    body += " }";
    row.push_back(body);
    row.push_back(std::to_string(c.complexity.tcm) + "N");
    row.push_back(std::to_string(c.complexity.tcp) + "N");
    row.push_back(std::to_string(c.weighted) + "N");
    row.push_back(c.feasible ? "yes" : "no");
    for (std::size_t i = 0; i < c.detected.size(); ++i)
      row.push_back(std::to_string(c.detected[i]) + "/" + std::to_string(c.totals[i]));
    t.add_row(std::move(row));
  }
  t.print(out);

  if (auto it = o.flags.find("out"); it != o.flags.end()) {
    std::ofstream file_out(it->second);
    if (!file_out) {
      err << "error: cannot write '" << it->second << "'\n";
      return 1;
    }
    file_out << explore::result_to_json(spec, result) << "\n";
  }
  if (result.cancelled)
    out << "\nstopped after round " << result.rounds_run << " of " << spec.rounds
        << " — continue with --resume " << (state_path.empty() ? "<state.json>" : state_path)
        << "\n";
  return 0;
}

// The campaign daemon.  Prints one {"type":"serving",...} line (flushed)
// before entering the accept loop so scripts can scrape the bound port —
// `--port 0` asks the kernel for an ephemeral one.
int cmd_serve(const Options& o, std::ostream& out, std::ostream& err) {
  service::ServerConfig config;
  if (auto it = o.flags.find("host"); it != o.flags.end()) config.host = it->second;
  const auto port = flag_unsigned(o, "port", 0u, err);
  if (!port) return 1;
  if (*port > 65535) {
    err << "error: --port must be 0..65535\n";
    return 1;
  }
  config.port = static_cast<std::uint16_t>(*port);
  if (auto it = o.flags.find("cache-dir"); it != o.flags.end()) config.cache_dir = it->second;
  const auto entries = flag_unsigned(o, "cache-entries", 256u, err);
  if (!entries) return 1;
  config.cache_entries = *entries;
  const auto max_clients = flag_unsigned(o, "max-clients", 32u, err);
  if (!max_clients || *max_clients == 0) {
    if (max_clients) err << "error: --max-clients must be at least 1\n";
    return 1;
  }
  config.max_clients = *max_clients;
  const auto idle = flag_unsigned(o, "idle-timeout-ms", 0u, err);
  if (!idle) return 1;
  config.idle_timeout_ms = *idle;

  service::ServiceServer server(std::move(config));
  const std::uint16_t bound = server.start();
  out << "{\"type\":\"serving\",\"host\":" << api::json_quote(o.flags.count("host") ?
                                                             o.flags.at("host") : "127.0.0.1")
      << ",\"port\":" << bound
      << ",\"engine\":" << api::json_quote(std::string(api::engine_revision())) << "}"
      << std::endl;  // flush: launchers block on this line
  server.serve_forever();
  return 0;
}

// How one request/response exchange with the daemon ended.
enum class Drain {
  kOk,              // terminator frame received
  kRetryableError,  // server sent an error frame with retryable:true
  kFatalError,      // server sent a non-retryable error frame
  kLost,            // connection dropped mid-exchange
};

// Reads the daemon's response lines for one request, echoing each, until
// the frame that ends the exchange.  Error frames carry the server's typed
// verdict (protocol.h error_frame); their retryable bit drives the submit
// retry loop.  Connection-loss reporting is left to the caller, which knows
// whether a retry follows.
Drain drain_response(service::LineClient& client, std::ostream& out) {
  while (true) {
    const auto line = client.recv_line();
    if (!line) return Drain::kLost;
    out << *line << "\n";
    if (const auto info = service::parse_error_frame(*line))
      return info->retryable ? Drain::kRetryableError : Drain::kFatalError;
    try {
      const api::JsonValue doc = api::json_parse(*line);
      const api::JsonValue* type = doc.is_object() ? doc.find("type") : nullptr;
      if (!type || !type->is_string()) continue;
      const std::string& t = type->as_string();
      if (t == "campaign_stats" || t == "pong" || t == "stats" || t == "bye") return Drain::kOk;
    } catch (const api::JsonParseError&) {
      // Echoed verbatim above; keep draining.
    }
  }
}

// Jittered exponential backoff: attempt k (0-based) sleeps uniformly in
// [base*2^k / 2, base*2^k], capped at 30 s.  The half-floor keeps retries
// spaced out; the jitter decorrelates a fleet of clients hammering a
// recovering daemon.
unsigned retry_delay_ms(unsigned backoff_ms, unsigned attempt, Rng& rng) {
  std::uint64_t d = static_cast<std::uint64_t>(backoff_ms) << std::min(attempt, 20u);
  d = std::min<std::uint64_t>(d, 30'000);
  const std::uint64_t lo = d / 2;
  return static_cast<unsigned>(lo + rng.next_below(d - lo + 1));
}

// Sends one frame and drains its response, retrying on connect failures,
// dropped connections, and error frames the server marked retryable —
// non-retryable errors (bad spec, protocol misuse) fail immediately.  A
// retried submit re-runs the campaign from the top; the daemon's result
// cache makes that cheap and the record stream verdict-identical, though
// the client's echoed output contains both attempts.
bool exchange_with_retry(service::LineClient& client, const std::string& frame,
                         const std::string& host, std::uint16_t port, unsigned retries,
                         unsigned backoff_ms, Rng& rng, std::ostream& out, std::ostream& err) {
  for (unsigned attempt = 0;; ++attempt) {
    std::string why;
    Drain result = Drain::kLost;
    if (!client.connected()) {
      std::string connect_error;
      if (!client.connect(host, port, &connect_error)) why = "connect failed: " + connect_error;
    }
    if (client.connected()) {
      if (!client.send_line(frame)) {
        why = "server closed the connection";
      } else {
        result = drain_response(client, out);
        why = result == Drain::kLost ? "server closed the connection"
                                     : "server reported a retryable error";
      }
    }
    if (result == Drain::kOk) return true;
    if (result == Drain::kFatalError) return false;  // typed verdict already echoed
    if (attempt >= retries) {
      if (result == Drain::kLost) err << "error: " << why << "\n";
      return false;
    }
    const unsigned delay = retry_delay_ms(backoff_ms, attempt, rng);
    err << "warning: " << why << "; retrying in " << delay << " ms (attempt " << (attempt + 2)
        << "/" << (retries + 1) << ")\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

// Client of the daemon: submits the spec(s) in a file and tails the result
// stream; --stats and --shutdown send the corresponding control frames;
// --retries/--backoff-ms wrap every exchange in the retry loop above.
int cmd_submit(const Options& o, std::ostream& out, std::ostream& err) {
  const bool want_stats = o.flags.count("stats") != 0;
  const bool want_shutdown = o.flags.count("shutdown") != 0;
  if (o.positional.size() < 2 && !want_stats && !want_shutdown) {
    err << "usage: submit <spec.json> [--host H] [--port P] [--retries N] [--backoff-ms B] "
           "[--stats] [--shutdown]\n";
    return 1;
  }
  std::string host = "127.0.0.1";
  if (auto it = o.flags.find("host"); it != o.flags.end()) host = it->second;
  const auto port = flag_unsigned(o, "port", std::nullopt, err);
  if (!port) return 1;
  if (*port == 0 || *port > 65535) {
    err << "error: --port must be 1..65535\n";
    return 1;
  }
  const auto retries = flag_unsigned(o, "retries", 0u, err);
  if (!retries) return 1;
  const auto backoff = flag_unsigned(o, "backoff-ms", 100u, err);
  if (!backoff || *backoff == 0) {
    if (backoff) err << "error: --backoff-ms must be at least 1\n";
    return 1;
  }

  std::vector<api::CampaignSpec> specs;
  if (o.positional.size() >= 2) {
    const std::string& path = o.positional[1];
    std::ifstream in(path);
    if (!in) {
      err << "error: cannot read spec file '" << path << "'\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      specs = api::specs_from_json(text.str());
    } catch (const api::SpecValidationError& e) {
      for (const api::SpecError& se : e.errors())
        err << "error: " << path << ": " << api::to_string(se) << "\n";
      return 1;
    } catch (const api::JsonParseError& e) {
      err << "error: " << path << ": " << e.what() << "\n";
      return 1;
    }
    if (specs.empty()) {
      err << "error: " << path << ": batch contains no specs\n";
      return 1;
    }
  }

  service::LineClient client;
  const std::uint16_t port16 = static_cast<std::uint16_t>(*port);
  // Jitter source: wall-clock seeded so concurrent clients desynchronize;
  // determinism matters for campaigns, not for backoff spacing.
  Rng rng(static_cast<std::uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()) |
          1u);
  const auto exchange = [&](const std::string& frame) {
    return exchange_with_retry(client, frame, host, port16, *retries, *backoff, rng, out, err);
  };

  bool ok = true;
  for (const api::CampaignSpec& spec : specs) {
    ok = exchange(service::submit_frame(spec)) && ok;
    // Retries exhausted with no connection left: later frames can't fare
    // better — bail instead of burning the whole backoff schedule per spec.
    if (!ok && !client.connected()) return 1;
  }
  if (want_stats) ok = exchange(service::stats_frame()) && ok;
  if (want_shutdown) ok = exchange(service::shutdown_frame()) && ok;
  return ok ? 0 : 1;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  const auto usage = [&err] {
    err << "usage: twm_cli <list|show|transform|complexity|simulate|coverage|spec|run|"
           "explore|simd|serve|submit> ...\n"
           "see src/cli/cli.h for the full synopsis\n";
    return 1;
  };
  const auto opts = parse_args(args, err);
  if (!opts) return 1;
  // Global chaos switch, valid before any command: installs the failpoint
  // spec in this process's registry (equivalent to TWM_FAILPOINTS for
  // every static-lib site; the wide-backend .so self-configures from the
  // environment only — see util/failpoint.h).
  if (auto it = opts->flags.find("failpoints"); it != opts->flags.end()) {
    std::string fperr;
    if (!util::failpoints_configure(it->second, &fperr)) {
      err << "error: --failpoints: " << fperr << "\n";
      return 1;
    }
  }
  if (opts->positional.empty()) return usage();
  const std::string& cmd = opts->positional[0];
  try {
    if (cmd == "list") return cmd_list(out);
    if (cmd == "show") return cmd_show(*opts, out, err);
    if (cmd == "transform") return cmd_transform(*opts, out, err);
    if (cmd == "complexity") return cmd_complexity(*opts, out, err);
    if (cmd == "simulate") return cmd_simulate(*opts, out, err);
    if (cmd == "coverage") return cmd_coverage(*opts, out, err);
    if (cmd == "spec") return cmd_spec(*opts, out, err);
    if (cmd == "run") return cmd_run(*opts, out, err);
    if (cmd == "explore") return cmd_explore(*opts, out, err);
    if (cmd == "simd") return cmd_simd(*opts, out);
    if (cmd == "serve") return cmd_serve(*opts, out, err);
    if (cmd == "submit") return cmd_submit(*opts, out, err);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}

}  // namespace twm
