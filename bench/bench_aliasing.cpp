// Aliasing study (extension).
//
// The paper's introduction notes that signature-based transparent schemes
// "all have the problem of aliasing".  This bench quantifies it on the
// proposed TWMarch:
//
//  1. MISR width sweep — SAF+TF campaign escapes vs signature width
//     (escape probability ~2^-W per fault, structural for tiny W);
//  2. the symmetric XOR-accumulator variant ([18]-style, TCP = 0) against
//     the prediction+MISR flow: session cost vs coverage per fault class.
#include <cstdio>
#include <iostream>

#include "analysis/fault_list.h"
#include "analysis/report.h"
#include "api/runner.h"
#include "bench_common.h"
#include "bist/engine.h"
#include "core/symmetric.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "memsim/memory.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace twm;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const std::size_t kWords = 6;
  const unsigned kWidth = 8;
  const MarchTest bit = march_by_name("March C-");
  const TwmResult twm = twm_transform(bit, kWidth);

  // --- 1. MISR width sweep ------------------------------------------------
  std::cout << "== MISR aliasing vs signature width (March C-, N=" << kWords
            << ", B=" << kWidth << ", SAF+TF campaign) ==\n\n";
  std::vector<Fault> faults = all_safs(kWords, kWidth);
  for (auto& f : all_tfs(kWords, kWidth)) faults.push_back(f);

  Table t({"MISR width", "detected", "escapes (exact-detected only)"});
  for (unsigned mw : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::size_t detected = 0, escapes = 0;
    for (const Fault& f : faults) {
      Rng rng(77);
      Memory mem(kWords, kWidth);
      mem.fill_random(rng);
      mem.inject(f);
      MarchRunner runner(mem);
      const auto out = runner.run_transparent_session(twm.twmarch, twm.prediction, mw);
      detected += out.detected_misr;
      escapes += (out.detected_exact && !out.detected_misr);
    }
    t.add_row({std::to_string(mw), std::to_string(detected) + "/" + std::to_string(faults.size()),
               std::to_string(escapes)});
  }
  t.print(std::cout);

  // --- 2. symmetric (TCP = 0) vs prediction + MISR ------------------------
  std::cout << "\n== symmetric XOR accumulator vs prediction+MISR (extension [18]) ==\n\n";
  const SymmetricTest st = symmetrize(twm.twmarch, kWidth);
  std::printf("session cost per word: symmetric = %zu ops (TCP=0), prediction+MISR = %zu ops "
              "(TCP=%zu, TCM=%zu)\n\n",
              st.test.op_count(), twm.twmarch.op_count() + twm.prediction.op_count(),
              twm.prediction.op_count(), twm.twmarch.op_count());

  // One declarative campaign: both schemes over the full (exhaustive)
  // class selection — what the sampled lists approximated before the
  // packed backend made exhaustive affordable.
  api::CampaignSpec spec = args.spec;
  spec.name = "aliasing-sym-vs-misr";
  spec.words = kWords;
  spec.width = kWidth;
  spec.march = "March C-";
  spec.schemes = {SchemeKind::ProposedSymmetricXor, SchemeKind::ProposedMisr};
  spec.classes = *api::parse_classes("saf,tf,cfid,cfin");
  spec.seeds = {0, 1, 2};
  const api::CampaignSummary summary = api::run_campaign(spec);

  Table c({"fault class", "faults", "symmetric XOR (all)", "prediction+MISR (all)"});
  for (const api::ClassSel& cls : spec.classes) {
    const CoverageOutcome* sym = nullptr;
    const CoverageOutcome* msr = nullptr;
    for (const api::CellResult& cell : summary.cells) {
      if (!(cell.cls == cls)) continue;
      (cell.scheme == SchemeKind::ProposedSymmetricXor ? sym : msr) = &cell.outcome;
    }
    c.add_row({api::class_label(cls), std::to_string(sym->total), coverage_str(*sym),
               coverage_str(*msr)});
  }
  c.print(std::cout);
  std::cout << "\nThe XOR accumulator trades the prediction pass away for structural\n"
               "aliasing (error effects recurring an even number of times cancel);\n"
               "the prediction+MISR flow keeps coverage at the cost of TCP.\n";
  return 0;
}
