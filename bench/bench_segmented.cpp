// Segmented scrubbing study (extension): test the memory one segment per
// idle window.  Session length shrinks by the segment count — an
// exponential completion-probability win — while coupling faults whose
// aggressor and victim land in different segments escape.
//
// Campaign: March C-, B = 8, N = 16 words, exhaustive inter-word CFid;
// segments 1 / 2 / 4 / 8; a fault counts detected when *any* segment's
// session flags it.
#include <atomic>
#include <cstdio>
#include <iostream>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "analysis/interference.h"
#include "bench_common.h"
#include "bist/engine.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "memsim/segment.h"
#include "util/rng.h"
#include "util/table.h"

namespace {
using namespace twm;

bool detect_segmented(const TwmResult& twm, const Fault& f, std::size_t words, unsigned width,
                      std::size_t segments, std::uint64_t seed) {
  Memory mem(words, width);
  Rng rng(seed);
  mem.fill_random(rng);
  mem.inject(f);
  const std::size_t seg_len = words / segments;
  for (std::size_t s = 0; s < segments; ++s) {
    SegmentView view(mem, s * seg_len, seg_len);
    MarchRunner runner(view);
    if (runner.run_transparent_session(twm.twmarch, twm.prediction, width).detected_exact)
      return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace twm;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const std::size_t kWords = 16;
  const unsigned kWidth = 8;
  const double p = 1e-4;  // functional-write probability per cycle

  const TwmResult twm = twm_transform(march_by_name("March C-"), kWidth);
  const auto faults = all_cfs(kWords, kWidth, FaultClass::CFid, CfScope::InterWord);

  std::cout << "== segmented transparent scrubbing (March C-, B=" << kWidth
            << ", N=" << kWords << ", inter-word CFid campaign, p=" << p << ") ==\n\n";

  Table t({"segments", "session len (ops)", "P(complete)", "E[attempts]",
           "inter-word CFid coverage", "cross-segment escapes"});
  const std::size_t per_word = twm.twmarch.op_count() + twm.prediction.op_count();
  for (std::size_t segments : {1u, 2u, 4u, 8u}) {
    const std::size_t seg_words = kWords / segments;
    const InterferenceModel m{per_word * seg_words + 1, p};

    // Each fault's segmented session is independent — shard over the same
    // worker pool the coverage campaigns use (--threads).
    std::vector<char> verdicts(faults.size());
    std::atomic<std::size_t> next{0};
    run_pool(args.spec.threads, [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= faults.size()) break;
        verdicts[i] = detect_segmented(twm, faults[i], kWords, kWidth, segments, 3);
      }
    });
    std::size_t detected = 0, cross = 0, cross_escaped = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const bool same_segment =
          (faults[i].aggressor.word / seg_words) == (faults[i].victim.word / seg_words);
      if (!same_segment) ++cross;
      detected += verdicts[i] != 0;
      if (!same_segment && !verdicts[i]) ++cross_escaped;
    }
    char pc[32], ea[32], cov[32];
    std::snprintf(pc, sizeof pc, "%.3f", m.completion_probability());
    std::snprintf(ea, sizeof ea, "%.2f", m.expected_attempts());
    std::snprintf(cov, sizeof cov, "%.1f%%", 100.0 * detected / faults.size());
    t.add_row({std::to_string(segments), std::to_string(m.session_steps), pc, ea, cov,
               std::to_string(cross_escaped) + "/" + std::to_string(cross)});
  }
  t.print(std::cout);
  std::cout << "\nSegmenting trades cross-segment coupling coverage for session\n"
               "completion probability; intra-segment coverage is untouched.  A\n"
               "rotating segment offset would recover the boundary pairs over\n"
               "successive scrub rounds.\n";
  return 0;
}
