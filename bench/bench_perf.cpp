// google-benchmark microbenchmarks for the library itself: transform cost,
// march-simulation throughput (linear in N — the march property the paper's
// complexity analysis builds on), MISR throughput, and full transparent
// sessions per scheme (the wall-clock counterpart of Table 3).
#include <benchmark/benchmark.h>

#include "api/runner.h"
#include "bist/engine.h"
#include "core/scheme1.h"
#include "core/tomt.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "memsim/memory.h"
#include "util/rng.h"

namespace {
using namespace twm;

void BM_TwmTransform(benchmark::State& state) {
  const MarchTest bit = march_by_name("March C-");
  const unsigned width = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto r = twm_transform(bit, width);
    benchmark::DoNotOptimize(r.twmarch.op_count());
  }
}
BENCHMARK(BM_TwmTransform)->Arg(8)->Arg(32)->Arg(128);

void BM_Scheme1Transform(benchmark::State& state) {
  const MarchTest bit = march_by_name("March C-");
  const unsigned width = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto r = scheme1_transform(bit, width);
    benchmark::DoNotOptimize(r.transparent.op_count());
  }
}
BENCHMARK(BM_Scheme1Transform)->Arg(8)->Arg(32)->Arg(128);

// Transparent session wall-clock vs memory size: linear in N.
void BM_SessionProposed(benchmark::State& state) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  const unsigned width = 32;
  const TwmResult r = twm_transform(march_by_name("March C-"), width);
  Rng rng(1);
  Memory mem(words, width);
  mem.fill_random(rng);
  MarchRunner runner(mem);
  for (auto _ : state) {
    auto out = runner.run_transparent_session(r.twmarch, r.prediction, width);
    benchmark::DoNotOptimize(out.detected_exact);
  }
  state.SetItemsProcessed(state.iterations() * words *
                          (r.twmarch.op_count() + r.prediction.op_count()));
}
BENCHMARK(BM_SessionProposed)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SessionScheme1(benchmark::State& state) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  const unsigned width = 32;
  const Scheme1Result r = scheme1_transform(march_by_name("March C-"), width);
  Rng rng(1);
  Memory mem(words, width);
  mem.fill_random(rng);
  MarchRunner runner(mem);
  for (auto _ : state) {
    auto out = runner.run_transparent_session(r.transparent, r.prediction, width);
    benchmark::DoNotOptimize(out.detected_exact);
  }
  state.SetItemsProcessed(state.iterations() * words *
                          (r.transparent.op_count() + r.prediction.op_count()));
}
BENCHMARK(BM_SessionScheme1)->Arg(64)->Arg(256)->Arg(1024);

void BM_SessionTomt(benchmark::State& state) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  const unsigned width = 32;
  Rng rng(1);
  Memory mem(words, width);
  mem.fill_random(rng);
  const auto ledger = make_parity_ledger(mem);
  for (auto _ : state) {
    auto out = run_tomt(mem, ledger);
    benchmark::DoNotOptimize(out.detected);
  }
  state.SetItemsProcessed(state.iterations() * words * tomt_test(width).op_count());
}
BENCHMARK(BM_SessionTomt)->Arg(64)->Arg(256)->Arg(1024);

void BM_MisrFeed(benchmark::State& state) {
  const unsigned width = static_cast<unsigned>(state.range(0));
  Misr misr(width);
  Rng rng(2);
  const BitVec word = rng.next_word(width);
  for (auto _ : state) {
    misr.feed(word);
    benchmark::DoNotOptimize(misr.signature());
  }
}
BENCHMARK(BM_MisrFeed)->Arg(8)->Arg(32)->Arg(128);

void BM_FaultyWrite(benchmark::State& state) {
  Rng rng(3);
  Memory mem(1024, 32);
  mem.fill_random(rng);
  mem.inject(Fault::cfid({10, 3}, Transition::Up, {20, 7}, true));
  const BitVec d = rng.next_word(32);
  std::size_t a = 0;
  for (auto _ : state) {
    mem.write(a, d);
    a = (a + 1) & 1023;
  }
}
BENCHMARK(BM_FaultyWrite);

// End-to-end cost of the public declarative surface: one full SAF+TF
// campaign through api::run_campaign per iteration (spec validation, fault
// list generation, plan compilation, packed engine) — the overhead budget
// of "new scenario = new spec file" over hand-rolled driver code.
void BM_SpecCampaign(benchmark::State& state) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  api::CampaignSpec spec;
  spec.name = "perf-spec-campaign";
  spec.words = words;
  spec.width = 8;
  spec.march = "March C-";
  spec.schemes = {SchemeKind::ProposedExact};
  spec.classes = *api::parse_classes("saf,tf");
  spec.seeds = {0};
  for (auto _ : state) {
    const api::CampaignSummary summary = api::run_campaign(spec);
    benchmark::DoNotOptimize(summary.cells.back().outcome.detected_all);
  }
  state.SetItemsProcessed(state.iterations() * words * 8 * 4);  // faults per campaign
}
BENCHMARK(BM_SpecCampaign)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
