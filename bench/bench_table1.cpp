// Reproduces Table 1: the content of a word while the first three ATMarch
// elements execute, for a memory with 8-bit words.
//
// The paper prints the content symbolically (b7..b0 with a bar over the
// bits currently inverted).  We execute ATMarch on a single-word memory and
// print, after every operation, both the symbolic form (derived from the
// XOR displacement) and a concrete example with a = 10110010.
#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/fault_list.h"
#include "api/runner.h"
#include "bench_common.h"
#include "bist/engine.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "memsim/memory.h"
#include "util/table.h"

namespace {

using namespace twm;

// Symbolic content "b7 b6 .. b0" with '~' marking inverted bits.
std::string symbolic(const BitVec& displacement) {
  std::string s;
  for (unsigned i = displacement.width(); i-- > 0;) {
    s += displacement.get(i) ? "~b" : " b";
    s += std::to_string(i);
  }
  return s;
}

class Tracer final : public EngineObserver {
 public:
  Tracer(const Memory& mem, const BitVec& a, Table& table) : mem_(mem), a_(a), table_(table) {}

  void on_op(std::size_t element, std::size_t, std::size_t, const Op& op,
             const BitVec&) override {
    if (element != last_element_) {
      table_.add_rule();
      last_element_ = element;
    }
    const BitVec content = mem_.peek(0);
    table_.add_row({"AT" + std::to_string(element + 1), op.to_string(), symbolic(content ^ a_),
                    content.to_string()});
  }

 private:
  const Memory& mem_;
  BitVec a_;
  Table& table_;
  std::size_t last_element_ = static_cast<std::size_t>(-1);
};

}  // namespace

int main(int argc, char** argv) {
  using namespace twm;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  std::printf("== Table 1: word content during the first three ATMarch elements (B=8) ==\n\n");

  const BitVec a = BitVec::from_string("10110010");
  Memory mem(1, 8);
  mem.load({a});

  const MarchTest at = atmarch(8, /*base_inverted=*/false);

  Table table({"element", "operation", "content (symbolic)", "content (a=10110010)"});
  table.add_row({"-", "(initial)", symbolic(BitVec::zeros(8)), a.to_string()});

  Tracer tracer(mem, a, table);
  MarchRunner runner(mem);
  runner.set_observer(&tracer);
  StreamRecorder sink;
  runner.run_test(at, sink);

  table.print(std::cout);

  std::printf("\ncontent restored to a: %s\n", mem.peek(0) == a ? "yes" : "NO");
  std::printf("ATMarch length: %zu operations per word (5*log2(B)+1 = %u)\n", at.op_count(),
              5u * 3u + 1u);

  // What the walk above buys: the checkerboard sweeps restore intra-word
  // coupling-fault coverage the solid backgrounds miss (evaluated with the
  // configured coverage backend, as a declarative spec).
  {
    api::CampaignSpec spec = args.spec;
    spec.name = "table1-atmarch-effect";
    spec.words = 2;
    spec.width = 8;
    spec.march = "March C-";
    spec.schemes = {SchemeKind::TsmarchOnly, SchemeKind::ProposedExact};
    spec.classes = {{api::ClassKind::CFid, CfScope::IntraWord}};
    spec.seeds = {0};
    const api::CampaignSummary summary = api::run_campaign(spec);
    const CoverageOutcome solo = summary.cells[0].outcome;
    const CoverageOutcome full = summary.cells[1].outcome;
    std::printf("ATMarch effect (backend=%s): intra-word CFid coverage %.1f%% -> %.1f%% "
                "(%zu faults, N=%zu, B=8)\n",
                to_string(spec.backend).c_str(), solo.pct_all(), full.pct_all(),
                solo.total, spec.words);
  }
  return 0;
}
