// Reproduces Table 3: time complexity (coefficient of N) of the three
// transparent schemes for March C- and March U across word widths
// 16/32/64/128 — plus the paper's headline ratios and its Sec. 4 example
// (TWMarch(March U), B=8, 29N), and the measured counts of the tests this
// library generates.
#include <cstdio>
#include <iostream>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "bench_common.h"
#include "core/complexity.h"
#include "march/library.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace twm;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  std::cout << "== Table 3: complexity comparison across word widths ==\n"
            << "(total = TCP + TCM, operations per word; formula values)\n\n";

  Table t({"Test", "Word size", "[12] TCM", "[12] TCP", "[12] total", "[13] total",
           "this TCM", "this TCP", "this total", "measured TCM", "measured total"});

  for (const char* name : {"March C-", "March U"}) {
    const auto& info = march_info(name);
    const MarchTest bit = march_by_name(name);
    t.add_rule();
    for (unsigned b : {16u, 32u, 64u, 128u}) {
      const auto s1 = formula_scheme1(info.ops, info.reads, b);
      const auto s2 = formula_tomt(b);
      const auto pr = formula_proposed(info.ops, info.reads, b);
      const auto me = measured_proposed(bit, b);
      t.add_row({name, std::to_string(b) + " bits", coeff_str(s1.tcm), coeff_str(s1.tcp),
                 coeff_str(s1.total()), coeff_str(s2.total()), coeff_str(pr.tcm),
                 coeff_str(pr.tcp), coeff_str(pr.total()), coeff_str(me.tcm),
                 coeff_str(me.total())});
    }
  }
  t.print(std::cout);

  // Headline claims (abstract / Sec. 5 / conclusions).
  const auto& c = march_info("March C-");
  const double prop = formula_proposed(c.ops, c.reads, 32).total();
  const double s1 = formula_scheme1(c.ops, c.reads, 32).total();
  const double s2 = formula_tomt(32).total();
  std::printf("\nMarch C-, B=32: proposed/scheme1 = %.1f%% (paper: ~56%%), "
              "proposed/scheme2 = %.1f%% (paper: ~19%%)\n",
              100.0 * prop / s1, 100.0 * prop / s2);

  // Sec. 4 worked example.
  const auto u8 = measured_proposed(march_by_name("March U"), 8);
  std::printf("Sec. 4 example: TWMarch(March U), B=8: measured TCM = %zuN (paper: 29N), "
              "prediction = %zuN\n",
              u8.tcm, u8.tcp);

  // Sensitivity to the underlying march (Sec. 6 remark): spread between the
  // shortest and longest catalogued march per scheme at B = 64.
  std::size_t min_p = SIZE_MAX, max_p = 0, min_s1 = SIZE_MAX, max_s1 = 0;
  for (const auto& info : march_catalog()) {
    const auto p = formula_proposed(info.ops, info.reads, 64).total();
    const auto s = formula_scheme1(info.ops, info.reads, 64).total();
    min_p = std::min(min_p, p);
    max_p = std::max(max_p, p);
    min_s1 = std::min(min_s1, s);
    max_s1 = std::max(max_s1, s);
  }
  std::printf("march-dependence at B=64: proposed spans %zuN..%zuN (x%.2f), "
              "scheme 1 spans %zuN..%zuN (x%.2f)\n",
              min_p, max_p, double(max_p) / min_p, min_s1, max_s1, double(max_s1) / min_s1);

  // Simulation-throughput footnote: the complexity coefficients above are
  // per-word op counts; the wall-clock of *evaluating* them at scale is the
  // backend's job.  Timed at the table's smallest width.
  {
    const std::size_t words = 4;
    const unsigned b = 16;
    const MarchTest march = march_by_name("March C-");
    std::vector<Fault> faults = all_safs(words, b);
    for (auto& f : all_tfs(words, b)) faults.push_back(f);
    const CampaignRunner scalar{words, b, {CoverageBackend::Scalar, args.spec.threads}};
    const CampaignRunner packed{words, b, {CoverageBackend::Packed, args.spec.threads}};
    std::vector<bool> vs, vp;
    const double ts = bench::time_seconds(
        [&] { vs = scalar.per_fault(SchemeKind::ProposedExact, march, faults, {0, 1}); });
    const double tp = bench::time_seconds(
        [&] { vp = packed.per_fault(SchemeKind::ProposedExact, march, faults, {0, 1}); });
    std::printf("simulation throughput at B=%u (%zu SAF+TF faults, %u threads): "
                "scalar %.0f faults/s, packed %.0f faults/s (%.1fx, verdicts %s)\n",
                b, faults.size(), args.spec.threads, faults.size() / ts, faults.size() / tp,
                ts / tp, vs == vp ? "equal" : "DIFFER");
  }
  return 0;
}
