// Idle-time interference study (the quantitative form of the paper's
// motivation): session completion probability and expected cost for the
// three schemes' session lengths, across functional write rates, with
// Monte-Carlo confirmation.
//
// Scenario: March C-, B = 32, N = 256 words; a functional write arriving in
// any controller step aborts the session (the TBIST controller restores and
// retries at the next idle window).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "analysis/interference.h"
#include "bench_common.h"
#include "core/complexity.h"
#include "march/library.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace twm;
  // Uniform bench flag surface (campaign drivers pass the same flags to
  // every bench); the analytic model itself is single-threaded, so only
  // --json is consumed here.
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const auto& info = march_info("March C-");
  const std::uint64_t n = 256;

  struct Scheme {
    const char* name;
    std::uint64_t session_steps;
  };
  const Scheme schemes[] = {
      {"this work", formula_proposed(info.ops, info.reads, 32).total() * n + 1},
      {"scheme 1 [12]", formula_scheme1(info.ops, info.reads, 32).total() * n + 1},
      {"scheme 2 [13]", formula_tomt(32).total() * n + 1},
  };

  std::cout << "== idle-time interference: March C-, B=32, N=" << n << " ==\n"
            << "(p = functional-write probability per memory cycle; MC = 2000 trials)\n\n";

  Table t({"p (writes/cycle)", "scheme", "session len", "P(complete)", "E[attempts]",
           "E[total steps]", "MC attempts"});
  for (double p : {1e-6, 1e-5, 5e-5, 1e-4, 2e-4}) {
    bool first = true;
    for (const auto& s : schemes) {
      const InterferenceModel m{s.session_steps, p};
      Rng rng(99);
      double mc = 0;
      const int trials = 2000;
      bool mc_feasible = m.completion_probability() > 1e-4;
      if (mc_feasible) {
        for (int i = 0; i < trials; ++i) mc += double(simulate_interference(m, rng).attempts);
        mc /= trials;
      }
      char pc[32], ea[32], es[32], mcs[32];
      std::snprintf(pc, sizeof pc, "%.4f", m.completion_probability());
      std::snprintf(ea, sizeof ea, "%.2f", m.expected_attempts());
      std::snprintf(es, sizeof es, "%.3g", m.expected_total_steps());
      if (mc_feasible)
        std::snprintf(mcs, sizeof mcs, "%.2f", mc);
      else
        std::snprintf(mcs, sizeof mcs, "(skipped)");
      char plabel[32];
      std::snprintf(plabel, sizeof plabel, "%.0e", p);
      t.add_row({first ? plabel : "", s.name, std::to_string(s.session_steps), pc, ea, es, mcs});
      first = false;
    }
    t.add_rule();
  }
  t.print(std::cout);

  std::cout << "\nCompletion probability decays exponentially in session length, so the\n"
               "paper's ~2x / ~5x shorter sessions translate into super-linear gains in\n"
               "completed scrubs per idle budget once traffic is non-negligible.\n";

  if (!args.json.empty()) {
    std::ofstream js(args.json);
    js << "{\"bench\":\"interference\",\"march\":\"March C-\",\"words\":" << n
       << ",\"schemes\":" << std::size(schemes) << "}\n";
    std::printf("wrote %s\n", args.json.c_str());
  }
  return 0;
}
