// Reproduces Table 2: closed-form TCM/TCP of the three transparent test
// schemes, both symbolically and evaluated for the paper's running example
// (March C-, B = 32), alongside the operation counts of the tests this
// library actually generates.
#include <iostream>

#include "api/runner.h"
#include "bench_common.h"
#include "core/complexity.h"
#include "march/library.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace twm;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  std::cout << "== Table 2: time complexity of transparent test schemes ==\n"
            << "(S = ops, Q = reads of the bit-oriented march; B = word width; N words)\n\n";

  Table sym({"Scheme", "TCM", "TCP"});
  sym.add_row({"Scheme 1 [12]", "S*(1+log2 B) * N", "Q*(1+log2 B) * N"});
  sym.add_row({"Scheme 2 [13] (TOMT)", "(7+8B) * N", "none (online)"});
  sym.add_row({"This work (TWM_TA)", "(S+5*log2 B) * N", "(Q+2*log2 B) * N"});
  sym.print(std::cout);

  const auto& info = march_info("March C-");
  const unsigned b = 32;
  const auto s1 = formula_scheme1(info.ops, info.reads, b);
  const auto s2 = formula_tomt(b);
  const auto prop = formula_proposed(info.ops, info.reads, b);

  std::cout << "\nEvaluated for March C- (S=" << info.ops << ", Q=" << info.reads
            << "), B=32:\n\n";
  Table eval({"Scheme", "TCM", "TCP", "total"});
  eval.add_row({"Scheme 1 [12]", coeff_str(s1.tcm), coeff_str(s1.tcp), coeff_str(s1.total())});
  eval.add_row({"Scheme 2 [13]", coeff_str(s2.tcm), "0", coeff_str(s2.total())});
  eval.add_row({"This work", coeff_str(prop.tcm), coeff_str(prop.tcp), coeff_str(prop.total())});
  eval.print(std::cout);

  const auto m_p = measured_proposed(march_by_name("March C-"), b);
  const auto m_s1 = measured_scheme1(march_by_name("March C-"), b);
  std::cout << "\nMeasured operation counts of the generated tests (March C-, B=32):\n\n";
  Table meas({"Scheme", "TCM (measured)", "TCP (measured)", "note"});
  meas.add_row({"Scheme 1 [12]", coeff_str(m_s1.tcm), coeff_str(m_s1.tcp),
                "Sec. 3 construction (T1'..T4')"});
  meas.add_row({"This work", coeff_str(m_p.tcm), coeff_str(m_p.tcp),
                "prediction keeps 3log2B+1 ATMarch reads"});
  meas.print(std::cout);

  // The complexity win must not trade away basic coverage: SAF+TF coverage
  // of the three schemes at the table's word width, evaluated with the
  // configured backend (one declarative spec, scheme x class cells summed
  // per scheme).
  {
    api::CampaignSpec spec = args.spec;
    spec.name = "table2-coverage-crosscheck";
    spec.words = 4;
    spec.width = b;
    spec.march = "March C-";
    spec.schemes = {SchemeKind::Scheme1Exact, SchemeKind::TomtModel, SchemeKind::ProposedExact};
    spec.classes = *api::parse_classes("saf,tf");
    spec.seeds = {0, 1};
    const api::CampaignSummary summary = api::run_campaign(spec);
    std::cout << "\nSAF+TF coverage cross-check (B=" << b << ", "
              << summary.total_faults / spec.schemes.size()
              << " faults, backend=" << to_string(spec.backend)
              << ", threads=" << spec.threads << "):\n";
    for (SchemeKind k : spec.schemes) {
      std::size_t det = 0, total = 0;
      for (const api::CellResult& cell : summary.cells)
        if (cell.scheme == k) {
          det += cell.outcome.detected_all;
          total += cell.outcome.total;
        }
      std::cout << "  " << to_string(k) << ": " << det << "/" << total << "\n";
    }
  }
  return 0;
}
