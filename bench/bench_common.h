// Shared command-line handling for the bench executables.
//
// Every bench parses its flags into a twm::api::CampaignSpec — the same
// declarative value `twm_cli run` executes from a JSON file — so the bench
// flag surface and the public API cannot drift:
//
//   --backend=scalar|packed   simulation backend (default: packed)
//   --threads=N               worker threads for the campaign (default: 1)
//   --simd=auto|64|256|512|tiled[:N]  packed lane-block or tile width (default: auto —
//                             widest the CPU supports; forced widths error
//                             cleanly when the CPU lacks them)
//   --schedule=dense|repack   fault-universe scheduler (default: repack —
//                             survivor repacking + settle-exit +
//                             collapsing; dense = static reference)
//   --collapse=on|off         structural fault collapsing under repack
//                             (default: on)
//   --json=PATH               where to write the bench's JSON result line
//
// Both `--flag=value` and `--flag value` are accepted.  The spec's
// geometry / march / scheme / class members are filled by each bench (they
// reproduce fixed tables from the paper); the flags above set its `run`
// request, and spellings are parsed by the one canonical parser set in
// api/spec.h (api::parse_backend, simd::parse_request).
#ifndef TWM_BENCH_BENCH_COMMON_H
#define TWM_BENCH_BENCH_COMMON_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "api/spec.h"

namespace twm::bench {

struct BenchArgs {
  api::CampaignSpec spec;  // run.{backend,threads,simd} from flags
  std::string json;        // empty = no JSON artifact
};

inline BenchArgs parse_bench_args(int argc, char** argv, const std::string& default_json = "") {
  BenchArgs a;
  a.json = default_json;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--flag=value` and `--flag value`.
    if ((arg == "--backend" || arg == "--threads" || arg == "--simd" || arg == "--json" ||
         arg == "--schedule" || arg == "--collapse") &&
        i + 1 < argc)
      arg += std::string("=") + argv[++i];
    const auto starts = [&](const char* p) { return arg.rfind(p, 0) == 0; };
    if (starts("--backend=")) {
      const std::string v = arg.substr(10);
      const auto backend = api::parse_backend(v);
      if (!backend) {
        std::fprintf(stderr, "unknown backend '%s' (want scalar|packed)\n", v.c_str());
        std::exit(1);
      }
      a.spec.backend = *backend;
    } else if (starts("--threads=")) {
      a.spec.threads = static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 10));
      if (a.spec.threads == 0) a.spec.threads = 1;
    } else if (starts("--simd=")) {
      const auto req = simd::parse_request(arg.substr(7));
      if (!req) {
        std::fprintf(stderr, "unknown simd width '%s' (want auto|64|256|512|tiled[:4096|:32768])\n",
                     arg.c_str() + 7);
        std::exit(1);
      }
      a.spec.simd = *req;
    } else if (starts("--schedule=")) {
      const auto mode = api::parse_schedule(arg.substr(11));
      if (!mode) {
        std::fprintf(stderr, "unknown schedule '%s' (want dense|repack)\n", arg.c_str() + 11);
        std::exit(1);
      }
      a.spec.schedule = *mode;
    } else if (starts("--collapse=")) {
      const auto on = api::parse_on_off(arg.substr(11));
      if (!on) {
        std::fprintf(stderr, "--collapse expects on|off, got '%s'\n", arg.c_str() + 11);
        std::exit(1);
      }
      a.spec.collapse = *on;
    } else if (starts("--json=")) {
      a.json = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (want --backend=scalar|packed --threads=N "
                   "--simd=auto|64|256|512|tiled[:N] --schedule=dense|repack --collapse=on|off "
                   "--json=PATH)\n",
                   arg.c_str());
      std::exit(1);
    }
  }
  // Fail a forced-but-unsupported width here, once, with a clean message —
  // not as an uncaught exception out of the first campaign.
  try {
    simd::resolve(a.spec.simd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(1);
  }
  return a;
}

// Wall-clock seconds of a callable.
template <typename F>
double time_seconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace twm::bench

#endif  // TWM_BENCH_BENCH_COMMON_H
