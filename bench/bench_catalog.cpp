// Catalog survey (extension): for every bit-oriented march in the library,
// the static lint capabilities, the paper-scheme costs at B = 32, and an
// exhaustive bit-level coverage campaign — the table an engineer would use
// to pick the march to feed TWM_TA.
#include <iostream>

#include "analysis/coverage.h"
#include "analysis/fault_list.h"
#include "analysis/lint.h"
#include "analysis/report.h"
#include "core/complexity.h"
#include "march/library.h"
#include "util/table.h"

int main() {
  using namespace twm;
  const std::size_t kWords = 4;
  const std::vector<std::uint64_t> seed{0};

  std::cout << "== march catalog survey (costs at B=32; bit-level campaign on " << kWords
            << " cells) ==\n\n";

  CoverageEvaluator eval(kWords, 1);
  Table t({"march", "S", "Q", "lint", "TWM total", "S1 total", "SAF", "TF", "CF inter"});

  for (const auto& info : march_catalog()) {
    const MarchTest m = march_by_name(info.name);
    const MarchLint lint = lint_march(m);
    const auto p = formula_proposed(info.ops, info.reads, 32);
    const auto s1 = formula_scheme1(info.ops, info.reads, 32);

    const auto saf = eval.evaluate(SchemeKind::WordOrientedMarch, m, all_safs(kWords, 1), seed);
    const auto tf = eval.evaluate(SchemeKind::WordOrientedMarch, m, all_tfs(kWords, 1), seed);
    std::size_t cf_total = 0, cf_det = 0;
    for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin}) {
      const auto cov = eval.evaluate(SchemeKind::WordOrientedMarch, m,
                                     all_cfs(kWords, 1, cls, CfScope::InterWord), seed);
      cf_total += cov.total;
      cf_det += cov.detected_all;
    }

    t.add_row({info.name, std::to_string(info.ops), std::to_string(info.reads), lint.summary(),
               coeff_str(p.total()), coeff_str(s1.total()), pct_str(saf.pct_all()),
               pct_str(tf.pct_all()),
               pct_str(cf_total ? 100.0 * cf_det / cf_total : 0.0)});
  }
  t.print(std::cout);
  std::cout << "\nlint key: SAF/TF/AF = detects the class; CF:full = all 12 read-confirmed\n"
               "inter-cell excitation conditions present.  TWM/S1 totals are TCP+TCM\n"
               "coefficients of N at B=32.\n";
  return 0;
}
