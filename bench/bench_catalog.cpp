// Catalog survey (extension): for every bit-oriented march in the library,
// the static lint capabilities, the paper-scheme costs at B = 32, and an
// exhaustive bit-level coverage campaign — the table an engineer would use
// to pick the march to feed TWM_TA.
#include <iostream>

#include "analysis/lint.h"
#include "analysis/report.h"
#include "api/runner.h"
#include "bench_common.h"
#include "core/complexity.h"
#include "march/library.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace twm;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const std::size_t kWords = 4;

  std::cout << "== march catalog survey (costs at B=32; bit-level campaign on " << kWords
            << " cells) ==\n\n";

  // The per-march campaign, as a spec template: geometry, scheme, classes
  // and seed are fixed; only the march name varies per catalog row.
  api::CampaignSpec spec = args.spec;
  spec.name = "catalog-survey";
  spec.words = kWords;
  spec.width = 1;
  spec.schemes = {SchemeKind::WordOrientedMarch};
  spec.classes = *api::parse_classes("saf,tf,cfst:inter,cfid:inter,cfin:inter");
  spec.seeds = {0};

  Table t({"march", "S", "Q", "lint", "TWM total", "S1 total", "SAF", "TF", "CF inter"});

  for (const auto& info : march_catalog()) {
    const MarchTest m = march_by_name(info.name);
    const MarchLint lint = lint_march(m);
    const auto p = formula_proposed(info.ops, info.reads, 32);
    const auto s1 = formula_scheme1(info.ops, info.reads, 32);

    spec.march = info.name;
    const api::CampaignSummary summary = api::run_campaign(spec);
    const CoverageOutcome& saf = summary.cells[0].outcome;
    const CoverageOutcome& tf = summary.cells[1].outcome;
    std::size_t cf_total = 0, cf_det = 0;
    for (std::size_t c = 2; c < summary.cells.size(); ++c) {
      cf_total += summary.cells[c].outcome.total;
      cf_det += summary.cells[c].outcome.detected_all;
    }

    t.add_row({info.name, std::to_string(info.ops), std::to_string(info.reads), lint.summary(),
               coeff_str(p.total()), coeff_str(s1.total()), pct_str(saf.pct_all()),
               pct_str(tf.pct_all()),
               pct_str(cf_total ? 100.0 * cf_det / cf_total : 0.0)});
  }
  t.print(std::cout);
  std::cout << "\nlint key: SAF/TF/AF = detects the class; CF:full = all 12 read-confirmed\n"
               "inter-cell excitation conditions present.  TWM/S1 totals are TCP+TCM\n"
               "coefficients of N at B=32.\n";
  return 0;
}
