// Reproduces Figure 1.
//
// (a) Two arbitrary cells under the transparent solid march of March C-:
//     the joint state walks all four states in 18 steps (the paper numbers
//     them 1..18); we print the executed sequence.
// (b) Two bits within a word: the solid part only produces both-bits-flip
//     events; the ATMarch checkerboard sweeps add the flip-and-hold events
//     — printed as a per-condition coverage matrix with and without
//     ATMarch.
#include <atomic>
#include <cstdio>
#include <iostream>

#include "analysis/campaign.h"
#include "analysis/pair_trace.h"
#include "bench_common.h"
#include "bist/engine.h"
#include "core/nicolaidis.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "march/printer.h"
#include "march/word_expand.h"
#include "util/table.h"

namespace {
using namespace twm;

void figure_1a() {
  std::cout << "== Figure 1(a): state traversal of two cells, TSMarch(March C-) ==\n\n";
  Memory mem(2, 1);
  mem.load({BitVec::from_string("0"), BitVec::from_string("0")});

  const MarchTest ts = nicolaidis_transparent(solid_march(march_by_name("March C-")));
  std::cout << to_string(ts) << "\n\n";

  PairStateTrace trace(mem, {0, 0}, {1, 0});
  MarchRunner runner(mem);
  runner.set_observer(&trace);
  StreamRecorder sink;
  runner.run_test(ts, sink);

  Table t({"step", "op", "cell", "state (Di Dj)"});
  std::size_t step = 1;
  for (const auto& ev : trace.events()) {
    t.add_row({std::to_string(step++), ev.kind == OpKind::Read ? "r" : "w",
               ev.addr == 0 ? "i" : "j",
               std::string(ev.after_i ? "1" : "0") + " " + (ev.after_j ? "1" : "0")});
  }
  t.print(std::cout);
  std::printf("steps: %zu (paper: sequence 1..18)   distinct joint states: %zu/4\n\n",
              trace.step_count(), trace.states_visited().size());
}

IntraPairConditions run_pair(const MarchTest& test, unsigned width, unsigned agg, unsigned vic) {
  Memory mem(1, width);
  PairStateTrace trace(mem, {0, agg}, {0, vic});
  MarchRunner runner(mem);
  runner.set_observer(&trace);
  StreamRecorder sink;
  runner.run_test(test, sink);
  return analyze_intra_pair(trace.events());
}

void figure_1b(unsigned threads) {
  const unsigned width = 8;
  std::cout << "== Figure 1(b): intra-word bit-pair write conditions (B=8) ==\n"
            << "condition key: dir ^ / v = aggressor up/down; hold / flip = victim "
               "behaviour during the write (followed by a read)\n\n";

  const TwmResult r = twm_transform(march_by_name("March C-"), width);

  Table t({"aggressor,victim", "test", "^hold", "vhold", "^flip", "vflip"});
  const auto fmt = [](bool b) { return b ? std::string("yes") : std::string("-"); };
  for (auto [agg, vic] : {std::pair<unsigned, unsigned>{0, 1}, {1, 0}, {0, 4}, {2, 5}}) {
    const auto solo = run_pair(r.tsmarch, width, agg, vic);
    const auto full = run_pair(r.twmarch, width, agg, vic);
    t.add_row({"b" + std::to_string(agg) + ",b" + std::to_string(vic), "TSMarch only",
               fmt(solo.covered[0][0]), fmt(solo.covered[1][0]), fmt(solo.covered[0][1]),
               fmt(solo.covered[1][1])});
    t.add_row({"", "TWMarch (+ATMarch)", fmt(full.covered[0][0]), fmt(full.covered[1][0]),
               fmt(full.covered[0][1]), fmt(full.covered[1][1])});
    t.add_rule();
  }
  t.print(std::cout);

  // Aggregate over all ordered pairs — each pair's two single-word sessions
  // are independent, so the sweep shards across the same worker pool the
  // coverage campaigns use (analysis/campaign.h).
  std::vector<std::pair<unsigned, unsigned>> pair_list;
  for (unsigned i = 0; i < width; ++i)
    for (unsigned j = 0; j < width; ++j)
      if (i != j) pair_list.emplace_back(i, j);
  struct PairVerdicts {
    bool solo_all = false, full_all = false, fliphold = false;
  };
  std::vector<PairVerdicts> verdicts(pair_list.size());
  std::atomic<std::size_t> next{0};
  run_pool(threads, [&] {
    for (;;) {
      const std::size_t p = next.fetch_add(1);
      if (p >= pair_list.size()) break;
      const auto [i, j] = pair_list[p];
      const auto solo = run_pair(r.tsmarch, width, i, j);
      const auto full = run_pair(r.twmarch, width, i, j);
      verdicts[p] = {solo.all(), full.all(),
                     full.aggressor_flip_victim_holds_both_dirs()};
    }
  });
  unsigned pairs = static_cast<unsigned>(pair_list.size());
  unsigned full_all = 0, solo_all = 0, full_fliphold = 0;
  for (const auto& v : verdicts) {
    solo_all += v.solo_all;
    full_all += v.full_all;
    full_fliphold += v.fliphold;
  }
  std::printf("\nordered pairs with all four conditions: TSMarch %u/%u, TWMarch %u/%u\n",
              solo_all, pairs, full_all, pairs);
  std::printf("ordered pairs with flip-and-hold both directions under TWMarch: %u/%u\n"
              "(every unordered pair is separated in exactly one orientation — the\n"
              " checkerboard family's structural property; see EXPERIMENTS.md)\n",
              full_fliphold, pairs);
}

}  // namespace

int main(int argc, char** argv) {
  const twm::bench::BenchArgs args = twm::bench::parse_bench_args(argc, argv);
  figure_1a();
  figure_1b(args.spec.threads);
  return 0;
}
