// Reproduces the Sec. 5 fault-coverage analysis as an empirical campaign:
// per fault class, the coverage of the proposed TWMarch (exact and MISR
// checked) against the nontransparent SMarch+AMarch reference, the full
// word-oriented march, Scheme 1 [12], the TOMT model [13], and the ablated
// TSMarch-only test.
//
// "all" = detected under every evaluated initial content (what the paper's
// theorem speaks about), "any" = under at least one.
//
// The campaign is a declarative api::CampaignSpec (every scheme x every
// fault class, coupling faults split :inter / :intra as the paper tabulates
// them) executed by api::run_campaign with the human table sink — exactly
// what `twm_cli run` would do for the same spec file.  Flags select the
// backend (--backend=scalar|packed), worker count (--threads=N), packed
// lane-block or tile width (--simd=auto|64|256|512|tiled[:N]), and scheduler
// (--schedule=dense|repack, --collapse=on|off).  The bench then times the
// scalar reference, the 64-lane packed baseline, and the selected wide
// width (all on the dense static scheduler, the committed-baseline axis)
// plus the survivor-repacking scheduler at the same width, on a
// production-shaped high-detection fault list; a second "settling"
// workload (RET + SAF over several contents, most verdicts final after
// the first seed round) isolates the survivor-repacking win.  Lane
// occupancy, session-element, and collapsing counters are emitted so the
// scheduler gains stay attributable.  Writes everything to
// BENCH_coverage.json (--json=PATH overrides) and exits non-zero if ANY
// pair — backend, width, or scheduler mode — disagrees
// verdict-for-verdict.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "api/runner.h"
#include "api/sink.h"
#include "bench_common.h"
#include "core/simd.h"
#include "march/library.h"
#include "memsim/packed_memory.h"

int main(int argc, char** argv) {
  using namespace twm;
  bench::BenchArgs args = bench::parse_bench_args(argc, argv, "BENCH_coverage.json");
  // The throughput section always runs the packed widths, whatever backend
  // the coverage tables use, so the width request resolves unconditionally.
  const simd::Width simd_width = simd::resolve(args.spec.simd);

  // The Sec. 5 campaign, as a value.
  api::CampaignSpec spec = args.spec;
  spec.name = "sec5-coverage";
  spec.words = 4;
  spec.width = 4;
  spec.march = "March C-";
  spec.schemes.assign(std::begin(kAllSchemes), std::end(kAllSchemes));
  spec.classes = *api::parse_classes(
      "saf,tf,cfst:inter,cfst:intra,cfid:inter,cfid:intra,cfin:inter,cfin:intra,af");
  spec.seeds = {0, 1, 2};  // 0 = all-zero contents

  std::cout << "== Sec. 5: empirical fault coverage (spec '" << spec.name
            << "', contents: zero + 2 random) ==\n\n";
  api::TableSink table(std::cout);
  api::run_campaign(spec, &table);

  // The theorem check: per-fault verdict equality at the reference content.
  const CampaignRunner runner(spec.words, spec.width, spec.options());
  const MarchTest march = march_by_name(spec.march);
  std::vector<Fault> everything;
  for (const api::ClassSel& cls : spec.classes)
    for (const Fault& f : api::build_fault_list(cls, spec.words, spec.width))
      everything.push_back(f);
  const auto ref =
      runner.per_fault(SchemeKind::NontransparentReference, march, everything, {0});
  const auto prop = runner.per_fault(SchemeKind::ProposedExact, march, everything, {0});
  std::size_t agree = 0;
  for (std::size_t i = 0; i < everything.size(); ++i) agree += (ref[i] == prop[i]);
  std::printf("\ntheorem (Sec. 5): per-fault verdicts TWMarch vs SMarch+AMarch at zero "
              "content: %zu/%zu agree\n",
              agree, everything.size());

  // Backend throughput: a production-shaped campaign (a 256 x 4 memory,
  // every SAF/TF plus neighbour AFs and sampled coupling faults — large
  // enough that per-unit overheads amortize over real session work) on the
  // scalar reference, the 64-lane packed baseline, and the selected SIMD
  // width, all with the requested thread count.  Timed on the zero-content
  // slice so every unit runs exactly one session and batch granularity
  // cannot skew the comparison via the per-seed early exit.  The scalar
  // backend is timed on a fixed slice of the list (its per-fault cost is
  // uniform, and the full list would take seconds); the packed widths run
  // the full list and must agree verdict-for-verdict with each other
  // everywhere and with the scalar reference on the slice.
  const std::size_t kBenchWords = 256;
  const unsigned kBenchWidth = 4;
  const std::size_t kScalarSlice = 256;
  const std::vector<std::uint64_t> bench_seeds{0};
  Rng cf_rng(7);
  std::vector<Fault> workload;
  for (auto& f : all_safs(kBenchWords, kBenchWidth)) workload.push_back(f);
  for (auto& f : all_tfs(kBenchWords, kBenchWidth)) workload.push_back(f);
  for (std::size_t w = 0; w < kBenchWords; ++w) {
    workload.push_back(Fault::af_no_access(w));
    workload.push_back(Fault::af_alias(w, (w + 1) % kBenchWords));
  }
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin})
    for (auto& f : sampled_cfs(kBenchWords, kBenchWidth, cls, CfScope::Both, 1024, cf_rng))
      workload.push_back(f);
  const std::vector<Fault> scalar_slice(workload.begin(), workload.begin() + kScalarSlice);

  const unsigned threads = args.spec.threads;
  // The scalar / 64-lane / wide timings run the DENSE (static) scheduler —
  // the PR 3/4 baseline the committed BENCH_coverage.json numbers track —
  // so the repack row below attributes the scheduler win cleanly.
  const CampaignRunner scalar_runner(
      kBenchWords, kBenchWidth,
      {CoverageBackend::Scalar, threads, simd::Request::Auto, ScheduleMode::Dense});
  const CampaignRunner packed64_runner(
      kBenchWords, kBenchWidth,
      {CoverageBackend::Packed, threads, simd::Request::W64, ScheduleMode::Dense});
  const CampaignRunner packed_runner(
      kBenchWords, kBenchWidth,
      {CoverageBackend::Packed, threads, args.spec.simd, ScheduleMode::Dense});
  const CampaignRunner repack_runner(
      kBenchWords, kBenchWidth,
      {CoverageBackend::Packed, threads, args.spec.simd, ScheduleMode::Repack,
       args.spec.collapse});
  const auto per_fault_stats = [&](const CampaignRunner& r, const std::vector<Fault>& faults,
                                   const std::vector<std::uint64_t>& seeds,
                                   CampaignStats* stats) {
    return r.per_fault(SchemeKind::ProposedExact, march, faults, seeds, stats);
  };
  std::vector<bool> v_scalar, v_packed64, v_packed, v_repack;
  CampaignStats dense_stats, repack_stats;
  const double t_scalar = bench::time_seconds([&] {
    v_scalar = per_fault_stats(scalar_runner, scalar_slice, bench_seeds, nullptr);
  });
  const double t_packed64 = bench::time_seconds([&] {
    v_packed64 = per_fault_stats(packed64_runner, workload, bench_seeds, nullptr);
  });
  const double t_packed = bench::time_seconds([&] {
    v_packed = per_fault_stats(packed_runner, workload, bench_seeds, &dense_stats);
  });
  const double t_repack = bench::time_seconds([&] {
    v_repack = per_fault_stats(repack_runner, workload, bench_seeds, &repack_stats);
  });
  const double fps_scalar = scalar_slice.size() / t_scalar;
  const double fps_packed64 = workload.size() / t_packed64;
  const double fps_packed = workload.size() / t_packed;
  const double fps_repack = workload.size() / t_repack;
  const double speedup = fps_packed / fps_scalar;
  const double widen_speedup = fps_packed / fps_packed64;
  const double repack_speedup = fps_repack / fps_packed;
  const unsigned lanes = simd::lanes(simd_width);
  const double occupancy = repack_stats.mean_live_lanes() / (lanes - 1);
  const double elements_frac =
      repack_stats.elements_total.load()
          ? static_cast<double>(repack_stats.elements_executed.load()) /
                static_cast<double>(repack_stats.elements_total.load())
          : 1.0;
  const bool scalar_slice_equal =
      std::equal(v_scalar.begin(), v_scalar.end(), v_packed.begin()) &&
      std::equal(v_scalar.begin(), v_scalar.end(), v_packed64.begin());
  const bool schedule_equal = v_repack == v_packed;
  std::printf("\nbackend throughput (TWMarch exact, N=%zu, B=%u, %zu faults x %zu contents, "
              "%u threads; scalar timed on a %zu-fault slice):\n",
              kBenchWords, kBenchWidth, workload.size(), bench_seeds.size(), threads,
              scalar_slice.size());
  std::printf("  scalar:        %8.0f faults/s  (%.3fs)\n", fps_scalar, t_scalar);
  std::printf("  packed/64:     %8.0f faults/s  (%.3fs)  -> %.1fx over scalar\n", fps_packed64,
              t_packed64, fps_packed64 / fps_scalar);
  std::printf("  packed/%-5s  %8.0f faults/s  (%.3fs)  -> %.1fx over scalar, %.2fx over "
              "64-lane\n",
              (simd::to_string(simd_width) + ":").c_str(), fps_packed, t_packed, speedup,
              widen_speedup);
  std::printf("  repack/%-5s  %8.0f faults/s  (%.3fs)  -> %.2fx over dense "
              "(%zu of %zu faults simulated, %.0f%% of march elements run)\n",
              (simd::to_string(simd_width) + ":").c_str(), fps_repack, t_repack, repack_speedup,
              static_cast<std::size_t>(repack_stats.faults_simulated.load()), workload.size(),
              100.0 * elements_frac);

  // The tiled backend on the same workload: 4096 fault universes per pass
  // (array-of-lane-blocks, memsim/lane_tile.h), repack scheduler — the
  // whole 7680-fault list runs in two tile units per round.  Must agree
  // verdict-for-verdict with every row above.
  const simd::Width tiled_width = simd::Width::Tiled4096;
  const CampaignRunner tiled_runner(
      kBenchWords, kBenchWidth,
      {CoverageBackend::Packed, threads, simd::Request::Tiled4096, ScheduleMode::Repack,
       args.spec.collapse});
  CampaignStats tiled_stats;
  std::vector<bool> v_tiled;
  const double t_tiled = bench::time_seconds([&] {
    v_tiled = per_fault_stats(tiled_runner, workload, bench_seeds, &tiled_stats);
  });
  const double fps_tiled = workload.size() / t_tiled;
  const double tiled_speedup = fps_tiled / fps_repack;
  const double tiled_occupancy =
      tiled_stats.mean_live_lanes() / (simd::lanes(tiled_width) - 1);
  const bool tiled_equal = v_tiled == v_repack;
  std::printf("  tiled/4096:    %8.0f faults/s  (%.3fs, %.0f%% live lanes)  -> %.2fx over "
              "repack/%s\n",
              fps_tiled, t_tiled, 100.0 * tiled_occupancy, tiled_speedup,
              simd::to_string(simd_width).c_str());

  // The settling workload: most faults' verdicts settle in the first seed
  // round (RET faults are invisible to a Del-free March C-, so their "all"
  // verdict drops at seed 0), which is where survivor repacking pays —
  // dense batches drag the settled universes through every remaining
  // round, repacked rounds shrink to the undecided tail.
  std::vector<Fault> settling = all_rets(kBenchWords, kBenchWidth, 1);
  for (auto& f : all_safs(kBenchWords, kBenchWidth)) settling.push_back(f);
  const std::vector<std::uint64_t> settling_seeds{1, 2, 3, 4};
  CampaignStats settling_dense_stats, settling_repack_stats;
  std::vector<bool> vs_dense, vs_repack;
  const double ts_dense = bench::time_seconds([&] {
    vs_dense = per_fault_stats(packed_runner, settling, settling_seeds, &settling_dense_stats);
  });
  const double ts_repack = bench::time_seconds([&] {
    vs_repack = per_fault_stats(repack_runner, settling, settling_seeds,
                                &settling_repack_stats);
  });
  const double fps_settling_dense = settling.size() / ts_dense;
  const double fps_settling_repack = settling.size() / ts_repack;
  const double settling_speedup = fps_settling_repack / fps_settling_dense;
  const double settling_occupancy = settling_repack_stats.mean_live_lanes() / (lanes - 1);
  const double settling_dense_occupancy =
      settling_dense_stats.mean_live_lanes() / (lanes - 1);
  const bool settling_equal = vs_dense == vs_repack;
  std::printf("\nsettling workload (RET+SAF, %zu faults x %zu contents; RETs settle in seed "
              "round 0):\n",
              settling.size(), settling_seeds.size());
  std::printf("  dense/%-5s   %8.0f faults/s  (%.3fs, %.0f%% live lanes)\n",
              (simd::to_string(simd_width) + ":").c_str(), fps_settling_dense, ts_dense,
              100.0 * settling_dense_occupancy);
  std::printf("  repack/%-5s  %8.0f faults/s  (%.3fs, %.0f%% live lanes)  -> %.2fx over "
              "dense\n",
              (simd::to_string(simd_width) + ":").c_str(), fps_settling_repack, ts_repack,
              100.0 * settling_occupancy, settling_speedup);

  // Huge-memory workload: a 1M-word geometry with a footprint-bounded
  // sampled fault list ("@N" selectors — the only runnable shape at this
  // scale).  Exercises the paged sparse memories end to end: the working
  // set is the pages the fault footprint touches, not `words`, and
  // pages_peak is the claim in one number.  Runs region-sharded (the
  // huge-memory scheduling mode) and unsharded; the merged verdicts must
  // be identical.
  const std::size_t kHugeWords = std::size_t{1} << 20;
  const unsigned kHugeWidth = 4;
  const unsigned kHugeRegions = 4;
  const std::vector<api::ClassSel> huge_classes =
      *api::parse_classes("saf@2048,tf@1024,cfid:inter@512");
  std::vector<Fault> huge;
  for (const api::ClassSel& cls : huge_classes)
    for (const Fault& f : api::build_fault_list(cls, kHugeWords, kHugeWidth))
      huge.push_back(f);
  const std::vector<std::uint64_t> huge_seeds{0};
  const CampaignRunner huge_runner(
      kHugeWords, kHugeWidth,
      {CoverageBackend::Packed, threads, args.spec.simd, ScheduleMode::Repack,
       args.spec.collapse, kHugeRegions});
  const CampaignRunner huge_runner_r1(
      kHugeWords, kHugeWidth,
      {CoverageBackend::Packed, threads, args.spec.simd, ScheduleMode::Repack,
       args.spec.collapse, 1});
  CampaignStats huge_stats;
  std::vector<bool> vh_regions, vh_flat;
  const double t_huge = bench::time_seconds([&] {
    vh_regions = per_fault_stats(huge_runner, huge, huge_seeds, &huge_stats);
  });
  vh_flat = per_fault_stats(huge_runner_r1, huge, huge_seeds, nullptr);
  const double fps_huge = huge.size() / t_huge;
  const std::uint64_t huge_pages_peak = huge_stats.pages_peak.load();
  const std::uint64_t huge_packed_peak = huge_stats.packed_pages_peak.load();
  const std::size_t huge_pages_total = (kHugeWords + kMemPageWords - 1) / kMemPageWords;
  const bool huge_equal = vh_regions == vh_flat;
  std::printf("\nhuge-memory workload (N=%zu words, %zu sampled faults, %u regions, "
              "repack):\n",
              kHugeWords, huge.size(), kHugeRegions);
  std::printf("  regions/%u:     %8.0f faults/s  (%.3fs; peak %llu of %zu pages touched, "
              "%llu in lane-block form = %.2f%% of the address space)\n",
              kHugeRegions, fps_huge, t_huge,
              static_cast<unsigned long long>(huge_pages_peak), huge_pages_total,
              static_cast<unsigned long long>(huge_packed_peak),
              100.0 * static_cast<double>(huge_packed_peak) /
                  static_cast<double>(huge_pages_total));

  // The tiled backend at the 1M-word geometry, region-sharded like the row
  // above.  One 4096-lane tile swallows the whole sampled list per region
  // pass; pages stay bounded by the fault footprint exactly as at
  // single-block widths.
  const CampaignRunner huge_tiled_runner(
      kHugeWords, kHugeWidth,
      {CoverageBackend::Packed, threads, simd::Request::Tiled4096, ScheduleMode::Repack,
       args.spec.collapse, kHugeRegions});
  CampaignStats huge_tiled_stats;
  std::vector<bool> vh_tiled;
  const double t_huge_tiled = bench::time_seconds([&] {
    vh_tiled = per_fault_stats(huge_tiled_runner, huge, huge_seeds, &huge_tiled_stats);
  });
  const double fps_huge_tiled = huge.size() / t_huge_tiled;
  const bool huge_tiled_equal = vh_tiled == vh_flat;
  std::printf("  tiled/4096:    %8.0f faults/s  (%.3fs; peak %llu pages, %llu packed)\n",
              fps_huge_tiled, t_huge_tiled,
              static_cast<unsigned long long>(huge_tiled_stats.pages_peak.load()),
              static_cast<unsigned long long>(huge_tiled_stats.packed_pages_peak.load()));

  const bool verdicts_equal = scalar_slice_equal && v_packed64 == v_packed &&
                              schedule_equal && tiled_equal && settling_equal && huge_equal &&
                              huge_tiled_equal;
  std::printf("\n  verdict equality (scalar == packed/64 == packed/%s == repack == tiled/4096, "
              "dense == repack on settling, regions %u == 1 == tiled on huge): %s\n",
              simd::to_string(simd_width).c_str(), kHugeRegions,
              verdicts_equal ? "EXACT" : "MISMATCH");

  if (!args.json.empty()) {
    std::ofstream js(args.json);
    js << "{\"bench\":\"coverage\",\"march\":\"March C-\",\"words\":" << kBenchWords
       << ",\"width\":" << kBenchWidth << ",\"faults\":" << workload.size()
       << ",\"seeds\":" << bench_seeds.size() << ",\"threads\":" << threads
       << ",\"simd_lanes\":" << simd::lanes(simd_width)
       << ",\"scalar_faults_per_sec\":" << fps_scalar
       << ",\"packed64_faults_per_sec\":" << fps_packed64
       << ",\"packed_faults_per_sec\":" << fps_packed
       << ",\"repack_faults_per_sec\":" << fps_repack << ",\"speedup\":" << speedup
       << ",\"widen_speedup\":" << widen_speedup << ",\"repack_speedup\":" << repack_speedup
       << ",\"faults_simulated\":" << repack_stats.faults_simulated.load()
       << ",\"mean_live_lanes\":" << repack_stats.mean_live_lanes()
       << ",\"lane_occupancy\":" << occupancy
       << ",\"session_elements_total\":" << repack_stats.elements_total.load()
       << ",\"session_elements_executed\":" << repack_stats.elements_executed.load()
       << ",\"settling_faults\":" << settling.size()
       << ",\"settling_seeds\":" << settling_seeds.size()
       << ",\"settling_dense_faults_per_sec\":" << fps_settling_dense
       << ",\"settling_repack_faults_per_sec\":" << fps_settling_repack
       << ",\"settling_repack_speedup\":" << settling_speedup
       << ",\"settling_lane_occupancy\":" << settling_occupancy
       << ",\"settling_dense_lane_occupancy\":" << settling_dense_occupancy
       << ",\"tiled_lanes\":" << simd::lanes(tiled_width)
       << ",\"tiled_faults_per_sec\":" << fps_tiled
       << ",\"tiled_speedup\":" << tiled_speedup
       << ",\"tiled_lane_occupancy\":" << tiled_occupancy
       << ",\"huge_words\":" << kHugeWords << ",\"huge_faults\":" << huge.size()
       << ",\"huge_regions\":" << kHugeRegions
       << ",\"huge_faults_per_sec\":" << fps_huge
       << ",\"huge_tiled_faults_per_sec\":" << fps_huge_tiled
       << ",\"huge_pages_peak\":" << huge_pages_peak
       << ",\"huge_packed_pages_peak\":" << huge_packed_peak
       << ",\"huge_pages_total\":" << huge_pages_total
       << ",\"verdicts_equal\":" << (verdicts_equal ? "true" : "false")
       << ",\"theorem_agree\":" << agree << ",\"theorem_total\":" << everything.size() << "}\n";
    std::printf("  wrote %s\n", args.json.c_str());
  }
  return verdicts_equal ? 0 : 1;
}
