// Reproduces the Sec. 5 fault-coverage analysis as an empirical campaign:
// per fault class, the coverage of the proposed TWMarch (exact and MISR
// checked) against the nontransparent SMarch+AMarch reference, the full
// word-oriented march, Scheme 1 [12], the TOMT model [13], and the ablated
// TSMarch-only test.
//
// "all" = detected under every evaluated initial content (what the paper's
// theorem speaks about), "any" = under at least one.
//
// The campaign is a declarative api::CampaignSpec (every scheme x every
// fault class, coupling faults split :inter / :intra as the paper tabulates
// them) executed by api::run_campaign with the human table sink — exactly
// what `twm_cli run` would do for the same spec file.  Flags select the
// backend (--backend=scalar|packed), worker count (--threads=N) and packed
// lane-block width (--simd=auto|64|256|512).  The bench then times the
// scalar reference, the 64-lane packed baseline, and the selected wide
// width on a production-shaped fault list and writes the throughput
// comparison to BENCH_coverage.json (--json=PATH overrides).  Exits
// non-zero if any backend/width pair disagrees verdict-for-verdict.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "api/runner.h"
#include "api/sink.h"
#include "bench_common.h"
#include "core/simd.h"
#include "march/library.h"

int main(int argc, char** argv) {
  using namespace twm;
  bench::BenchArgs args = bench::parse_bench_args(argc, argv, "BENCH_coverage.json");
  // The throughput section always runs the packed widths, whatever backend
  // the coverage tables use, so the width request resolves unconditionally.
  const simd::Width simd_width = simd::resolve(args.spec.simd);

  // The Sec. 5 campaign, as a value.
  api::CampaignSpec spec = args.spec;
  spec.name = "sec5-coverage";
  spec.words = 4;
  spec.width = 4;
  spec.march = "March C-";
  spec.schemes.assign(std::begin(kAllSchemes), std::end(kAllSchemes));
  spec.classes = *api::parse_classes(
      "saf,tf,cfst:inter,cfst:intra,cfid:inter,cfid:intra,cfin:inter,cfin:intra,af");
  spec.seeds = {0, 1, 2};  // 0 = all-zero contents

  std::cout << "== Sec. 5: empirical fault coverage (spec '" << spec.name
            << "', contents: zero + 2 random) ==\n\n";
  api::TableSink table(std::cout);
  api::run_campaign(spec, &table);

  // The theorem check: per-fault verdict equality at the reference content.
  const CampaignRunner runner(spec.words, spec.width, spec.options());
  const MarchTest march = march_by_name(spec.march);
  std::vector<Fault> everything;
  for (const api::ClassSel& cls : spec.classes)
    for (const Fault& f : api::build_fault_list(cls, spec.words, spec.width))
      everything.push_back(f);
  const auto ref =
      runner.per_fault(SchemeKind::NontransparentReference, march, everything, {0});
  const auto prop = runner.per_fault(SchemeKind::ProposedExact, march, everything, {0});
  std::size_t agree = 0;
  for (std::size_t i = 0; i < everything.size(); ++i) agree += (ref[i] == prop[i]);
  std::printf("\ntheorem (Sec. 5): per-fault verdicts TWMarch vs SMarch+AMarch at zero "
              "content: %zu/%zu agree\n",
              agree, everything.size());

  // Backend throughput: a production-shaped campaign (a 256 x 4 memory,
  // every SAF/TF plus neighbour AFs and sampled coupling faults — large
  // enough that per-unit overheads amortize over real session work) on the
  // scalar reference, the 64-lane packed baseline, and the selected SIMD
  // width, all with the requested thread count.  Timed on the zero-content
  // slice so every unit runs exactly one session and batch granularity
  // cannot skew the comparison via the per-seed early exit.  The scalar
  // backend is timed on a fixed slice of the list (its per-fault cost is
  // uniform, and the full list would take seconds); the packed widths run
  // the full list and must agree verdict-for-verdict with each other
  // everywhere and with the scalar reference on the slice.
  const std::size_t kBenchWords = 256;
  const unsigned kBenchWidth = 4;
  const std::size_t kScalarSlice = 256;
  const std::vector<std::uint64_t> bench_seeds{0};
  Rng cf_rng(7);
  std::vector<Fault> workload;
  for (auto& f : all_safs(kBenchWords, kBenchWidth)) workload.push_back(f);
  for (auto& f : all_tfs(kBenchWords, kBenchWidth)) workload.push_back(f);
  for (std::size_t w = 0; w < kBenchWords; ++w) {
    workload.push_back(Fault::af_no_access(w));
    workload.push_back(Fault::af_alias(w, (w + 1) % kBenchWords));
  }
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin})
    for (auto& f : sampled_cfs(kBenchWords, kBenchWidth, cls, CfScope::Both, 1024, cf_rng))
      workload.push_back(f);
  const std::vector<Fault> scalar_slice(workload.begin(), workload.begin() + kScalarSlice);

  const unsigned threads = args.spec.threads;
  const CampaignRunner scalar_runner(kBenchWords, kBenchWidth,
                                     {CoverageBackend::Scalar, threads});
  const CampaignRunner packed64_runner(
      kBenchWords, kBenchWidth, {CoverageBackend::Packed, threads, simd::Request::W64});
  const CampaignRunner packed_runner(kBenchWords, kBenchWidth,
                                     {CoverageBackend::Packed, threads, args.spec.simd});
  std::vector<bool> v_scalar, v_packed64, v_packed;
  const double t_scalar = bench::time_seconds([&] {
    v_scalar =
        scalar_runner.per_fault(SchemeKind::ProposedExact, march, scalar_slice, bench_seeds);
  });
  const double t_packed64 = bench::time_seconds([&] {
    v_packed64 =
        packed64_runner.per_fault(SchemeKind::ProposedExact, march, workload, bench_seeds);
  });
  const double t_packed = bench::time_seconds([&] {
    v_packed = packed_runner.per_fault(SchemeKind::ProposedExact, march, workload, bench_seeds);
  });
  const double fps_scalar = scalar_slice.size() / t_scalar;
  const double fps_packed64 = workload.size() / t_packed64;
  const double fps_packed = workload.size() / t_packed;
  const double speedup = fps_packed / fps_scalar;
  const double widen_speedup = fps_packed / fps_packed64;
  const bool scalar_slice_equal =
      std::equal(v_scalar.begin(), v_scalar.end(), v_packed.begin()) &&
      std::equal(v_scalar.begin(), v_scalar.end(), v_packed64.begin());
  const bool verdicts_equal = scalar_slice_equal && v_packed64 == v_packed;
  std::printf("\nbackend throughput (TWMarch exact, N=%zu, B=%u, %zu faults x %zu contents, "
              "%u threads; scalar timed on a %zu-fault slice):\n",
              kBenchWords, kBenchWidth, workload.size(), bench_seeds.size(), threads,
              scalar_slice.size());
  std::printf("  scalar:      %8.0f faults/s  (%.3fs)\n", fps_scalar, t_scalar);
  std::printf("  packed/64:   %8.0f faults/s  (%.3fs)  -> %.1fx over scalar\n", fps_packed64,
              t_packed64, fps_packed64 / fps_scalar);
  std::printf("  packed/%-4s %8.0f faults/s  (%.3fs)  -> %.1fx over scalar, %.2fx over 64-lane\n",
              (simd::to_string(simd_width) + ":").c_str(), fps_packed, t_packed, speedup,
              widen_speedup);
  std::printf("  verdict equality (scalar == packed/64 == packed/%s): %s\n",
              simd::to_string(simd_width).c_str(), verdicts_equal ? "EXACT" : "MISMATCH");

  if (!args.json.empty()) {
    std::ofstream js(args.json);
    js << "{\"bench\":\"coverage\",\"march\":\"March C-\",\"words\":" << kBenchWords
       << ",\"width\":" << kBenchWidth << ",\"faults\":" << workload.size()
       << ",\"seeds\":" << bench_seeds.size() << ",\"threads\":" << threads
       << ",\"simd_lanes\":" << simd::lanes(simd_width)
       << ",\"scalar_faults_per_sec\":" << fps_scalar
       << ",\"packed64_faults_per_sec\":" << fps_packed64
       << ",\"packed_faults_per_sec\":" << fps_packed << ",\"speedup\":" << speedup
       << ",\"widen_speedup\":" << widen_speedup
       << ",\"verdicts_equal\":" << (verdicts_equal ? "true" : "false")
       << ",\"theorem_agree\":" << agree << ",\"theorem_total\":" << everything.size() << "}\n";
    std::printf("  wrote %s\n", args.json.c_str());
  }
  return verdicts_equal ? 0 : 1;
}
