// Reproduces the Sec. 5 fault-coverage analysis as an empirical campaign:
// per fault class, the coverage of the proposed TWMarch (exact and MISR
// checked) against the nontransparent SMarch+AMarch reference, the full
// word-oriented march, Scheme 1 [12], the TOMT model [13], and the ablated
// TSMarch-only test.
//
// "all" = detected under every evaluated initial content (what the paper's
// theorem speaks about), "any" = under at least one.
//
// The campaign runs through CampaignRunner (analysis/campaign.h) on the
// backend selected by --backend=scalar|packed (default packed: 63 faults +
// 1 golden lane per bit-parallel pass) with --threads=N workers, then times
// both backends on the combined fault list and writes the throughput
// comparison to BENCH_coverage.json (--json=PATH overrides).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "march/library.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace twm;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv, "BENCH_coverage.json");
  const std::size_t kWords = 4;
  const unsigned kWidth = 4;
  const std::vector<std::uint64_t> seeds{0, 1, 2};  // 0 = all-zero contents

  std::cout << "== Sec. 5: empirical fault coverage (March C-, N=" << kWords
            << ", B=" << kWidth << ", contents: zero + 2 random, backend="
            << to_string(args.coverage.backend) << ", threads=" << args.coverage.threads
            << ") ==\n\n";

  const CampaignRunner runner(kWords, kWidth, args.coverage);
  const MarchTest march = march_by_name("March C-");

  struct ClassSpec {
    std::string name;
    std::vector<Fault> faults;
  };
  std::vector<ClassSpec> classes;
  classes.push_back({"SAF", all_safs(kWords, kWidth)});
  classes.push_back({"TF", all_tfs(kWords, kWidth)});
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin}) {
    classes.push_back(
        {to_string(cls) + " inter", all_cfs(kWords, kWidth, cls, CfScope::InterWord)});
    classes.push_back(
        {to_string(cls) + " intra", all_cfs(kWords, kWidth, cls, CfScope::IntraWord)});
  }

  Table t({"fault class", "faults", "scheme", "coverage (all contents)", "any content"});
  for (const auto& spec : classes) {
    bool first = true;
    for (SchemeKind k : kAllSchemes) {
      const auto out = runner.evaluate(k, march, spec.faults, seeds);
      t.add_row({first ? spec.name : "", first ? std::to_string(spec.faults.size()) : "",
                 to_string(k), coverage_str(out), pct_str(out.pct_any())});
      first = false;
    }
    t.add_rule();
  }
  t.print(std::cout);

  // The theorem check: per-fault verdict equality at the reference content.
  std::vector<Fault> everything;
  for (auto& spec : classes)
    for (auto& f : spec.faults) everything.push_back(f);
  const auto ref =
      runner.per_fault(SchemeKind::NontransparentReference, march, everything, {0});
  const auto prop = runner.per_fault(SchemeKind::ProposedExact, march, everything, {0});
  std::size_t agree = 0;
  for (std::size_t i = 0; i < everything.size(); ++i) agree += (ref[i] == prop[i]);
  std::printf("\ntheorem (Sec. 5): per-fault verdicts TWMarch vs SMarch+AMarch at zero "
              "content: %zu/%zu agree\n",
              agree, everything.size());

  // Backend throughput: the same campaign slice (every scheme's hottest
  // path is per_fault over the combined list) on the scalar reference vs
  // the bit-parallel batched engine, both with the requested thread count.
  const CampaignRunner scalar_runner(kWords, kWidth,
                                     {CoverageBackend::Scalar, args.coverage.threads});
  const CampaignRunner packed_runner(kWords, kWidth,
                                     {CoverageBackend::Packed, args.coverage.threads});
  std::vector<bool> v_scalar, v_packed;
  const double t_scalar = bench::time_seconds([&] {
    v_scalar = scalar_runner.per_fault(SchemeKind::ProposedExact, march, everything, seeds);
  });
  const double t_packed = bench::time_seconds([&] {
    v_packed = packed_runner.per_fault(SchemeKind::ProposedExact, march, everything, seeds);
  });
  const double fps_scalar = everything.size() / t_scalar;
  const double fps_packed = everything.size() / t_packed;
  const double speedup = t_scalar / t_packed;
  std::printf("\nbackend throughput (TWMarch exact, %zu faults x %zu contents, %u threads):\n",
              everything.size(), seeds.size(), args.coverage.threads);
  std::printf("  scalar: %8.0f faults/s  (%.3fs)\n", fps_scalar, t_scalar);
  std::printf("  packed: %8.0f faults/s  (%.3fs)  -> %.1fx\n", fps_packed, t_packed, speedup);
  std::printf("  verdict equality: %s\n", v_scalar == v_packed ? "EXACT" : "MISMATCH");

  if (!args.json.empty()) {
    std::ofstream js(args.json);
    js << "{\"bench\":\"coverage\",\"march\":\"March C-\",\"words\":" << kWords
       << ",\"width\":" << kWidth << ",\"faults\":" << everything.size()
       << ",\"seeds\":" << seeds.size() << ",\"threads\":" << args.coverage.threads
       << ",\"scalar_faults_per_sec\":" << fps_scalar
       << ",\"packed_faults_per_sec\":" << fps_packed << ",\"speedup\":" << speedup
       << ",\"verdicts_equal\":" << (v_scalar == v_packed ? "true" : "false")
       << ",\"theorem_agree\":" << agree << ",\"theorem_total\":" << everything.size() << "}\n";
    std::printf("  wrote %s\n", args.json.c_str());
  }
  return v_scalar == v_packed ? 0 : 1;
}
