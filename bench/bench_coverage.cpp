// Reproduces the Sec. 5 fault-coverage analysis as an empirical campaign:
// per fault class, the coverage of the proposed TWMarch (exact and MISR
// checked) against the nontransparent SMarch+AMarch reference, the full
// word-oriented march, Scheme 1 [12], the TOMT model [13], and the ablated
// TSMarch-only test.
//
// "all" = detected under every evaluated initial content (what the paper's
// theorem speaks about), "any" = under at least one.
//
// The campaign runs through CampaignRunner (analysis/campaign.h) on the
// backend selected by --backend=scalar|packed (default packed: lanes-1
// faults + 1 golden lane per bit-parallel pass, lane count from
// --simd=auto|64|256|512) with --threads=N workers, then times the scalar
// reference, the 64-lane packed baseline, and the selected wide width on
// the combined fault list and writes the throughput comparison to
// BENCH_coverage.json (--json=PATH overrides).  Exits non-zero if any
// backend/width pair disagrees verdict-for-verdict.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "analysis/campaign.h"
#include "analysis/fault_list.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "core/simd.h"
#include "march/library.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace twm;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv, "BENCH_coverage.json");
  const std::size_t kWords = 4;
  const unsigned kWidth = 4;
  const std::vector<std::uint64_t> seeds{0, 1, 2};  // 0 = all-zero contents
  // The throughput section always runs the packed widths, whatever backend
  // the coverage tables use, so the width request resolves unconditionally.
  const simd::Width simd_width = simd::resolve(args.coverage.simd);

  std::cout << "== Sec. 5: empirical fault coverage (March C-, N=" << kWords
            << ", B=" << kWidth << ", contents: zero + 2 random, backend="
            << to_string(args.coverage.backend) << ", simd=" << simd::to_string(simd_width)
            << ", threads=" << args.coverage.threads << ") ==\n\n";

  const CampaignRunner runner(kWords, kWidth, args.coverage);
  const MarchTest march = march_by_name("March C-");

  struct ClassSpec {
    std::string name;
    std::vector<Fault> faults;
  };
  std::vector<ClassSpec> classes;
  classes.push_back({"SAF", all_safs(kWords, kWidth)});
  classes.push_back({"TF", all_tfs(kWords, kWidth)});
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin}) {
    classes.push_back(
        {to_string(cls) + " inter", all_cfs(kWords, kWidth, cls, CfScope::InterWord)});
    classes.push_back(
        {to_string(cls) + " intra", all_cfs(kWords, kWidth, cls, CfScope::IntraWord)});
  }
  classes.push_back({"AF", all_afs(kWords)});

  Table t({"fault class", "faults", "scheme", "coverage (all contents)", "any content"});
  for (const auto& spec : classes) {
    bool first = true;
    for (SchemeKind k : kAllSchemes) {
      const auto out = runner.evaluate(k, march, spec.faults, seeds);
      t.add_row({first ? spec.name : "", first ? std::to_string(spec.faults.size()) : "",
                 to_string(k), coverage_str(out), pct_str(out.pct_any())});
      first = false;
    }
    t.add_rule();
  }
  t.print(std::cout);

  // The theorem check: per-fault verdict equality at the reference content.
  std::vector<Fault> everything;
  for (auto& spec : classes)
    for (auto& f : spec.faults) everything.push_back(f);
  const auto ref =
      runner.per_fault(SchemeKind::NontransparentReference, march, everything, {0});
  const auto prop = runner.per_fault(SchemeKind::ProposedExact, march, everything, {0});
  std::size_t agree = 0;
  for (std::size_t i = 0; i < everything.size(); ++i) agree += (ref[i] == prop[i]);
  std::printf("\ntheorem (Sec. 5): per-fault verdicts TWMarch vs SMarch+AMarch at zero "
              "content: %zu/%zu agree\n",
              agree, everything.size());

  // Backend throughput: a production-shaped campaign (a 256 x 4 memory,
  // every SAF/TF plus neighbour AFs and sampled coupling faults — large
  // enough that per-unit overheads amortize over real session work) on the
  // scalar reference, the 64-lane packed baseline, and the selected SIMD
  // width, all with the requested thread count.  Timed on the zero-content
  // slice so every unit runs exactly one session and batch granularity
  // cannot skew the comparison via the per-seed early exit.  The scalar
  // backend is timed on a fixed slice of the list (its per-fault cost is
  // uniform, and the full list would take seconds); the packed widths run
  // the full list and must agree verdict-for-verdict with each other
  // everywhere and with the scalar reference on the slice.
  const std::size_t kBenchWords = 256;
  const unsigned kBenchWidth = 4;
  const std::size_t kScalarSlice = 256;
  const std::vector<std::uint64_t> bench_seeds{0};
  Rng cf_rng(7);
  std::vector<Fault> workload;
  for (auto& f : all_safs(kBenchWords, kBenchWidth)) workload.push_back(f);
  for (auto& f : all_tfs(kBenchWords, kBenchWidth)) workload.push_back(f);
  for (std::size_t w = 0; w < kBenchWords; ++w) {
    workload.push_back(Fault::af_no_access(w));
    workload.push_back(Fault::af_alias(w, (w + 1) % kBenchWords));
  }
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin})
    for (auto& f : sampled_cfs(kBenchWords, kBenchWidth, cls, CfScope::Both, 1024, cf_rng))
      workload.push_back(f);
  const std::vector<Fault> scalar_slice(workload.begin(), workload.begin() + kScalarSlice);

  const unsigned threads = args.coverage.threads;
  const CampaignRunner scalar_runner(kBenchWords, kBenchWidth,
                                     {CoverageBackend::Scalar, threads});
  const CampaignRunner packed64_runner(
      kBenchWords, kBenchWidth, {CoverageBackend::Packed, threads, simd::Request::W64});
  const CampaignRunner packed_runner(kBenchWords, kBenchWidth,
                                     {CoverageBackend::Packed, threads, args.coverage.simd});
  std::vector<bool> v_scalar, v_packed64, v_packed;
  const double t_scalar = bench::time_seconds([&] {
    v_scalar =
        scalar_runner.per_fault(SchemeKind::ProposedExact, march, scalar_slice, bench_seeds);
  });
  const double t_packed64 = bench::time_seconds([&] {
    v_packed64 =
        packed64_runner.per_fault(SchemeKind::ProposedExact, march, workload, bench_seeds);
  });
  const double t_packed = bench::time_seconds([&] {
    v_packed = packed_runner.per_fault(SchemeKind::ProposedExact, march, workload, bench_seeds);
  });
  const double fps_scalar = scalar_slice.size() / t_scalar;
  const double fps_packed64 = workload.size() / t_packed64;
  const double fps_packed = workload.size() / t_packed;
  const double speedup = fps_packed / fps_scalar;
  const double widen_speedup = fps_packed / fps_packed64;
  const bool scalar_slice_equal =
      std::equal(v_scalar.begin(), v_scalar.end(), v_packed.begin()) &&
      std::equal(v_scalar.begin(), v_scalar.end(), v_packed64.begin());
  const bool verdicts_equal = scalar_slice_equal && v_packed64 == v_packed;
  std::printf("\nbackend throughput (TWMarch exact, N=%zu, B=%u, %zu faults x %zu contents, "
              "%u threads; scalar timed on a %zu-fault slice):\n",
              kBenchWords, kBenchWidth, workload.size(), bench_seeds.size(), threads,
              scalar_slice.size());
  std::printf("  scalar:      %8.0f faults/s  (%.3fs)\n", fps_scalar, t_scalar);
  std::printf("  packed/64:   %8.0f faults/s  (%.3fs)  -> %.1fx over scalar\n", fps_packed64,
              t_packed64, fps_packed64 / fps_scalar);
  std::printf("  packed/%-4s %8.0f faults/s  (%.3fs)  -> %.1fx over scalar, %.2fx over 64-lane\n",
              (simd::to_string(simd_width) + ":").c_str(), fps_packed, t_packed, speedup,
              widen_speedup);
  std::printf("  verdict equality (scalar == packed/64 == packed/%s): %s\n",
              simd::to_string(simd_width).c_str(), verdicts_equal ? "EXACT" : "MISMATCH");

  if (!args.json.empty()) {
    std::ofstream js(args.json);
    js << "{\"bench\":\"coverage\",\"march\":\"March C-\",\"words\":" << kBenchWords
       << ",\"width\":" << kBenchWidth << ",\"faults\":" << workload.size()
       << ",\"seeds\":" << bench_seeds.size() << ",\"threads\":" << threads
       << ",\"simd_lanes\":" << simd::lanes(simd_width)
       << ",\"scalar_faults_per_sec\":" << fps_scalar
       << ",\"packed64_faults_per_sec\":" << fps_packed64
       << ",\"packed_faults_per_sec\":" << fps_packed << ",\"speedup\":" << speedup
       << ",\"widen_speedup\":" << widen_speedup
       << ",\"verdicts_equal\":" << (verdicts_equal ? "true" : "false")
       << ",\"theorem_agree\":" << agree << ",\"theorem_total\":" << everything.size() << "}\n";
    std::printf("  wrote %s\n", args.json.c_str());
  }
  return verdicts_equal ? 0 : 1;
}
