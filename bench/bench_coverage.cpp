// Reproduces the Sec. 5 fault-coverage analysis as an empirical campaign:
// per fault class, the coverage of the proposed TWMarch (exact and MISR
// checked) against the nontransparent SMarch+AMarch reference, the full
// word-oriented march, Scheme 1 [12], the TOMT model [13], and the ablated
// TSMarch-only test.
//
// "all" = detected under every evaluated initial content (what the paper's
// theorem speaks about), "any" = under at least one.
#include <cstdio>
#include <iostream>

#include "analysis/coverage.h"
#include "analysis/fault_list.h"
#include "analysis/report.h"
#include "march/library.h"
#include "util/table.h"

int main() {
  using namespace twm;
  const std::size_t kWords = 4;
  const unsigned kWidth = 4;
  const std::vector<std::uint64_t> seeds{0, 1, 2};  // 0 = all-zero contents

  std::cout << "== Sec. 5: empirical fault coverage (March C-, N=" << kWords
            << ", B=" << kWidth << ", contents: zero + 2 random) ==\n\n";

  CoverageEvaluator eval(kWords, kWidth);
  const MarchTest march = march_by_name("March C-");

  struct ClassSpec {
    std::string name;
    std::vector<Fault> faults;
  };
  std::vector<ClassSpec> classes;
  classes.push_back({"SAF", all_safs(kWords, kWidth)});
  classes.push_back({"TF", all_tfs(kWords, kWidth)});
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin}) {
    classes.push_back(
        {to_string(cls) + " inter", all_cfs(kWords, kWidth, cls, CfScope::InterWord)});
    classes.push_back(
        {to_string(cls) + " intra", all_cfs(kWords, kWidth, cls, CfScope::IntraWord)});
  }

  const SchemeKind schemes[] = {
      SchemeKind::NontransparentReference, SchemeKind::WordOrientedMarch,
      SchemeKind::ProposedExact,           SchemeKind::ProposedMisr,
      SchemeKind::ProposedSymmetricXor,    SchemeKind::TsmarchOnly,
      SchemeKind::Scheme1Exact,            SchemeKind::TomtModel,
  };

  Table t({"fault class", "faults", "scheme", "coverage (all contents)", "any content"});
  for (const auto& spec : classes) {
    bool first = true;
    for (SchemeKind k : schemes) {
      const auto out = eval.evaluate(k, march, spec.faults, seeds);
      t.add_row({first ? spec.name : "", first ? std::to_string(spec.faults.size()) : "",
                 to_string(k), coverage_str(out), pct_str(out.pct_any())});
      first = false;
    }
    t.add_rule();
  }
  t.print(std::cout);

  // The theorem check: per-fault verdict equality at the reference content.
  std::vector<Fault> everything;
  for (auto& spec : classes)
    for (auto& f : spec.faults) everything.push_back(f);
  const auto ref =
      eval.per_fault(SchemeKind::NontransparentReference, march, everything, {0});
  const auto prop = eval.per_fault(SchemeKind::ProposedExact, march, everything, {0});
  std::size_t agree = 0;
  for (std::size_t i = 0; i < everything.size(); ++i) agree += (ref[i] == prop[i]);
  std::printf("\ntheorem (Sec. 5): per-fault verdicts TWMarch vs SMarch+AMarch at zero "
              "content: %zu/%zu agree\n",
              agree, everything.size());
  return 0;
}
