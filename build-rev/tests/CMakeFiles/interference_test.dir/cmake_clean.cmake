file(REMOVE_RECURSE
  "CMakeFiles/interference_test.dir/interference_test.cpp.o"
  "CMakeFiles/interference_test.dir/interference_test.cpp.o.d"
  "interference_test"
  "interference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
