file(REMOVE_RECURSE
  "CMakeFiles/march_test.dir/march_test.cpp.o"
  "CMakeFiles/march_test.dir/march_test.cpp.o.d"
  "march_test"
  "march_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/march_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
