file(REMOVE_RECURSE
  "CMakeFiles/symmetric_test.dir/symmetric_test.cpp.o"
  "CMakeFiles/symmetric_test.dir/symmetric_test.cpp.o.d"
  "symmetric_test"
  "symmetric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
