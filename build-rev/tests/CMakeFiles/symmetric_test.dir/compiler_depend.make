# Empty compiler generated dependencies file for symmetric_test.
# This may be replaced when dependencies are built.
