file(REMOVE_RECURSE
  "CMakeFiles/complexity_test.dir/complexity_test.cpp.o"
  "CMakeFiles/complexity_test.dir/complexity_test.cpp.o.d"
  "complexity_test"
  "complexity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
