# Empty dependencies file for complexity_test.
# This may be replaced when dependencies are built.
