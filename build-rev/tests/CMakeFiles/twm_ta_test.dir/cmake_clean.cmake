file(REMOVE_RECURSE
  "CMakeFiles/twm_ta_test.dir/twm_ta_test.cpp.o"
  "CMakeFiles/twm_ta_test.dir/twm_ta_test.cpp.o.d"
  "twm_ta_test"
  "twm_ta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twm_ta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
