# Empty dependencies file for twm_ta_test.
# This may be replaced when dependencies are built.
