# Empty dependencies file for api_spec_test.
# This may be replaced when dependencies are built.
