file(REMOVE_RECURSE
  "CMakeFiles/api_spec_test.dir/api_spec_test.cpp.o"
  "CMakeFiles/api_spec_test.dir/api_spec_test.cpp.o.d"
  "api_spec_test"
  "api_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
