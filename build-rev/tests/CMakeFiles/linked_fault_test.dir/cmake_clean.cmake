file(REMOVE_RECURSE
  "CMakeFiles/linked_fault_test.dir/linked_fault_test.cpp.o"
  "CMakeFiles/linked_fault_test.dir/linked_fault_test.cpp.o.d"
  "linked_fault_test"
  "linked_fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linked_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
