# Empty dependencies file for linked_fault_test.
# This may be replaced when dependencies are built.
