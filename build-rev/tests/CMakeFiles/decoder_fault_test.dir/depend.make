# Empty dependencies file for decoder_fault_test.
# This may be replaced when dependencies are built.
