file(REMOVE_RECURSE
  "CMakeFiles/decoder_fault_test.dir/decoder_fault_test.cpp.o"
  "CMakeFiles/decoder_fault_test.dir/decoder_fault_test.cpp.o.d"
  "decoder_fault_test"
  "decoder_fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
