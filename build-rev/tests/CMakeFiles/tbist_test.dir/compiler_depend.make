# Empty compiler generated dependencies file for tbist_test.
# This may be replaced when dependencies are built.
