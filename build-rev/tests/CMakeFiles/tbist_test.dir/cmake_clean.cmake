file(REMOVE_RECURSE
  "CMakeFiles/tbist_test.dir/tbist_test.cpp.o"
  "CMakeFiles/tbist_test.dir/tbist_test.cpp.o.d"
  "tbist_test"
  "tbist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
