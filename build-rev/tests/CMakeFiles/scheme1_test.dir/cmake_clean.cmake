file(REMOVE_RECURSE
  "CMakeFiles/scheme1_test.dir/scheme1_test.cpp.o"
  "CMakeFiles/scheme1_test.dir/scheme1_test.cpp.o.d"
  "scheme1_test"
  "scheme1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
