# Empty dependencies file for scheme1_test.
# This may be replaced when dependencies are built.
