file(REMOVE_RECURSE
  "CMakeFiles/packed_memory_test.dir/packed_memory_test.cpp.o"
  "CMakeFiles/packed_memory_test.dir/packed_memory_test.cpp.o.d"
  "packed_memory_test"
  "packed_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
