# Empty compiler generated dependencies file for packed_memory_test.
# This may be replaced when dependencies are built.
