file(REMOVE_RECURSE
  "CMakeFiles/tomt_test.dir/tomt_test.cpp.o"
  "CMakeFiles/tomt_test.dir/tomt_test.cpp.o.d"
  "tomt_test"
  "tomt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
