# Empty dependencies file for tomt_test.
# This may be replaced when dependencies are built.
