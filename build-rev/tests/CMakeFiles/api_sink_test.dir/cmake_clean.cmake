file(REMOVE_RECURSE
  "CMakeFiles/api_sink_test.dir/api_sink_test.cpp.o"
  "CMakeFiles/api_sink_test.dir/api_sink_test.cpp.o.d"
  "api_sink_test"
  "api_sink_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
