# Empty compiler generated dependencies file for api_sink_test.
# This may be replaced when dependencies are built.
