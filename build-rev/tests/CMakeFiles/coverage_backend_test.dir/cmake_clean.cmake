file(REMOVE_RECURSE
  "CMakeFiles/coverage_backend_test.dir/coverage_backend_test.cpp.o"
  "CMakeFiles/coverage_backend_test.dir/coverage_backend_test.cpp.o.d"
  "coverage_backend_test"
  "coverage_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
