file(REMOVE_RECURSE
  "CMakeFiles/segment_test.dir/segment_test.cpp.o"
  "CMakeFiles/segment_test.dir/segment_test.cpp.o.d"
  "segment_test"
  "segment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
