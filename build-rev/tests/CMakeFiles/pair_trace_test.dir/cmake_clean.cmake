file(REMOVE_RECURSE
  "CMakeFiles/pair_trace_test.dir/pair_trace_test.cpp.o"
  "CMakeFiles/pair_trace_test.dir/pair_trace_test.cpp.o.d"
  "pair_trace_test"
  "pair_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
