# Empty dependencies file for pair_trace_test.
# This may be replaced when dependencies are built.
