# Empty dependencies file for simd_test.
# This may be replaced when dependencies are built.
