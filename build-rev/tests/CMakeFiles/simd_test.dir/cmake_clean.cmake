file(REMOVE_RECURSE
  "CMakeFiles/simd_test.dir/simd_test.cpp.o"
  "CMakeFiles/simd_test.dir/simd_test.cpp.o.d"
  "simd_test"
  "simd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
