# Empty compiler generated dependencies file for nicolaidis_test.
# This may be replaced when dependencies are built.
