file(REMOVE_RECURSE
  "CMakeFiles/nicolaidis_test.dir/nicolaidis_test.cpp.o"
  "CMakeFiles/nicolaidis_test.dir/nicolaidis_test.cpp.o.d"
  "nicolaidis_test"
  "nicolaidis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicolaidis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
