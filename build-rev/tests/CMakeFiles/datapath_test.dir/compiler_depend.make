# Empty compiler generated dependencies file for datapath_test.
# This may be replaced when dependencies are built.
