file(REMOVE_RECURSE
  "CMakeFiles/datapath_test.dir/datapath_test.cpp.o"
  "CMakeFiles/datapath_test.dir/datapath_test.cpp.o.d"
  "datapath_test"
  "datapath_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datapath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
