file(REMOVE_RECURSE
  "CMakeFiles/example_field_repair.dir/examples/field_repair.cpp.o"
  "CMakeFiles/example_field_repair.dir/examples/field_repair.cpp.o.d"
  "example_field_repair"
  "example_field_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_field_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
