# Empty dependencies file for example_field_repair.
# This may be replaced when dependencies are built.
