file(REMOVE_RECURSE
  "CMakeFiles/bench_interference.dir/bench/bench_interference.cpp.o"
  "CMakeFiles/bench_interference.dir/bench/bench_interference.cpp.o.d"
  "bench_interference"
  "bench_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
