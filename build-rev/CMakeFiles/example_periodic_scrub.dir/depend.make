# Empty dependencies file for example_periodic_scrub.
# This may be replaced when dependencies are built.
