file(REMOVE_RECURSE
  "CMakeFiles/example_periodic_scrub.dir/examples/periodic_scrub.cpp.o"
  "CMakeFiles/example_periodic_scrub.dir/examples/periodic_scrub.cpp.o.d"
  "example_periodic_scrub"
  "example_periodic_scrub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_periodic_scrub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
