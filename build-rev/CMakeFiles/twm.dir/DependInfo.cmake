
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/campaign.cpp" "CMakeFiles/twm.dir/src/analysis/campaign.cpp.o" "gcc" "CMakeFiles/twm.dir/src/analysis/campaign.cpp.o.d"
  "/root/repo/src/analysis/diagnosis.cpp" "CMakeFiles/twm.dir/src/analysis/diagnosis.cpp.o" "gcc" "CMakeFiles/twm.dir/src/analysis/diagnosis.cpp.o.d"
  "/root/repo/src/analysis/fault_list.cpp" "CMakeFiles/twm.dir/src/analysis/fault_list.cpp.o" "gcc" "CMakeFiles/twm.dir/src/analysis/fault_list.cpp.o.d"
  "/root/repo/src/analysis/interference.cpp" "CMakeFiles/twm.dir/src/analysis/interference.cpp.o" "gcc" "CMakeFiles/twm.dir/src/analysis/interference.cpp.o.d"
  "/root/repo/src/analysis/lint.cpp" "CMakeFiles/twm.dir/src/analysis/lint.cpp.o" "gcc" "CMakeFiles/twm.dir/src/analysis/lint.cpp.o.d"
  "/root/repo/src/analysis/pair_trace.cpp" "CMakeFiles/twm.dir/src/analysis/pair_trace.cpp.o" "gcc" "CMakeFiles/twm.dir/src/analysis/pair_trace.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "CMakeFiles/twm.dir/src/analysis/report.cpp.o" "gcc" "CMakeFiles/twm.dir/src/analysis/report.cpp.o.d"
  "/root/repo/src/api/json.cpp" "CMakeFiles/twm.dir/src/api/json.cpp.o" "gcc" "CMakeFiles/twm.dir/src/api/json.cpp.o.d"
  "/root/repo/src/api/runner.cpp" "CMakeFiles/twm.dir/src/api/runner.cpp.o" "gcc" "CMakeFiles/twm.dir/src/api/runner.cpp.o.d"
  "/root/repo/src/api/sink.cpp" "CMakeFiles/twm.dir/src/api/sink.cpp.o" "gcc" "CMakeFiles/twm.dir/src/api/sink.cpp.o.d"
  "/root/repo/src/api/spec.cpp" "CMakeFiles/twm.dir/src/api/spec.cpp.o" "gcc" "CMakeFiles/twm.dir/src/api/spec.cpp.o.d"
  "/root/repo/src/bist/address_gen.cpp" "CMakeFiles/twm.dir/src/bist/address_gen.cpp.o" "gcc" "CMakeFiles/twm.dir/src/bist/address_gen.cpp.o.d"
  "/root/repo/src/bist/datapath.cpp" "CMakeFiles/twm.dir/src/bist/datapath.cpp.o" "gcc" "CMakeFiles/twm.dir/src/bist/datapath.cpp.o.d"
  "/root/repo/src/bist/engine.cpp" "CMakeFiles/twm.dir/src/bist/engine.cpp.o" "gcc" "CMakeFiles/twm.dir/src/bist/engine.cpp.o.d"
  "/root/repo/src/bist/lfsr.cpp" "CMakeFiles/twm.dir/src/bist/lfsr.cpp.o" "gcc" "CMakeFiles/twm.dir/src/bist/lfsr.cpp.o.d"
  "/root/repo/src/bist/microcode.cpp" "CMakeFiles/twm.dir/src/bist/microcode.cpp.o" "gcc" "CMakeFiles/twm.dir/src/bist/microcode.cpp.o.d"
  "/root/repo/src/bist/misr.cpp" "CMakeFiles/twm.dir/src/bist/misr.cpp.o" "gcc" "CMakeFiles/twm.dir/src/bist/misr.cpp.o.d"
  "/root/repo/src/bist/packed_engine.cpp" "CMakeFiles/twm.dir/src/bist/packed_engine.cpp.o" "gcc" "CMakeFiles/twm.dir/src/bist/packed_engine.cpp.o.d"
  "/root/repo/src/bist/tbist.cpp" "CMakeFiles/twm.dir/src/bist/tbist.cpp.o" "gcc" "CMakeFiles/twm.dir/src/bist/tbist.cpp.o.d"
  "/root/repo/src/cli/cli.cpp" "CMakeFiles/twm.dir/src/cli/cli.cpp.o" "gcc" "CMakeFiles/twm.dir/src/cli/cli.cpp.o.d"
  "/root/repo/src/core/complexity.cpp" "CMakeFiles/twm.dir/src/core/complexity.cpp.o" "gcc" "CMakeFiles/twm.dir/src/core/complexity.cpp.o.d"
  "/root/repo/src/core/nicolaidis.cpp" "CMakeFiles/twm.dir/src/core/nicolaidis.cpp.o" "gcc" "CMakeFiles/twm.dir/src/core/nicolaidis.cpp.o.d"
  "/root/repo/src/core/scheme1.cpp" "CMakeFiles/twm.dir/src/core/scheme1.cpp.o" "gcc" "CMakeFiles/twm.dir/src/core/scheme1.cpp.o.d"
  "/root/repo/src/core/scheme_session.cpp" "CMakeFiles/twm.dir/src/core/scheme_session.cpp.o" "gcc" "CMakeFiles/twm.dir/src/core/scheme_session.cpp.o.d"
  "/root/repo/src/core/simd.cpp" "CMakeFiles/twm.dir/src/core/simd.cpp.o" "gcc" "CMakeFiles/twm.dir/src/core/simd.cpp.o.d"
  "/root/repo/src/core/symmetric.cpp" "CMakeFiles/twm.dir/src/core/symmetric.cpp.o" "gcc" "CMakeFiles/twm.dir/src/core/symmetric.cpp.o.d"
  "/root/repo/src/core/tomt.cpp" "CMakeFiles/twm.dir/src/core/tomt.cpp.o" "gcc" "CMakeFiles/twm.dir/src/core/tomt.cpp.o.d"
  "/root/repo/src/core/twm_ta.cpp" "CMakeFiles/twm.dir/src/core/twm_ta.cpp.o" "gcc" "CMakeFiles/twm.dir/src/core/twm_ta.cpp.o.d"
  "/root/repo/src/march/generator.cpp" "CMakeFiles/twm.dir/src/march/generator.cpp.o" "gcc" "CMakeFiles/twm.dir/src/march/generator.cpp.o.d"
  "/root/repo/src/march/library.cpp" "CMakeFiles/twm.dir/src/march/library.cpp.o" "gcc" "CMakeFiles/twm.dir/src/march/library.cpp.o.d"
  "/root/repo/src/march/op.cpp" "CMakeFiles/twm.dir/src/march/op.cpp.o" "gcc" "CMakeFiles/twm.dir/src/march/op.cpp.o.d"
  "/root/repo/src/march/parser.cpp" "CMakeFiles/twm.dir/src/march/parser.cpp.o" "gcc" "CMakeFiles/twm.dir/src/march/parser.cpp.o.d"
  "/root/repo/src/march/printer.cpp" "CMakeFiles/twm.dir/src/march/printer.cpp.o" "gcc" "CMakeFiles/twm.dir/src/march/printer.cpp.o.d"
  "/root/repo/src/march/test.cpp" "CMakeFiles/twm.dir/src/march/test.cpp.o" "gcc" "CMakeFiles/twm.dir/src/march/test.cpp.o.d"
  "/root/repo/src/march/word_expand.cpp" "CMakeFiles/twm.dir/src/march/word_expand.cpp.o" "gcc" "CMakeFiles/twm.dir/src/march/word_expand.cpp.o.d"
  "/root/repo/src/memsim/decoder_fault.cpp" "CMakeFiles/twm.dir/src/memsim/decoder_fault.cpp.o" "gcc" "CMakeFiles/twm.dir/src/memsim/decoder_fault.cpp.o.d"
  "/root/repo/src/memsim/fault.cpp" "CMakeFiles/twm.dir/src/memsim/fault.cpp.o" "gcc" "CMakeFiles/twm.dir/src/memsim/fault.cpp.o.d"
  "/root/repo/src/memsim/memory.cpp" "CMakeFiles/twm.dir/src/memsim/memory.cpp.o" "gcc" "CMakeFiles/twm.dir/src/memsim/memory.cpp.o.d"
  "/root/repo/src/memsim/packed_memory.cpp" "CMakeFiles/twm.dir/src/memsim/packed_memory.cpp.o" "gcc" "CMakeFiles/twm.dir/src/memsim/packed_memory.cpp.o.d"
  "/root/repo/src/memsim/repair.cpp" "CMakeFiles/twm.dir/src/memsim/repair.cpp.o" "gcc" "CMakeFiles/twm.dir/src/memsim/repair.cpp.o.d"
  "/root/repo/src/memsim/segment.cpp" "CMakeFiles/twm.dir/src/memsim/segment.cpp.o" "gcc" "CMakeFiles/twm.dir/src/memsim/segment.cpp.o.d"
  "/root/repo/src/util/backgrounds.cpp" "CMakeFiles/twm.dir/src/util/backgrounds.cpp.o" "gcc" "CMakeFiles/twm.dir/src/util/backgrounds.cpp.o.d"
  "/root/repo/src/util/bitvec.cpp" "CMakeFiles/twm.dir/src/util/bitvec.cpp.o" "gcc" "CMakeFiles/twm.dir/src/util/bitvec.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/twm.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/twm.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
