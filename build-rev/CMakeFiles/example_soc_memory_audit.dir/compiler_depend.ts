# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_soc_memory_audit.
