# Empty dependencies file for example_soc_memory_audit.
# This may be replaced when dependencies are built.
