file(REMOVE_RECURSE
  "CMakeFiles/example_soc_memory_audit.dir/examples/soc_memory_audit.cpp.o"
  "CMakeFiles/example_soc_memory_audit.dir/examples/soc_memory_audit.cpp.o.d"
  "example_soc_memory_audit"
  "example_soc_memory_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_soc_memory_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
