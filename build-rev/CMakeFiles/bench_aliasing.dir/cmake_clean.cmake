file(REMOVE_RECURSE
  "CMakeFiles/bench_aliasing.dir/bench/bench_aliasing.cpp.o"
  "CMakeFiles/bench_aliasing.dir/bench/bench_aliasing.cpp.o.d"
  "bench_aliasing"
  "bench_aliasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aliasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
