# Empty dependencies file for bench_aliasing.
# This may be replaced when dependencies are built.
