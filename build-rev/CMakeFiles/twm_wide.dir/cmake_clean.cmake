file(REMOVE_RECURSE
  "CMakeFiles/twm_wide.dir/src/analysis/campaign_w256.cpp.o"
  "CMakeFiles/twm_wide.dir/src/analysis/campaign_w256.cpp.o.d"
  "CMakeFiles/twm_wide.dir/src/analysis/campaign_w512.cpp.o"
  "CMakeFiles/twm_wide.dir/src/analysis/campaign_w512.cpp.o.d"
  "libtwm_wide.pdb"
  "libtwm_wide.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twm_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
