# Empty compiler generated dependencies file for twm_wide.
# This may be replaced when dependencies are built.
