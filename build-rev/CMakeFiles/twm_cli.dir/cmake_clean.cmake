file(REMOVE_RECURSE
  "CMakeFiles/twm_cli.dir/tools/twm_cli.cpp.o"
  "CMakeFiles/twm_cli.dir/tools/twm_cli.cpp.o.d"
  "twm_cli"
  "twm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
