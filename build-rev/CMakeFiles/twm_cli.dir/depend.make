# Empty dependencies file for twm_cli.
# This may be replaced when dependencies are built.
