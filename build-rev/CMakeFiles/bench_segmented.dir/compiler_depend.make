# Empty compiler generated dependencies file for bench_segmented.
# This may be replaced when dependencies are built.
