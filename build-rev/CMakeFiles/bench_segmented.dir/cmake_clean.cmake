file(REMOVE_RECURSE
  "CMakeFiles/bench_segmented.dir/bench/bench_segmented.cpp.o"
  "CMakeFiles/bench_segmented.dir/bench/bench_segmented.cpp.o.d"
  "bench_segmented"
  "bench_segmented.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_segmented.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
