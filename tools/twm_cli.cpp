// twm_cli — command-line front end; see src/cli/cli.h for the synopsis.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  return twm::run_cli(std::vector<std::string>(argv + 1, argv + argc), std::cout, std::cerr);
}
