#!/usr/bin/env bash
# Chaos gate: drives the shipped twm_cli through a failpoint matrix
# (util/failpoint.h) and asserts every outcome is either a verdict-identical
# completion or a clean typed error — never a crash, hang, torn checkpoint,
# or wrong verdict.  CI runs this under ASan/UBSan as the chaos-gate job.
#
# Every invocation runs under timeout(1): a chaos bug that deadlocks must
# fail the gate with rc 124, not stall CI until the job-level timeout.
#
# Usage: tools/chaos_gate.sh [path/to/twm_cli]
# Needs jq (for the serving-port scrape and record filters).
set -euo pipefail

CLI=${1:-./build/twm_cli}
WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }
# Hang watchdog.  300 s is generous for the largest workload here even under
# ASan; a hang is the only way to get near it.
run() { timeout -k 10 300 "$@"; }

# 3 cells (saf, tf, ret) x 4 regions: enough stores to trip the cache's
# degrade-after-3-consecutive-disk-failures ladder, small enough to be fast
# under sanitizers.
SPEC=$WORK/spec.json
cat > "$SPEC" << 'EOF'
{
  "name": "chaos-gate",
  "memory": {"words": 16, "width": 4},
  "march": "March C-",
  "schemes": ["twm"],
  "classes": ["saf", "tf", "ret"],
  "seeds": [0, 1],
  "run": {"backend": "scalar", "threads": 1, "regions": 4}
}
EOF
# Deadline workload: single-region, single-thread (the record stream is a
# deterministic sequence, so a timed-out run must be an exact prefix) and
# enough units that a 1 ms deadline always cuts it short.
BIG=$WORK/spec_big.json
cat > "$BIG" << 'EOF'
{
  "name": "chaos-gate-big",
  "memory": {"words": 64, "width": 8},
  "march": "March C-",
  "schemes": ["twm"],
  "classes": ["saf", "tf"],
  "seeds": [0, 1],
  "run": {"backend": "scalar", "threads": 1}
}
EOF

units() { grep '"type":"unit"' "$1"; }
sorted_units() { units "$1" | sort -u; }

echo "== baseline (fault-free) =="
run "$CLI" run "$SPEC" --sink jsonl --out "$WORK/base.jsonl"
sorted_units "$WORK/base.jsonl" > "$WORK/base.sorted"
[ -s "$WORK/base.sorted" ] || fail "baseline produced no unit records"
echo "   $(wc -l < "$WORK/base.sorted") distinct unit records"

echo "== checkpoint saves all failing: warn-and-continue, verdicts identical =="
TWM_FAILPOINTS='checkpoint.save=err' run "$CLI" run "$SPEC" --sink jsonl \
  --out "$WORK/ck_err.jsonl" --checkpoint "$WORK/ck_never.json" 2> "$WORK/ck_err.log" \
  || fail "campaign with failing checkpoint saves did not complete"
grep -q 'warning: checkpoint save' "$WORK/ck_err.log" || fail "no checkpoint-save warning"
[ ! -e "$WORK/ck_never.json" ] || fail "failed checkpoint save left a file behind"
diff "$WORK/base.sorted" <(sorted_units "$WORK/ck_err.jsonl") \
  || fail "checkpoint chaos changed the verdicts"

echo "== torn-checkpoint: failing saves never corrupt the existing file =="
run "$CLI" run "$SPEC" --sink jsonl --out /dev/null --checkpoint "$WORK/ck.json"
[ "$(jq '.cells | length' "$WORK/ck.json")" -eq 12 ] \
  || fail "expected 12 checkpoint entries (3 cells x 4 regions)"
jq '.cells |= map(select(.region < 1))' "$WORK/ck.json" > "$WORK/ck_partial.json"
cp "$WORK/ck_partial.json" "$WORK/ck_before.json"
# Resume the "interrupted" run with every save failing: the campaign must
# still finish with the right verdicts, and the atomic tmp-fsync-rename
# write path must leave the pre-existing file byte-identical, not torn.
TWM_FAILPOINTS='checkpoint.save=err' run "$CLI" run "$SPEC" --sink jsonl \
  --out "$WORK/resumed.jsonl" --checkpoint "$WORK/ck_partial.json" 2> /dev/null \
  || fail "resumed campaign with failing saves did not complete"
diff "$WORK/base.sorted" <(sorted_units "$WORK/resumed.jsonl") \
  || fail "resume under checkpoint chaos changed the verdicts"
cmp "$WORK/ck_before.json" "$WORK/ck_partial.json" \
  || fail "failed checkpoint saves tore the existing file"

echo "== injected allocation failure: clean typed error, not a crash =="
set +e
OUT=$(run "$CLI" run "$SPEC" --sink jsonl --failpoints 'page.alloc=oom@1' 2>&1)
RC=$?
set -e
[ "$RC" -eq 1 ] || fail "oom injection exited $RC (want a clean 1)"
echo "$OUT" | grep -q 'error: resource:' || fail "oom did not surface as a resource error"

echo "== injected worker death: clean typed error =="
set +e
OUT=$(run "$CLI" run "$SPEC" --sink jsonl --failpoints 'campaign.worker=err@1' 2>&1)
RC=$?
set -e
[ "$RC" -eq 1 ] || fail "worker-death injection exited $RC (want a clean 1)"
echo "$OUT" | grep -q 'error: engine:' || fail "worker death did not surface as an engine error"

echo "== run.deadline_ms: timed-out stream is an exact prefix =="
T0=$(date +%s%3N)
run "$CLI" run "$BIG" --sink jsonl --out "$WORK/big_base.jsonl"
T1=$(date +%s%3N)
# Half the fault-free wall time lands the deadline mid-campaign regardless
# of machine speed or sanitizer overhead (floor 5 ms for clock resolution).
DL=$(( (T1 - T0) / 2 ))
[ "$DL" -ge 5 ] || DL=5
TOTAL=$(units "$WORK/big_base.jsonl" | wc -l)
run "$CLI" run "$BIG" --sink jsonl --out "$WORK/deadline.jsonl" --deadline-ms "$DL"
if tail -n 1 "$WORK/deadline.jsonl" \
  | jq -e '.type == "campaign_end" and .timed_out == true and .cancelled == true' > /dev/null
then
  units "$WORK/deadline.jsonl" > "$WORK/deadline.units" || true
  N=$(wc -l < "$WORK/deadline.units")
  [ "$N" -lt "$TOTAL" ] || fail "$DL ms deadline did not cut the campaign short"
  diff "$WORK/deadline.units" <(units "$WORK/big_base.jsonl" | head -n "$N") \
    || fail "timed-out stream is not a prefix of the fault-free stream"
  echo "   $DL ms deadline cut after $N/$TOTAL units"
else
  # The machine outran its own half-time deadline (only possible at the 5 ms
  # floor): the one acceptable alternative is a complete, identical run.
  diff <(units "$WORK/big_base.jsonl") <(units "$WORK/deadline.jsonl") \
    || fail "deadline run neither timed out nor completed identically"
  echo "   machine outran the $DL ms deadline; full identical run verified"
fi

serve_start() {  # serve_start [extra serve flags...]; sets SERVE_PID and PORT
  : > "$WORK/serve.jsonl"
  "$CLI" serve --port 0 "$@" > "$WORK/serve.jsonl" 2> "$WORK/serve.log" &
  SERVE_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    [ -s "$WORK/serve.jsonl" ] && break
    sleep 0.1
  done
  PORT=$(jq -r 'select(.type=="serving") | .port' "$WORK/serve.jsonl")
  [ -n "$PORT" ] || fail "daemon never reported its port"
}
serve_stop() {
  run "$CLI" submit --port "$PORT" --shutdown > /dev/null 2>&1 || true
  wait "$SERVE_PID" 2> /dev/null || true
  SERVE_PID=""
}

echo "== service: cache disk failures degrade to memory-only, daemon survives =="
serve_start --cache-dir "$WORK/cache" --failpoints 'cache.disk_write=err'
run "$CLI" submit "$SPEC" --port "$PORT" > "$WORK/sub1.jsonl" \
  || fail "submit under disk-write chaos failed"
diff "$WORK/base.sorted" <(sorted_units "$WORK/sub1.jsonl") \
  || fail "disk-write chaos changed the verdicts"
run "$CLI" submit "$SPEC" --port "$PORT" --stats > "$WORK/sub2.jsonl" \
  || fail "daemon did not survive disk-write chaos"
diff "$WORK/base.sorted" <(sorted_units "$WORK/sub2.jsonl") \
  || fail "memory-cache replay under disk chaos changed the verdicts"
jq -e 'select(.type=="stats") | .cache.disk_errors >= 3 and .cache.disk_degraded' \
  "$WORK/sub2.jsonl" > /dev/null \
  || fail "cache did not report disk errors + degradation in stats"
serve_stop
echo "   degraded to memory-only after 3 disk failures, verdicts intact"

echo "== service: retryable engine fault is retried to a green verdict =="
serve_start --failpoints 'page.alloc=oom@1'
run "$CLI" submit "$SPEC" --port "$PORT" --retries 2 --backoff-ms 50 \
  > "$WORK/retry.jsonl" 2> "$WORK/retry.log" \
  || fail "submit --retries did not recover from a one-shot engine fault"
grep -q '"retryable":true' "$WORK/retry.jsonl" \
  || fail "server fault was not echoed as a retryable error frame"
grep -q 'retrying in' "$WORK/retry.log" || fail "client did not announce its retry"
diff "$WORK/base.sorted" <(sorted_units "$WORK/retry.jsonl") \
  || fail "retried submission produced the wrong verdicts"
serve_stop
echo "   client retried once and drained the full verdict stream"

echo "== service: synthetic EINTR storm on both ends is invisible =="
serve_start --failpoints 'socket.send=eintr;socket.recv=eintr;socket.accept=eintr'
run "$CLI" submit "$SPEC" --port "$PORT" \
  --failpoints 'socket.send=eintr;socket.recv=eintr' > "$WORK/eintr.jsonl" \
  || fail "submit under EINTR storm failed"
diff "$WORK/base.sorted" <(sorted_units "$WORK/eintr.jsonl") \
  || fail "EINTR storm changed the verdicts"
serve_stop

echo "chaos gate: all scenarios green"
