#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown docs resolve.

Usage: check_markdown_links.py FILE.md [FILE.md ...]

For every inline markdown link [text](target) in the given files:
  * http(s)/mailto links are skipped (no network access in CI),
  * pure-fragment links (#section) are checked against the file's own
    headings (GitHub anchor style: lowercase, spaces -> dashes, most
    punctuation dropped),
  * everything else must name an existing file or directory relative to
    the linking file (a trailing #fragment is stripped first).

Exit status: 0 when every link resolves, 1 otherwise (each broken link is
reported on stderr).  This is the CI docs gate: architecture docs that
name files which later PRs move or delete fail fast instead of rotting.
"""

import os
import re
import sys

# Inline links only; reference-style links are not used in this repo.
# [text](target) with no nested parens in target.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_anchor(heading):
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = "".join(c for c in text if c.isalnum() or c in " -_")
    return text.lower().replace(" ", "-")


def check_file(path):
    broken = []
    with open(path, encoding="utf-8") as f:
        content = f.read()
    anchors = {github_anchor(h) for h in HEADING_RE.findall(content)}
    base = os.path.dirname(os.path.abspath(path))
    for target in LINK_RE.findall(content):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                broken.append((target, "no such heading"))
            continue
        rel = target.split("#", 1)[0]
        if not os.path.exists(os.path.join(base, rel)):
            broken.append((target, "no such file"))
    for target, why in broken:
        print(f"{path}: broken link ({why}): {target}", file=sys.stderr)
    return not broken


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ok = True
    for path in argv[1:]:
        ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
