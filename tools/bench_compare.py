#!/usr/bin/env python3
"""Bench regression gate: compare a BENCH_coverage.json against the baseline.

CI runs  bench_coverage --backend=packed --simd 256 --json=BENCH_coverage.json
and then

    tools/bench_compare.py bench/baseline/BENCH_coverage.json \
        build/BENCH_coverage.json --max-drop 0.25

The gate fails (exit 1) when

  * the packed campaign throughput (`packed_faults_per_sec`) dropped more
    than --max-drop (default 25%) below the committed baseline — the
    absolute floor; it catches catastrophic regressions but is deliberately
    slack because the baseline machine and the runner differ,
  * the wide-over-64-lane ratio (`widen_speedup`) dropped more than
    --max-drop below the baseline's ratio — this one is measured within a
    single run on the same machine, so it is runner-speed-independent and
    catches a refactor that quietly gives back the SIMD widening win even
    on a runner much faster or slower than the baseline host,
  * the bench reported a verdict mismatch (`verdicts_equal` false) — a
    correctness regression dressed up as a speed number is still a failure,
  * either JSON is missing a compared key.

Fields that describe the workload (faults, words, width, seeds) are checked
for identity: a throughput number only means something against the same
workload.  Informational fields (speedup, scalar/packed64 throughput) are
printed but never gate — they depend on the runner's core count.

Exit codes: 0 pass, 1 regression/mismatch, 2 usage or unreadable input.
"""

import argparse
import json
import signal
import sys

# Dying quietly when piped into `head` beats a BrokenPipeError traceback.
if hasattr(signal, "SIGPIPE"):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

GATE_KEY = "packed_faults_per_sec"
RATIO_KEY = "widen_speedup"
WORKLOAD_KEYS = ("bench", "march", "words", "width", "faults", "seeds")
# Carried through and printed, never gated (yet): the scheduler fields are
# attribution data — repack_speedup is additionally enforced >= 1 by the
# bench's own verdict-equality exit code being measured on the same
# workload, and will grow a gate once a few runners' numbers are in.
INFO_KEYS = ("simd_lanes", "threads", "scalar_faults_per_sec",
             "packed64_faults_per_sec", "speedup",
             "repack_faults_per_sec", "repack_speedup", "faults_simulated",
             "mean_live_lanes", "lane_occupancy",
             "session_elements_total", "session_elements_executed",
             "settling_faults", "settling_seeds",
             "settling_dense_faults_per_sec", "settling_repack_faults_per_sec",
             "settling_repack_speedup", "settling_lane_occupancy",
             "settling_dense_lane_occupancy",
             "tiled_lanes", "tiled_faults_per_sec", "tiled_speedup",
             "tiled_lane_occupancy",
             "huge_words", "huge_faults", "huge_regions",
             "huge_faults_per_sec", "huge_tiled_faults_per_sec",
             "huge_pages_peak",
             "huge_packed_pages_peak", "huge_pages_total")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("current", help="freshly measured JSON")
    ap.add_argument("--max-drop", type=float, default=0.25,
                    help="maximum tolerated fractional drop of "
                         f"{GATE_KEY} (default 0.25)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    failed = False

    for key in WORKLOAD_KEYS:
        if base.get(key) != cur.get(key):
            print(f"FAIL workload drift: {key}: baseline={base.get(key)!r} "
                  f"current={cur.get(key)!r}")
            failed = True

    if cur.get("verdicts_equal") is not True:
        print(f"FAIL verdicts_equal: {cur.get('verdicts_equal')!r} "
              "(packed/scalar or cross-width verdict mismatch)")
        failed = True

    try:
        b = float(base[GATE_KEY])
        c = float(cur[GATE_KEY])
    except (KeyError, TypeError, ValueError) as e:
        print(f"FAIL {GATE_KEY} missing or non-numeric: {e}")
        sys.exit(1)

    floor = b * (1.0 - args.max_drop)
    ratio = c / b if b else float("inf")
    verdict = "PASS" if c >= floor else "FAIL"
    if c < floor:
        failed = True
    print(f"{verdict} {GATE_KEY}: baseline {b:.0f} -> current {c:.0f} "
          f"({ratio:.2f}x, floor {floor:.0f} at max drop "
          f"{args.max_drop:.0%})")

    # Runner-speed-independent gate: the widening ratio is measured within
    # one run, so it must hold wherever the bench executes.  Only compared
    # when both runs used the same lane width (a narrower forced width
    # legitimately has a different ratio).
    if base.get("simd_lanes") == cur.get("simd_lanes"):
        try:
            rb = float(base[RATIO_KEY])
            rc = float(cur[RATIO_KEY])
        except (KeyError, TypeError, ValueError) as e:
            print(f"FAIL {RATIO_KEY} missing or non-numeric: {e}")
            sys.exit(1)
        rfloor = rb * (1.0 - args.max_drop)
        rverdict = "PASS" if rc >= rfloor else "FAIL"
        if rc < rfloor:
            failed = True
        print(f"{rverdict} {RATIO_KEY}: baseline {rb:.2f}x -> current {rc:.2f}x "
              f"(floor {rfloor:.2f}x at max drop {args.max_drop:.0%})")
    else:
        print(f"info {RATIO_KEY} not compared: simd_lanes differ "
              f"(baseline={base.get('simd_lanes')} current={cur.get('simd_lanes')})")

    for key in INFO_KEYS:
        if key in base or key in cur:
            print(f"info {key}: baseline={base.get(key)} current={cur.get(key)}")

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
