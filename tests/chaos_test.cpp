// Chaos harness tests: the failpoint registry itself, and the failure
// semantics it exists to prove — cache disk faults degrade to memory-only,
// checkpoint save failures warn-and-continue, allocation and worker faults
// surface as typed retryable errors, campaigns stop at run.deadline_ms
// with an exact prefix of the fault-free record stream, and the service
// survives socket faults with typed error frames instead of crashes.
//
// Failpoints are process-global; every test holds a FailpointGuard so a
// failing assertion cannot leak an armed failpoint into later tests.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/checkpoint.h"
#include "api/error.h"
#include "api/json.h"
#include "api/runner.h"
#include "api/sink.h"
#include "api/spec.h"
#include "cli/cli.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/failpoint.h"
#include "util/fs.h"

namespace twm {
namespace {

struct FailpointGuard {
  FailpointGuard() { util::failpoints_clear(); }
  ~FailpointGuard() { util::failpoints_clear(); }
};

std::filesystem::path temp_dir(const std::string& tag) {
  auto dir = std::filesystem::temp_directory_path() /
             ("twm_chaos_" + std::to_string(::getpid()) + "_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Scalar + 1 thread: units stream in deterministic fault order, so
// cancellation (and a deadline) cuts an exact prefix.
api::CampaignSpec scalar_spec() {
  api::CampaignSpec s;
  s.name = "chaos-test";
  s.words = 2;
  s.width = 2;
  s.march = "March C-";
  s.schemes = {SchemeKind::ProposedExact};
  s.classes = {{api::ClassKind::Saf, CfScope::Both}};  // 2*2*2 = 8 faults
  s.seeds = {0, 1};
  s.backend = CoverageBackend::Scalar;
  s.threads = 1;
  return s;
}

// Big enough that a millisecond deadline always expires mid-run (2048
// scalar units), small enough that the fault-free reference completes in
// test time.
api::CampaignSpec big_scalar_spec() {
  api::CampaignSpec s = scalar_spec();
  s.name = "chaos-test-big";
  s.words = 64;
  s.width = 8;
  s.classes = {{api::ClassKind::Saf, CfScope::Both}, {api::ClassKind::Tf, CfScope::Both}};
  return s;
}

// ---- failpoint registry --------------------------------------------------

TEST(Failpoint, SpecParsesActionsAndTriggerForms) {
  FailpointGuard guard;
  ASSERT_TRUE(util::failpoints_configure("a=err;b=oom@3;c=drop:0.5;d=eintr"));
  EXPECT_TRUE(util::failpoints_enabled());
  const std::vector<std::string> want = {"a", "b", "c", "d"};
  EXPECT_EQ(util::failpoint_names(), want);
}

TEST(Failpoint, MalformedSpecIsRejectedAndThePreviousConfigSurvives) {
  FailpointGuard guard;
  ASSERT_TRUE(util::failpoints_configure("keep=err"));
  for (const char* bad : {"x", "a=bogus", "a=err@0", "a=err@x", "a=drop:0", "a=drop:1.5",
                          "=err", "a="}) {
    std::string error;
    EXPECT_FALSE(util::failpoints_configure(bad, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
  const std::vector<std::string> want = {"keep"};
  EXPECT_EQ(util::failpoint_names(), want);
}

TEST(Failpoint, EmptySpecDeactivatesEverything) {
  FailpointGuard guard;
  ASSERT_TRUE(util::failpoints_configure("a=err"));
  ASSERT_TRUE(util::failpoints_configure(""));
  EXPECT_FALSE(util::failpoints_enabled());
  EXPECT_FALSE(TWM_FAILPOINT("a").has_value());
}

TEST(Failpoint, CountTriggerFiresExactlyOnTheNthHitOnce) {
  FailpointGuard guard;
  ASSERT_TRUE(util::failpoints_configure("f=err@3"));
  for (int hit = 1; hit <= 6; ++hit) {
    const auto fired = TWM_FAILPOINT("f");
    if (hit == 3) {
      ASSERT_TRUE(fired.has_value());
      EXPECT_EQ(*fired, util::FailAction::Err);
    } else {
      EXPECT_FALSE(fired.has_value()) << "hit " << hit;
    }
  }
  EXPECT_EQ(util::failpoint_trips("f"), 1u);
}

TEST(Failpoint, BareActionFiresOnEveryHit) {
  FailpointGuard guard;
  ASSERT_TRUE(util::failpoints_configure("f=oom"));
  for (int hit = 0; hit < 5; ++hit) EXPECT_EQ(TWM_FAILPOINT("f"), util::FailAction::Oom);
  EXPECT_EQ(util::failpoint_trips("f"), 5u);
  EXPECT_FALSE(TWM_FAILPOINT("unconfigured").has_value());
  EXPECT_EQ(util::failpoint_trips("unconfigured"), 0u);
}

TEST(Failpoint, ProbabilityTriggerIsDeterministicPerSeed) {
  FailpointGuard guard;
  const auto sample = [] {
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(TWM_FAILPOINT("p").has_value());
    return fired;
  };
  util::failpoints_set_seed(42);
  ASSERT_TRUE(util::failpoints_configure("p=drop:0.5"));
  const std::vector<bool> first = sample();
  ASSERT_TRUE(util::failpoints_configure("p=drop:0.5"));  // re-arm, same seed
  EXPECT_EQ(sample(), first);  // a chaos failure reproduces

  const std::size_t fires = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 50u);  // p=0.5 over 200 draws: loose sanity band
  EXPECT_LT(fires, 150u);

  util::failpoints_set_seed(43);
  ASSERT_TRUE(util::failpoints_configure("p=drop:0.5"));
  EXPECT_NE(sample(), first);  // different seed, different trajectory
  util::failpoints_set_seed(1);
}

// ---- typed error taxonomy ------------------------------------------------

TEST(TypedErrors, ClassifyExceptionMapsTheTaxonomy) {
  const api::Error oom = api::classify_exception(std::bad_alloc());
  EXPECT_EQ(oom.category, api::ErrorCategory::Resource);
  EXPECT_TRUE(oom.retryable);

  const api::Error spec = api::classify_exception(
      api::SpecValidationError(std::vector<api::SpecError>{{"memory.words", "must be > 0"}}));
  EXPECT_EQ(spec.category, api::ErrorCategory::Spec);
  EXPECT_FALSE(spec.retryable);

  const api::Error logic = api::classify_exception(std::logic_error("bug"));
  EXPECT_EQ(logic.category, api::ErrorCategory::Engine);
  EXPECT_FALSE(logic.retryable);

  const api::Error runtime = api::classify_exception(std::runtime_error("transient"));
  EXPECT_EQ(runtime.category, api::ErrorCategory::Engine);
  EXPECT_TRUE(runtime.retryable);

  // A CampaignError's payload passes through unchanged.
  const api::Error wrapped = api::classify_exception(
      api::CampaignError({api::ErrorCategory::Timeout, true, "idle"}));
  EXPECT_EQ(wrapped.category, api::ErrorCategory::Timeout);
  EXPECT_TRUE(wrapped.retryable);
  EXPECT_EQ(wrapped.detail, "idle");
}

TEST(TypedErrors, ErrorFrameRoundTripsThroughTheParser) {
  const api::Error e{api::ErrorCategory::Timeout, true, "idle timeout: no frame in 100 ms"};
  const std::string frame = service::error_frame(e);
  const auto info = service::parse_error_frame(frame);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->scope, "timeout");
  EXPECT_TRUE(info->retryable);
  EXPECT_EQ(info->message, e.detail);

  EXPECT_FALSE(service::parse_error_frame("{\"type\":\"pong\"}").has_value());
  EXPECT_FALSE(service::parse_error_frame("not json").has_value());
  // Legacy builder defaults to non-retryable.
  const auto legacy = service::parse_error_frame(service::error_frame("frame", "bad json"));
  ASSERT_TRUE(legacy.has_value());
  EXPECT_FALSE(legacy->retryable);
}

// ---- crash-atomic writes -------------------------------------------------

TEST(AtomicWrite, ReplacesTheFileAndLeavesNoTempDroppings) {
  const auto dir = temp_dir("atomic_write");
  const std::string path = (dir / "target.json").string();
  ASSERT_TRUE(util::atomic_write_file(path, "first"));
  ASSERT_TRUE(util::atomic_write_file(path, "second"));
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "second");
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);  // no abandoned tmp files
  std::filesystem::remove_all(dir);
}

// ---- result cache under disk faults -------------------------------------

TEST(CacheChaos, RepeatedDiskWriteFailuresDegradeToMemoryOnly) {
  FailpointGuard guard;
  const auto dir = temp_dir("cache_degrade");
  service::ResultCache cache({dir.string(), 8});
  const api::CellRecords records{{{0, true, true}}};

  ASSERT_TRUE(util::failpoints_configure("cache.disk_write=err"));
  for (int i = 0; i < 5; ++i)
    cache.store("k" + std::to_string(i), "id" + std::to_string(i), records);

  const service::ResultCache::Counters c = cache.counters();
  EXPECT_EQ(c.disk_errors, 3u);  // ladder trips at kMaxConsecutiveDiskFailures
  EXPECT_TRUE(c.disk_degraded);
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  // The memory tier is untouched: every entry still serves.
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(cache.lookup("k" + std::to_string(i), "id" + std::to_string(i)).has_value());

  // Degradation is for the cache's lifetime — clearing the failpoint does
  // not re-enable a disk that proved unreliable.
  util::failpoints_clear();
  cache.store("k9", "id9", records);
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(CacheChaos, OneDiskFailureIsCountedButDoesNotDegrade) {
  FailpointGuard guard;
  const auto dir = temp_dir("cache_one_fail");
  const api::CellRecords records{{{0, true, true}}};
  // Real identities are canonical JSON; the entry file embeds them
  // verbatim, so test identities must be valid JSON too.
  const std::string id1 = R"("id1")", id2 = R"("id2")";
  {
    service::ResultCache cache({dir.string(), 8});
    ASSERT_TRUE(util::failpoints_configure("cache.disk_write=err@1"));
    cache.store("k1", id1, records);  // disk write fails, memory keeps it
    cache.store("k2", id2, records);  // success resets the ladder
    const service::ResultCache::Counters c = cache.counters();
    EXPECT_EQ(c.disk_errors, 1u);
    EXPECT_FALSE(c.disk_degraded);
  }
  // A cold cache sees exactly what reached the disk.
  service::ResultCache cold({dir.string(), 8});
  EXPECT_FALSE(cold.lookup("k1", id1).has_value());
  EXPECT_TRUE(cold.lookup("k2", id2).has_value());
  std::filesystem::remove_all(dir);
}

TEST(CacheChaos, DiskReadFailureIsAMissNotAnAbort) {
  FailpointGuard guard;
  const auto dir = temp_dir("cache_read_fail");
  const api::CellRecords records{{{0, true, true}}};
  const std::string id1 = R"("id1")";
  {
    service::ResultCache cache({dir.string(), 8});
    cache.store("k1", id1, records);
  }
  service::ResultCache cold({dir.string(), 8});
  ASSERT_TRUE(util::failpoints_configure("cache.disk_read=err@1"));
  EXPECT_FALSE(cold.lookup("k1", id1).has_value());  // injected failure
  EXPECT_TRUE(cold.lookup("k1", id1).has_value());   // disk recovered
  const service::ResultCache::Counters c = cold.counters();
  EXPECT_EQ(c.disk_errors, 1u);
  EXPECT_FALSE(c.disk_degraded);
  std::filesystem::remove_all(dir);
}

// ---- checkpoint under save/load faults -----------------------------------

TEST(CheckpointChaos, FailedSaveLeavesThePreviousFileIntact) {
  FailpointGuard guard;
  const auto dir = temp_dir("ck_save");
  const std::string path = (dir / "ck.json").string();

  api::CheckpointFile file;
  file.regions = 2;
  file.cells.push_back({"cell-identity", 0, {{0, true, true}}});
  ASSERT_TRUE(api::save_checkpoint(path, file));

  api::CheckpointFile newer = file;
  newer.cells.push_back({"cell-identity", 1, {{1, true, false}}});
  ASSERT_TRUE(util::failpoints_configure("checkpoint.save=err"));
  EXPECT_FALSE(api::save_checkpoint(path, newer));

  util::failpoints_clear();
  const auto loaded = api::load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cells.size(), 1u);  // the failed save changed nothing

  ASSERT_TRUE(util::failpoints_configure("checkpoint.load=err"));
  EXPECT_FALSE(api::load_checkpoint(path).has_value());  // degraded to "no resume"
  std::filesystem::remove_all(dir);
}

TEST(CheckpointChaos, CampaignWarnsAndContinuesWhenEverySaveFails) {
  FailpointGuard guard;
  const auto dir = temp_dir("ck_campaign");
  const std::string path = (dir / "ck.json").string();

  api::CampaignSpec spec = scalar_spec();
  spec.words = 16;
  spec.regions = 4;

  api::CollectingSink clean;
  const api::CampaignSummary want = api::run_campaign(spec, &clean);

  ASSERT_TRUE(util::failpoints_configure("checkpoint.save=err"));
  api::CollectingSink sink;
  const api::CampaignSummary got =
      api::run_campaign(spec, &sink, nullptr, nullptr, path);
  util::failpoints_clear();

  // Persistence failed; the campaign itself must be untouched.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(got.cancelled);
  EXPECT_EQ(got.units_emitted, want.units_emitted);
  ASSERT_EQ(got.cells.size(), want.cells.size());
  for (std::size_t i = 0; i < got.cells.size(); ++i) {
    EXPECT_EQ(got.cells[i].outcome.total, want.cells[i].outcome.total);
    EXPECT_EQ(got.cells[i].outcome.detected_all, want.cells[i].outcome.detected_all);
    EXPECT_EQ(got.cells[i].outcome.detected_any, want.cells[i].outcome.detected_any);
  }

  // With the failpoint gone the same call persists a resumable file.
  api::CollectingSink again;
  api::run_campaign(spec, &again, nullptr, nullptr, path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_TRUE(api::load_checkpoint(path).has_value());
  std::filesystem::remove_all(dir);
}

// ---- engine faults become typed errors ------------------------------------

TEST(EngineChaos, PageAllocOomBecomesATypedResourceError) {
  FailpointGuard guard;
  ASSERT_TRUE(util::failpoints_configure("page.alloc=oom@1"));
  api::CollectingSink sink;
  try {
    api::run_campaign(scalar_spec(), &sink);
    FAIL() << "expected CampaignError";
  } catch (const api::CampaignError& e) {
    EXPECT_EQ(e.error().category, api::ErrorCategory::Resource);
    EXPECT_TRUE(e.error().retryable);
  }
  // The stream ended in an error record, not a campaign_end.
  ASSERT_EQ(sink.errors.size(), 1u);
  EXPECT_EQ(sink.errors[0].category, api::ErrorCategory::Resource);
  EXPECT_EQ(sink.ends, 0u);

  // The failure was the one-shot injection: the same campaign now runs.
  util::failpoints_clear();
  api::CollectingSink clean;
  EXPECT_NO_THROW(api::run_campaign(scalar_spec(), &clean));
  EXPECT_EQ(clean.ends, 1u);
}

TEST(EngineChaos, WorkerDeathBecomesATypedEngineError) {
  FailpointGuard guard;
  ASSERT_TRUE(util::failpoints_configure("campaign.worker=err"));
  api::CampaignSpec spec = scalar_spec();
  spec.threads = 2;
  api::CollectingSink sink;
  try {
    api::run_campaign(spec, &sink);
    FAIL() << "expected CampaignError";
  } catch (const api::CampaignError& e) {
    EXPECT_EQ(e.error().category, api::ErrorCategory::Engine);
    EXPECT_TRUE(e.error().retryable);
    EXPECT_NE(e.error().detail.find("injected worker failure"), std::string::npos);
  }
  ASSERT_EQ(sink.errors.size(), 1u);
  EXPECT_EQ(sink.errors[0].category, api::ErrorCategory::Engine);
}

TEST(EngineChaos, SpecValidationStillThrowsItsOwnType) {
  // The typed-error wrapper must not swallow the pre-run validation
  // contract: callers branch on SpecValidationError's field paths.
  api::CampaignSpec bad = scalar_spec();
  bad.words = 0;
  EXPECT_THROW(api::run_campaign(bad), api::SpecValidationError);
}

// ---- run.deadline_ms ------------------------------------------------------

TEST(DeadlineChaos, DeadlineRoundTripsThroughSpecJsonOnlyWhenSet) {
  api::CampaignSpec s = scalar_spec();
  EXPECT_EQ(api::to_json(s).find("deadline_ms"), std::string::npos);
  s.deadline_ms = 1500;
  const std::string json = api::to_json(s);
  EXPECT_NE(json.find("\"deadline_ms\": 1500"), std::string::npos);
  const auto parsed = api::specs_from_json(json);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], s);
}

TEST(DeadlineChaos, UnexpiredDeadlineChangesNothing) {
  api::CampaignSpec spec = scalar_spec();
  spec.deadline_ms = 60'000;
  api::CollectingSink sink;
  const api::CampaignSummary summary = api::run_campaign(spec, &sink);
  EXPECT_FALSE(summary.cancelled);
  EXPECT_FALSE(summary.timed_out);
  EXPECT_EQ(sink.units.size(), 8u);
}

TEST(DeadlineChaos, TimedOutCampaignEmitsAnExactPrefixOfTheFaultFreeStream) {
  api::CollectingSink full;
  api::run_campaign(big_scalar_spec(), &full);
  ASSERT_EQ(full.units.size(), 2048u);

  api::CampaignSpec limited = big_scalar_spec();
  limited.deadline_ms = 1;
  api::CollectingSink cut;
  const api::CampaignSummary summary = api::run_campaign(limited, &cut);

  // THE acceptance criterion: the deadline is an outcome, not an error —
  // begin and end both fire, the summary carries timed_out (which implies
  // cancelled), and the streamed records are exactly the first K of the
  // fault-free run.
  EXPECT_TRUE(summary.timed_out);
  EXPECT_TRUE(summary.cancelled);
  EXPECT_EQ(cut.begins, 1u);
  EXPECT_EQ(cut.ends, 1u);
  EXPECT_TRUE(cut.errors.empty());
  ASSERT_LT(cut.units.size(), full.units.size());
  for (std::size_t i = 0; i < cut.units.size(); ++i) {
    EXPECT_EQ(cut.units[i].scheme, full.units[i].scheme);
    EXPECT_EQ(cut.units[i].cls, full.units[i].cls);
    EXPECT_EQ(cut.units[i].fault_index, full.units[i].fault_index);
    EXPECT_EQ(cut.units[i].detected_all, full.units[i].detected_all);
    EXPECT_EQ(cut.units[i].detected_any, full.units[i].detected_any);
  }
}

TEST(DeadlineChaos, JsonLinesEndRecordCarriesTimedOut) {
  std::ostringstream out;
  api::JsonLinesSink sink(out);
  api::run_campaign(scalar_spec(), &sink);
  EXPECT_NE(out.str().find("\"timed_out\":false"), std::string::npos);

  api::CampaignSpec limited = big_scalar_spec();
  limited.deadline_ms = 1;
  std::ostringstream tout;
  api::JsonLinesSink tsink(tout);
  api::run_campaign(limited, &tsink);
  EXPECT_NE(tout.str().find("\"timed_out\":true"), std::string::npos);
}

// ---- service under chaos ---------------------------------------------------

class ServiceChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::failpoints_clear();
    dir_ = temp_dir(std::string("svc_") +
                    ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }

  void TearDown() override {
    util::failpoints_clear();
    stop_server();
    std::filesystem::remove_all(dir_);
  }

  std::uint16_t start_server(service::ServerConfig config = {}) {
    if (config.cache_dir.empty()) config.cache_dir = dir_.string();
    server_ = std::make_unique<service::ServiceServer>(std::move(config));
    const std::uint16_t port = server_->start();
    serve_thread_ = std::thread([this] { server_->serve_forever(); });
    return port;
  }

  void stop_server() {
    if (server_) server_->stop();
    if (serve_thread_.joinable()) serve_thread_.join();
    server_.reset();
  }

  service::LineClient connect(std::uint16_t port) {
    service::LineClient c;
    std::string error;
    EXPECT_TRUE(c.connect("127.0.0.1", port, &error)) << error;
    return c;
  }

  std::filesystem::path dir_;
  std::unique_ptr<service::ServiceServer> server_;
  std::thread serve_thread_;
};

TEST_F(ServiceChaosTest, SyntheticEintrOnEverySocketCallIsInvisible) {
  // Every send/recv/accept gets one synthetic EINTR before the real call:
  // the retry loops must make the whole exchange byte-for-byte normal.
  ASSERT_TRUE(
      util::failpoints_configure("socket.send=eintr;socket.recv=eintr;socket.accept=eintr"));
  const auto port = start_server();
  service::LineClient c = connect(port);
  ASSERT_TRUE(c.send_line(service::submit_frame(scalar_spec())));
  std::vector<std::string> lines;
  while (true) {
    const auto line = c.recv_line();
    ASSERT_TRUE(line) << "stream ended before the terminator";
    lines.push_back(*line);
    if (line->find("\"type\":\"campaign_stats\"") != std::string::npos) break;
    ASSERT_FALSE(service::parse_error_frame(*line).has_value()) << *line;
  }
  // begin + 8 units + end + stats.
  EXPECT_EQ(lines.size(), 11u);
}

TEST_F(ServiceChaosTest, AcceptFailureDropsOneConnectionNotTheDaemon) {
  const auto port = start_server();
  ASSERT_TRUE(util::failpoints_configure("socket.accept=err@1"));
  service::LineClient first;
  // The kernel completes the handshake, then the injected accept failure
  // hangs up; connect() may or may not observe it, recv always does.
  first.connect("127.0.0.1", port);
  EXPECT_FALSE(first.recv_line().has_value());

  service::LineClient second = connect(port);
  ASSERT_TRUE(second.send_line(service::ping_frame()));
  const auto pong = second.recv_line();
  ASSERT_TRUE(pong.has_value());
  EXPECT_NE(pong->find("\"type\":\"pong\""), std::string::npos);
}

TEST_F(ServiceChaosTest, EngineFaultReachesTheClientAsARetryableErrorFrame) {
  const auto port = start_server();
  service::LineClient c = connect(port);

  ASSERT_TRUE(util::failpoints_configure("page.alloc=oom@1"));
  ASSERT_TRUE(c.send_line(service::submit_frame(scalar_spec())));
  std::optional<service::ErrorInfo> info;
  while (true) {
    const auto line = c.recv_line();
    ASSERT_TRUE(line) << "connection died instead of delivering the typed error";
    info = service::parse_error_frame(*line);
    if (info) break;
    ASSERT_EQ(line->find("\"type\":\"campaign_stats\""), std::string::npos)
        << "campaign completed despite the injected OOM";
  }
  EXPECT_EQ(info->scope, "resource");
  EXPECT_TRUE(info->retryable);
  EXPECT_EQ(server_->counters().campaigns_failed, 1u);

  // `retryable` is honest: the connection survived and the resubmit (the
  // one-shot failpoint is spent) completes.
  util::failpoints_clear();
  ASSERT_TRUE(c.send_line(service::submit_frame(scalar_spec())));
  bool completed = false;
  while (true) {
    const auto line = c.recv_line();
    ASSERT_TRUE(line);
    if (line->find("\"type\":\"campaign_stats\"") != std::string::npos) {
      completed = true;
      break;
    }
    ASSERT_FALSE(service::parse_error_frame(*line).has_value()) << *line;
  }
  EXPECT_TRUE(completed);
}

TEST_F(ServiceChaosTest, IdleClientIsDroppedWithATypedTimeoutFrame) {
  service::ServerConfig config;
  config.idle_timeout_ms = 100;
  const auto port = start_server(std::move(config));
  service::LineClient c = connect(port);
  // Send nothing: the server must cut us loose, with the reason first.
  const auto line = c.recv_line();
  ASSERT_TRUE(line.has_value());
  const auto info = service::parse_error_frame(*line);
  ASSERT_TRUE(info.has_value()) << *line;
  EXPECT_EQ(info->scope, "timeout");
  EXPECT_TRUE(info->retryable);
  EXPECT_FALSE(c.recv_line().has_value());  // then hung up
  EXPECT_EQ(server_->counters().clients_timed_out, 1u);

  // A fresh connection that does talk is served normally.
  service::LineClient again = connect(port);
  ASSERT_TRUE(again.send_line(service::ping_frame()));
  EXPECT_TRUE(again.recv_line().has_value());
}

// ---- CLI plumbing ---------------------------------------------------------

TEST(ChaosCli, FailpointsFlagRejectsMalformedSpecs) {
  FailpointGuard guard;
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"simd", "--failpoints", "cache.disk_write=bogus"}, out, err), 1);
  EXPECT_NE(err.str().find("--failpoints"), std::string::npos);
}

TEST(ChaosCli, FailpointsFlagArmsTheRegistryForAnyCommand) {
  FailpointGuard guard;
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"simd", "--failpoints", "cache.disk_write=err@2"}, out, err), 0);
  const std::vector<std::string> want = {"cache.disk_write"};
  EXPECT_EQ(util::failpoint_names(), want);
}

TEST(ChaosCli, RunDeadlineOverrideReportsTimedOut) {
  api::CampaignSpec spec = big_scalar_spec();
  const std::string path = ::testing::TempDir() + "twm_chaos_deadline_spec.json";
  {
    std::ofstream f(path);
    f << api::to_json(spec);
  }
  std::ostringstream out, err;
  const int rc =
      run_cli({"run", path, "--sink", "jsonl", "--deadline-ms", "1"}, out, err);
  EXPECT_EQ(rc, 0);  // a deadline is an outcome, not an error
  EXPECT_NE(out.str().find("\"timed_out\":true"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ChaosCli, SubmitRetriesWithBackoffBeforeGivingUp) {
  std::ostringstream out, err;
  // Nothing listens on port 1: every attempt is a fast connect refusal.
  const int rc = run_cli(
      {"submit", "--stats", "--port", "1", "--retries", "2", "--backoff-ms", "1"}, out, err);
  EXPECT_EQ(rc, 1);
  std::size_t warnings = 0;
  for (std::size_t pos = 0; (pos = err.str().find("retrying in", pos)) != std::string::npos;
       ++pos)
    ++warnings;
  EXPECT_EQ(warnings, 2u) << err.str();
  EXPECT_NE(err.str().find("error: connect failed"), std::string::npos) << err.str();
}

}  // namespace
}  // namespace twm
