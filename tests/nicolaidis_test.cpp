// Tests for the classical Nicolaidis transparency transformation (Sec. 3 of
// the paper): structure against the paper's worked example, and the
// transparency invariant for every catalogued march.
#include <gtest/gtest.h>

#include "bist/engine.h"
#include "core/nicolaidis.h"
#include "march/library.h"
#include "march/parser.h"
#include "march/printer.h"
#include "march/word_expand.h"
#include "memsim/memory.h"
#include "util/rng.h"

namespace twm {
namespace {

TEST(Nicolaidis, TMarchCMinusMatchesPaper) {
  // Sec. 3: TMarch C- = { up(ra,w~a); up(r~a,wa); down(ra,w~a); down(r~a,wa); any(ra) }.
  const MarchTest t = nicolaidis_transparent(march_by_name("March C-"));
  EXPECT_EQ(to_string(t),
            "TMarch C-: { up(r(a),w(~a)); up(r(~a),w(a)); down(r(a),w(~a)); "
            "down(r(~a),w(a)); any(r(a)) }");
  EXPECT_EQ(t.op_count(), 9u);
  EXPECT_TRUE(t.is_transparent());
  EXPECT_TRUE(t.every_element_begins_with_read());
}

TEST(Nicolaidis, PredictionOfMarchCMinusMatchesPaper) {
  // Sec. 3: prediction = { up(ra); up(r~a); down(ra); down(r~a); any(ra) }.
  const MarchTest p = prediction_test(nicolaidis_transparent(march_by_name("March C-")));
  EXPECT_EQ(to_string(p),
            "TMarch C--pred: { up(r(a)); up(r(~a)); down(r(a)); down(r(~a)); any(r(a)) }");
  EXPECT_EQ(p.op_count(), 5u);
  EXPECT_EQ(p.write_count(), 0u);
}

TEST(Nicolaidis, InitializationElementRemoved) {
  const MarchTest t = nicolaidis_transparent(march_by_name("March U"));
  // Original has 5 elements, the leading any(w0) is dropped.
  EXPECT_EQ(t.elements.size(), 4u);
  EXPECT_TRUE(t.elements.front().begins_with_read());
}

TEST(Nicolaidis, Step3AppendsRestoreWhenContentInverted) {
  // MATS = { any(w0); any(r0,w1); any(r1) } leaves ~a -> restore appended.
  const MarchTest t = nicolaidis_transparent(march_by_name("MATS"));
  EXPECT_EQ(to_string(t),
            "TMATS: { any(r(a),w(~a)); any(r(~a)); any(r(~a),w(a)) }");
}

TEST(Nicolaidis, Step3DeferredOnRequest) {
  const MarchTest t = nicolaidis_transparent(march_by_name("MATS"), /*defer_restore=*/true);
  EXPECT_EQ(t.elements.size(), 2u);  // no restore element
  const auto last_write = t.final_write_spec();
  ASSERT_TRUE(last_write.has_value());
  EXPECT_TRUE(last_write->complement);
}

TEST(Nicolaidis, Step1PrependsReadToWriteFirstElements) {
  // Artificial march whose middle element starts with a write.
  const MarchTest in = parse_march("{ any(w0); up(r0,w1); down(w0); any(r0) }");
  const MarchTest t = nicolaidis_transparent(in);
  // down(w0) becomes down(r~a, wa): read expects the content left by up(..w1).
  ASSERT_EQ(t.elements.size(), 3u);
  const MarchElement& e = t.elements[1];
  ASSERT_EQ(e.ops.size(), 2u);
  EXPECT_TRUE(e.ops[0].is_read());
  EXPECT_TRUE(e.ops[0].data.complement);  // expects ~a
  EXPECT_TRUE(e.ops[1].is_write());
  EXPECT_FALSE(e.ops[1].data.complement);
}

TEST(Nicolaidis, RejectsEmptyAndDegenerateInputs) {
  EXPECT_THROW(nicolaidis_transparent(MarchTest{}), std::invalid_argument);
  EXPECT_THROW(nicolaidis_transparent(parse_march("{ any(w0) }")), std::invalid_argument);
}

TEST(Nicolaidis, RejectsAlreadyTransparentInput) {
  const MarchTest t = nicolaidis_transparent(march_by_name("March C-"));
  EXPECT_THROW(nicolaidis_transparent(t), std::invalid_argument);
}

TEST(Nicolaidis, WordOrientedInputSupported) {
  // The rules also apply to multi-background word-oriented marches (this is
  // what Scheme 1 builds on).
  const MarchTest wo = word_oriented_march(march_by_name("MATS+"), 4);
  const MarchTest t = nicolaidis_transparent(wo);
  EXPECT_TRUE(t.is_transparent());
  EXPECT_TRUE(t.every_element_begins_with_read());
}

// --- transparency property across the whole catalog --------------------

struct TransparencyCase {
  std::string march;
  unsigned width;
  std::uint64_t seed;
};

class TransparencyProperty : public ::testing::TestWithParam<TransparencyCase> {};

// Running the transparent test on a fault-free memory with arbitrary
// contents must leave the contents unchanged and raise no detection.
TEST_P(TransparencyProperty, ContentPreservedAndNoFalseAlarm) {
  const auto& pc = GetParam();
  Rng rng(pc.seed);
  Memory mem(12, pc.width);
  mem.fill_random(rng);
  const auto snapshot = mem.snapshot();

  const MarchTest t = nicolaidis_transparent(solid_march(march_by_name(pc.march)));
  const MarchTest p = prediction_test(t);
  MarchRunner runner(mem);
  const auto out = runner.run_transparent_session(t, p, pc.width);

  EXPECT_FALSE(out.detected_exact);
  EXPECT_FALSE(out.detected_misr);
  EXPECT_TRUE(mem.equals(snapshot));
}

std::vector<TransparencyCase> transparency_cases() {
  std::vector<TransparencyCase> cases;
  for (const auto& info : march_catalog())
    for (unsigned w : {1u, 4u, 8u, 32u})
      cases.push_back({info.name, w, 1000 + w});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(CatalogSweep, TransparencyProperty,
                         ::testing::ValuesIn(transparency_cases()),
                         [](const ::testing::TestParamInfo<TransparencyCase>& info) {
                           std::string n =
                               info.param.march + "_w" + std::to_string(info.param.width);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

}  // namespace
}  // namespace twm
