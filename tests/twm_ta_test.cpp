// Tests for TWM_TA (Algorithm 1): structure against the paper's Sec. 4
// worked example (March U, B = 8), the ATMarch construction, and the
// transparency invariant across the catalog and word widths.
#include <gtest/gtest.h>

#include "bist/engine.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "march/parser.h"
#include "march/printer.h"
#include "memsim/memory.h"
#include "util/backgrounds.h"
#include "util/rng.h"

namespace twm {
namespace {

TEST(TwmTa, RejectsBadInputs) {
  EXPECT_THROW(twm_transform(MarchTest{}, 8), std::invalid_argument);  // Abort branch
  EXPECT_THROW(twm_transform(march_by_name("March U"), 12), std::invalid_argument);
  EXPECT_THROW(twm_transform(march_by_name("March U"), 0), std::invalid_argument);
}

TEST(TwmTa, MarchUExampleFromPaper) {
  // Sec. 4: SMarch U ends with a Write, so a Read is appended; TSMarch U
  // then has 13 operations, the content equals the initial data, and
  // TWMarch U totals 29 operations per word for B = 8.
  const TwmResult r = twm_transform(march_by_name("March U"), 8);

  EXPECT_EQ(r.smarch.op_count(), 14u);  // 13 + appended read
  EXPECT_TRUE(r.smarch.last_op()->is_read());

  EXPECT_EQ(r.tsmarch.op_count(), 13u);  // init element removed
  EXPECT_TRUE(r.tsmarch.is_transparent());
  EXPECT_FALSE(r.final_content_inverted);

  EXPECT_EQ(r.atmarch.op_count(), 5u * 3u + 1u);  // 3 sweeps + closing read
  EXPECT_EQ(r.twmarch.op_count(), 29u);           // the paper's 29N
}

TEST(TwmTa, TsmarchUStructureMatchesPaper) {
  const TwmResult r = twm_transform(march_by_name("March U"), 8);
  EXPECT_EQ(to_string(r.tsmarch),
            "TSMarch U: { up(r(a),w(~a),r(~a),w(a)); up(r(a),w(~a)); "
            "down(r(~a),w(a),r(a),w(~a)); down(r(~a),w(a),r(a)) }");
}

TEST(TwmTa, AtmarchPatternsMatchPaper) {
  const TwmResult r = twm_transform(march_by_name("March U"), 8);
  ASSERT_EQ(r.atmarch.elements.size(), 4u);
  const auto pattern_of = [&](int k) { return r.atmarch.elements[k].ops[1].data.pattern.to_string(); };
  EXPECT_EQ(pattern_of(0), "01010101");
  EXPECT_EQ(pattern_of(1), "00110011");
  EXPECT_EQ(pattern_of(2), "00001111");
  // Element shape: r a, w a^Dk, r a^Dk, w a, r a.
  const MarchElement& e = r.atmarch.elements[0];
  ASSERT_EQ(e.ops.size(), 5u);
  EXPECT_TRUE(e.ops[0].is_read());
  EXPECT_TRUE(e.ops[0].data.pattern.empty());
  EXPECT_TRUE(e.ops[1].is_write());
  EXPECT_TRUE(e.ops[2].is_read());
  EXPECT_EQ(e.ops[2].data.pattern.to_string(), "01010101");
  EXPECT_TRUE(e.ops[3].is_write());
  EXPECT_TRUE(e.ops[3].data.pattern.empty());
  EXPECT_TRUE(e.ops[4].is_read());
  // Closing element: single read (content == initial branch).
  EXPECT_EQ(r.atmarch.elements[3].ops.size(), 1u);
  EXPECT_TRUE(r.atmarch.elements[3].ops[0].is_read());
}

TEST(TwmTa, MarchCMinusComplexity) {
  // Sec. 5: TWMarch(March C-) for B = 32 costs 35N; prediction has
  // Q_T + 3*log2(B) + 1 = 5 + 16 = 21 reads (measured; the paper's closed
  // form quotes Q + 2*log2(B) = 15 — see DESIGN.md Sec. 4).
  const TwmResult r = twm_transform(march_by_name("March C-"), 32);
  EXPECT_EQ(r.tsmarch.op_count(), 9u);
  EXPECT_EQ(r.twmarch.op_count(), 35u);
  EXPECT_EQ(r.prediction.op_count(), 21u);
  EXPECT_EQ(r.prediction.write_count(), 0u);
}

TEST(TwmTa, InvertedBranchTakenForMats) {
  // MATS leaves ~a after TSMarch (its last write is w1 and no trailing
  // write-back), so ATMarch must run on ~a and restore a at the end.
  const TwmResult r = twm_transform(march_by_name("MATS"), 8);
  EXPECT_TRUE(r.final_content_inverted);
  const MarchElement& sweep = r.atmarch.elements.front();
  EXPECT_TRUE(sweep.ops[0].data.complement);  // r ~a
  EXPECT_TRUE(sweep.ops[1].data.complement);  // w ~a^D1
  const MarchElement& closing = r.atmarch.elements.back();
  ASSERT_EQ(closing.ops.size(), 2u);  // r ~a, w a
  EXPECT_TRUE(closing.ops[0].is_read());
  EXPECT_TRUE(closing.ops[0].data.complement);
  EXPECT_TRUE(closing.ops[1].is_write());
  EXPECT_FALSE(closing.ops[1].data.complement);
}

TEST(TwmTa, AtmarchElementCountScalesWithLog2B) {
  for (unsigned w : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const MarchTest a = atmarch(w, false);
    EXPECT_EQ(a.elements.size(), log2_exact(w) + 1) << "width " << w;
    EXPECT_EQ(a.op_count(), 5 * log2_exact(w) + 1) << "width " << w;
  }
  EXPECT_EQ(atmarch(8, true).op_count(), 5u * 3u + 2u);  // restoring close
}

TEST(TwmTa, TwmarchIsWellFormedTransparentTest) {
  for (const auto& name : march_names()) {
    const TwmResult r = twm_transform(march_by_name(name), 16);
    EXPECT_TRUE(r.twmarch.is_transparent()) << name;
    EXPECT_TRUE(r.twmarch.every_element_begins_with_read()) << name;
    EXPECT_EQ(r.prediction.write_count(), 0u) << name;
    EXPECT_EQ(r.prediction.read_count(), r.twmarch.read_count()) << name;
  }
}

// --- transparency + no-false-alarm sweep --------------------------------

struct TwmCase {
  std::string march;
  unsigned width;
  std::uint64_t seed;
};

class TwmProperty : public ::testing::TestWithParam<TwmCase> {};

TEST_P(TwmProperty, TransparentAndFalseAlarmFree) {
  const auto& pc = GetParam();
  Rng rng(pc.seed);
  Memory mem(10, pc.width);
  mem.fill_random(rng);
  const auto snapshot = mem.snapshot();

  const TwmResult r = twm_transform(march_by_name(pc.march), pc.width);
  MarchRunner runner(mem);
  const auto out = runner.run_transparent_session(r.twmarch, r.prediction, pc.width);

  EXPECT_FALSE(out.detected_exact);
  EXPECT_FALSE(out.detected_misr);
  EXPECT_TRUE(mem.equals(snapshot)) << "content not restored";
}

std::vector<TwmCase> twm_cases() {
  std::vector<TwmCase> cases;
  std::uint64_t seed = 7;
  for (const auto& info : march_catalog())
    for (unsigned w : {2u, 4u, 8u, 16u, 32u, 64u, 128u})
      cases.push_back({info.name, w, seed++});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(CatalogByWidth, TwmProperty, ::testing::ValuesIn(twm_cases()),
                         [](const ::testing::TestParamInfo<TwmCase>& info) {
                           std::string n =
                               info.param.march + "_w" + std::to_string(info.param.width);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

// The TWMarch content trajectory never depends on what the initial content
// is: two memories with different contents end up back at their own
// contents with the same signature *difference* structure (both zero).
TEST(TwmTa, TransparencyHoldsForAdversarialContents) {
  const TwmResult r = twm_transform(march_by_name("March C-"), 8);
  for (const std::string pat : {"00000000", "11111111", "01010101", "00110011"}) {
    Memory mem(6, 8);
    mem.fill(BitVec::from_string(pat));
    const auto snapshot = mem.snapshot();
    MarchRunner runner(mem);
    const auto out = runner.run_transparent_session(r.twmarch, r.prediction, 8);
    EXPECT_FALSE(out.detected_exact) << pat;
    EXPECT_TRUE(mem.equals(snapshot)) << pat;
  }
}

}  // namespace
}  // namespace twm
