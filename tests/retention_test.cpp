// Tests for data-retention faults, march Del (pause) elements, and
// March G — the retention-capable march — through the whole pipeline:
// simulator semantics, parser/printer, transforms, engine, datapath, and
// coverage.
#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/fault_list.h"
#include "bist/datapath.h"
#include "bist/engine.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "march/parser.h"
#include "march/word_expand.h"
#include "march/printer.h"
#include "util/rng.h"

namespace twm {
namespace {

BitVec bv(const std::string& s) { return BitVec::from_string(s); }

// --- simulator semantics -------------------------------------------------

TEST(Retention, CellDecaysAfterHoldTime) {
  Memory m(1, 4);
  m.inject(Fault::ret({0, 1}, false, 2));
  m.write(0, bv("1111"));
  m.elapse(1);
  EXPECT_EQ(m.read(0).to_string(), "1111");  // still within hold time
  m.elapse(1);
  EXPECT_EQ(m.read(0).to_string(), "1101");  // bit 1 leaked to 0
}

TEST(Retention, WriteRefreshesTheCell) {
  Memory m(1, 4);
  m.inject(Fault::ret({0, 0}, false, 2));
  m.write(0, bv("0001"));
  m.elapse(1);
  m.write(0, bv("0001"));  // refresh resets the retention clock
  m.elapse(1);
  EXPECT_EQ(m.read(0).to_string(), "0001");
  m.elapse(1);
  EXPECT_EQ(m.read(0).to_string(), "0000");
}

TEST(Retention, DecayToOne) {
  Memory m(1, 2);
  m.inject(Fault::ret({0, 0}, true, 1));
  m.write(0, bv("00"));
  m.elapse(1);
  EXPECT_EQ(m.read(0).to_string(), "01");
}

TEST(Retention, HealthyMemoryIgnoresElapse) {
  Memory m(2, 4);
  m.write(0, bv("1010"));
  m.elapse(100);
  EXPECT_EQ(m.read(0).to_string(), "1010");
}

TEST(Retention, DescribeString) {
  EXPECT_EQ(Fault::ret({2, 3}, true, 5).describe(), "RET(1,5u) @w2.b3");
}

// --- parser / printer ------------------------------------------------------

TEST(Retention, ParserAcceptsDelElements) {
  const MarchTest g = parse_march("{ any(w0); del any(r0,w1); del any(r1) }");
  EXPECT_FALSE(g.elements[0].pause_before);
  EXPECT_TRUE(g.elements[1].pause_before);
  EXPECT_TRUE(g.elements[2].pause_before);
  EXPECT_NE(to_string(g).find("del any(r(0),w(1))"), std::string::npos);
}

TEST(Retention, MarchGInCatalog) {
  const auto& info = march_info("March G");
  EXPECT_EQ(info.ops, 23u);
  EXPECT_EQ(info.reads, 10u);
  const MarchTest g = march_by_name("March G");
  EXPECT_TRUE(g.elements[5].pause_before);
  EXPECT_TRUE(g.elements[6].pause_before);
}

// --- transforms keep the pauses -------------------------------------------

TEST(Retention, TwmTransformPreservesPauses) {
  const TwmResult r = twm_transform(march_by_name("March G"), 8);
  std::size_t pauses = 0;
  for (const auto& e : r.twmarch.elements) pauses += e.pause_before;
  EXPECT_EQ(pauses, 2u);
  // The prediction pass must age retention cells identically.
  pauses = 0;
  for (const auto& e : r.prediction.elements) pauses += e.pause_before;
  EXPECT_EQ(pauses, 2u);
}

// --- detection ----------------------------------------------------------

TEST(Retention, MarchGDetectsRetentionNontransparently) {
  Memory mem(4, 4);
  mem.inject(Fault::ret({2, 1}, true, 1));
  MarchRunner runner(mem);
  const auto res = runner.run_direct(solid_march(march_by_name("March G")));
  EXPECT_TRUE(res.mismatch);
}

TEST(Retention, MarchCMinusCannotSeeRetention) {
  Memory mem(4, 4);
  mem.inject(Fault::ret({2, 1}, true, 1));
  MarchRunner runner(mem);
  EXPECT_FALSE(runner.run_direct(solid_march(march_by_name("March C-"))).mismatch);
}

TEST(Retention, TransparentMarchGDetects) {
  const TwmResult r = twm_transform(march_by_name("March G"), 8);
  Rng rng(3);
  Memory mem(6, 8);
  mem.fill_random(rng);
  mem.inject(Fault::ret({4, 5}, !mem.peek(4).get(5), 1));
  MarchRunner runner(mem);
  const auto out = runner.run_transparent_session(r.twmarch, r.prediction, 8);
  EXPECT_TRUE(out.detected_exact);
  EXPECT_TRUE(out.detected_misr);
}

TEST(Retention, TransparentMarchGIsStillTransparent) {
  const TwmResult r = twm_transform(march_by_name("March G"), 8);
  Rng rng(4);
  Memory mem(6, 8);
  mem.fill_random(rng);
  const auto snapshot = mem.snapshot();
  MarchRunner runner(mem);
  const auto out = runner.run_transparent_session(r.twmarch, r.prediction, 8);
  EXPECT_FALSE(out.detected_exact);
  EXPECT_TRUE(mem.equals(snapshot));
}

TEST(Retention, DatapathHandlesPauses) {
  const TwmResult r = twm_transform(march_by_name("March G"), 8);
  const BistProgram prog = compile_program(r.twmarch, 8);
  Rng rng(5);
  Memory mem(6, 8);
  mem.fill_random(rng);
  mem.inject(Fault::ret({1, 0}, !mem.peek(1).get(0), 1));
  BistDatapath dp(mem, prog);
  EXPECT_TRUE(dp.run_session());
}

TEST(Retention, CoverageCampaignMarchGvsMarchCMinus) {
  CoverageEvaluator eval(4, 4);
  const auto faults = all_rets(4, 4, 1);
  const auto g = eval.evaluate(SchemeKind::ProposedExact, march_by_name("March G"), faults,
                               {1, 2});
  const auto c = eval.evaluate(SchemeKind::ProposedExact, march_by_name("March C-"), faults,
                               {1, 2});
  EXPECT_EQ(g.detected_all, g.total);
  EXPECT_EQ(c.detected_any, 0u);
}

// Retention faults whose hold time exceeds the march's total pause budget
// escape — the classic argument for sizing Del.
TEST(Retention, LongHoldTimeEscapes) {
  Memory mem(4, 4);
  mem.inject(Fault::ret({0, 0}, true, 3));  // March G pauses only twice
  MarchRunner runner(mem);
  EXPECT_FALSE(runner.run_direct(solid_march(march_by_name("March G"))).mismatch);
}

}  // namespace
}  // namespace twm
