// Backend equivalence for the coverage evaluator: the bit-parallel packed
// backend must reproduce the scalar per-fault verdict vector exactly — for
// every scheme, at every compiled SIMD lane-block width the CPU supports,
// under zero and random contents, single- and multi-threaded.  This is
// what keeps the batched fast path differentially checkable.
#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/fault_list.h"
#include "core/simd.h"
#include "march/library.h"
#include "memsim/memory.h"

namespace twm {
namespace {

constexpr std::size_t kWords = 4;
constexpr unsigned kWidth = 4;

// kAllSchemes comes from core/scheme_session.h: the sweep covers all eight
// Sec. 5 schemes.

// The compiled widths this CPU can execute (always includes 64).
std::vector<simd::Request> supported_widths() {
  std::vector<simd::Request> widths{simd::Request::W64};
  if (simd::supported(simd::Width::W256)) widths.push_back(simd::Request::W256);
  if (simd::supported(simd::Width::W512)) widths.push_back(simd::Request::W512);
  return widths;
}

std::vector<Fault> every_fault() {
  std::vector<Fault> faults;
  for (auto& f : all_safs(kWords, kWidth)) faults.push_back(f);
  for (auto& f : all_tfs(kWords, kWidth)) faults.push_back(f);
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin})
    for (auto& f : all_cfs(kWords, kWidth, cls, CfScope::Both)) faults.push_back(f);
  for (auto& f : all_rets(kWords, kWidth, 1)) faults.push_back(f);
  for (auto& f : all_afs(kWords)) faults.push_back(f);
  return faults;
}

class CoverageBackendFixture : public ::testing::Test {
 protected:
  CoverageEvaluator eval{kWords, kWidth};
  MarchTest march = march_by_name("March C-");
  std::vector<Fault> faults = every_fault();
};

// The headline contract: verdict-for-verdict equality between backends for
// all eight schemes, at every supported lane-block width.  The fault list
// spans every Fault kind (including decoder faults) and more than one
// 63-fault batch, so partial batches are exercised too.
TEST_F(CoverageBackendFixture, PerFaultVerdictsMatchScalarForEverySchemeAtEveryWidth) {
  ASSERT_GT(faults.size(), 63u) << "fault list must span multiple packed batches";
  const std::vector<std::uint64_t> seeds{0, 7};
  for (SchemeKind k : kAllSchemes) {
    const auto scalar = eval.per_fault(k, march, faults, seeds);
    for (simd::Request w : supported_widths()) {
      const auto packed =
          eval.per_fault(k, march, faults, seeds, {CoverageBackend::Packed, 1, w});
      EXPECT_EQ(scalar, packed) << to_string(k) << " at --simd " << simd::to_string(w);
    }
  }
}

// A fault list smaller than one batch at every width: lane 0 must stay
// golden and no phantom universes may be reported (the partial-batch
// used_mask contract at K > 1).
TEST_F(CoverageBackendFixture, PartialBatchSmallerThanOneUnitMatchesScalar) {
  const std::vector<Fault> few{faults[0], faults[40], faults[100]};
  const std::vector<std::uint64_t> seeds{0, 3};
  const auto scalar = eval.per_fault(SchemeKind::ProposedExact, march, few, seeds);
  ASSERT_EQ(scalar.size(), few.size());
  for (simd::Request w : supported_widths()) {
    const auto packed =
        eval.per_fault(SchemeKind::ProposedExact, march, few, seeds, {CoverageBackend::Packed, 1, w});
    EXPECT_EQ(scalar, packed) << "--simd " << simd::to_string(w);
    const auto counts =
        eval.evaluate(SchemeKind::ProposedExact, march, few, seeds, {CoverageBackend::Packed, 1, w});
    EXPECT_EQ(counts.total, few.size()) << "--simd " << simd::to_string(w);
    EXPECT_LE(counts.detected_any, few.size()) << "phantom universes at --simd "
                                               << simd::to_string(w);
  }
}

// Decoder faults (AFna/AFaw) flow through the batched port distortion; the
// differential covers both nontransparent and transparent schemes at every
// width.
TEST_F(CoverageBackendFixture, DecoderFaultsAgreeAtEveryWidth) {
  const auto afs = all_afs(kWords);
  const std::vector<std::uint64_t> seeds{0, 5};
  for (SchemeKind k : {SchemeKind::NontransparentReference, SchemeKind::WordOrientedMarch,
                       SchemeKind::ProposedExact, SchemeKind::ProposedMisr,
                       SchemeKind::TomtModel}) {
    const auto scalar = eval.per_fault(k, march, afs, seeds);
    for (simd::Request w : supported_widths()) {
      const auto packed = eval.per_fault(k, march, afs, seeds, {CoverageBackend::Packed, 2, w});
      EXPECT_EQ(scalar, packed) << to_string(k) << " at --simd " << simd::to_string(w);
    }
  }
}

TEST_F(CoverageBackendFixture, EvaluateCountsMatchScalarForEveryScheme) {
  const std::vector<std::uint64_t> seeds{0, 3, 9};
  for (SchemeKind k : kAllSchemes) {
    const auto scalar = eval.evaluate(k, march, faults, seeds);
    const auto packed = eval.evaluate(k, march, faults, seeds, {CoverageBackend::Packed, 1});
    EXPECT_EQ(scalar.total, packed.total) << to_string(k);
    EXPECT_EQ(scalar.detected_all, packed.detected_all) << to_string(k);
    EXPECT_EQ(scalar.detected_any, packed.detected_any) << to_string(k);
  }
}

// Thread count must never change results (batches are independent).
TEST_F(CoverageBackendFixture, ThreadCountDoesNotChangeVerdicts) {
  const std::vector<std::uint64_t> seeds{0, 5};
  for (unsigned threads : {2u, 4u}) {
    const auto one =
        eval.per_fault(SchemeKind::ProposedExact, march, faults, seeds,
                       {CoverageBackend::Packed, 1});
    const auto many =
        eval.per_fault(SchemeKind::ProposedExact, march, faults, seeds,
                       {CoverageBackend::Packed, threads});
    EXPECT_EQ(one, many) << threads << " threads";
  }
  // The scalar backend shards across threads too.
  const auto scalar1 = eval.per_fault(SchemeKind::TomtModel, march, faults, {0},
                                      {CoverageBackend::Scalar, 1});
  const auto scalar4 = eval.per_fault(SchemeKind::TomtModel, march, faults, {0},
                                      {CoverageBackend::Scalar, 4});
  EXPECT_EQ(scalar1, scalar4);
}

// A different march exercises different transforms through the same packed
// plan machinery.
TEST_F(CoverageBackendFixture, BackendsAgreeOnMarchU) {
  const MarchTest u = march_by_name("March U");
  const std::vector<std::uint64_t> seeds{0, 2};
  for (SchemeKind k : {SchemeKind::NontransparentReference, SchemeKind::ProposedExact,
                       SchemeKind::ProposedMisr, SchemeKind::Scheme1Exact}) {
    const auto scalar = eval.per_fault(k, u, faults, seeds);
    const auto packed = eval.per_fault(k, u, faults, seeds, {CoverageBackend::Packed, 2});
    EXPECT_EQ(scalar, packed) << to_string(k);
  }
}

// Data-retention faults need march "Del" pauses to activate; March G has
// them.  The packed RET aging path must agree with the scalar one at every
// lane-block width.
TEST_F(CoverageBackendFixture, RetentionFaultsAgreeUnderMarchGAtEveryWidth) {
  const MarchTest g = march_by_name("March G");
  const auto rets = all_rets(kWords, kWidth, 1);
  const std::vector<std::uint64_t> seeds{0, 4};
  for (SchemeKind k : {SchemeKind::NontransparentReference, SchemeKind::ProposedExact}) {
    const auto scalar = eval.per_fault(k, g, rets, seeds);
    for (simd::Request w : supported_widths()) {
      const auto packed = eval.per_fault(k, g, rets, seeds, {CoverageBackend::Packed, 1, w});
      EXPECT_EQ(scalar, packed) << to_string(k) << " at --simd " << simd::to_string(w);
    }
  }
}

// A forced width the CPU cannot execute must error cleanly out of the
// campaign layer (std::runtime_error from simd::resolve), never SIGILL.
TEST_F(CoverageBackendFixture, ForcedUnsupportedWidthThrows) {
  for (simd::Width w : simd::kAllWidths) {
    if (simd::supported(w)) continue;
    const simd::Request req = w == simd::Width::W256 ? simd::Request::W256 : simd::Request::W512;
    EXPECT_THROW(eval.per_fault(SchemeKind::ProposedExact, march, faults, {0},
                                {CoverageBackend::Packed, 1, req}),
                 std::runtime_error)
        << simd::to_string(w);
  }
  // Auto must always resolve (graceful downgrade), whatever the host is.
  EXPECT_NO_THROW(eval.per_fault(SchemeKind::ProposedExact, march, {faults[0]}, {0},
                                 {CoverageBackend::Packed, 1, simd::Request::Auto}));
}

// A fault "rests visible" when merely injecting it distorts the stored
// contents; the coverage-equality theorem speaks about the other
// (activated) faults — see coverage_test.cpp.  Re-proved here through the
// packed backend: the seed-0 zero-contents theorem check.
TEST_F(CoverageBackendFixture, TheoremPerFaultEqualityAtZeroContentViaPackedBackend) {
  auto rests_visible = [](const Fault& f) {
    Memory m(kWords, kWidth);
    m.inject(f);
    for (std::size_t a = 0; a < kWords; ++a)
      if (!m.peek(a).all_zero()) return true;
    return false;
  };

  const CoverageOptions packed{CoverageBackend::Packed, 2};
  const std::vector<std::uint64_t> zero_seed{0};
  const auto ref =
      eval.per_fault(SchemeKind::NontransparentReference, march, faults, zero_seed, packed);
  const auto prop = eval.per_fault(SchemeKind::ProposedExact, march, faults, zero_seed, packed);
  ASSERT_EQ(ref.size(), prop.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (faults[i].cls == FaultClass::RET) continue;  // March C- has no Del
    if (rests_visible(faults[i]))
      EXPECT_TRUE(ref[i]) << faults[i].describe();
    else
      EXPECT_EQ(ref[i], prop[i]) << faults[i].describe();
  }
}

TEST_F(CoverageBackendFixture, PackedRejectsEmptySeeds) {
  EXPECT_THROW(
      eval.evaluate(SchemeKind::ProposedExact, march, faults, {}, {CoverageBackend::Packed, 2}),
      std::invalid_argument);
}

TEST_F(CoverageBackendFixture, BackendNamesRoundTrip) {
  EXPECT_EQ(to_string(CoverageBackend::Scalar), "scalar");
  EXPECT_EQ(to_string(CoverageBackend::Packed), "packed");
}

}  // namespace
}  // namespace twm
