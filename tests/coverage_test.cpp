// Empirical reproduction of the Sec. 5 fault-coverage analysis.
//
// The strongest checkable form of the paper's theorem: with all-zero
// contents (seed 0) the transparent TWMarch session issues exactly the port
// traffic of the nontransparent SMarch+AMarch reference, so per-fault
// verdicts must agree bit-for-bit.  On top of that we check the absolute
// coverage levels per fault class and the ablation that motivates ATMarch.
#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/fault_list.h"
#include "march/library.h"
#include "memsim/memory.h"

namespace twm {
namespace {

constexpr std::size_t kWords = 4;
constexpr unsigned kWidth = 4;

class CoverageFixture : public ::testing::Test {
 protected:
  CoverageEvaluator eval{kWords, kWidth};
  MarchTest march = march_by_name("March C-");
  std::vector<std::uint64_t> zero_seed{0};
  std::vector<std::uint64_t> random_seeds{1, 2, 3};
};

TEST_F(CoverageFixture, SafFullCoverageEverywhere) {
  const auto faults = all_safs(kWords, kWidth);
  for (SchemeKind k :
       {SchemeKind::NontransparentReference, SchemeKind::WordOrientedMarch,
        SchemeKind::ProposedExact, SchemeKind::ProposedMisr, SchemeKind::Scheme1Exact,
        SchemeKind::TomtModel}) {
    const auto out = eval.evaluate(k, march, faults, random_seeds);
    EXPECT_EQ(out.detected_all, out.total) << to_string(k);
  }
}

TEST_F(CoverageFixture, TfFullCoverageEverywhere) {
  const auto faults = all_tfs(kWords, kWidth);
  for (SchemeKind k :
       {SchemeKind::NontransparentReference, SchemeKind::WordOrientedMarch,
        SchemeKind::ProposedExact, SchemeKind::ProposedMisr, SchemeKind::Scheme1Exact,
        SchemeKind::TomtModel}) {
    const auto out = eval.evaluate(k, march, faults, random_seeds);
    EXPECT_EQ(out.detected_all, out.total) << to_string(k);
  }
}

TEST_F(CoverageFixture, InterWordCfsFullCoverageForProposed) {
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin}) {
    const auto faults = all_cfs(kWords, kWidth, cls, CfScope::InterWord);
    const auto ref =
        eval.evaluate(SchemeKind::NontransparentReference, march, faults, random_seeds);
    const auto prop = eval.evaluate(SchemeKind::ProposedExact, march, faults, random_seeds);
    EXPECT_EQ(ref.detected_all, ref.total) << to_string(cls);
    EXPECT_EQ(prop.detected_all, prop.total) << to_string(cls);
  }
}

TEST_F(CoverageFixture, IntraWordCfinFullCoverage) {
  const auto faults = all_cfs(kWords, kWidth, FaultClass::CFin, CfScope::IntraWord);
  const auto ref = eval.evaluate(SchemeKind::NontransparentReference, march, faults, random_seeds);
  const auto prop = eval.evaluate(SchemeKind::ProposedExact, march, faults, random_seeds);
  EXPECT_EQ(ref.detected_all, ref.total);
  EXPECT_EQ(prop.detected_all, prop.total);
}

// A fault "rests visible" when merely injecting it distorts the stored
// contents (e.g. CFst<0;1> with the aggressor resting in state 0).  A
// nontransparent march sees such distortion against its golden data; a
// transparent test by construction treats whatever it first reads as the
// reference, so the distortion is invisible unless the test *activates*
// the fault.  The paper's equality theorem is about activated faults.
bool rests_visible(const Fault& f, std::size_t words, unsigned width) {
  Memory m(words, width);
  m.inject(f);
  for (std::size_t a = 0; a < words; ++a)
    if (!m.peek(a).all_zero()) return true;
  return false;
}

// The theorem itself: per-fault verdict equality between TWMarch and the
// SMarch+AMarch reference on the reference's own content, for every fault
// that does not pre-distort the resting contents.
TEST_F(CoverageFixture, TheoremPerFaultEqualityAtZeroContent) {
  std::vector<Fault> faults;
  for (auto& f : all_safs(kWords, kWidth)) faults.push_back(f);
  for (auto& f : all_tfs(kWords, kWidth)) faults.push_back(f);
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid, FaultClass::CFin})
    for (auto& f : all_cfs(kWords, kWidth, cls, CfScope::Both)) faults.push_back(f);

  const auto ref =
      eval.per_fault(SchemeKind::NontransparentReference, march, faults, zero_seed);
  const auto prop = eval.per_fault(SchemeKind::ProposedExact, march, faults, zero_seed);
  ASSERT_EQ(ref.size(), prop.size());

  std::size_t activated = 0, resting = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (rests_visible(faults[i], kWords, kWidth)) {
      ++resting;
      // Golden-data comparison must catch a resting distortion outright.
      EXPECT_TRUE(ref[i]) << faults[i].describe();
    } else {
      ++activated;
      EXPECT_EQ(ref[i], prop[i]) << faults[i].describe();
    }
  }
  EXPECT_GT(activated, 0u);
  EXPECT_GT(resting, 0u);  // the nuance is actually exercised
}

TEST_F(CoverageFixture, TheoremHoldsForMarchUToo) {
  const MarchTest u = march_by_name("March U");
  std::vector<Fault> faults = all_cfs(kWords, kWidth, FaultClass::CFid, CfScope::Both);
  const auto ref = eval.per_fault(SchemeKind::NontransparentReference, u, faults, zero_seed);
  const auto prop = eval.per_fault(SchemeKind::ProposedExact, u, faults, zero_seed);
  EXPECT_EQ(ref, prop);
}

// Ablation (Fig. 1(b) motivation): without ATMarch the intra-word CF
// coverage collapses; ATMarch restores it to the reference level.
TEST_F(CoverageFixture, AtmarchAblation) {
  for (FaultClass cls : {FaultClass::CFst, FaultClass::CFid}) {
    const auto faults = all_cfs(kWords, kWidth, cls, CfScope::IntraWord);
    const auto solo = eval.evaluate(SchemeKind::TsmarchOnly, march, faults, zero_seed);
    const auto full = eval.evaluate(SchemeKind::ProposedExact, march, faults, zero_seed);
    EXPECT_LT(solo.detected_all, full.detected_all) << to_string(cls);
  }
}

// The MISR checker matches exact stream comparison on this campaign (no
// aliasing event at these sizes; signatures are 4 bits wide only in the
// word MISR sense — the evaluator uses width-of-word MISRs).
TEST_F(CoverageFixture, MisrMatchesExactOnSafTf) {
  std::vector<Fault> faults = all_safs(kWords, kWidth);
  for (auto& f : all_tfs(kWords, kWidth)) faults.push_back(f);
  const auto exact = eval.per_fault(SchemeKind::ProposedExact, march, faults, random_seeds);
  const auto misr = eval.per_fault(SchemeKind::ProposedMisr, march, faults, random_seeds);
  EXPECT_EQ(exact, misr);
}

// Detection of every fault class must not depend on which content the
// memory happens to hold, for the classes the analysis shows are
// content-independent (SAF, TF, CFin, inter-word CFs).
TEST_F(CoverageFixture, ContentIndependenceWhereClaimed) {
  std::vector<Fault> faults = all_safs(kWords, kWidth);
  for (auto& f : all_tfs(kWords, kWidth)) faults.push_back(f);
  for (auto& f : all_cfs(kWords, kWidth, FaultClass::CFin, CfScope::Both)) faults.push_back(f);
  const auto out = eval.evaluate(SchemeKind::ProposedExact, march, faults,
                                 {0, 11, 22, 33, 44});
  EXPECT_EQ(out.detected_all, out.detected_any);
  EXPECT_EQ(out.detected_all, out.total);
}

// The full word-oriented march (log2(B)+1 backgrounds, each inverted) is
// strictly stronger on intra-word CFst than the cheaper SMarch+AMarch
// reference — a nuance the paper's complexity win trades away.
TEST_F(CoverageFixture, WordOrientedMarchStrongestOnIntraCfst) {
  const auto faults = all_cfs(kWords, kWidth, FaultClass::CFst, CfScope::IntraWord);
  const auto wo = eval.evaluate(SchemeKind::WordOrientedMarch, march, faults, zero_seed);
  const auto ref = eval.evaluate(SchemeKind::NontransparentReference, march, faults, zero_seed);
  EXPECT_EQ(wo.detected_all, wo.total);
  EXPECT_GE(wo.detected_all, ref.detected_all);
}

TEST_F(CoverageFixture, EvaluatorRejectsEmptySeeds) {
  EXPECT_THROW(eval.evaluate(SchemeKind::ProposedExact, march, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace twm
