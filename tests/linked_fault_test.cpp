// Linked coupling faults: two CFs sharing a victim can mask each other's
// effect between activation and observation.  Simple marches (March C-)
// certify only *unlinked* faults; March SS / March LA were designed for
// linked ones.  The simulator's multi-fault injection makes the
// distinction observable, and the transparent transform must preserve it.
#include <gtest/gtest.h>

#include "bist/engine.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "march/word_expand.h"
#include "memsim/memory.h"
#include "util/rng.h"

namespace twm {
namespace {

// Runs the nontransparent word-oriented (bit-level, width 1) march against
// a memory with the two given faults injected.
bool detects_direct(const std::string& march, const std::vector<Fault>& faults,
                    std::size_t words) {
  Memory mem(words, 1);
  for (const auto& f : faults) mem.inject(f);
  MarchRunner runner(mem);
  return runner.run_direct(solid_march(march_by_name(march))).mismatch;
}

bool detects_transparent(const std::string& march, const std::vector<Fault>& faults,
                         std::size_t words, std::uint64_t seed) {
  Memory mem(words, 1);
  if (seed != 0) {
    Rng rng(seed);
    mem.fill_random(rng);
  }
  for (const auto& f : faults) mem.inject(f);
  const TwmResult r = twm_transform(march_by_name(march), 1);
  MarchRunner runner(mem);
  return runner.run_transparent_session(r.twmarch, r.prediction, 16).detected_exact;
}

// All ordered linked pairs: two CFids with distinct aggressors and a shared
// victim, opposite forced values (the masking configuration).
std::vector<std::vector<Fault>> linked_cfid_pairs(std::size_t words) {
  std::vector<std::vector<Fault>> pairs;
  for (std::size_t v = 0; v < words; ++v)
    for (std::size_t a1 = 0; a1 < words; ++a1)
      for (std::size_t a2 = 0; a2 < words; ++a2) {
        if (a1 == v || a2 == v || a1 == a2) continue;
        for (Transition t1 : {Transition::Up, Transition::Down})
          for (Transition t2 : {Transition::Up, Transition::Down})
            for (bool val : {false, true})
              pairs.push_back({Fault::cfid({a1, 0}, t1, {v, 0}, val),
                               Fault::cfid({a2, 0}, t2, {v, 0}, !val)});
      }
  return pairs;
}

TEST(LinkedFaults, SimulatorSupportsMaskingPairs) {
  // A->V forces 1, B->V forces 0; both triggered by the same up-transition
  // sweep: whichever aggressor is written later wins.
  Memory mem(3, 1);
  mem.inject(Fault::cfid({0, 0}, Transition::Up, {1, 0}, true));
  mem.inject(Fault::cfid({2, 0}, Transition::Up, {1, 0}, false));
  mem.write(0, BitVec::zeros(1));
  mem.write(1, BitVec::zeros(1));
  mem.write(2, BitVec::zeros(1));
  mem.write(0, BitVec::ones(1));  // forces V to 1
  EXPECT_TRUE(mem.peek(1).get(0));
  mem.write(2, BitVec::ones(1));  // second fault masks: V back to 0
  EXPECT_FALSE(mem.peek(1).get(0));
}

// Empirical finding (documented in EXPERIMENTS.md): on the opposite-value
// shared-victim CFid family, March C- and March SS miss the mutually
// masking configurations (160/192 at 4 cells) while March LA — designed
// for linked faults — detects every pair.  Its double-write elements
// (w1,w0,w1) re-trigger each aggressor an odd number of times between
// victim observations, so the cancellation cannot survive.
TEST(LinkedFaults, MarchLaBeatsCMinusAndSsOnLinkedPairs) {
  const std::size_t words = 4;
  const auto pairs = linked_cfid_pairs(words);
  std::size_t cminus = 0, ss = 0, la = 0, masked_for_both = 0;
  for (const auto& pair : pairs) {
    const bool c = detects_direct("March C-", pair, words);
    const bool s = detects_direct("March SS", pair, words);
    const bool l = detects_direct("March LA", pair, words);
    cminus += c;
    ss += s;
    la += l;
    if (!c && !s) {
      ++masked_for_both;
      EXPECT_TRUE(l) << "LA must catch " << pair[0].describe() << " + " << pair[1].describe();
    }
    // The longer marches never do worse than March C- on these pairs.
    EXPECT_TRUE(s || !c) << pair[0].describe() << " + " << pair[1].describe();
    EXPECT_TRUE(l || !c) << pair[0].describe() << " + " << pair[1].describe();
  }
  EXPECT_EQ(ss, cminus);  // SS targets simple-fault completeness, not linkage
  EXPECT_EQ(la, pairs.size());
  EXPECT_GT(masked_for_both, 0u) << "mutual masking must be observable";
}

TEST(LinkedFaults, TransparentCountsMatchDirectCounts) {
  const std::size_t words = 4;
  const auto pairs = linked_cfid_pairs(words);
  std::size_t direct_total = 0, transparent_total = 0;
  for (const auto& pair : pairs) {
    direct_total += detects_direct("March C-", pair, words);
    transparent_total += detects_transparent("March C-", pair, words, 0);
  }
  EXPECT_EQ(direct_total, transparent_total);
  EXPECT_LT(direct_total, pairs.size());  // the masked escapes are real
}

// At the reference content, the transparent verdict equals the
// nontransparent one pair-for-pair (the Sec. 5 equality extends to
// multi-fault configurations that do not distort the resting contents —
// CFid pairs never do).
TEST(LinkedFaults, TheoremExtendsToLinkedPairs) {
  const std::size_t words = 3;
  for (const auto& march : {"March C-", "March SS"}) {
    for (const auto& pair : linked_cfid_pairs(words)) {
      const bool direct = detects_direct(march, pair, words);
      const bool transparent = detects_transparent(march, pair, words, 0);
      EXPECT_EQ(direct, transparent)
          << march << ": " << pair[0].describe() << " + " << pair[1].describe();
    }
  }
}

}  // namespace
}  // namespace twm
