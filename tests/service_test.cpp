// End-to-end tests of the campaign daemon (src/service): a real
// ServiceServer on an ephemeral loopback port, real LineClient sockets.
// Covers the protocol contract (ping/stats/shutdown, frame errors close,
// spec errors don't), the content-addressed result cache (resubmit replays
// byte-identically and re-simulates nothing; a delta spec simulates only
// its new cells; disk entries survive a daemon restart), hostile input
// (malformed frames, nesting bombs, oversized lines), concurrent clients,
// and cooperative cancel on client disconnect.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/json.h"
#include "api/spec.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"

namespace twm::service {
namespace {

api::CampaignSpec small_spec() {
  api::CampaignSpec s;
  s.name = "service-test";
  s.words = 8;
  s.width = 4;
  s.march = "March C-";
  s.schemes = {SchemeKind::ProposedExact};
  s.classes = {{api::ClassKind::Saf, CfScope::Both}, {api::ClassKind::Tf, CfScope::Both}};
  s.seeds = {0, 1};
  s.threads = 2;
  return s;
}

// Big enough that a campaign is still running when the client vanishes
// right after submitting (thousands of units across the coupling classes).
api::CampaignSpec slow_spec() {
  api::CampaignSpec s = small_spec();
  s.name = "service-test-slow";
  s.words = 32;
  s.width = 8;
  s.classes = {{api::ClassKind::CFst, CfScope::Both},
               {api::ClassKind::CFid, CfScope::Both},
               {api::ClassKind::CFin, CfScope::Both}};
  s.seeds = {0, 1, 2, 3};
  s.threads = 1;
  return s;
}

std::string frame_type(const std::string& line) {
  const api::JsonValue doc = api::json_parse(line);
  const api::JsonValue* type = doc.is_object() ? doc.find("type") : nullptr;
  return type && type->is_string() ? type->as_string() : "";
}

std::uint64_t u64_field(const std::string& line, const std::string& key) {
  const api::JsonValue doc = api::json_parse(line);
  const api::JsonValue* v = doc.find(key);
  EXPECT_NE(v, nullptr) << key << " missing in: " << line;
  return v && v->as_u64() ? *v->as_u64() : ~0ull;
}

// One submit exchange: sends the spec, collects the response lines through
// the closing campaign_stats (or error) frame.
struct SubmitResult {
  std::vector<std::string> lines;  // everything received, in order
  std::string last;                // campaign_stats or error frame

  std::vector<std::string> unit_lines() const {
    std::vector<std::string> units;
    for (const std::string& l : lines)
      if (l.find("\"type\":\"unit\"") != std::string::npos) units.push_back(l);
    return units;
  }
};

SubmitResult submit_and_drain(LineClient& client, const api::CampaignSpec& spec) {
  SubmitResult r;
  EXPECT_TRUE(client.send_line(submit_frame(spec)));
  while (true) {
    const auto line = client.recv_line();
    if (!line) break;
    r.lines.push_back(*line);
    const std::string t = frame_type(*line);
    if (t == "campaign_stats" || t == "error") {
      r.last = *line;
      break;
    }
  }
  return r;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("twm_service_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    stop_server();
    std::filesystem::remove_all(dir_);
  }

  std::uint16_t start_server(ServerConfig config = {}) {
    if (config.cache_dir.empty()) config.cache_dir = dir_.string();
    server_ = std::make_unique<ServiceServer>(std::move(config));
    const std::uint16_t port = server_->start();
    serve_thread_ = std::thread([this] { server_->serve_forever(); });
    return port;
  }

  void stop_server() {
    if (server_) server_->stop();
    if (serve_thread_.joinable()) serve_thread_.join();
    server_.reset();
  }

  LineClient connect(std::uint16_t port) {
    LineClient c;
    std::string error;
    EXPECT_TRUE(c.connect("127.0.0.1", port, &error)) << error;
    return c;
  }

  std::filesystem::path dir_;
  std::unique_ptr<ServiceServer> server_;
  std::thread serve_thread_;
};

// ---- protocol basics ----------------------------------------------------

TEST_F(ServiceTest, PingPong) {
  const auto port = start_server();
  LineClient c = connect(port);
  ASSERT_TRUE(c.send_line(ping_frame()));
  const auto line = c.recv_line();
  ASSERT_TRUE(line);
  EXPECT_EQ(frame_type(*line), "pong");
}

TEST_F(ServiceTest, StatsFrameReportsServiceAndCacheCounters) {
  const auto port = start_server();
  LineClient c = connect(port);
  ASSERT_TRUE(c.send_line(stats_frame()));
  const auto line = c.recv_line();
  ASSERT_TRUE(line);
  EXPECT_EQ(frame_type(*line), "stats");
  const api::JsonValue doc = api::json_parse(*line);
  ASSERT_NE(doc.find("cache"), nullptr);
  EXPECT_TRUE(doc.find("cache")->is_object());
  EXPECT_EQ(doc.find("engine")->as_string(), std::string(api::engine_revision()));
}

TEST_F(ServiceTest, ShutdownFrameStopsTheDaemon) {
  const auto port = start_server();
  {
    LineClient c = connect(port);
    ASSERT_TRUE(c.send_line(shutdown_frame()));
    const auto line = c.recv_line();
    ASSERT_TRUE(line);
    EXPECT_EQ(frame_type(*line), "bye");
  }
  if (serve_thread_.joinable()) serve_thread_.join();  // returns on its own
  stop_server();                                       // releases the port
  LineClient again;
  EXPECT_FALSE(again.connect("127.0.0.1", port));
}

// ---- submit + result cache ----------------------------------------------

TEST_F(ServiceTest, SubmitStreamsTheCampaignThenItsCacheStats) {
  const auto port = start_server();
  LineClient c = connect(port);
  const SubmitResult r = submit_and_drain(c, small_spec());

  ASSERT_GE(r.lines.size(), 3u);
  EXPECT_EQ(frame_type(r.lines.front()), "campaign_begin");
  EXPECT_EQ(frame_type(r.lines[r.lines.size() - 2]), "campaign_end");
  EXPECT_EQ(frame_type(r.last), "campaign_stats");
  // 8 words x 4 bits x (2 SAF polarities | 2 TF directions) = 64 per cell.
  EXPECT_EQ(r.unit_lines().size(), 128u);
  // Cold cache: every cell simulated live.
  EXPECT_EQ(u64_field(r.last, "cells"), 2u);
  EXPECT_EQ(u64_field(r.last, "simulated"), 2u);
  EXPECT_EQ(u64_field(r.last, "cached"), 0u);
}

TEST_F(ServiceTest, ResubmitReplaysByteIdenticallyAndSimulatesNothing) {
  const auto port = start_server();
  LineClient c = connect(port);
  const SubmitResult first = submit_and_drain(c, small_spec());
  const SubmitResult second = submit_and_drain(c, small_spec());

  // THE acceptance criterion: the resubmitted campaign re-simulated zero
  // cells — the counter proves it — and the replayed record stream is
  // byte-identical (campaign_end differs only in its wall-time field, so
  // the comparison covers begin + every unit line).
  EXPECT_EQ(u64_field(second.last, "simulated"), 0u);
  EXPECT_EQ(u64_field(second.last, "cached"), 2u);
  EXPECT_EQ(u64_field(second.last, "faults_replayed"), 128u);
  EXPECT_EQ(first.unit_lines(), second.unit_lines());
  EXPECT_EQ(first.lines.front(), second.lines.front());
}

TEST_F(ServiceTest, DeltaSpecSimulatesOnlyTheNewCells) {
  const auto port = start_server();
  LineClient c = connect(port);
  submit_and_drain(c, small_spec());

  api::CampaignSpec delta = small_spec();
  delta.classes.push_back({api::ClassKind::Ret, CfScope::Both});
  const SubmitResult r = submit_and_drain(c, delta);
  EXPECT_EQ(u64_field(r.last, "cells"), 3u);
  EXPECT_EQ(u64_field(r.last, "cached"), 2u);
  EXPECT_EQ(u64_field(r.last, "simulated"), 1u);
}

TEST_F(ServiceTest, CacheIsSharedAcrossExecutionModes) {
  // dense/repack, scalar/packed and every thread count are
  // verdict-identical by construction, so the cell identity excludes the
  // run request and a resubmit under a different mode still replays.
  const auto port = start_server();
  LineClient c = connect(port);
  submit_and_drain(c, small_spec());

  api::CampaignSpec other = small_spec();
  other.backend = CoverageBackend::Scalar;
  other.threads = 1;
  other.schedule = ScheduleMode::Dense;
  other.collapse = false;
  const SubmitResult r = submit_and_drain(c, other);
  EXPECT_EQ(u64_field(r.last, "simulated"), 0u);
  EXPECT_EQ(u64_field(r.last, "cached"), 2u);
}

TEST_F(ServiceTest, DiskEntriesSurviveADaemonRestart) {
  const auto port1 = start_server();
  {
    LineClient c = connect(port1);
    submit_and_drain(c, small_spec());
  }
  stop_server();

  const auto port2 = start_server();  // same cache dir, cold memory tier
  LineClient c = connect(port2);
  const SubmitResult r = submit_and_drain(c, small_spec());
  EXPECT_EQ(u64_field(r.last, "simulated"), 0u);
  EXPECT_EQ(u64_field(r.last, "cached"), 2u);
  EXPECT_GT(server_->cache_counters().disk_hits, 0u);
}

TEST_F(ServiceTest, CorruptDiskEntryDegradesToAMiss) {
  const auto port1 = start_server();
  {
    LineClient c = connect(port1);
    submit_and_drain(c, small_spec());
  }
  stop_server();
  // Truncate every stored cell to garbage.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::FILE* f = std::fopen(entry.path().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"identity\":", f);
    std::fclose(f);
  }

  const auto port2 = start_server();
  LineClient c = connect(port2);
  const SubmitResult r = submit_and_drain(c, small_spec());
  EXPECT_EQ(frame_type(r.last), "campaign_stats");
  EXPECT_EQ(u64_field(r.last, "simulated"), 2u);  // re-simulated, no crash
  EXPECT_EQ(u64_field(r.last, "cached"), 0u);
}

// ---- hostile input -------------------------------------------------------

TEST_F(ServiceTest, MalformedJsonGetsFrameErrorAndTheConnectionClosed) {
  const auto port = start_server();
  LineClient c = connect(port);
  ASSERT_TRUE(c.send_line("this is not json"));
  const auto line = c.recv_line();
  ASSERT_TRUE(line);
  EXPECT_EQ(frame_type(*line), "error");
  EXPECT_NE(line->find("\"scope\":\"frame\""), std::string::npos);
  EXPECT_FALSE(c.recv_line());  // server hung up
}

TEST_F(ServiceTest, NestingBombIsRejectedNotRecursedInto) {
  const auto port = start_server();
  LineClient c = connect(port);
  ASSERT_TRUE(c.send_line(std::string(2000, '[')));
  const auto line = c.recv_line();
  ASSERT_TRUE(line);
  EXPECT_EQ(frame_type(*line), "error");
  EXPECT_NE(line->find("\"scope\":\"frame\""), std::string::npos);
  EXPECT_FALSE(c.recv_line());
}

TEST_F(ServiceTest, OversizedFrameIsRefusedWithoutBufferingIt) {
  const auto port = start_server();
  LineClient c = connect(port);
  std::string huge = "{\"type\":\"ping\",\"pad\":\"";
  huge += std::string(kMaxFrameBytes + 16, 'x');
  huge += "\"}";
  ASSERT_TRUE(c.send_line(huge));
  const auto line = c.recv_line();
  ASSERT_TRUE(line);
  EXPECT_EQ(frame_type(*line), "error");
  EXPECT_FALSE(c.recv_line());
}

TEST_F(ServiceTest, UnknownFrameTypeClosesTheConnection) {
  const auto port = start_server();
  LineClient c = connect(port);
  ASSERT_TRUE(c.send_line("{\"type\":\"exec\"}"));
  const auto line = c.recv_line();
  ASSERT_TRUE(line);
  EXPECT_EQ(frame_type(*line), "error");
  EXPECT_FALSE(c.recv_line());
}

TEST_F(ServiceTest, InvalidSpecKeepsTheConnectionOpenForAResubmit) {
  const auto port = start_server();
  LineClient c = connect(port);

  api::CampaignSpec bad = small_spec();
  bad.words = 0;  // semantically invalid, structurally fine
  ASSERT_TRUE(c.send_line(submit_frame(bad)));
  const auto line = c.recv_line();
  ASSERT_TRUE(line);
  EXPECT_EQ(frame_type(*line), "error");
  EXPECT_NE(line->find("\"scope\":\"spec\""), std::string::npos);
  EXPECT_NE(line->find("memory.words"), std::string::npos);

  // Connection still usable: the corrected spec runs.
  const SubmitResult r = submit_and_drain(c, small_spec());
  EXPECT_EQ(frame_type(r.last), "campaign_stats");
}

TEST_F(ServiceTest, StructurallyBrokenSpecReportsItsPathsAndKeepsTheConnection) {
  const auto port = start_server();
  LineClient c = connect(port);
  ASSERT_TRUE(c.send_line(R"({"type":"submit","spec":{"march":"March C-","schemes":["bogus"]}})"));
  const auto line = c.recv_line();
  ASSERT_TRUE(line);
  EXPECT_EQ(frame_type(*line), "error");
  EXPECT_NE(line->find("\"scope\":\"spec\""), std::string::npos);
  EXPECT_NE(line->find("schemes[0]"), std::string::npos);

  ASSERT_TRUE(c.send_line(ping_frame()));
  const auto pong = c.recv_line();
  ASSERT_TRUE(pong);
  EXPECT_EQ(frame_type(*pong), "pong");
}

// ---- concurrency and cancellation ----------------------------------------

TEST_F(ServiceTest, ConcurrentClientsEachGetTheirOwnCompleteStream) {
  const auto port = start_server();
  std::atomic<int> complete{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      api::CampaignSpec spec = small_spec();
      spec.seeds = {static_cast<std::uint64_t>(100 + i)};  // distinct cells
      LineClient c;
      if (!c.connect("127.0.0.1", port)) return;
      const SubmitResult r = submit_and_drain(c, spec);
      if (frame_type(r.last) == "campaign_stats" && r.unit_lines().size() == 128 &&
          frame_type(r.lines.front()) == "campaign_begin")
        complete.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(complete.load(), 4);
  EXPECT_EQ(server_->counters().campaigns, 4u);
}

TEST_F(ServiceTest, ClientDisconnectCancelsItsCampaign) {
  const auto port = start_server();
  {
    LineClient c = connect(port);
    ASSERT_TRUE(c.send_line(submit_frame(slow_spec())));
    const auto first = c.recv_line();  // campaign is live once begin arrives
    ASSERT_TRUE(first);
    EXPECT_EQ(frame_type(*first), "campaign_begin");
  }  // client vanishes mid-campaign

  // The cancel is cooperative (polled between units) — wait for it.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const ServiceServer::Counters c = server_->counters();
    if (c.campaigns_cancelled + c.campaigns > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const ServiceServer::Counters c = server_->counters();
  EXPECT_EQ(c.campaigns_cancelled, 1u) << "campaign ran to completion instead of cancelling";
  EXPECT_EQ(c.campaigns, 0u);
}

TEST_F(ServiceTest, MaxClientsRefusesTheExcessConnectionWithAnErrorFrame) {
  ServerConfig config;
  config.max_clients = 1;
  const auto port = start_server(std::move(config));

  LineClient first = connect(port);
  ASSERT_TRUE(first.send_line(ping_frame()));
  ASSERT_TRUE(first.recv_line());  // registered with the server

  LineClient second = connect(port);
  const auto line = second.recv_line();
  ASSERT_TRUE(line);
  EXPECT_EQ(frame_type(*line), "error");
  EXPECT_FALSE(second.recv_line());
  EXPECT_EQ(server_->counters().clients_refused, 1u);
}

// ---- protocol unit coverage (no socket) -----------------------------------

TEST(ServiceProtocol, ParseFrameRoundTripsTheBuilders) {
  EXPECT_EQ(parse_frame(ping_frame()).frame->kind, Frame::Kind::Ping);
  EXPECT_EQ(parse_frame(stats_frame()).frame->kind, Frame::Kind::Stats);
  EXPECT_EQ(parse_frame(shutdown_frame()).frame->kind, Frame::Kind::Shutdown);
  const ParsedFrame p = parse_frame(submit_frame(small_spec()));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.frame->kind, Frame::Kind::Submit);
  EXPECT_EQ(p.frame->spec, small_spec());
}

TEST(ServiceProtocol, ParseFrameRejectsWithoutThrowing) {
  EXPECT_FALSE(parse_frame("").ok());
  EXPECT_FALSE(parse_frame("[]").ok());
  EXPECT_FALSE(parse_frame("{\"type\":42}").ok());
  EXPECT_FALSE(parse_frame("{\"type\":\"submit\"}").ok());
  EXPECT_FALSE(parse_frame(std::string(kMaxFrameBytes + 1, ' ')).ok());
  const ParsedFrame deep = parse_frame(std::string(3000, '['));
  EXPECT_FALSE(deep.ok());
  EXPECT_TRUE(deep.spec_errors.empty());  // frame-scope, not spec-scope
}

TEST(ServiceCache, EvictionKeepsTheCacheBoundedAndCountersHonest) {
  ResultCache cache({"", 2});
  const api::CellRecords records{{{0, true, true}}};
  cache.store("k1", "id1", records);
  cache.store("k2", "id2", records);
  cache.store("k3", "id3", records);  // evicts id1
  EXPECT_FALSE(cache.lookup("k1", "id1").has_value());
  EXPECT_TRUE(cache.lookup("k2", "id2").has_value());
  const ResultCache::Counters c = cache.counters();
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.stores, 3u);
}

TEST(ServiceCache, ConcurrentWritersOfTheSameCellLeaveOneValidEntry) {
  // Two clients finishing the same cell race store(): the crash-atomic
  // write path (unique tmp + rename, util/fs.h) must leave exactly one
  // valid file and no torn or abandoned tmp droppings — whichever writer
  // renames last wins, and both wrote identical records anyway.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("twm_cache_race_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  const api::CellRecords records{{{0, true, true}, {1, false, true}}};
  // Identities embed verbatim into the entry JSON — must be valid JSON.
  const std::string identity = R"("race-id")";
  {
    ResultCache cache({dir.string(), 8});
    std::vector<std::thread> writers;
    for (int t = 0; t < 2; ++t)
      writers.emplace_back([&] {
        for (int i = 0; i < 50; ++i) cache.store("race-key", identity, records);
      });
    for (auto& w : writers) w.join();
    EXPECT_EQ(cache.counters().disk_errors, 0u);
  }
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  // A cold cache parses the survivor back intact.
  ResultCache cold({dir.string(), 8});
  const auto loaded = cold.lookup("race-key", identity);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->units, records.units);
  std::filesystem::remove_all(dir);
}

TEST(ServiceCache, LookupVerifiesIdentityNotJustTheKey) {
  ResultCache cache({"", 8});
  cache.store("same-key", "identity-A", {{{0, true, true}}});
  // A colliding key with a different identity must read as a miss.
  EXPECT_FALSE(cache.lookup("same-key", "identity-B").has_value());
  EXPECT_TRUE(cache.lookup("same-key", "identity-A").has_value());
}

}  // namespace
}  // namespace twm::service
