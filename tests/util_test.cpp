// Unit and property tests for the util substrate: BitVec, data backgrounds,
// table formatting, RNG.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/backgrounds.h"
#include "util/bitvec.h"
#include "util/rng.h"
#include "util/table.h"

namespace twm {
namespace {

TEST(BitVec, ConstructionAndFill) {
  BitVec z(8);
  EXPECT_EQ(z.width(), 8u);
  EXPECT_TRUE(z.all_zero());
  EXPECT_FALSE(z.all_one());

  BitVec o = BitVec::ones(8);
  EXPECT_TRUE(o.all_one());
  EXPECT_EQ(o.popcount(), 8u);
}

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.width(), 0u);
}

TEST(BitVec, SetGetFlip) {
  BitVec v(70);  // spans two limbs
  v.set(0, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(69));
  EXPECT_FALSE(v.get(35));
  EXPECT_EQ(v.popcount(), 2u);
  v.flip(69);
  EXPECT_FALSE(v.get(69));
  EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(4);
  EXPECT_THROW(v.get(4), std::out_of_range);
  EXPECT_THROW(v.set(4, true), std::out_of_range);
}

TEST(BitVec, FromStringMsbFirst) {
  BitVec v = BitVec::from_string("1010");
  EXPECT_EQ(v.width(), 4u);
  EXPECT_TRUE(v.get(3));
  EXPECT_FALSE(v.get(2));
  EXPECT_TRUE(v.get(1));
  EXPECT_FALSE(v.get(0));
  EXPECT_EQ(v.to_string(), "1010");
}

TEST(BitVec, FromStringRejectsBadChars) {
  EXPECT_THROW(BitVec::from_string("10x1"), std::invalid_argument);
}

TEST(BitVec, FromUint) {
  BitVec v = BitVec::from_uint(8, 0xA5);
  EXPECT_EQ(v.to_string(), "10100101");
  EXPECT_EQ(v.low64(), 0xA5u);
}

TEST(BitVec, XorAndNot) {
  BitVec a = BitVec::from_string("1100");
  BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "0011");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
}

TEST(BitVec, NotNormalizesTopLimb) {
  // ~ of a 4-bit vector must not set bits above the width.
  BitVec a(4);
  BitVec n = ~a;
  EXPECT_TRUE(n.all_one());
  EXPECT_EQ(n.popcount(), 4u);
}

TEST(BitVec, WidthMismatchThrows) {
  BitVec a(4), b(8);
  EXPECT_THROW(a ^ b, std::invalid_argument);
  EXPECT_THROW(a & b, std::invalid_argument);
}

TEST(BitVec, EqualityAndOrdering) {
  BitVec a = BitVec::from_string("0101");
  BitVec b = BitVec::from_string("0101");
  BitVec c = BitVec::from_string("0110");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(c < a);
}

TEST(BitVec, Parity) {
  EXPECT_FALSE(BitVec::from_string("0000").parity());
  EXPECT_TRUE(BitVec::from_string("0001").parity());
  EXPECT_FALSE(BitVec::from_string("0011").parity());
  EXPECT_TRUE(BitVec::from_string("0111").parity());
}

TEST(BitVec, XorIsInvolution) {
  Rng rng(7);
  for (unsigned w : {1u, 5u, 64u, 65u, 128u}) {
    BitVec a = rng.next_word(w);
    BitVec m = rng.next_word(w);
    EXPECT_EQ((a ^ m) ^ m, a) << "width " << w;
  }
}

TEST(BitVec, HashDiffersForDifferentWords) {
  BitVec a = BitVec::from_string("0101");
  BitVec b = BitVec::from_string("1010");
  EXPECT_NE(a.hash_combine(0), b.hash_combine(0));
}

// --- backgrounds -------------------------------------------------------

TEST(Backgrounds, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
  EXPECT_EQ(log2_exact(32), 5u);
  EXPECT_THROW(log2_exact(3), std::invalid_argument);
}

TEST(Backgrounds, PaperExampleWidth8) {
  // Sec. 4: D1 = 01010101, D2 = 00110011, D3 = 00001111.
  EXPECT_EQ(checkerboard_background(8, 1).to_string(), "01010101");
  EXPECT_EQ(checkerboard_background(8, 2).to_string(), "00110011");
  EXPECT_EQ(checkerboard_background(8, 3).to_string(), "00001111");
}

TEST(Backgrounds, Width4Family) {
  // Sec. 3 example backgrounds 0000, 0101, 0011.
  const auto std_bgs = standard_backgrounds(4);
  ASSERT_EQ(std_bgs.size(), 3u);
  EXPECT_EQ(std_bgs[0].to_string(), "0000");
  EXPECT_EQ(std_bgs[1].to_string(), "0101");
  EXPECT_EQ(std_bgs[2].to_string(), "0011");
}

TEST(Backgrounds, CountIsLog2B) {
  for (unsigned w : {2u, 4u, 8u, 16u, 32u, 64u, 128u})
    EXPECT_EQ(checkerboard_backgrounds(w).size(), log2_exact(w)) << "width " << w;
}

TEST(Backgrounds, RejectsBadWidths) {
  EXPECT_THROW(checkerboard_background(12, 1), std::invalid_argument);
  EXPECT_THROW(checkerboard_background(8, 0), std::invalid_argument);
  EXPECT_THROW(checkerboard_background(8, 4), std::invalid_argument);
}

class BackgroundProperty : public ::testing::TestWithParam<unsigned> {};

// The property that makes ATMarch work: the checkerboard family
// distinguishes every pair of bit positions.
TEST_P(BackgroundProperty, EveryBitPairDistinguished) {
  const unsigned w = GetParam();
  const auto ds = checkerboard_backgrounds(w);
  for (unsigned i = 0; i < w; ++i)
    for (unsigned j = i + 1; j < w; ++j) {
      bool distinguished = false;
      for (const auto& d : ds)
        if (d.get(i) != d.get(j)) {
          distinguished = true;
          break;
        }
      EXPECT_TRUE(distinguished) << "bits " << i << "," << j << " width " << w;
    }
}

// Each background has exactly half its bits set (balanced patterns).
TEST_P(BackgroundProperty, Balanced) {
  const unsigned w = GetParam();
  for (const auto& d : checkerboard_backgrounds(w)) EXPECT_EQ(d.popcount(), w / 2);
}

INSTANTIATE_TEST_SUITE_P(Widths, BackgroundProperty,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u, 128u));

// --- rng ---------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, WordsCoverBothValues) {
  Rng rng(1);
  BitVec acc_or(64), acc_and = BitVec::ones(64);
  for (int i = 0; i < 32; ++i) {
    BitVec w = rng.next_word(64);
    acc_or = acc_or | w;
    acc_and = acc_and & w;
  }
  EXPECT_TRUE(acc_or.all_one());    // every position saw a 1
  EXPECT_TRUE(acc_and.all_zero());  // every position saw a 0
}

// --- table ---------------------------------------------------------------

TEST(Table, AlignsAndRules) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_rule();
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| longer-name "), std::string::npos);
  // header rule + added rule + top/bottom
  size_t rules = 0;
  for (size_t p = s.find("+--"); p != std::string::npos; p = s.find("+--", p + 1)) ++rules;
  EXPECT_GE(rules, 4u);
}

}  // namespace
}  // namespace twm
