// Cross-module integration scenarios: a periodic-scrub life-time simulation
// driven through the TBIST controller, and a multi-core complexity audit —
// the situations the paper's introduction motivates.
#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/fault_list.h"
#include "bist/engine.h"
#include "bist/tbist.h"
#include "core/complexity.h"
#include "core/twm_ta.h"
#include "march/library.h"
#include "march/word_expand.h"
#include "util/rng.h"

namespace twm {
namespace {

// A lifetime of alternating system activity and idle-time transparent test
// sessions.  A transition fault appears mid-life; the next *completed*
// session must flag it, and all functional data must stay coherent
// throughout.
TEST(Integration, PeriodicScrubLifetime) {
  const std::size_t kWords = 32;
  const unsigned kWidth = 8;
  Rng rng(99);
  Memory mem(kWords, kWidth);
  mem.fill_random(rng);

  const TwmResult r = twm_transform(march_by_name("March C-"), kWidth);
  TbistController ctrl(mem, {r.twmarch, r.prediction, 0});

  // Shadow model of what the system believes the memory holds.
  std::vector<BitVec> shadow(kWords, BitVec::zeros(kWidth));
  for (std::size_t a = 0; a < kWords; ++a) shadow[a] = ctrl.functional_read(a);

  bool fault_live = false;
  bool detected = false;
  int completed_after_fault = 0;

  for (int epoch = 0; epoch < 40 && !detected; ++epoch) {
    // Idle window: try to run a session, but system traffic may intervene.
    ctrl.start_session();
    const bool interrupted = (epoch % 5 == 2);
    int steps = 0;
    while (ctrl.step()) {
      ++steps;
      if (interrupted && steps == 37) {
        const std::size_t a = rng.next_below(kWords);
        const BitVec d = rng.next_word(kWidth);
        ctrl.functional_write(a, d);  // aborts the session
        shadow[a] = d;
        break;
      }
    }
    if (ctrl.state() == TbistController::State::Done) {
      if (fault_live) {
        ++completed_after_fault;
        detected = ctrl.last_session_failed();
      } else {
        EXPECT_FALSE(ctrl.last_session_failed()) << "false alarm at epoch " << epoch;
      }
    }

    // Activity burst: random functional traffic, verified against shadow.
    for (int t = 0; t < 20; ++t) {
      const std::size_t a = rng.next_below(kWords);
      if (rng.next_bool()) {
        const BitVec d = rng.next_word(kWidth);
        ctrl.functional_write(a, d);
        shadow[a] = d;
      } else if (!fault_live) {
        // (The faulty cell may legitimately disagree with the shadow.)
        EXPECT_EQ(ctrl.functional_read(a), shadow[a]);
      }
    }

    if (epoch == 10) {
      mem.inject(Fault::tf({11, 3}, Transition::Up));
      fault_live = true;
    }
  }

  EXPECT_TRUE(detected) << "fault never detected across the lifetime";
  EXPECT_LE(completed_after_fault, 3) << "detection latency unexpectedly high";
  EXPECT_GT(ctrl.stats().sessions_aborted, 0u);
}

// Choosing a scheme by cycle budget.  Totals: proposed = S+Q+7*log2(B),
// scheme 1 = (S+Q)*(1+log2(B)), so the proposed scheme wins exactly when
// S+Q > 7 — true for every march with full CF coverage, false for the
// short MATS-family tests (a crossover worth knowing when budgeting).
TEST(Integration, ComplexityGuidesSchemeChoice) {
  for (const auto& info : march_catalog()) {
    for (unsigned b : {16u, 32u, 64u}) {
      const auto p = formula_proposed(info.ops, info.reads, b);
      const auto s1 = formula_scheme1(info.ops, info.reads, b);
      if (info.ops + info.reads > 7)
        EXPECT_LT(p.total(), s1.total()) << info.name << " B=" << b;
      else
        EXPECT_GE(p.total(), s1.total()) << info.name << " B=" << b;
    }
  }
  // Every full-CF-coverage march clears the crossover.
  for (const auto& info : march_catalog()) {
    if (info.full_cf_coverage) {
      EXPECT_GT(info.ops + info.reads, 7u) << info.name;
    }
  }
}

// End-to-end: generate, execute, and verify coverage on a non-default
// geometry (wider words, more words) to guard against hidden size coupling.
TEST(Integration, WiderGeometrySmoke) {
  const std::size_t kWords = 6;
  const unsigned kWidth = 16;
  CoverageEvaluator eval(kWords, kWidth);
  const MarchTest march = march_by_name("March U");

  const auto safs = all_safs(kWords, kWidth);
  const auto out = eval.evaluate(SchemeKind::ProposedExact, march, safs, {0, 5});
  EXPECT_EQ(out.detected_all, out.total);

  Rng rng(1);
  auto cfs = sampled_cfs(kWords, kWidth, FaultClass::CFid, CfScope::Both, 60, rng);
  const auto ref = eval.per_fault(SchemeKind::NontransparentReference, march, cfs, {0});
  const auto prop = eval.per_fault(SchemeKind::ProposedExact, march, cfs, {0});
  EXPECT_EQ(ref, prop);
}

// Diagnosis workflow: a nontransparent run pinpoints the failing word; the
// transparent session confirms; the fault list generator reproduces it.
TEST(Integration, DiagnosisRoundTrip) {
  Memory mem(16, 8);
  mem.inject(Fault::saf({9, 4}, true));

  MarchRunner runner(mem);
  const auto direct = runner.run_direct(solid_march(march_by_name("March C-")));
  ASSERT_TRUE(direct.mismatch);
  EXPECT_EQ(direct.fail_addr, 9u);
  EXPECT_EQ(direct.actual ^ direct.expected, BitVec::from_uint(8, 1u << 4));
}

}  // namespace
}  // namespace twm
