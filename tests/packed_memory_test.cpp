// Differential property test for the bit-parallel PackedMemory: every lane
// of the packed simulator must evolve exactly like a scalar Memory holding
// that lane's fault subset, operation for operation, for every fault class
// and for randomized operation traces (writes, reads, pauses).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "memsim/memory.h"
#include "memsim/packed_memory.h"
#include "util/rng.h"

namespace twm {
namespace {

CellAddr random_cell(Rng& rng, std::size_t words, unsigned width) {
  return {rng.next_below(words), static_cast<unsigned>(rng.next_below(width))};
}

// A random fault of any class (decoder faults included).  Coupling faults
// get a distinct aggressor, alias faults a distinct target word.
Fault random_fault(Rng& rng, std::size_t words, unsigned width) {
  const CellAddr victim = random_cell(rng, words, width);
  CellAddr aggressor = victim;
  while (aggressor == victim) aggressor = random_cell(rng, words, width);
  const Transition tr = rng.next_bool() ? Transition::Up : Transition::Down;
  switch (rng.next_below(8)) {
    case 0: return Fault::saf(victim, rng.next_bool());
    case 1: return Fault::tf(victim, tr);
    case 2: return Fault::cfst(aggressor, rng.next_bool(), victim, rng.next_bool());
    case 3: return Fault::cfid(aggressor, tr, victim, rng.next_bool());
    case 4: return Fault::cfin(aggressor, tr, victim);
    case 5: return Fault::af_no_access(victim.word);
    case 6:
      return Fault::af_alias(victim.word,
                             victim.word == 0 ? words - 1 : victim.word - 1);
    default: return Fault::ret(victim, rng.next_bool(), 1 + rng.next_below(3));
  }
}

// Compares every cell of `lane` against the scalar reference.
void expect_lane_equals(const PackedMemory& packed, unsigned lane, const Memory& ref,
                        const std::string& context) {
  for (std::size_t a = 0; a < ref.num_words(); ++a)
    ASSERT_EQ(packed.lane_word(lane, a), ref.peek(a))
        << context << ": lane " << lane << ", word " << a;
}

TEST(PackedMemoryTest, DifferentialRandomTraces) {
  Rng rng(20260728);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t words = 2 + rng.next_below(4);
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(8));

    PackedMemory packed(words, width);
    // lane -> scalar replica holding exactly that lane's faults.
    std::map<unsigned, Memory> refs;
    refs.emplace(0u, Memory(words, width));  // golden lane

    // Random fault list; several faults may share a lane (a multi-fault
    // universe), exercising the injection-order contract.
    const unsigned num_faults = 1 + static_cast<unsigned>(rng.next_below(6));
    for (unsigned i = 0; i < num_faults; ++i) {
      const Fault f = random_fault(rng, words, width);
      const unsigned lane = 1 + static_cast<unsigned>(rng.next_below(kPackedLanes - 1));
      refs.emplace(lane, Memory(words, width));
      packed.inject(f, 1ull << lane);
      refs.at(lane).inject(f);
    }

    // Identical initial contents everywhere (load() re-enforces static
    // fault conditions on both simulators).
    std::vector<BitVec> contents;
    for (std::size_t a = 0; a < words; ++a) contents.push_back(rng.next_word(width));
    packed.load(contents);
    for (auto& [lane, ref] : refs) ref.load(contents);

    for (auto& [lane, ref] : refs)
      expect_lane_equals(packed, lane, ref, "trial " + std::to_string(trial) + " after load");

    // Random march-like trace: the packed port and every scalar replica see
    // the same operations; states and read values must stay identical.
    std::vector<std::uint64_t> packed_data(width);
    for (int op = 0; op < 120; ++op) {
      const std::size_t addr = rng.next_below(words);
      const unsigned kind = static_cast<unsigned>(rng.next_below(8));
      const std::string ctx =
          "trial " + std::to_string(trial) + ", op " + std::to_string(op);
      if (kind == 0) {
        packed.elapse(1);
        for (auto& [lane, ref] : refs) ref.elapse(1);
      } else if (kind <= 3) {
        const std::uint64_t* v = packed.read(addr);
        for (auto& [lane, ref] : refs) {
          const BitVec expected = ref.read(addr);
          for (unsigned j = 0; j < width; ++j)
            ASSERT_EQ((v[j] >> lane) & 1u, static_cast<std::uint64_t>(expected.get(j)))
                << ctx << ": read of word " << addr << ", lane " << lane << ", bit " << j;
        }
      } else {
        // Broadcast write data: every universe receives the same word, as a
        // march operation would present it.
        const BitVec data = rng.next_word(width);
        for (unsigned j = 0; j < width; ++j) packed_data[j] = data.get(j) ? ~0ull : 0ull;
        packed.write(addr, packed_data.data());
        for (auto& [lane, ref] : refs) ref.write(addr, data);
      }
      for (auto& [lane, ref] : refs) expect_lane_equals(packed, lane, ref, ctx);
    }
  }
}

// Per-lane write data (the transparent-BIST case: write data derived from
// per-lane reads) must also track the scalar simulators.
TEST(PackedMemoryTest, DifferentialPerLaneWriteData) {
  const std::size_t words = 3;
  const unsigned width = 4;
  Rng rng(42);
  PackedMemory packed(words, width);
  std::map<unsigned, Memory> refs;
  refs.emplace(0u, Memory(words, width));
  for (unsigned lane = 1; lane <= 8; ++lane) {
    refs.emplace(lane, Memory(words, width));
    const Fault f = random_fault(rng, words, width);
    packed.inject(f, 1ull << lane);
    refs.at(lane).inject(f);
  }

  std::vector<std::uint64_t> packed_data(width);
  std::map<unsigned, BitVec> lane_data;
  for (int op = 0; op < 150; ++op) {
    const std::size_t addr = rng.next_below(words);
    // Different data per lane.
    lane_data.clear();
    for (unsigned j = 0; j < width; ++j) packed_data[j] = 0;
    for (auto& [lane, ref] : refs) {
      const BitVec d = rng.next_word(width);
      lane_data.emplace(lane, d);
      for (unsigned j = 0; j < width; ++j)
        if (d.get(j)) packed_data[j] |= 1ull << lane;
    }
    packed.write(addr, packed_data.data());
    for (auto& [lane, ref] : refs) ref.write(addr, lane_data.at(lane));
    for (auto& [lane, ref] : refs)
      expect_lane_equals(packed, lane, ref, "op " + std::to_string(op));
  }
}

// Static fault conditions are enforced at injection time, like the scalar
// simulator does.
TEST(PackedMemoryTest, InjectEnforcesStaticFaults) {
  PackedMemory packed(2, 2);
  packed.inject(Fault::saf({0, 0}, true), 1ull << 5);
  EXPECT_TRUE(packed.lane_bit(5, 0, 0));
  EXPECT_FALSE(packed.lane_bit(0, 0, 0));  // golden lane untouched
  EXPECT_FALSE(packed.lane_bit(6, 0, 0));  // other lanes untouched

  // CFst <0; 1>: aggressor rests at 0, so the victim is forced immediately,
  // in the fault's lane only.
  packed.inject(Fault::cfst({1, 0}, false, {1, 1}, true), 1ull << 7);
  EXPECT_TRUE(packed.lane_bit(7, 1, 1));
  EXPECT_FALSE(packed.lane_bit(0, 1, 1));
}

TEST(PackedMemoryTest, RetentionDecayIsLaneMasked) {
  PackedMemory packed(2, 1);
  Memory ref(2, 1);
  const Fault leak = Fault::ret({0, 0}, true, 2);
  packed.inject(leak, 1ull << 3);
  ref.inject(leak);

  std::vector<BitVec> zeros(2, BitVec::zeros(1));
  packed.load(zeros);
  ref.load(zeros);

  packed.elapse(1);
  ref.elapse(1);
  EXPECT_FALSE(packed.lane_bit(3, 0, 0));

  // A write to the leaky cell refreshes both clocks.
  const std::uint64_t zero_bit = 0;
  packed.write(0, &zero_bit);
  ref.write(0, BitVec::zeros(1));

  packed.elapse(1);
  ref.elapse(1);
  EXPECT_FALSE(packed.lane_bit(3, 0, 0)) << "clock must have been refreshed by the write";

  packed.elapse(1);
  ref.elapse(1);
  EXPECT_TRUE(packed.lane_bit(3, 0, 0));
  EXPECT_TRUE(ref.peek(0).get(0));
  EXPECT_FALSE(packed.lane_bit(0, 0, 0)) << "golden lane must not decay";
  EXPECT_FALSE(packed.lane_bit(4, 0, 0)) << "unfaulted lane must not decay";
}

// ---- paged sparse storage (huge-memory campaigns) --------------------------

// On a multi-page geometry the paged store must evolve exactly like the
// dense scalar reference while materializing only the pages the trace (and
// the fault footprints) actually touch.  The fault list straddles page
// boundaries and couples across pages.
TEST(PackedMemoryTest, SparsePagingDifferentialAcrossPageBoundaries) {
  const std::size_t words = 4096;  // many 64-word pages
  const unsigned width = 4;
  Rng rng(20260807);

  PackedMemory packed(words, width);
  std::map<unsigned, Memory> refs;
  refs.emplace(0u, Memory(words, width));

  const std::vector<Fault> list = {
      Fault::saf({63, 1}, true),                             // last word of page 0
      Fault::tf({64, 0}, Transition::Up),                    // first word of page 1
      Fault::cfid({63, 2}, Transition::Up, {64, 3}, true),   // inter-page coupling
      Fault::cfst({4095, 0}, true, {0, 0}, true),            // last page -> first page
      Fault::ret({128, 3}, true, 2),
      Fault::af_alias(130, 62),                              // inter-page alias copy
  };
  for (std::size_t i = 0; i < list.size(); ++i) {
    const unsigned lane = 1 + static_cast<unsigned>(i);
    refs.emplace(lane, Memory(words, width));
    packed.inject(list[i], 1ull << lane);
    refs.at(lane).inject(list[i]);
  }

  packed.fill_seeded(7);
  for (auto& [lane, ref] : refs) ref.fill_seeded(7);

  const std::vector<std::size_t> touched = {0,  62,  63,  64,  65,  127,
                                            128, 129, 130, 2048, 4094, 4095};
  std::vector<std::uint64_t> packed_data(width);
  for (int op = 0; op < 250; ++op) {
    const std::size_t addr = touched[rng.next_below(touched.size())];
    const unsigned kind = static_cast<unsigned>(rng.next_below(8));
    const std::string ctx = "op " + std::to_string(op);
    if (kind == 0) {
      packed.elapse(1);
      for (auto& [lane, ref] : refs) ref.elapse(1);
    } else if (kind <= 3) {
      const std::uint64_t* v = packed.read(addr);
      for (auto& [lane, ref] : refs) {
        const BitVec expected = ref.read(addr);
        for (unsigned j = 0; j < width; ++j)
          ASSERT_EQ((v[j] >> lane) & 1u, static_cast<std::uint64_t>(expected.get(j)))
              << ctx << ": read of word " << addr << ", lane " << lane << ", bit " << j;
      }
    } else {
      const BitVec data = rng.next_word(width);
      for (unsigned j = 0; j < width; ++j) packed_data[j] = data.get(j) ? ~0ull : 0ull;
      packed.write(addr, packed_data.data());
      for (auto& [lane, ref] : refs) ref.write(addr, data);
    }
    for (const std::size_t a : touched)
      for (auto& [lane, ref] : refs)
        ASSERT_EQ(packed.lane_word(lane, a), ref.peek(a))
            << ctx << ": lane " << lane << ", word " << a;
  }

  // Sparse bound: only the touched/fault-footprint pages exist — nowhere
  // near the 64 pages a dense store would hold.
  EXPECT_LE(packed.pages_live(), touched.size() + 2 * list.size());
  EXPECT_GT(packed.pages_live(), 0u);
  for (auto& [lane, ref] : refs) {
    EXPECT_LE(ref.pages_live(), touched.size() + 2);
  }

  // Untouched pages still read as the seeded background, in every lane.
  for (const std::size_t a : {std::size_t{300}, std::size_t{1000}, std::size_t{3000}})
    for (auto& [lane, ref] : refs)
      ASSERT_EQ(packed.lane_word(lane, a), ref.peek(a)) << "background word " << a;
}

// Refill rounds (the repack scheduler's per-seed reset) must recycle freed
// pages through the free-list instead of allocating: after the warm-up
// round, page_allocations() stays flat.
TEST(PackedMemoryTest, RefillRoundsReusePagesWithoutAllocating) {
  PackedMemory m(4096, 8);
  std::vector<std::uint64_t> data(8, ~0ull);
  const std::vector<std::size_t> addrs = {0, 100, 1000, 4000};
  const auto round = [&](std::uint64_t seed) {
    m.clear_faults();
    m.fill_seeded(seed);
    m.inject(Fault::saf({100, 0}, true), 2);
    for (const std::size_t a : addrs) m.write(a, data.data());
  };
  round(1);
  round(2);  // warm-up: both cached baselines generated, free-list filled
  const std::uint64_t warm = m.page_allocations();
  EXPECT_GT(warm, 0u);
  for (int r = 0; r < 6; ++r) round(1 + static_cast<std::uint64_t>(r % 2));
  EXPECT_EQ(m.page_allocations(), warm) << "refill rounds must reuse freed pages";
  EXPECT_EQ(m.pages_peak(), static_cast<std::size_t>(warm))
      << "every allocation was a distinct concurrent page";
}

// The scalar Memory shares the paging design; same contract.
TEST(MemoryPagingTest, ScalarRefillRoundsReusePagesWithoutAllocating) {
  Memory m(4096, 8);
  const std::vector<std::size_t> addrs = {5, 70, 200, 4095};
  const auto round = [&](std::uint64_t seed) {
    m.clear_faults();
    m.fill_seeded(seed);
    m.inject(Fault::saf({70, 3}, true));
    for (const std::size_t a : addrs) m.write(a, BitVec::ones(8));
  };
  round(1);
  round(2);
  const std::uint64_t warm = m.page_allocations();
  EXPECT_GT(warm, 0u);
  for (int r = 0; r < 6; ++r) round(1 + static_cast<std::uint64_t>(r % 2));
  EXPECT_EQ(m.page_allocations(), warm);
  EXPECT_LE(m.pages_live(), addrs.size() + 1);
}

// Reads and peeks of unmaterialized pages must not materialize them — a
// read-heavy march over a huge background costs no memory.
TEST(MemoryPagingTest, ReadsOfBackgroundPagesDontMaterialize) {
  Memory m(4096, 4);
  m.fill_seeded(3);
  for (std::size_t a = 0; a < 4096; a += 61) {
    (void)m.read(a);
    (void)m.peek(a);
  }
  EXPECT_EQ(m.pages_live(), 0u);

  PackedMemory p(4096, 4);
  p.fill_seeded(3);
  for (std::size_t a = 0; a < 4096; a += 61) {
    (void)p.read(a);
    (void)p.peek(a);
  }
  EXPECT_EQ(p.pages_live(), 0u);
  // The seeded background broadcast matches the scalar baseline.
  for (std::size_t a = 0; a < 4096; a += 127)
    ASSERT_EQ(p.lane_word(0, a), m.peek(a)) << "word " << a;
}

TEST(PackedMemoryTest, RejectsBadGeometryAndCells) {
  EXPECT_THROW(PackedMemory(0, 4), std::invalid_argument);
  EXPECT_THROW(PackedMemory(4, 0), std::invalid_argument);
  PackedMemory m(2, 2);
  EXPECT_THROW(m.inject(Fault::saf({2, 0}, true), 1), std::out_of_range);
  EXPECT_THROW(m.inject(Fault::saf({0, 2}, true), 1), std::out_of_range);
  EXPECT_THROW(m.inject(Fault::cfin({0, 0}, Transition::Up, {0, 0}), 1), std::invalid_argument);
}

}  // namespace
}  // namespace twm
